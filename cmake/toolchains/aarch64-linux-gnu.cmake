# Cross-compile toolchain: x86-64 host -> aarch64-linux-gnu target.
#
# Used by the CI cross-aarch64 leg (compile-only: the binaries are not run,
# qemu is not required) to keep the NEON kernel TU and every
# __aarch64__-guarded path compiling. Pair with -DMOCHE_NATIVE=ON to prove
# the CMAKE_CROSSCOMPILING guard skips -march=native instead of passing the
# host's CPU to the cross compiler.
#
#   cmake -B build-aarch64 -S . \
#     -DCMAKE_TOOLCHAIN_FILE=cmake/toolchains/aarch64-linux-gnu.cmake

set(CMAKE_SYSTEM_NAME Linux)
set(CMAKE_SYSTEM_PROCESSOR aarch64)

set(CMAKE_C_COMPILER aarch64-linux-gnu-gcc)
set(CMAKE_CXX_COMPILER aarch64-linux-gnu-g++)

# Search target sysroot paths for libraries/headers, but never for the
# build tools themselves.
set(CMAKE_FIND_ROOT_PATH_MODE_PROGRAM NEVER)
set(CMAKE_FIND_ROOT_PATH_MODE_LIBRARY ONLY)
set(CMAKE_FIND_ROOT_PATH_MODE_INCLUDE ONLY)
set(CMAKE_FIND_ROOT_PATH_MODE_PACKAGE ONLY)
