#!/usr/bin/env bash
# Compares freshly produced BENCH_<name>.json files against the checked-in
# baseline pair (docs/bench/BENCH_<name>.after.json) and prints a warning
# for every shared metric that moved outside tolerance.
#
#   scripts/compare_bench.sh <fresh_dir> [baseline_dir]
#
#     fresh_dir     directory holding the just-run BENCH_*.json files
#     baseline_dir  defaults to docs/bench (the committed pairs)
#
# Warn-only by design: CI's perf-smoke machines are noisy and quick-mode
# workloads are small, so a hard gate would flap — the job reads the
# warnings, a human decides. The script exits non-zero only on usage
# errors or unreadable files, never on a perf delta.
#
# Two metric classes, split by unit:
#   * timing/throughput (s, s/op, obs/s, x): warn when the fresh value
#     differs from the baseline by more than MOCHE_BENCH_TOLERANCE_PCT
#     (default 60 — structural regressions, not scheduler noise)
#   * exact contracts (bool, count — identity checks, allocation counts):
#     warn on ANY difference; `expl.steady_allocs` creeping above zero is
#     an allocation regression, not noise.
#
# Metrics present on only one side (workload-size differences between
# quick and full mode) are skipped silently.

set -u

if [ $# -lt 1 ] || [ $# -gt 2 ]; then
  echo "usage: $0 <fresh_dir> [baseline_dir]" >&2
  exit 2
fi
fresh_dir=$1
baseline_dir=${2:-docs/bench}
tolerance_pct=${MOCHE_BENCH_TOLERANCE_PCT:-60}

if ! command -v jq > /dev/null 2>&1; then
  echo "compare_bench: jq not found; skipping comparison (warn-only)" >&2
  exit 0
fi

compared_any=0
warnings=0

for fresh in "$fresh_dir"/BENCH_*.json; do
  [ -e "$fresh" ] || continue
  name=$(basename "$fresh" .json)
  baseline="$baseline_dir/$name.after.json"
  if [ ! -f "$baseline" ]; then
    echo "compare_bench: no baseline $baseline; skipping $name"
    continue
  fi
  compared_any=1
  echo "== $name: fresh $fresh vs baseline $baseline (tolerance ${tolerance_pct}%)"

  # metric<TAB>unit<TAB>fresh<TAB>base for metrics present in both files.
  while IFS=$'\t' read -r metric unit fresh_value base_value; do
    case "$unit" in
      bool|count)
        differs=$(jq -n --argjson a "$fresh_value" --argjson b "$base_value" \
          '(($a - $b) | fabs) > 1e-9')
        if [ "$differs" = "true" ]; then
          echo "WARNING: $name $metric ($unit) changed: baseline $base_value -> fresh $fresh_value"
          warnings=$((warnings + 1))
        fi
        ;;
      *)
        out_of_tol=$(jq -n --argjson a "$fresh_value" --argjson b "$base_value" \
          --argjson tol "$tolerance_pct" \
          'if $b == 0 then ($a != 0) else ((($a - $b) / $b | fabs) * 100) > $tol end')
        if [ "$out_of_tol" = "true" ]; then
          ratio=$(jq -n --argjson a "$fresh_value" --argjson b "$base_value" \
            'if $b == 0 then "inf" else (($a / $b * 100) | round | tostring) + "%" end')
          echo "WARNING: $name $metric ($unit) at $ratio of baseline: $base_value -> $fresh_value"
          warnings=$((warnings + 1))
        fi
        ;;
    esac
  done < <(jq -r --slurpfile base "$baseline" '
      ( [ $base[0][] | {key: .metric, value: .} ] | from_entries ) as $b
      | .[]
      | select($b[.metric] != null)
      | [.metric, .unit, (.value | tostring), ($b[.metric].value | tostring)]
      | @tsv' "$fresh")
done

if [ "$compared_any" = "0" ]; then
  echo "compare_bench: nothing to compare in $fresh_dir"
fi
if [ "$warnings" = "0" ]; then
  echo "compare_bench: all shared metrics within tolerance"
else
  echo "compare_bench: $warnings metric(s) outside tolerance (warn-only; see above)"
fi
exit 0
