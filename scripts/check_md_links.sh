#!/usr/bin/env bash
# Markdown link checker: verifies that every relative link target in the
# given markdown files exists on disk, so docs cannot rot silently when
# files move. External links (http/https/mailto) and pure #anchors are
# skipped — CI must not depend on network reachability.
#
# Usage: scripts/check_md_links.sh [file.md ...]
# Default file set: README.md, ROADMAP.md, and docs/**/*.md, relative to
# the repository root (the script's parent directory).
set -u

cd "$(dirname "$0")/.." || exit 1

files=("$@")
if [ "${#files[@]}" -eq 0 ]; then
  files=(README.md ROADMAP.md)
  while IFS= read -r f; do
    files+=("$f")
  done < <(find docs -name '*.md' | sort)
fi

fail=0
checked=0
for file in "${files[@]}"; do
  if [ ! -f "$file" ]; then
    echo "MISSING FILE: $file"
    fail=1
    continue
  fi
  dir=$(dirname "$file")
  # Inline links and images: the (target) half of [text](target).
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    checked=$((checked + 1))
    if [ ! -e "$dir/$path" ]; then
      echo "$file: broken link -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$file" | sed 's/^](//; s/)$//')
done

if [ "$fail" -ne 0 ]; then
  echo "markdown link check FAILED"
  exit 1
fi
echo "markdown link check OK (${#files[@]} files, $checked relative links)"
