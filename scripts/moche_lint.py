#!/usr/bin/env python3
"""moche-lint: project-invariant checks no generic tool knows about.

The MOCHE codebase keeps a handful of correctness contracts that are
invisible to compilers and clang-tidy because they are *project* rules,
not language rules (docs/ARCHITECTURE.md, "Static analysis & enforced
contracts"):

  raw-thread       All concurrency goes through util/parallel. Raw
                   std::thread / std::async / fork() anywhere else would
                   bypass the deterministic ParallelFor contract (task i
                   writes slot i) that makes parallel output bit-identical
                   to sequential.
  float-format     Files that write machine-readable artifacts (BENCH_*.json,
                   the identity corpus, CSV exports) must format doubles
                   through FormatG17/AppendG17/FormatFixed
                   (util/string_util.h). printf-family "%g"/"%f" and
                   operator<< honor LC_NUMERIC, so a comma-decimal locale
                   silently corrupts artifacts that are diffed byte-for-byte.
  sort-doubles     std::sort/std::nth_element on a range containing NaN is
                   undefined behavior (strict-weak-ordering violation).
                   Every sort call site in src/ must either live in a file
                   audited for NaN screening (the allowlist) or carry an
                   inline allow comment stating why NaN cannot reach it.
  simd-include     SIMD intrinsic headers are confined to the two kernel
                   TUs (src/util/simd_avx2.cc, src/util/simd_neon.cc).
                   Anywhere else they would smuggle ISA-specific code past
                   the runtime dispatch + bit-identity contract of
                   util/simd.h.
  seeded-rng       Randomness must be reproducible from option-derived
                   seeds. rand()/srand()/std::random_device/time(NULL)
                   seeding makes experiments unrepeatable and breaks the
                   parallel==sequential identity checks.
  contract-header  Every header under src/ opens with the ownership /
                   thread-safety contract block established in PR 4, so the
                   concurrency story of a type is stated where the type is
                   declared.
  fuzz-target      Every fuzz/*_fuzz.cc must define the libFuzzer entry
                   point (LLVMFuzzerTestOneInput), be registered in
                   fuzz/CMakeLists.txt (moche_add_fuzz_target), and have a
                   non-empty seed corpus under fuzz/corpus/<target>/ — an
                   unregistered target never builds, and an empty corpus
                   turns its corpus-replay regression gate into a no-op.

Zero dependencies beyond the Python 3 standard library. Scans src/,
bench/, examples/, and fuzz/ by default (tests are exempt: they
intentionally violate contracts to test them).

Suppressions:
  * Inline, for one call site (same line or the line above), reason
    mandatory:
        std::sort(idx.begin(), idx.end());  // moche-lint: allow(sort-doubles): index vector, no doubles
  * File-level, in the config file (scripts/moche_lint.conf):
        allow sort-doubles src/util/stats.cc -- NaN screened before every sort
    The config also declares which files are artifact writers:
        artifact-writer src/harness/export.cc

Exit codes: 0 = clean, 1 = violations found, 2 = usage/config error.
"""

import argparse
import os
import re
import sys

RULES = (
    "raw-thread",
    "float-format",
    "sort-doubles",
    "simd-include",
    "seeded-rng",
    "contract-header",
    "fuzz-target",
)

# Files allowed to use raw threading primitives: the pool itself.
RAW_THREAD_ALLOWED = {
    "src/util/parallel.h",
    "src/util/parallel.cc",
}

# The only translation units allowed to include SIMD intrinsic headers.
SIMD_TU_ALLOWED = {
    "src/util/simd_avx2.cc",
    "src/util/simd_neon.cc",
}

SOURCE_EXTENSIONS = (".h", ".cc", ".cpp")
DEFAULT_SCAN_DIRS = ("src", "bench", "examples", "fuzz")

FUZZ_TARGET_RE = re.compile(r"^fuzz/([A-Za-z0-9_]+_fuzz)\.cc$")
FUZZ_ENTRY_RE = re.compile(r"\bint\s+LLVMFuzzerTestOneInput\s*\(")

RAW_THREAD_RE = re.compile(
    r"std::thread\b|std::jthread\b|std::async\b|pthread_create\b|\bfork\s*\(")
# printf-family floating-point conversions inside a string literal:
# %[flags][width][.precision][length]{f,F,e,E,g,G,a,A}
PRINTF_FLOAT_RE = re.compile(r"%[-+ #0']*[\d*]*(?:\.[\d*]+)?(?:l|L|h)?[fFeEgGaA]\b")
# `<<` stream insertion, but not `<<=` (integer shift-assign).
STREAM_INSERT_RE = re.compile(r"<<(?!=)")
TO_STRING_RE = re.compile(r"std::to_string\s*\(")
SETPRECISION_RE = re.compile(r"\bsetprecision\s*\(")
SORT_RE = re.compile(
    r"std::(?:stable_)?sort\s*\(|std::nth_element\s*\(|std::partial_sort\s*\(")
SIMD_INCLUDE_RE = re.compile(
    r'#\s*include\s*[<"](?:immintrin|x86intrin|emmintrin|xmmintrin|smmintrin|'
    r"avxintrin|arm_neon|arm_sve)\.h")
SEEDED_RNG_RE = re.compile(
    r"\bs?rand\s*\(\s*\)|\bsrand\s*\(|std::random_device\b|"
    r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)")
CONTRACT_THREAD_RE = re.compile(r"thread|concurren", re.IGNORECASE)
CONTRACT_OWNER_RE = re.compile(r"\bown(?:s|er|ers|ership)?\b", re.IGNORECASE)

ALLOW_RE = re.compile(
    r"moche-lint:\s*allow\(([a-z-]+)\)\s*(?::\s*(.*?))?\s*(?:\*/)?\s*$")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Config:
    def __init__(self):
        self.file_allows = {}      # (rule, path) -> reason
        self.artifact_writers = set()

    @staticmethod
    def parse(path):
        config = Config()
        try:
            with open(path, encoding="utf-8") as f:
                lines = f.readlines()
        except OSError as e:
            raise ValueError(f"cannot read config {path}: {e}")
        for lineno, raw in enumerate(lines, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            where = f"{path}:{lineno}"
            if parts[0] == "allow":
                if len(parts) < 3:
                    raise ValueError(f"{where}: allow needs <rule> <path>")
                rule, rel = parts[1], parts[2]
                if rule not in RULES:
                    raise ValueError(f"{where}: unknown rule '{rule}'")
                reason = ""
                if "--" in parts:
                    reason = " ".join(parts[parts.index("--") + 1:])
                if not reason:
                    raise ValueError(
                        f"{where}: allow needs a '-- reason' justification")
                config.file_allows[(rule, rel)] = reason
            elif parts[0] == "artifact-writer":
                if len(parts) != 2:
                    raise ValueError(f"{where}: artifact-writer needs <path>")
                config.artifact_writers.add(parts[1])
            else:
                raise ValueError(f"{where}: unknown directive '{parts[0]}'")
        return config


def strip_comments(text):
    """Replaces // and /* */ comment bodies with spaces, preserving string
    literals and line structure, so content rules don't fire on prose."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append(c)
                if nxt:
                    out.append(nxt)
                    i += 2
                    continue
            elif c == '"':
                state = "code"
            out.append(c)
        elif state == "char":
            if c == "\\":
                out.append(c)
                if nxt:
                    out.append(nxt)
                    i += 2
                    continue
            elif c == "'":
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


def collect_inline_allows(lines, violations, rel):
    """Maps line number -> set of rules suppressed on that line (an allow
    comment covers its own line and the next). A missing reason is itself a
    violation."""
    allows = {}
    for lineno, line in enumerate(lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            if "moche-lint:" in line:
                violations.append(Violation(
                    rel, lineno, "bad-allow",
                    "malformed suppression; use "
                    "'moche-lint: allow(<rule>): <reason>'"))
            continue
        rule, reason = m.group(1), m.group(2)
        if rule not in RULES:
            violations.append(Violation(
                rel, lineno, "bad-allow", f"unknown rule '{rule}'"))
            continue
        if not reason or not reason.strip():
            violations.append(Violation(
                rel, lineno, "bad-allow",
                f"allow({rule}) needs a reason: "
                "'moche-lint: allow(%s): <why>'" % rule))
            continue
        allows.setdefault(lineno, set()).add(rule)
        allows.setdefault(lineno + 1, set()).add(rule)
    return allows


def leading_comment_block(lines):
    """The file's opening comment block: consecutive '//' (or empty) lines
    before the first line of code."""
    block = []
    for line in lines:
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("//"):
            block.append(stripped)
        else:
            break
    return "\n".join(block)


def check_file(root, rel, config, violations):
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        violations.append(Violation(rel, 0, "io", f"cannot read: {e}"))
        return
    raw_lines = text.splitlines()
    allows = collect_inline_allows(raw_lines, violations, rel)
    code_lines = strip_comments(text).splitlines()

    def allowed(rule, lineno):
        if rule in allows.get(lineno, ()):
            return True
        return (rule, rel) in config.file_allows

    def flag(rule, lineno, message):
        if not allowed(rule, lineno):
            violations.append(Violation(rel, lineno, rule, message))

    in_src = rel.startswith("src/")
    is_artifact_writer = rel in config.artifact_writers

    for lineno, line in enumerate(code_lines, start=1):
        if rel not in RAW_THREAD_ALLOWED and RAW_THREAD_RE.search(line):
            flag("raw-thread", lineno,
                 "raw threading primitive; route concurrency through "
                 "util/parallel (ThreadPool / ParallelFor)")
        if rel not in SIMD_TU_ALLOWED and SIMD_INCLUDE_RE.search(line):
            flag("simd-include", lineno,
                 "SIMD intrinsic header outside the kernel TUs; add a "
                 "kernel to util/simd.h instead")
        if SEEDED_RNG_RE.search(line):
            flag("seeded-rng", lineno,
                 "non-reproducible randomness source; derive seeds from "
                 "options and use moche::Rng")
        if in_src and SORT_RE.search(line):
            flag("sort-doubles", lineno,
                 "sort call site not audited for NaN screening (UB on a "
                 "NaN range); allowlist the file after auditing, or "
                 "explain inline why NaN cannot reach it")
        if is_artifact_writer:
            if PRINTF_FLOAT_RE.search(line):
                flag("float-format", lineno,
                     "printf-family float conversion in an artifact "
                     "writer is locale-dependent; use FormatG17 / "
                     "FormatFixed (util/string_util.h)")
            if TO_STRING_RE.search(line):
                flag("float-format", lineno,
                     "std::to_string is locale-dependent; use FormatG17 / "
                     "FormatFixed (util/string_util.h)")
            if (STREAM_INSERT_RE.search(line)
                    and not line.lstrip().startswith("#")):
                flag("float-format", lineno,
                     "stream insertion in an artifact writer (operator<< "
                     "honors the imbued locale); build the text with "
                     "FormatG17 / FormatFixed and string appends")
            if SETPRECISION_RE.search(line):
                flag("float-format", lineno,
                     "iostream precision manipulation in an artifact "
                     "writer; use FormatG17 / FormatFixed")

    if in_src and rel.endswith(".h"):
        block = leading_comment_block(raw_lines)
        if not (CONTRACT_THREAD_RE.search(block)
                and CONTRACT_OWNER_RE.search(block)):
            flag("contract-header", 1,
                 "missing ownership/thread-safety contract block: the "
                 "leading comment must state who owns the state and how "
                 "(or whether) it may be shared across threads")

    fuzz_match = FUZZ_TARGET_RE.match(rel)
    if fuzz_match:
        stem = fuzz_match.group(1)
        if not FUZZ_ENTRY_RE.search(strip_comments(text)):
            flag("fuzz-target", 1,
                 "fuzz target does not define LLVMFuzzerTestOneInput; "
                 "every fuzz/*_fuzz.cc must be a libFuzzer entry point "
                 "(include fuzz_target.h)")
        cmake_path = os.path.join(root, "fuzz", "CMakeLists.txt")
        try:
            with open(cmake_path, encoding="utf-8") as f:
                cmake_text = f.read()
        except OSError:
            cmake_text = ""
        if not re.search(r"moche_add_fuzz_target\(\s*%s\b" % re.escape(stem),
                         cmake_text):
            flag("fuzz-target", 1,
                 "fuzz target is not registered in fuzz/CMakeLists.txt "
                 "(moche_add_fuzz_target(%s ...)); an unregistered target "
                 "never builds or replays" % stem)
        corpus_dir = os.path.join(root, "fuzz", "corpus", stem)
        seeds = []
        if os.path.isdir(corpus_dir):
            seeds = [name for name in os.listdir(corpus_dir)
                     if os.path.isfile(os.path.join(corpus_dir, name))]
        if not seeds:
            flag("fuzz-target", 1,
                 "fuzz target has no seed corpus (fuzz/corpus/%s/ is "
                 "missing or empty); the corpus-replay regression gate "
                 "would test nothing" % stem)


def gather_files(root, paths):
    files = []
    if paths:
        for p in paths:
            rel = os.path.relpath(os.path.abspath(p), root)
            files.append(rel.replace(os.sep, "/"))
        return files
    for d in DEFAULT_SCAN_DIRS:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(SOURCE_EXTENSIONS):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    files.append(rel.replace(os.sep, "/"))
    return sorted(files)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="moche_lint.py",
        description="MOCHE project-invariant linter (see docs/ARCHITECTURE.md)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: the script's parent)")
    parser.add_argument("--config", default=None,
                        help="config file (default: <root>/scripts/"
                             "moche_lint.conf)")
    parser.add_argument("paths", nargs="*",
                        help="files to check (default: src/ bench/ examples/)")
    args = parser.parse_args(argv)

    root = os.path.abspath(
        args.root
        or os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
    config_path = args.config or os.path.join(root, "scripts",
                                              "moche_lint.conf")
    try:
        config = Config.parse(config_path)
    except ValueError as e:
        print(f"moche-lint: config error: {e}", file=sys.stderr)
        return 2

    files = gather_files(root, args.paths)
    if not files:
        print("moche-lint: no files to check", file=sys.stderr)
        return 2

    violations = []
    for rel in files:
        check_file(root, rel, config, violations)

    for v in violations:
        print(v)
    if violations:
        print(f"moche-lint: {len(violations)} violation(s) in "
              f"{len({v.path for v in violations})} file(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
