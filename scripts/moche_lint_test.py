#!/usr/bin/env python3
"""Tests for moche_lint.py (stdlib unittest; `python3 -m pytest` works too).

Each test builds a throwaway repo root with seeded rule violations (or a
clean fixture) and runs the linter as a subprocess, so the exit-code
contract (0 clean / 1 violations / 2 usage-config error) is exercised
exactly as CI uses it.
"""

import os
import subprocess
import sys
import tempfile
import unittest

LINT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "moche_lint.py")

CONTRACT = ("// Ownership & thread-safety: value type owned by the caller;\n"
            "// no thread shares it.\n")

CLEAN_HEADER = CONTRACT + """
#ifndef FIXTURE_H_
#define FIXTURE_H_
namespace f {
int Add(int a, int b);
}
#endif
"""


class LintFixture(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = self._tmp.name
        os.makedirs(os.path.join(self.root, "src", "util"))
        os.makedirs(os.path.join(self.root, "scripts"))
        self.config = os.path.join(self.root, "scripts", "moche_lint.conf")
        self.write_config("")

    def tearDown(self):
        self._tmp.cleanup()

    def write_config(self, text):
        with open(self.config, "w", encoding="utf-8") as f:
            f.write(text)

    def write(self, rel, text):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)

    def run_lint(self, *extra):
        return subprocess.run(
            [sys.executable, LINT, "--root", self.root,
             "--config", self.config, *extra],
            capture_output=True, text=True)

    def assert_flags(self, rule, proc):
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn(f"[{rule}]", proc.stdout)

    def assert_clean(self, proc):
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertEqual(proc.stdout, "")


class CleanFixtureTest(LintFixture):
    def test_clean_tree_exits_zero(self):
        self.write("src/util/clean.h", CLEAN_HEADER)
        self.write("src/util/clean.cc",
                   '#include "util/clean.h"\n'
                   "namespace f { int Add(int a, int b)"
                   " { return a + b; } }\n")
        self.assert_clean(self.run_lint())

    def test_no_files_is_usage_error(self):
        # An empty scan (nothing under src/bench/examples) must not report
        # success: exit 2, like any other misuse.
        self.assertEqual(self.run_lint().returncode, 2)


class RawThreadRuleTest(LintFixture):
    def test_flags_std_thread(self):
        self.write("src/util/w.cc", "#include <thread>\nstd::thread t;\n")
        self.assert_flags("raw-thread", self.run_lint())

    def test_flags_fork_and_async(self):
        self.write("src/util/w.cc", "int main() { fork(); }\n")
        self.assert_flags("raw-thread", self.run_lint())
        self.write("src/util/w.cc", "auto f = std::async(g);\n")
        self.assert_flags("raw-thread", self.run_lint())

    def test_parallel_module_is_exempt(self):
        self.write("src/util/parallel.cc", "std::thread worker;\n")
        self.assert_clean(self.run_lint())

    def test_comment_mention_does_not_fire(self):
        self.write("src/util/w.cc",
                   "// std::thread is banned outside util/parallel\n"
                   "int x;\n")
        self.assert_clean(self.run_lint())


class FloatFormatRuleTest(LintFixture):
    def declare_writer(self, rel="src/util/w.cc"):
        self.write_config(f"artifact-writer {rel}\n")

    def test_printf_float_in_artifact_writer(self):
        self.declare_writer()
        self.write("src/util/w.cc",
                   'void f(double v) { printf("%.6f", v); }\n')
        self.assert_flags("float-format", self.run_lint())

    def test_stream_insertion_in_artifact_writer(self):
        self.declare_writer()
        self.write("src/util/w.cc", "void f() { file << value; }\n")
        self.assert_flags("float-format", self.run_lint())

    def test_to_string_and_setprecision(self):
        self.declare_writer()
        self.write("src/util/w.cc", "auto s = std::to_string(0.5);\n")
        self.assert_flags("float-format", self.run_lint())
        self.write("src/util/w.cc", "os << std::setprecision(17);\n")
        self.assert_flags("float-format", self.run_lint())

    def test_shift_assign_is_not_stream_insertion(self):
        self.declare_writer()
        self.write("src/util/w.cc", "void f(int& code) { code <<= 4; }\n")
        self.assert_clean(self.run_lint())

    def test_non_writer_file_may_printf_floats(self):
        # Human-readable output (logs, tables) is free to use %f.
        self.write("src/util/w.cc",
                   'void f(double v) { printf("%.2f", v); }\n')
        self.assert_clean(self.run_lint())

    def test_integer_printf_is_fine_in_writer(self):
        self.declare_writer()
        self.write("src/util/w.cc",
                   'void f(size_t v) { printf("%zu,%s", v, "x"); }\n')
        self.assert_clean(self.run_lint())


class SortDoublesRuleTest(LintFixture):
    def test_flags_unaudited_sort_in_src(self):
        self.write("src/util/w.cc",
                   "void f(std::vector<double>* v)"
                   " { std::sort(v->begin(), v->end()); }\n")
        self.assert_flags("sort-doubles", self.run_lint())

    def test_flags_nth_element_and_stable_sort(self):
        self.write("src/util/w.cc",
                   "void f() { std::nth_element(b, m, e); }\n")
        self.assert_flags("sort-doubles", self.run_lint())
        self.write("src/util/w.cc",
                   "void f() { std::stable_sort(b, e); }\n")
        self.assert_flags("sort-doubles", self.run_lint())

    def test_inline_allow_with_reason_suppresses(self):
        self.write("src/util/w.cc",
                   "// moche-lint: allow(sort-doubles): ints only\n"
                   "void f() { std::sort(b, e); }\n")
        self.assert_clean(self.run_lint())

    def test_inline_allow_without_reason_is_a_violation(self):
        self.write("src/util/w.cc",
                   "// moche-lint: allow(sort-doubles)\n"
                   "void f() { std::sort(b, e); }\n")
        proc = self.run_lint()
        self.assertEqual(proc.returncode, 1)
        self.assertIn("[bad-allow]", proc.stdout)

    def test_allow_covers_only_adjacent_line(self):
        self.write("src/util/w.cc",
                   "// moche-lint: allow(sort-doubles): first only\n"
                   "void f() { std::sort(b, e); }\n"
                   "void g() { std::sort(b, e); }\n")
        self.assert_flags("sort-doubles", self.run_lint())

    def test_config_allowlist_suppresses_whole_file(self):
        self.write_config(
            "allow sort-doubles src/util/w.cc -- audited, NaN screened\n")
        self.write("src/util/w.cc",
                   "void f() { std::sort(b, e); std::sort(b, e); }\n")
        self.assert_clean(self.run_lint())

    def test_bench_sorts_are_not_checked(self):
        self.write("bench/w.cc", "void f() { std::sort(b, e); }\n")
        self.assert_clean(self.run_lint())


class SimdIncludeRuleTest(LintFixture):
    def test_flags_immintrin_outside_kernel_tus(self):
        self.write("src/util/w.cc", "#include <immintrin.h>\n")
        self.assert_flags("simd-include", self.run_lint())

    def test_flags_arm_neon(self):
        self.write("src/util/w.cc", "#include <arm_neon.h>\n")
        self.assert_flags("simd-include", self.run_lint())

    def test_kernel_tus_are_exempt(self):
        self.write("src/util/simd_avx2.cc", "#include <immintrin.h>\n")
        self.write("src/util/simd_neon.cc", "#include <arm_neon.h>\n")
        self.assert_clean(self.run_lint())


class SeededRngRuleTest(LintFixture):
    def test_flags_rand_srand_random_device_time(self):
        for snippet in ("int x = rand();\n",
                        "srand(42);\n",
                        "std::random_device rd;\n",
                        "auto seed = time(NULL);\n",
                        "auto seed = time(nullptr);\n"):
            self.write("src/util/w.cc", snippet)
            self.assert_flags("seeded-rng", self.run_lint())

    def test_prose_time_does_not_fire(self):
        # time(...) with a real argument expression is some other function.
        self.write("src/util/w.cc", "double t = elapsed_time(clock_id);\n")
        self.assert_clean(self.run_lint())


class ContractHeaderRuleTest(LintFixture):
    def test_header_without_contract_flagged(self):
        self.write("src/util/w.h",
                   "// A widget.\n#ifndef W_H_\n#define W_H_\n#endif\n")
        self.assert_flags("contract-header", self.run_lint())

    def test_header_with_contract_passes(self):
        self.write("src/util/w.h", CLEAN_HEADER)
        self.assert_clean(self.run_lint())

    def test_needs_both_ownership_and_threading(self):
        self.write("src/util/w.h",
                   "// Thread-safe widget registry.\n"
                   "#ifndef W_H_\n#define W_H_\n#endif\n")
        self.assert_flags("contract-header", self.run_lint())

    def test_source_files_are_not_required_to_carry_it(self):
        self.write("src/util/w.cc", "int x;\n")
        self.assert_clean(self.run_lint())


class FuzzTargetRuleTest(LintFixture):
    ENTRY = ("#include <cstddef>\n#include <cstdint>\n"
             "extern \"C\" int LLVMFuzzerTestOneInput(const uint8_t* d,"
             " size_t n) { (void)d; (void)n; return 0; }\n")

    def write_wired_target(self, stem="sample_fuzz"):
        self.write(f"fuzz/{stem}.cc", self.ENTRY)
        self.write("fuzz/CMakeLists.txt",
                   f"moche_add_fuzz_target({stem} LIBS moche::util)\n")
        self.write(f"fuzz/corpus/{stem}/seed_00", "bytes")

    def test_fully_wired_target_is_clean(self):
        self.write_wired_target()
        self.assert_clean(self.run_lint())

    def test_missing_entry_point_flagged(self):
        self.write_wired_target()
        self.write("fuzz/sample_fuzz.cc", "int main() { return 0; }\n")
        proc = self.run_lint()
        self.assert_flags("fuzz-target", proc)
        self.assertIn("LLVMFuzzerTestOneInput", proc.stdout)

    def test_entry_point_in_comment_does_not_count(self):
        self.write_wired_target()
        self.write("fuzz/sample_fuzz.cc",
                   "// int LLVMFuzzerTestOneInput(const uint8_t*, size_t)\n"
                   "int main() { return 0; }\n")
        self.assert_flags("fuzz-target", self.run_lint())

    def test_unregistered_target_flagged(self):
        self.write_wired_target()
        self.write("fuzz/CMakeLists.txt", "# no registrations\n")
        proc = self.run_lint()
        self.assert_flags("fuzz-target", proc)
        self.assertIn("not registered", proc.stdout)

    def test_empty_corpus_flagged(self):
        self.write_wired_target()
        os.remove(os.path.join(self.root, "fuzz/corpus/sample_fuzz/seed_00"))
        proc = self.run_lint()
        self.assert_flags("fuzz-target", proc)
        self.assertIn("seed corpus", proc.stdout)

    def test_missing_corpus_dir_flagged(self):
        self.write(f"fuzz/sample_fuzz.cc", self.ENTRY)
        self.write("fuzz/CMakeLists.txt",
                   "moche_add_fuzz_target(sample_fuzz LIBS moche::util)\n")
        self.assert_flags("fuzz-target", self.run_lint())

    def test_infrastructure_files_are_exempt(self):
        # provider.h / replay_main.cc do not match *_fuzz.cc and carry no
        # entry point of their own.
        self.write("fuzz/replay_main.cc", "int main() { return 0; }\n")
        self.write("fuzz/provider.h", "// helpers\nint x;\n")
        self.assert_clean(self.run_lint())

    def test_inline_allow_suppresses(self):
        self.write("fuzz/sample_fuzz.cc",
                   "// moche-lint: allow(fuzz-target): scaffold, wired in "
                   "the next commit\n" + self.ENTRY)
        self.write("fuzz/CMakeLists.txt", "# nothing yet\n")
        self.assert_clean(self.run_lint())


class ConfigErrorTest(LintFixture):
    def test_allow_without_reason_is_config_error(self):
        self.write_config("allow sort-doubles src/util/w.cc\n")
        self.write("src/util/w.h", CLEAN_HEADER)
        proc = self.run_lint()
        self.assertEqual(proc.returncode, 2)
        self.assertIn("reason", proc.stderr)

    def test_unknown_rule_is_config_error(self):
        self.write_config("allow no-such-rule src/x.cc -- because\n")
        self.write("src/util/w.h", CLEAN_HEADER)
        self.assertEqual(self.run_lint().returncode, 2)

    def test_unknown_directive_is_config_error(self):
        self.write_config("permit everything\n")
        self.write("src/util/w.h", CLEAN_HEADER)
        self.assertEqual(self.run_lint().returncode, 2)

    def test_missing_config_file_is_config_error(self):
        os.remove(self.config)
        self.write("src/util/w.h", CLEAN_HEADER)
        self.assertEqual(self.run_lint().returncode, 2)


class ExplicitPathTest(LintFixture):
    def test_checking_one_file_by_path(self):
        self.write("src/util/bad.cc", "std::thread t;\n")
        self.write("src/util/good.cc", "int x;\n")
        proc = self.run_lint(os.path.join(self.root, "src/util/good.cc"))
        self.assert_clean(proc)
        proc = self.run_lint(os.path.join(self.root, "src/util/bad.cc"))
        self.assert_flags("raw-thread", proc)


if __name__ == "__main__":
    unittest.main()
