// Checkpoint/restore throughput of the persistence subsystem: a
// DriftMonitor fleet (drift-scenario streams, accumulated event log) is
// serialized to sharded snapshot files and restored, timed through the
// shared bench runner.
//
// Usage: bench_persist [--streams 32] [--length 1200] [--window 120]
//                      [--shards 4] [--quick]
//
// Reports persist.checkpoint_ms / persist.restore_ms (the headline
// medians), the checkpoint's on-disk footprint, and two identity checks —
// the restored monitor re-serializes to byte-identical blobs (the snapshot
// fixed point) and its event log matches the original (SameEventLogs).
// Exits non-zero when either identity fails: a perf number for a codec
// that does not round-trip is meaningless. Emits BENCH_persist.json;
// --quick (the CI perf-smoke mode) shrinks every dimension.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "persist/monitor_codec.h"
#include "runner.h"
#include "stream/drift_monitor.h"
#include "timeseries/generators.h"

using namespace moche;

namespace {

// Builds a monitor mid-deployment: every scenario stream registered and
// fully replayed, so the checkpoint carries real windows, re-arm state,
// and a non-empty event log.
stream::DriftMonitor BuildLoadedMonitor(
    const std::vector<ts::DriftScenario>& scenarios, size_t window,
    size_t batch_ticks) {
  stream::MonitorOptions options;
  options.rearm = stream::RearmPolicy::kOncePerExcursion;
  auto monitor = stream::DriftMonitor::Create(options);
  if (!monitor.ok()) {
    std::fprintf(stderr, "monitor: %s\n",
                 monitor.status().ToString().c_str());
    std::exit(1);
  }
  for (const ts::DriftScenario& scenario : scenarios) {
    auto index = monitor->AddStream(scenario.name, scenario.reference, window);
    if (!index.ok()) {
      std::fprintf(stderr, "AddStream(%s): %s\n", scenario.name.c_str(),
                   index.status().ToString().c_str());
      std::exit(1);
    }
  }
  size_t max_len = 0;
  for (const ts::DriftScenario& s : scenarios) {
    max_len = std::max(max_len, s.observations.size());
  }
  std::vector<std::vector<double>> batch(scenarios.size());
  for (size_t t0 = 0; t0 < max_len; t0 += batch_ticks) {
    for (size_t i = 0; i < scenarios.size(); ++i) {
      const std::vector<double>& obs = scenarios[i].observations;
      const size_t begin = std::min(obs.size(), t0);
      const size_t end = std::min(obs.size(), begin + batch_ticks);
      batch[i].assign(obs.begin() + static_cast<long>(begin),
                      obs.begin() + static_cast<long>(end));
    }
    const Status status = monitor->PushBatch(batch);
    if (!status.ok()) {
      std::fprintf(stderr, "PushBatch: %s\n", status.ToString().c_str());
      std::exit(1);
    }
  }
  return std::move(monitor).value();
}

size_t ArgOrDefault(int argc, char** argv, const char* flag, size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return static_cast<size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::QuickMode(argc, argv);
  const size_t streams = ArgOrDefault(argc, argv, "--streams", quick ? 8 : 32);
  const size_t length = ArgOrDefault(argc, argv, "--length", quick ? 400 : 1200);
  const size_t window = ArgOrDefault(argc, argv, "--window", quick ? 80 : 120);
  const uint32_t shards = static_cast<uint32_t>(
      ArgOrDefault(argc, argv, "--shards", 4));

  const std::vector<ts::DriftScenario> scenarios = ts::MakeDriftScenarioSuite(
      streams, /*seed=*/20210817, /*reference_size=*/quick ? 200 : 500,
      length);
  stream::DriftMonitor monitor =
      BuildLoadedMonitor(scenarios, window, /*batch_ticks=*/64);
  std::printf("fleet: %zu streams, %llu observations, %zu events\n",
              monitor.num_streams(),
              static_cast<unsigned long long>(monitor.stats().observations),
              monitor.events().size());

  persist::CheckpointOptions checkpoint_options;
  checkpoint_options.num_shards = shards;
  // Scratch checkpoint under the system temp dir (pid-suffixed), not the
  // working directory — benches must not litter a source checkout.
  const char* tmp = std::getenv("TMPDIR");
  const std::string dir = std::string(tmp != nullptr ? tmp : "/tmp") +
                          "/bench_persist." + std::to_string(getpid()) +
                          ".ckpt";

  bench::RunnerOptions runner;
  runner.warmup = 1;
  runner.repetitions = quick ? 3 : 7;

  const bench::TimingStats checkpoint_stats = bench::Measure(
      [&] {
        const Status status =
            persist::CheckpointMonitor(monitor, dir, checkpoint_options);
        if (!status.ok()) {
          std::fprintf(stderr, "checkpoint: %s\n",
                       status.ToString().c_str());
          std::exit(1);
        }
      },
      runner);

  const bench::TimingStats restore_stats = bench::Measure(
      [&] {
        auto restored = persist::RestoreMonitor(dir);
        if (!restored.ok()) {
          std::fprintf(stderr, "restore: %s\n",
                       restored.status().ToString().c_str());
          std::exit(1);
        }
      },
      runner);

  // Identity gates: the restored monitor must carry the same event log and
  // re-serialize to byte-identical blobs (the snapshot fixed point).
  auto blobs = persist::MonitorCodec::Serialize(monitor, checkpoint_options);
  auto restored = persist::RestoreMonitor(dir);
  if (!blobs.ok() || !restored.ok()) {
    std::fprintf(stderr, "identity setup failed\n");
    return 1;
  }
  const bool events_same =
      stream::SameEventLogs(monitor.events(), restored->events());
  auto reblobs =
      persist::MonitorCodec::Serialize(*restored, checkpoint_options);
  const bool bytes_same = reblobs.ok() &&
                          reblobs->manifest == blobs->manifest &&
                          reblobs->shards == blobs->shards;
  std::printf("identity: events %s, bytes %s\n",
              events_same ? "ok" : "MISMATCH",
              bytes_same ? "ok" : "MISMATCH");

  size_t checkpoint_bytes = blobs->manifest.size();
  for (const std::string& shard : blobs->shards) {
    checkpoint_bytes += shard.size();
  }
  std::printf("checkpoint: %zu bytes across %u shards\n", checkpoint_bytes,
              shards);
  std::printf("checkpoint median %.3f ms, restore median %.3f ms\n",
              checkpoint_stats.median * 1e3, restore_stats.median * 1e3);

  std::vector<bench::BenchResult> results;
  bench::AppendRecord(&results, "persist", "persist.checkpoint_ms",
                      checkpoint_stats.median * 1e3, "ms", 1);
  bench::AppendRecord(&results, "persist", "persist.restore_ms",
                      restore_stats.median * 1e3, "ms", 1);
  bench::AppendTiming(&results, "persist", "persist.checkpoint",
                      checkpoint_stats, 1);
  bench::AppendTiming(&results, "persist", "persist.restore", restore_stats,
                      1);
  bench::AppendRecord(&results, "persist", "persist.checkpoint.bytes",
                      static_cast<double>(checkpoint_bytes), "bytes", 1);
  bench::AppendRecord(&results, "persist", "persist.shards",
                      static_cast<double>(shards), "count", 1);
  bench::AppendRecord(&results, "persist", "persist.roundtrip.identical",
                      events_same && bytes_same ? 1.0 : 0.0, "bool", 1);
  const Status status = bench::WriteBenchJson("persist", std::move(results));
  if (!status.ok()) {
    std::fprintf(stderr, "WriteBenchJson: %s\n", status.ToString().c_str());
    return 1;
  }

  // Remove the scratch checkpoint (file names are the codec's contract).
  unlink((dir + "/" + persist::kManifestFileName).c_str());
  for (uint32_t s = 0; s < shards; ++s) {
    unlink((dir + "/" + persist::ShardFileName(s)).c_str());
  }
  rmdir(dir.c_str());
  return events_same && bytes_same ? 0 : 1;
}
