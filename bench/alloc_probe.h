// The bench-side face of the counting global operator new behind the
// machine-readable `expl.steady_allocs` metric (allocation CALLS performed
// by a warmed-up hot path; the zero-allocation pipeline's acceptance
// number).
//
// Single source of truth: the replaceable allocation functions and the
// AllocationProbe live in tests/testing_alloc.h (the fixture the
// regression tests use) — this header includes them so the bench and test
// probes can never drift apart, and re-exports the two names under
// moche::bench. Including this header DEFINES the program-wide operator
// new/delete set, so include it from exactly ONE translation unit per
// bench binary.

#ifndef MOCHE_BENCH_ALLOC_PROBE_H_
#define MOCHE_BENCH_ALLOC_PROBE_H_

#include "../tests/testing_alloc.h"

namespace moche {
namespace bench {

using testing_alloc::AllocationCount;
using testing_alloc::AllocationProbe;

}  // namespace bench
}  // namespace moche

#endif  // MOCHE_BENCH_ALLOC_PROBE_H_
