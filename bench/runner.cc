#include "runner.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "util/simd.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace moche {
namespace bench {

namespace {

const char* EnvOr(const char* name, const char* fallback) {
  const char* value = std::getenv(name);
  return (value != nullptr && value[0] != '\0') ? value : fallback;
}

void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
}

// A minimal recursive-descent reader for the flat JSON this file emits:
// arrays of objects whose values are strings or numbers. Not a general JSON
// parser — exactly the subset ToJson/WriteBenchJson produce. Hostile input
// hardening (BENCH files can come from artifact stores and hand edits):
// a document byte budget, explicit rejection of nested containers (the
// schema is depth 2: one array of flat records), and integer fields parsed
// through an overflow-checked path — casting an arbitrary double to size_t
// is UB for negative or huge values.
constexpr size_t kMaxBenchJsonBytes = 8 * 1024 * 1024;  // 8 MiB

// Largest integer a double carries exactly; counts above this cannot round-
// trip through the JSON number representation.
constexpr double kMaxExactCount = 9007199254740992.0;  // 2^53

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  Result<std::string> ParseString() {
    SkipSpace();
    if (!Consume('"')) {
      return Status::InvalidArgument("expected '\"'");
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Status::InvalidArgument("bad \\u escape digit");
            }
          }
          if (code > 0x7f) {
            return Status::InvalidArgument(
                "non-ASCII \\u escape is outside the BENCH_*.json subset");
          }
          out += static_cast<char>(code);
          break;
        }
        default:
          return Status::InvalidArgument(
              StrFormat("unknown escape \\%c", esc));
      }
    }
    return Status::InvalidArgument("unterminated string");
  }

  Result<double> ParseNumber() {
    SkipSpace();
    if (pos_ < text_.size() && (text_[pos_] == '{' || text_[pos_] == '[')) {
      return Status::InvalidArgument(
          "nested containers are outside the BENCH_*.json subset");
    }
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::strchr("+-.eE", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected a number");
    }
    const std::string token = text_.substr(start, pos_ - start);
    double value = 0.0;
    // moche::ParseDouble is locale-independent (std::from_chars): a
    // comma-decimal LC_NUMERIC must not make every BENCH value token
    // unparseable (strtod would stop at the '.').
    if (!moche::ParseDouble(token, &value)) {
      return Status::InvalidArgument(StrFormat("bad number '%s'",
                                               token.c_str()));
    }
    return value;
  }

  /// A non-negative integer field (threads/samples), range-checked BEFORE
  /// the size_t conversion: casting a negative or out-of-range double to an
  /// unsigned integer is undefined behavior, and counts above 2^53 cannot
  /// have round-tripped through a JSON number exactly anyway.
  Result<size_t> ParseCount(const char* field) {
    MOCHE_ASSIGN_OR_RETURN(const double v, ParseNumber());
    if (!(v >= 0.0) || v > kMaxExactCount || v != std::floor(v)) {
      return Status::InvalidArgument(
          StrFormat("'%s' must be a non-negative integer", field));
    }
    return static_cast<size_t>(v);
  }

  /// One {"key": string-or-number, ...} object into a BenchResult. The
  /// seven original schema keys must be present exactly once; unknown keys
  /// are errors — a truncated or hand-edited record must never parse into
  /// a plausible-looking default (0.0 would read as an infinite speedup).
  /// "isa" alone is optional (pre-SIMD files lack it) and defaults to
  /// "unknown".
  Result<BenchResult> ParseRecord() {
    if (!Consume('{')) {
      return Status::InvalidArgument("expected '{'");
    }
    BenchResult r;
    enum Key {
      kBench = 0,
      kMetric,
      kUnit,
      kCommit,
      kValue,
      kThreads,
      kSamples,
      kIsa,
      kKeyCount
    };
    static const char* const kKeyNames[kKeyCount] = {
        "bench",   "metric",  "unit", "commit",
        "value",   "threads", "samples", "isa"};
    bool seen[kKeyCount] = {};
    const auto claim = [&seen](Key k) {
      if (seen[k]) {
        return Status::InvalidArgument(
            StrFormat("duplicate key '%s'", kKeyNames[k]));
      }
      seen[k] = true;
      return Status::OK();
    };
    bool first = true;
    while (!Consume('}')) {
      if (!first && !Consume(',')) {
        return Status::InvalidArgument("expected ',' between fields");
      }
      first = false;
      MOCHE_ASSIGN_OR_RETURN(const std::string key, ParseString());
      if (!Consume(':')) {
        return Status::InvalidArgument("expected ':' after key");
      }
      if (key == "bench") {
        MOCHE_RETURN_IF_ERROR(claim(kBench));
        MOCHE_ASSIGN_OR_RETURN(r.bench, ParseString());
      } else if (key == "metric") {
        MOCHE_RETURN_IF_ERROR(claim(kMetric));
        MOCHE_ASSIGN_OR_RETURN(r.metric, ParseString());
      } else if (key == "unit") {
        MOCHE_RETURN_IF_ERROR(claim(kUnit));
        MOCHE_ASSIGN_OR_RETURN(r.unit, ParseString());
      } else if (key == "commit") {
        MOCHE_RETURN_IF_ERROR(claim(kCommit));
        MOCHE_ASSIGN_OR_RETURN(r.commit, ParseString());
      } else if (key == "value") {
        MOCHE_RETURN_IF_ERROR(claim(kValue));
        MOCHE_ASSIGN_OR_RETURN(r.value, ParseNumber());
      } else if (key == "threads") {
        MOCHE_RETURN_IF_ERROR(claim(kThreads));
        MOCHE_ASSIGN_OR_RETURN(r.threads, ParseCount("threads"));
      } else if (key == "samples") {
        MOCHE_RETURN_IF_ERROR(claim(kSamples));
        MOCHE_ASSIGN_OR_RETURN(r.samples, ParseCount("samples"));
      } else if (key == "isa") {
        MOCHE_RETURN_IF_ERROR(claim(kIsa));
        MOCHE_ASSIGN_OR_RETURN(r.isa, ParseString());
      } else {
        return Status::InvalidArgument(
            StrFormat("unknown key '%s'", key.c_str()));
      }
    }
    for (int k = 0; k < kKeyCount; ++k) {
      if (k == kIsa) continue;  // optional: pre-SIMD files lack it
      if (!seen[k]) {
        return Status::InvalidArgument(
            StrFormat("record is missing '%s'", kKeyNames[k]));
      }
    }
    if (!seen[kIsa]) r.isa = "unknown";
    MOCHE_RETURN_IF_ERROR(ValidateBenchResult(r));
    return r;
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Status ValidateBenchResult(const BenchResult& result) {
  if (result.bench.empty()) {
    return Status::InvalidArgument("bench name is empty");
  }
  if (result.metric.empty()) {
    return Status::InvalidArgument("metric name is empty");
  }
  if (result.unit.empty()) {
    return Status::InvalidArgument(
        StrFormat("metric '%s' has an empty unit", result.metric.c_str()));
  }
  if (!std::isfinite(result.value)) {
    return Status::InvalidArgument(
        StrFormat("metric '%s' has a non-finite value", result.metric.c_str()));
  }
  if (result.threads == 0) {
    return Status::InvalidArgument(
        StrFormat("metric '%s' has threads == 0 (resolve the hardware knob "
                  "before recording)",
                  result.metric.c_str()));
  }
  if (result.samples == 0) {
    return Status::InvalidArgument(
        StrFormat("metric '%s' is backed by zero samples",
                  result.metric.c_str()));
  }
  return Status::OK();
}

std::string ToJson(const BenchResult& result) {
  std::string out = "{\"bench\": \"";
  AppendEscaped(result.bench, &out);
  out += "\", \"metric\": \"";
  AppendEscaped(result.metric, &out);
  // AppendG17 (std::to_chars), not printf: a comma-decimal locale must
  // never corrupt the value token.
  out += "\", \"value\": ";
  AppendG17(result.value, &out);
  out += ", \"unit\": \"";
  AppendEscaped(result.unit, &out);
  out += StrFormat("\", \"threads\": %zu, \"samples\": %zu, \"isa\": \"",
                   result.threads, result.samples);
  AppendEscaped(result.isa, &out);
  out += "\", \"commit\": \"";
  AppendEscaped(result.commit, &out);
  out += "\"}";
  return out;
}

namespace {

Status CheckByteBudget(const std::string& json) {
  if (json.size() > kMaxBenchJsonBytes) {
    return Status::InvalidArgument(
        StrFormat("document is %zu bytes, over the %zu-byte BENCH budget",
                  json.size(), kMaxBenchJsonBytes));
  }
  return Status::OK();
}

}  // namespace

Result<BenchResult> FromJson(const std::string& json) {
  MOCHE_RETURN_IF_ERROR(CheckByteBudget(json));
  JsonReader reader(json);
  MOCHE_ASSIGN_OR_RETURN(BenchResult r, reader.ParseRecord());
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing characters after the record");
  }
  return r;
}

Result<std::vector<BenchResult>> ParseBenchJson(const std::string& json) {
  MOCHE_RETURN_IF_ERROR(CheckByteBudget(json));
  JsonReader reader(json);
  if (!reader.Consume('[')) {
    return Status::InvalidArgument("expected a JSON array");
  }
  std::vector<BenchResult> out;
  bool first = true;
  while (!reader.Consume(']')) {
    if (!first && !reader.Consume(',')) {
      return Status::InvalidArgument("expected ',' between records");
    }
    first = false;
    MOCHE_ASSIGN_OR_RETURN(BenchResult r, reader.ParseRecord());
    out.push_back(std::move(r));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing characters after the array");
  }
  return out;
}

Status WriteBenchJson(const std::string& name,
                      std::vector<BenchResult> results,
                      std::string out_dir) {
  if (name.empty()) {
    return Status::InvalidArgument("bench file name is empty");
  }
  const char* commit = EnvOr("MOCHE_BENCH_COMMIT", EnvOr("GITHUB_SHA",
                                                         "unknown"));
  const char* isa = simd::ActiveIsaName();
  for (BenchResult& r : results) {
    if (r.commit.empty()) r.commit = commit;
    if (r.isa.empty()) r.isa = isa;
    MOCHE_RETURN_IF_ERROR(ValidateBenchResult(r));
  }
  if (out_dir.empty()) out_dir = EnvOr("MOCHE_BENCH_OUT_DIR", ".");
  const std::string path = out_dir + "/BENCH_" + name + ".json";
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::InvalidArgument(
        StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  // Build the document in memory and write it in one shot: no operator<<,
  // so no formatting path that could ever consult the imbued locale.
  std::string doc = "[\n";
  for (size_t i = 0; i < results.size(); ++i) {
    doc += "  ";
    doc += ToJson(results[i]);
    if (i + 1 < results.size()) doc += ",";
    doc += "\n";
  }
  doc += "]\n";
  file.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  file.flush();
  if (!file) {
    return Status::Internal(StrFormat("short write to '%s'", path.c_str()));
  }
  return Status::OK();
}

TimingStats SummarizeTimings(const std::vector<double>& seconds) {
  TimingStats stats;
  stats.samples = seconds.size();
  if (seconds.empty()) return stats;
  stats.median = Median(seconds);
  stats.p10 = Quantile(seconds, 0.10);
  stats.p90 = Quantile(seconds, 0.90);
  stats.min = *std::min_element(seconds.begin(), seconds.end());
  for (double s : seconds) stats.total += s;
  return stats;
}

TimingStats Measure(const std::function<void()>& fn,
                    const RunnerOptions& options) {
  for (size_t i = 0; i < options.warmup; ++i) fn();
  std::vector<double> seconds;
  seconds.reserve(options.repetitions);
  WallTimer timer;
  for (size_t i = 0; i < options.repetitions; ++i) {
    timer.Restart();
    fn();
    seconds.push_back(timer.Seconds());
  }
  return SummarizeTimings(seconds);
}

void AppendTiming(std::vector<BenchResult>* results, const std::string& bench,
                  const std::string& metric_prefix, const TimingStats& stats,
                  size_t threads, double ops_per_rep, const char* unit) {
  const auto record = [&](const char* suffix, double value) {
    BenchResult r;
    r.bench = bench;
    r.metric = metric_prefix + suffix;
    r.value = value / ops_per_rep;
    r.unit = unit;
    r.threads = threads;
    r.samples = stats.samples;
    results->push_back(std::move(r));
  };
  record(".median", stats.median);
  record(".p10", stats.p10);
  record(".p90", stats.p90);
}

void AppendRecord(std::vector<BenchResult>* results, const std::string& bench,
                  const std::string& metric, double value, const char* unit,
                  size_t threads) {
  BenchResult r;
  r.bench = bench;
  r.metric = metric;
  r.value = value;
  r.unit = unit;
  r.threads = threads;
  results->push_back(std::move(r));
}

bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  // Empty means unset, matching the EnvOr convention above.
  return EnvOr("MOCHE_BENCH_QUICK", nullptr) != nullptr;
}

}  // namespace bench
}  // namespace moche
