// The shared benchmark runner: standardized warmup/repetition timing and a
// machine-readable result format, so every bench binary reports comparable,
// regression-trackable numbers instead of free-form text.
//
// A bench times its workload with Measure (warmup iterations discarded,
// median/p10/p90 over the measured repetitions), collects BenchResult
// records, and hands them to WriteBenchJson, which schema-validates every
// record and writes `BENCH_<name>.json` — a JSON array of flat objects
//   {"bench", "metric", "value", "unit", "threads", "samples", "isa",
//    "commit"}
// — next to the binary (or into MOCHE_BENCH_OUT_DIR). "isa" records which
// SIMD kernel table (util/simd.h) the process dispatched — comparing an
// avx2 run against a scalar run is measuring the dispatch, not a
// regression. CI uploads these files as artifacts; docs/BENCHMARKS.md
// documents the schema and how to compare a before/after pair.
//
// Ownership & thread-safety: everything here is value-typed and stateless;
// the functions are safe to call from multiple threads as long as two
// WriteBenchJson calls do not target the same file. The timed callback runs
// on the calling thread — parallel workloads manage their own pools.
//
// Quick mode (QuickMode(): `--quick` on the command line or a non-empty
// MOCHE_BENCH_QUICK environment variable) is the CI perf-smoke contract:
// benches shrink workloads/repetitions so the suite finishes in seconds
// while still exercising every code path and emitting schema-valid JSON.

#ifndef MOCHE_BENCH_RUNNER_H_
#define MOCHE_BENCH_RUNNER_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace moche {
namespace bench {

/// One benchmark measurement. `metric` names what was measured (dotted
/// lowercase path, e.g. "theorem1_check.w10000.median"); `unit` is the
/// value's unit ("s", "ns", "obs/s", "x", ...); `threads` the worker count
/// the measurement ran with; `samples` how many measured repetitions (or
/// runs) back the value; `isa` the dispatched SIMD kernel table
/// (simd::ActiveIsaName()) and `commit` the source revision, both
/// auto-filled by WriteBenchJson when left empty.
struct BenchResult {
  std::string bench;
  std::string metric;
  double value = 0.0;
  std::string unit;
  size_t threads = 1;
  size_t samples = 1;
  std::string isa;
  std::string commit;
};

/// Schema validation: non-empty bench/metric/unit, finite value, and
/// samples/threads >= 1. WriteBenchJson rejects a batch containing any
/// invalid record, so malformed rows can never reach a BENCH_*.json.
Status ValidateBenchResult(const BenchResult& result);

/// Serializes one record as a single-line JSON object (strings escaped).
std::string ToJson(const BenchResult& result);

/// Parses a single JSON object produced by ToJson (round-trip inverse).
/// InvalidArgument on malformed JSON, an unknown or missing key (the seven
/// original schema keys are required — a truncated record must not parse
/// into plausible defaults), or a schema-invalid record (the golden-schema
/// test exercises these paths). "isa" is optional so pre-SIMD BENCH files
/// keep parsing: a record without it reads back as isa == "unknown".
/// Hostile-input hardening (BENCH files arrive from artifact stores and
/// hand edits): documents over an 8 MiB byte budget, nested containers
/// (the schema is one array of flat records), duplicate keys, and
/// threads/samples values that are negative, fractional, or above 2^53
/// are all rejected rather than truncated into plausible records.
Result<BenchResult> FromJson(const std::string& json);

/// Parses a full BENCH_*.json array (the WriteBenchJson output format).
/// Same hardening guarantees as FromJson.
Result<std::vector<BenchResult>> ParseBenchJson(const std::string& json);

/// Validates every record, fills empty `commit` fields from
/// MOCHE_BENCH_COMMIT (or GITHUB_SHA, or "unknown"), and writes
/// `<out_dir>/BENCH_<name>.json`. out_dir defaults to MOCHE_BENCH_OUT_DIR
/// or ".". Returns the first validation error without writing anything.
Status WriteBenchJson(const std::string& name,
                      std::vector<BenchResult> results,
                      std::string out_dir = "");

/// Repetition policy for Measure.
struct RunnerOptions {
  size_t warmup = 1;       ///< untimed runs before measuring
  size_t repetitions = 5;  ///< timed runs (odd keeps the median a sample)
};

/// The standardized timing summary: per-repetition wall seconds.
struct TimingStats {
  double median = 0.0;
  double p10 = 0.0;
  double p90 = 0.0;
  double min = 0.0;
  double total = 0.0;
  size_t samples = 0;
};

/// Summarizes raw per-repetition timings (seconds).
TimingStats SummarizeTimings(const std::vector<double>& seconds);

/// Runs `fn` options.warmup times untimed, then options.repetitions times
/// timed, and returns the summary. `fn` must be idempotent across calls.
TimingStats Measure(const std::function<void()>& fn,
                    const RunnerOptions& options = {});

/// Appends the standard three records (<prefix>.median/.p10/.p90) for one
/// timed workload; the median is the headline number a before/after
/// comparison reads, the p10/p90 spread says whether it is trustworthy.
/// Per-operation metrics divide every statistic by `ops_per_rep` (the inner
/// batch size one repetition ran) and should pass unit "s/op".
void AppendTiming(std::vector<BenchResult>* results, const std::string& bench,
                  const std::string& metric_prefix, const TimingStats& stats,
                  size_t threads, double ops_per_rep = 1.0,
                  const char* unit = "s");

/// Appends one single-sample record (counts, rates, speedups, identity
/// flags) — the shared constructor for everything AppendTiming doesn't
/// cover.
void AppendRecord(std::vector<BenchResult>* results, const std::string& bench,
                  const std::string& metric, double value, const char* unit,
                  size_t threads);

/// True when `--quick` appears in argv or MOCHE_BENCH_QUICK is non-empty
/// in the environment: the CI perf-smoke mode (small workloads, few
/// repetitions).
bool QuickMode(int argc, char** argv);

}  // namespace bench
}  // namespace moche

#endif  // MOCHE_BENCH_RUNNER_H_
