// The multi-stream drift-explanation monitor end to end: N concurrent
// scenario streams (mean shift / variance inflation / transient spike,
// known ground-truth drift ticks) share one interned reference and replay
// through a stream::DriftMonitor at 1..T threads.
//
// Usage: bench_stream_monitor [--streams 64] [--threads 1,2,4,8,0]
//                             [--length 1500] [--window 150]
//                             [--reference 1000] [--batch 64] [--quick]
//
// (0 in --threads = one per hardware core.) Reports observations/sec and
// explanations/sec per thread count and verifies that every parallel
// drift-event log — (stream, tick, statistic, explanation indices) — is
// bit-identical to the sequential run. Exits non-zero on any mismatch.
// Also measures the no-drift fleet steady state (every stream fed
// in-distribution observations, sequential monitor): steady.obs_rate and
// `expl.steady_allocs`, the heap allocation calls per warmed-up PushBatch
// counted by the alloc_probe.h operator-new hooks — exactly 0 under the
// zero-allocation pipeline.
// Speedup is hardware-bound: a 1-core container shows ~1x everywhere; the
// identity checks still run. Emits BENCH_stream_monitor.json via the shared
// bench runner; --quick (the CI perf-smoke mode) shrinks every dimension.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "alloc_probe.h"
#include "bench_common.h"
#include "runner.h"
#include "stream/drift_monitor.h"
#include "util/parallel.h"
#include "util/string_util.h"
#include "util/timer.h"

using namespace moche;

namespace {

std::vector<size_t> ParseThreadList(const char* arg) {
  std::vector<size_t> out;
  size_t current = 0;
  bool have_digit = false;
  for (const char* p = arg;; ++p) {
    if (*p >= '0' && *p <= '9') {
      current = current * 10 + static_cast<size_t>(*p - '0');
      have_digit = true;
    } else if (*p == ',' || *p == '\0') {
      if (have_digit) out.push_back(current);
      current = 0;
      have_digit = false;
      if (*p == '\0') break;
    } else {
      return {};
    }
  }
  return out;
}

struct RunOutcome {
  std::vector<stream::DriftEvent> events;
  double seconds = 0.0;
  uint64_t observations = 0;
  stream::PreparedReferenceCache::Stats cache;
};

// Replays every scenario through a fresh monitor at `num_threads`. All
// streams share `reference`, so the prepared-reference cache interns one
// entry no matter how many streams register.
RunOutcome RunMonitor(const std::vector<ts::DriftScenario>& scenarios,
                      const std::vector<double>& reference, size_t window,
                      size_t batch_ticks, size_t num_threads) {
  stream::MonitorOptions options;
  options.rearm = stream::RearmPolicy::kEveryKPushes;
  options.explain_every_k = 75;
  options.num_threads = num_threads;
  auto monitor = stream::DriftMonitor::Create(options);
  if (!monitor.ok()) {
    std::fprintf(stderr, "monitor: %s\n",
                 monitor.status().ToString().c_str());
    std::exit(1);
  }
  for (const ts::DriftScenario& sc : scenarios) {
    auto index = monitor->AddStream(sc.name, reference, window);
    if (!index.ok()) {
      std::fprintf(stderr, "add stream: %s\n",
                   index.status().ToString().c_str());
      std::exit(1);
    }
  }

  const size_t length = scenarios.front().observations.size();
  std::vector<std::vector<double>> batch(scenarios.size());
  WallTimer timer;
  for (size_t t0 = 0; t0 < length; t0 += batch_ticks) {
    for (size_t i = 0; i < scenarios.size(); ++i) {
      const auto& obs = scenarios[i].observations;
      const size_t end = std::min(obs.size(), t0 + batch_ticks);
      batch[i].assign(obs.begin() + static_cast<long>(t0),
                      obs.begin() + static_cast<long>(end));
    }
    const Status status = monitor->PushBatch(batch);
    if (!status.ok()) {
      std::fprintf(stderr, "push: %s\n", status.ToString().c_str());
      std::exit(1);
    }
  }

  RunOutcome out;
  out.seconds = timer.Seconds();
  out.observations = monitor->stats().observations;
  out.cache = monitor->cache_stats();
  out.events = monitor->events();
  return out;
}

struct SteadyOutcome {
  double obs_rate = 0.0;        // observations/sec over the probed segment
  double allocs_per_batch = 0.0;
  uint64_t events = 0;          // must stay 0 for the claim to be clean
};

// The no-drift fleet steady state, on a sequential monitor. Every stream
// is fed the reference's own values by a strided walk over their sorted
// ranks (stride ~ golden ratio * n): any `window` consecutive feeds cover
// the reference's quantiles near-uniformly (three-distance theorem), so
// the window's KS statistic stays an order of magnitude under the
// rejection threshold and no event ever fires — unlike a contiguous slice
// of the raw sequence, whose local fluctuations can reject by chance.
// After a warm-up that fills every window and every reusable buffer,
// measures throughput and heap allocation calls across `probe_batches`
// batches.
SteadyOutcome RunSteadyState(const std::vector<double>& reference,
                             size_t streams, size_t window,
                             size_t batch_ticks, size_t probe_batches) {
  stream::MonitorOptions options;
  options.num_threads = 1;
  auto monitor = stream::DriftMonitor::Create(options);
  if (!monitor.ok()) {
    std::fprintf(stderr, "steady monitor: %s\n",
                 monitor.status().ToString().c_str());
    std::exit(1);
  }
  for (size_t i = 0; i < streams; ++i) {
    auto index = monitor->AddStream("steady-" + std::to_string(i), reference,
                                    window);
    if (!index.ok()) {
      std::fprintf(stderr, "steady add stream: %s\n",
                   index.status().ToString().c_str());
      std::exit(1);
    }
  }

  std::vector<double> sorted_reference = reference;
  std::sort(sorted_reference.begin(), sorted_reference.end());
  const size_t n = sorted_reference.size();
  const size_t stride = static_cast<size_t>(0.618 * static_cast<double>(n));

  // Pre-built batch storage, reused for warm-up and probing: stream i
  // walks the sorted ranks starting at rank i.
  std::vector<std::vector<double>> batch(streams);
  std::vector<size_t> cursor(streams);
  for (size_t i = 0; i < streams; ++i) cursor[i] = i % n;
  const auto fill_batch = [&] {
    for (size_t i = 0; i < streams; ++i) {
      batch[i].clear();
      for (size_t t = 0; t < batch_ticks; ++t) {
        batch[i].push_back(sorted_reference[cursor[i]]);
        cursor[i] = (cursor[i] + stride) % n;
      }
    }
  };
  const auto push = [&] {
    fill_batch();
    const Status status = monitor->PushBatch(batch);
    if (!status.ok()) {
      std::fprintf(stderr, "steady push: %s\n", status.ToString().c_str());
      std::exit(1);
    }
  };

  const size_t warm_batches = window / batch_ticks + 8;
  for (size_t b = 0; b < warm_batches; ++b) push();

  bench::AllocationProbe probe;
  WallTimer timer;
  for (size_t b = 0; b < probe_batches; ++b) push();
  const double seconds = timer.Seconds();
  // fill_batch itself is allocation-free once warm (clear + push_back into
  // retained capacity), so the probe measures PushBatch alone.
  SteadyOutcome out;
  out.allocs_per_batch = static_cast<double>(probe.Delta()) /
                         static_cast<double>(probe_batches);
  out.obs_rate = static_cast<double>(probe_batches * batch_ticks * streams) /
                 seconds;
  out.events = monitor->stats().explanations;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::QuickMode(argc, argv);
  size_t streams = 64;
  size_t length = 1500;
  size_t window = 150;
  size_t reference_size = 1000;
  size_t batch_ticks = 64;
  std::vector<size_t> thread_counts{1, 2, 4, 8, 0};
  if (quick) {
    streams = 16;
    length = 600;
    reference_size = 500;
    thread_counts = {1, 2};
  }
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](size_t* out) {
      if (i + 1 >= argc) return false;
      *out = static_cast<size_t>(std::atoll(argv[++i]));
      return true;
    };
    bool ok = true;
    if (std::strcmp(argv[i], "--streams") == 0) {
      ok = next(&streams);
    } else if (std::strcmp(argv[i], "--length") == 0) {
      ok = next(&length);
    } else if (std::strcmp(argv[i], "--window") == 0) {
      ok = next(&window);
    } else if (std::strcmp(argv[i], "--reference") == 0) {
      ok = next(&reference_size);
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      ok = next(&batch_ticks);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts = ParseThreadList(argv[++i]);
      ok = !thread_counts.empty();
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      // already handled by bench::QuickMode
    } else {
      ok = false;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "usage: %s [--streams N] [--threads 1,2,4,0] "
                   "[--length L] [--window W] [--reference R] [--batch B] "
                   "[--quick]\n",
                   argv[0]);
      return 1;
    }
  }

  std::printf("=== Multi-stream drift monitor: 1 vs N threads ===\n\n");
  std::printf("hardware threads: %zu\n", HardwareConcurrency());
  std::printf(
      "streams: %zu  stream length: %zu  window: %zu  reference: %zu\n\n",
      streams, length, window, reference_size);

  const auto scenarios = ts::MakeDriftScenarioSuite(
      streams, bench::kExperimentSeed, reference_size, length);
  const std::vector<double>& reference = scenarios.front().reference;

  // Sequential baseline: the ground truth every parallel log must match.
  const RunOutcome base =
      RunMonitor(scenarios, reference, window, batch_ticks, 1);
  std::printf(
      "events: %zu   prepared-reference cache: %zu entr%s, %zu hits\n\n",
      base.events.size(), base.cache.entries,
      base.cache.entries == 1 ? "y" : "ies", base.cache.hits);

  harness::AsciiTable table(
      {"threads", "run_s", "obs/sec", "expl/sec", "speedup", "event log"});
  const double base_obs_rate =
      static_cast<double>(base.observations) / base.seconds;
  table.AddRow({"1 (seq)", bench::Fmt(base.seconds),
                bench::Fmt(base_obs_rate, 0),
                bench::Fmt(static_cast<double>(base.events.size()) /
                               base.seconds,
                           0),
                "1.00", "baseline"});

  const std::string kBench = "stream_monitor";
  std::vector<bench::BenchResult> records;
  const auto add_record = [&](const std::string& metric, double value,
                              const char* unit, size_t threads) {
    bench::AppendRecord(&records, kBench, metric, value, unit, threads);
  };
  add_record("streams", static_cast<double>(streams), "count", 1);
  add_record("events", static_cast<double>(base.events.size()), "count", 1);
  add_record("cache.entries", static_cast<double>(base.cache.entries),
             "count", 1);
  add_record("cache.hits", static_cast<double>(base.cache.hits), "count", 1);
  add_record("run.t1.wall", base.seconds, "s", 1);
  add_record("run.t1.obs_rate", base_obs_rate, "obs/s", 1);

  // No-drift steady state (sequential): throughput and allocation calls
  // per warmed-up batch. A nonzero expl.steady_allocs is an allocation
  // regression on the hot path, not noise — treat it like a failed
  // identity check when comparing before/after pairs.
  const SteadyOutcome steady = RunSteadyState(
      reference, streams, window, batch_ticks, quick ? 40 : 200);
  if (steady.events != 0) {
    std::fprintf(stderr,
                 "steady-state segment unexpectedly fired %llu events\n",
                 static_cast<unsigned long long>(steady.events));
    return 1;
  }
  std::printf("steady state: %.0f obs/sec, %.2f allocs/batch\n\n",
              steady.obs_rate, steady.allocs_per_batch);
  add_record("steady.obs_rate", steady.obs_rate, "obs/s", 1);
  add_record("expl.steady_allocs", steady.allocs_per_batch, "count", 1);

  bool all_identical = true;
  for (size_t threads : thread_counts) {
    if (threads == 1) continue;
    const RunOutcome run =
        RunMonitor(scenarios, reference, window, batch_ticks, threads);
    const bool identical = stream::SameEventLogs(base.events, run.events);
    all_identical = all_identical && identical;
    const size_t resolved = ResolveThreadCount(threads);
    // "thw" keeps the hardware-count row's key distinct from an explicit
    // thread count that happens to resolve to the same number.
    const std::string tkey =
        threads == 0 ? ".thw." : StrFormat(".t%zu.", threads);
    add_record("run" + tkey + "wall", run.seconds, "s", resolved);
    add_record("run" + tkey + "obs_rate",
               static_cast<double>(run.observations) / run.seconds, "obs/s",
               resolved);
    add_record("run" + tkey + "speedup", base.seconds / run.seconds, "x",
               resolved);
    add_record("run" + tkey + "identical", identical ? 1.0 : 0.0, "bool",
               resolved);
    table.AddRow(
        {threads == 0 ? StrFormat("%zu (hw)", resolved)
                      : StrFormat("%zu", threads),
         bench::Fmt(run.seconds),
         bench::Fmt(static_cast<double>(run.observations) / run.seconds, 0),
         bench::Fmt(static_cast<double>(run.events.size()) / run.seconds, 0),
         bench::Fmt(base.seconds / run.seconds),
         identical ? "identical" : "MISMATCH"});
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "(event log compared on (stream, tick, statistic, explanation "
      "indices);\n explanations throttled to one per 75 rejecting pushes "
      "per stream)\n");

  const Status written = bench::WriteBenchJson(kBench, records);
  if (!written.ok()) {
    std::fprintf(stderr, "BENCH_%s.json: %s\n", kBench.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_%s.json (%zu records)\n", kBench.c_str(),
              records.size());

  if (!all_identical) {
    std::fprintf(stderr, "\nFAIL: a parallel run's drift-event log "
                         "diverged from the sequential run\n");
    return 1;
  }
  return 0;
}
