// Reproduces Figure 2: average Is-Smallest-Explanation (ISE) per method on
// each dataset family, computed over the failed tests where every method
// produced an explanation (the paper's 847-of-2690 rule). Larger is better.
//
// Paper shape: MOCHE = 1.0 everywhere; GRC is the best baseline; GRD/CS
// middling; S2G/STMP/D3 poor.

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"

int main() {
  using namespace moche;
  std::printf("=== Figure 2: average ISE per dataset (larger = better) ===\n\n");
  const auto per_dataset = bench::RunStandardExperiment();

  std::vector<std::string> header{"Dataset", "#tests"};
  if (!per_dataset.empty()) {
    for (const auto& m : per_dataset.front().aggregates) {
      header.push_back(m.method);
    }
  }
  harness::AsciiTable table(header);
  for (const auto& ds : per_dataset) {
    std::vector<std::string> row{ds.dataset, StrFormat("%zu", ds.instances)};
    for (const auto& m : ds.aggregates) {
      row.push_back(m.ise_counted > 0 ? bench::Fmt(m.avg_ise) : "n/a");
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("ISE averaged over the failed tests where ALL methods "
              "produced an explanation.\n");
  std::printf("Paper shape: M = 1.00 on every dataset; GRC best baseline; "
              "S2G/STMP/D3 lowest.\n");
  return 0;
}
