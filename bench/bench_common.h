// Shared plumbing for the per-figure/per-table bench binaries: the standard
// method roster, the standard small-scale experiment configuration, and
// formatting helpers. Every bench prints the paper's rows/series; absolute
// numbers differ from the paper's testbed, the shapes are what matters
// (see docs/BENCHMARKS.md).

#ifndef MOCHE_BENCH_BENCH_COMMON_H_
#define MOCHE_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/corner_search.h"
#include "baselines/d3.h"
#include "baselines/grace.h"
#include "baselines/greedy.h"
#include "baselines/moche_explainer.h"
#include "baselines/s2g_explainer.h"
#include "baselines/stomp_explainer.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "timeseries/generators.h"

namespace moche {
namespace bench {

/// The method roster of Figures 2/3 in display order:
/// M, GRC, GRD, CS, S2G, STMP, D3.
struct MethodRoster {
  baselines::MocheExplainer moche;
  baselines::GraceExplainer grace;
  baselines::GreedyExplainer greedy;
  baselines::CornerSearchExplainer corner_search;
  baselines::S2gExplainer s2g;
  baselines::StompExplainer stomp;
  baselines::D3Explainer d3;

  MethodRoster() {
    // Budgets scaled down from the paper's 24h x Xeon allowance (150k CS
    // samples / 10k GRC steps) so the whole bench suite runs in minutes;
    // the CS:GRC ratio keeps the paper's RF ordering (CS above GRC).
    // Documented in docs/BENCHMARKS.md.
    baselines::GraceOptions grc;
    grc.optimizer.max_iterations = 100;
    grace = baselines::GraceExplainer(grc);
    baselines::CornerSearchOptions cs;
    cs.max_samples = 30000;
    cs.samples_per_size = 500;
    corner_search = baselines::CornerSearchExplainer(cs);
  }

  std::vector<baselines::Explainer*> All() {
    return {&moche, &grace,  &greedy, &corner_search,
            &s2g,   &stomp, &d3};
  }
};

/// Dataset scale used by the aggregate experiments (Figures 2/3, Table 2):
/// 20% of the Table 1 lengths keeps the full pipeline under a minute.
inline constexpr double kExperimentScale = 0.20;
inline constexpr uint64_t kExperimentSeed = 20210416;  // paper arXiv v2 date

/// The standard collection settings for the aggregate experiments.
inline harness::CollectOptions StandardCollect() {
  harness::CollectOptions opt;
  opt.window_sizes = {100, 200};
  opt.sample_per_combination = 2;
  opt.alpha = 0.05;
  opt.seed = kExperimentSeed;
  return opt;
}

/// Runs the full roster over all six dataset families; returns one
/// (dataset, aggregates) pair per family.
struct DatasetAggregates {
  std::string dataset;
  size_t instances = 0;
  std::vector<harness::MethodAggregate> aggregates;
};

std::vector<DatasetAggregates> RunStandardExperiment();

/// Formats a double with the given precision.
std::string Fmt(double value, int precision = 2);

}  // namespace bench
}  // namespace moche

#endif  // MOCHE_BENCH_BENCH_COMMON_H_
