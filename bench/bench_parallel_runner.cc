// The parallel batch-explanation engine, end to end: collects failed window
// tests from a synthetic multi-series workload (all six NAB-like families
// merged) and runs the method roster over them with 1..N threads, verifying
// that every parallel aggregate is identical to the sequential one and
// reporting the wall-clock speedup per thread count.
//
// Usage: bench_parallel_runner [--threads 1,2,4,8] [--scale 0.3]
//                              [--full-roster] [--quick]
//
// Exits non-zero if any parallel run's aggregates differ from the
// sequential run's. Speedup is hardware-bound: expect ~linear scaling up to
// the physical core count and a flat line beyond it (a 1-core container
// shows 1x everywhere — the identity checks still run). Emits
// BENCH_parallel_runner.json via the shared bench runner; --quick (the CI
// perf-smoke mode) shrinks the workload and the thread list.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "runner.h"
#include "util/parallel.h"
#include "util/string_util.h"
#include "util/timer.h"

using namespace moche;

namespace {

std::vector<size_t> ParseThreadList(const char* arg) {
  std::vector<size_t> out;
  size_t current = 0;
  bool have_digit = false;
  for (const char* p = arg;; ++p) {
    if (*p >= '0' && *p <= '9') {
      current = current * 10 + static_cast<size_t>(*p - '0');
      have_digit = true;
    } else if (*p == ',' || *p == '\0') {
      if (have_digit && current > 0) out.push_back(current);
      current = 0;
      have_digit = false;
      if (*p == '\0') break;
    } else {
      return {};
    }
  }
  return out;
}

bool SameAggregates(const std::vector<harness::MethodAggregate>& a,
                    const std::vector<harness::MethodAggregate>& b) {
  if (a.size() != b.size()) return false;
  for (size_t j = 0; j < a.size(); ++j) {
    // Wall times differ run to run; everything else must match bit for bit.
    if (a[j].method != b[j].method || a[j].avg_ise != b[j].avg_ise ||
        a[j].avg_rmse != b[j].avg_rmse ||
        a[j].reverse_factor != b[j].reverse_factor ||
        a[j].attempted != b[j].attempted || a[j].produced != b[j].produced ||
        a[j].ise_counted != b[j].ise_counted) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::QuickMode(argc, argv);
  std::vector<size_t> thread_counts{1, 2, 4, 8};
  double scale = 0.3;
  bool full_roster = false;
  if (quick) {
    thread_counts = {1, 2};
    scale = 0.12;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts = ParseThreadList(argv[++i]);
      if (thread_counts.empty()) {
        std::fprintf(stderr, "bad --threads list\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--full-roster") == 0) {
      full_roster = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      // already handled by bench::QuickMode
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads 1,2,4,8] [--scale S] "
                   "[--full-roster] [--quick]\n",
                   argv[0]);
      return 1;
    }
  }

  std::printf("=== Parallel batch runner: 1 vs N threads ===\n\n");
  std::printf("hardware threads: %zu\n", HardwareConcurrency());

  // One synthetic multi-series workload: every series of all six NAB-like
  // families in a single dataset.
  ts::Dataset workload;
  workload.name = "SYN-ALL";
  for (ts::Dataset& ds :
       ts::MakeAllNabLikeDatasets(bench::kExperimentSeed, scale)) {
    for (ts::TimeSeries& s : ds.series) {
      s.name = ds.name + "/" + s.name;
      workload.series.push_back(std::move(s));
    }
  }
  std::printf("workload: %zu series\n\n", workload.series.size());

  harness::CollectOptions collect = bench::StandardCollect();
  collect.window_sizes = quick ? std::vector<size_t>{100}
                               : std::vector<size_t>{100, 150, 200};
  collect.sample_per_combination = quick ? 2 : 4;

  bench::MethodRoster roster;
  std::vector<baselines::Explainer*> methods;
  baselines::MocheExplainer moche_method;
  baselines::GreedyExplainer greedy;
  baselines::D3Explainer d3;
  if (full_roster) {
    methods = roster.All();
  } else {
    methods = {&moche_method, &greedy, &d3};
  }

  // Sequential baseline: collection and explanation on one core.
  WallTimer timer;
  auto instances = harness::CollectFailedInstances(workload, collect);
  const double collect_seq_s = timer.Seconds();
  if (!instances.ok()) {
    std::fprintf(stderr, "collect failed: %s\n",
                 instances.status().ToString().c_str());
    return 1;
  }
  std::printf("instances: %zu (collected sequentially in %.2fs)\n\n",
              instances->size(), collect_seq_s);

  timer.Restart();
  const auto sequential = harness::RunMethods(*instances, methods);
  const double run_seq_s = timer.Seconds();
  auto base_agg = harness::Aggregate(sequential);
  if (!base_agg.ok()) {
    std::fprintf(stderr, "aggregate failed: %s\n",
                 base_agg.status().ToString().c_str());
    return 1;
  }

  harness::AsciiTable table(
      {"threads", "collect_s", "run_s", "speedup", "aggregates"});
  table.AddRow({"1 (seq)", bench::Fmt(collect_seq_s), bench::Fmt(run_seq_s),
                "1.00", "baseline"});

  const std::string kBench = "parallel_runner";
  std::vector<bench::BenchResult> records;
  const auto add_record = [&](const std::string& metric, double value,
                              const char* unit, size_t threads) {
    bench::AppendRecord(&records, kBench, metric, value, unit, threads);
  };
  add_record("instances", static_cast<double>(instances->size()), "count", 1);
  add_record("collect.t1.wall", collect_seq_s, "s", 1);
  add_record("run.t1.wall", run_seq_s, "s", 1);

  bool all_identical = true;
  for (size_t threads : thread_counts) {
    if (threads <= 1) continue;

    harness::CollectOptions pcollect = collect;
    pcollect.num_threads = threads;
    timer.Restart();
    auto pinstances = harness::CollectFailedInstances(workload, pcollect);
    const double collect_par_s = timer.Seconds();
    if (!pinstances.ok()) {
      std::fprintf(stderr, "parallel collect failed: %s\n",
                   pinstances.status().ToString().c_str());
      return 1;
    }

    harness::RunOptions run_opt;
    run_opt.num_threads = threads;
    timer.Restart();
    const auto parallel =
        harness::RunMethods(*pinstances, methods, run_opt);
    const double run_par_s = timer.Seconds();

    auto agg = harness::Aggregate(parallel);
    const bool identical = agg.ok() && SameAggregates(*base_agg, *agg);
    all_identical = all_identical && identical;

    const std::string tkey = StrFormat(".t%zu.", threads);
    add_record("collect" + tkey + "wall", collect_par_s, "s", threads);
    add_record("run" + tkey + "wall", run_par_s, "s", threads);
    add_record("run" + tkey + "speedup", run_seq_s / run_par_s, "x", threads);
    add_record("run" + tkey + "identical", identical ? 1.0 : 0.0, "bool",
               threads);

    table.AddRow({StrFormat("%zu", threads), bench::Fmt(collect_par_s),
                  bench::Fmt(run_par_s),
                  bench::Fmt(run_seq_s / run_par_s),
                  identical ? "identical" : "MISMATCH"});
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf("(speedup = sequential run_s / parallel run_s; collection\n"
              " parallelizes per series, explanation per instance)\n");

  const Status written = bench::WriteBenchJson(kBench, records);
  if (!written.ok()) {
    std::fprintf(stderr, "BENCH_%s.json: %s\n", kBench.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_%s.json (%zu records)\n", kBench.c_str(),
              records.size());

  if (!all_identical) {
    std::fprintf(stderr,
                 "\nFAIL: a parallel run's aggregates diverged from the "
                 "sequential run\n");
    return 1;
  }
  return 0;
}
