// Reproduces Figure 6: box plots of the estimation error EE = k - k_hat
// (how far Theorem 2's binary-searched lower bound sits below the true
// explanation size) as a function of the test-set size.
//
// Paper shape: for >25% of failed tests EE = 0; for >75% EE <= 1; the
// worst observed EE is 6 (at test size 2000); mean EE < 1 for large sizes.

#include <cstdio>

#include "bench_common.h"
#include "core/moche.h"
#include "harness/runner.h"
#include "util/stats.h"
#include "util/string_util.h"

int main() {
  using namespace moche;
  std::printf("=== Figure 6: estimation error EE = k - k_hat ===\n\n");

  const std::vector<ts::Dataset> datasets =
      ts::MakeAllNabLikeDatasets(bench::kExperimentSeed, 0.5);
  Moche engine;

  harness::AsciiTable table(
      {"Test size", "#tests", "min [q1 | med | q3 ] max (mean)"});
  const std::vector<size_t> window_sizes{100, 200, 300, 500, 1000, 1500,
                                         2000};
  for (size_t w : window_sizes) {
    std::vector<double> errors;
    for (const ts::Dataset& ds : datasets) {
      harness::CollectOptions collect;
      collect.window_sizes = {w};
      collect.sample_per_combination = 3;
      collect.seed = bench::kExperimentSeed + w;
      auto instances = harness::CollectFailedInstances(ds, collect);
      if (!instances.ok()) continue;
      for (const auto& inst : *instances) {
        auto size = engine.FindExplanationSize(
            inst.instance.reference, inst.instance.test, inst.instance.alpha);
        if (!size.ok()) continue;
        errors.push_back(static_cast<double>(size->k - size->k_hat));
      }
    }
    if (errors.empty()) continue;
    table.AddRow({StrFormat("%zu", w), StrFormat("%zu", errors.size()),
                  harness::RenderBoxPlot(Summarize(errors))});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper shape: q1 = 0 (lower bound exact for >25%% of tests), "
              "q3 <= 1,\n"
              "max EE 6, mean < 1 for large test sets.\n");
  return 0;
}
