// Reproduces Figure 5a: average runtime of every method (plus the MOCHE_ns
// ablation) as the reference/test window size grows, on the TWT dataset.
//
// Paper shape: MOCHE fastest at every size and ~3 orders of magnitude
// faster than GRC/CS; MOCHE_ns slower than MOCHE; every method grows with
// the window size. (Absolute times differ from the paper's Python
// implementations on a Xeon server.)

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/timer.h"

int main() {
  using namespace moche;
  std::printf("=== Figure 5a: runtime vs reference/test set size (TWT) "
              "===\n\n");

  const ts::Dataset twt = ts::MakeTwtDataset(bench::kExperimentSeed, 0.5);
  bench::MethodRoster roster;
  baselines::MocheExplainer moche_ns =
      baselines::MocheExplainer::WithoutLowerBound();
  std::vector<baselines::Explainer*> methods = roster.All();
  methods.push_back(&moche_ns);

  std::vector<std::string> header{"w"};
  for (auto* m : methods) header.push_back(m->name());
  harness::AsciiTable table(header);

  const std::vector<size_t> window_sizes{100, 200, 300, 500, 1000, 1500,
                                         2000};
  for (size_t w : window_sizes) {
    harness::CollectOptions collect;
    collect.window_sizes = {w};
    collect.sample_per_combination = 1;  // one failed test per series
    collect.seed = bench::kExperimentSeed + w;
    auto instances = harness::CollectFailedInstances(twt, collect);
    if (!instances.ok() || instances->empty()) continue;

    std::vector<std::string> row{StrFormat("%zu", w)};
    for (auto* method : methods) {
      double total = 0.0;
      size_t count = 0;
      for (const auto& inst : *instances) {
        WallTimer timer;
        auto expl = method->Explain(inst.instance, inst.preference);
        total += timer.Seconds();
        ++count;
        (void)expl;
      }
      // scientific notation: the paper plots this on a log axis
      row.push_back(count > 0 ? StrFormat("%.2e", total / count) : "n/a");
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Average seconds per failed KS test (one test per TWT "
              "series).\n");
  std::printf("Paper shape: M fastest everywhere; GRC and CS orders of "
              "magnitude slower;\n"
              "M faster than Mns (the no-lower-bound ablation).\n");
  return 0;
}
