// Reproduces Figure 1: (a) the COVID reference/test age histograms and the
// distributions of the two most comprehensible explanations I_a (age
// preference) and I_p (HA-population preference) over (b) health
// authorities and (c) age groups.
//
// Paper reference: both explanations have 291 points; all of I_p's points
// come from FHA; I_a contains more senior people.

#include <cstdio>

#include "bench_common.h"
#include "core/moche.h"
#include "datasets/covid.h"
#include "util/string_util.h"

int main() {
  using namespace moche;
  using datasets::CovidData;
  using datasets::HealthAuthority;

  const CovidData data = datasets::MakeCovidData();
  const KsInstance inst = data.MakeInstance(0.05);
  auto outcome = RunInstance(inst);
  if (!outcome.ok() || !outcome->reject) {
    std::fprintf(stderr, "COVID instance does not fail the KS test\n");
    return 1;
  }
  std::printf("=== Figure 1: COVID-19 case study inputs and explanations ===\n\n");
  std::printf("|R| (August) = %zu, |T| (September) = %zu, alpha = 0.05\n",
              inst.reference.size(), inst.test.size());
  std::printf("KS: D = %.4f > p = %.4f  -> failed\n\n", outcome->statistic,
              outcome->threshold);

  // (a) reference/test histograms
  std::printf("--- Figure 1a: relative frequency by age group ---\n");
  harness::AsciiTable hist({"Age group", "Ref. (Aug)", "Test (Sep)"});
  const std::vector<double> ref_hist = CovidData::AgeHistogram(data.august_age);
  const std::vector<double> test_hist =
      CovidData::AgeHistogram(data.september_age);
  const char* kAgeLabels[10] = {"0-10",  "10-19", "20-29", "30-39", "40-49",
                                "50-59", "60-69", "70-79", "80-89", "90+"};
  for (int g = 0; g < 10; ++g) {
    hist.AddRow({kAgeLabels[g], bench::Fmt(ref_hist[g], 3),
                 bench::Fmt(test_hist[g], 3)});
  }
  std::printf("%s\n", hist.ToString().c_str());

  // the two explanations
  Moche engine;
  auto ia = engine.Explain(inst, data.PreferenceByAgeGroupDesc());
  auto ip = engine.Explain(inst, data.PreferenceByHaPopulationDesc());
  if (!ia.ok() || !ip.ok()) {
    std::fprintf(stderr, "explanation failed: %s / %s\n",
                 ia.status().ToString().c_str(),
                 ip.status().ToString().c_str());
    return 1;
  }
  std::printf("|I_a| = %zu, |I_p| = %zu (paper: both 291)\n\n",
              ia->explanation.size(), ip->explanation.size());

  // (b) explanations over HAs (population-descending axis order)
  std::printf("--- Figure 1b: # cases per health authority ---\n");
  harness::AsciiTable ha_table({"HA", "I_a", "I_p"});
  const std::vector<size_t> ia_ha = data.HaCounts(ia->explanation.indices);
  const std::vector<size_t> ip_ha = data.HaCounts(ip->explanation.indices);
  for (int h = 0; h < 5; ++h) {
    ha_table.AddRow(
        {datasets::HealthAuthorityName(static_cast<HealthAuthority>(h)),
         StrFormat("%zu", ia_ha[h]), StrFormat("%zu", ip_ha[h])});
  }
  std::printf("%s", ha_table.ToString().c_str());
  std::printf("(paper: every I_p point comes from FHA)\n\n");

  // (c) explanations over age groups
  std::printf("--- Figure 1c: # cases per age group ---\n");
  harness::AsciiTable age_table({"Age group", "I_a", "I_p"});
  const std::vector<size_t> ia_age = data.AgeCounts(ia->explanation.indices);
  const std::vector<size_t> ip_age = data.AgeCounts(ip->explanation.indices);
  for (int g = 0; g < 10; ++g) {
    age_table.AddRow({kAgeLabels[g], StrFormat("%zu", ia_age[g]),
                      StrFormat("%zu", ip_age[g])});
  }
  std::printf("%s", age_table.ToString().c_str());
  std::printf("(paper: I_a skews to senior age groups, I_p does not)\n");
  return 0;
}
