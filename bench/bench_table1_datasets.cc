// Reproduces Table 1: statistics of the six (NAB-like) datasets.
//
// Paper reference values:
//   AWS 17 series, 1243~4700   | AD  6 series, 1538~1624
//   TRF  7 series, 1127~2500   | TWT 10 series, 15831~15902
//   KC   7 series, 1882~22695  | ART  6 series, 4032

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"

int main() {
  using namespace moche;
  std::printf("=== Table 1: dataset statistics (full-scale generators) ===\n\n");
  harness::AsciiTable table({"Dataset", "# Time series", "Length"});
  for (const ts::Dataset& ds :
       ts::MakeAllNabLikeDatasets(bench::kExperimentSeed, 1.0)) {
    std::string length_range;
    if (ds.min_length() == ds.max_length()) {
      length_range = StrFormat("%zu", ds.min_length());
    } else {
      length_range = StrFormat("%zu~%zu", ds.min_length(), ds.max_length());
    }
    table.AddRow({ds.name, StrFormat("%zu", ds.series.size()), length_range});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper: AWS 17/1243~4700, AD 6/1538~1624, TRF 7/1127~2500,\n"
              "       TWT 10/15831~15902, KC 7/1882~22695, ART 6/4032\n");
  return 0;
}
