// Full-precision identity corpus: 399 deterministic failing KS instances,
// each explained under three engine configurations, dumped with every
// decision-relevant number at round-trip precision (17 significant digits,
// via the locale-independent FormatG17 so a comma-decimal LC_NUMERIC can
// never corrupt the dump). A perf PR that claims "bit-identical reports"
// regenerates this dump before and after the change and diffs the two
// files byte-for-byte (docs/BENCHMARKS.md).
//
// Usage: bench_corpus_dump [--out FILE] [--instances N]
//
// The corpus is a deterministic grid over instance size, contamination and
// seed (Kifer-style synthetic drift, the paper's Section 6.4 workload) with
// a seeded random preference list per instance; nothing depends on wall
// time, the host, or iteration order of any container.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/moche.h"
#include "datasets/synthetic.h"
#include "util/rng.h"
#include "util/string_util.h"

using namespace moche;

namespace {

struct Config {
  const char* name;
  MocheOptions options;
};

void DumpReport(std::FILE* f, const char* config, const MocheReport& r) {
  std::fprintf(f, "  %s k=%zu k_hat=%zu t1=%zu t2=%zu probe=%zu full=%zu "
                  "cand=%zu steps=%zu\n",
               config, r.k, r.k_hat, r.size_stats.theorem1_checks,
               r.size_stats.theorem2_checks, r.size_stats.probe_refutations,
               r.size_stats.full_scans, r.build_stats.candidates_checked,
               r.build_stats.recursion_steps);
  std::fprintf(f, "  %s D=%s p=%s loc=%s after_D=%s after_p=%s\n", config,
               FormatG17(r.original.statistic).c_str(),
               FormatG17(r.original.threshold).c_str(),
               FormatG17(r.original.location).c_str(),
               FormatG17(r.after.statistic).c_str(),
               FormatG17(r.after.threshold).c_str());
  std::fprintf(f, "  %s I=", config);
  for (size_t idx : r.explanation.indices) std::fprintf(f, "%zu,", idx);
  std::fprintf(f, "\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "corpus_dump.txt";
  size_t want = 399;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--instances") == 0 && i + 1 < argc) {
      want = static_cast<size_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE] [--instances N]\n",
                   argv[0]);
      return 1;
    }
  }

  const Config configs[] = {
      {"lb+inc", {}},
      {"ns+inc", {/*use_lower_bound=*/false, true, true}},
      {"lb+full", {true, /*incremental_partial_check=*/false, true}},
  };

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }

  const size_t sizes[] = {40, 60, 90, 130, 200, 300, 450, 700, 1000};
  const double contaminations[] = {0.05, 0.1, 0.2};
  const double alphas[] = {0.05, 0.01};
  size_t dumped = 0;
  // Deterministic grid; seeds advance until `want` failing instances dumped.
  for (uint64_t seed = 1; dumped < want && seed < 4096; ++seed) {
    for (size_t w : sizes) {
      for (double p : contaminations) {
        for (double alpha : alphas) {
          if (dumped >= want) break;
          datasets::DriftOptions opt;
          opt.size = w;
          opt.contamination = p;
          opt.alpha = alpha;
          opt.seed = seed * 7919 + w;
          auto inst = datasets::MakeKiferDriftInstance(opt);
          if (!inst.ok()) continue;
          Rng rng(opt.seed ^ 0xC0FFEEull);
          const PreferenceList pref = RandomPreference(w, &rng);
          std::fprintf(f, "instance %zu w=%zu p=%s alpha=%s seed=%" PRIu64
                          "\n",
                       dumped, w, FormatG17(p).c_str(),
                       FormatG17(alpha).c_str(), opt.seed);
          for (const Config& config : configs) {
            const Moche engine(config.options);
            auto report = engine.Explain(*inst, pref);
            if (!report.ok()) {
              std::fprintf(f, "  %s status=%s\n", config.name,
                           StatusCodeToString(report.status().code()));
              continue;
            }
            DumpReport(f, config.name, *report);
          }
          ++dumped;
        }
      }
    }
  }
  std::fclose(f);
  std::printf("dumped %zu instances to %s\n", dumped, out_path.c_str());
  return dumped == want ? 0 : 1;
}
