// Reproduces Figure 4: the COVID case study. Histograms of the
// explanations produced by MOCHE, GRD and D3 over age groups, their sizes
// as fractions of |T|, and the ECDFs of the reference set and the test set
// after removing each explanation.
//
// Paper reference: |I| = 291 (8.6% of T) for MOCHE, 3115 (92.3%) for GRD,
// 3370 (99.9%) for D3; after removing MOCHE's explanation the test ECDF is
// closest to the reference ECDF.

#include <cstdio>

#include "bench_common.h"
#include "datasets/covid.h"
#include "harness/metrics.h"
#include "ks/ecdf.h"
#include "util/string_util.h"

int main() {
  using namespace moche;
  using datasets::CovidData;

  const CovidData data = datasets::MakeCovidData();
  const KsInstance inst = data.MakeInstance(0.05);
  const size_t m = inst.test.size();

  // The preference list of the case study is L_p (HA population).
  const PreferenceList pref = data.PreferenceByHaPopulationDesc();

  baselines::MocheExplainer moche_method;
  baselines::GreedyExplainer grd;
  baselines::D3Explainer d3;

  struct Entry {
    const char* name;
    Result<Explanation> expl;
  };
  std::vector<Entry> entries;
  entries.push_back({"MOCHE", moche_method.Explain(inst, pref)});
  entries.push_back({"GRD", grd.Explain(inst, pref)});
  entries.push_back({"D3", d3.Explain(inst, pref)});

  std::printf("=== Figure 4: explanations on the COVID-19 failed KS test "
              "===\n\n");
  const char* kAgeLabels[10] = {"0-10",  "10-19", "20-29", "30-39", "40-49",
                                "50-59", "60-69", "70-79", "80-89", "90+"};

  // (a)-(c) explanation histograms over age groups, as fractions of |T|
  for (const Entry& e : entries) {
    if (!e.expl.ok()) {
      std::printf("--- %s failed: %s ---\n\n", e.name,
                  e.expl.status().ToString().c_str());
      continue;
    }
    std::printf("--- Figure 4: %s explanation, %zu points (%.1f%% of |T|) "
                "---\n",
                e.name, e.expl->size(),
                100.0 * static_cast<double>(e.expl->size()) /
                    static_cast<double>(m));
    const std::vector<size_t> counts = data.AgeCounts(e.expl->indices);
    harness::AsciiTable table({"Age group", "# cases", "/|T|"});
    for (int g = 0; g < 10; ++g) {
      table.AddRow({kAgeLabels[g], StrFormat("%zu", counts[g]),
                    bench::Fmt(static_cast<double>(counts[g]) /
                                   static_cast<double>(m),
                               3)});
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  std::printf("Paper sizes: MOCHE 291 (8.6%%), GRD 3115 (92.3%%), D3 3370 "
              "(99.9%%)\n\n");

  // (d) ECDFs of the reference and of T minus each explanation, at the age
  // group grid points.
  std::printf("--- Figure 4d: ECDF of R and of T \\ I per method ---\n");
  harness::AsciiTable ecdf_table(
      {"Age", "Ref.", "Test", "MOCHE", "GRD", "D3"});
  const Ecdf ref_ecdf(inst.reference);
  const Ecdf test_ecdf(inst.test);
  std::vector<Ecdf> removed;
  std::vector<double> rmse;
  for (const Entry& e : entries) {
    if (e.expl.ok()) {
      removed.emplace_back(RemoveExplanation(inst, *e.expl));
      rmse.push_back(harness::ExplanationRmse(inst, *e.expl));
    } else {
      removed.emplace_back(inst.test);
      rmse.push_back(-1.0);
    }
  }
  for (int g = 1; g <= 10; ++g) {
    const double x = static_cast<double>(g);
    ecdf_table.AddRow({kAgeLabels[g - 1], bench::Fmt(ref_ecdf.Evaluate(x), 3),
                       bench::Fmt(test_ecdf.Evaluate(x), 3),
                       bench::Fmt(removed[0].Evaluate(x), 3),
                       bench::Fmt(removed[1].Evaluate(x), 3),
                       bench::Fmt(removed[2].Evaluate(x), 3)});
  }
  std::printf("%s\n", ecdf_table.ToString().c_str());
  std::printf("ECDF RMSE vs reference: MOCHE %.4f, GRD %.4f, D3 %.4f\n",
              rmse[0], rmse[1], rmse[2]);
  std::printf("(paper: MOCHE's removal makes the test ECDF closest to the "
              "reference)\n");
  return 0;
}
