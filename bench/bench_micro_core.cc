// Micro suite for the core primitives and the two ablations, on the shared
// bench runner (bench/runner.h):
//  * KS statistic (sorted-merge) and RemovalKs re-evaluation,
//  * Theorem 1 existence check and Theorem 2 condition,
//  * phase 1 with/without the binary-searched lower bound (MOCHE vs
//    MOCHE_ns), which also covers the SizeScan incremental size walk,
//  * phase 2 with incremental vs paper-faithful full Theorem 3 checks,
//  * end-to-end Explain,
//  * the prepared-explain hot path (one prepared reference, one recycled
//    ExplainWorkspace + report) and its steady-state allocation count —
//    `expl.steady_allocs` counts heap allocation calls per warmed-up
//    ExplainPreparedInto call via the alloc_probe.h operator-new hooks;
//    the zero-allocation pipeline keeps it at exactly 0.
//
// Usage: bench_micro_core [--quick]
//
// Emits BENCH_micro_core.json (see docs/BENCHMARKS.md for the schema and
// how to read a before/after pair). Per-operation metrics report seconds
// per operation ("s/op"); each repetition runs the same deterministic
// operation batch, so medians are comparable across runs and commits.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include "alloc_probe.h"
#include "core/bounds.h"
#include "core/builder.h"
#include "core/moche.h"
#include "core/size_search.h"
#include "datasets/synthetic.h"
#include "ks/ks_test.h"
#include "runner.h"
#include "util/rng.h"

namespace {

using namespace moche;

// One failing instance per size, shared across workloads.
const KsInstance& InstanceForSize(size_t w) {
  static std::map<size_t, KsInstance> cache;
  auto it = cache.find(w);
  if (it == cache.end()) {
    datasets::DriftOptions opt;
    opt.size = w;
    opt.contamination = 0.05;
    opt.seed = 42 + w;
    auto inst = datasets::MakeKiferDriftInstance(opt);
    it = cache.emplace(w, inst.ok() ? *inst : KsInstance{}).first;
  }
  return it->second;
}

const PreferenceList& PreferenceForSize(size_t w) {
  static std::map<size_t, PreferenceList> cache;
  auto it = cache.find(w);
  if (it == cache.end()) {
    Rng rng(7 + w);
    it = cache.emplace(w, RandomPreference(w, &rng)).first;
  }
  return it->second;
}

struct Workloads {
  std::vector<size_t> primitive_sizes;  // KS / RemovalKs / Theorem checks
  std::vector<size_t> phase1_sizes;
  std::vector<size_t> phase2_sizes;
  std::vector<size_t> e2e_sizes;
  bench::RunnerOptions reps;
};

Workloads FullWorkloads() {
  Workloads w;
  w.primitive_sizes = {1000, 10000, 100000};
  w.phase1_sizes = {1000, 10000, 50000};
  w.phase2_sizes = {1000, 10000};
  w.e2e_sizes = {1000, 10000, 100000};
  w.reps.warmup = 1;
  w.reps.repetitions = 7;
  return w;
}

Workloads QuickWorkloads() {
  Workloads w;
  w.primitive_sizes = {1000, 5000};
  w.phase1_sizes = {1000, 5000};
  w.phase2_sizes = {1000};
  w.e2e_sizes = {1000, 5000};
  w.reps.warmup = 1;
  w.reps.repetitions = 3;
  return w;
}

// Batch size for O(n + m) primitives: keeps one repetition around a few
// milliseconds so the median is stable without dragging the suite out.
size_t OpsFor(size_t w) { return std::max<size_t>(4, 400000 / w); }

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") != 0) {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 1;
    }
  }
  const bool quick = bench::QuickMode(argc, argv);
  const Workloads wl = quick ? QuickWorkloads() : FullWorkloads();
  std::vector<bench::BenchResult> results;
  const std::string kBench = "micro_core";

  std::printf("=== Core micro benchmarks (%s mode) ===\n",
              quick ? "quick" : "full");

  for (size_t w : wl.primitive_sizes) {
    const KsInstance& inst = InstanceForSize(w);
    std::vector<double> r = inst.reference;
    std::vector<double> t = inst.test;
    std::sort(r.begin(), r.end());
    std::sort(t.begin(), t.end());
    const size_t ops = OpsFor(w);

    volatile double sink = 0.0;
    auto stats = bench::Measure(
        [&] {
          for (size_t i = 0; i < ops; ++i) sink = ks::StatisticSorted(r, t);
        },
        wl.reps);
    bench::AppendTiming(&results, kBench,
                        "ks_statistic.w" + std::to_string(w), stats, 1,
                        static_cast<double>(ops), "s/op");

    RemovalKs removal(inst.reference, inst.test, inst.alpha);
    stats = bench::Measure(
        [&] {
          for (size_t i = 0; i < ops; ++i) {
            sink = removal.CurrentOutcome().statistic;
          }
        },
        wl.reps);
    bench::AppendTiming(&results, kBench,
                        "removal_ks.reevaluate.w" + std::to_string(w), stats,
                        1, static_cast<double>(ops), "s/op");

    auto frame = CumulativeFrame::Build(inst.reference, inst.test);
    BoundsEngine engine(*frame, inst.alpha);
    volatile bool bsink = false;
    stats = bench::Measure(
        [&] {
          // The same deterministic h cycle every repetition.
          size_t h = 1;
          for (size_t i = 0; i < ops; ++i) {
            bsink = engine.ExistsQualified(h);
            h = h % (w / 2) + 1;
          }
        },
        wl.reps);
    bench::AppendTiming(&results, kBench,
                        "theorem1_check.w" + std::to_string(w), stats, 1,
                        static_cast<double>(ops), "s/op");

    stats = bench::Measure(
        [&] {
          size_t h = 1;
          for (size_t i = 0; i < ops; ++i) {
            bsink = engine.NecessaryCondition(h);
            h = h % (w / 2) + 1;
          }
        },
        wl.reps);
    bench::AppendTiming(&results, kBench,
                        "theorem2_condition.w" + std::to_string(w), stats, 1,
                        static_cast<double>(ops), "s/op");
    std::printf("  primitives w=%zu done\n", w);
  }

  // Ablation: phase 1 with the Theorem 2 lower bound, and the MOCHE_ns
  // scan from h = 1 (both through SizeSearcher, i.e. the production path).
  for (size_t w : wl.phase1_sizes) {
    const KsInstance& inst = InstanceForSize(w);
    auto frame = CumulativeFrame::Build(inst.reference, inst.test);
    BoundsEngine engine(*frame, inst.alpha);
    SizeSearcher searcher(engine);
    volatile bool bsink = false;

    auto stats = bench::Measure(
        [&] { bsink = searcher.FindSize(true).ok(); }, wl.reps);
    bench::AppendTiming(&results, kBench,
                        "phase1.lower_bound.w" + std::to_string(w), stats, 1,
                        1.0, "s/op");

    stats = bench::Measure(
        [&] { bsink = searcher.FindSize(false).ok(); }, wl.reps);
    bench::AppendTiming(&results, kBench, "phase1.ns.w" + std::to_string(w),
                        stats, 1, 1.0, "s/op");
    std::printf("  phase1 w=%zu done\n", w);
  }

  // Ablation: phase 2 with incremental vs paper-faithful Theorem 3 checks.
  for (size_t w : wl.phase2_sizes) {
    const KsInstance& inst = InstanceForSize(w);
    auto frame = CumulativeFrame::Build(inst.reference, inst.test);
    BoundsEngine engine(*frame, inst.alpha);
    auto size = SizeSearcher(engine).FindSize();
    if (!size.ok()) {
      std::fprintf(stderr, "phase1 failed at w=%zu: %s\n", w,
                   size.status().ToString().c_str());
      return 1;
    }
    const PreferenceList& pref = PreferenceForSize(w);
    volatile bool bsink = false;

    auto stats = bench::Measure(
        [&] {
          bsink = BuildMostComprehensible(engine, size->k, inst.test, pref,
                                          /*incremental_check=*/true)
                      .ok();
        },
        wl.reps);
    bench::AppendTiming(&results, kBench,
                        "phase2.incremental.w" + std::to_string(w), stats, 1,
                        1.0, "s/op");

    stats = bench::Measure(
        [&] {
          bsink = BuildMostComprehensible(engine, size->k, inst.test, pref,
                                          /*incremental_check=*/false)
                      .ok();
        },
        wl.reps);
    bench::AppendTiming(&results, kBench, "phase2.full.w" + std::to_string(w),
                        stats, 1, 1.0, "s/op");
    std::printf("  phase2 w=%zu done\n", w);
  }

  for (size_t w : wl.e2e_sizes) {
    const KsInstance& inst = InstanceForSize(w);
    const PreferenceList& pref = PreferenceForSize(w);
    Moche engine;
    volatile bool bsink = false;
    auto stats = bench::Measure(
        [&] { bsink = engine.Explain(inst, pref).ok(); }, wl.reps);
    bench::AppendTiming(&results, kBench, "explain.e2e.w" + std::to_string(w),
                        stats, 1, 1.0, "s/op");
    std::printf("  explain w=%zu done\n", w);
  }

  // The prepared-explain hot path: the reference is validated and sorted
  // once, and one workspace + report pair is recycled across calls — the
  // steady state of the Section 6 sweeps and the stream monitor.
  // expl.steady_allocs counts heap allocation calls per warmed-up call
  // (exactly 0 under the zero-allocation pipeline), aggregated across the
  // measured sizes.
  size_t steady_allocs_total = 0;
  size_t steady_allocs_ops = 0;
  for (size_t w : wl.e2e_sizes) {
    const KsInstance& inst = InstanceForSize(w);
    const PreferenceList& pref = PreferenceForSize(w);
    Moche engine;
    auto prepared = engine.Prepare(inst.reference, inst.alpha);
    if (!prepared.ok()) {
      std::fprintf(stderr, "prepare failed at w=%zu: %s\n", w,
                   prepared.status().ToString().c_str());
      return 1;
    }
    ExplainWorkspace workspace;
    MocheReport report;
    volatile bool bsink = false;
    auto stats = bench::Measure(
        [&] {
          bsink = engine
                      .ExplainPreparedInto(*prepared, inst.test, pref,
                                           &workspace, &report)
                      .ok();
        },
        wl.reps);
    bench::AppendTiming(&results, kBench,
                        "explain.prepared.w" + std::to_string(w), stats, 1,
                        1.0, "s/op");

    // Allocation steady state: everything is warm after Measure's runs.
    const size_t kAllocOps = 10;
    bench::AllocationProbe probe;
    for (size_t i = 0; i < kAllocOps; ++i) {
      bsink = engine
                  .ExplainPreparedInto(*prepared, inst.test, pref, &workspace,
                                       &report)
                  .ok();
    }
    const size_t allocs = probe.Delta();
    steady_allocs_total += allocs;
    steady_allocs_ops += kAllocOps;
    bench::AppendRecord(&results, kBench,
                        "expl.steady_allocs.w" + std::to_string(w),
                        static_cast<double>(allocs) /
                            static_cast<double>(kAllocOps),
                        "count", 1);
    std::printf("  explain.prepared w=%zu done (%zu allocs / %zu ops)\n", w,
                allocs, kAllocOps);
  }
  bench::AppendRecord(&results, kBench, "expl.steady_allocs",
                      static_cast<double>(steady_allocs_total) /
                          static_cast<double>(steady_allocs_ops),
                      "count", 1);

  // The batched triage entry point: many same-width windows against one
  // prepared reference in one SoA call (DriftMonitor::RecheckWindows).
  // Reported per window; unlike ks_statistic (pre-sorted inputs) each
  // window here pays validation + sort + sweep, so compare this metric
  // against its own history, not against ks_statistic.
  for (size_t w : wl.primitive_sizes) {
    const KsInstance& inst = InstanceForSize(w);
    Moche engine;
    auto prepared = engine.Prepare(inst.reference, inst.alpha);
    if (!prepared.ok()) {
      std::fprintf(stderr, "prepare failed at w=%zu: %s\n", w,
                   prepared.status().ToString().c_str());
      return 1;
    }
    const size_t count = std::max<size_t>(4, 65536 / w);
    std::vector<double> soa(count * w);
    Rng rng(13 + w);
    for (double& v : soa) v = rng.Normal(0.2, 1.1);
    WindowBatch batch{soa.data(), count, w};
    ExplainWorkspace workspace;
    std::vector<KsOutcome> outcomes;
    volatile bool bsink = false;
    auto stats = bench::Measure(
        [&] {
          bsink = engine
                      .EvaluateBatchPrepared(*prepared, batch, &workspace,
                                             &outcomes)
                      .ok();
        },
        wl.reps);
    bench::AppendTiming(&results, kBench, "batch_eval.w" + std::to_string(w),
                        stats, 1, static_cast<double>(count), "s/op");
    std::printf("  batch_eval w=%zu done (%zu windows)\n", w, count);
  }

  const Status written = bench::WriteBenchJson("micro_core", results);
  if (!written.ok()) {
    std::fprintf(stderr, "BENCH_micro_core.json: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_micro_core.json (%zu records)\n", results.size());
  return 0;
}
