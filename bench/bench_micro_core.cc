// google-benchmark micro suite for the core primitives and the two
// DESIGN.md ablations:
//  * KS statistic (sorted-merge) and RemovalKs re-evaluation,
//  * Theorem 1 existence check and Theorem 2 condition,
//  * phase 1 with/without the binary-searched lower bound (MOCHE vs
//    MOCHE_ns),
//  * phase 2 with incremental vs paper-faithful full Theorem 3 checks,
//  * end-to-end Explain.

#include <algorithm>

#include <benchmark/benchmark.h>

#include "core/bounds.h"
#include "core/builder.h"
#include "core/moche.h"
#include "core/size_search.h"
#include "datasets/synthetic.h"
#include "ks/ks_test.h"
#include "util/rng.h"

namespace {

using namespace moche;

// One failing instance per size, shared across iterations.
const KsInstance& InstanceForSize(size_t w) {
  static std::map<size_t, KsInstance> cache;
  auto it = cache.find(w);
  if (it == cache.end()) {
    datasets::DriftOptions opt;
    opt.size = w;
    opt.contamination = 0.05;
    opt.seed = 42 + w;
    auto inst = datasets::MakeKiferDriftInstance(opt);
    it = cache.emplace(w, inst.ok() ? *inst : KsInstance{}).first;
  }
  return it->second;
}

const PreferenceList& PreferenceForSize(size_t w) {
  static std::map<size_t, PreferenceList> cache;
  auto it = cache.find(w);
  if (it == cache.end()) {
    Rng rng(7 + w);
    it = cache.emplace(w, RandomPreference(w, &rng)).first;
  }
  return it->second;
}

void BM_KsStatistic(benchmark::State& state) {
  const size_t w = static_cast<size_t>(state.range(0));
  const KsInstance& inst = InstanceForSize(w);
  std::vector<double> r = inst.reference;
  std::vector<double> t = inst.test;
  std::sort(r.begin(), r.end());
  std::sort(t.begin(), t.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ks::StatisticSorted(r, t));
  }
}
BENCHMARK(BM_KsStatistic)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RemovalKsReevaluate(benchmark::State& state) {
  const size_t w = static_cast<size_t>(state.range(0));
  const KsInstance& inst = InstanceForSize(w);
  RemovalKs removal(inst.reference, inst.test, inst.alpha);
  for (auto _ : state) {
    benchmark::DoNotOptimize(removal.CurrentOutcome().statistic);
  }
}
BENCHMARK(BM_RemovalKsReevaluate)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Theorem1Check(benchmark::State& state) {
  const size_t w = static_cast<size_t>(state.range(0));
  const KsInstance& inst = InstanceForSize(w);
  auto frame = CumulativeFrame::Build(inst.reference, inst.test);
  BoundsEngine engine(*frame, inst.alpha);
  size_t h = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.ExistsQualified(h));
    h = h % (w / 2) + 1;
  }
}
BENCHMARK(BM_Theorem1Check)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Theorem2Condition(benchmark::State& state) {
  const size_t w = static_cast<size_t>(state.range(0));
  const KsInstance& inst = InstanceForSize(w);
  auto frame = CumulativeFrame::Build(inst.reference, inst.test);
  BoundsEngine engine(*frame, inst.alpha);
  size_t h = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.NecessaryCondition(h));
    h = h % (w / 2) + 1;
  }
}
BENCHMARK(BM_Theorem2Condition)->Arg(1000)->Arg(10000)->Arg(100000);

// Ablation: phase 1 with the Theorem 2 lower bound...
void BM_Phase1WithLowerBound(benchmark::State& state) {
  const size_t w = static_cast<size_t>(state.range(0));
  const KsInstance& inst = InstanceForSize(w);
  auto frame = CumulativeFrame::Build(inst.reference, inst.test);
  BoundsEngine engine(*frame, inst.alpha);
  SizeSearcher searcher(engine);
  for (auto _ : state) {
    auto result = searcher.FindSize(true);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_Phase1WithLowerBound)->Arg(1000)->Arg(10000)->Arg(50000);

// ...and the MOCHE_ns scan from h = 1.
void BM_Phase1WithoutLowerBound(benchmark::State& state) {
  const size_t w = static_cast<size_t>(state.range(0));
  const KsInstance& inst = InstanceForSize(w);
  auto frame = CumulativeFrame::Build(inst.reference, inst.test);
  BoundsEngine engine(*frame, inst.alpha);
  SizeSearcher searcher(engine);
  for (auto _ : state) {
    auto result = searcher.FindSize(false);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_Phase1WithoutLowerBound)->Arg(1000)->Arg(10000)->Arg(50000);

// Ablation: phase 2 with incremental Theorem 3 checks...
void BM_Phase2Incremental(benchmark::State& state) {
  const size_t w = static_cast<size_t>(state.range(0));
  const KsInstance& inst = InstanceForSize(w);
  auto frame = CumulativeFrame::Build(inst.reference, inst.test);
  BoundsEngine engine(*frame, inst.alpha);
  auto size = SizeSearcher(engine).FindSize();
  const PreferenceList& pref = PreferenceForSize(w);
  for (auto _ : state) {
    auto expl = BuildMostComprehensible(engine, size->k, inst.test, pref,
                                        /*incremental_check=*/true);
    benchmark::DoNotOptimize(expl.ok());
  }
}
BENCHMARK(BM_Phase2Incremental)->Arg(1000)->Arg(10000);

// ...and with the paper-faithful full O(q) recursion per candidate.
void BM_Phase2FullCheck(benchmark::State& state) {
  const size_t w = static_cast<size_t>(state.range(0));
  const KsInstance& inst = InstanceForSize(w);
  auto frame = CumulativeFrame::Build(inst.reference, inst.test);
  BoundsEngine engine(*frame, inst.alpha);
  auto size = SizeSearcher(engine).FindSize();
  const PreferenceList& pref = PreferenceForSize(w);
  for (auto _ : state) {
    auto expl = BuildMostComprehensible(engine, size->k, inst.test, pref,
                                        /*incremental_check=*/false);
    benchmark::DoNotOptimize(expl.ok());
  }
}
BENCHMARK(BM_Phase2FullCheck)->Arg(1000)->Arg(10000);

void BM_ExplainEndToEnd(benchmark::State& state) {
  const size_t w = static_cast<size_t>(state.range(0));
  const KsInstance& inst = InstanceForSize(w);
  const PreferenceList& pref = PreferenceForSize(w);
  Moche engine;
  for (auto _ : state) {
    auto report = engine.Explain(inst, pref);
    benchmark::DoNotOptimize(report.ok());
  }
}
BENCHMARK(BM_ExplainEndToEnd)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
