// Reproduces Figure 5b: runtime on the synthetic (Kifer-style) workload
// with p = 3% contamination, comparing MOCHE, MOCHE_ns and GRD — the most
// efficient baseline that can produce comprehensible explanations — as the
// set size w grows to 10^5.
//
// Paper shape: MOCHE at least 10x faster than GRD at every size; the paper
// stops GRD at w = 1e5 (could not finish in 2 h there).

#include <cstdio>

#include "bench_common.h"
#include "datasets/synthetic.h"
#include "util/string_util.h"
#include "util/timer.h"

int main() {
  using namespace moche;
  std::printf("=== Figure 5b: runtime on synthetic data, p = 3%% ===\n\n");

  baselines::MocheExplainer moche_method;
  baselines::MocheExplainer moche_ns =
      baselines::MocheExplainer::WithoutLowerBound();
  baselines::GreedyExplainer grd;

  harness::AsciiTable table({"w", "M", "Mns", "GRD", "k"});
  const std::vector<size_t> sizes{10000, 30000, 50000, 70000, 100000};
  for (size_t w : sizes) {
    datasets::DriftOptions opt;
    opt.size = w;
    opt.contamination = 0.03;
    opt.seed = bench::kExperimentSeed + w;
    auto inst = datasets::MakeKiferDriftInstance(opt);
    if (!inst.ok()) {
      std::fprintf(stderr, "skip w=%zu: %s\n", w,
                   inst.status().ToString().c_str());
      continue;
    }
    // random preference list, as in the paper's synthetic experiments
    Rng rng(bench::kExperimentSeed);
    const PreferenceList pref = RandomPreference(inst->test.size(), &rng);

    std::vector<std::string> row{StrFormat("%zu", w)};
    size_t k = 0;
    for (baselines::Explainer* method :
         std::vector<baselines::Explainer*>{&moche_method, &moche_ns, &grd}) {
      WallTimer timer;
      auto expl = method->Explain(*inst, pref);
      const double secs = timer.Seconds();
      if (expl.ok()) {
        if (method == &moche_method) k = expl->size();
        row.push_back(StrFormat("%.3f", secs));
      } else {
        row.push_back("abort");
      }
    }
    row.push_back(StrFormat("%zu", k));
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Seconds per instance (k = MOCHE explanation size).\n");
  std::printf("Paper shape: M at least 10x faster than GRD at every w; "
              "GRD did not\n"
              "finish within 2 h at w = 1e5 on the paper's testbed.\n");
  return 0;
}
