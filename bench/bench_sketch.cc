// The sketch-backed reference headline numbers (docs/SKETCH.md): memory
// footprint of a KLL-sketched reference vs the exact sorted sample,
// prepare cost at reference sizes up to 10M+, certified-triage throughput
// vs the exact O(n) batch path, and the triage quality ledger (certified
// rate, fallback rate, exact-vs-sketch agreement).
//
// Usage: bench_sketch [--reference 10000000] [--window 200]
//                     [--windows 256] [--sketch-k 1024]
//                     [--baseline] [--quick]
//
// --baseline runs the exact path only (no sketch) and emits the shared
// metric names — the committed docs/bench/BENCH_sketch.before.json is a
// full-size --baseline run, the .after.json the same run with the sketch,
// so the pair shows the memory/throughput delta on identical workloads.
//
// Exit status gates the certified contract, not performance: every
// kCertainPass / kCertainFail verdict is cross-checked against the exact
// ks outcome of the same window and ANY disagreement (or a certified
// bracket that misses the exact statistic) exits non-zero —
// `triage.certified_correct` in the JSON carries the same bit for the CI
// baseline diff. `expl.steady_allocs` counts heap allocation calls of one
// warmed-up triage batch (alloc_probe.h) and must stay 0.
//
// Size-dependent metrics embed the reference size in their names
// (prepare.n10000000.exact.median, ...) so the quick-mode CI run and the
// committed full-size baselines never compare across workload scales;
// only the scale-invariant contract metrics (triage.certified_correct,
// triage.agreement, expl.steady_allocs, sketch.k) share names everywhere.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "alloc_probe.h"
#include "bench_common.h"
#include "core/moche.h"
#include "core/workspace.h"
#include "runner.h"
#include "sketch/kll_sketch.h"
#include "sketch/sketched_reference.h"
#include "timeseries/generators.h"
#include "util/string_util.h"

using namespace moche;

namespace {

constexpr double kAlpha = 0.05;

struct TriageTally {
  size_t certified_pass = 0;
  size_t certified_fail = 0;
  size_t fallbacks = 0;
  size_t disagreements = 0;
  size_t bracket_misses = 0;
};

// Cross-checks every certified verdict (and bracket) against the exact
// outcome of the same window. A disagreement is a correctness bug in the
// certified bound, never noise — the ±1e-12 slack on the bracket only
// absorbs the printf-roundtrip-free float compare, the verdict check has
// no tolerance at all.
TriageTally CrossCheck(const std::vector<sketch::SketchTriage>& triages,
                       const std::vector<KsOutcome>& outcomes) {
  TriageTally tally;
  for (size_t w = 0; w < triages.size(); ++w) {
    const sketch::SketchTriage& t = triages[w];
    const KsOutcome& exact = outcomes[w];
    switch (t.verdict) {
      case sketch::TriageVerdict::kCertainPass:
        ++tally.certified_pass;
        if (exact.reject) ++tally.disagreements;
        break;
      case sketch::TriageVerdict::kCertainFail:
        ++tally.certified_fail;
        if (!exact.reject) ++tally.disagreements;
        break;
      case sketch::TriageVerdict::kUncertain:
        ++tally.fallbacks;
        break;
    }
    if (t.lower > exact.statistic + 1e-12 ||
        t.upper < exact.statistic - 1e-12) {
      ++tally.bracket_misses;
    }
  }
  return tally;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::QuickMode(argc, argv);
  size_t reference_size = 10000000;
  size_t window = 200;
  size_t windows = 256;
  size_t sketch_k = 1024;
  bool baseline = false;
  if (quick) {
    reference_size = 100000;
    window = 100;
    windows = 128;
  }
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](size_t* out) {
      if (i + 1 >= argc) return false;
      *out = static_cast<size_t>(std::atoll(argv[++i]));
      return true;
    };
    bool ok = true;
    if (std::strcmp(argv[i], "--reference") == 0) {
      ok = next(&reference_size);
    } else if (std::strcmp(argv[i], "--window") == 0) {
      ok = next(&window);
    } else if (std::strcmp(argv[i], "--windows") == 0) {
      ok = next(&windows);
    } else if (std::strcmp(argv[i], "--sketch-k") == 0) {
      ok = next(&sketch_k);
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      baseline = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      // already handled by bench::QuickMode
    } else {
      ok = false;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "usage: %s [--reference N] [--window M] [--windows W] "
                   "[--sketch-k K] [--baseline] [--quick]\n",
                   argv[0]);
      return 1;
    }
  }

  std::printf("=== Sketch-backed references: memory and certified triage "
              "(%s path) ===\n\n",
              baseline ? "exact baseline" : "sketched");
  std::printf("reference: %zu  window: %zu  windows: %zu  sketch k: %zu\n\n",
              reference_size, window, windows, sketch_k);

  // One mean-shift stream: windows before length/2 are in-distribution
  // (certified passes at a sane epsilon), windows after are drifted
  // (certified fails), the boundary windows straddle — all three verdicts
  // get exercised with known proportions.
  const ts::DriftScenario scenario =
      ts::MakeDriftScenario(ts::DriftKind::kMeanShift, bench::kExperimentSeed,
                            reference_size, windows * window);
  const std::vector<double>& reference = scenario.reference;
  if (scenario.observations.size() < windows * window) {
    std::fprintf(stderr, "scenario produced %zu < %zu observations\n",
                 scenario.observations.size(), windows * window);
    return 1;
  }
  const WindowBatch batch{scenario.observations.data(), windows, window};

  const std::string kBench = "sketch";
  const std::string scale = StrFormat("n%zu.", reference_size);
  std::vector<bench::BenchResult> records;
  const auto add_record = [&](const std::string& metric, double value,
                              const char* unit) {
    bench::AppendRecord(&records, kBench, metric, value, unit, 1);
  };

  const Moche engine;
  const bench::RunnerOptions timing{/*warmup=*/1,
                                    /*repetitions=*/quick ? 3u : 3u};

  // Exact prepare: the O(n log n) validate-copy-sort every fresh exact
  // reference pays (the per-repetition copy is part of the real cost).
  const bench::TimingStats prepare_exact = bench::Measure(
      [&] {
        auto prepared = engine.Prepare(reference, kAlpha);
        if (!prepared.ok()) std::exit(1);
      },
      timing);
  bench::AppendTiming(&records, kBench, "prepare." + scale + "exact",
                      prepare_exact, 1);
  auto prepared = engine.Prepare(reference, kAlpha);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  const double exact_bytes =
      static_cast<double>(reference.size() * sizeof(double));
  add_record("ref." + scale + "bytes.exact", exact_bytes, "bytes");

  // Exact batch triage: the per-window O(n + m log m) sweep the sketch
  // replaces on certified verdicts.
  ExplainWorkspace workspace;
  std::vector<KsOutcome> outcomes;
  const bench::RunnerOptions batch_timing{/*warmup=*/1,
                                          /*repetitions=*/quick ? 3u : 2u};
  const bench::TimingStats exact_batch = bench::Measure(
      [&] {
        const Status status =
            engine.EvaluateBatchPrepared(*prepared, batch, &workspace,
                                         &outcomes);
        if (!status.ok()) std::exit(1);
      },
      batch_timing);
  const double exact_rate =
      static_cast<double>(windows) / exact_batch.median;
  add_record("exact." + scale + "throughput", exact_rate, "win/s");

  std::printf("exact: prepare %.4fs, %.0f windows/s, %.1f MB resident\n",
              prepare_exact.median, exact_rate, exact_bytes / 1e6);

  if (baseline) {
    // Before-mode: the exact path carries the shared metric names so the
    // committed before/after pair diffs memory and throughput directly.
    add_record("ref." + scale + "bytes", exact_bytes, "bytes");
    add_record("triage." + scale + "throughput", exact_rate, "win/s");

    bench::AllocationProbe probe;
    const Status status =
        engine.EvaluateBatchPrepared(*prepared, batch, &workspace, &outcomes);
    if (!status.ok()) return 1;
    add_record("expl.steady_allocs", static_cast<double>(probe.Delta()),
               "count");

    const Status written = bench::WriteBenchJson(kBench, std::move(records));
    if (!written.ok()) {
      std::fprintf(stderr, "BENCH_%s.json: %s\n", kBench.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    std::printf("wrote BENCH_%s.json (baseline mode)\n", kBench.c_str());
    return 0;
  }

  // Sketch prepare: one streaming pass, no copy of the sample retained.
  sketch::KllOptions kll_options;
  kll_options.capacity = sketch_k;
  const bench::TimingStats prepare_sketch = bench::Measure(
      [&] {
        auto built =
            sketch::SketchedReference::FromSample(reference, kAlpha,
                                                  kll_options);
        if (!built.ok()) std::exit(1);
      },
      timing);
  bench::AppendTiming(&records, kBench, "prepare." + scale + "sketch",
                      prepare_sketch, 1);
  auto sketched =
      sketch::SketchedReference::FromSample(reference, kAlpha, kll_options);
  if (!sketched.ok()) {
    std::fprintf(stderr, "sketch: %s\n", sketched.status().ToString().c_str());
    return 1;
  }
  const double sketch_bytes = static_cast<double>(sketched->FootprintBytes());
  add_record("ref." + scale + "bytes", sketch_bytes, "bytes");
  add_record("ref." + scale + "compression", exact_bytes / sketch_bytes, "x");
  add_record("sketch." + scale + "epsilon", sketched->epsilon(), "ratio");
  add_record("sketch.k", static_cast<double>(sketch_k), "count");

  // Sketched batch triage: O(m log m + summary) per window, independent
  // of n.
  std::vector<sketch::SketchTriage> triages;
  const bench::TimingStats sketch_batch = bench::Measure(
      [&] {
        const Status status =
            engine.EvaluateBatchSketched(*sketched, batch, &workspace,
                                         &triages);
        if (!status.ok()) std::exit(1);
      },
      batch_timing);
  const double sketch_rate =
      static_cast<double>(windows) / sketch_batch.median;
  add_record("triage." + scale + "throughput", sketch_rate, "win/s");
  add_record("triage." + scale + "speedup", exact_batch.median / sketch_batch.median,
             "x");

  // Steady-state allocations of one warmed-up triage batch: the Measure
  // warmup above already sized every buffer, so any allocation here is a
  // hot-path regression.
  bench::AllocationProbe probe;
  {
    const Status status =
        engine.EvaluateBatchSketched(*sketched, batch, &workspace, &triages);
    if (!status.ok()) return 1;
  }
  add_record("expl.steady_allocs", static_cast<double>(probe.Delta()),
             "count");

  // The certified contract, cross-checked window by window.
  const TriageTally tally = CrossCheck(triages, outcomes);
  const size_t certified = tally.certified_pass + tally.certified_fail;
  const bool certified_correct =
      tally.disagreements == 0 && tally.bracket_misses == 0;
  add_record("triage." + scale + "certified_rate",
             static_cast<double>(certified) / static_cast<double>(windows),
             "ratio");
  add_record("triage." + scale + "fallback_rate",
             static_cast<double>(tally.fallbacks) /
                 static_cast<double>(windows),
             "ratio");
  add_record("triage.agreement",
             certified == 0
                 ? 1.0
                 : static_cast<double>(certified - tally.disagreements) /
                       static_cast<double>(certified),
             "ratio");
  add_record("triage.certified_correct", certified_correct ? 1.0 : 0.0,
             "bool");

  std::printf(
      "sketch: prepare %.4fs, %.0f windows/s (%.0fx), %.1f KB resident "
      "(%.0fx smaller), epsilon %.4f\n",
      prepare_sketch.median, sketch_rate,
      exact_batch.median / sketch_batch.median, sketch_bytes / 1e3,
      exact_bytes / sketch_bytes, sketched->epsilon());
  std::printf(
      "triage: %zu certified pass, %zu certified fail, %zu fallbacks "
      "(%.1f%% certified)\n\n",
      tally.certified_pass, tally.certified_fail, tally.fallbacks,
      100.0 * static_cast<double>(certified) / static_cast<double>(windows));

  const Status written = bench::WriteBenchJson(kBench, std::move(records));
  if (!written.ok()) {
    std::fprintf(stderr, "BENCH_%s.json: %s\n", kBench.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_%s.json\n", kBench.c_str());

  if (!certified_correct) {
    std::fprintf(stderr,
                 "\nFAIL: %zu certified verdict(s) disagree with the exact "
                 "ks outcome, %zu bracket(s) miss the exact statistic\n",
                 tally.disagreements, tally.bracket_misses);
    return 1;
  }
  if (certified == 0) {
    std::fprintf(stderr,
                 "\nFAIL: no window certified at all — the triage path "
                 "measured nothing (epsilon %.4f too coarse?)\n",
                 sketched->epsilon());
    return 1;
  }
  return 0;
}
