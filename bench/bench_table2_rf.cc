// Reproduces Table 2: the reverse factor (RF) — the fraction of failed KS
// tests a method manages to reverse — for the two budgeted methods CS and
// GRC, per dataset. All other methods have RF = 1 (verified and printed).
//
// Paper reference: CS 0.80-0.93, GRC 0.59-0.82 under a 24 h budget with
// top-100 candidate pools. Our iteration budgets are smaller (see
// docs/BENCHMARKS.md), so absolute RFs differ; CS > GRC and both < 1 is the
// shape to check.

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"

int main() {
  using namespace moche;
  std::printf("=== Table 2: reverse factor (larger = better) ===\n\n");
  const auto per_dataset = bench::RunStandardExperiment();

  std::vector<std::string> header{"Method"};
  for (const auto& ds : per_dataset) header.push_back(ds.dataset);
  harness::AsciiTable table(header);

  if (!per_dataset.empty()) {
    const size_t num_methods = per_dataset.front().aggregates.size();
    for (size_t j = 0; j < num_methods; ++j) {
      std::vector<std::string> row{per_dataset.front().aggregates[j].method};
      for (const auto& ds : per_dataset) {
        row.push_back(bench::Fmt(ds.aggregates[j].reverse_factor));
      }
      table.AddRow(std::move(row));
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper: RF = 1.00 for M/GRD/S2G/STMP/D3 on all datasets;\n");
  std::printf("       CS 0.80-0.93 and GRC 0.59-0.82 under the paper's "
              "larger budgets.\n");
  return 0;
}
