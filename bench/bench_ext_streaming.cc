// Extension bench (not a paper figure): the incremental KS detector
// (dos Reis et al. [17], src/ks/streaming.*) vs a from-scratch batch
// re-test on every arriving observation. This quantifies the substrate
// choice behind the streaming drift monitor (docs/ARCHITECTURE.md).
//
// Expected shape: the batch cost per update grows ~linearly in n+m (sort +
// merge), the treap cost grows ~logarithmically; the crossover is
// immediate and the gap reaches 3-4 orders of magnitude by n = 1e5.

#include <algorithm>
#include <cstdio>
#include <deque>

#include "ks/ks_test.h"
#include "ks/streaming.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

int main() {
  using namespace moche;
  std::printf("=== Extension: incremental vs batch KS per stream update "
              "===\n\n");
  printf("%-10s %-10s %-14s %-14s %-8s\n", "n (ref)", "m (win)",
         "batch s/upd", "treap s/upd", "speedup");
  printf("------------------------------------------------------------\n");

  for (size_t scale : {1000u, 10000u, 100000u}) {
    Rng rng(scale);
    std::vector<double> reference(scale);
    for (double& v : reference) v = rng.Normal();
    const size_t window = scale / 5;
    const size_t updates = scale >= 100000 ? 50 : 500;

    // incremental
    auto stream = StreamingKs::Create(reference, window, 0.05);
    if (!stream.ok()) return 1;
    for (size_t i = 0; i < window; ++i) {
      (void)stream->Push(rng.Normal());
    }
    WallTimer treap_timer;
    for (size_t i = 0; i < updates; ++i) {
      (void)stream->Push(rng.Normal(0.5, 1.0));
      (void)stream->Drifted();
    }
    const double treap_per_update = treap_timer.Seconds() / updates;

    // batch: re-sort the window and recompute the statistic every update
    std::vector<double> ref_sorted = reference;
    std::sort(ref_sorted.begin(), ref_sorted.end());
    std::deque<double> win;
    for (size_t i = 0; i < window; ++i) win.push_back(rng.Normal());
    WallTimer batch_timer;
    for (size_t i = 0; i < updates; ++i) {
      win.pop_front();
      win.push_back(rng.Normal(0.5, 1.0));
      std::vector<double> sorted(win.begin(), win.end());
      std::sort(sorted.begin(), sorted.end());
      volatile double d = ks::StatisticSorted(ref_sorted, sorted);
      (void)d;
    }
    const double batch_per_update = batch_timer.Seconds() / updates;

    const std::string speedup =
        StrFormat("%.0fx", batch_per_update / treap_per_update);
    printf("%-10zu %-10zu %-14.3e %-14.3e %-8s\n", scale, window,
           batch_per_update, treap_per_update, speedup.c_str());
  }
  std::printf("\nBoth paths compute identical statistics "
              "(tests/ks/streaming_test.cc proves step equality).\n");
  return 0;
}
