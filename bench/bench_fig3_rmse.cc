// Reproduces Figure 3: average RMSE between the ECDFs of R and T \ I per
// method on each dataset family (smaller = better explanation).
//
// Paper shape: MOCHE smallest everywhere; GRC best baseline; the
// outlier/shape-based baselines worst.

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"

int main() {
  using namespace moche;
  std::printf(
      "=== Figure 3: average ECDF RMSE per dataset (smaller = better) "
      "===\n\n");
  const auto per_dataset = bench::RunStandardExperiment();

  std::vector<std::string> header{"Dataset", "#tests"};
  if (!per_dataset.empty()) {
    for (const auto& m : per_dataset.front().aggregates) {
      header.push_back(m.method);
    }
  }
  harness::AsciiTable table(header);
  for (const auto& ds : per_dataset) {
    std::vector<std::string> row{ds.dataset, StrFormat("%zu", ds.instances)};
    for (const auto& m : ds.aggregates) {
      row.push_back(m.produced > 0 ? bench::Fmt(m.avg_rmse, 3) : "n/a");
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("RMSE averaged over the instances each method explained.\n");
  std::printf("Paper shape: M smallest on every dataset; GRC best "
              "baseline.\n");
  return 0;
}
