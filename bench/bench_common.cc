#include "bench_common.h"

#include <cstdio>

#include "util/string_util.h"

namespace moche {
namespace bench {

std::vector<DatasetAggregates> RunStandardExperiment() {
  std::vector<DatasetAggregates> out;
  const std::vector<ts::Dataset> datasets =
      ts::MakeAllNabLikeDatasets(kExperimentSeed, kExperimentScale);
  const harness::CollectOptions collect = StandardCollect();
  MethodRoster roster;

  for (const ts::Dataset& ds : datasets) {
    auto instances = harness::CollectFailedInstances(ds, collect);
    if (!instances.ok()) {
      std::fprintf(stderr, "collect failed for %s: %s\n", ds.name.c_str(),
                   instances.status().ToString().c_str());
      continue;
    }
    DatasetAggregates agg;
    agg.dataset = ds.name;
    agg.instances = instances->size();
    const auto results = harness::RunMethods(*instances, roster.All());
    auto aggregates = harness::Aggregate(results);
    if (!aggregates.ok()) {
      std::fprintf(stderr, "aggregate failed for %s: %s\n", ds.name.c_str(),
                   aggregates.status().ToString().c_str());
      continue;
    }
    agg.aggregates = std::move(aggregates).value();
    out.push_back(std::move(agg));
  }
  return out;
}

std::string Fmt(double value, int precision) {
  // Locale-independent fixed formatting; byte-identical to %.*f in the C
  // locale, which the identity corpus depends on.
  return FormatFixed(value, precision);
}

}  // namespace bench
}  // namespace moche
