// Differential oracle: the four Explain entry points against each other,
// plus workspace recycling across size-mixed windows.
//
// Moche::Explain, ExplainPrepared, ExplainInto and ExplainPreparedInto all
// promise bit-identical reports on the same inputs (the *Into paths merely
// relocate scratch into a caller-owned workspace). This target drives a
// sequence of windows of DIFFERENT sizes through ONE recycled workspace
// and ONE recycled report — the steady state of the stream monitor — and
// fails if any path diverges from the allocation-per-call baseline in
// status code, explanation indices, sizes, outcomes (bit-exact statistics)
// or search counters. FindExplanationSize* must agree with the report's
// phase-1 numbers, and EvaluateBatchPrepared must match ks::Run per window.

#include <cstring>
#include <utility>
#include <vector>

#include "core/moche.h"
#include "core/workspace.h"
#include "fuzz_target.h"
#include "ks/ks_test.h"
#include "provider.h"

namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void CheckOutcomesIdentical(const moche::KsOutcome& a,
                            const moche::KsOutcome& b, const char* what,
                            size_t window) {
  MOCHE_FUZZ_CHECK(SameBits(a.statistic, b.statistic),
                   "window %zu: %s statistic %.17g != %.17g", window, what,
                   a.statistic, b.statistic);
  MOCHE_FUZZ_CHECK(SameBits(a.threshold, b.threshold),
                   "window %zu: %s threshold differs", window, what);
  MOCHE_FUZZ_CHECK(a.reject == b.reject && a.location == b.location &&
                       a.n == b.n && a.m == b.m,
                   "window %zu: %s outcome fields differ", window, what);
}

void CheckReportsIdentical(const moche::MocheReport& a,
                           const moche::MocheReport& b, const char* what,
                           size_t window) {
  MOCHE_FUZZ_CHECK(a.explanation.indices == b.explanation.indices,
                   "window %zu: %s explanation indices differ", window, what);
  MOCHE_FUZZ_CHECK(a.k == b.k && a.k_hat == b.k_hat,
                   "window %zu: %s sizes differ (k %zu/%zu k_hat %zu/%zu)",
                   window, what, a.k, b.k, a.k_hat, b.k_hat);
  CheckOutcomesIdentical(a.original, b.original, what, window);
  CheckOutcomesIdentical(a.after, b.after, what, window);
  MOCHE_FUZZ_CHECK(a.size_stats.k == b.size_stats.k &&
                       a.size_stats.k_hat == b.size_stats.k_hat &&
                       a.size_stats.theorem1_checks ==
                           b.size_stats.theorem1_checks &&
                       a.size_stats.theorem2_checks ==
                           b.size_stats.theorem2_checks &&
                       a.size_stats.probe_refutations ==
                           b.size_stats.probe_refutations &&
                       a.size_stats.full_scans == b.size_stats.full_scans,
                   "window %zu: %s size-search counters differ", window,
                   what);
  MOCHE_FUZZ_CHECK(a.build_stats.candidates_checked ==
                           b.build_stats.candidates_checked &&
                       a.build_stats.recursion_steps ==
                           b.build_stats.recursion_steps,
                   "window %zu: %s build counters differ", window, what);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  moche::fuzz::Provider in(data, size);

  const size_t n = in.SizeInRange(1, 40);
  const int alphabet = static_cast<int>(in.SizeInRange(1, 8));
  const bool tied = in.Bool();
  std::vector<double> reference;
  if (tied) {
    in.TiedArray(n, alphabet, &reference);
  } else {
    in.FiniteArray(n, &reference);
  }
  const double alpha = in.Alpha();

  // Toggle the ablation knobs too: all configurations promise identical
  // explanations across entry points (and the ablations promise identical
  // explanations outright, which the unit suite covers — here each run
  // self-compares under one configuration).
  moche::MocheOptions options;
  options.use_lower_bound = in.Bool();
  options.incremental_partial_check = in.Bool();
  const moche::Moche engine(options);

  auto prepared = engine.Prepare(reference, alpha);
  MOCHE_FUZZ_CHECK(prepared.ok(), "Prepare rejected a valid reference: %s",
                   prepared.status().message().c_str());

  // ONE workspace and ONE report recycled across windows of mixed sizes —
  // the recycling contract under test.
  moche::ExplainWorkspace workspace;
  moche::MocheReport into_report;
  moche::MocheReport prepared_into_report;

  const size_t windows = in.SizeInRange(1, 4);
  for (size_t w = 0; w < windows; ++w) {
    const size_t m = in.SizeInRange(2, 14);
    std::vector<double> test;
    if (tied) {
      in.TiedArray(m, alphabet, &test);
    } else {
      in.FiniteArray(m, &test);
    }

    // A byte-derived permutation of [0, m) via Fisher-Yates.
    moche::PreferenceList pref = moche::IdentityPreference(m);
    for (size_t i = m; i > 1; --i) {
      std::swap(pref[i - 1], pref[in.SizeInRange(0, i - 1)]);
    }

    auto base = engine.Explain(reference, test, alpha, pref);
    auto via_prepared = engine.ExplainPrepared(*prepared, test, pref);
    const moche::Status into_status = engine.ExplainInto(
        reference, test, alpha, pref, &workspace, &into_report);
    const moche::Status prepared_into_status = engine.ExplainPreparedInto(
        *prepared, test, pref, &workspace, &prepared_into_report);

    MOCHE_FUZZ_CHECK(base.status().code() == via_prepared.status().code() &&
                         base.status().code() == into_status.code() &&
                         base.status().code() == prepared_into_status.code(),
                     "window %zu: status codes diverge: %s / %s / %s / %s", w,
                     moche::StatusCodeToString(base.status().code()),
                     moche::StatusCodeToString(via_prepared.status().code()),
                     moche::StatusCodeToString(into_status.code()),
                     moche::StatusCodeToString(prepared_into_status.code()));
    if (base.ok()) {
      CheckReportsIdentical(*base, *via_prepared, "ExplainPrepared", w);
      CheckReportsIdentical(*base, into_report, "ExplainInto", w);
      CheckReportsIdentical(*base, prepared_into_report, "ExplainPreparedInto",
                            w);

      // Phase-1-only entry points must report the same size search.
      auto size_only = engine.FindExplanationSize(reference, test, alpha);
      MOCHE_FUZZ_CHECK(size_only.ok(),
                       "FindExplanationSize failed where Explain succeeded");
      MOCHE_FUZZ_CHECK(size_only->k == base->k &&
                           size_only->k_hat == base->k_hat,
                       "window %zu: FindExplanationSize k=%zu k_hat=%zu vs "
                       "report k=%zu k_hat=%zu",
                       w, size_only->k, size_only->k_hat, base->k, base->k_hat);
      auto size_into =
          engine.FindExplanationSizeInto(*prepared, test, &workspace);
      MOCHE_FUZZ_CHECK(size_into.ok() &&
                           size_into->k == size_only->k &&
                           size_into->k_hat == size_only->k_hat,
                       "window %zu: FindExplanationSizeInto diverges", w);

      // The report's own invariants: the explanation is a valid index set
      // of the claimed size, the original test rejects, the after test
      // passes.
      MOCHE_FUZZ_CHECK(base->explanation.indices.size() == base->k,
                       "window %zu: k=%zu but %zu indices", w, base->k,
                       base->explanation.indices.size());
      MOCHE_FUZZ_CHECK(base->k_hat <= base->k,
                       "window %zu: lower bound k_hat=%zu exceeds k=%zu", w,
                       base->k_hat, base->k);
      MOCHE_FUZZ_CHECK(base->original.reject && !base->after.reject,
                       "window %zu: reject flags wrong (original=%d after=%d)",
                       w, base->original.reject, base->after.reject);
    }
  }

  // EvaluateBatchPrepared: an SoA batch of equal-width windows must match
  // per-window ks::Run bit-exactly, through the same recycled workspace.
  const size_t count = in.SizeInRange(0, 4);
  const size_t width = in.SizeInRange(1, 10);
  std::vector<double> soa;
  if (tied) {
    in.TiedArray(count * width, alphabet, &soa);
  } else {
    in.FiniteArray(count * width, &soa);
  }
  moche::WindowBatch batch{soa.data(), count, width};
  std::vector<moche::KsOutcome> outcomes(3);  // wrong-sized on purpose
  const moche::Status batch_status =
      engine.EvaluateBatchPrepared(*prepared, batch, &workspace, &outcomes);
  MOCHE_FUZZ_CHECK(batch_status.ok(), "EvaluateBatchPrepared failed: %s",
                   batch_status.message().c_str());
  MOCHE_FUZZ_CHECK(outcomes.size() == count,
                   "batch wrote %zu outcomes for %zu windows",
                   outcomes.size(), count);
  for (size_t w = 0; w < count; ++w) {
    std::vector<double> window(soa.begin() + w * width,
                               soa.begin() + (w + 1) * width);
    auto direct = moche::ks::Run(reference, window, alpha);
    MOCHE_FUZZ_CHECK(direct.ok(), "direct recompute failed: %s",
                     direct.status().message().c_str());
    CheckOutcomesIdentical(outcomes[w], *direct, "EvaluateBatchPrepared", w);
  }
  return 0;
}
