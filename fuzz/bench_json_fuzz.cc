// Differential oracle: the bench runner's mini JSON parser — round-trip
// identity on records it wrote itself, graceful rejection of everything
// else.
//
// Two modes share the input bytes. Structured mode derives a schema-valid
// BenchResult (arbitrary byte strings, laced doubles, large counts),
// serializes with ToJson/array framing, and requires FromJson /
// ParseBenchJson to reproduce every field — the value bit-exactly (the
// G17 contract). Raw mode feeds the remaining bytes straight into both
// parsers, which must either reject with InvalidArgument or produce
// records that survive a second round-trip unchanged (parse-serialize-
// parse is a fixed point). Under ASan/UBSan this is also the no-crash
// no-overflow gate for the hardened paths: byte budget, nested-container
// rejection, duplicate keys, and the overflow-checked threads/samples
// conversion that used to cast an arbitrary double straight to size_t.

#include <cstring>
#include <string>
#include <vector>

#include "fuzz_target.h"
#include "provider.h"
#include "runner.h"

namespace {

using moche::bench::BenchResult;

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool SameRecord(const BenchResult& a, const BenchResult& b) {
  return a.bench == b.bench && a.metric == b.metric &&
         SameBits(a.value, b.value) && a.unit == b.unit &&
         a.threads == b.threads && a.samples == b.samples && a.isa == b.isa &&
         a.commit == b.commit;
}

// A schema-valid record from arbitrary bytes: non-empty names, finite
// value, counts in [1, 2^53].
BenchResult DeriveRecord(moche::fuzz::Provider* in) {
  BenchResult r;
  r.bench = "b" + in->String(12);
  r.metric = "m" + in->String(24);
  r.value = in->FiniteValue();
  r.unit = "u" + in->String(6);
  r.threads = static_cast<size_t>(
      in->IntInRange(1, int64_t{1} << (in->Bool() ? 6 : 53)));
  r.samples = static_cast<size_t>(
      in->IntInRange(1, int64_t{1} << (in->Bool() ? 6 : 53)));
  r.isa = in->Bool() ? "" : "i" + in->String(6);
  r.commit = "c" + in->String(8);
  return r;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  moche::fuzz::Provider in(data, size);

  if (in.Bool()) {
    // Structured mode: write-then-read identity.
    const size_t count = in.SizeInRange(0, 4);
    std::vector<BenchResult> records;
    std::string doc = "[\n";
    for (size_t i = 0; i < count; ++i) {
      records.push_back(DeriveRecord(&in));
      const std::string one = moche::bench::ToJson(records.back());

      auto parsed = moche::bench::FromJson(one);
      MOCHE_FUZZ_CHECK(parsed.ok(), "FromJson rejected ToJson output: %s",
                       parsed.status().message().c_str());
      // An empty isa serializes as "" and reads back verbatim (only an
      // ABSENT key defaults to "unknown").
      MOCHE_FUZZ_CHECK(SameRecord(*parsed, records.back()),
                       "record %zu did not round-trip through ToJson", i);

      doc += "  " + one;
      if (i + 1 < count) doc += ",";
      doc += "\n";
    }
    doc += "]\n";
    auto array = moche::bench::ParseBenchJson(doc);
    MOCHE_FUZZ_CHECK(array.ok(), "ParseBenchJson rejected framed output: %s",
                     array.status().message().c_str());
    MOCHE_FUZZ_CHECK(array->size() == count,
                     "array round-trip lost records (%zu of %zu)",
                     array->size(), count);
    for (size_t i = 0; i < count; ++i) {
      MOCHE_FUZZ_CHECK(SameRecord((*array)[i], records[i]),
                       "array record %zu diverged", i);
    }
    return 0;
  }

  // Raw mode: arbitrary bytes must be rejected cleanly or parse into
  // records stable under re-serialization.
  const std::string raw = in.RemainingString();
  auto one = moche::bench::FromJson(raw);
  if (one.ok()) {
    MOCHE_FUZZ_CHECK(moche::bench::ValidateBenchResult(*one).ok(),
                     "FromJson accepted a schema-invalid record");
    auto again = moche::bench::FromJson(moche::bench::ToJson(*one));
    MOCHE_FUZZ_CHECK(again.ok() && SameRecord(*again, *one),
                     "parse-serialize-parse is not a fixed point");
  }
  auto many = moche::bench::ParseBenchJson(raw);
  if (many.ok()) {
    for (const BenchResult& r : *many) {
      MOCHE_FUZZ_CHECK(moche::bench::ValidateBenchResult(r).ok(),
                       "ParseBenchJson accepted a schema-invalid record");
      auto again = moche::bench::FromJson(moche::bench::ToJson(r));
      MOCHE_FUZZ_CHECK(again.ok() && SameRecord(*again, r),
                       "array parse-serialize-parse is not a fixed point");
    }
  }
  return 0;
}
