// Differential oracle: BoundsEngine Theorem 1/2 and SizeScan against
// brute-force subset enumeration on small instances.
//
// Soundness is the sharp edge: when the engine refutes a size h (Theorem 1
// says no qualified h-subset exists), exhaustive enumeration must agree —
// a refuted size with a qualifying explanation would make MOCHE return
// non-minimal (wrong) explanations while every test stays green. The
// target also checks completeness (engine says exists => brute force finds
// one), Theorem 2's necessity (qualified h-subset exists => the Equation 5
// condition holds), SizeScan's bit-identity to the stateless check under
// arbitrary probe orders, and that ConstructQualifiedVector's witness is a
// genuine sub-multiset of T of the requested size.

#include <cstdint>
#include <vector>

#include "core/bounds.h"
#include "core/brute_force.h"
#include "core/cumulative.h"
#include "core/instance.h"
#include "fuzz_target.h"
#include "provider.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  moche::fuzz::Provider in(data, size);

  // Small m keeps the 2^m enumeration cheap; a tight shared alphabet makes
  // ties (the hard case for the ceil/floor tolerance algebra) the norm.
  moche::KsInstance inst;
  const size_t n = in.SizeInRange(1, 14);
  const size_t m = in.SizeInRange(2, 9);
  const int alphabet = static_cast<int>(in.SizeInRange(1, 6));
  if (in.Bool()) {
    in.TiedArray(n, alphabet, &inst.reference);
    in.TiedArray(m, alphabet, &inst.test);
  } else {
    in.FiniteArray(n, &inst.reference);
    in.FiniteArray(m, &inst.test);
  }
  inst.alpha = in.Alpha();

  auto frame = moche::CumulativeFrame::Build(inst.reference, inst.test);
  MOCHE_FUZZ_CHECK(frame.ok(), "CumulativeFrame::Build failed: %s",
                   frame.status().message().c_str());
  moche::BoundsEngine engine(*frame, inst.alpha);
  moche::BruteForceExplainer brute;

  std::vector<bool> exists(m, false);
  for (size_t h = 1; h < m; ++h) {
    const bool fast = engine.ExistsQualified(h);
    auto slow = brute.ExistsQualifiedSubset(inst, h);
    MOCHE_FUZZ_CHECK(slow.ok(), "brute force failed at h=%zu: %s", h,
                     slow.status().message().c_str());
    MOCHE_FUZZ_CHECK(
        fast == *slow,
        "Theorem 1 %s at h=%zu but enumeration says %s (n=%zu m=%zu "
        "alpha=%.17g)",
        fast ? "accepts" : "refutes", h, *slow ? "exists" : "none", n, m,
        inst.alpha);
    exists[h] = fast;

    // Theorem 2 is a necessary condition: existence implies it holds.
    if (fast) {
      MOCHE_FUZZ_CHECK(engine.NecessaryCondition(h),
                       "Theorem 2 fails at h=%zu where a qualified subset "
                       "exists",
                       h);
    }

    // The constructed witness must be a size-h sub-multiset of T.
    auto witness = engine.ConstructQualifiedVector(h);
    MOCHE_FUZZ_CHECK(witness.ok() == fast,
                     "ConstructQualifiedVector %s at h=%zu but Theorem 1 "
                     "says %d",
                     witness.ok() ? "succeeded" : "failed", h, fast);
    if (witness.ok()) {
      const std::vector<int64_t>& cum = *witness;
      MOCHE_FUZZ_CHECK(cum.size() == frame->q() + 1 && cum[0] == 0,
                       "witness vector has wrong shape at h=%zu", h);
      MOCHE_FUZZ_CHECK(cum.back() == static_cast<int64_t>(h),
                       "witness vector has size %lld, wanted h=%zu",
                       static_cast<long long>(cum.back()), h);
      for (size_t i = 1; i < cum.size(); ++i) {
        const int64_t count = cum[i] - cum[i - 1];
        MOCHE_FUZZ_CHECK(count >= 0 && count <= frame->CountT(i),
                         "witness count %lld at i=%zu exceeds T's "
                         "multiplicity %lld",
                         static_cast<long long>(count), i,
                         static_cast<long long>(frame->CountT(i)));
      }
    }
  }

  // Theorem 2 is monotone in h: once it holds it must keep holding.
  bool held = false;
  for (size_t h = 1; h < m; ++h) {
    const bool now = engine.NecessaryCondition(h);
    MOCHE_FUZZ_CHECK(!held || now,
                     "Theorem 2 monotonicity violated at h=%zu", h);
    held = held || now;
  }

  // SizeScan must be bit-identical to the stateless check in ANY call
  // order, including revisits (the walk carries failure state across
  // sizes; a byte-derived probe order stresses the carry logic).
  moche::SizeScan scan(engine);
  const size_t probes = in.SizeInRange(1, 24);
  for (size_t p = 0; p < probes; ++p) {
    const size_t h = in.SizeInRange(1, m - 1);
    MOCHE_FUZZ_CHECK(scan.ExistsQualified(h) == exists[h],
                     "SizeScan diverges from ExistsQualified at h=%zu "
                     "(probe %zu)",
                     h, p);
  }
  // Every probe either short-circuits via the O(1) refutation or falls back
  // to a full scan; the counters must account for all of them.
  MOCHE_FUZZ_CHECK(scan.probe_refutations() + scan.full_scans() == probes,
                   "SizeScan counters %zu + %zu do not cover %zu probes",
                   scan.probe_refutations(), scan.full_scans(), probes);
  return 0;
}
