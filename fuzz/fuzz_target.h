// Shared vocabulary of the fuzz targets: the libFuzzer entry-point
// signature and the oracle-failure reporter.
//
// Every fuzz/<name>_fuzz.cc defines
//     extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t n);
// and builds twice from that one TU: linked against libFuzzer
// (-DMOCHE_FUZZER=ON, clang only) for coverage-guided exploration, and
// against fuzz/replay_main.cc for the always-on corpus-replay regression
// tests in ctest. A target is a differential oracle, not a crash probe:
// when the system under test disagrees with its reference implementation,
// it calls MOCHE_FUZZ_FAIL, which prints the diagnosis and aborts — an
// abort is what both libFuzzer (crash artifact) and ctest (non-zero exit)
// turn into a red signal.
//
// Ownership & thread-safety: macros and a declaration only; no state.

#ifndef MOCHE_FUZZ_FUZZ_TARGET_H_
#define MOCHE_FUZZ_FUZZ_TARGET_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

// fprintf + abort rather than any exception/Status machinery: the report
// must survive ASan/UBSan runtimes and land in libFuzzer's crash artifact.
#define MOCHE_FUZZ_FAIL(...)                                          \
  do {                                                                \
    std::fprintf(stderr, "FUZZ ORACLE FAILURE %s:%d: ", __FILE__,     \
                 __LINE__);                                           \
    std::fprintf(stderr, __VA_ARGS__);                                \
    std::fprintf(stderr, "\n");                                       \
    std::abort();                                                     \
  } while (0)

#define MOCHE_FUZZ_CHECK(cond, ...)          \
  do {                                       \
    if (!(cond)) MOCHE_FUZZ_FAIL(__VA_ARGS__); \
  } while (0)

#endif  // MOCHE_FUZZ_FUZZ_TARGET_H_
