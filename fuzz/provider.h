// Deterministic byte-to-structure provider for the fuzz targets.
//
// Every fuzz target derives its whole input — sample arrays, alphas,
// window widths, batch schedules — from the raw byte string libFuzzer (or
// the corpus-replay driver) hands it, through this reader. The derivation
// is a pure function of the bytes: the same input file always reproduces
// the same structures, which is what makes a minimized crash input a
// committable regression test (fuzz/corpus/<target>/).
//
// The double generators deliberately lace the stream with the values the
// i.i.d.-minded numeric code never expects: ±0.0, denormals, huge-but-
// finite magnitudes, tie-heavy small integers, and (from the Raw variants
// only) NaN and ±Inf. FiniteValue() never returns a non-finite double, so
// targets can separate "hostile but valid" inputs from "must be rejected
// up front" inputs.
//
// Dependency-free by design: fuzz targets must build in the default matrix
// (replay mode) with nothing beyond the standard library, and under
// -fsanitize=fuzzer without dragging module code into the TU that defines
// the entry point.
//
// Ownership & thread-safety: a Provider borrows the input buffer (the
// caller keeps it alive for the Provider's lifetime) and is mutable
// single-consumer state — one target invocation owns one Provider.

#ifndef MOCHE_FUZZ_PROVIDER_H_
#define MOCHE_FUZZ_PROVIDER_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

namespace moche {
namespace fuzz {

class Provider {
 public:
  Provider(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  bool empty() const { return pos_ >= size_; }

  /// Next byte, or 0 once the input is exhausted (all generators below are
  /// total: they keep producing deterministic defaults on empty input, so
  /// a truncated corpus entry still replays without branching on size).
  uint8_t Byte() { return pos_ < size_ ? data_[pos_++] : 0; }

  bool Bool() { return (Byte() & 1) != 0; }

  /// Little-endian accumulation of up to 8 bytes.
  uint64_t U64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(Byte()) << (8 * i);
    }
    return v;
  }

  uint32_t U32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(Byte()) << (8 * i);
    }
    return v;
  }

  /// Uniform-ish draw in [lo, hi] (inclusive). Returns lo when hi <= lo.
  size_t SizeInRange(size_t lo, size_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<size_t>(U32() % (hi - lo + 1));
  }

  int64_t IntInRange(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(U64() % span);
  }

  /// A double in [0, 1].
  double Probability() {
    return static_cast<double>(U32()) /
           static_cast<double>(std::numeric_limits<uint32_t>::max());
  }

  /// The raw bit pattern of 8 bytes as a double — may be NaN or ±Inf.
  /// Targets use this for must-be-rejected validation paths and for the
  /// all_finite kernel, never for data that reaches std::sort.
  double RawDouble() {
    const uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  /// A finite double laced with the adversarial corners: ±0.0, denormals,
  /// huge magnitudes, tie-heavy small integers, and ordinary reals. Never
  /// NaN/Inf.
  double FiniteValue() {
    switch (Byte() % 8) {
      case 0:
        return 0.0;
      case 1:
        return -0.0;
      case 2:  // denormal band
        return static_cast<double>(IntInRange(-4, 4)) *
               std::numeric_limits<double>::denorm_min();
      case 3:  // huge but finite
        return static_cast<double>(IntInRange(-8, 8)) * 1e300;
      case 4:  // tiny normal
        return static_cast<double>(IntInRange(-8, 8)) *
               std::numeric_limits<double>::min();
      case 5:
      case 6:  // tie-heavy small integers (the KS grid's favorite food)
        return static_cast<double>(IntInRange(-6, 12));
      default: {  // ordinary real in [-1e3, 1e3]
        const double v = (Probability() - 0.5) * 2000.0;
        return std::isfinite(v) ? v : 0.0;
      }
    }
  }

  /// `count` finite values appended via FiniteValue into a rebuilt vector.
  void FiniteArray(size_t count, std::vector<double>* out) {
    out->clear();
    out->reserve(count);
    for (size_t i = 0; i < count; ++i) out->push_back(FiniteValue());
  }

  /// As FiniteArray but from a small shared alphabet, so duplicates occur
  /// across the reference and test samples (equal-key treap paths, tied
  /// ECDF grid points).
  void TiedArray(size_t count, int alphabet, std::vector<double>* out) {
    if (alphabet < 1) alphabet = 1;
    out->clear();
    out->reserve(count);
    for (size_t i = 0; i < count; ++i) {
      out->push_back(
          static_cast<double>(IntInRange(0, static_cast<int64_t>(alphabet))));
    }
  }

  /// A significance level in the valid domain (0, 2), laced with the
  /// boundary-adjacent values that stress c_alpha and the NotFound branch
  /// (alpha > 2/e^2 ≈ 0.27 is where explanations can stop existing).
  double Alpha() {
    switch (Byte() % 6) {
      case 0:
        return 0.05;
      case 1:
        return 0.01;
      case 2:
        return 1e-9;
      case 3:
        return 1.9999;
      case 4:
        return 0.5;
      default: {
        const double a = Probability() * 1.998 + 1e-3;
        return (a > 0.0 && a < 2.0) ? a : 0.05;
      }
    }
  }

  /// Up to `max_len` bytes as a std::string (for text parsers).
  std::string String(size_t max_len) {
    const size_t len = SizeInRange(0, max_len < remaining() ? max_len
                                                            : remaining());
    std::string out;
    out.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      out.push_back(static_cast<char>(Byte()));
    }
    return out;
  }

  /// The whole remaining buffer as a std::string (text-parser targets feed
  /// the raw input through unchanged so libFuzzer's dictionary mutations
  /// stay byte-for-byte meaningful).
  std::string RemainingString() {
    if (pos_ >= size_) return std::string();
    std::string out(reinterpret_cast<const char*>(data_ + pos_),
                    size_ - pos_);
    pos_ = size_;
    return out;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace fuzz
}  // namespace moche

#endif  // MOCHE_FUZZ_PROVIDER_H_
