// Differential oracle: DriftMonitor's determinism contract under
// randomized batch granularities and thread counts.
//
// The monitor promises a bit-identical event log regardless of (a) worker
// thread count and (b) how a lockstep observation sequence is chopped into
// PushBatch calls (events merge in (tick, stream) order after every
// batch). This target derives per-stream observation sequences with
// drift-inducing regime shifts, feeds the SAME sequences to three monitors
// — sequential coarse batches, parallel fine batches, and one-tick
// PushTick calls — and fails if SameEventLogs distinguishes any pair. It
// also cross-checks RecheckWindows against from-scratch ks::Run on
// mirrored windows, batch-rejection atomicity (a NaN batch must not
// advance any tick), and the stats counters.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "fuzz_target.h"
#include "ks/ks_test.h"
#include "provider.h"
#include "stream/drift_monitor.h"

namespace {

using moche::stream::DriftMonitor;
using moche::stream::MonitorOptions;
using moche::stream::RearmPolicy;

DriftMonitor MakeMonitor(const MonitorOptions& options) {
  auto monitor = DriftMonitor::Create(options);
  MOCHE_FUZZ_CHECK(monitor.ok(), "Create rejected valid options: %s",
                   monitor.status().message().c_str());
  return std::move(*monitor);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  moche::fuzz::Provider in(data, size);

  const size_t streams = in.SizeInRange(1, 3);
  const int alphabet = static_cast<int>(in.SizeInRange(2, 8));

  MonitorOptions options;
  options.alpha = in.Alpha();
  options.rearm =
      in.Bool() ? RearmPolicy::kOncePerExcursion : RearmPolicy::kEveryKPushes;
  options.explain_every_k =
      options.rearm == RearmPolicy::kEveryKPushes ? in.SizeInRange(1, 5) : 0;
  options.preference = in.Bool()
                           ? moche::stream::WindowPreference::kOldestFirst
                           : moche::stream::WindowPreference::kNewestFirst;

  MonitorOptions sequential = options;
  sequential.num_threads = 1;
  MonitorOptions parallel = options;
  parallel.num_threads = in.Bool() ? 2 : 0;  // 0 = one per core

  DriftMonitor coarse = MakeMonitor(sequential);
  DriftMonitor fine = MakeMonitor(parallel);
  DriftMonitor ticked = MakeMonitor(sequential);

  std::vector<std::vector<double>> references(streams);
  std::vector<size_t> window_sizes(streams);
  for (size_t s = 0; s < streams; ++s) {
    const size_t n = in.SizeInRange(4, 24);
    in.TiedArray(n, alphabet, &references[s]);
    window_sizes[s] = in.SizeInRange(2, 10);
    for (DriftMonitor* monitor : {&coarse, &fine, &ticked}) {
      auto index = monitor->AddStream("s" + std::to_string(s), references[s],
                                      window_sizes[s]);
      MOCHE_FUZZ_CHECK(index.ok() && *index == s,
                       "AddStream failed for stream %zu", s);
    }
  }

  // One observation sequence per stream; a byte-driven regime bit shifts
  // values outside the reference alphabet so excursions start and end.
  const size_t ticks = in.SizeInRange(0, 48);
  std::vector<std::vector<double>> sequence(streams);
  for (size_t s = 0; s < streams; ++s) {
    bool drifted_regime = false;
    for (size_t t = 0; t < ticks; ++t) {
      if (in.Byte() % 8 == 0) drifted_regime = !drifted_regime;
      double v = static_cast<double>(in.IntInRange(0, alphabet));
      if (drifted_regime) v += static_cast<double>(alphabet) + 1.0;
      sequence[s].push_back(v);
    }
  }

  // A malformed batch (wrong stream count, then a NaN) must reject without
  // advancing any stream.
  if (streams > 1) {
    std::vector<std::vector<double>> wrong(streams - 1);
    MOCHE_FUZZ_CHECK(!coarse.PushBatch(wrong).ok(),
                     "PushBatch accepted a wrong-length batch");
  }
  {
    std::vector<std::vector<double>> poisoned(streams);
    poisoned[in.SizeInRange(0, streams - 1)].push_back(std::nan(""));
    MOCHE_FUZZ_CHECK(!coarse.PushBatch(poisoned).ok(),
                     "PushBatch accepted a NaN observation");
    for (size_t s = 0; s < streams; ++s) {
      MOCHE_FUZZ_CHECK(coarse.stream_ticks(s) == 0,
                       "rejected batch advanced stream %zu", s);
    }
    MOCHE_FUZZ_CHECK(coarse.events().empty(),
                     "rejected batch emitted events");
  }

  // Feed the same lockstep sequences three ways: coarse chunks, fine
  // chunks, single ticks.
  size_t done_coarse = 0;
  while (done_coarse < ticks) {
    const size_t chunk =
        std::min(in.SizeInRange(1, 16), ticks - done_coarse);
    std::vector<std::vector<double>> batch(streams);
    for (size_t s = 0; s < streams; ++s) {
      batch[s].assign(sequence[s].begin() + done_coarse,
                      sequence[s].begin() + done_coarse + chunk);
    }
    MOCHE_FUZZ_CHECK(coarse.PushBatch(batch).ok(), "coarse PushBatch failed");
    done_coarse += chunk;
  }
  size_t done_fine = 0;
  while (done_fine < ticks) {
    const size_t chunk = std::min(in.SizeInRange(1, 3), ticks - done_fine);
    std::vector<std::vector<double>> batch(streams);
    for (size_t s = 0; s < streams; ++s) {
      batch[s].assign(sequence[s].begin() + done_fine,
                      sequence[s].begin() + done_fine + chunk);
    }
    MOCHE_FUZZ_CHECK(fine.PushBatch(batch).ok(), "fine PushBatch failed");
    done_fine += chunk;
  }
  std::vector<double> tick_values(streams);
  for (size_t t = 0; t < ticks; ++t) {
    for (size_t s = 0; s < streams; ++s) tick_values[s] = sequence[s][t];
    MOCHE_FUZZ_CHECK(ticked.PushTick(tick_values).ok(), "PushTick failed");
  }

  // The determinism contract: one event log, however the batches were cut
  // and scheduled.
  MOCHE_FUZZ_CHECK(
      moche::stream::SameEventLogs(coarse.events(), fine.events()),
      "event log differs between sequential-coarse and parallel-fine "
      "(%zu vs %zu events)",
      coarse.events().size(), fine.events().size());
  MOCHE_FUZZ_CHECK(
      moche::stream::SameEventLogs(coarse.events(), ticked.events()),
      "event log differs between batch and tick-at-a-time feeding "
      "(%zu vs %zu events)",
      coarse.events().size(), ticked.events().size());

  // Stats must account for every observation; each emitted event is one
  // explanation.
  const DriftMonitor::Stats stats = coarse.stats();
  MOCHE_FUZZ_CHECK(stats.streams == streams &&
                       stats.observations == streams * ticks,
                   "stats lost observations (%llu of %zu)",
                   static_cast<unsigned long long>(stats.observations),
                   streams * ticks);
  MOCHE_FUZZ_CHECK(stats.explanations == coarse.events().size(),
                   "stats.explanations %llu != %zu events",
                   static_cast<unsigned long long>(stats.explanations),
                   coarse.events().size());

  // RecheckWindows is read-only triage: outcomes must match a from-scratch
  // ks::Run on the mirrored window, streams with unfilled windows stay
  // n == 0, and no event or tick may move.
  std::vector<moche::KsOutcome> outcomes;
  const size_t events_before = coarse.events().size();
  MOCHE_FUZZ_CHECK(coarse.RecheckWindows(&outcomes).ok(),
                   "RecheckWindows failed");
  MOCHE_FUZZ_CHECK(outcomes.size() == streams,
                   "RecheckWindows wrote %zu outcomes for %zu streams",
                   outcomes.size(), streams);
  MOCHE_FUZZ_CHECK(coarse.events().size() == events_before,
                   "RecheckWindows appended events");
  for (size_t s = 0; s < streams; ++s) {
    MOCHE_FUZZ_CHECK(coarse.stream_ticks(s) == ticks,
                     "RecheckWindows advanced stream %zu", s);
    if (ticks < window_sizes[s]) {
      MOCHE_FUZZ_CHECK(outcomes[s].n == 0,
                       "unfilled stream %zu got a real outcome", s);
      continue;
    }
    const std::vector<double> window(
        sequence[s].end() - static_cast<ptrdiff_t>(window_sizes[s]),
        sequence[s].end());
    auto direct = moche::ks::Run(references[s], window, options.alpha);
    MOCHE_FUZZ_CHECK(direct.ok(), "mirror recompute failed: %s",
                     direct.status().message().c_str());
    MOCHE_FUZZ_CHECK(
        outcomes[s].statistic == direct->statistic &&
            outcomes[s].threshold == direct->threshold &&
            outcomes[s].reject == direct->reject &&
            outcomes[s].n == direct->n && outcomes[s].m == direct->m,
        "stream %zu: RecheckWindows outcome diverges from ks::Run "
        "(D=%.17g vs %.17g)",
        s, outcomes[s].statistic, direct->statistic);
  }
  return 0;
}
