// Standalone corpus-replay driver: the non-libFuzzer half of every fuzz
// target's dual build.
//
// Usage: <target>_replay <file-or-directory>...
//
// Each file argument is fed to LLVMFuzzerTestOneInput once; a directory
// argument is expanded to its regular files in sorted name order (so a
// replay run is deterministic regardless of readdir order). This is what
// ctest runs on every default-matrix build: the checked-in seed corpora
// under fuzz/corpus/<target>/ — including any minimized crash reproducers
// committed after a fix — become permanent regression tests without
// needing clang or libFuzzer.
//
// Exit status: 0 when every input replays without an oracle failure
// (oracle failures abort, so a violation can never exit 0); 2 on usage or
// I/O errors, so an empty or missing corpus fails loudly instead of
// green-washing the gate.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz_target.h"

namespace {

namespace fs = std::filesystem;

bool ReplayFile(const fs::path& path, size_t* replayed) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "replay: cannot read %s\n", path.c_str());
    return false;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  ++*replayed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <corpus-file-or-directory>...\n"
                 "Feeds every input to LLVMFuzzerTestOneInput; aborts on "
                 "the first oracle failure.\n",
                 argv[0]);
    return 2;
  }
  size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const fs::path arg(argv[i]);
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      std::vector<fs::path> files;
      for (const auto& entry : fs::directory_iterator(arg, ec)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      if (ec) {
        std::fprintf(stderr, "replay: cannot list %s: %s\n", arg.c_str(),
                     ec.message().c_str());
        return 2;
      }
      std::sort(files.begin(), files.end());
      for (const fs::path& f : files) {
        if (!ReplayFile(f, &replayed)) return 2;
      }
    } else if (fs::is_regular_file(arg, ec)) {
      if (!ReplayFile(arg, &replayed)) return 2;
    } else {
      std::fprintf(stderr, "replay: no such file or directory: %s\n",
                   arg.c_str());
      return 2;
    }
  }
  if (replayed == 0) {
    // An empty corpus means the regression gate tested nothing; that must
    // never pass silently (the fuzz-target lint rule also enforces
    // non-empty seed directories at the source level).
    std::fprintf(stderr, "replay: corpus is empty\n");
    return 2;
  }
  std::printf("replayed %zu input(s) clean\n", replayed);
  return 0;
}
