// Differential oracle: StreamingKs under an eviction-heavy push schedule
// against a from-scratch ks::Run recompute on a mirrored window.
//
// The incremental detector maintains integer scores s(x) = m*C_R - n*C_W
// in a treap; the batch path computes max |cum_r/n - cum_t/m| directly.
// Mathematically identical, computed differently — so the statistic is
// compared within the tree's tight tolerance (1e-12, as the unit suite
// does), the threshold bit-exactly (same formula, same operands), the
// window contents exactly, and the reject decisions may only differ when
// the batch statistic sits within tolerance of the threshold.

#include <cmath>
#include <cstring>
#include <deque>
#include <vector>

#include "fuzz_target.h"
#include "ks/ks_test.h"
#include "ks/streaming.h"
#include "provider.h"

namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

constexpr double kTightTol = 1e-12;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  moche::fuzz::Provider in(data, size);

  const size_t n = in.SizeInRange(1, 48);
  const size_t window = in.SizeInRange(1, 24);
  const double alpha = in.Alpha();
  const int alphabet = static_cast<int>(in.SizeInRange(1, 12));

  std::vector<double> reference;
  if (in.Bool()) {
    in.TiedArray(n, alphabet, &reference);
  } else {
    in.FiniteArray(n, &reference);
  }

  auto stream = moche::StreamingKs::Create(reference, window, alpha);
  MOCHE_FUZZ_CHECK(stream.ok(), "Create rejected a valid config: %s",
                   stream.status().message().c_str());

  std::deque<double> mirror;
  const size_t pushes = in.SizeInRange(0, 160);
  for (size_t step = 0; step < pushes; ++step) {
    // A non-finite push must fail atomically: state unchanged.
    if (in.Byte() % 16 == 0) {
      const auto before = stream->WindowContents();
      const double bad = in.Bool() ? std::nan("") : HUGE_VAL;
      MOCHE_FUZZ_CHECK(!stream->Push(bad).ok(),
                       "Push accepted a non-finite observation");
      MOCHE_FUZZ_CHECK(stream->WindowContents() == before,
                       "rejected push mutated the window");
    }

    // Values from the same alphabet as the reference so evictions hit the
    // equal-key treap paths constantly.
    const double v = in.Bool()
                         ? static_cast<double>(in.IntInRange(0, alphabet))
                         : in.FiniteValue();
    MOCHE_FUZZ_CHECK(stream->Push(v).ok(), "Push rejected a finite value");
    mirror.push_back(v);
    if (mirror.size() > window) mirror.pop_front();

    MOCHE_FUZZ_CHECK(stream->WindowFull() == (mirror.size() == window),
                     "WindowFull disagrees with the mirror at step %zu",
                     step);
    const std::vector<double> snapshot = stream->WindowContents();
    MOCHE_FUZZ_CHECK(
        snapshot == std::vector<double>(mirror.begin(), mirror.end()),
        "WindowContents diverged from arrival order at step %zu", step);

    if (!stream->WindowFull()) continue;

    auto incremental = stream->CurrentOutcome();
    MOCHE_FUZZ_CHECK(incremental.ok(), "CurrentOutcome failed: %s",
                     incremental.status().message().c_str());
    auto batch = moche::ks::Run(
        reference, std::vector<double>(mirror.begin(), mirror.end()), alpha);
    MOCHE_FUZZ_CHECK(batch.ok(), "batch recompute failed: %s",
                     batch.status().message().c_str());

    MOCHE_FUZZ_CHECK(
        std::fabs(incremental->statistic - batch->statistic) <= kTightTol,
        "step %zu: incremental D %.17g vs batch D %.17g", step,
        incremental->statistic, batch->statistic);
    MOCHE_FUZZ_CHECK(SameBits(incremental->threshold, batch->threshold),
                     "step %zu: thresholds differ: %.17g vs %.17g", step,
                     incremental->threshold, batch->threshold);
    if (incremental->reject != batch->reject) {
      // Only excusable exactly at the decision boundary, where the two
      // computations' last-ulp difference can fall on opposite sides.
      MOCHE_FUZZ_CHECK(
          std::fabs(batch->statistic - batch->threshold) <= 1e-9,
          "step %zu: reject disagreement away from the boundary "
          "(D=%.17g p=%.17g)",
          step, batch->statistic, batch->threshold);
    }
    MOCHE_FUZZ_CHECK(incremental->n == n && incremental->m == window,
                     "outcome sizes mismatch at step %zu", step);
    MOCHE_FUZZ_CHECK(stream->Drifted() == incremental->reject,
                     "Drifted() disagrees with CurrentOutcome at step %zu",
                     step);
  }

  // WindowContentsInto must agree with WindowContents through a recycled
  // buffer.
  std::vector<double> recycled(7, -1.0);
  stream->WindowContentsInto(&recycled);
  MOCHE_FUZZ_CHECK(recycled == stream->WindowContents(),
                   "WindowContentsInto diverged from WindowContents");
  return 0;
}
