// Differential oracle: every simd::Kernels entry, each available vector
// ISA against the scalar reference table, bit-exact via memcpy compare.
//
// The scalar table IS the spec (util/simd.h): a vector kernel may only
// exist if it produces the same doubles, indices, and booleans on every
// finite input. This target derives adversarial operand arrays (denormals,
// ±0.0, huge magnitudes, tie-heavy integers) plus arbitrary begin/end
// offsets and running-max seeds, and fails on the first lane divergence.
// all_finite additionally takes raw bit patterns (NaN/Inf lacing) since
// rejecting those is its whole job.

#include <cstdint>
#include <cstring>
#include <vector>

#include "fuzz_target.h"
#include "provider.h"
#include "util/simd.h"

namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using moche::simd::Isa;
  using moche::simd::Kernels;

  moche::fuzz::Provider in(data, size);
  const Kernels& scalar = moche::simd::KernelsFor(Isa::kScalar);

  const size_t len = in.SizeInRange(1, 96);
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> c;
  in.FiniteArray(len, &a);
  in.FiniteArray(len, &b);
  in.FiniteArray(len, &c);

  const size_t begin = in.SizeInRange(0, len);
  const size_t end = in.SizeInRange(begin, len);
  const double scale = in.FiniteValue();
  const double omega = in.FiniteValue();
  const double hh_d = in.FiniteValue();
  const double seed_max = in.FiniteValue();

  // Cumulative-count style operands for the sweeps.
  std::vector<int64_t> count_t(len);
  std::vector<int64_t> removed(len);
  std::vector<double> cum_r_d(len);
  std::vector<double> cum_t_d(len);
  {
    int64_t acc_r = 0;
    int64_t acc_t = 0;
    for (size_t i = 0; i < len; ++i) {
      count_t[i] = in.IntInRange(0, 20);
      removed[i] = in.IntInRange(0, count_t[i]);
      acc_r += in.IntInRange(0, 20);
      acc_t += count_t[i];
      cum_r_d[i] = static_cast<double>(acc_r);
      cum_t_d[i] = static_cast<double>(acc_t);
    }
  }
  const double n = static_cast<double>(in.SizeInRange(1, 1000));
  const double m = static_cast<double>(in.SizeInRange(1, 1000));

  // Raw (possibly NaN/Inf) buffer for all_finite, poisoned or clean.
  std::vector<double> raw(len);
  for (size_t i = 0; i < len; ++i) {
    raw[i] = in.Bool() ? in.RawDouble() : in.FiniteValue();
  }

  const Isa isas[] = {Isa::kAvx2, Isa::kNeon};
  for (Isa isa : isas) {
    if (!moche::simd::IsaAvailable(isa)) continue;
    const Kernels& vec = moche::simd::KernelsFor(isa);
    const char* name = moche::simd::IsaName(isa);

    {
      double max_s = seed_max;
      double max_v = seed_max;
      const size_t stop_s = scalar.theorem1_filter_scan(
          a.data(), b.data(), c.data(), begin, end, scale, omega, hh_d,
          &max_s);
      const size_t stop_v = vec.theorem1_filter_scan(
          a.data(), b.data(), c.data(), begin, end, scale, omega, hh_d,
          &max_v);
      MOCHE_FUZZ_CHECK(stop_s == stop_v,
                       "[%s] theorem1 stop %zu != scalar %zu", name, stop_v,
                       stop_s);
      MOCHE_FUZZ_CHECK(SameBits(max_s, max_v),
                       "[%s] theorem1 running max %.17g != scalar %.17g",
                       name, max_v, max_s);
    }
    {
      double max_s = seed_max;
      double max_v = seed_max;
      const size_t stop_s = scalar.theorem2_filter_scan(
          a.data(), b.data(), begin, end, scale, omega, hh_d, &max_s);
      const size_t stop_v = vec.theorem2_filter_scan(
          a.data(), b.data(), begin, end, scale, omega, hh_d, &max_v);
      MOCHE_FUZZ_CHECK(stop_s == stop_v,
                       "[%s] theorem2 stop %zu != scalar %zu", name, stop_v,
                       stop_s);
      MOCHE_FUZZ_CHECK(SameBits(max_s, max_v),
                       "[%s] theorem2 running max %.17g != scalar %.17g",
                       name, max_v, max_s);
    }
    {
      size_t best_s = SIZE_MAX;
      size_t best_v = SIZE_MAX;
      const double d_s =
          scalar.ecdf_sweep_cum(cum_r_d.data(), cum_t_d.data(), len, n, m,
                                &best_s);
      const double d_v =
          vec.ecdf_sweep_cum(cum_r_d.data(), cum_t_d.data(), len, n, m,
                             &best_v);
      MOCHE_FUZZ_CHECK(SameBits(d_s, d_v),
                       "[%s] ecdf_sweep_cum %.17g != scalar %.17g", name,
                       d_v, d_s);
      MOCHE_FUZZ_CHECK(best_s == best_v,
                       "[%s] ecdf_sweep_cum best index %zu != scalar %zu",
                       name, best_v, best_s);
    }
    {
      size_t best_s = SIZE_MAX;
      size_t best_v = SIZE_MAX;
      const double d_s = scalar.ecdf_sweep_counts(
          cum_r_d.data(), count_t.data(), removed.data(), len, n, m,
          &best_s);
      const double d_v = vec.ecdf_sweep_counts(
          cum_r_d.data(), count_t.data(), removed.data(), len, n, m,
          &best_v);
      MOCHE_FUZZ_CHECK(SameBits(d_s, d_v),
                       "[%s] ecdf_sweep_counts %.17g != scalar %.17g", name,
                       d_v, d_s);
      MOCHE_FUZZ_CHECK(best_s == best_v,
                       "[%s] ecdf_sweep_counts best index %zu != scalar %zu",
                       name, best_v, best_s);
    }
    {
      const bool f_s = scalar.all_finite(raw.data(), len);
      const bool f_v = vec.all_finite(raw.data(), len);
      MOCHE_FUZZ_CHECK(f_s == f_v, "[%s] all_finite %d != scalar %d", name,
                       f_v, f_s);
      // Sub-range sweep: offsets exercise the vector ramp-up/tail paths.
      const bool g_s = scalar.all_finite(raw.data() + begin, end - begin);
      const bool g_v = vec.all_finite(raw.data() + begin, end - begin);
      MOCHE_FUZZ_CHECK(g_s == g_v, "[%s] all_finite subrange %d != %d", name,
                       g_v, g_s);
    }
  }

  // The scalar table must agree with a hand-rolled finiteness loop — the
  // one kernel whose spec is simple enough to state twice.
  bool expect_finite = true;
  for (size_t i = 0; i < len; ++i) {
    const double v = raw[i];
    if (!(v - v == 0.0)) expect_finite = false;  // NaN/Inf both fail this
  }
  MOCHE_FUZZ_CHECK(scalar.all_finite(raw.data(), len) == expect_finite,
                   "scalar all_finite disagrees with the naive loop");
  return 0;
}
