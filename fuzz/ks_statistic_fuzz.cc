// Differential oracle: ks::Statistic / StatisticSorted /
// StatisticSortedScratch against a naive double-loop ECDF reference.
//
// The reference recomputes D(R,T) the textbook way — for every grid value
// x, count r <= x and t <= x with two linear scans and take
// max |cnt_r/n - cnt_t/m| with the first-strict-max location tie-break.
// The divisions are the same IEEE operations in the same order the library
// sweep performs, and a max over the same multiset of finite doubles is
// order-insensitive, so agreement is required BIT-EXACTLY (memcmp), not
// within a tolerance. Any last-ulp divergence here would break the SIMD
// bit-identity contract one layer up.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "fuzz_target.h"
#include "ks/ks_test.h"
#include "provider.h"

namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Textbook D(R,T) over the sorted union grid; mirrors the documented
// degenerate conventions (D = 1 with one empty sample, D = 0, location 0.0
// with two).
double NaiveStatistic(const std::vector<double>& r,
                      const std::vector<double>& t, double* location) {
  *location = 0.0;
  if (r.empty() && t.empty()) return 0.0;
  if (r.empty() || t.empty()) {
    const std::vector<double>& s = r.empty() ? t : r;
    *location = *std::min_element(s.begin(), s.end());
    return 1.0;
  }
  std::vector<double> grid;
  grid.reserve(r.size() + t.size());
  grid.insert(grid.end(), r.begin(), r.end());
  grid.insert(grid.end(), t.begin(), t.end());
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());

  const double n = static_cast<double>(r.size());
  const double m = static_cast<double>(t.size());
  double best = 0.0;
  // The library's D == 0 sentinel is the smallest reference value.
  *location = *std::min_element(r.begin(), r.end());
  for (double x : grid) {
    double cnt_r = 0.0;
    double cnt_t = 0.0;
    for (double v : r) cnt_r += (v <= x) ? 1.0 : 0.0;
    for (double v : t) cnt_t += (v <= x) ? 1.0 : 0.0;
    const double d = std::fabs(cnt_r / n - cnt_t / m);
    if (d > best) {
      best = d;
      *location = x;
    }
  }
  return best;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  moche::fuzz::Provider in(data, size);

  // Empty samples are legal for the Statistic* primitives (degenerate
  // conventions), so sizes start at 0 — but mostly non-empty.
  const size_t n = in.SizeInRange(0, 48);
  const size_t m = in.SizeInRange(0, 48);
  std::vector<double> r;
  std::vector<double> t;
  if (in.Bool()) {
    // Tie-heavy shared alphabet: duplicate values across and within samples.
    const int alphabet = static_cast<int>(in.SizeInRange(1, 10));
    in.TiedArray(n, alphabet, &r);
    in.TiedArray(m, alphabet, &t);
  } else {
    in.FiniteArray(n, &r);
    in.FiniteArray(m, &t);
  }

  double naive_loc = 0.0;
  const double naive = NaiveStatistic(r, t, &naive_loc);

  double lib_loc = 0.0;
  const double lib = moche::ks::Statistic(r, t, &lib_loc);
  MOCHE_FUZZ_CHECK(SameBits(lib, naive),
                   "Statistic %.17g != naive %.17g (n=%zu m=%zu)", lib, naive,
                   n, m);
  // Locations compare by value, not bits: a ±0.0 tie collapses to one grid
  // point whose sign depends on which sample supplied it first.
  MOCHE_FUZZ_CHECK(lib_loc == naive_loc,
                   "Statistic location %.17g != naive %.17g", lib_loc,
                   naive_loc);

  // The sorted and scratch variants must agree bit-exactly with Statistic.
  std::vector<double> r_sorted = r;
  std::vector<double> t_sorted = t;
  std::sort(r_sorted.begin(), r_sorted.end());
  std::sort(t_sorted.begin(), t_sorted.end());
  double sorted_loc = 0.0;
  const double sorted =
      moche::ks::StatisticSorted(r_sorted, t_sorted, &sorted_loc);
  MOCHE_FUZZ_CHECK(SameBits(sorted, naive),
                   "StatisticSorted %.17g != naive %.17g", sorted, naive);
  MOCHE_FUZZ_CHECK(sorted_loc == naive_loc,
                   "StatisticSorted location %.17g != naive %.17g",
                   sorted_loc, naive_loc);

  // Run the scratch variant twice through one warm scratch: the second call
  // checks buffer recycling does not leak state between instances.
  moche::ks::KsSweepScratch scratch;
  for (int pass = 0; pass < 2; ++pass) {
    double scratch_loc = 0.0;
    const double via_scratch = moche::ks::StatisticSortedScratch(
        r_sorted, t_sorted, &scratch, &scratch_loc);
    MOCHE_FUZZ_CHECK(SameBits(via_scratch, naive),
                     "StatisticSortedScratch pass %d %.17g != naive %.17g",
                     pass, via_scratch, naive);
    MOCHE_FUZZ_CHECK(scratch_loc == naive_loc,
                     "StatisticSortedScratch pass %d location mismatch",
                     pass);
  }

  // The full three-step test: reject must be exactly D > threshold.
  if (!r.empty() && !t.empty()) {
    const double alpha = in.Alpha();
    auto run = moche::ks::Run(r, t, alpha);
    MOCHE_FUZZ_CHECK(run.ok(), "ks::Run rejected a valid instance: %s",
                     run.status().message().c_str());
    MOCHE_FUZZ_CHECK(SameBits(run->statistic, naive),
                     "Run statistic %.17g != naive %.17g", run->statistic,
                     naive);
    MOCHE_FUZZ_CHECK(run->reject == (run->statistic > run->threshold),
                     "reject flag disagrees with D > p (D=%.17g p=%.17g)",
                     run->statistic, run->threshold);
    MOCHE_FUZZ_CHECK(run->n == r.size() && run->m == t.size(),
                     "outcome sizes n=%zu m=%zu mismatch", run->n, run->m);
  }
  return 0;
}
