// Differential oracle: the certified KLL sketch (sketch::KllSketch) and
// the triage bracket (sketch::SketchedReference) against exact recomputes
// on a mirrored sorted vector.
//
// The sketch's whole contract is one integer inequality —
// |EstimateRank(x) - TrueRank(x)| <= rank_error_bound() for every x —
// and everything above it (the KS bracket, the certified verdicts) is
// derived arithmetic. So the oracle checks the bound at adversarial probe
// points (retained values, midpoints, beyond both extremes), re-derives
// the bracket against ks::Run, and requires certified verdicts to agree
// with the exact decision unconditionally: a certified disagreement is a
// hard bug, never tolerance noise. Structure bytes are also fuzzed
// directly: DeserializeFrom on arbitrary bytes must reject with a Status
// or yield a sketch that re-serializes to a byte fixed point — never
// crash, never fabricate retained weight.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "fuzz_target.h"
#include "ks/ks_test.h"
#include "provider.h"
#include "sketch/kll_sketch.h"
#include "sketch/sketched_reference.h"
#include "util/binary_io.h"

namespace {

using moche::sketch::KllOptions;
using moche::sketch::KllSketch;
using moche::sketch::SketchedReference;
using moche::sketch::SketchTriage;
using moche::sketch::TriageVerdict;

// Exact rank: weight of sample values <= x, from the sorted mirror.
uint64_t TrueRank(const std::vector<double>& sorted, double x) {
  return static_cast<uint64_t>(
      std::upper_bound(sorted.begin(), sorted.end(), x) - sorted.begin());
}

void CheckCertifiedBound(const KllSketch& sketch,
                         const std::vector<double>& sorted,
                         const char* what) {
  const uint64_t bound = sketch.rank_error_bound();
  auto probe = [&](double x) {
    const uint64_t estimate = sketch.EstimateRank(x);
    const uint64_t truth = TrueRank(sorted, x);
    const uint64_t gap = estimate > truth ? estimate - truth
                                          : truth - estimate;
    MOCHE_FUZZ_CHECK(gap <= bound,
                     "%s: rank of %.17g off by %llu, certified bound %llu",
                     what, x, static_cast<unsigned long long>(gap),
                     static_cast<unsigned long long>(bound));
  };
  for (size_t i = 0; i < sorted.size(); ++i) {
    probe(sorted[i]);
    if (i + 1 < sorted.size() && sorted[i] < sorted[i + 1]) {
      probe(sorted[i] + (sorted[i + 1] - sorted[i]) / 2);
    }
  }
  if (!sorted.empty()) {
    probe(sorted.front() - 1.0);
    probe(sorted.back() + 1.0);
  }
  probe(0.0);
}

KllSketch MustCreate(const KllOptions& options) {
  auto sketch = KllSketch::Create(options);
  MOCHE_FUZZ_CHECK(sketch.ok(), "Create rejected a valid config: %s",
                   sketch.status().message().c_str());
  return std::move(*sketch);
}

// Arbitrary bytes through the deserializer: reject with a Status, or
// produce a sketch whose re-serialization is a byte fixed point.
void HostileBytesOracle(moche::fuzz::Provider* in) {
  const std::string bytes = in->RemainingString();
  moche::bin::Reader reader(bytes);
  auto sketch = KllSketch::DeserializeFrom(&reader);
  if (!sketch.ok()) return;
  std::string first;
  sketch->SerializeTo(&first);
  moche::bin::Reader again_reader(first);
  auto again = KllSketch::DeserializeFrom(&again_reader);
  MOCHE_FUZZ_CHECK(again.ok(),
                   "accepted bytes did not re-deserialize: %s",
                   again.status().message().c_str());
  std::string second;
  again->SerializeTo(&second);
  MOCHE_FUZZ_CHECK(first == second,
                   "serialize -> deserialize -> serialize is not a fixed "
                   "point on accepted hostile bytes");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  moche::fuzz::Provider in(data, size);

  if (in.Byte() % 8 == 0) {
    HostileBytesOracle(&in);
    return 0;
  }

  KllOptions options;
  options.capacity = in.SizeInRange(KllSketch::kMinCapacity, 64);
  options.seed = in.U64();
  const int alphabet = static_cast<int>(in.SizeInRange(1, 12));
  const size_t n = in.SizeInRange(0, 300);

  std::vector<double> sample;
  if (in.Bool()) {
    in.TiedArray(n, alphabet, &sample);
  } else {
    in.FiniteArray(n, &sample);
  }

  KllSketch sketch = MustCreate(options);
  for (double v : sample) sketch.Update(v);
  MOCHE_FUZZ_CHECK(sketch.count() == n, "count %llu after %zu updates",
                   static_cast<unsigned long long>(sketch.count()), n);

  std::vector<double> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  CheckCertifiedBound(sketch, sorted, "single sketch");

  // Merge: two sketches over a split of the sample certify the union, and
  // the merged error bound is the sum of the parts'.
  const size_t cut = in.SizeInRange(0, n);
  KllSketch left = MustCreate(options);
  KllOptions right_options = options;
  right_options.seed = in.U64();
  KllSketch right = MustCreate(right_options);
  for (size_t i = 0; i < n; ++i) {
    (i < cut ? left : right).Update(sample[i]);
  }
  const uint64_t bound_sum =
      left.rank_error_bound() + right.rank_error_bound();
  auto merge = left.Merge(right);
  MOCHE_FUZZ_CHECK(merge.ok(), "Merge failed: %s",
                   merge.message().c_str());
  MOCHE_FUZZ_CHECK(left.count() == n, "merged count %llu != %zu",
                   static_cast<unsigned long long>(left.count()), n);
  MOCHE_FUZZ_CHECK(left.rank_error_bound() >= bound_sum,
                   "merge shrank the certified bound");
  CheckCertifiedBound(left, sorted, "merged sketch");

  // Serialize -> deserialize -> serialize is a byte fixed point, and the
  // restored sketch answers rank queries bit-identically.
  std::string bytes;
  sketch.SerializeTo(&bytes);
  moche::bin::Reader reader(bytes);
  auto restored = KllSketch::DeserializeFrom(&reader);
  MOCHE_FUZZ_CHECK(restored.ok(), "round trip rejected its own bytes: %s",
                   restored.status().message().c_str());
  MOCHE_FUZZ_CHECK(reader.AtEnd(), "round trip left trailing bytes");
  std::string again;
  restored->SerializeTo(&again);
  MOCHE_FUZZ_CHECK(bytes == again, "serialization is not a fixed point");
  for (double x : sorted) {
    MOCHE_FUZZ_CHECK(restored->EstimateRank(x) == sketch.EstimateRank(x),
                     "restored sketch ranks %.17g differently", x);
  }

  // The triage bracket against exact KS. Certified verdicts must agree
  // with the exact decision; the bracket must contain the exact statistic.
  if (n == 0 || in.empty()) return 0;
  const double alpha = in.Alpha();
  auto sketched = SketchedReference::FromSample(sample, alpha, options);
  MOCHE_FUZZ_CHECK(sketched.ok(), "FromSample rejected a valid sample: %s",
                   sketched.status().message().c_str());
  const size_t m = in.SizeInRange(1, 24);
  std::vector<double> window;
  if (in.Bool()) {
    in.TiedArray(m, alphabet, &window);
  } else {
    in.FiniteArray(m, &window);
  }
  std::vector<double> window_sorted = window;
  std::sort(window_sorted.begin(), window_sorted.end());

  const double statistic = sketched->StatisticAgainstSorted(window_sorted);
  const SketchTriage triage = sketched->Classify(statistic, m);
  auto exact = moche::ks::Run(sample, window, alpha);
  MOCHE_FUZZ_CHECK(exact.ok(), "exact ks::Run failed: %s",
                   exact.status().message().c_str());
  MOCHE_FUZZ_CHECK(
      triage.lower <= exact->statistic + 1e-12 &&
          triage.upper >= exact->statistic - 1e-12,
      "bracket [%.17g, %.17g] misses the exact statistic %.17g",
      triage.lower, triage.upper, exact->statistic);
  if (triage.verdict == TriageVerdict::kCertainPass) {
    MOCHE_FUZZ_CHECK(!exact->reject,
                     "certified pass but exact KS rejects (D=%.17g p=%.17g)",
                     exact->statistic, exact->threshold);
  } else if (triage.verdict == TriageVerdict::kCertainFail) {
    MOCHE_FUZZ_CHECK(exact->reject,
                     "certified fail but exact KS passes (D=%.17g p=%.17g)",
                     exact->statistic, exact->threshold);
  }
  return 0;
}
