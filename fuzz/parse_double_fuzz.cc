// Differential oracle: the locale-independent number formatters/parsers in
// util/string_util.h.
//
// The load-bearing contract is the G17 round trip: FormatG17 must emit a
// string ParseDouble reads back to the SAME BITS for every double,
// including ±0.0, denormals, ±Inf and NaN payload-insensitively (17
// significant digits are exactly enough for binary64). The identity corpus
// and every BENCH/CSV artifact are diffed byte-for-byte across machines on
// the strength of this. Also checked: FormatFixed output stays parseable
// (and re-parses within half an ulp of the requested precision),
// ParseInt64/FormatG17 agree on the integers both sides represent exactly,
// and both parsers reject trailing garbage rather than truncating.

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>

#include "fuzz_target.h"
#include "provider.h"
#include "util/string_util.h"

namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  moche::fuzz::Provider in(data, size);

  // Raw bit patterns: every double, not just the friendly ones.
  const size_t rounds = in.SizeInRange(1, 12);
  for (size_t i = 0; i < rounds; ++i) {
    const double v = in.Bool() ? in.RawDouble() : in.FiniteValue();
    const std::string g17 = moche::FormatG17(v);
    MOCHE_FUZZ_CHECK(!g17.empty(), "FormatG17 produced an empty string");

    double back = 0.0;
    const bool parsed = moche::ParseDouble(g17, &back);
    if (std::isnan(v)) {
      // NaN's textual form need not round-trip the payload; it must either
      // parse back to SOME NaN or be visibly non-numeric — never a finite
      // number.
      MOCHE_FUZZ_CHECK(!parsed || std::isnan(back),
                       "NaN formatted as '%s' parsed back to %.17g",
                       g17.c_str(), back);
      continue;
    }
    MOCHE_FUZZ_CHECK(parsed, "ParseDouble rejected FormatG17 output '%s'",
                     g17.c_str());
    MOCHE_FUZZ_CHECK(SameBits(back, v),
                     "G17 round trip lost bits: %.17g -> '%s' -> %.17g", v,
                     g17.c_str(), back);

    // AppendG17 must be exactly FormatG17 appended.
    std::string appended = "x";
    moche::AppendG17(v, &appended);
    MOCHE_FUZZ_CHECK(appended == "x" + g17,
                     "AppendG17 diverges from FormatG17 for '%s'",
                     g17.c_str());

    // ParseDouble must reject trailing garbage, not truncate.
    double ignored = 0.0;
    MOCHE_FUZZ_CHECK(!moche::ParseDouble(g17 + "x", &ignored),
                     "ParseDouble accepted trailing garbage after '%s'",
                     g17.c_str());

    if (std::isfinite(v)) {
      const int precision = static_cast<int>(in.SizeInRange(0, 17));
      const std::string fixed = moche::FormatFixed(v, precision);
      double fixed_back = 0.0;
      MOCHE_FUZZ_CHECK(moche::ParseDouble(fixed, &fixed_back),
                       "ParseDouble rejected FormatFixed output '%s'",
                       fixed.c_str());
      // %.Nf quantizes: the reparse must sit within one half-step of the
      // last printed digit (plus one representation ulp for huge values).
      const double step = std::pow(10.0, -precision);
      const double slack =
          0.5 * step + std::fabs(v) * 1e-15 + 1e-300;
      MOCHE_FUZZ_CHECK(std::fabs(fixed_back - v) <= slack,
                       "FormatFixed(%d) moved %.17g to '%s' (reparsed "
                       "%.17g)",
                       precision, v, fixed.c_str(), fixed_back);
    }
  }

  // Integer round trip: ParseInt64 on its own decimal rendering, and
  // agreement with the double path for exactly representable magnitudes.
  const int64_t raw = static_cast<int64_t>(in.U64());
  const std::string dec = moche::StrFormat("%" PRId64, raw);
  long long int_back = 0;
  MOCHE_FUZZ_CHECK(moche::ParseInt64(dec, &int_back) && int_back == raw,
                   "ParseInt64 round trip failed on '%s'", dec.c_str());
  MOCHE_FUZZ_CHECK(!moche::ParseInt64(dec + "7x", &int_back),
                   "ParseInt64 accepted trailing garbage");
  MOCHE_FUZZ_CHECK(!moche::ParseInt64("", &int_back),
                   "ParseInt64 accepted empty input");

  const int64_t small = in.IntInRange(-(int64_t{1} << 53), int64_t{1} << 53);
  double as_double = 0.0;
  MOCHE_FUZZ_CHECK(
      moche::ParseDouble(moche::StrFormat("%lld",
                                          static_cast<long long>(small)),
                         &as_double) &&
          as_double == static_cast<double>(small),
      "double/integer parsers disagree on %lld",
      static_cast<long long>(small));
  return 0;
}
