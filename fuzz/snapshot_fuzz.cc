// Differential oracle for the persistence subsystem (src/persist).
//
// Mode A (first byte even): a byte-derived DriftMonitor fleet — tied
// reference alphabets, regime-shifting observation sequences, accumulated
// events — is serialized, deserialized, and serialized again. The oracle
// demands the byte fixed point (both serializations identical, manifest
// and every shard), an event log the restored monitor reproduces exactly
// (SameEventLogs), matching stream metadata, and — after feeding both
// monitors one more identical batch — identical continuations: a restore
// must be indistinguishable from never having stopped.
//
// Mode B (first byte odd): the remaining bytes are treated as hostile
// checkpoint blobs (arbitrary manifest + shards, plus a bit-flipped
// mutation of a real checkpoint). Deserialize must return a Status —
// never crash, never UB — and a successful parse must itself round-trip.
// Under the CI fuzz-smoke sanitizers (address,undefined) this is the
// "corrupted inputs always fail cleanly" acceptance gate.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fuzz_target.h"
#include "persist/monitor_codec.h"
#include "provider.h"
#include "stream/drift_monitor.h"

namespace {

using moche::persist::CheckpointBlobs;
using moche::persist::CheckpointOptions;
using moche::persist::MonitorCodec;
using moche::persist::RestoreOptions;
using moche::stream::DriftMonitor;
using moche::stream::MonitorOptions;
using moche::stream::RearmPolicy;

bool SameBlobs(const CheckpointBlobs& a, const CheckpointBlobs& b) {
  return a.manifest == b.manifest && a.shards == b.shards;
}

// A small fleet with real drift events, driven entirely by the provider.
DriftMonitor BuildMonitor(moche::fuzz::Provider* in) {
  MonitorOptions options;
  options.alpha = in->Alpha();
  options.rearm = in->Bool() ? RearmPolicy::kOncePerExcursion
                             : RearmPolicy::kEveryKPushes;
  options.explain_every_k =
      options.rearm == RearmPolicy::kEveryKPushes ? in->SizeInRange(1, 5) : 0;
  options.preference = in->Bool()
                           ? moche::stream::WindowPreference::kOldestFirst
                           : moche::stream::WindowPreference::kNewestFirst;
  auto monitor = DriftMonitor::Create(options);
  MOCHE_FUZZ_CHECK(monitor.ok(), "Create rejected valid options: %s",
                   monitor.status().message().c_str());

  const size_t streams = in->SizeInRange(1, 3);
  const int alphabet = static_cast<int>(in->SizeInRange(2, 8));
  const size_t shared_refs = in->SizeInRange(1, streams);
  std::vector<std::vector<double>> references(shared_refs);
  for (std::vector<double>& reference : references) {
    in->TiedArray(in->SizeInRange(4, 24), alphabet, &reference);
  }
  for (size_t s = 0; s < streams; ++s) {
    // Some streams share a reference: the shard codec must intern them
    // back to one PreparedReference on restore.
    const std::vector<double>& reference =
        references[in->SizeInRange(0, shared_refs - 1)];
    auto index = monitor->AddStream("s" + std::to_string(s), reference,
                                    in->SizeInRange(2, 10));
    MOCHE_FUZZ_CHECK(index.ok(), "AddStream failed: %s",
                     index.status().message().c_str());
  }

  const size_t ticks = in->SizeInRange(0, 40);
  std::vector<std::vector<double>> batch(streams);
  bool drifted_regime = false;
  for (size_t t0 = 0; t0 < ticks;) {
    const size_t chunk = std::min(in->SizeInRange(1, 8), ticks - t0);
    for (size_t s = 0; s < streams; ++s) {
      batch[s].clear();
      for (size_t t = 0; t < chunk; ++t) {
        if (in->Byte() % 8 == 0) drifted_regime = !drifted_regime;
        double v = static_cast<double>(in->IntInRange(0, alphabet));
        if (drifted_regime) v += static_cast<double>(alphabet) + 1.0;
        batch[s].push_back(v);
      }
    }
    MOCHE_FUZZ_CHECK(monitor->PushBatch(batch).ok(), "PushBatch failed");
    t0 += chunk;
  }
  return std::move(*monitor);
}

void RoundTripOracle(moche::fuzz::Provider* in) {
  DriftMonitor monitor = BuildMonitor(in);
  CheckpointOptions options;
  options.num_shards = static_cast<uint32_t>(in->SizeInRange(1, 5));

  auto blobs = MonitorCodec::Serialize(monitor, options);
  MOCHE_FUZZ_CHECK(blobs.ok(), "Serialize failed: %s",
                   blobs.status().message().c_str());
  MOCHE_FUZZ_CHECK(blobs->shards.size() == options.num_shards,
                   "Serialize produced %zu shards for %u",
                   blobs->shards.size(), options.num_shards);

  auto restored = MonitorCodec::Deserialize(*blobs, RestoreOptions{});
  MOCHE_FUZZ_CHECK(restored.ok(), "Deserialize rejected its own bytes: %s",
                   restored.status().message().c_str());

  // The byte fixed point: serialize(deserialize(bytes)) == bytes.
  auto again = MonitorCodec::Serialize(*restored, options);
  MOCHE_FUZZ_CHECK(again.ok(), "re-Serialize failed: %s",
                   again.status().message().c_str());
  MOCHE_FUZZ_CHECK(SameBlobs(*blobs, *again),
                   "serialize -> deserialize -> serialize is not a byte "
                   "fixed point");

  // Observable state survives: events, stream metadata, cache stats.
  MOCHE_FUZZ_CHECK(
      moche::stream::SameEventLogs(monitor.events(), restored->events()),
      "restored event log differs (%zu vs %zu events)",
      monitor.events().size(), restored->events().size());
  MOCHE_FUZZ_CHECK(restored->num_streams() == monitor.num_streams(),
                   "stream count changed across restore");
  for (size_t s = 0; s < monitor.num_streams(); ++s) {
    MOCHE_FUZZ_CHECK(restored->stream_name(s) == monitor.stream_name(s) &&
                         restored->stream_ticks(s) == monitor.stream_ticks(s) &&
                         restored->stream_in_excursion(s) ==
                             monitor.stream_in_excursion(s),
                     "stream %zu metadata changed across restore", s);
  }
  MOCHE_FUZZ_CHECK(
      restored->cache_stats().entries == monitor.cache_stats().entries,
      "restore interned %zu references, original had %zu",
      restored->cache_stats().entries, monitor.cache_stats().entries);

  // Continuation: one more identical batch must produce identical logs —
  // the restored monitor is indistinguishable from one that never stopped.
  const size_t chunk = in->SizeInRange(1, 8);
  std::vector<std::vector<double>> batch(monitor.num_streams());
  for (size_t s = 0; s < monitor.num_streams(); ++s) {
    for (size_t t = 0; t < chunk; ++t) {
      batch[s].push_back(static_cast<double>(in->IntInRange(0, 12)));
    }
  }
  MOCHE_FUZZ_CHECK(monitor.PushBatch(batch).ok(), "original continue failed");
  MOCHE_FUZZ_CHECK(restored->PushBatch(batch).ok(),
                   "restored continue failed");
  MOCHE_FUZZ_CHECK(
      moche::stream::SameEventLogs(monitor.events(), restored->events()),
      "continuation diverged after restore");
}

void HostileBytesOracle(moche::fuzz::Provider* in) {
  // A bit-flipped real checkpoint: must fail with a Status (or, if the
  // flip landed nowhere load-bearing, restore something that round-trips).
  DriftMonitor monitor = BuildMonitor(in);
  CheckpointOptions options;
  options.num_shards = static_cast<uint32_t>(in->SizeInRange(1, 3));
  auto blobs = MonitorCodec::Serialize(monitor, options);
  MOCHE_FUZZ_CHECK(blobs.ok(), "Serialize failed: %s",
                   blobs.status().message().c_str());
  CheckpointBlobs mutated = *blobs;
  std::string& victim =
      in->Bool() ? mutated.manifest
                 : mutated.shards[in->SizeInRange(0, mutated.shards.size() - 1)];
  if (!victim.empty()) {
    const size_t pos = in->SizeInRange(0, victim.size() - 1);
    victim[pos] = static_cast<char>(victim[pos] ^
                                    static_cast<char>(1u << (in->Byte() % 8)));
    auto restored = MonitorCodec::Deserialize(mutated, RestoreOptions{});
    if (restored.ok()) {
      auto again = MonitorCodec::Serialize(*restored, options);
      MOCHE_FUZZ_CHECK(again.ok() && SameBlobs(mutated, *again),
                       "a parse that accepted mutated bytes must round-trip");
    }
  }

  // Arbitrary bytes as manifest + shards: Status, never UB.
  CheckpointBlobs hostile;
  hostile.manifest = in->String(64);
  const size_t shards = in->SizeInRange(0, 3);
  for (size_t s = 0; s < shards; ++s) {
    hostile.shards.push_back(in->String(64));
  }
  auto restored = MonitorCodec::Deserialize(hostile, RestoreOptions{});
  (void)restored;  // any Status is acceptable; crashing is not
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  moche::fuzz::Provider in(data, size);
  if (in.Byte() % 2 == 0) {
    RoundTripOracle(&in);
  } else {
    HostileBytesOracle(&in);
  }
  return 0;
}
