// Meta-test for the fuzz subsystem's wiring: every fuzz target discovered
// in fuzz/ must be registered for the corpus-replay regression gate and
// must have a non-empty seed corpus.
//
// The dual-build scheme (fuzz/CMakeLists.txt) only builds and replays
// targets that are explicitly registered with moche_add_fuzz_target; a
// forgotten registration or an empty corpus would silently drop a target
// from the default-matrix regression gate. moche-lint's fuzz-target rule
// enforces the same invariants at the source level — this test enforces
// them from inside ctest, so a build without Python still fails loudly.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace {

namespace fs = std::filesystem;

// Injected by tests/CMakeLists.txt; the repository source root.
const fs::path kFuzzDir = fs::path(MOCHE_SOURCE_DIR) / "fuzz";

std::vector<std::string> DiscoverTargets() {
  std::vector<std::string> stems;
  for (const auto& entry : fs::directory_iterator(kFuzzDir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    constexpr const char kSuffix[] = "_fuzz.cc";
    constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
    if (name.size() > kSuffixLen &&
        name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) == 0) {
      stems.push_back(name.substr(0, name.size() - 3));  // drop ".cc"
    }
  }
  std::sort(stems.begin(), stems.end());
  return stems;
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(ReplayWiringTest, FuzzDirectoryExists) {
  ASSERT_TRUE(fs::is_directory(kFuzzDir)) << kFuzzDir;
  EXPECT_TRUE(fs::is_regular_file(kFuzzDir / "replay_main.cc"));
  EXPECT_TRUE(fs::is_regular_file(kFuzzDir / "provider.h"));
  EXPECT_TRUE(fs::is_regular_file(kFuzzDir / "fuzz_target.h"));
}

TEST(ReplayWiringTest, AllNineTargetsPresent) {
  const std::vector<std::string> stems = DiscoverTargets();
  // The PR-8 inventory plus PR-9's snapshot codec target; growing it is
  // fine, shrinking it is not.
  for (const char* required :
       {"ks_statistic_fuzz", "streaming_ks_fuzz", "simd_parity_fuzz",
        "bounds_engine_fuzz", "explain_pipeline_fuzz", "drift_monitor_fuzz",
        "bench_json_fuzz", "parse_double_fuzz", "snapshot_fuzz"}) {
    EXPECT_TRUE(std::find(stems.begin(), stems.end(), required) !=
                stems.end())
        << "missing fuzz target " << required;
  }
}

TEST(ReplayWiringTest, EveryTargetIsRegisteredForReplay) {
  const std::string cmake = ReadFile(kFuzzDir / "CMakeLists.txt");
  for (const std::string& stem : DiscoverTargets()) {
    EXPECT_NE(cmake.find("moche_add_fuzz_target(" + stem), std::string::npos)
        << stem << " is not registered in fuzz/CMakeLists.txt — it will "
        << "neither build nor run as a corpus-replay regression test";
  }
}

TEST(ReplayWiringTest, EveryTargetHasANonEmptySeedCorpus) {
  for (const std::string& stem : DiscoverTargets()) {
    const fs::path corpus = kFuzzDir / "corpus" / stem;
    ASSERT_TRUE(fs::is_directory(corpus))
        << stem << " has no seed corpus directory";
    size_t seeds = 0;
    for (const auto& entry : fs::directory_iterator(corpus)) {
      if (entry.is_regular_file()) ++seeds;
    }
    EXPECT_GT(seeds, 0u) << stem << " has an empty seed corpus — its "
                         << "replay gate would test nothing";
  }
}

TEST(ReplayWiringTest, EveryTargetDefinesTheEntryPoint) {
  for (const std::string& stem : DiscoverTargets()) {
    const std::string source = ReadFile(kFuzzDir / (stem + ".cc"));
    EXPECT_NE(source.find("LLVMFuzzerTestOneInput"), std::string::npos)
        << stem << ".cc does not define the libFuzzer entry point";
  }
}

}  // namespace
