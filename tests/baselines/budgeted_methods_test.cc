// Focused tests for the two budgeted baselines (CS and GRC): determinism,
// option handling, and the candidate-pool contract (both may only remove
// points from the top-K of the preference list).

#include <algorithm>

#include <gtest/gtest.h>

#include "baselines/corner_search.h"
#include "baselines/grace.h"
#include "datasets/synthetic.h"
#include "util/rng.h"

namespace moche {
namespace baselines {
namespace {

KsInstance FailingInstance(uint64_t seed) {
  datasets::DriftOptions opt;
  opt.size = 150;
  opt.contamination = 0.2;
  opt.seed = seed;
  auto inst = datasets::MakeKiferDriftInstance(opt);
  EXPECT_TRUE(inst.ok());
  return inst.value_or(KsInstance{});
}

class BudgetedMethodsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    instance_ = FailingInstance(5);
    Rng rng(11);
    preference_ = RandomPreference(instance_.test.size(), &rng);
  }
  KsInstance instance_;
  PreferenceList preference_;
};

TEST_F(BudgetedMethodsTest, CornerSearchIsDeterministicForFixedSeed) {
  CornerSearchOptions opt;
  opt.seed = 7;
  CornerSearchExplainer a(opt);
  CornerSearchExplainer b(opt);
  auto ea = a.Explain(instance_, preference_);
  auto eb = b.Explain(instance_, preference_);
  ASSERT_EQ(ea.ok(), eb.ok());
  if (ea.ok()) {
    EXPECT_EQ(ea->indices, eb->indices);
  }
}

TEST_F(BudgetedMethodsTest, CornerSearchPoolContract) {
  // Every removed index must come from the top-K of the preference list.
  CornerSearchOptions opt;
  opt.top_k = 40;
  opt.max_samples = 20000;
  CornerSearchExplainer cs(opt);
  auto expl = cs.Explain(instance_, preference_);
  if (!expl.ok()) GTEST_SKIP() << "budget exhausted on this instance";
  std::vector<size_t> pool(preference_.begin(), preference_.begin() + 40);
  for (size_t idx : expl->indices) {
    EXPECT_NE(std::find(pool.begin(), pool.end(), idx), pool.end())
        << "index " << idx << " outside the top-40 pool";
  }
}

TEST_F(BudgetedMethodsTest, CornerSearchWithoutEffectRanking) {
  CornerSearchOptions opt;
  opt.rank_by_effect = false;
  opt.max_samples = 20000;
  CornerSearchExplainer cs(opt);
  auto expl = cs.Explain(instance_, preference_);
  if (expl.ok()) {
    EXPECT_TRUE(ValidateExplanation(instance_, *expl).ok());
  } else {
    EXPECT_TRUE(expl.status().IsResourceExhausted());
  }
}

TEST_F(BudgetedMethodsTest, GraceIsDeterministicForFixedSeed) {
  GraceOptions opt;
  opt.seed = 3;
  GraceExplainer a(opt);
  GraceExplainer b(opt);
  auto ea = a.Explain(instance_, preference_);
  auto eb = b.Explain(instance_, preference_);
  ASSERT_EQ(ea.ok(), eb.ok());
  if (ea.ok()) {
    EXPECT_EQ(ea->indices, eb->indices);
  }
}

TEST_F(BudgetedMethodsTest, GracePoolContract) {
  GraceOptions opt;
  opt.top_k = 50;
  opt.optimizer.max_iterations = 400;
  GraceExplainer grc(opt);
  auto expl = grc.Explain(instance_, preference_);
  if (!expl.ok()) GTEST_SKIP() << "budget exhausted on this instance";
  std::vector<size_t> pool(preference_.begin(), preference_.begin() + 50);
  for (size_t idx : expl->indices) {
    EXPECT_NE(std::find(pool.begin(), pool.end(), idx), pool.end());
  }
}

TEST_F(BudgetedMethodsTest, GraceExplanationValidatesWhenProduced) {
  GraceOptions opt;
  opt.optimizer.max_iterations = 500;
  GraceExplainer grc(opt);
  auto expl = grc.Explain(instance_, preference_);
  if (expl.ok()) {
    EXPECT_TRUE(ValidateExplanation(instance_, *expl).ok());
    EXPECT_GT(expl->size(), 0u);
  } else {
    EXPECT_TRUE(expl.status().IsResourceExhausted());
  }
}

TEST_F(BudgetedMethodsTest, LargerBudgetsNeverHurtCornerSearch) {
  // If CS succeeds with a small budget it must also succeed with a larger
  // one (same seed: the sample sequence is a prefix).
  CornerSearchOptions small;
  small.max_samples = 2000;
  small.samples_per_size = 100;
  CornerSearchOptions large = small;
  large.max_samples = 20000;
  auto e_small = CornerSearchExplainer(small).Explain(instance_, preference_);
  auto e_large = CornerSearchExplainer(large).Explain(instance_, preference_);
  if (e_small.ok()) {
    EXPECT_TRUE(e_large.ok());
  }
}

}  // namespace
}  // namespace baselines
}  // namespace moche
