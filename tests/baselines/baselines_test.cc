// Contract tests for the six baselines: every produced explanation must
// reverse the failed KS test; budgeted methods abort with
// ResourceExhausted; preference-aware methods respect their inputs.

#include <gtest/gtest.h>

#include "baselines/corner_search.h"
#include "baselines/d3.h"
#include "baselines/grace.h"
#include "baselines/greedy.h"
#include "baselines/moche_explainer.h"
#include "baselines/s2g_explainer.h"
#include "baselines/stomp_explainer.h"
#include "datasets/synthetic.h"
#include "util/rng.h"

namespace moche {
namespace baselines {
namespace {

// A moderately sized failing instance with temporal structure (so the
// shape-based baselines are applicable).
KsInstance MakeDriftInstance(uint64_t seed, size_t w = 150) {
  datasets::DriftOptions opt;
  opt.size = w;
  opt.contamination = 0.25;
  opt.seed = seed;
  auto inst = datasets::MakeKiferDriftInstance(opt);
  // contamination 0.25 virtually always fails; surface problems loudly
  EXPECT_TRUE(inst.ok()) << inst.status().ToString();
  return inst.value_or(KsInstance{});
}

class AllBaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    instance_ = MakeDriftInstance(11);
    Rng rng(5);
    preference_ = RandomPreference(instance_.test.size(), &rng);
  }
  KsInstance instance_;
  PreferenceList preference_;
};

TEST_F(AllBaselinesTest, EveryMethodProducesAValidExplanation) {
  GreedyExplainer grd;
  D3Explainer d3;
  StompExplainer stmp;
  S2gExplainer s2g;
  MocheExplainer m;
  CornerSearchOptions cs_opt;
  cs_opt.max_samples = 50000;
  cs_opt.samples_per_size = 800;
  CornerSearchExplainer cs(cs_opt);
  GraceOptions grc_opt;
  grc_opt.optimizer.max_iterations = 500;
  GraceExplainer grc(grc_opt);

  std::vector<Explainer*> methods{&m, &grd, &d3, &stmp, &s2g, &cs, &grc};
  for (Explainer* method : methods) {
    auto expl = method->Explain(instance_, preference_);
    if (!expl.ok()) {
      // Only the budgeted methods may abort, and only with
      // ResourceExhausted.
      EXPECT_TRUE(expl.status().IsResourceExhausted())
          << method->name() << ": " << expl.status().ToString();
      continue;
    }
    EXPECT_TRUE(ValidateExplanation(instance_, *expl).ok())
        << method->name();
    EXPECT_GT(expl->size(), 0u) << method->name();
  }
}

TEST_F(AllBaselinesTest, MocheProducesTheSmallestExplanation) {
  MocheExplainer m;
  GreedyExplainer grd;
  D3Explainer d3;
  StompExplainer stmp;
  auto moche_expl = m.Explain(instance_, preference_);
  ASSERT_TRUE(moche_expl.ok());
  for (Explainer* other : std::vector<Explainer*>{&grd, &d3, &stmp}) {
    auto expl = other->Explain(instance_, preference_);
    ASSERT_TRUE(expl.ok()) << other->name();
    EXPECT_LE(moche_expl->size(), expl->size()) << other->name();
  }
}

TEST_F(AllBaselinesTest, GreedyReturnsAPrefixOfThePreferenceList) {
  GreedyExplainer grd;
  auto expl = grd.Explain(instance_, preference_);
  ASSERT_TRUE(expl.ok());
  ASSERT_LE(expl->size(), preference_.size());
  for (size_t i = 0; i < expl->size(); ++i) {
    EXPECT_EQ(expl->indices[i], preference_[i]);
  }
}

TEST_F(AllBaselinesTest, AlreadyPassingInstanceIsReported) {
  KsInstance passing;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.Normal();
    passing.reference.push_back(v);
    passing.test.push_back(v);
  }
  passing.alpha = 0.05;
  const PreferenceList pref = IdentityPreference(passing.test.size());

  GreedyExplainer grd;
  D3Explainer d3;
  CornerSearchExplainer cs;
  GraceExplainer grc;
  StompExplainer stmp;
  S2gExplainer s2g;
  EXPECT_TRUE(grd.Explain(passing, pref).status().IsAlreadyPasses());
  EXPECT_TRUE(d3.Explain(passing, pref).status().IsAlreadyPasses());
  EXPECT_TRUE(cs.Explain(passing, pref).status().IsAlreadyPasses());
  EXPECT_TRUE(grc.Explain(passing, pref).status().IsAlreadyPasses());
  EXPECT_TRUE(stmp.Explain(passing, pref).status().IsAlreadyPasses());
  EXPECT_TRUE(s2g.Explain(passing, pref).status().IsAlreadyPasses());
}

TEST_F(AllBaselinesTest, CornerSearchAbortsOnTinyBudget) {
  // Disjoint supports: the explanation needs nearly all of T, so a pool of
  // 2 candidates can never reverse the test.
  KsInstance hard;
  for (int i = 0; i < 50; ++i) hard.reference.push_back(i);
  for (int i = 0; i < 30; ++i) hard.test.push_back(100 + i);
  hard.alpha = 0.05;
  CornerSearchOptions opt;
  opt.max_samples = 10;
  opt.samples_per_size = 5;
  opt.top_k = 2;
  CornerSearchExplainer cs(opt);
  auto expl = cs.Explain(hard, IdentityPreference(hard.test.size()));
  EXPECT_TRUE(expl.status().IsResourceExhausted());
}

TEST_F(AllBaselinesTest, GraceAbortsOnTinyBudget) {
  GraceOptions opt;
  opt.optimizer.max_iterations = 1;
  opt.top_k = 3;
  GraceExplainer grc(opt);
  auto expl = grc.Explain(instance_, preference_);
  EXPECT_TRUE(expl.status().IsResourceExhausted());
}

TEST_F(AllBaselinesTest, PreferenceAwareness) {
  MocheExplainer m;
  GreedyExplainer grd;
  CornerSearchExplainer cs;
  GraceExplainer grc;
  D3Explainer d3;
  StompExplainer stmp;
  S2gExplainer s2g;
  EXPECT_TRUE(m.uses_preference());
  EXPECT_TRUE(grd.uses_preference());
  EXPECT_TRUE(cs.uses_preference());
  EXPECT_TRUE(grc.uses_preference());
  EXPECT_FALSE(d3.uses_preference());
  EXPECT_FALSE(stmp.uses_preference());
  EXPECT_FALSE(s2g.uses_preference());
}

TEST_F(AllBaselinesTest, MethodNames) {
  EXPECT_EQ(MocheExplainer().name(), "M");
  EXPECT_EQ(MocheExplainer::WithoutLowerBound().name(), "Mns");
  EXPECT_EQ(GreedyExplainer().name(), "GRD");
  EXPECT_EQ(CornerSearchExplainer().name(), "CS");
  EXPECT_EQ(GraceExplainer().name(), "GRC");
  EXPECT_EQ(D3Explainer().name(), "D3");
  EXPECT_EQ(StompExplainer().name(), "STMP");
  EXPECT_EQ(S2gExplainer().name(), "S2G");
}

TEST_F(AllBaselinesTest, MocheAblationAgreesWithFullMoche) {
  MocheExplainer full;
  MocheExplainer ns = MocheExplainer::WithoutLowerBound();
  auto a = full.Explain(instance_, preference_);
  auto b = ns.Explain(instance_, preference_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->indices, b->indices);
}

TEST(BaselineEdgeCases, D3DiscreteDataUsesPmf) {
  // age-group style discrete instance
  KsInstance inst;
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    inst.reference.push_back(static_cast<double>(rng.Integer(1, 5)));
  }
  for (int i = 0; i < 300; ++i) {
    inst.test.push_back(static_cast<double>(rng.Integer(3, 9)));
  }
  inst.alpha = 0.05;
  D3Explainer d3;  // auto mode must pick the PMF path
  auto expl = d3.Explain(inst, IdentityPreference(inst.test.size()));
  ASSERT_TRUE(expl.ok());
  EXPECT_TRUE(ValidateExplanation(inst, *expl).ok());
}

TEST(BaselineEdgeCases, StompRejectsWindowsShorterThanSubsequence) {
  KsInstance inst;
  inst.reference = {1, 2, 3};
  inst.test = {9, 9, 9, 9};
  inst.alpha = 0.05;
  StompOptions opt;
  opt.min_subsequence = 10;  // longer than both windows
  StompExplainer stmp(opt);
  auto expl = stmp.Explain(inst, IdentityPreference(4));
  EXPECT_FALSE(expl.ok());
}

TEST(BaselineEdgeCases, GreedyPrefixHelperValidates) {
  KsInstance inst = MakeDriftInstance(23, 120);
  // an order that never passes is impossible here; instead check the helper
  // finds a prefix on a valid order and flags AlreadyPasses correctly
  auto expl = GreedyPrefixExplanation(
      inst, IdentityPreference(inst.test.size()));
  ASSERT_TRUE(expl.ok());
  EXPECT_TRUE(ValidateExplanation(inst, *expl).ok());
}

}  // namespace
}  // namespace baselines
}  // namespace moche
