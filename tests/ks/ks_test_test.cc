#include "ks/ks_test.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "ks/ecdf.h"
#include "testing_util.h"
#include "util/rng.h"

namespace moche {
namespace {

using testing_util::kLooseTol;
using testing_util::kTightTol;

TEST(CriticalValueTest, KnownValues) {
  // c_alpha = sqrt(-ln(alpha/2)/2); at 0.05 this is the familiar 1.3581.
  EXPECT_NEAR(*ks::CriticalValue(0.05), 1.3581015, kLooseTol);
  EXPECT_NEAR(*ks::CriticalValue(0.10), 1.2238734, kLooseTol);
  EXPECT_NEAR(*ks::CriticalValue(0.01), 1.6276236, kLooseTol);
}

TEST(CriticalValueTest, ProposionOneBoundary) {
  // At alpha = 2/e^2 the critical value is exactly 1 (Proposition 1).
  EXPECT_NEAR(*ks::CriticalValue(2.0 / (M_E * M_E)), 1.0, kTightTol);
}

TEST(ThresholdTest, Formula) {
  const double alpha = 0.05;
  EXPECT_NEAR(*ks::Threshold(alpha, 100, 50),
              *ks::CriticalValue(alpha) * std::sqrt(150.0 / 5000.0), kTightTol);
}

// The public ks surface is consistently Status-returning: the same
// out-of-domain alpha that makes RunSorted return InvalidArgument must make
// CriticalValue / Threshold / PValueAsymptotic return InvalidArgument too,
// never abort.
TEST(CriticalValueTest, OutOfDomainAlphaIsInvalidArgument) {
  for (double alpha : {0.0, -0.5, 2.0, 3.0}) {
    EXPECT_TRUE(ks::CriticalValue(alpha).status().IsInvalidArgument())
        << alpha;
    EXPECT_TRUE(ks::Threshold(alpha, 10, 10).status().IsInvalidArgument())
        << alpha;
    EXPECT_TRUE(ks::ValidateAlpha(alpha).IsInvalidArgument()) << alpha;
    EXPECT_TRUE(
        ks::RunSorted({1.0}, {2.0}, alpha).status().IsInvalidArgument())
        << alpha;
  }
  EXPECT_TRUE(ks::ValidateAlpha(0.05).ok());
}

TEST(ThresholdTest, ZeroSampleSizesAreInvalidArgument) {
  EXPECT_TRUE(ks::Threshold(0.05, 0, 10).status().IsInvalidArgument());
  EXPECT_TRUE(ks::Threshold(0.05, 10, 0).status().IsInvalidArgument());
  EXPECT_TRUE(ks::PValueAsymptotic(0.5, 0, 10).status().IsInvalidArgument());
  EXPECT_TRUE(ks::PValueAsymptotic(0.5, 10, 0).status().IsInvalidArgument());
}

TEST(StatisticTest, IdenticalSamplesGiveZero) {
  EXPECT_DOUBLE_EQ(ks::Statistic({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(StatisticTest, DisjointSamplesGiveOne) {
  double loc = 0.0;
  EXPECT_DOUBLE_EQ(ks::Statistic({1, 2}, {10, 20}, &loc), 1.0);
  EXPECT_DOUBLE_EQ(loc, 2.0);  // the max gap is reached at the last low point
}

TEST(StatisticTest, PaperExampleSets) {
  // Example 3/4: R = {14 x4, 20 x4}, T = {13,13,12,20}. D = 0.75 at x=13.
  const std::vector<double> r{14, 14, 14, 14, 20, 20, 20, 20};
  const std::vector<double> t{13, 13, 12, 20};
  double loc = 0.0;
  EXPECT_DOUBLE_EQ(ks::Statistic(r, t, &loc), 0.75);
  EXPECT_DOUBLE_EQ(loc, 13.0);
}

TEST(StatisticTest, SymmetricInArguments) {
  Rng rng(5);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 30; ++i) a.push_back(rng.Integer(0, 10));
    for (int i = 0; i < 17; ++i) b.push_back(rng.Integer(0, 10));
    EXPECT_DOUBLE_EQ(ks::Statistic(a, b), ks::Statistic(b, a));
  }
}

TEST(StatisticTest, EmptySampleConventions) {
  EXPECT_DOUBLE_EQ(ks::Statistic({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(ks::Statistic({1.0}, {}), 1.0);
  EXPECT_DOUBLE_EQ(ks::Statistic({}, {1.0}), 1.0);
}

TEST(StatisticTest, NanSampleGivesNanNotUb) {
  // Regression: Statistic used to sort before any screen — std::sort on a
  // NaN range is strict-weak-ordering UB. Now NaN in, NaN out.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  double loc = 123.0;
  EXPECT_TRUE(std::isnan(ks::Statistic({1.0, nan}, {2.0}, &loc)));
  EXPECT_DOUBLE_EQ(loc, 0.0);  // location still deterministically written
  EXPECT_TRUE(std::isnan(ks::Statistic({1.0}, {nan, 2.0})));
  // Infinity has a rank; it is not screened here.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(ks::Statistic({1.0, 2.0}, {inf, inf}), 1.0);
}

TEST(RunTest, ValidatesBeforeSorting) {
  // Run must reject non-finite input up front — the old code sorted first,
  // which was UB with NaN present.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ks::Run({1.0, nan, 2.0}, {1.0, 2.0}, 0.05).ok());
  EXPECT_FALSE(ks::Run({1.0, 2.0}, {nan}, 0.05).ok());
}

TEST(StatisticTest, LocationAlwaysWrittenEvenForTwoEmptySamples) {
  // Regression: the both-empty early return used to leave *location
  // untouched, an uninitialized read for callers that always consume it.
  double loc = 123.0;
  EXPECT_DOUBLE_EQ(ks::StatisticSorted({}, {}, &loc), 0.0);
  EXPECT_DOUBLE_EQ(loc, 0.0);  // deterministic sentinel

  loc = 123.0;
  EXPECT_DOUBLE_EQ(ks::Statistic({}, {}, &loc), 0.0);
  EXPECT_DOUBLE_EQ(loc, 0.0);
}

// The merge-based statistic must agree with a brute-force evaluation of
// max |F_R(x) - F_T(x)| over all sample points.
TEST(StatisticTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(42);
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<double> r;
    std::vector<double> t;
    const int n = static_cast<int>(rng.Integer(1, 40));
    const int m = static_cast<int>(rng.Integer(1, 40));
    for (int i = 0; i < n; ++i) r.push_back(rng.Integer(0, 15));
    for (int i = 0; i < m; ++i) t.push_back(rng.Integer(0, 15));

    const Ecdf fr(r);
    const Ecdf ft(t);
    double expected = 0.0;
    std::vector<double> all = r;
    all.insert(all.end(), t.begin(), t.end());
    for (double x : all) {
      expected = std::max(expected, std::fabs(fr.Evaluate(x) - ft.Evaluate(x)));
    }
    EXPECT_NEAR(ks::Statistic(r, t), expected, kTightTol);
  }
}

TEST(RunTest, RejectsShiftedDistribution) {
  Rng rng(7);
  std::vector<double> r;
  std::vector<double> t;
  for (int i = 0; i < 500; ++i) r.push_back(rng.Normal(0.0, 1.0));
  for (int i = 0; i < 500; ++i) t.push_back(rng.Normal(1.0, 1.0));
  auto outcome = ks::Run(r, t, 0.05);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->reject);
  EXPECT_GT(outcome->statistic, outcome->threshold);
  EXPECT_EQ(outcome->n, 500u);
  EXPECT_EQ(outcome->m, 500u);
}

TEST(RunTest, PassesSameDistribution) {
  Rng rng(11);
  std::vector<double> r;
  std::vector<double> t;
  for (int i = 0; i < 500; ++i) r.push_back(rng.Normal(0.0, 1.0));
  for (int i = 0; i < 500; ++i) t.push_back(rng.Normal(0.0, 1.0));
  auto outcome = ks::Run(r, t, 0.01);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->reject);
}

TEST(RunTest, ValidatesInputs) {
  EXPECT_TRUE(ks::Run({}, {1.0}, 0.05).status().IsInvalidArgument());
  EXPECT_TRUE(ks::Run({1.0}, {}, 0.05).status().IsInvalidArgument());
  EXPECT_TRUE(ks::Run({1.0}, {1.0}, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(ks::Run({1.0}, {1.0}, 2.0).status().IsInvalidArgument());
}

TEST(RunTest, PaperExampleFailsAtPointThree) {
  const std::vector<double> r{14, 14, 14, 14, 20, 20, 20, 20};
  const std::vector<double> t{13, 13, 12, 20};
  auto outcome = ks::Run(r, t, 0.3);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->reject);  // Example 4: the sets fail at alpha = 0.3
}

TEST(RunSortedTest, AgreesWithRun) {
  std::vector<double> r{5, 1, 3};
  std::vector<double> t{2, 2, 8};
  auto a = ks::Run(r, t, 0.05);
  std::sort(r.begin(), r.end());
  std::sort(t.begin(), t.end());
  auto b = ks::RunSorted(r, t, 0.05);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->statistic, b->statistic);
  EXPECT_DOUBLE_EQ(a->threshold, b->threshold);
}

// Larger alpha means a smaller threshold, so rejection is monotone in alpha.
TEST(RunTest, RejectionMonotoneInAlpha) {
  Rng rng(13);
  std::vector<double> r;
  std::vector<double> t;
  for (int i = 0; i < 200; ++i) r.push_back(rng.Normal(0.0, 1.0));
  for (int i = 0; i < 200; ++i) t.push_back(rng.Normal(0.35, 1.0));
  bool prev_reject = false;
  for (double alpha : {0.001, 0.01, 0.05, 0.1, 0.3}) {
    auto outcome = ks::Run(r, t, alpha);
    ASSERT_TRUE(outcome.ok());
    // once rejected at a smaller alpha, every larger alpha rejects too
    if (prev_reject) {
      EXPECT_TRUE(outcome->reject);
    }
    prev_reject = outcome->reject;
  }
}


TEST(KolmogorovQTest, KnownValuesAndMonotonicity) {
  EXPECT_DOUBLE_EQ(ks::KolmogorovQ(0.0), 1.0);
  EXPECT_NEAR(ks::KolmogorovQ(10.0), 0.0, kTightTol);
  // c_alpha solves the ONE-TERM approximation 2 e^{-2c^2} = alpha, so the
  // full series agrees to its second term, 2 e^{-8 c_alpha^2} (~1e-5 at
  // alpha = 0.25, far smaller below).
  for (double alpha : {0.01, 0.05, 0.1, 0.25}) {
    const double c = *ks::CriticalValue(alpha);
    EXPECT_NEAR(ks::KolmogorovQ(c), alpha, 3.0 * std::exp(-8.0 * c * c));
  }
  EXPECT_GT(ks::KolmogorovQ(0.5), ks::KolmogorovQ(1.0));
}

// The scratch-based SIMD sweep is the same function as StatisticSorted —
// same D bits, same location — on random, tie-heavy, and degenerate
// inputs. This is the unit-level leg of the bit-identity gate (the corpus
// dump is the end-to-end leg).
TEST(StatisticTest, ScratchSweepIsBitIdenticalToStatisticSorted) {
  Rng rng(314159);
  ks::KsSweepScratch scratch;
  for (int rep = 0; rep < 200; ++rep) {
    const size_t n = static_cast<size_t>(rng.Integer(1, 60));
    const size_t m = static_cast<size_t>(rng.Integer(1, 60));
    std::vector<double> r(n);
    std::vector<double> t(m);
    const bool tie_heavy = rep % 2 == 0;
    for (double& v : r) {
      v = tie_heavy ? static_cast<double>(rng.Integer(0, 5)) : rng.Normal();
    }
    for (double& v : t) {
      v = tie_heavy ? static_cast<double>(rng.Integer(0, 5))
                    : rng.Normal(0.3, 1.1);
    }
    std::sort(r.begin(), r.end());
    std::sort(t.begin(), t.end());
    double loc_plain = -1.0;
    double loc_scratch = -2.0;
    const double d_plain = ks::StatisticSorted(r, t, &loc_plain);
    const double d_scratch =
        ks::StatisticSortedScratch(r, t, &scratch, &loc_scratch);
    ASSERT_EQ(d_plain, d_scratch) << "rep=" << rep;
    ASSERT_EQ(loc_plain, loc_scratch) << "rep=" << rep;
  }
  // Identical samples: D == 0, location = front value (sentinel path).
  const std::vector<double> same{-0.0, 1.0, 2.0};
  double loc = 99.0;
  EXPECT_EQ(ks::StatisticSortedScratch(same, same, &scratch, &loc), 0.0);
  double loc_plain = 98.0;
  EXPECT_EQ(ks::StatisticSorted(same, same, &loc_plain), 0.0);
  EXPECT_EQ(loc, loc_plain);
}

// Goldens for the small-lambda theta-dual expansion (values from the
// standard Kolmogorov distribution tables, Q(c) = 1 - K(c)); the
// alternating series alone loses all precision below c ~ 0.5, where it
// needs hundreds of slowly-cancelling terms.
TEST(KolmogorovQTest, SmallLambdaGoldens) {
  EXPECT_NEAR(ks::KolmogorovQ(0.5), 0.9639452436648751, 1e-12);
  EXPECT_NEAR(ks::KolmogorovQ(1.0), 0.26999967167735456, 1e-12);
  EXPECT_NEAR(ks::KolmogorovQ(1.5), 0.022217962616525124, 1e-12);
  EXPECT_NEAR(ks::KolmogorovQ(2.0), 0.0006709252557793559, 1e-12);
  // Deep in the theta regime the survival probability is 1 to double
  // precision (K(0.1) ~ 6e-54), and the dual expansion must not underflow
  // into garbage.
  EXPECT_DOUBLE_EQ(ks::KolmogorovQ(0.1), 1.0);
  EXPECT_DOUBLE_EQ(ks::KolmogorovQ(0.02), 1.0);
  EXPECT_DOUBLE_EQ(ks::KolmogorovQ(1e-8), 1.0);
  EXPECT_DOUBLE_EQ(ks::KolmogorovQ(0.0), 1.0);
  EXPECT_DOUBLE_EQ(ks::KolmogorovQ(-1.0), 1.0);
}

// Both expansions converge to the same function; at the 1.18 crossover
// they must agree far below any tolerance a caller could observe. This
// pins the crossover against accidental edits that would make PValue
// discontinuous in D.
TEST(KolmogorovQTest, ContinuousAcrossExpansionCrossover) {
  double prev = ks::KolmogorovQ(1.1799);
  for (double lambda = 1.17991; lambda <= 1.18011; lambda += 1e-5) {
    const double q = ks::KolmogorovQ(lambda);
    EXPECT_LE(q, prev);
    EXPECT_NEAR(q, prev, 1e-4);  // locally Lipschitz, no jump
    prev = q;
  }
  // Direct cross-check: evaluate a small-lambda point with the raw
  // alternating series (summed to convergence in long double) and compare.
  const double lambda = 1.0;
  long double sum = 0.0L;
  for (int k = 1; k <= 200; ++k) {
    const long double term =
        std::exp(-2.0L * k * k * lambda * lambda);
    sum += (k % 2 == 1 ? 2.0L : -2.0L) * term;
  }
  EXPECT_NEAR(ks::KolmogorovQ(lambda), static_cast<double>(sum), 1e-14);
}

TEST(KolmogorovQTest, StrictlyDecreasingOverSupport) {
  double prev = ks::KolmogorovQ(0.3);
  for (double lambda = 0.35; lambda <= 2.5; lambda += 0.05) {
    const double q = ks::KolmogorovQ(lambda);
    EXPECT_LT(q, prev) << "lambda=" << lambda;
    prev = q;
  }
}

// p < alpha must agree with D > Threshold(alpha) on random instances:
// the two rejection rules are algebraically the same test.
TEST(PValueTest, EquivalentToThresholdComparison) {
  Rng rng(99);
  for (int rep = 0; rep < 100; ++rep) {
    const size_t n = static_cast<size_t>(rng.Integer(5, 400));
    const size_t m = static_cast<size_t>(rng.Integer(5, 400));
    const double d = rng.Uniform(0.0, 1.0);
    for (double alpha : {0.01, 0.05, 0.2}) {
      // the full-series p-value and the one-term threshold disagree only
      // inside a hair-thin band around the threshold; skip that band
      const double threshold = *ks::Threshold(alpha, n, m);
      if (std::fabs(d - threshold) < 1e-3) continue;
      const bool by_threshold = d > threshold;
      const bool by_pvalue = *ks::PValueAsymptotic(d, n, m) < alpha;
      EXPECT_EQ(by_threshold, by_pvalue)
          << "n=" << n << " m=" << m << " d=" << d << " alpha=" << alpha;
    }
  }
}

TEST(PValueTest, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(*ks::PValueAsymptotic(0.0, 100, 100), 1.0);
  EXPECT_NEAR(*ks::PValueAsymptotic(1.0, 500, 500), 0.0, kTightTol);
}

}  // namespace
}  // namespace moche
