#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/moche.h"
#include "core/preference.h"
#include "ks/ks_test.h"
#include "testing_util.h"
#include "util/rng.h"

namespace moche {
namespace {

TEST(RemovalKsTest, NoRemovalMatchesPlainTest) {
  const std::vector<double> r{1, 2, 3, 4, 5};
  const std::vector<double> t{2, 2, 6, 7};
  RemovalKs removal(r, t, 0.05);
  auto plain = ks::Run(r, t, 0.05);
  ASSERT_TRUE(plain.ok());
  const KsOutcome current = removal.CurrentOutcome();
  EXPECT_DOUBLE_EQ(current.statistic, plain->statistic);
  EXPECT_DOUBLE_EQ(current.threshold, plain->threshold);
  EXPECT_EQ(current.reject, plain->reject);
}

TEST(RemovalKsTest, RemovalMatchesRecomputedTest) {
  Rng rng(3);
  for (int rep = 0; rep < 30; ++rep) {
    std::vector<double> r;
    std::vector<double> t;
    const int n = static_cast<int>(rng.Integer(2, 30));
    const int m = static_cast<int>(rng.Integer(3, 30));
    for (int i = 0; i < n; ++i) r.push_back(rng.Integer(0, 8));
    for (int i = 0; i < m; ++i) t.push_back(rng.Integer(0, 8));

    RemovalKs removal(r, t, 0.05);
    // Remove a random strict subset of T.
    std::vector<double> remaining = t;
    const int remove_count = static_cast<int>(rng.Integer(1, m - 1));
    for (int c = 0; c < remove_count; ++c) {
      const size_t pick = static_cast<size_t>(
          rng.Integer(0, static_cast<int64_t>(remaining.size()) - 1));
      ASSERT_TRUE(removal.RemoveValue(remaining[pick]).ok());
      remaining.erase(remaining.begin() + static_cast<long>(pick));
    }
    auto direct = ks::Run(r, remaining, 0.05);
    ASSERT_TRUE(direct.ok());
    const KsOutcome current = removal.CurrentOutcome();
    EXPECT_NEAR(current.statistic, direct->statistic,
                testing_util::kTightTol);
    EXPECT_NEAR(current.threshold, direct->threshold,
                testing_util::kTightTol);
    EXPECT_EQ(current.reject, direct->reject);
    EXPECT_EQ(removal.num_removed(), static_cast<size_t>(remove_count));

    // RemainingTest returns the same multiset we tracked by hand.
    std::vector<double> got = removal.RemainingTest();
    std::sort(remaining.begin(), remaining.end());
    EXPECT_EQ(got, remaining);
  }
}

TEST(RemovalKsTest, RemovingAllOfTestSetIsWellDefined) {
  // Regression: a greedy caller that strips the entire test set used to hit
  // MOCHE_CHECK(removed_total_ < m_) and abort the process. The degenerate
  // outcome now follows the one-empty-sample convention: D = 1, reject.
  // Test values sort below the reference so the degenerate location is
  // discriminating: it must be the smallest REFERENCE value (where
  // |F_R - F_empty| first reaches 1), not the smallest union-grid value.
  const std::vector<double> r{5, 6, 7, 8};
  const std::vector<double> t{1, 2};
  RemovalKs removal(r, t, 0.05);
  ASSERT_TRUE(removal.RemoveValue(1).ok());
  ASSERT_TRUE(removal.RemoveValue(2).ok());
  ASSERT_EQ(removal.num_removed(), 2u);

  const KsOutcome outcome = removal.CurrentOutcome();
  EXPECT_DOUBLE_EQ(outcome.statistic, 1.0);
  EXPECT_TRUE(outcome.reject);
  EXPECT_EQ(outcome.m, 0u);
  EXPECT_EQ(outcome.n, 4u);
  EXPECT_DOUBLE_EQ(outcome.location, 5.0);  // smallest reference value
  EXPECT_FALSE(removal.Passes());
  EXPECT_TRUE(removal.RemainingTest().empty());

  // Removing beyond empty still errors per value; unremoving recovers the
  // ordinary outcome.
  EXPECT_TRUE(removal.RemoveValue(1).IsInvalidArgument());
  ASSERT_TRUE(removal.UnremoveValue(2).ok());
  auto direct = ks::Run(r, {2}, 0.05);
  ASSERT_TRUE(direct.ok());
  EXPECT_DOUBLE_EQ(removal.CurrentOutcome().statistic, direct->statistic);
}

TEST(RemovalKsTest, UnremoveRestores) {
  const std::vector<double> r{1, 2, 3};
  const std::vector<double> t{1, 5, 5};
  RemovalKs removal(r, t, 0.05);
  const double before = removal.CurrentOutcome().statistic;
  ASSERT_TRUE(removal.RemoveValue(5).ok());
  ASSERT_TRUE(removal.UnremoveValue(5).ok());
  EXPECT_DOUBLE_EQ(removal.CurrentOutcome().statistic, before);
  EXPECT_EQ(removal.num_removed(), 0u);
}

TEST(RemovalKsTest, ResetClearsEverything) {
  const std::vector<double> r{1, 2, 3};
  const std::vector<double> t{1, 5, 5};
  RemovalKs removal(r, t, 0.05);
  ASSERT_TRUE(removal.RemoveValue(5).ok());
  ASSERT_TRUE(removal.RemoveValue(5).ok());
  removal.Reset();
  EXPECT_EQ(removal.num_removed(), 0u);
  EXPECT_EQ(removal.RemainingTest().size(), 3u);
}

TEST(RemovalKsTest, ErrorsOnBadRemovals) {
  const std::vector<double> r{1, 2};
  const std::vector<double> t{5};
  RemovalKs removal(r, t, 0.05);
  // value only in R: removable occurrences in T are zero
  EXPECT_FALSE(removal.RemoveValue(1).ok());
  // value not anywhere
  EXPECT_FALSE(removal.RemoveValue(99).ok());
  // removing more occurrences than T has
  ASSERT_TRUE(removal.RemoveValue(5).ok());
  EXPECT_FALSE(removal.RemoveValue(5).ok());
  // unremoving something never removed
  EXPECT_FALSE(removal.UnremoveValue(1).ok());
}

// Property check over random instances: whatever explanation MOCHE returns,
// removing its points must flip the test from rejecting to passing, and
// removing them in greedy order — at every step the point whose removal
// yields the smallest rejection margin D - p — must drive that margin down
// monotonically to <= 0. The margin, not the raw statistic, is the right
// monotone quantity: shrinking m rescales the ECDF (and grows p), so even
// the best single removal can bump D itself by a hair, and the user's L
// order gives no per-step guarantee at all.
TEST(RemovalKsTest, RemovingMocheExplanationMakesTestPassMonotonically) {
  // Draws come from the portable helpers (not Rng's std:: distributions)
  // so the per-step assertions below see the same instances on every
  // standard library.
  std::mt19937_64 engine_rng(testing_util::kTestSeed);
  const double alpha = 0.05;
  const Moche engine;
  int explained = 0;
  for (int rep = 0; rep < 60; ++rep) {
    // Reference from N(0, 1); test contaminated with a shifted cluster so
    // the KS test usually rejects.
    std::vector<double> r;
    std::vector<double> t;
    const int n =
        static_cast<int>(testing_util::PortableInteger(engine_rng, 30, 80));
    const int m =
        static_cast<int>(testing_util::PortableInteger(engine_rng, 20, 50));
    for (int i = 0; i < n; ++i) {
      r.push_back(testing_util::PortableNormal(engine_rng, 0.0, 1.0));
    }
    for (int i = 0; i < m; ++i) {
      t.push_back(testing_util::PortableBernoulli(engine_rng, 0.4)
                      ? testing_util::PortableNormal(engine_rng, 4.0, 0.3)
                      : testing_util::PortableNormal(engine_rng, 0.0, 1.0));
    }

    auto before = ks::Run(r, t, alpha);
    ASSERT_TRUE(before.ok());
    if (!before->reject) continue;  // nothing to explain on this draw

    // Fisher-Yates over engine draws: a portable random preference.
    PreferenceList pref = IdentityPreference(t.size());
    for (size_t i = pref.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(testing_util::PortableInteger(
          engine_rng, 0, static_cast<int64_t>(i) - 1));
      std::swap(pref[i - 1], pref[j]);
    }
    auto report = engine.Explain(r, t, alpha, pref);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ++explained;

    RemovalKs removal(r, t, alpha);
    EXPECT_FALSE(removal.Passes());
    std::vector<size_t> pending = report->explanation.indices;
    const KsOutcome start = removal.CurrentOutcome();
    double prev_margin = start.statistic - start.threshold;
    EXPECT_GT(prev_margin, 0.0);
    while (!pending.empty()) {
      // Greedy step: probe every pending point and commit the best one.
      size_t best_pos = 0;
      double best_margin = std::numeric_limits<double>::infinity();
      for (size_t pos = 0; pos < pending.size(); ++pos) {
        ASSERT_TRUE(removal.RemoveValue(t[pending[pos]]).ok());
        const KsOutcome probe = removal.CurrentOutcome();
        ASSERT_TRUE(removal.UnremoveValue(t[pending[pos]]).ok());
        const double margin = probe.statistic - probe.threshold;
        if (margin < best_margin) {
          best_margin = margin;
          best_pos = pos;
        }
      }
      ASSERT_TRUE(removal.RemoveValue(t[pending[best_pos]]).ok());
      EXPECT_LE(best_margin, prev_margin + testing_util::kTightTol)
          << "rep " << rep << ": margin increased from " << prev_margin
          << " to " << best_margin << " after removing index "
          << pending[best_pos];
      prev_margin = best_margin;
      pending.erase(pending.begin() + static_cast<long>(best_pos));
    }
    EXPECT_LE(prev_margin, 0.0);
    EXPECT_TRUE(removal.Passes()) << "rep " << rep;
    EXPECT_EQ(removal.num_removed(), report->k);
  }
  // The contamination must actually trigger the KS test most of the time,
  // or the property above is vacuous.
  EXPECT_GE(explained, 30);
}

TEST(RemovalKsTest, PassesReflectsThresholdCrossing) {
  // Example 4 sets: fail at alpha = 0.3; removing {12, 13} passes.
  const std::vector<double> r{14, 14, 14, 14, 20, 20, 20, 20};
  const std::vector<double> t{13, 13, 12, 20};
  RemovalKs removal(r, t, 0.3);
  EXPECT_FALSE(removal.Passes());
  ASSERT_TRUE(removal.RemoveValue(12).ok());
  ASSERT_TRUE(removal.RemoveValue(13).ok());
  EXPECT_TRUE(removal.Passes());
}

}  // namespace
}  // namespace moche
