#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "ks/ks_test.h"
#include "util/rng.h"

namespace moche {
namespace {

TEST(RemovalKsTest, NoRemovalMatchesPlainTest) {
  const std::vector<double> r{1, 2, 3, 4, 5};
  const std::vector<double> t{2, 2, 6, 7};
  RemovalKs removal(r, t, 0.05);
  auto plain = ks::Run(r, t, 0.05);
  ASSERT_TRUE(plain.ok());
  const KsOutcome current = removal.CurrentOutcome();
  EXPECT_DOUBLE_EQ(current.statistic, plain->statistic);
  EXPECT_DOUBLE_EQ(current.threshold, plain->threshold);
  EXPECT_EQ(current.reject, plain->reject);
}

TEST(RemovalKsTest, RemovalMatchesRecomputedTest) {
  Rng rng(3);
  for (int rep = 0; rep < 30; ++rep) {
    std::vector<double> r;
    std::vector<double> t;
    const int n = static_cast<int>(rng.Integer(2, 30));
    const int m = static_cast<int>(rng.Integer(3, 30));
    for (int i = 0; i < n; ++i) r.push_back(rng.Integer(0, 8));
    for (int i = 0; i < m; ++i) t.push_back(rng.Integer(0, 8));

    RemovalKs removal(r, t, 0.05);
    // Remove a random strict subset of T.
    std::vector<double> remaining = t;
    const int remove_count = static_cast<int>(rng.Integer(1, m - 1));
    for (int c = 0; c < remove_count; ++c) {
      const size_t pick =
          static_cast<size_t>(rng.Integer(0, static_cast<int64_t>(remaining.size()) - 1));
      ASSERT_TRUE(removal.RemoveValue(remaining[pick]).ok());
      remaining.erase(remaining.begin() + static_cast<long>(pick));
    }
    auto direct = ks::Run(r, remaining, 0.05);
    ASSERT_TRUE(direct.ok());
    const KsOutcome current = removal.CurrentOutcome();
    EXPECT_NEAR(current.statistic, direct->statistic, 1e-12);
    EXPECT_NEAR(current.threshold, direct->threshold, 1e-12);
    EXPECT_EQ(current.reject, direct->reject);
    EXPECT_EQ(removal.num_removed(), static_cast<size_t>(remove_count));

    // RemainingTest returns the same multiset we tracked by hand.
    std::vector<double> got = removal.RemainingTest();
    std::sort(remaining.begin(), remaining.end());
    EXPECT_EQ(got, remaining);
  }
}

TEST(RemovalKsTest, UnremoveRestores) {
  const std::vector<double> r{1, 2, 3};
  const std::vector<double> t{1, 5, 5};
  RemovalKs removal(r, t, 0.05);
  const double before = removal.CurrentOutcome().statistic;
  ASSERT_TRUE(removal.RemoveValue(5).ok());
  ASSERT_TRUE(removal.UnremoveValue(5).ok());
  EXPECT_DOUBLE_EQ(removal.CurrentOutcome().statistic, before);
  EXPECT_EQ(removal.num_removed(), 0u);
}

TEST(RemovalKsTest, ResetClearsEverything) {
  const std::vector<double> r{1, 2, 3};
  const std::vector<double> t{1, 5, 5};
  RemovalKs removal(r, t, 0.05);
  ASSERT_TRUE(removal.RemoveValue(5).ok());
  ASSERT_TRUE(removal.RemoveValue(5).ok());
  removal.Reset();
  EXPECT_EQ(removal.num_removed(), 0u);
  EXPECT_EQ(removal.RemainingTest().size(), 3u);
}

TEST(RemovalKsTest, ErrorsOnBadRemovals) {
  const std::vector<double> r{1, 2};
  const std::vector<double> t{5};
  RemovalKs removal(r, t, 0.05);
  // value only in R: removable occurrences in T are zero
  EXPECT_FALSE(removal.RemoveValue(1).ok());
  // value not anywhere
  EXPECT_FALSE(removal.RemoveValue(99).ok());
  // removing more occurrences than T has
  ASSERT_TRUE(removal.RemoveValue(5).ok());
  EXPECT_FALSE(removal.RemoveValue(5).ok());
  // unremoving something never removed
  EXPECT_FALSE(removal.UnremoveValue(1).ok());
}

TEST(RemovalKsTest, PassesReflectsThresholdCrossing) {
  // Example 4 sets: fail at alpha = 0.3; removing {12, 13} passes.
  const std::vector<double> r{14, 14, 14, 14, 20, 20, 20, 20};
  const std::vector<double> t{13, 13, 12, 20};
  RemovalKs removal(r, t, 0.3);
  EXPECT_FALSE(removal.Passes());
  ASSERT_TRUE(removal.RemoveValue(12).ok());
  ASSERT_TRUE(removal.RemoveValue(13).ok());
  EXPECT_TRUE(removal.Passes());
}

}  // namespace
}  // namespace moche
