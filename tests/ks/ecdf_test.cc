#include "ks/ecdf.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "testing_util.h"

namespace moche {
namespace {

using testing_util::kTightTol;

TEST(EcdfTest, StepFunctionValues) {
  const Ecdf f({1.0, 2.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(f.Evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f.Evaluate(1.0), 0.25);
  EXPECT_DOUBLE_EQ(f.Evaluate(1.5), 0.25);
  EXPECT_DOUBLE_EQ(f.Evaluate(2.0), 0.75);
  EXPECT_DOUBLE_EQ(f.Evaluate(4.9), 0.75);
  EXPECT_DOUBLE_EQ(f.Evaluate(5.0), 1.0);
  EXPECT_DOUBLE_EQ(f.Evaluate(100.0), 1.0);
}

TEST(EcdfTest, SortsInput) {
  const Ecdf f({3.0, 1.0, 2.0});
  EXPECT_EQ(f.sorted(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(f.size(), 3u);
}

TEST(EcdfTest, EmptySampleEvaluatesToNan) {
  // No distribution function exists for an empty sample; 0.0 would be a
  // valid CDF value and silently misread downstream.
  const Ecdf f({});
  EXPECT_TRUE(std::isnan(f.Evaluate(1.0)));
}

TEST(EcdfTest, NanSamplePoisonsEvaluation) {
  // NaN has no rank: sorting it is UB, so construction must not sort and
  // every evaluation reports NaN rather than an arbitrary step value.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const Ecdf f({1.0, nan, 3.0});
  EXPECT_EQ(f.size(), 3u);
  EXPECT_TRUE(std::isnan(f.Evaluate(0.0)));
  EXPECT_TRUE(std::isnan(f.Evaluate(2.0)));
  EXPECT_TRUE(std::isnan(f.Evaluate(100.0)));
}

TEST(EcdfRmseTest, IdenticalSamplesGiveZero) {
  EXPECT_DOUBLE_EQ(EcdfRmse({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(EcdfRmse({5, 5, 5}, {5, 5}), 0.0);
}

TEST(EcdfRmseTest, HandComputedCase) {
  // R = {1, 3}, T = {2}. Evaluation points (with repeats): 1, 2, 3.
  // F_R: 0.5 at 1, 0.5 at 2, 1 at 3. F_T: 0 at 1, 1 at 2, 1 at 3.
  // Squares: 0.25, 0.25, 0. RMSE = sqrt(0.5/3).
  EXPECT_NEAR(EcdfRmse({1, 3}, {2}), std::sqrt(0.5 / 3.0), kTightTol);
}

TEST(EcdfRmseTest, SymmetricInArguments) {
  const std::vector<double> a{1, 2, 2, 7, 9};
  const std::vector<double> b{0, 2, 3, 3};
  EXPECT_DOUBLE_EQ(EcdfRmse(a, b), EcdfRmse(b, a));
}

TEST(EcdfRmseTest, DisjointSamplesHaveLargeError) {
  const double rmse = EcdfRmse({1, 2, 3}, {10, 11, 12});
  EXPECT_GT(rmse, 0.5);
  EXPECT_LE(rmse, 1.0);
}

TEST(EcdfRmseTest, EmptyInputGivesNan) {
  // 0.0 here used to read as "distributions identical".
  EXPECT_TRUE(std::isnan(EcdfRmse({}, {1.0})));
  EXPECT_TRUE(std::isnan(EcdfRmse({1.0}, {})));
  EXPECT_TRUE(std::isnan(EcdfRmse({}, {})));
}

TEST(EcdfRmseTest, UnsortedInputsAccepted) {
  EXPECT_DOUBLE_EQ(EcdfRmse({3, 1, 2}, {2, 3, 1}), 0.0);
}

TEST(EcdfRmseTest, NanInputGivesNan) {
  // Before the screen, a NaN merged element made the dedup walk spin
  // forever (`rs[i] == x` never holds for x = NaN) — this test would hang.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(EcdfRmse({1.0, nan}, {1.0, 2.0})));
  EXPECT_TRUE(std::isnan(EcdfRmse({1.0, 2.0}, {nan})));
}

}  // namespace
}  // namespace moche
