#include "ks/streaming.h"

#include <cmath>
#include <deque>

#include <gtest/gtest.h>

#include "testing_util.h"
#include "util/rng.h"

namespace moche {
namespace {

using testing_util::kTightTol;

TEST(StreamingKsTest, ValidatesConstruction) {
  EXPECT_FALSE(StreamingKs::Create({}, 10, 0.05).ok());
  EXPECT_FALSE(StreamingKs::Create({1.0}, 0, 0.05).ok());
  EXPECT_FALSE(StreamingKs::Create({1.0}, 10, 0.0).ok());
  EXPECT_FALSE(StreamingKs::Create({1.0, NAN}, 10, 0.05).ok());
  EXPECT_TRUE(StreamingKs::Create({1.0, 2.0}, 10, 0.05).ok());
}

TEST(StreamingKsTest, RejectsNonFiniteObservations) {
  auto stream = StreamingKs::Create({1, 2, 3}, 2, 0.05);
  ASSERT_TRUE(stream.ok());
  EXPECT_FALSE(stream->Push(NAN).ok());
  EXPECT_FALSE(stream->Push(INFINITY).ok());
  EXPECT_TRUE(stream->Push(1.0).ok());
}

TEST(StreamingKsTest, OutcomeRequiresFullWindow) {
  auto stream = StreamingKs::Create({1, 2, 3}, 3, 0.05);
  ASSERT_TRUE(stream.ok());
  EXPECT_FALSE(stream->WindowFull());
  EXPECT_FALSE(stream->CurrentOutcome().ok());
  EXPECT_FALSE(stream->Drifted());
  ASSERT_TRUE(stream->Push(1.0).ok());
  ASSERT_TRUE(stream->Push(2.0).ok());
  ASSERT_TRUE(stream->Push(3.0).ok());
  EXPECT_TRUE(stream->WindowFull());
  EXPECT_TRUE(stream->CurrentOutcome().ok());
}

TEST(StreamingKsTest, IdenticalWindowHasZeroStatistic) {
  const std::vector<double> ref{1, 2, 3, 4};
  auto stream = StreamingKs::Create(ref, 4, 0.05);
  ASSERT_TRUE(stream.ok());
  for (double v : ref) ASSERT_TRUE(stream->Push(v).ok());
  auto outcome = stream->CurrentOutcome();
  ASSERT_TRUE(outcome.ok());
  EXPECT_DOUBLE_EQ(outcome->statistic, 0.0);
  EXPECT_FALSE(outcome->reject);
}

// The core property: the incremental statistic equals a from-scratch
// ks::Statistic on the current window at every step, across a long random
// stream with duplicates and evictions.
TEST(StreamingKsTest, MatchesBatchStatisticAtEveryStep) {
  Rng rng(77);
  std::vector<double> ref;
  for (int i = 0; i < 60; ++i) {
    ref.push_back(static_cast<double>(rng.Integer(0, 12)));
  }
  const size_t window = 25;
  auto stream = StreamingKs::Create(ref, window, 0.05);
  ASSERT_TRUE(stream.ok());

  std::deque<double> mirror;
  for (int step = 0; step < 400; ++step) {
    // mixture: mostly same support, occasionally shifted (drift)
    const double v = step < 200
                         ? static_cast<double>(rng.Integer(0, 12))
                         : static_cast<double>(rng.Integer(6, 18));
    ASSERT_TRUE(stream->Push(v).ok());
    mirror.push_back(v);
    if (mirror.size() > window) mirror.pop_front();

    if (stream->WindowFull()) {
      auto outcome = stream->CurrentOutcome();
      ASSERT_TRUE(outcome.ok());
      const double expected =
          ks::Statistic(ref, {mirror.begin(), mirror.end()});
      ASSERT_NEAR(outcome->statistic, expected, kTightTol) << "step " << step;
    }
  }
}

TEST(StreamingKsTest, WindowContentsMatchArrivalOrder) {
  auto stream = StreamingKs::Create({5.0, 6.0}, 3, 0.05);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(stream->Push(1.0).ok());
  ASSERT_TRUE(stream->Push(2.0).ok());
  ASSERT_TRUE(stream->Push(3.0).ok());
  EXPECT_EQ(stream->WindowContents(), (std::vector<double>{1, 2, 3}));
  ASSERT_TRUE(stream->Push(4.0).ok());  // evicts 1.0
  EXPECT_EQ(stream->WindowContents(), (std::vector<double>{2, 3, 4}));
}

TEST(StreamingKsTest, WindowContentsIntoReusesBufferAcrossWraparound) {
  auto stream = StreamingKs::Create({5.0, 6.0}, 3, 0.05);
  ASSERT_TRUE(stream.ok());
  std::vector<double> snapshot{99.0, 99.0, 99.0, 99.0};  // stale contents
  stream->WindowContentsInto(&snapshot);
  EXPECT_TRUE(snapshot.empty());
  // Push far past capacity so the ring wraps several times; the reused
  // buffer must always equal the from-scratch WindowContents.
  for (int i = 1; i <= 11; ++i) {
    ASSERT_TRUE(stream->Push(static_cast<double>(i)).ok());
    stream->WindowContentsInto(&snapshot);
    EXPECT_EQ(snapshot, stream->WindowContents()) << "push " << i;
  }
  EXPECT_EQ(snapshot, (std::vector<double>{9, 10, 11}));
}

TEST(StreamingKsTest, DetectsDriftAfterDistributionShift) {
  Rng rng(91);
  std::vector<double> ref;
  for (int i = 0; i < 300; ++i) ref.push_back(rng.Normal(0.0, 1.0));
  const size_t window = 100;
  auto stream = StreamingKs::Create(ref, window, 0.05);
  ASSERT_TRUE(stream.ok());

  // in-distribution phase: fill the window, expect no drift
  for (size_t i = 0; i < window; ++i) {
    ASSERT_TRUE(stream->Push(rng.Normal(0.0, 1.0)).ok());
  }
  EXPECT_FALSE(stream->Drifted());

  // shifted phase: drift must fire once the window fills with N(3,1)
  bool fired = false;
  for (int i = 0; i < 150 && !fired; ++i) {
    ASSERT_TRUE(stream->Push(rng.Normal(3.0, 1.0)).ok());
    fired = stream->Drifted();
  }
  EXPECT_TRUE(fired);
}

TEST(StreamingKsTest, HeavyDuplicateStream) {
  // Only three distinct values; exercises the equal-key paths hard.
  Rng rng(13);
  std::vector<double> ref;
  for (int i = 0; i < 40; ++i) {
    ref.push_back(static_cast<double>(rng.Integer(0, 2)));
  }
  const size_t window = 15;
  auto stream = StreamingKs::Create(ref, window, 0.05);
  ASSERT_TRUE(stream.ok());
  std::deque<double> mirror;
  for (int step = 0; step < 200; ++step) {
    const double v = static_cast<double>(rng.Integer(0, 2));
    ASSERT_TRUE(stream->Push(v).ok());
    mirror.push_back(v);
    if (mirror.size() > window) mirror.pop_front();
    if (stream->WindowFull()) {
      const double expected =
          ks::Statistic(ref, {mirror.begin(), mirror.end()});
      ASSERT_NEAR(stream->CurrentOutcome()->statistic, expected, kTightTol);
    }
  }
}

// Eviction-heavy differential test: thousands of pushes through a full
// window, drawn from a tiny value alphabet so nearly every insert/evict
// hits an equal-key treap path, checked against a from-scratch
// ks::Statistic recompute at every single tick.
TEST(StreamingKsTest, EvictionHeavyDifferentialAgainstBatch) {
  Rng rng(2024);
  std::vector<double> ref;
  for (int i = 0; i < 120; ++i) {
    ref.push_back(static_cast<double>(rng.Integer(0, 6)));
  }
  const size_t window = 40;
  auto stream = StreamingKs::Create(ref, window, 0.05);
  ASSERT_TRUE(stream.ok());

  std::deque<double> mirror;
  for (int step = 0; step < 4000; ++step) {
    // Drifting mixture over a 7-value alphabet: long stretches of heavy
    // duplication, with the support sliding so both treap tails move.
    const int phase = step / 800;
    const double v =
        static_cast<double>(rng.Integer(phase, phase + 4 + (step % 3)));
    ASSERT_TRUE(stream->Push(v).ok());
    mirror.push_back(v);
    if (mirror.size() > window) mirror.pop_front();

    if (stream->WindowFull()) {
      auto outcome = stream->CurrentOutcome();
      ASSERT_TRUE(outcome.ok());
      const double expected =
          ks::Statistic(ref, {mirror.begin(), mirror.end()});
      ASSERT_NEAR(outcome->statistic, expected, kTightTol) << "step " << step;
    }
  }
}

TEST(StreamingKsTest, ThresholdMatchesBatchFormula) {
  auto stream = StreamingKs::Create({1, 2, 3, 4, 5}, 4, 0.1);
  ASSERT_TRUE(stream.ok());
  for (double v : {9.0, 9.0, 9.0, 9.0}) ASSERT_TRUE(stream->Push(v).ok());
  auto outcome = stream->CurrentOutcome();
  ASSERT_TRUE(outcome.ok());
  EXPECT_DOUBLE_EQ(outcome->threshold, *ks::Threshold(0.1, 5, 4));
  EXPECT_TRUE(outcome->reject);  // disjoint supports
  EXPECT_DOUBLE_EQ(outcome->statistic, 1.0);
}

}  // namespace
}  // namespace moche
