#include "timeseries/generators.h"

#include <cmath>

#include <gtest/gtest.h>

#include "timeseries/window.h"

namespace moche {
namespace ts {
namespace {

// Table 1 shapes at full scale.
TEST(GeneratorsTest, Table1SeriesCounts) {
  EXPECT_EQ(MakeAwsDataset(1).series.size(), 17u);
  EXPECT_EQ(MakeAdDataset(1).series.size(), 6u);
  EXPECT_EQ(MakeTrfDataset(1).series.size(), 7u);
  EXPECT_EQ(MakeTwtDataset(1).series.size(), 10u);
  EXPECT_EQ(MakeKcDataset(1).series.size(), 7u);
  EXPECT_EQ(MakeArtDataset(1).series.size(), 6u);
}

TEST(GeneratorsTest, Table1LengthRanges) {
  const Dataset aws = MakeAwsDataset(2);
  EXPECT_EQ(aws.min_length(), 1243u);
  EXPECT_EQ(aws.max_length(), 4700u);
  const Dataset ad = MakeAdDataset(2);
  EXPECT_EQ(ad.min_length(), 1538u);
  EXPECT_EQ(ad.max_length(), 1624u);
  const Dataset trf = MakeTrfDataset(2);
  EXPECT_EQ(trf.min_length(), 1127u);
  EXPECT_EQ(trf.max_length(), 2500u);
  const Dataset twt = MakeTwtDataset(2);
  EXPECT_GE(twt.min_length(), 15831u);
  EXPECT_LE(twt.max_length(), 15902u);
  const Dataset kc = MakeKcDataset(2);
  EXPECT_EQ(kc.min_length(), 1882u);
  EXPECT_EQ(kc.max_length(), 22695u);
  const Dataset art = MakeArtDataset(2);
  EXPECT_EQ(art.min_length(), 4032u);
  EXPECT_EQ(art.max_length(), 4032u);
}

TEST(GeneratorsTest, AllSeriesHaveLabels) {
  for (const Dataset& ds : MakeAllNabLikeDatasets(3, 0.25)) {
    for (const TimeSeries& s : ds.series) {
      EXPECT_TRUE(s.has_labels()) << ds.name << "/" << s.name;
      EXPECT_FALSE(s.name.empty());
    }
  }
}

TEST(GeneratorsTest, MostSeriesContainLabeledAnomalies) {
  size_t with_labels = 0;
  size_t total = 0;
  for (const Dataset& ds : MakeAllNabLikeDatasets(4, 0.25)) {
    for (const TimeSeries& s : ds.series) {
      ++total;
      for (bool b : s.anomaly_labels) {
        if (b) {
          ++with_labels;
          break;
        }
      }
    }
  }
  // the ART control series has no anomalies by design; everything else does
  EXPECT_GE(with_labels + 2, total);
}

TEST(GeneratorsTest, DeterministicForFixedSeed) {
  const Dataset a = MakeAwsDataset(42, 0.25);
  const Dataset b = MakeAwsDataset(42, 0.25);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].values, b.series[i].values);
  }
  const Dataset c = MakeAwsDataset(43, 0.25);
  EXPECT_NE(a.series[0].values, c.series[0].values);
}

TEST(GeneratorsTest, LengthScaleShrinksSeries) {
  const Dataset full = MakeTwtDataset(5, 1.0);
  const Dataset small = MakeTwtDataset(5, 0.05);
  EXPECT_LT(small.max_length(), full.max_length() / 4);
  EXPECT_GE(small.min_length(), 280u);  // floor keeps windows viable
}

// The whole point of the generators: sliding-window KS tests must fail
// somewhere in every family, or there is nothing to explain.
TEST(GeneratorsTest, EveryFamilyProducesFailedWindowTests) {
  for (const Dataset& ds : MakeAllNabLikeDatasets(6, 0.25)) {
    size_t failed_total = 0;
    for (const TimeSeries& s : ds.series) {
      WindowSweepOptions opt;
      opt.window = 100;
      auto failed = FailedWindowTests(s, opt);
      if (failed.ok()) failed_total += failed->size();
    }
    EXPECT_GT(failed_total, 0u) << "dataset " << ds.name;
  }
}

TEST(GeneratorsTest, ValuesAreFinite) {
  for (const Dataset& ds : MakeAllNabLikeDatasets(7, 0.25)) {
    for (const TimeSeries& s : ds.series) {
      for (double v : s.values) {
        ASSERT_TRUE(std::isfinite(v)) << ds.name << "/" << s.name;
      }
    }
  }
}

TEST(GeneratorsTest, NonNegativeFamiliesStayNonNegative) {
  // counts and utilizations cannot be negative
  for (const TimeSeries& s : MakeTwtDataset(8, 0.25).series) {
    for (double v : s.values) ASSERT_GE(v, 0.0) << s.name;
  }
}

TEST(DriftScenarioTest, ShapesAndGroundTruth) {
  for (DriftKind kind :
       {DriftKind::kMeanShift, DriftKind::kVarianceInflation,
        DriftKind::kTransientSpike}) {
    const DriftScenario sc = MakeDriftScenario(kind, 11, 200, 800);
    EXPECT_EQ(sc.kind, kind);
    EXPECT_EQ(sc.reference.size(), 200u);
    EXPECT_EQ(sc.observations.size(), 800u);
    EXPECT_EQ(sc.drift_begin, 400u);
    if (kind == DriftKind::kTransientSpike) {
      EXPECT_EQ(sc.drift_end, 400u + 100u);  // length / 8
    } else {
      EXPECT_EQ(sc.drift_end, 800u);
    }
    for (double v : sc.reference) ASSERT_TRUE(std::isfinite(v));
    for (double v : sc.observations) ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(DriftScenarioTest, DriftActuallyShiftsTheDistribution) {
  const DriftScenario sc =
      MakeDriftScenario(DriftKind::kMeanShift, 12, 400, 1000);
  double pre = 0.0;
  double post = 0.0;
  for (size_t t = 0; t < sc.drift_begin; ++t) pre += sc.observations[t];
  for (size_t t = sc.drift_begin; t < sc.drift_end; ++t) {
    post += sc.observations[t];
  }
  pre /= static_cast<double>(sc.drift_begin);
  post /= static_cast<double>(sc.drift_end - sc.drift_begin);
  EXPECT_NEAR(pre, 0.0, 0.25);
  EXPECT_NEAR(post, 1.5, 0.25);
}

TEST(DriftScenarioTest, DeterministicInSeedAndCyclesKinds) {
  const auto a = MakeDriftScenarioSuite(6, 21, 100, 300);
  const auto b = MakeDriftScenarioSuite(6, 21, 100, 300);
  ASSERT_EQ(a.size(), 6u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].observations, b[i].observations) << i;
    EXPECT_EQ(a[i].reference, b[i].reference) << i;
  }
  EXPECT_EQ(a[0].kind, DriftKind::kMeanShift);
  EXPECT_EQ(a[1].kind, DriftKind::kVarianceInflation);
  EXPECT_EQ(a[2].kind, DriftKind::kTransientSpike);
  EXPECT_EQ(a[3].kind, DriftKind::kMeanShift);
  // Distinct derived seeds: same kind, different draws.
  EXPECT_NE(a[0].observations, a[3].observations);
}

}  // namespace
}  // namespace ts
}  // namespace moche
