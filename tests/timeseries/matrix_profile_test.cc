#include "timeseries/matrix_profile.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace moche {
namespace ts {
namespace {

TEST(MatrixProfileTest, ValidatesInputs) {
  EXPECT_FALSE(StompAbJoin({1, 2, 3}, {1, 2, 3}, 1).ok());
  EXPECT_FALSE(StompAbJoin({1, 2}, {1, 2, 3}, 3).ok());
  EXPECT_FALSE(StompAbJoin({1, 2, 3}, {1}, 2).ok());
  EXPECT_TRUE(StompAbJoin({1, 2, 3}, {1, 2, 3}, 2).ok());
}

TEST(MatrixProfileTest, IdenticalSeriesGiveZeroProfile) {
  Rng rng(1);
  std::vector<double> x(60);
  for (double& v : x) v = rng.Normal();
  auto profile = StompAbJoin(x, x, 8);
  ASSERT_TRUE(profile.ok());
  for (size_t i = 0; i < profile->distances.size(); ++i) {
    EXPECT_NEAR(profile->distances[i], 0.0, 1e-6) << "i=" << i;
    EXPECT_EQ(profile->nearest_index[i], i);
  }
}

TEST(MatrixProfileTest, StompMatchesBruteForce) {
  Rng rng(2);
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<double> q(40 + static_cast<size_t>(rng.Integer(0, 30)));
    std::vector<double> n(50 + static_cast<size_t>(rng.Integer(0, 30)));
    for (double& v : q) v = rng.Normal();
    for (double& v : n) v = rng.Normal();
    const size_t sub = 5 + static_cast<size_t>(rng.Integer(0, 7));
    auto fast = StompAbJoin(q, n, sub);
    auto slow = BruteForceAbJoin(q, n, sub);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    ASSERT_EQ(fast->distances.size(), slow->distances.size());
    for (size_t i = 0; i < fast->distances.size(); ++i) {
      EXPECT_NEAR(fast->distances[i], slow->distances[i], 1e-7)
          << "rep=" << rep << " i=" << i;
    }
  }
}

TEST(MatrixProfileTest, ZNormalizationIgnoresOffsetAndScale) {
  Rng rng(3);
  std::vector<double> base(80);
  for (double& v : base) v = rng.Normal();
  std::vector<double> scaled(base.size());
  for (size_t i = 0; i < base.size(); ++i) scaled[i] = 3.0 * base[i] + 100.0;
  auto profile = StompAbJoin(scaled, base, 10);
  ASSERT_TRUE(profile.ok());
  // the +100 offset costs ~4 digits to cancellation in dot - w*mu*mu
  for (double d : profile->distances) EXPECT_NEAR(d, 0.0, 2e-4);
}

TEST(MatrixProfileTest, AnomalousShapeHasLargestDistance) {
  // periodic reference; query = same pattern with one distorted cycle
  const size_t period = 16;
  auto wave = [&](size_t t) {
    return std::sin(2.0 * 3.14159265 * static_cast<double>(t) /
                    static_cast<double>(period));
  };
  std::vector<double> reference(160);
  for (size_t t = 0; t < reference.size(); ++t) reference[t] = wave(t);
  std::vector<double> query(160);
  for (size_t t = 0; t < query.size(); ++t) query[t] = wave(t);
  for (size_t t = 80; t < 80 + period; ++t) {
    query[t] = wave(t) * 0.1 + ((t % 2 == 0) ? 1.2 : -1.2);  // jagged cycle
  }
  auto profile = StompAbJoin(query, reference, period);
  ASSERT_TRUE(profile.ok());
  const size_t argmax = static_cast<size_t>(
      std::max_element(profile->distances.begin(), profile->distances.end()) -
      profile->distances.begin());
  EXPECT_GE(argmax + period, 80u);
  EXPECT_LT(argmax, 80u + period);
}

TEST(MatrixProfileTest, ConstantSubsequenceConventions) {
  // query has a constant stretch, reference is non-constant
  std::vector<double> query{5, 5, 5, 5, 5, 1, 2, 3};
  std::vector<double> reference{1, 2, 3, 4, 3, 2, 1, 0};
  auto profile = StompAbJoin(query, reference, 4);
  ASSERT_TRUE(profile.ok());
  // first subsequence of query is constant -> distance sqrt(4) = 2
  EXPECT_NEAR(profile->distances[0], 2.0, 1e-9);
}

TEST(MatrixProfileTest, BothConstantIsZero) {
  std::vector<double> query{7, 7, 7, 7, 7};
  std::vector<double> reference{3, 3, 3, 3, 3};
  auto profile = StompAbJoin(query, reference, 3);
  ASSERT_TRUE(profile.ok());
  for (double d : profile->distances) EXPECT_DOUBLE_EQ(d, 0.0);
}

}  // namespace
}  // namespace ts
}  // namespace moche
