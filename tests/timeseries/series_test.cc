#include "timeseries/series.h"

#include <gtest/gtest.h>

namespace moche {
namespace ts {
namespace {

TEST(TimeSeriesTest, LengthAndLabelPresence) {
  TimeSeries s;
  s.values = {1, 2, 3};
  EXPECT_EQ(s.length(), 3u);
  EXPECT_FALSE(s.has_labels());
  s.anomaly_labels = {false, true, false};
  EXPECT_TRUE(s.has_labels());
  s.anomaly_labels.pop_back();  // mismatched length is "no labels"
  EXPECT_FALSE(s.has_labels());
}

TEST(DatasetTest, MinMaxLength) {
  Dataset ds;
  ds.series.push_back({"a", {1, 2, 3}, {}});
  ds.series.push_back({"b", {1, 2, 3, 4, 5}, {}});
  ds.series.push_back({"c", {1}, {}});
  EXPECT_EQ(ds.min_length(), 1u);
  EXPECT_EQ(ds.max_length(), 5u);
}

TEST(DatasetTest, EmptyDataset) {
  Dataset ds;
  EXPECT_EQ(ds.min_length(), 0u);
  EXPECT_EQ(ds.max_length(), 0u);
}

}  // namespace
}  // namespace ts
}  // namespace moche
