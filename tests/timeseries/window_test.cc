#include "timeseries/window.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace moche {
namespace ts {
namespace {

TimeSeries MakeShiftSeries(size_t n, size_t shift_at, double delta,
                           uint64_t seed) {
  Rng rng(seed);
  TimeSeries s;
  s.name = "shift";
  s.values.resize(n);
  s.anomaly_labels.assign(n, false);
  for (size_t t = 0; t < n; ++t) {
    s.values[t] = rng.Normal(t >= shift_at ? delta : 0.0, 1.0);
  }
  for (size_t t = shift_at; t < std::min(n, shift_at + 5); ++t) {
    s.anomaly_labels[t] = true;
  }
  return s;
}

TEST(SweepWindowsTest, TumblingWindowCount) {
  const TimeSeries s = MakeShiftSeries(1000, 500, 3.0, 1);
  WindowSweepOptions opt;
  opt.window = 100;
  auto tests = SweepWindows(s, opt);
  ASSERT_TRUE(tests.ok());
  // pairs start at 0, 100, ..., 800 -> 9 pairs
  EXPECT_EQ(tests->size(), 9u);
  EXPECT_EQ((*tests)[0].ref_begin, 0u);
  EXPECT_EQ((*tests)[0].test_begin, 100u);
  EXPECT_EQ((*tests)[8].ref_begin, 800u);
}

TEST(SweepWindowsTest, CustomStep) {
  const TimeSeries s = MakeShiftSeries(400, 200, 3.0, 2);
  WindowSweepOptions opt;
  opt.window = 100;
  opt.step = 50;
  auto tests = SweepWindows(s, opt);
  ASSERT_TRUE(tests.ok());
  // begins at 0, 50, 100, 150, 200 -> 5 pairs
  EXPECT_EQ(tests->size(), 5u);
}

TEST(SweepWindowsTest, TooShortSeriesRejected) {
  TimeSeries s;
  s.values.assign(150, 0.0);
  WindowSweepOptions opt;
  opt.window = 100;
  EXPECT_FALSE(SweepWindows(s, opt).ok());
  opt.window = 0;
  EXPECT_FALSE(SweepWindows(s, opt).ok());
}

TEST(FailedWindowTestsTest, ShiftCausesFailure) {
  const TimeSeries s = MakeShiftSeries(1000, 500, 4.0, 3);
  WindowSweepOptions opt;
  opt.window = 100;
  auto failed = FailedWindowTests(s, opt);
  ASSERT_TRUE(failed.ok());
  ASSERT_FALSE(failed->empty());
  // the pair straddling the shift (ref [400,500), test [500,600)) must fail
  bool found_straddle = false;
  for (const WindowTest& wt : *failed) {
    EXPECT_TRUE(wt.outcome.reject);
    if (wt.test_begin == 500) found_straddle = true;
  }
  EXPECT_TRUE(found_straddle);
}

TEST(FailedWindowTestsTest, StationarySeriesRarelyFails) {
  const TimeSeries s = MakeShiftSeries(2000, 2000, 0.0, 4);  // no shift
  WindowSweepOptions opt;
  opt.window = 200;
  auto all = SweepWindows(s, opt);
  auto failed = FailedWindowTests(s, opt);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(failed.ok());
  EXPECT_LT(failed->size(), all->size() / 2 + 1);
}

TEST(MakeInstanceTest, CopiesWindowsInTemporalOrder) {
  TimeSeries s;
  for (int i = 0; i < 12; ++i) s.values.push_back(i);
  WindowTest wt;
  wt.ref_begin = 2;
  wt.test_begin = 6;
  wt.window = 4;
  const KsInstance inst = MakeInstance(s, wt, 0.05);
  EXPECT_EQ(inst.reference, (std::vector<double>{2, 3, 4, 5}));
  EXPECT_EQ(inst.test, (std::vector<double>{6, 7, 8, 9}));
  EXPECT_DOUBLE_EQ(inst.alpha, 0.05);
}

TEST(LabeledAnomalyTest, DetectsOverlap) {
  TimeSeries s = MakeShiftSeries(300, 150, 3.0, 5);
  WindowTest wt;
  wt.window = 50;
  wt.ref_begin = 100;
  wt.test_begin = 150;  // labels at [150, 155)
  EXPECT_TRUE(TestWindowHasLabeledAnomaly(s, wt));
  wt.ref_begin = 0;
  wt.test_begin = 50;
  EXPECT_FALSE(TestWindowHasLabeledAnomaly(s, wt));
}

TEST(LabeledAnomalyTest, NoLabelsMeansFalse) {
  TimeSeries s;
  s.values.assign(100, 0.0);
  WindowTest wt;
  wt.window = 10;
  wt.test_begin = 20;
  EXPECT_FALSE(TestWindowHasLabeledAnomaly(s, wt));
}

}  // namespace
}  // namespace ts
}  // namespace moche
