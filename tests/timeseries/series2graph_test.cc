#include "timeseries/series2graph.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace moche {
namespace ts {
namespace {

std::vector<double> PeriodicSeries(size_t n, size_t period, double noise,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (size_t t = 0; t < n; ++t) {
    x[t] = std::sin(2.0 * 3.14159265 * static_cast<double>(t) /
                    static_cast<double>(period)) +
           rng.Normal(0.0, noise);
  }
  return x;
}

TEST(Series2GraphTest, ValidatesOptions) {
  const std::vector<double> train = PeriodicSeries(300, 25, 0.05, 1);
  Series2GraphOptions opt;
  opt.pattern_length = 2;
  EXPECT_FALSE(Series2Graph::Fit(train, opt).ok());
  opt.pattern_length = 25;
  opt.num_sectors = 2;
  EXPECT_FALSE(Series2Graph::Fit(train, opt).ok());
  opt.num_sectors = 36;
  EXPECT_TRUE(Series2Graph::Fit(train, opt).ok());
}

TEST(Series2GraphTest, RejectsTooShortTraining) {
  Series2GraphOptions opt;
  opt.pattern_length = 50;
  EXPECT_FALSE(Series2Graph::Fit({1.0, 2.0, 3.0}, opt).ok());
}

TEST(Series2GraphTest, ScoresHaveExpectedLength) {
  const std::vector<double> train = PeriodicSeries(400, 25, 0.05, 2);
  const std::vector<double> query = PeriodicSeries(200, 25, 0.05, 3);
  Series2GraphOptions opt;
  opt.pattern_length = 25;
  auto graph = Series2Graph::Fit(train, opt);
  ASSERT_TRUE(graph.ok());
  auto scores = graph->AnomalyScores(query);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), query.size() - opt.pattern_length + 1);
}

TEST(Series2GraphTest, GraphHasEdges) {
  const std::vector<double> train = PeriodicSeries(500, 25, 0.05, 4);
  Series2GraphOptions opt;
  opt.pattern_length = 25;
  auto graph = Series2Graph::Fit(train, opt);
  ASSERT_TRUE(graph.ok());
  EXPECT_GT(graph->num_edges(), 0u);
}

TEST(Series2GraphTest, ImplantedAnomalyScoresAboveNormal) {
  const size_t period = 25;
  const std::vector<double> train = PeriodicSeries(600, period, 0.03, 5);
  std::vector<double> query = PeriodicSeries(300, period, 0.03, 6);
  // distort one cycle into a flat segment with spikes
  for (size_t t = 150; t < 150 + period; ++t) {
    query[t] = (t % 3 == 0) ? 2.5 : 0.0;
  }
  Series2GraphOptions opt;
  opt.pattern_length = period;
  auto graph = Series2Graph::Fit(train, opt);
  ASSERT_TRUE(graph.ok());
  auto scores = graph->AnomalyScores(query);
  ASSERT_TRUE(scores.ok());

  // the most anomalous subsequence should overlap the implant
  const size_t argmax = static_cast<size_t>(
      std::max_element(scores->begin(), scores->end()) - scores->begin());
  EXPECT_GE(argmax + period, 150u);
  EXPECT_LT(argmax, 150u + period);
}

TEST(Series2GraphTest, NormalQueryScoresLowerThanAnomalous) {
  const size_t period = 20;
  const std::vector<double> train = PeriodicSeries(600, period, 0.03, 7);
  const std::vector<double> normal = PeriodicSeries(200, period, 0.03, 8);
  std::vector<double> anomalous = PeriodicSeries(200, period, 0.03, 9);
  Rng rng(10);
  for (size_t t = 90; t < 90 + period; ++t) anomalous[t] = rng.Uniform(-3, 3);

  Series2GraphOptions opt;
  opt.pattern_length = period;
  auto graph = Series2Graph::Fit(train, opt);
  ASSERT_TRUE(graph.ok());
  auto s_normal = graph->AnomalyScores(normal);
  auto s_anom = graph->AnomalyScores(anomalous);
  ASSERT_TRUE(s_normal.ok());
  ASSERT_TRUE(s_anom.ok());
  const double max_normal =
      *std::max_element(s_normal->begin(), s_normal->end());
  const double max_anom = *std::max_element(s_anom->begin(), s_anom->end());
  EXPECT_GT(max_anom, max_normal * 0.99);
}

TEST(Series2GraphTest, DeterministicScores) {
  const std::vector<double> train = PeriodicSeries(400, 25, 0.05, 11);
  const std::vector<double> query = PeriodicSeries(150, 25, 0.05, 12);
  Series2GraphOptions opt;
  opt.pattern_length = 25;
  auto g1 = Series2Graph::Fit(train, opt);
  auto g2 = Series2Graph::Fit(train, opt);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  auto s1 = g1->AnomalyScores(query);
  auto s2 = g2->AnomalyScores(query);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s1, *s2);
}

}  // namespace
}  // namespace ts
}  // namespace moche
