#include "density/empirical_pmf.h"

#include <limits>

#include <gtest/gtest.h>

namespace moche {
namespace density {
namespace {

TEST(EmpiricalPmfTest, RejectsEmptySample) {
  EXPECT_FALSE(EmpiricalPmf::Fit({}).ok());
}

TEST(EmpiricalPmfTest, RejectsNonFiniteSample) {
  // Regression: Fit used to sort an unscreened sample — UB with NaN.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(density::EmpiricalPmf::Fit({1.0, nan}).ok());
  EXPECT_FALSE(
      density::EmpiricalPmf::Fit({std::numeric_limits<double>::infinity()})
          .ok());
}

TEST(EmpiricalPmfTest, RelativeFrequencies) {
  auto pmf = EmpiricalPmf::Fit({1, 1, 2, 3, 3, 3});
  ASSERT_TRUE(pmf.ok());
  EXPECT_DOUBLE_EQ(pmf->Evaluate(1), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(pmf->Evaluate(2), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(pmf->Evaluate(3), 3.0 / 6.0);
  EXPECT_EQ(pmf->support_size(), 3u);
}

TEST(EmpiricalPmfTest, UnseenValueHasZeroMass) {
  auto pmf = EmpiricalPmf::Fit({1, 2});
  ASSERT_TRUE(pmf.ok());
  EXPECT_DOUBLE_EQ(pmf->Evaluate(5), 0.0);
  EXPECT_DOUBLE_EQ(pmf->Evaluate(1.5), 0.0);
}

TEST(EmpiricalPmfTest, MassSumsToOne) {
  auto pmf = EmpiricalPmf::Fit({4, 7, 7, 9, 9, 9, 9});
  ASSERT_TRUE(pmf.ok());
  EXPECT_DOUBLE_EQ(pmf->Evaluate(4) + pmf->Evaluate(7) + pmf->Evaluate(9),
                   1.0);
}

TEST(EmpiricalPmfTest, SingletonSample) {
  auto pmf = EmpiricalPmf::Fit({42});
  ASSERT_TRUE(pmf.ok());
  EXPECT_DOUBLE_EQ(pmf->Evaluate(42), 1.0);
  EXPECT_EQ(pmf->support_size(), 1u);
}

}  // namespace
}  // namespace density
}  // namespace moche
