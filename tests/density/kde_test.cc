#include "density/kde.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"

namespace moche {
namespace density {
namespace {

TEST(KdeTest, RejectsEmptySample) {
  EXPECT_FALSE(Kde::Fit({}).ok());
}

TEST(KdeTest, RejectsNonPositiveFixedBandwidth) {
  KdeOptions opt;
  opt.bandwidth_rule = BandwidthRule::kFixed;
  opt.fixed_bandwidth = 0.0;
  EXPECT_FALSE(Kde::Fit({1.0, 2.0}, opt).ok());
}

TEST(KdeTest, SilvermanBandwidthFormula) {
  Rng rng(1);
  std::vector<double> sample(200);
  for (double& v : sample) v = rng.Normal(0, 2.0);
  auto kde = Kde::Fit(sample);
  ASSERT_TRUE(kde.ok());
  // Silverman's rule of thumb: 0.9 * min(sigma, IQR/1.34) * n^(-1/5),
  // computed from the sample itself so the check is exact.
  const double sigma = StdDev(sample);
  const double iqr = Quantile(sample, 0.75) - Quantile(sample, 0.25);
  const double expected =
      0.9 * std::min(sigma, iqr / 1.34) * std::pow(200.0, -0.2);
  EXPECT_DOUBLE_EQ(kde->bandwidth(), expected);
}

TEST(KdeTest, ScottBandwidthIsGaussianReference) {
  Rng rng(8);
  std::vector<double> sample(150);
  for (double& v : sample) v = rng.Normal(0, 1.0);
  KdeOptions opt;
  opt.bandwidth_rule = BandwidthRule::kScott;
  auto kde = Kde::Fit(sample, opt);
  ASSERT_TRUE(kde.ok());
  EXPECT_DOUBLE_EQ(kde->bandwidth(),
                   1.06 * StdDev(sample) * std::pow(150.0, -0.2));
}

TEST(KdeTest, SilvermanRobustToOutliers) {
  // Heavy contamination: sigma explodes, the IQR barely moves. The robust
  // rule must follow the IQR, not sigma.
  const std::vector<double> sample{0, 0, 0, 0, 1, 1, 1, 1, 100};
  auto kde = Kde::Fit(sample);
  ASSERT_TRUE(kde.ok());
  const double iqr = Quantile(sample, 0.75) - Quantile(sample, 0.25);  // 1
  ASSERT_LT(iqr / 1.34, StdDev(sample));
  EXPECT_DOUBLE_EQ(kde->bandwidth(),
                   0.9 * (iqr / 1.34) * std::pow(9.0, -0.2));
}

TEST(KdeTest, SilvermanDiffersFromGaussianReferenceOnBimodal) {
  // Regression for the rule mix-up: kSilverman used to compute the
  // Gaussian-reference 1.06 * sigma rule. On a bimodal sample the two must
  // disagree (Silverman caps at 0.9 * sigma even when the IQR is wide).
  Rng rng(9);
  std::vector<double> sample;
  for (int i = 0; i < 100; ++i) sample.push_back(rng.Normal(-5.0, 1.0));
  for (int i = 0; i < 100; ++i) sample.push_back(rng.Normal(5.0, 1.0));
  KdeOptions scott;
  scott.bandwidth_rule = BandwidthRule::kScott;
  auto silverman = Kde::Fit(sample);
  auto reference = Kde::Fit(sample, scott);
  ASSERT_TRUE(silverman.ok());
  ASSERT_TRUE(reference.ok());
  EXPECT_NE(silverman->bandwidth(), reference->bandwidth());
  EXPECT_LT(silverman->bandwidth(), reference->bandwidth());
}

TEST(KdeTest, RejectsNonFiniteSample) {
  EXPECT_FALSE(Kde::Fit({1.0, NAN}).ok());
  EXPECT_FALSE(Kde::Fit({1.0, INFINITY}).ok());
}

TEST(KdeTest, DensityIntegratesToOne) {
  Rng rng(2);
  std::vector<double> sample(300);
  for (double& v : sample) v = rng.Normal(1.0, 1.0);
  for (Kernel kernel : {Kernel::kGaussian, Kernel::kEpanechnikov}) {
    KdeOptions opt;
    opt.kernel = kernel;
    auto kde = Kde::Fit(sample, opt);
    ASSERT_TRUE(kde.ok());
    // trapezoidal integration over a wide support
    double integral = 0.0;
    const double lo = -6.0;
    const double hi = 8.0;
    const int steps = 2000;
    const double dx = (hi - lo) / steps;
    double prev = kde->Evaluate(lo);
    for (int i = 1; i <= steps; ++i) {
      const double cur = kde->Evaluate(lo + i * dx);
      integral += 0.5 * (prev + cur) * dx;
      prev = cur;
    }
    EXPECT_NEAR(integral, 1.0, 0.01) << "kernel " << static_cast<int>(kernel);
  }
}

TEST(KdeTest, PeaksNearTheMode) {
  Rng rng(3);
  std::vector<double> sample(500);
  for (double& v : sample) v = rng.Normal(5.0, 0.5);
  auto kde = Kde::Fit(sample);
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->Evaluate(5.0), kde->Evaluate(3.0));
  EXPECT_GT(kde->Evaluate(5.0), kde->Evaluate(7.0));
}

TEST(KdeTest, EpanechnikovHasCompactSupport) {
  KdeOptions opt;
  opt.kernel = Kernel::kEpanechnikov;
  opt.bandwidth_rule = BandwidthRule::kFixed;
  opt.fixed_bandwidth = 1.0;
  auto kde = Kde::Fit({0.0}, opt);
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->Evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(kde->Evaluate(1.5), 0.0);
  EXPECT_DOUBLE_EQ(kde->Evaluate(-2.0), 0.0);
}

TEST(KdeTest, GaussianKernelValueAtCenter) {
  KdeOptions opt;
  opt.kernel = Kernel::kGaussian;
  opt.bandwidth_rule = BandwidthRule::kFixed;
  opt.fixed_bandwidth = 1.0;
  auto kde = Kde::Fit({0.0}, opt);
  ASSERT_TRUE(kde.ok());
  EXPECT_NEAR(kde->Evaluate(0.0), 0.3989422804, 1e-9);
}

TEST(KdeTest, ConstantSampleFallsBackToUnitBandwidth) {
  auto kde = Kde::Fit({3.0, 3.0, 3.0});
  ASSERT_TRUE(kde.ok());
  EXPECT_DOUBLE_EQ(kde->bandwidth(), 1.0);
  EXPECT_GT(kde->Evaluate(3.0), 0.0);
}

TEST(KdeTest, EvaluateAllMatchesPointwise) {
  auto kde = Kde::Fit({1.0, 2.0, 3.0});
  ASSERT_TRUE(kde.ok());
  const std::vector<double> xs{0.5, 1.5, 2.5};
  const std::vector<double> all = kde->EvaluateAll(xs);
  ASSERT_EQ(all.size(), 3u);
  for (size_t i = 0; i < xs.size(); ++i) {
    EXPECT_DOUBLE_EQ(all[i], kde->Evaluate(xs[i]));
  }
}

TEST(KdeTest, ScottVsSilvermanDiffer) {
  Rng rng(4);
  std::vector<double> sample(100);
  for (double& v : sample) v = rng.Normal();
  KdeOptions scott;
  scott.bandwidth_rule = BandwidthRule::kScott;
  auto a = Kde::Fit(sample);
  auto b = Kde::Fit(sample, scott);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Silverman's 0.9 * min(sigma, IQR/1.34) sits below the 1.06 * sigma
  // Gaussian-reference rule.
  EXPECT_LT(a->bandwidth(), b->bandwidth());
}

}  // namespace
}  // namespace density
}  // namespace moche
