#include "runner.h"

#include <clocale>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace moche {
namespace bench {
namespace {

BenchResult MakeValid() {
  BenchResult r;
  r.bench = "micro_core";
  r.metric = "theorem1_check.w10000.median";
  r.value = 1.25e-05;
  r.unit = "s/op";
  r.threads = 4;
  r.samples = 7;
  r.isa = "avx2";
  r.commit = "abc1234";
  return r;
}

TEST(BenchResultSchema, ValidRecordPasses) {
  EXPECT_TRUE(ValidateBenchResult(MakeValid()).ok());
}

TEST(BenchResultSchema, GoldenJsonShape) {
  // The on-disk schema is a contract with CI tooling; this is the exact
  // serialized form of a known record.
  EXPECT_EQ(ToJson(MakeValid()),
            "{\"bench\": \"micro_core\", "
            "\"metric\": \"theorem1_check.w10000.median\", "
            "\"value\": 1.2500000000000001e-05, \"unit\": \"s/op\", "
            "\"threads\": 4, \"samples\": 7, \"isa\": \"avx2\", "
            "\"commit\": \"abc1234\"}");
}

TEST(BenchResultSchema, RoundTripsThroughJson) {
  const BenchResult original = MakeValid();
  const auto parsed = FromJson(ToJson(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->bench, original.bench);
  EXPECT_EQ(parsed->metric, original.metric);
  EXPECT_EQ(parsed->value, original.value);  // %.17g is round-trip exact
  EXPECT_EQ(parsed->unit, original.unit);
  EXPECT_EQ(parsed->threads, original.threads);
  EXPECT_EQ(parsed->samples, original.samples);
  EXPECT_EQ(parsed->isa, original.isa);
  EXPECT_EQ(parsed->commit, original.commit);
}

TEST(BenchResultSchema, IsaKeyIsOptionalForPreSimdFiles) {
  // Records written before the "isa" key existed must keep parsing; the
  // field reads back as the sentinel "unknown", never as empty.
  const auto parsed =
      FromJson("{\"bench\": \"b\", \"metric\": \"m\", \"unit\": \"s\", "
               "\"value\": 1, \"threads\": 1, \"samples\": 1, "
               "\"commit\": \"c\"}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->isa, "unknown");
  // Present-but-duplicated is still an error.
  EXPECT_TRUE(FromJson("{\"bench\": \"b\", \"metric\": \"m\", "
                       "\"unit\": \"s\", \"value\": 1, \"threads\": 1, "
                       "\"samples\": 1, \"isa\": \"avx2\", "
                       "\"isa\": \"scalar\", \"commit\": \"c\"}")
                  .status()
                  .IsInvalidArgument());
}

// The locale regression this schema survived: under a comma-decimal
// LC_NUMERIC, the old "%.17g"/strtod pair wrote "1,25e-05" and silently
// mis-parsed dotted values — BENCH files written on one machine did not
// parse on another. ToJson/FromJson now route through std::to_chars /
// std::from_chars and must be byte-identical in any locale.
TEST(BenchResultSchema, JsonIsLocaleIndependent) {
  const std::string previous = std::setlocale(LC_NUMERIC, nullptr);
  bool comma_locale = false;
  for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8",
                           "fr_FR.utf8", "de_DE", "fr_FR"}) {
    if (std::setlocale(LC_NUMERIC, name) != nullptr) {
      comma_locale = true;
      break;
    }
  }
  const std::string json = ToJson(MakeValid());
  const auto parsed = FromJson(json);
  std::setlocale(LC_NUMERIC, previous.c_str());
  if (!comma_locale) {
    GTEST_SKIP() << "no comma-decimal locale installed on this host";
  }
  EXPECT_EQ(json.find(','), json.find(", "));  // separators only, no "1,25"
  EXPECT_NE(json.find("1.2500000000000001e-05"), std::string::npos) << json;
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->value, MakeValid().value);
}

TEST(BenchResultSchema, RoundTripsEscapedStringsAndExtremeValues) {
  BenchResult r = MakeValid();
  r.metric = "weird \"quoted\"\\path\n\ttab";
  r.value = -std::numeric_limits<double>::min();
  const auto parsed = FromJson(ToJson(r));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->metric, r.metric);
  EXPECT_EQ(parsed->value, r.value);
}

TEST(BenchResultSchema, RejectsMissingMetric) {
  BenchResult r = MakeValid();
  r.metric.clear();
  EXPECT_TRUE(ValidateBenchResult(r).IsInvalidArgument());
  // A serialized record without the metric key is rejected at parse time.
  EXPECT_TRUE(FromJson("{\"bench\": \"b\", \"value\": 1, \"unit\": \"s\", "
                       "\"threads\": 1, \"samples\": 1, \"commit\": \"c\"}")
                  .status()
                  .IsInvalidArgument());
}

TEST(BenchResultSchema, ParserRejectsDuplicateKeys) {
  EXPECT_TRUE(FromJson("{\"bench\": \"b\", \"metric\": \"m\", "
                       "\"unit\": \"s\", \"value\": 1, \"value\": 0, "
                       "\"threads\": 1, \"samples\": 1, \"commit\": \"c\"}")
                  .status()
                  .IsInvalidArgument());
}

TEST(BenchResultSchema, ParserRequiresEveryKey) {
  // A truncated record must not parse into plausible defaults (a dropped
  // "value" would read as 0.0 s/op — an infinite speedup).
  EXPECT_TRUE(FromJson("{\"bench\": \"b\", \"metric\": \"m\", "
                       "\"unit\": \"s\", \"threads\": 1, \"samples\": 1, "
                       "\"commit\": \"c\"}")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(FromJson("{\"bench\": \"b\", \"metric\": \"m\", "
                       "\"unit\": \"s\", \"value\": 1, \"samples\": 1, "
                       "\"commit\": \"c\"}")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(FromJson("{\"bench\": \"b\", \"metric\": \"m\", "
                       "\"unit\": \"s\", \"value\": 1, \"threads\": 1, "
                       "\"samples\": 1}")
                  .status()
                  .IsInvalidArgument());
}

TEST(BenchResultSchema, RejectsNonFiniteValue) {
  BenchResult r = MakeValid();
  r.value = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(ValidateBenchResult(r).IsInvalidArgument());
  r.value = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(ValidateBenchResult(r).IsInvalidArgument());
}

TEST(BenchResultSchema, RejectsEmptyUnitBenchZeroSamplesOrThreads) {
  BenchResult r = MakeValid();
  r.unit.clear();
  EXPECT_TRUE(ValidateBenchResult(r).IsInvalidArgument());
  r = MakeValid();
  r.bench.clear();
  EXPECT_TRUE(ValidateBenchResult(r).IsInvalidArgument());
  r = MakeValid();
  r.samples = 0;
  EXPECT_TRUE(ValidateBenchResult(r).IsInvalidArgument());
  r = MakeValid();
  r.threads = 0;
  EXPECT_TRUE(ValidateBenchResult(r).IsInvalidArgument());
}

TEST(BenchResultSchema, ParserRejectsMalformedJson) {
  EXPECT_FALSE(FromJson("").ok());
  EXPECT_FALSE(FromJson("{").ok());
  EXPECT_FALSE(FromJson("[]").ok());
  EXPECT_FALSE(FromJson("{\"metric\": }").ok());
  EXPECT_FALSE(FromJson(ToJson(MakeValid()) + "garbage").ok());
  // Unknown keys are schema violations, not silently dropped.
  EXPECT_FALSE(
      FromJson("{\"metric\": \"m\", \"bench\": \"b\", \"unit\": \"s\", "
               "\"value\": 1, \"threads\": 1, \"samples\": 1, "
               "\"commit\": \"c\", \"extra\": 3}")
          .ok());
  // A schema-invalid value is caught even when the JSON itself is fine.
  EXPECT_FALSE(
      FromJson("{\"metric\": \"m\", \"bench\": \"b\", \"unit\": \"s\", "
               "\"value\": 1, \"threads\": 0, \"samples\": 1, "
               "\"commit\": \"c\"}")
          .ok());
}

// Hostile-input hardening: each rejection path added for artifact-store /
// hand-edited BENCH files, one test per path (the bench_json fuzz target
// covers the combinatorial space).

std::string RecordWith(const std::string& threads,
                       const std::string& samples) {
  return "{\"bench\": \"b\", \"metric\": \"m\", \"value\": 1, "
         "\"unit\": \"s\", \"threads\": " + threads +
         ", \"samples\": " + samples + ", \"commit\": \"c\"}";
}

TEST(BenchResultSchema, RejectsNegativeCounts) {
  // Casting a negative double straight to size_t is UB; the parser must
  // reject, not wrap to 2^64-3 (fuzz/corpus/bench_json_fuzz holds the
  // reproducer that caught this).
  EXPECT_FALSE(FromJson(RecordWith("-3", "1")).ok());
  EXPECT_FALSE(FromJson(RecordWith("1", "-1")).ok());
}

TEST(BenchResultSchema, RejectsFractionalCounts) {
  EXPECT_FALSE(FromJson(RecordWith("1.5", "1")).ok());
  EXPECT_FALSE(FromJson(RecordWith("1", "2.000001")).ok());
  // An integral value written with JSON's float syntax is still integral.
  EXPECT_TRUE(FromJson(RecordWith("2.0", "5")).ok());
}

TEST(BenchResultSchema, RejectsCountsBeyondExactDoubleRange) {
  // Above 2^53 a double cannot represent the count exactly, so it cannot
  // have round-tripped; 1e300 would also overflow the size_t cast.
  EXPECT_FALSE(FromJson(RecordWith("1e300", "1")).ok());
  EXPECT_FALSE(FromJson(RecordWith("9007199254740994", "1")).ok());
  EXPECT_TRUE(FromJson(RecordWith("9007199254740992", "1")).ok());  // 2^53
}

TEST(BenchResultSchema, RejectsNestedContainers) {
  EXPECT_FALSE(FromJson("{\"bench\": \"b\", \"metric\": \"m\", "
                        "\"value\": {\"nested\": 1}, \"unit\": \"s\", "
                        "\"threads\": 1, \"samples\": 1, \"commit\": \"c\"}")
                   .ok());
  EXPECT_FALSE(FromJson("{\"bench\": \"b\", \"metric\": \"m\", "
                        "\"value\": [1], \"unit\": \"s\", \"threads\": 1, "
                        "\"samples\": 1, \"commit\": \"c\"}")
                   .ok());
  EXPECT_FALSE(ParseBenchJson("[[]]").ok());
}

TEST(BenchResultSchema, RejectsDocumentsOverTheByteBudget) {
  // 8 MiB cap: a runaway artifact must fail fast instead of being parsed
  // byte by byte.
  std::string huge = "[";
  huge.append(9 * 1024 * 1024, ' ');
  huge += "]";
  EXPECT_FALSE(ParseBenchJson(huge).ok());
  EXPECT_FALSE(FromJson(huge).ok());
  // Just under the cap still parses (whitespace is legal filler).
  std::string under = "[";
  under.append(1024, ' ');
  under += "]";
  EXPECT_TRUE(ParseBenchJson(under).ok());
}

TEST(WriteBenchJson, WritesAFileThatParsesBack) {
  const std::string dir = ::testing::TempDir();
  std::vector<BenchResult> results;
  BenchResult a = MakeValid();
  BenchResult b = MakeValid();
  b.metric = "theorem1_check.w10000.p90";
  b.commit.clear();  // exercises the env/unknown fallback fill
  b.isa.clear();     // filled with the dispatched ISA name
  results.push_back(a);
  results.push_back(b);
  ASSERT_TRUE(WriteBenchJson("runner_test", results, dir).ok());

  std::ifstream file(dir + "/BENCH_runner_test.json");
  ASSERT_TRUE(file.good());
  std::stringstream buffer;
  buffer << file.rdbuf();
  const auto parsed = ParseBenchJson(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].metric, a.metric);
  EXPECT_EQ((*parsed)[1].metric, b.metric);
  EXPECT_FALSE((*parsed)[1].commit.empty());  // filled, never written empty
  // The dispatched ISA is stamped into every record whose field was empty
  // and is one of the shim's stable names.
  const std::string& isa = (*parsed)[1].isa;
  EXPECT_TRUE(isa == "scalar" || isa == "avx2" || isa == "neon") << isa;
}

TEST(WriteBenchJson, RefusesToWriteMalformedRecords) {
  const std::string dir = ::testing::TempDir();
  BenchResult bad = MakeValid();
  bad.value = std::numeric_limits<double>::quiet_NaN();
  const Status status =
      WriteBenchJson("runner_test_bad", {MakeValid(), bad}, dir);
  EXPECT_TRUE(status.IsInvalidArgument());
  // The batch is all-or-nothing: no partial file appears.
  std::ifstream file(dir + "/BENCH_runner_test_bad.json");
  EXPECT_FALSE(file.good());
}

TEST(ParseBenchJson, EmptyArrayAndSeparatorErrors) {
  const auto empty = ParseBenchJson("[]");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  const std::string rec = ToJson(MakeValid());
  EXPECT_FALSE(ParseBenchJson("[" + rec + " " + rec + "]").ok());
  EXPECT_FALSE(ParseBenchJson("[" + rec + ",]").ok());
}

TEST(Timing, SummarizeOrdersQuantiles) {
  const TimingStats stats =
      SummarizeTimings({0.5, 0.1, 0.9, 0.2, 0.3, 0.4, 0.8, 0.7, 0.6, 1.0});
  EXPECT_EQ(stats.samples, 10u);
  EXPECT_LE(stats.p10, stats.median);
  EXPECT_LE(stats.median, stats.p90);
  EXPECT_DOUBLE_EQ(stats.min, 0.1);
  EXPECT_NEAR(stats.total, 5.5, 1e-12);
  EXPECT_NEAR(stats.median, 0.55, 1e-12);
}

TEST(Timing, MeasureRunsWarmupPlusRepetitions) {
  size_t calls = 0;
  RunnerOptions options;
  options.warmup = 2;
  options.repetitions = 5;
  const TimingStats stats = Measure([&] { ++calls; }, options);
  EXPECT_EQ(calls, 7u);
  EXPECT_EQ(stats.samples, 5u);
  EXPECT_GE(stats.median, 0.0);
}

TEST(Timing, AppendTimingEmitsPerOpRecords) {
  TimingStats stats;
  stats.median = 2.0;
  stats.p10 = 1.0;
  stats.p90 = 4.0;
  stats.samples = 5;
  std::vector<BenchResult> results;
  AppendTiming(&results, "b", "work", stats, 3, /*ops_per_rep=*/10.0, "s/op");
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].metric, "work.median");
  EXPECT_DOUBLE_EQ(results[0].value, 0.2);
  EXPECT_EQ(results[0].unit, "s/op");
  EXPECT_EQ(results[0].threads, 3u);
  EXPECT_EQ(results[0].samples, 5u);
  EXPECT_EQ(results[2].metric, "work.p90");
  EXPECT_DOUBLE_EQ(results[2].value, 0.4);
  for (const BenchResult& r : results) {
    EXPECT_TRUE(ValidateBenchResult(r).ok()) << r.metric;
  }
}

TEST(QuickModeDetection, FlagAndEnv) {
  const char* argv_quick[] = {"bench", "--quick"};
  const char* argv_plain[] = {"bench", "--threads"};
  EXPECT_TRUE(QuickMode(2, const_cast<char**>(argv_quick)));
  ASSERT_EQ(unsetenv("MOCHE_BENCH_QUICK"), 0);
  EXPECT_FALSE(QuickMode(2, const_cast<char**>(argv_plain)));
  ASSERT_EQ(setenv("MOCHE_BENCH_QUICK", "1", 1), 0);
  EXPECT_TRUE(QuickMode(2, const_cast<char**>(argv_plain)));
  ASSERT_EQ(unsetenv("MOCHE_BENCH_QUICK"), 0);
}

}  // namespace
}  // namespace bench
}  // namespace moche
