// A counting global operator new: the fixture behind the zero-allocation
// regression tests, and — via the thin bench/alloc_probe.h wrapper — the
// benches' `expl.steady_allocs` metric. Single source of truth for the
// replacement allocator set.
//
// Including this header DEFINES the program-wide replaceable allocation
// functions, so it must be included from exactly ONE translation unit per
// test binary. Every operator new in the process (library code, gtest,
// the standard library) then bumps one atomic counter; an AllocationProbe
// reads the counter around a code region:
//
//   moche::testing_alloc::AllocationProbe probe;
//   RunTheWarmedUpHotPath();
//   EXPECT_EQ(probe.Delta(), 0u);
//
// The counter counts allocation CALLS, not bytes — the contract under test
// ("the warmed-up steady state performs no heap allocation") is about
// calls. Keep gtest assertions outside the probed region when asserting
// an exact zero: a *failing* EXPECT allocates its message, which would
// double-report one failure as two.

#ifndef MOCHE_TESTS_TESTING_ALLOC_H_
#define MOCHE_TESTS_TESTING_ALLOC_H_

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace moche {
namespace testing_alloc {

inline std::atomic<size_t> g_allocation_count{0};

inline size_t AllocationCount() {
  return g_allocation_count.load(std::memory_order_relaxed);
}

/// Counts heap allocations between its construction and Delta().
class AllocationProbe {
 public:
  AllocationProbe() : start_(AllocationCount()) {}
  size_t Delta() const { return AllocationCount() - start_; }

 private:
  size_t start_;
};

inline void* CountedAlloc(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  // Zero-size requests must return a unique, freeable pointer.
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

inline void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align, size == 0 ? align : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace testing_alloc
}  // namespace moche

void* operator new(std::size_t size) {
  return moche::testing_alloc::CountedAlloc(size);
}
void* operator new[](std::size_t size) {
  return moche::testing_alloc::CountedAlloc(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  moche::testing_alloc::g_allocation_count.fetch_add(
      1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  moche::testing_alloc::g_allocation_count.fetch_add(
      1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return moche::testing_alloc::CountedAlignedAlloc(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return moche::testing_alloc::CountedAlignedAlloc(
      size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // MOCHE_TESTS_TESTING_ALLOC_H_
