#include "mdks/explain.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace moche {
namespace mdks {
namespace {

// Reference cloud at the origin; test cloud = mostly origin + a planted
// cluster far away. The planted cluster is what a good explanation removes.
struct PlantedInstance {
  std::vector<Point2> r;
  std::vector<Point2> t;
  size_t planted_begin = 0;  // planted points are t[planted_begin..]
};

PlantedInstance MakePlanted(size_t normal, size_t planted, uint64_t seed) {
  Rng rng(seed);
  PlantedInstance inst;
  for (size_t i = 0; i < 2 * normal; ++i) {
    inst.r.push_back({rng.Normal(), rng.Normal()});
  }
  for (size_t i = 0; i < normal; ++i) {
    inst.t.push_back({rng.Normal(), rng.Normal()});
  }
  inst.planted_begin = inst.t.size();
  for (size_t i = 0; i < planted; ++i) {
    inst.t.push_back({rng.Normal(6.0, 0.4), rng.Normal(6.0, 0.4)});
  }
  return inst;
}

TEST(ExplainGreedy2DTest, RemovalReversesTheTest) {
  const PlantedInstance inst = MakePlanted(80, 25, 1);
  auto outcome = Test2D(inst.r, inst.t, 0.05);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->reject);

  const PreferenceList pref = IdentityPreference(inst.t.size());
  auto expl = ExplainGreedy2D(inst.r, inst.t, 0.05, pref);
  ASSERT_TRUE(expl.ok()) << expl.status().ToString();

  std::vector<bool> removed(inst.t.size(), false);
  for (size_t idx : expl->indices) {
    ASSERT_LT(idx, inst.t.size());
    ASSERT_FALSE(removed[idx]);
    removed[idx] = true;
  }
  std::vector<Point2> remaining;
  for (size_t i = 0; i < inst.t.size(); ++i) {
    if (!removed[i]) remaining.push_back(inst.t[i]);
  }
  auto after = Test2D(inst.r, remaining, 0.05);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->reject);
}

TEST(ExplainGreedy2DTest, SkipModeTargetsThePlantedCluster) {
  const PlantedInstance inst = MakePlanted(100, 30, 2);
  const PreferenceList pref = IdentityPreference(inst.t.size());
  auto expl = ExplainGreedy2D(inst.r, inst.t, 0.05, pref);
  ASSERT_TRUE(expl.ok());
  // most removed points should be from the planted cluster even though the
  // preference list visits the normal points first
  size_t planted_hits = 0;
  for (size_t idx : expl->indices) {
    if (idx >= inst.planted_begin) ++planted_hits;
  }
  EXPECT_GT(planted_hits * 2, expl->indices.size());
}

// A preference list a user would actually supply for this instance:
// points farthest from the origin first.
PreferenceList DistanceDescPreference(const std::vector<Point2>& t) {
  std::vector<double> dist(t.size());
  for (size_t i = 0; i < t.size(); ++i) {
    dist[i] = t[i].x * t[i].x + t[i].y * t[i].y;
  }
  return PreferenceByScoreDesc(dist);
}

TEST(ExplainGreedy2DTest, NoSkipModeIsPlainGreedy) {
  const PlantedInstance inst = MakePlanted(60, 20, 3);
  const PreferenceList pref = DistanceDescPreference(inst.t);
  Explain2dOptions opt;
  opt.skip_ineffective_points = false;
  auto expl = ExplainGreedy2D(inst.r, inst.t, 0.05, pref, opt);
  ASSERT_TRUE(expl.ok()) << expl.status().ToString();
  // plain greedy removes a prefix of the preference list
  for (size_t i = 0; i < expl->indices.size(); ++i) {
    EXPECT_EQ(expl->indices[i], pref[i]);
  }
}

TEST(ExplainGreedy2DTest, SkipModeNeverLargerThanPlainGreedy) {
  for (uint64_t seed : {4u, 5u, 6u}) {
    const PlantedInstance inst = MakePlanted(70, 20, seed);
    const PreferenceList pref = DistanceDescPreference(inst.t);
    Explain2dOptions plain;
    plain.skip_ineffective_points = false;
    auto smart = ExplainGreedy2D(inst.r, inst.t, 0.05, pref);
    auto dumb = ExplainGreedy2D(inst.r, inst.t, 0.05, pref, plain);
    ASSERT_TRUE(smart.ok());
    ASSERT_TRUE(dumb.ok());
    EXPECT_LE(smart->size(), dumb->size()) << "seed " << seed;
  }
}

TEST(ExplainGreedy2DTest, AdversarialPreferenceMayExhaust) {
  // With the normal points ranked first and skipping disabled, the greedy
  // can run out of points while the asymptotic 2-D test still rejects —
  // a documented difference from the 1-D Proposition 1 guarantee.
  const PlantedInstance inst = MakePlanted(60, 20, 9);
  Explain2dOptions opt;
  opt.skip_ineffective_points = false;
  auto expl = ExplainGreedy2D(inst.r, inst.t, 0.05,
                              IdentityPreference(inst.t.size()), opt);
  if (!expl.ok()) {
    EXPECT_TRUE(expl.status().IsNotFound());
  }
}

TEST(ExplainGreedy2DTest, AlreadyPassingReported) {
  Rng rng(7);
  std::vector<Point2> pts;
  for (int i = 0; i < 100; ++i) pts.push_back({rng.Normal(), rng.Normal()});
  auto expl = ExplainGreedy2D(pts, pts, 0.05, IdentityPreference(pts.size()));
  EXPECT_TRUE(expl.status().IsAlreadyPasses());
}

TEST(ExplainGreedy2DTest, ValidatesPreference) {
  const PlantedInstance inst = MakePlanted(30, 10, 8);
  auto expl = ExplainGreedy2D(inst.r, inst.t, 0.05, {0, 1, 2});
  EXPECT_FALSE(expl.ok());
}

}  // namespace
}  // namespace mdks
}  // namespace moche
