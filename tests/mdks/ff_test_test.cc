#include "mdks/ff_test.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace moche {
namespace mdks {
namespace {

std::vector<Point2> GaussianCloud(size_t count, double mx, double my,
                                  double sd, Rng* rng) {
  std::vector<Point2> pts(count);
  for (Point2& p : pts) {
    p.x = rng->Normal(mx, sd);
    p.y = rng->Normal(my, sd);
  }
  return pts;
}

TEST(KolmogorovQTest, KnownValues) {
  EXPECT_DOUBLE_EQ(KolmogorovQ(0.0), 1.0);
  EXPECT_NEAR(KolmogorovQ(10.0), 0.0, 1e-12);
  // Q(1.3581) ~ 0.05 — the 1-D alpha=0.05 critical value.
  EXPECT_NEAR(KolmogorovQ(1.3581015), 0.05, 1e-4);
  // monotone decreasing
  EXPECT_GT(KolmogorovQ(0.5), KolmogorovQ(1.0));
  EXPECT_GT(KolmogorovQ(1.0), KolmogorovQ(1.5));
}

TEST(Statistic2DTest, IdenticalCloudsGiveZero) {
  Rng rng(1);
  const std::vector<Point2> pts = GaussianCloud(50, 0, 0, 1, &rng);
  EXPECT_DOUBLE_EQ(Statistic2D(pts, pts), 0.0);
}

TEST(Statistic2DTest, DisjointCloudsNearOne) {
  Rng rng(2);
  const std::vector<Point2> a = GaussianCloud(80, 0, 0, 0.5, &rng);
  const std::vector<Point2> b = GaussianCloud(80, 20, 20, 0.5, &rng);
  EXPECT_GT(Statistic2D(a, b), 0.9);
}

TEST(Statistic2DTest, SymmetricInArguments) {
  Rng rng(3);
  const std::vector<Point2> a = GaussianCloud(40, 0, 0, 1, &rng);
  const std::vector<Point2> b = GaussianCloud(30, 1, 0, 1, &rng);
  EXPECT_DOUBLE_EQ(Statistic2D(a, b), Statistic2D(b, a));
}

TEST(Statistic2DTest, InvariantUnderMonotoneAxisTransforms) {
  // Quadrant counts only depend on coordinate ORDER, so any strictly
  // increasing per-axis map leaves D unchanged.
  Rng rng(4);
  std::vector<Point2> a = GaussianCloud(60, 0, 0, 1, &rng);
  std::vector<Point2> b = GaussianCloud(50, 0.8, -0.3, 1.2, &rng);
  const double before = Statistic2D(a, b);
  auto warp = [](std::vector<Point2>* pts) {
    for (Point2& p : *pts) {
      p.x = std::exp(p.x);          // strictly increasing
      p.y = p.y * p.y * p.y + 2.0;  // strictly increasing
    }
  };
  warp(&a);
  warp(&b);
  EXPECT_NEAR(Statistic2D(a, b), before, 1e-12);
}

TEST(Test2DTest, ValidatesInputs) {
  Rng rng(5);
  const std::vector<Point2> ok = GaussianCloud(10, 0, 0, 1, &rng);
  EXPECT_FALSE(Test2D({}, ok, 0.05).ok());
  EXPECT_FALSE(Test2D(ok, {}, 0.05).ok());
  EXPECT_FALSE(Test2D(ok, ok, 0.0).ok());
  EXPECT_FALSE(Test2D(ok, ok, 1.0).ok());
  std::vector<Point2> bad = ok;
  bad[0].x = NAN;
  EXPECT_FALSE(Test2D(bad, ok, 0.05).ok());
}

TEST(Test2DTest, SameDistributionPasses) {
  Rng rng(6);
  const std::vector<Point2> a = GaussianCloud(300, 0, 0, 1, &rng);
  const std::vector<Point2> b = GaussianCloud(300, 0, 0, 1, &rng);
  auto outcome = Test2D(a, b, 0.01);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->reject);
  EXPECT_GT(outcome->p_value, 0.01);
}

TEST(Test2DTest, ShiftedDistributionFails) {
  Rng rng(7);
  const std::vector<Point2> a = GaussianCloud(300, 0, 0, 1, &rng);
  const std::vector<Point2> b = GaussianCloud(300, 1.2, 1.2, 1, &rng);
  auto outcome = Test2D(a, b, 0.05);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->reject);
  EXPECT_LT(outcome->p_value, 0.05);
}

TEST(Test2DTest, CorrelationChangeIsDetected) {
  // Same marginals, different dependence structure — the signature case
  // where two 1-D KS tests see nothing but the 2-D test fires.
  Rng rng(8);
  std::vector<Point2> independent;
  std::vector<Point2> correlated;
  for (int i = 0; i < 400; ++i) {
    const double u = rng.Normal();
    const double v = rng.Normal();
    independent.push_back({u, v});
    const double w = rng.Normal();
    correlated.push_back({w, 0.95 * w + 0.31 * rng.Normal()});
  }
  auto outcome = Test2D(independent, correlated, 0.05);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->reject);
}

TEST(Test2DTest, PValueDecreasesWithShift) {
  Rng rng(9);
  const std::vector<Point2> base = GaussianCloud(200, 0, 0, 1, &rng);
  double prev_p = 1.1;
  for (double shift : {0.0, 0.6, 1.2, 2.4}) {
    Rng inner(10);
    const std::vector<Point2> shifted =
        GaussianCloud(200, shift, shift, 1, &inner);
    auto outcome = Test2D(base, shifted, 0.05);
    ASSERT_TRUE(outcome.ok());
    EXPECT_LE(outcome->p_value, prev_p + 1e-9) << "shift " << shift;
    prev_p = outcome->p_value;
  }
}

}  // namespace
}  // namespace mdks
}  // namespace moche
