#include "core/explanation.h"

#include <gtest/gtest.h>

namespace moche {
namespace {

const KsInstance kInstance{
    {14, 14, 14, 14, 20, 20, 20, 20}, {13, 13, 12, 20}, 0.3};

TEST(ExplanationValuesTest, MapsIndicesToValues) {
  Explanation expl;
  expl.indices = {2, 1};
  EXPECT_EQ(ExplanationValues(kInstance, expl),
            (std::vector<double>{12, 13}));
}

TEST(ExplanationValuesTest, EmptyExplanation) {
  EXPECT_TRUE(ExplanationValues(kInstance, Explanation{}).empty());
}

TEST(RemoveExplanationTest, PreservesOrderOfSurvivors) {
  Explanation expl;
  expl.indices = {1};  // remove the second 13
  EXPECT_EQ(RemoveExplanation(kInstance, expl),
            (std::vector<double>{13, 12, 20}));
}

TEST(RemoveExplanationTest, RemoveNothing) {
  EXPECT_EQ(RemoveExplanation(kInstance, Explanation{}), kInstance.test);
}

TEST(ValidateExplanationTest, AcceptsTheTrueExplanation) {
  Explanation expl;
  expl.indices = {2, 1};  // {12, 13} reverses the test (paper Example 6)
  EXPECT_TRUE(ValidateExplanation(kInstance, expl).ok());
}

TEST(ValidateExplanationTest, RejectsOutOfRangeIndex) {
  Explanation expl;
  expl.indices = {7};
  EXPECT_TRUE(ValidateExplanation(kInstance, expl).IsOutOfRange());
}

TEST(ValidateExplanationTest, RejectsDuplicateIndex) {
  Explanation expl;
  expl.indices = {1, 1};
  EXPECT_TRUE(ValidateExplanation(kInstance, expl).IsInvalidArgument());
}

TEST(ValidateExplanationTest, RejectsFullRemoval) {
  Explanation expl;
  expl.indices = {0, 1, 2, 3};
  EXPECT_TRUE(ValidateExplanation(kInstance, expl).IsInvalidArgument());
}

TEST(ValidateExplanationTest, RejectsNonReversingSubset) {
  Explanation expl;
  expl.indices = {3};  // removing the 20 alone does not reverse (Example 4)
  const Status status = ValidateExplanation(kInstance, expl);
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("does not reverse"), std::string::npos);
}

}  // namespace
}  // namespace moche
