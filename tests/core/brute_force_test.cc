#include "core/brute_force.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace moche {
namespace {

TEST(BruteForceTest, PaperExample) {
  KsInstance inst{{14, 14, 14, 14, 20, 20, 20, 20}, {13, 13, 12, 20}, 0.3};
  BruteForceExplainer brute;
  auto size = brute.MinimalSize(inst);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 2u);

  // L = [t4, t3, t2, t1]: lexicographically smallest explanation {t3, t2}.
  auto expl = brute.Explain(inst, {3, 2, 1, 0});
  ASSERT_TRUE(expl.ok());
  EXPECT_EQ(expl->indices, (std::vector<size_t>{2, 1}));
}

TEST(BruteForceTest, ExistsQualifiedSubsetMatchesExampleFour) {
  KsInstance inst{{14, 14, 14, 14, 20, 20, 20, 20}, {13, 13, 12, 20}, 0.3};
  BruteForceExplainer brute;
  auto h1 = brute.ExistsQualifiedSubset(inst, 1);
  auto h2 = brute.ExistsQualifiedSubset(inst, 2);
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  EXPECT_FALSE(*h1);
  EXPECT_TRUE(*h2);
}

TEST(BruteForceTest, AlreadyPassingReported) {
  KsInstance inst{{1, 2, 3}, {1, 2, 3}, 0.05};
  BruteForceExplainer brute;
  EXPECT_TRUE(brute.Explain(inst, {0, 1, 2}).status().IsAlreadyPasses());
  EXPECT_TRUE(brute.MinimalSize(inst).status().IsAlreadyPasses());
}

TEST(BruteForceTest, RefusesLargeInstances) {
  KsInstance inst;
  inst.reference = {1.0};
  inst.test.assign(30, 2.0);
  inst.alpha = 0.05;
  BruteForceExplainer brute;
  EXPECT_TRUE(
      brute.MinimalSize(inst).status().IsInvalidArgument());
}

TEST(BruteForceTest, SizeBoundsValidated) {
  KsInstance inst{{1, 2, 3}, {9, 9, 9}, 0.05};
  BruteForceExplainer brute;
  EXPECT_FALSE(brute.ExistsQualifiedSubset(inst, 0).ok());
  EXPECT_FALSE(brute.ExistsQualifiedSubset(inst, 3).ok());
}

TEST(BruteForceTest, ExplanationValidates) {
  Rng rng(3);
  BruteForceExplainer brute;
  int explained = 0;
  for (int rep = 0; rep < 40 && explained < 10; ++rep) {
    KsInstance inst;
    for (int i = 0; i < 20; ++i) inst.reference.push_back(rng.Integer(0, 5));
    for (int i = 0; i < 9; ++i) inst.test.push_back(rng.Integer(2, 8));
    inst.alpha = 0.1;
    const PreferenceList pref = RandomPreference(inst.test.size(), &rng);
    auto expl = brute.Explain(inst, pref);
    if (expl.status().IsAlreadyPasses()) continue;
    ASSERT_TRUE(expl.ok());
    ++explained;
    EXPECT_TRUE(ValidateExplanation(inst, *expl).ok());
  }
  EXPECT_GE(explained, 5);
}

}  // namespace
}  // namespace moche
