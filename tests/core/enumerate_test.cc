#include "core/enumerate.h"

#include <numeric>

#include <gtest/gtest.h>

#include "core/moche.h"
#include "core/size_search.h"
#include "ks/ks_test.h"
#include "util/rng.h"

namespace moche {
namespace {

// All explanations (passing k-subsets) in lexicographic preference order,
// by exhaustive combination enumeration — the oracle.
std::vector<Explanation> BruteForceAll(const KsInstance& inst,
                                       const PreferenceList& pref, size_t k) {
  const size_t m = inst.test.size();
  RemovalKs removal(inst.reference, inst.test, inst.alpha);
  std::vector<Explanation> out;
  std::vector<size_t> combo(k);
  std::iota(combo.begin(), combo.end(), size_t{0});
  while (true) {
    removal.Reset();
    for (size_t pos : combo) {
      EXPECT_TRUE(removal.RemoveValue(inst.test[pref[pos]]).ok());
    }
    if (removal.Passes()) {
      Explanation expl;
      for (size_t pos : combo) expl.indices.push_back(pref[pos]);
      out.push_back(std::move(expl));
    }
    size_t i = k;
    bool advanced = false;
    while (i-- > 0) {
      if (combo[i] != i + m - k) {
        ++combo[i];
        for (size_t j = i + 1; j < k; ++j) combo[j] = combo[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
  return out;
}

class PaperEnumerateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    inst_ = KsInstance{{14, 14, 14, 14, 20, 20, 20, 20}, {13, 13, 12, 20},
                       0.3};
    auto frame = CumulativeFrame::Build(inst_.reference, inst_.test);
    ASSERT_TRUE(frame.ok());
    frame_ = std::make_unique<CumulativeFrame>(std::move(frame).value());
    engine_ = std::make_unique<BoundsEngine>(*frame_, inst_.alpha);
  }

  KsInstance inst_;
  std::unique_ptr<CumulativeFrame> frame_;
  std::unique_ptr<BoundsEngine> engine_;
};

TEST_F(PaperEnumerateTest, FirstResultIsTheMostComprehensible) {
  const PreferenceList pref{3, 2, 1, 0};  // Example 6's L
  EnumerateOptions opt;
  opt.count = 10;
  auto results =
      EnumerateTopExplanations(*engine_, 2, inst_.test, pref, opt);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  EXPECT_EQ(results->front().indices, (std::vector<size_t>{2, 1}));

  auto report = Moche().Explain(inst_, pref);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(results->front().indices, report->explanation.indices);
}

TEST_F(PaperEnumerateTest, MatchesBruteForceListExactly) {
  const PreferenceList pref{3, 2, 1, 0};
  const std::vector<Explanation> expected = BruteForceAll(inst_, pref, 2);
  EnumerateOptions opt;
  opt.count = 100;  // more than exist
  auto results =
      EnumerateTopExplanations(*engine_, 2, inst_.test, pref, opt);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*results)[i].indices, expected[i].indices) << "rank " << i;
  }
}

TEST_F(PaperEnumerateTest, CountLimitsResults) {
  const PreferenceList pref{0, 1, 2, 3};
  EnumerateOptions opt;
  opt.count = 1;
  auto results =
      EnumerateTopExplanations(*engine_, 2, inst_.test, pref, opt);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 1u);
}

TEST_F(PaperEnumerateTest, ValidatesArguments) {
  EnumerateOptions zero;
  zero.count = 0;
  EXPECT_FALSE(
      EnumerateTopExplanations(*engine_, 2, inst_.test, {0, 1, 2, 3}, zero)
          .ok());
  EXPECT_FALSE(
      EnumerateTopExplanations(*engine_, 2, inst_.test, {0, 1}).ok());
}

TEST_F(PaperEnumerateTest, TinyBudgetIsResourceExhausted) {
  EnumerateOptions opt;
  opt.count = 50;
  opt.max_checks = 1;
  auto results =
      EnumerateTopExplanations(*engine_, 2, inst_.test, {0, 1, 2, 3}, opt);
  EXPECT_TRUE(results.status().IsResourceExhausted());
}

TEST(EnumeratePropertyTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(83);
  int instances = 0;
  for (int rep = 0; rep < 200 && instances < 15; ++rep) {
    KsInstance inst;
    const int n = static_cast<int>(rng.Integer(4, 20));
    const int m = static_cast<int>(rng.Integer(4, 9));
    for (int i = 0; i < n; ++i) {
      inst.reference.push_back(static_cast<double>(rng.Integer(0, 5)));
    }
    for (int i = 0; i < m; ++i) {
      inst.test.push_back(static_cast<double>(rng.Integer(2, 8)));
    }
    inst.alpha = 0.1;
    auto outcome = RunInstance(inst);
    ASSERT_TRUE(outcome.ok());
    if (!outcome->reject) continue;
    ++instances;

    auto frame = CumulativeFrame::Build(inst.reference, inst.test);
    ASSERT_TRUE(frame.ok());
    BoundsEngine engine(*frame, inst.alpha);
    auto size = SizeSearcher(engine).FindSize();
    ASSERT_TRUE(size.ok());

    const PreferenceList pref = RandomPreference(inst.test.size(), &rng);
    const std::vector<Explanation> expected =
        BruteForceAll(inst, pref, size->k);
    EnumerateOptions opt;
    opt.count = expected.size() + 5;
    auto results =
        EnumerateTopExplanations(engine, size->k, inst.test, pref, opt);
    ASSERT_TRUE(results.ok());
    ASSERT_EQ(results->size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ((*results)[i].indices, expected[i].indices)
          << "instance " << instances << " rank " << i;
      EXPECT_TRUE(ValidateExplanation(inst, (*results)[i]).ok());
    }
  }
  EXPECT_GE(instances, 8);
}

TEST(EnumeratePropertyTest, AllResultsDistinctAndSizeK) {
  Rng rng(89);
  KsInstance inst;
  for (int i = 0; i < 60; ++i) {
    inst.reference.push_back(static_cast<double>(rng.Integer(0, 8)));
  }
  for (int i = 0; i < 30; ++i) {
    inst.test.push_back(static_cast<double>(rng.Integer(4, 12)));
  }
  inst.alpha = 0.05;
  auto outcome = RunInstance(inst);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->reject);

  auto frame = CumulativeFrame::Build(inst.reference, inst.test);
  ASSERT_TRUE(frame.ok());
  BoundsEngine engine(*frame, inst.alpha);
  auto size = SizeSearcher(engine).FindSize();
  ASSERT_TRUE(size.ok());

  EnumerateOptions opt;
  opt.count = 5;
  auto results = EnumerateTopExplanations(
      engine, size->k, inst.test, IdentityPreference(inst.test.size()), opt);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 5u);
  std::set<std::vector<size_t>> distinct;
  for (const Explanation& e : *results) {
    EXPECT_EQ(e.size(), size->k);
    EXPECT_TRUE(ValidateExplanation(inst, e).ok());
    distinct.insert(e.indices);
  }
  EXPECT_EQ(distinct.size(), 5u);
}

}  // namespace
}  // namespace moche
