#include "core/preference.h"

#include <limits>

#include <gtest/gtest.h>

namespace moche {
namespace {

TEST(PreferenceTest, ValidateAcceptsPermutation) {
  EXPECT_TRUE(ValidatePreference({2, 0, 1}, 3).ok());
  EXPECT_TRUE(ValidatePreference({}, 0).ok());
}

TEST(PreferenceTest, ValidateRejectsBadLists) {
  EXPECT_TRUE(ValidatePreference({0, 1}, 3).IsInvalidArgument());
  EXPECT_TRUE(ValidatePreference({0, 0, 1}, 3).IsInvalidArgument());
  EXPECT_TRUE(ValidatePreference({0, 1, 5}, 3).IsOutOfRange());
}

TEST(PreferenceTest, Identity) {
  EXPECT_EQ(IdentityPreference(4), (PreferenceList{0, 1, 2, 3}));
  EXPECT_TRUE(IdentityPreference(0).empty());
}

TEST(PreferenceTest, ByScoreDescWithStableTies) {
  // scores: idx0=5, idx1=9, idx2=5, idx3=1 -> order 1, 0, 2, 3
  EXPECT_EQ(PreferenceByScoreDesc({5, 9, 5, 1}), (PreferenceList{1, 0, 2, 3}));
}

TEST(PreferenceTest, ByScoreAsc) {
  EXPECT_EQ(PreferenceByScoreAsc({5, 9, 5, 1}), (PreferenceList{3, 0, 2, 1}));
}

TEST(PreferenceTest, ByValue) {
  const std::vector<double> values{3.0, 1.0, 2.0};
  EXPECT_EQ(PreferenceByValue(values, /*descending=*/true),
            (PreferenceList{0, 2, 1}));
  EXPECT_EQ(PreferenceByValue(values, /*descending=*/false),
            (PreferenceList{1, 2, 0}));
}

TEST(PreferenceTest, NanScoresRankLastDeterministically) {
  // Scores can come from a user CSV where "nan" parses to NaN; a naive
  // score comparator would be UB (no strict weak order over NaN). NaN
  // entries rank after every real score, stable by index, both directions.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> scores{nan, 3.0, nan, 1.0, 2.0};
  EXPECT_EQ(PreferenceByScoreDesc(scores),
            (PreferenceList{1, 4, 3, 0, 2}));
  EXPECT_EQ(PreferenceByScoreAsc(scores),
            (PreferenceList{3, 4, 1, 0, 2}));
}

TEST(PreferenceTest, RandomIsAValidPermutation) {
  Rng rng(61);
  const PreferenceList pref = RandomPreference(20, &rng);
  EXPECT_TRUE(ValidatePreference(pref, 20).ok());
}

TEST(PreferenceTest, RanksAreInverse) {
  const PreferenceList pref{2, 0, 3, 1};
  const std::vector<size_t> rank = PreferenceRanks(pref);
  EXPECT_EQ(rank, (std::vector<size_t>{1, 3, 0, 2}));
  for (size_t pos = 0; pos < pref.size(); ++pos) {
    EXPECT_EQ(rank[pref[pos]], pos);
  }
}

}  // namespace
}  // namespace moche
