#include "core/bounds.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ks/ks_test.h"
#include "testing_util.h"
#include "util/rng.h"

namespace moche {
namespace {

using testing_util::kTightTol;

// Example 3/4 instance: R = {14 x4, 20 x4}, T = {13, 13, 12, 20}, alpha 0.3.
class PaperBoundsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto frame = CumulativeFrame::Build({14, 14, 14, 14, 20, 20, 20, 20},
                                        {13, 13, 12, 20});
    ASSERT_TRUE(frame.ok());
    frame_ = std::make_unique<CumulativeFrame>(std::move(frame).value());
    engine_ = std::make_unique<BoundsEngine>(*frame_, 0.3);
  }

  std::unique_ptr<CumulativeFrame> frame_;
  std::unique_ptr<BoundsEngine> engine_;
};

TEST_F(PaperBoundsTest, OmegaFormula) {
  const double c = *ks::CriticalValue(0.3);
  // Omega(h) = c * sqrt(m-h + (m-h)^2/n), m = 4, n = 8.
  EXPECT_NEAR(engine_->Omega(1), c * std::sqrt(3.0 + 9.0 / 8.0), kTightTol);
  EXPECT_NEAR(engine_->Omega(2), c * std::sqrt(2.0 + 4.0 / 8.0), kTightTol);
}

TEST_F(PaperBoundsTest, GammaFormula) {
  // Gamma(i,h) = C_T[i] - ((m-h)/n) C_R[i].
  EXPECT_NEAR(engine_->Gamma(1, 1), 1.0, kTightTol);
  EXPECT_NEAR(engine_->Gamma(2, 1), 3.0, kTightTol);
  EXPECT_NEAR(engine_->Gamma(3, 1), 3.0 - (3.0 / 8.0) * 4.0, kTightTol);
  EXPECT_NEAR(engine_->Gamma(4, 1), 4.0 - (3.0 / 8.0) * 8.0, kTightTol);
  EXPECT_NEAR(engine_->Gamma(3, 2), 3.0 - (2.0 / 8.0) * 4.0, kTightTol);
}

TEST_F(PaperBoundsTest, ExampleFourSizeOneBoundsContradict) {
  // Paper: at h = 1, l_2 = 2 and u_2 = 1, so no qualified 1-vector exists.
  const BoundsVectors b = engine_->ComputeBounds(1);
  EXPECT_EQ(b.lower[2], 2);
  EXPECT_EQ(b.upper[2], 1);
  EXPECT_FALSE(engine_->ExistsQualified(1));
}

TEST_F(PaperBoundsTest, ExampleFourSizeTwoBounds) {
  // At h = 2 a qualified vector exists. (l_1,u_1) = (0,1) as printed in
  // Example 4; for i >= 2 the formulas give l_i = 2 — Example 4's text lists
  // (1,2) but Example 6 confirms l^k_3 = 2, so we encode the formula value.
  const BoundsVectors b = engine_->ComputeBounds(2);
  EXPECT_EQ(b.lower[1], 0);
  EXPECT_EQ(b.upper[1], 1);
  EXPECT_EQ(b.lower[2], 2);
  EXPECT_EQ(b.upper[2], 2);
  EXPECT_EQ(b.lower[3], 2);
  EXPECT_EQ(b.upper[3], 2);
  EXPECT_EQ(b.lower[4], 2);
  EXPECT_EQ(b.upper[4], 2);
  EXPECT_TRUE(engine_->ExistsQualified(2));
}

TEST_F(PaperBoundsTest, NecessaryConditionMatchesExampleFive) {
  // Example 5: h = 2 satisfies Theorem 2, h = 1 does not.
  EXPECT_FALSE(engine_->NecessaryCondition(1));
  EXPECT_TRUE(engine_->NecessaryCondition(2));
  EXPECT_TRUE(engine_->NecessaryCondition(3));  // monotone
}

TEST_F(PaperBoundsTest, ConstructedVectorIsQualified) {
  auto cum = engine_->ConstructQualifiedVector(2);
  ASSERT_TRUE(cum.ok());
  EXPECT_EQ(cum->front(), 0);
  EXPECT_EQ(cum->back(), 2);
  // The denoted subset's removal must pass the KS test.
  const std::vector<double> subset = engine_->VectorToSubset(*cum);
  ASSERT_EQ(subset.size(), 2u);
  RemovalKs removal({14, 14, 14, 14, 20, 20, 20, 20}, {13, 13, 12, 20}, 0.3);
  for (double v : subset) ASSERT_TRUE(removal.RemoveValue(v).ok());
  EXPECT_TRUE(removal.Passes());
}

TEST_F(PaperBoundsTest, ConstructAtInfeasibleSizeFails) {
  EXPECT_TRUE(engine_->ConstructQualifiedVector(1).status().IsNotFound());
}

TEST(CeilFloorTolTest, ExactIntegersAndNearMisses) {
  EXPECT_EQ(CeilTol(2.0), 2);
  EXPECT_EQ(FloorTol(2.0), 2);
  // Values a hair above/below an integer (floating-point noise) snap to it.
  EXPECT_EQ(CeilTol(2.0 + 1e-12), 2);
  EXPECT_EQ(FloorTol(2.0 - 1e-12), 2);
  // Genuine fractional parts round outward as usual.
  EXPECT_EQ(CeilTol(2.4), 3);
  EXPECT_EQ(FloorTol(2.4), 2);
  EXPECT_EQ(CeilTol(-2.4), -2);
  EXPECT_EQ(FloorTol(-2.4), -3);
}

TEST(BoundsEngineTest, UpperBoundAtLastIndexEqualsH) {
  // l_q >= h - m + C_T[q] = h and u_q <= h force u_q == h whenever a
  // qualified vector exists; spot-check on random failing instances.
  Rng rng(5);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<double> r;
    std::vector<double> t;
    for (int i = 0; i < 30; ++i) r.push_back(rng.Integer(0, 6));
    for (int i = 0; i < 20; ++i) t.push_back(rng.Integer(3, 9));
    auto frame = CumulativeFrame::Build(r, t);
    ASSERT_TRUE(frame.ok());
    BoundsEngine engine(*frame, 0.05);
    for (size_t h = 1; h < 20; ++h) {
      if (engine.ExistsQualified(h)) {
        const BoundsVectors b = engine.ComputeBounds(h);
        EXPECT_EQ(b.upper[frame->q()], static_cast<int64_t>(h));
        EXPECT_LE(b.lower[frame->q()], b.upper[frame->q()]);
        break;
      }
    }
  }
}

TEST(BoundsEngineTest, Theorem2MonotoneInH) {
  Rng rng(9);
  for (int rep = 0; rep < 30; ++rep) {
    std::vector<double> r;
    std::vector<double> t;
    const int n = static_cast<int>(rng.Integer(5, 40));
    const int m = static_cast<int>(rng.Integer(5, 25));
    for (int i = 0; i < n; ++i) r.push_back(rng.Integer(0, 10));
    for (int i = 0; i < m; ++i) t.push_back(rng.Integer(0, 10));
    auto frame = CumulativeFrame::Build(r, t);
    ASSERT_TRUE(frame.ok());
    BoundsEngine engine(*frame, 0.05);
    bool seen_true = false;
    for (size_t h = 1; h + 1 <= static_cast<size_t>(m); ++h) {
      const bool holds = engine.NecessaryCondition(h);
      if (seen_true) {
        EXPECT_TRUE(holds) << "Theorem 2 not monotone at h=" << h;
      }
      seen_true = seen_true || holds;
    }
  }
}

TEST(BoundsEngineTest, ConstructedVectorsPassForAllFeasibleSizes) {
  Rng rng(21);
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<double> r;
    std::vector<double> t;
    for (int i = 0; i < 25; ++i) r.push_back(rng.Integer(0, 6));
    for (int i = 0; i < 12; ++i) t.push_back(rng.Integer(2, 9));
    auto frame = CumulativeFrame::Build(r, t);
    ASSERT_TRUE(frame.ok());
    BoundsEngine engine(*frame, 0.05);
    RemovalKs removal(r, t, 0.05);
    for (size_t h = 1; h <= 11; ++h) {
      if (!engine.ExistsQualified(h)) continue;
      auto cum = engine.ConstructQualifiedVector(h);
      ASSERT_TRUE(cum.ok());
      const std::vector<double> subset = engine.VectorToSubset(*cum);
      ASSERT_EQ(subset.size(), h);
      removal.Reset();
      for (double v : subset) ASSERT_TRUE(removal.RemoveValue(v).ok());
      EXPECT_TRUE(removal.Passes()) << "h=" << h;
    }
  }
}

}  // namespace
}  // namespace moche
