#include "core/partial.h"

#include <gtest/gtest.h>

#include "core/size_search.h"
#include "ks/ks_test.h"
#include "util/rng.h"

namespace moche {
namespace {

// Example 6 walk-through: k = 2, L = [t4, t3, t2, t1] on the Example 3 sets.
class PaperPartialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto frame = CumulativeFrame::Build({14, 14, 14, 14, 20, 20, 20, 20},
                                        {13, 13, 12, 20});
    ASSERT_TRUE(frame.ok());
    frame_ = std::make_unique<CumulativeFrame>(std::move(frame).value());
    engine_ = std::make_unique<BoundsEngine>(*frame_, 0.3);
  }

  std::unique_ptr<CumulativeFrame> frame_;
  std::unique_ptr<BoundsEngine> engine_;
};

TEST_F(PaperPartialTest, ExampleSixTrace) {
  auto checker = PartialExplanationChecker::Create(*engine_, 2);
  ASSERT_TRUE(checker.ok());
  // t4 = 20 -> base index 4: not a partial explanation (ubar_3 = 1 < 2).
  EXPECT_FALSE(checker->CandidateFeasible(4));
  // t3 = 12 -> base index 1: partial explanation; accept.
  EXPECT_TRUE(checker->CandidateFeasible(1));
  checker->Accept(1);
  // t2 = 13 -> base index 2: partial explanation; accept -> size k reached.
  EXPECT_TRUE(checker->CandidateFeasible(2));
  checker->Accept(2);
  EXPECT_EQ(checker->accepted_count(), 2u);
}

TEST_F(PaperPartialTest, FullModeAgreesOnExampleSix) {
  auto checker = PartialExplanationChecker::Create(*engine_, 2);
  ASSERT_TRUE(checker.ok());
  EXPECT_FALSE(checker->CandidateFeasibleFull(4));
  EXPECT_TRUE(checker->CandidateFeasibleFull(1));
  checker->Accept(1);
  EXPECT_TRUE(checker->CandidateFeasibleFull(2));
}

TEST_F(PaperPartialTest, MultiplicityGuard) {
  auto checker = PartialExplanationChecker::Create(*engine_, 2);
  ASSERT_TRUE(checker.ok());
  // Only one 12 exists in T; a second copy can never be a subset of T.
  ASSERT_TRUE(checker->CandidateFeasible(1));
  checker->Accept(1);
  EXPECT_FALSE(checker->CandidateFeasible(1));
  EXPECT_FALSE(checker->CandidateFeasibleFull(1));
}

TEST_F(PaperPartialTest, CreateRejectsBadSizes) {
  EXPECT_FALSE(PartialExplanationChecker::Create(*engine_, 0).ok());
  EXPECT_FALSE(PartialExplanationChecker::Create(*engine_, 4).ok());
  // k = 1 has no qualified vector (Example 4) -> Internal.
  auto r = PartialExplanationChecker::Create(*engine_, 1);
  EXPECT_TRUE(r.status().IsInternal());
}

// The incremental and the paper-faithful full check must agree on every
// candidate across random accept sequences.
TEST(PartialCheckerPropertyTest, IncrementalEqualsFull) {
  Rng rng(31);
  int instances = 0;
  for (int rep = 0; rep < 80 && instances < 25; ++rep) {
    std::vector<double> r;
    std::vector<double> t;
    const int n = static_cast<int>(rng.Integer(5, 30));
    const int m = static_cast<int>(rng.Integer(5, 15));
    for (int i = 0; i < n; ++i) r.push_back(rng.Integer(0, 7));
    for (int i = 0; i < m; ++i) t.push_back(rng.Integer(3, 10));
    auto outcome = ks::Run(r, t, 0.1);
    ASSERT_TRUE(outcome.ok());
    if (!outcome->reject) continue;
    ++instances;

    auto frame = CumulativeFrame::Build(r, t);
    ASSERT_TRUE(frame.ok());
    BoundsEngine engine(*frame, 0.1);
    auto size = SizeSearcher(engine).FindSize();
    ASSERT_TRUE(size.ok());

    auto inc = PartialExplanationChecker::Create(engine, size->k);
    auto full = PartialExplanationChecker::Create(engine, size->k);
    ASSERT_TRUE(inc.ok());
    ASSERT_TRUE(full.ok());

    // Random candidate stream; accept whenever feasible (both must agree).
    for (int step = 0; step < 60; ++step) {
      if (inc->accepted_count() == size->k) break;
      const size_t v =
          static_cast<size_t>(rng.Integer(1, static_cast<int64_t>(frame->q())));
      const bool a = inc->CandidateFeasible(v);
      const bool b = full->CandidateFeasibleFull(v);
      EXPECT_EQ(a, b) << "divergence at v=" << v;
      if (a && b) {
        inc->Accept(v);
        full->Accept(v);
      }
    }
  }
  EXPECT_GE(instances, 10);
}

// Greedy acceptance over any candidate order must always complete to k
// points: the accepted set stays a partial explanation by construction, and
// partial explanations always extend to full ones.
TEST(PartialCheckerPropertyTest, GreedyAcceptanceAlwaysCompletes) {
  Rng rng(37);
  int instances = 0;
  for (int rep = 0; rep < 80 && instances < 20; ++rep) {
    std::vector<double> r;
    std::vector<double> t;
    for (int i = 0; i < 25; ++i) r.push_back(rng.Integer(0, 5));
    for (int i = 0; i < 12; ++i) t.push_back(rng.Integer(2, 8));
    auto outcome = ks::Run(r, t, 0.05);
    ASSERT_TRUE(outcome.ok());
    if (!outcome->reject) continue;
    ++instances;

    auto frame = CumulativeFrame::Build(r, t);
    ASSERT_TRUE(frame.ok());
    BoundsEngine engine(*frame, 0.05);
    auto size = SizeSearcher(engine).FindSize();
    ASSERT_TRUE(size.ok());
    auto checker = PartialExplanationChecker::Create(engine, size->k);
    ASSERT_TRUE(checker.ok());

    // Scan values in a shuffled order, repeating the scan until complete.
    std::vector<size_t> order;
    for (size_t v = 1; v <= frame->q(); ++v) {
      for (int64_t c = 0; c < frame->CountT(v); ++c) order.push_back(v);
    }
    rng.Shuffle(&order);
    for (size_t v : order) {
      if (checker->accepted_count() == size->k) break;
      if (checker->CandidateFeasible(v)) checker->Accept(v);
    }
    EXPECT_EQ(checker->accepted_count(), size->k);
  }
  EXPECT_GE(instances, 8);
}

}  // namespace
}  // namespace moche
