// Exhaustive oracle for Theorem 3: a multiset S is a partial explanation
// iff some k-subset of T containing S reverses the failed test. We
// enumerate ALL k-subsets of small random instances, collect the passing
// ones ("explanations"), and check PartialExplanationChecker's verdict for
// every candidate of every accept sequence against multiset containment in
// that explanation list.

#include <numeric>

#include <gtest/gtest.h>

#include "core/instance.h"
#include "core/partial.h"
#include "core/size_search.h"
#include "ks/ks_test.h"
#include "util/rng.h"

namespace moche {
namespace {

// All passing k-subsets as per-value-index count vectors (index 1..q).
std::vector<std::vector<int64_t>> EnumerateExplanations(
    const KsInstance& inst, const CumulativeFrame& frame, size_t k) {
  const size_t m = inst.test.size();
  RemovalKs removal(inst.reference, inst.test, inst.alpha);
  std::vector<std::vector<int64_t>> explanations;

  std::vector<size_t> combo(k);
  std::iota(combo.begin(), combo.end(), size_t{0});
  while (true) {
    removal.Reset();
    for (size_t pos : combo) {
      EXPECT_TRUE(removal.RemoveValue(inst.test[pos]).ok());
    }
    if (removal.Passes()) {
      std::vector<int64_t> counts(frame.q() + 1, 0);
      for (size_t pos : combo) {
        auto idx = frame.IndexOfValue(inst.test[pos]);
        EXPECT_TRUE(idx.ok());
        ++counts[*idx];
      }
      explanations.push_back(std::move(counts));
    }
    // next combination
    size_t i = k;
    bool advanced = false;
    while (i-- > 0) {
      if (combo[i] != i + m - k) {
        ++combo[i];
        for (size_t j = i + 1; j < k; ++j) combo[j] = combo[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
  return explanations;
}

bool AnyExplanationContains(
    const std::vector<std::vector<int64_t>>& explanations,
    const std::vector<int64_t>& accepted) {
  for (const auto& expl : explanations) {
    bool contains = true;
    for (size_t v = 1; v < accepted.size(); ++v) {
      if (accepted[v] > expl[v]) {
        contains = false;
        break;
      }
    }
    if (contains) return true;
  }
  return false;
}

TEST(PartialExplanationOracleTest, CheckerMatchesExhaustiveEnumeration) {
  Rng rng(71);
  int instances = 0;
  for (int rep = 0; rep < 200 && instances < 20; ++rep) {
    KsInstance inst;
    const int n = static_cast<int>(rng.Integer(4, 20));
    const int m = static_cast<int>(rng.Integer(4, 9));
    for (int i = 0; i < n; ++i) {
      inst.reference.push_back(static_cast<double>(rng.Integer(0, 5)));
    }
    for (int i = 0; i < m; ++i) {
      inst.test.push_back(static_cast<double>(rng.Integer(2, 8)));
    }
    inst.alpha = 0.1;
    auto outcome = RunInstance(inst);
    ASSERT_TRUE(outcome.ok());
    if (!outcome->reject) continue;
    ++instances;

    auto frame = CumulativeFrame::Build(inst.reference, inst.test);
    ASSERT_TRUE(frame.ok());
    BoundsEngine engine(*frame, inst.alpha);
    auto size = SizeSearcher(engine).FindSize();
    ASSERT_TRUE(size.ok());

    const auto explanations = EnumerateExplanations(inst, *frame, size->k);
    ASSERT_FALSE(explanations.empty());

    // Several random accept sequences per instance.
    for (int seq = 0; seq < 5; ++seq) {
      auto checker = PartialExplanationChecker::Create(engine, size->k);
      ASSERT_TRUE(checker.ok());
      std::vector<int64_t> accepted(frame->q() + 1, 0);
      for (int step = 0; step < 30; ++step) {
        if (checker->accepted_count() == size->k) break;
        const size_t v = static_cast<size_t>(
            rng.Integer(1, static_cast<int64_t>(frame->q())));
        std::vector<int64_t> candidate = accepted;
        ++candidate[v];

        // the candidate multiset must also be a sub-multiset of T
        const bool within_t = candidate[v] <= frame->CountT(v);
        const bool oracle =
            within_t && AnyExplanationContains(explanations, candidate);
        const bool verdict = checker->CandidateFeasible(v);
        ASSERT_EQ(verdict, oracle)
            << "instance " << instances << " seq " << seq << " v=" << v;
        if (verdict) {
          checker->Accept(v);
          accepted = candidate;
        }
      }
    }
  }
  EXPECT_GE(instances, 8);
}

}  // namespace
}  // namespace moche
