#include "core/size_search.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "util/rng.h"

namespace moche {
namespace {

// Example 4/5 instance.
class PaperSizeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto frame = CumulativeFrame::Build({14, 14, 14, 14, 20, 20, 20, 20},
                                        {13, 13, 12, 20});
    ASSERT_TRUE(frame.ok());
    frame_ = std::make_unique<CumulativeFrame>(std::move(frame).value());
    engine_ = std::make_unique<BoundsEngine>(*frame_, 0.3);
  }

  std::unique_ptr<CumulativeFrame> frame_;
  std::unique_ptr<BoundsEngine> engine_;
};

TEST_F(PaperSizeTest, LowerBoundIsTwo) {
  // Example 5: binary search concludes k_hat = 2.
  SizeSearcher searcher(*engine_);
  auto k_hat = searcher.LowerBound();
  ASSERT_TRUE(k_hat.ok());
  EXPECT_EQ(*k_hat, 2u);
}

TEST_F(PaperSizeTest, SizeIsTwo) {
  // Example 4: the explanation size k = 2.
  SizeSearcher searcher(*engine_);
  auto result = searcher.FindSize();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->k, 2u);
  EXPECT_EQ(result->k_hat, 2u);
  EXPECT_GE(result->theorem1_checks, 1u);
}

TEST_F(PaperSizeTest, AblationWithoutLowerBoundFindsSameSize) {
  SizeSearcher searcher(*engine_);
  auto with = searcher.FindSize(true);
  auto without = searcher.FindSize(false);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with->k, without->k);
  EXPECT_EQ(without->k_hat, 1u);
  // The ablation performs at least as many Theorem 1 checks.
  EXPECT_GE(without->theorem1_checks, with->theorem1_checks);
}

TEST(SizeSearchTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(17);
  int failed_tests_seen = 0;
  for (int rep = 0; rep < 60 && failed_tests_seen < 25; ++rep) {
    std::vector<double> r;
    std::vector<double> t;
    const int n = static_cast<int>(rng.Integer(4, 25));
    const int m = static_cast<int>(rng.Integer(4, 12));
    for (int i = 0; i < n; ++i) r.push_back(rng.Integer(0, 6));
    for (int i = 0; i < m; ++i) t.push_back(rng.Integer(2, 9));
    KsInstance inst{r, t, 0.1};
    auto outcome = RunInstance(inst);
    ASSERT_TRUE(outcome.ok());
    if (!outcome->reject) continue;
    ++failed_tests_seen;

    auto frame = CumulativeFrame::Build(r, t);
    ASSERT_TRUE(frame.ok());
    BoundsEngine engine(*frame, inst.alpha);
    auto result = SizeSearcher(engine).FindSize();
    ASSERT_TRUE(result.ok());

    BruteForceExplainer brute;
    auto expected = brute.MinimalSize(inst);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(result->k, *expected) << "n=" << n << " m=" << m;
    EXPECT_LE(result->k_hat, result->k);
  }
  EXPECT_GE(failed_tests_seen, 10);
}

TEST(SizeSearchTest, LowerBoundNeverExceedsTrueSize) {
  Rng rng(23);
  for (int rep = 0; rep < 40; ++rep) {
    std::vector<double> r;
    std::vector<double> t;
    for (int i = 0; i < 50; ++i) r.push_back(rng.Normal(0, 1));
    for (int i = 0; i < 30; ++i) t.push_back(rng.Normal(1.2, 1));
    auto outcome = ks::Run(r, t, 0.05);
    ASSERT_TRUE(outcome.ok());
    if (!outcome->reject) continue;
    auto frame = CumulativeFrame::Build(r, t);
    ASSERT_TRUE(frame.ok());
    BoundsEngine engine(*frame, 0.05);
    auto result = SizeSearcher(engine).FindSize();
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->k_hat, result->k);
    EXPECT_GE(result->k_hat, 1u);
  }
}

// SizeScan is the stateful walk FindSize drives; its O(1) probe may only
// ever refute sizes the stateless check refutes too.
TEST(SizeSearchTest, SizeScanMatchesStatelessCheckInOrderAndOutOfOrder) {
  Rng rng(31);
  int failing = 0;
  for (int rep = 0; rep < 40 && failing < 15; ++rep) {
    std::vector<double> r;
    std::vector<double> t;
    for (int i = 0; i < 60; ++i) r.push_back(rng.Normal(0, 1));
    for (int i = 0; i < 40; ++i) t.push_back(rng.Normal(1.0, 1.4));
    auto outcome = ks::Run(r, t, 0.05);
    ASSERT_TRUE(outcome.ok());
    if (!outcome->reject) continue;
    ++failing;
    auto frame = CumulativeFrame::Build(r, t);
    ASSERT_TRUE(frame.ok());
    BoundsEngine engine(*frame, 0.05);

    SizeScan ascending(engine);
    for (size_t h = 1; h < t.size(); ++h) {
      EXPECT_EQ(ascending.ExistsQualified(h), engine.ExistsQualified(h))
          << "h=" << h;
    }
    // The probe's refutation argument does not rely on adjacency; any
    // revisit order must agree too.
    SizeScan shuffled(engine);
    for (size_t step = 0; step < 2 * t.size(); ++step) {
      const size_t h = static_cast<size_t>(
          rng.Integer(1, static_cast<int64_t>(t.size()) - 1));
      EXPECT_EQ(shuffled.ExistsQualified(h), engine.ExistsQualified(h))
          << "h=" << h;
    }
  }
  EXPECT_GE(failing, 5);
}

TEST(SizeSearchTest, ProbeRefutationsAccountedInFindSize) {
  Rng rng(41);
  std::vector<double> r;
  std::vector<double> t;
  for (int i = 0; i < 400; ++i) r.push_back(rng.Normal(0, 1));
  for (int i = 0; i < 300; ++i) t.push_back(rng.Normal(1.5, 1));
  auto frame = CumulativeFrame::Build(r, t);
  ASSERT_TRUE(frame.ok());
  BoundsEngine engine(*frame, 0.05);
  // The MOCHE_ns ablation walks every size from 1; a strong mean shift
  // keeps the same coordinates failing, so the probe must fire.
  auto result = SizeSearcher(engine).FindSize(false);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->probe_refutations + result->full_scans,
            result->theorem1_checks);
  EXPECT_GT(result->probe_refutations, 0u);
  EXPECT_LT(result->full_scans, result->theorem1_checks);
}

TEST(SizeSearchTest, TinyTestSetRejected) {
  auto frame = CumulativeFrame::Build({1, 2, 3}, {9});
  ASSERT_TRUE(frame.ok());
  BoundsEngine engine(*frame, 0.05);
  SizeSearcher searcher(engine);
  EXPECT_TRUE(searcher.FindSize().status().IsInvalidArgument());
  EXPECT_TRUE(searcher.LowerBound().status().IsInvalidArgument());
}

// At very large alpha (> 2/e^2) Proposition 1's existence guarantee breaks;
// an extreme instance can have no explanation at all.
TEST(SizeSearchTest, NoExplanationAtExtremeAlpha) {
  const std::vector<double> r{1, 1, 1, 1, 1, 1, 1, 1};
  const std::vector<double> t{100, 100, 100, 100};
  auto frame = CumulativeFrame::Build(r, t);
  ASSERT_TRUE(frame.ok());
  // alpha = 1.5 gives c_alpha ~ 0.536: even a single remaining point fails.
  BoundsEngine engine(*frame, 1.5);
  SizeSearcher searcher(engine);
  auto result = searcher.FindSize();
  EXPECT_TRUE(result.status().IsNotFound());
}

}  // namespace
}  // namespace moche
