// End-to-end encoding of the paper's running example (Examples 3-6):
// R = {14,14,14,14,20,20,20,20}, T = {13,13,12,20}, alpha = 0.3.
// Each test follows one example's narrative so a reader can line the file
// up against the paper text.

#include <algorithm>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/moche.h"

namespace moche {
namespace {

class PaperRunningExample : public ::testing::Test {
 protected:
  const std::vector<double> ref_{14, 14, 14, 14, 20, 20, 20, 20};
  const std::vector<double> test_{13, 13, 12, 20};  // t1, t2, t3, t4
  const double alpha_ = 0.3;
};

// Example 3: base vector and cumulative vector of S = {13, 13}.
TEST_F(PaperRunningExample, Example3CumulativeVector) {
  auto frame = CumulativeFrame::Build(ref_, test_);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->q(), 4u);
  const std::vector<double> base{12, 13, 14, 20};
  for (size_t i = 1; i <= 4; ++i) {
    EXPECT_DOUBLE_EQ(frame->Value(i), base[i - 1]);
  }
  auto cs = frame->CumulativeOf({13, 13});
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(*cs, (std::vector<int64_t>{0, 0, 2, 2, 2}));
}

// Example 4: the sets fail the KS test at alpha = 0.3; no qualified
// 1-cumulative vector exists; a qualified 2-cumulative vector does; k = 2.
TEST_F(PaperRunningExample, Example4SizeSearch) {
  auto outcome = ks::Run(ref_, test_, alpha_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->reject);

  auto frame = CumulativeFrame::Build(ref_, test_);
  ASSERT_TRUE(frame.ok());
  BoundsEngine engine(*frame, alpha_);
  EXPECT_FALSE(engine.ExistsQualified(1));
  EXPECT_TRUE(engine.ExistsQualified(2));

  // Cross-check with exhaustive subset search.
  BruteForceExplainer brute;
  KsInstance inst{ref_, test_, alpha_};
  auto h1 = brute.ExistsQualifiedSubset(inst, 1);
  auto h2 = brute.ExistsQualifiedSubset(inst, 2);
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  EXPECT_FALSE(*h1);
  EXPECT_TRUE(*h2);
}

// Example 5: binary search over Theorem 2 returns k_hat = 2.
TEST_F(PaperRunningExample, Example5LowerBound) {
  auto frame = CumulativeFrame::Build(ref_, test_);
  ASSERT_TRUE(frame.ok());
  BoundsEngine engine(*frame, alpha_);
  auto k_hat = SizeSearcher(engine).LowerBound();
  ASSERT_TRUE(k_hat.ok());
  EXPECT_EQ(*k_hat, 2u);
}

// Example 6: with L = [t4, t3, t2, t1], the scan rejects t4, accepts t3 and
// t2, and returns I = {t3, t2}.
TEST_F(PaperRunningExample, Example6Construction) {
  Moche engine;
  auto report = engine.Explain(ref_, test_, alpha_, {3, 2, 1, 0});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->k, 2u);
  // indices 2 (= t3 = 12) then 1 (= t2 = 13)
  EXPECT_EQ(report->explanation.indices, (std::vector<size_t>{2, 1}));
  const std::vector<double> values =
      ExplanationValues(KsInstance{ref_, test_, alpha_}, report->explanation);
  EXPECT_EQ(values, (std::vector<double>{12, 13}));
}

// MOCHE and the brute force agree on the whole example, for any preference.
TEST_F(PaperRunningExample, MocheEqualsBruteForceOnAllPreferences) {
  KsInstance inst{ref_, test_, alpha_};
  Moche engine;
  BruteForceExplainer brute;
  // All 24 permutations of 4 indices.
  PreferenceList pref{0, 1, 2, 3};
  do {
    auto fast = engine.Explain(ref_, test_, alpha_, pref);
    auto slow = brute.Explain(inst, pref);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(fast->explanation.indices, slow->indices)
        << "pref=[" << pref[0] << "," << pref[1] << "," << pref[2] << ","
        << pref[3] << "]";
  } while (std::next_permutation(pref.begin(), pref.end()));
}

}  // namespace
}  // namespace moche
