// The workspace entry points (Moche::ExplainPreparedInto / ExplainInto /
// FindExplanationSize{Prepared,Into}) must produce reports bit-identical
// to their one-shot counterparts — a recycled workspace and report carry
// no state from one call into the next.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/moche.h"
#include "util/rng.h"

namespace moche {
namespace {

void ExpectSameReport(const MocheReport& a, const MocheReport& b) {
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.k_hat, b.k_hat);
  EXPECT_EQ(a.explanation.indices, b.explanation.indices);
  EXPECT_EQ(a.size_stats.theorem1_checks, b.size_stats.theorem1_checks);
  EXPECT_EQ(a.size_stats.theorem2_checks, b.size_stats.theorem2_checks);
  EXPECT_EQ(a.size_stats.probe_refutations, b.size_stats.probe_refutations);
  EXPECT_EQ(a.size_stats.full_scans, b.size_stats.full_scans);
  EXPECT_EQ(a.build_stats.candidates_checked, b.build_stats.candidates_checked);
  EXPECT_EQ(a.build_stats.recursion_steps, b.build_stats.recursion_steps);
  EXPECT_EQ(a.original.statistic, b.original.statistic);
  EXPECT_EQ(a.original.threshold, b.original.threshold);
  EXPECT_EQ(a.original.location, b.original.location);
  EXPECT_EQ(a.original.reject, b.original.reject);
  EXPECT_EQ(a.after.statistic, b.after.statistic);
  EXPECT_EQ(a.after.threshold, b.after.threshold);
  EXPECT_EQ(a.after.location, b.after.location);
  EXPECT_EQ(a.after.reject, b.after.reject);
}

std::vector<double> NormalSample(Rng* rng, size_t count, double mean,
                                 double sd) {
  std::vector<double> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(rng->Normal(mean, sd));
  return out;
}

TEST(ExplainWorkspaceTest, RecycledWorkspaceMatchesExplainPrepared) {
  Rng rng(123);
  const std::vector<double> reference = NormalSample(&rng, 300, 0.0, 1.0);
  const Moche engine;
  auto prepared = engine.Prepare(reference, 0.05);
  ASSERT_TRUE(prepared.ok());

  // One workspace and one report recycled across windows of DIFFERENT
  // sizes and drift strengths — every report must equal the one-shot call.
  ExplainWorkspace workspace;
  MocheReport report;
  int explained = 0;
  for (int w = 0; w < 10; ++w) {
    const size_t m = 60 + 17 * static_cast<size_t>(w % 4);
    const double shift = 0.6 + 0.15 * w;
    const std::vector<double> test = NormalSample(&rng, m, shift, 1.05);
    const PreferenceList pref = RandomPreference(m, &rng);

    auto one_shot = engine.ExplainPrepared(*prepared, test, pref);
    const Status into_status =
        engine.ExplainPreparedInto(*prepared, test, pref, &workspace, &report);
    ASSERT_EQ(one_shot.ok(), into_status.ok()) << "window " << w;
    if (!one_shot.ok()) {
      EXPECT_EQ(one_shot.status().code(), into_status.code());
      continue;
    }
    ++explained;
    ExpectSameReport(*one_shot, report);
  }
  EXPECT_GE(explained, 6);
}

TEST(ExplainWorkspaceTest, ExplainIntoMatchesExplain) {
  Rng rng(321);
  const Moche engine;
  ExplainWorkspace workspace;
  MocheReport report;
  for (int i = 0; i < 4; ++i) {
    const std::vector<double> reference =
        NormalSample(&rng, 150 + 40 * static_cast<size_t>(i), 0.0, 1.0);
    const std::vector<double> test = NormalSample(&rng, 90, 1.1, 1.0);
    const PreferenceList pref = RandomPreference(test.size(), &rng);

    auto one_shot = engine.Explain(reference, test, 0.05, pref);
    const Status into_status = engine.ExplainInto(reference, test, 0.05, pref,
                                                  &workspace, &report);
    ASSERT_EQ(one_shot.ok(), into_status.ok()) << "instance " << i;
    if (one_shot.ok()) ExpectSameReport(*one_shot, report);
  }
}

TEST(ExplainWorkspaceTest, PaperExampleThroughWorkspace) {
  const std::vector<double> r{14, 14, 14, 14, 20, 20, 20, 20};
  const std::vector<double> t{13, 13, 12, 20};
  const Moche engine;
  auto prepared = engine.Prepare(r, 0.3);
  ASSERT_TRUE(prepared.ok());
  ExplainWorkspace workspace;
  MocheReport report;
  ASSERT_TRUE(engine
                  .ExplainPreparedInto(*prepared, t, {3, 2, 1, 0}, &workspace,
                                       &report)
                  .ok());
  EXPECT_EQ(report.explanation.indices, (std::vector<size_t>{2, 1}));
  EXPECT_EQ(report.k, 2u);
}

TEST(ExplainWorkspaceTest, ErrorPathsMatchOneShot) {
  const Moche engine;
  auto prepared = engine.Prepare({1, 2, 3, 4}, 0.05);
  ASSERT_TRUE(prepared.ok());
  ExplainWorkspace workspace;
  MocheReport report;
  // Nothing to explain.
  EXPECT_TRUE(engine
                  .ExplainPreparedInto(*prepared, {1, 2, 3, 4}, {0, 1, 2, 3},
                                       &workspace, &report)
                  .IsAlreadyPasses());
  // Bad preference list.
  EXPECT_TRUE(engine
                  .ExplainPreparedInto(*prepared, {9, 9, 9}, {0, 1},
                                       &workspace, &report)
                  .IsInvalidArgument());
  // Empty test window.
  EXPECT_TRUE(
      engine.ExplainPreparedInto(*prepared, {}, {}, &workspace, &report)
          .IsInvalidArgument());
  // A failed call must not poison the workspace for the next one.
  const std::vector<double> t{13, 13, 12, 20};
  auto prepared2 = engine.Prepare({14, 14, 14, 14, 20, 20, 20, 20}, 0.3);
  ASSERT_TRUE(prepared2.ok());
  ASSERT_TRUE(engine
                  .ExplainPreparedInto(*prepared2, t, {3, 2, 1, 0}, &workspace,
                                       &report)
                  .ok());
  EXPECT_EQ(report.explanation.indices, (std::vector<size_t>{2, 1}));
}

TEST(FindExplanationSizePreparedTest, MatchesUnpreparedVariant) {
  Rng rng(555);
  const std::vector<double> reference = NormalSample(&rng, 250, 0.0, 1.0);
  const Moche engine;
  auto prepared = engine.Prepare(reference, 0.05);
  ASSERT_TRUE(prepared.ok());

  ExplainWorkspace workspace;
  int sized = 0;
  for (int w = 0; w < 8; ++w) {
    const std::vector<double> test =
        NormalSample(&rng, 80, 0.4 + 0.2 * w, 1.0);
    auto direct = engine.FindExplanationSize(reference, test, 0.05);
    auto via_prepared = engine.FindExplanationSizePrepared(*prepared, test);
    auto via_workspace =
        engine.FindExplanationSizeInto(*prepared, test, &workspace);
    ASSERT_EQ(direct.ok(), via_prepared.ok()) << "window " << w;
    ASSERT_EQ(direct.ok(), via_workspace.ok()) << "window " << w;
    if (!direct.ok()) {
      EXPECT_EQ(direct.status().code(), via_prepared.status().code());
      EXPECT_EQ(direct.status().code(), via_workspace.status().code());
      continue;
    }
    ++sized;
    EXPECT_EQ(direct->k, via_prepared->k);
    EXPECT_EQ(direct->k_hat, via_prepared->k_hat);
    EXPECT_EQ(direct->theorem1_checks, via_prepared->theorem1_checks);
    EXPECT_EQ(direct->theorem2_checks, via_prepared->theorem2_checks);
    EXPECT_EQ(direct->k, via_workspace->k);
    EXPECT_EQ(direct->k_hat, via_workspace->k_hat);
  }
  EXPECT_GE(sized, 4);
}

TEST(FindExplanationSizePreparedTest, AlreadyPassesAndValidation) {
  const Moche engine;
  auto prepared = engine.Prepare({1, 2, 3, 4}, 0.05);
  ASSERT_TRUE(prepared.ok());
  EXPECT_TRUE(engine.FindExplanationSizePrepared(*prepared, {1, 2, 3, 4})
                  .status()
                  .IsAlreadyPasses());
  EXPECT_TRUE(engine.FindExplanationSizePrepared(*prepared, {})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace moche
