// Golden values for the paper's worked example, locked as regression
// anchors: the KS statistic and critical value, and the behaviour of
// Moche::Explain across its three outcome branches (AlreadyPasses,
// NotFound, and a found explanation) on hand-checkable R/T pairs.
//
// Running example (paper Examples 3-6):
//   R = {14,14,14,14,20,20,20,20}, T = {13,13,12,20}
// Union grid 12 < 13 < 14 < 20 gives
//   F_R = (0, 0, 1/2, 1),  F_T = (1/4, 3/4, 3/4, 1)
// so D(R,T) = 3/4, attained at x = 13.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/moche.h"
#include "ks/ks_test.h"
#include "testing_util.h"

namespace moche {
namespace {

using testing_util::kLooseTol;
using testing_util::kTightTol;

class PaperGoldenValues : public ::testing::Test {
 protected:
  const std::vector<double> ref_{14, 14, 14, 14, 20, 20, 20, 20};
  const std::vector<double> test_{13, 13, 12, 20};
};

// D(R,T) = 3/4 exactly, attained at x = 13.
TEST_F(PaperGoldenValues, KsStatistic) {
  double location = 0.0;
  EXPECT_NEAR(ks::Statistic(ref_, test_, &location), 0.75, kTightTol);
  EXPECT_DOUBLE_EQ(location, 13.0);
}

// c_0.05 = sqrt(-ln(0.025)/2) = 1.3581015..., and the rejection threshold
// for n = 8, m = 4 is c_0.05 * sqrt(12/32) = 0.8316639...
TEST_F(PaperGoldenValues, CriticalValueAtAlpha05) {
  EXPECT_NEAR(*ks::CriticalValue(0.05), 1.3581015, kLooseTol);
  EXPECT_NEAR(*ks::Threshold(0.05, 8, 4), 0.8316639, kLooseTol);
  EXPECT_NEAR(*ks::Threshold(0.05, 8, 4),
              *ks::CriticalValue(0.05) * std::sqrt(12.0 / 32.0), kTightTol);
}

// Branch 1 (AlreadyPasses): at alpha = 0.05 the threshold (0.8317) exceeds
// D = 0.75, the test passes, and Explain refuses with AlreadyPasses.
TEST_F(PaperGoldenValues, ExplainAlreadyPassesAtAlpha05) {
  auto outcome = ks::Run(ref_, test_, 0.05);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->reject);

  Moche engine;
  auto report = engine.Explain(ref_, test_, 0.05,
                               IdentityPreference(test_.size()));
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsAlreadyPasses()) << report.status().ToString();
}

// Branch 2 (found): at alpha = 0.3 the test fails (threshold 0.5964 < 0.75)
// and with L = [t4, t3, t2, t1] the unique most comprehensible explanation
// is I = {t3, t2} = {12, 13}, of minimal size k = 2.
TEST_F(PaperGoldenValues, ExplainFindsUniqueMinimalExplanation) {
  Moche engine;
  auto report = engine.Explain(ref_, test_, 0.3, {3, 2, 1, 0});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->k, 2u);
  EXPECT_EQ(report->k_hat, 2u);
  EXPECT_EQ(report->explanation.indices, (std::vector<size_t>{2, 1}));
  EXPECT_TRUE(report->original.reject);
  EXPECT_FALSE(report->after.reject);

  const KsInstance inst{ref_, test_, 0.3};
  EXPECT_TRUE(testing_util::VectorsNear(
      ExplanationValues(inst, report->explanation), {12.0, 13.0}));
  EXPECT_TRUE(ValidateExplanation(inst, report->explanation).ok());

  // Same sets, identity preference: the scan prefers t1, t2 and returns
  // I = {t1, t2} = {13, 13} (also of the minimal size 2).
  auto identity = engine.Explain(ref_, test_, 0.3,
                                 IdentityPreference(test_.size()));
  ASSERT_TRUE(identity.ok()) << identity.status().ToString();
  EXPECT_EQ(identity->k, 2u);
  EXPECT_EQ(identity->explanation.indices, (std::vector<size_t>{0, 1}));
}

// Branch 3 (NotFound): with R and T fully separated, every nonempty
// remainder of T keeps D = 1, so for alpha large enough (alpha > 2/e^2,
// cf. Proposition 1) no explanation exists at all.
TEST_F(PaperGoldenValues, ExplainNotFoundOnSeparatedSamples) {
  const std::vector<double> sep_ref{10, 11, 12, 13, 14, 15, 16, 17};
  const std::vector<double> sep_test{1, 2, 3, 4};
  const double alpha = 0.9;  // > 2/e^2 = 0.2707

  auto outcome = ks::Run(sep_ref, sep_test, alpha);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->reject);
  EXPECT_DOUBLE_EQ(outcome->statistic, 1.0);

  Moche engine;
  auto report = engine.Explain(sep_ref, sep_test, alpha,
                               IdentityPreference(sep_test.size()));
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsNotFound()) << report.status().ToString();
}

}  // namespace
}  // namespace moche
