// Property tests comparing MOCHE against the brute-force oracle on sweeps
// of random small instances. These are the strongest correctness guarantees
// in the suite: on every failing instance MOCHE must return exactly the
// brute-force answer (same size, same lexicographic-minimum explanation),
// and the Theorem 1 existence check must agree with exhaustive search.

#include <algorithm>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/moche.h"
#include "core/size_search.h"
#include "util/rng.h"

namespace moche {
namespace {

struct SweepParams {
  uint64_t seed;
  int value_lo_r, value_hi_r;  // reference values drawn from this range
  int value_lo_t, value_hi_t;  // test values drawn from this range
  double alpha;
  const char* label;
  // Same-support sweeps rarely fail the KS test, so the floor on observed
  // failing instances is per-sweep.
  int min_failing = 5;
  // When true the values are continuous uniforms over the range (no ties)
  // instead of integers (many ties).
  bool continuous = false;
};

std::ostream& operator<<(std::ostream& os, const SweepParams& p) {
  return os << p.label;
}

class MocheVsBruteForce : public ::testing::TestWithParam<SweepParams> {};

// Draws a random instance (sizes vary per repetition) and returns true if
// the KS test fails so there is something to explain.
KsInstance DrawInstance(Rng* rng, const SweepParams& p) {
  KsInstance inst;
  const int n = static_cast<int>(rng->Integer(3, 24));
  const int m = static_cast<int>(rng->Integer(3, 11));
  for (int i = 0; i < n; ++i) {
    inst.reference.push_back(
        p.continuous
            ? rng->Uniform(p.value_lo_r, p.value_hi_r)
            : static_cast<double>(rng->Integer(p.value_lo_r, p.value_hi_r)));
  }
  for (int i = 0; i < m; ++i) {
    inst.test.push_back(
        p.continuous
            ? rng->Uniform(p.value_lo_t, p.value_hi_t)
            : static_cast<double>(rng->Integer(p.value_lo_t, p.value_hi_t)));
  }
  inst.alpha = p.alpha;
  return inst;
}

TEST_P(MocheVsBruteForce, ExplanationSizeMatches) {
  const SweepParams p = GetParam();
  Rng rng(p.seed);
  BruteForceExplainer brute;
  Moche engine;
  int failing = 0;
  for (int rep = 0; rep < 400 && failing < 30; ++rep) {
    const KsInstance inst = DrawInstance(&rng, p);
    auto outcome = RunInstance(inst);
    ASSERT_TRUE(outcome.ok());
    if (!outcome->reject) continue;
    ++failing;

    auto size =
        engine.FindExplanationSize(inst.reference, inst.test, inst.alpha);
    auto expected = brute.MinimalSize(inst);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(size.ok()) << "MOCHE failed where brute force found k="
                           << *expected;
    EXPECT_EQ(size->k, *expected);
    EXPECT_LE(size->k_hat, size->k);
  }
  EXPECT_GE(failing, p.min_failing)
      << "sweep produced too few failing instances";
}

TEST_P(MocheVsBruteForce, MostComprehensibleExplanationMatches) {
  const SweepParams p = GetParam();
  Rng rng(p.seed + 1);
  BruteForceExplainer brute;
  Moche engine;
  int failing = 0;
  for (int rep = 0; rep < 400 && failing < 25; ++rep) {
    const KsInstance inst = DrawInstance(&rng, p);
    auto outcome = RunInstance(inst);
    ASSERT_TRUE(outcome.ok());
    if (!outcome->reject) continue;
    ++failing;

    const PreferenceList pref = RandomPreference(inst.test.size(), &rng);
    auto fast = engine.Explain(inst, pref);
    auto slow = brute.Explain(inst, pref);
    ASSERT_TRUE(slow.ok());
    ASSERT_TRUE(fast.ok());
    EXPECT_EQ(fast->explanation.indices, slow->indices);
    EXPECT_TRUE(ValidateExplanation(inst, fast->explanation).ok());
  }
  EXPECT_GE(failing, p.min_failing);
}

TEST_P(MocheVsBruteForce, Theorem1AgreesWithExhaustiveSearch) {
  const SweepParams p = GetParam();
  Rng rng(p.seed + 2);
  BruteForceExplainer brute;
  int checked = 0;
  for (int rep = 0; rep < 40 && checked < 15; ++rep) {
    const KsInstance inst = DrawInstance(&rng, p);
    if (inst.test.size() > 9) continue;  // keep subset enumeration cheap
    ++checked;
    auto frame = CumulativeFrame::Build(inst.reference, inst.test);
    ASSERT_TRUE(frame.ok());
    BoundsEngine engine(*frame, inst.alpha);
    for (size_t h = 1; h < inst.test.size(); ++h) {
      auto expected = brute.ExistsQualifiedSubset(inst, h);
      ASSERT_TRUE(expected.ok());
      EXPECT_EQ(engine.ExistsQualified(h), *expected)
          << "h=" << h << " m=" << inst.test.size();
    }
  }
  EXPECT_GE(checked, 5);
}

// No (k-1)-subset can reverse the test: minimality, verified exhaustively.
TEST_P(MocheVsBruteForce, NoSmallerSubsetReverses) {
  const SweepParams p = GetParam();
  Rng rng(p.seed + 3);
  BruteForceExplainer brute;
  Moche engine;
  int failing = 0;
  for (int rep = 0; rep < 300 && failing < 10; ++rep) {
    const KsInstance inst = DrawInstance(&rng, p);
    auto outcome = RunInstance(inst);
    ASSERT_TRUE(outcome.ok());
    if (!outcome->reject) continue;
    ++failing;
    auto size =
        engine.FindExplanationSize(inst.reference, inst.test, inst.alpha);
    ASSERT_TRUE(size.ok());
    if (size->k == 1) continue;
    auto smaller = brute.ExistsQualifiedSubset(inst, size->k - 1);
    ASSERT_TRUE(smaller.ok());
    EXPECT_FALSE(*smaller) << "a (k-1)-subset reverses the test; k too big";
  }
  EXPECT_GE(failing, std::min(p.min_failing, 3));
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, MocheVsBruteForce,
    ::testing::Values(
        // Heavy overlap: R and T share most of their support, many ties.
        SweepParams{101, 0, 6, 0, 6, 0.10, "overlapping_discrete", 3},
        // Shifted support: the classic drift pattern.
        SweepParams{202, 0, 6, 3, 9, 0.10, "shifted_discrete"},
        // Disjoint support: extreme failures, explanations near m-1.
        SweepParams{303, 0, 4, 6, 10, 0.10, "disjoint_discrete"},
        // Tight alpha: harder to fail, larger thresholds.
        SweepParams{404, 0, 5, 2, 8, 0.02, "tight_alpha"},
        // Loose alpha (still < 2/e^2): small thresholds, easy failures.
        SweepParams{505, 0, 5, 2, 8, 0.25, "loose_alpha"},
        // Few distinct values: massive duplication stresses multiplicity
        // handling in the cumulative machinery.
        SweepParams{606, 0, 2, 1, 3, 0.10, "binary_values"},
        // Continuous values: all points distinct, q = n + m exactly.
        SweepParams{707, 0, 6, 3, 9, 0.10, "continuous_shifted", 5, true},
        SweepParams{808, 0, 5, 4, 12, 0.10, "continuous_disjointish", 5,
                    true}),
    [](const ::testing::TestParamInfo<SweepParams>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace moche
