// The prepared-instance API: Moche::Prepare sorts/validates the reference
// once, ExplainPrepared reuses it per test window. Its contract is that
// reports are bit-identical to the one-shot Explain on the same inputs.

#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/moche.h"
#include "util/rng.h"

namespace moche {
namespace {

void ExpectSameReport(const MocheReport& a, const MocheReport& b) {
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.k_hat, b.k_hat);
  EXPECT_EQ(a.explanation.indices, b.explanation.indices);
  EXPECT_DOUBLE_EQ(a.original.statistic, b.original.statistic);
  EXPECT_DOUBLE_EQ(a.original.threshold, b.original.threshold);
  EXPECT_DOUBLE_EQ(a.original.location, b.original.location);
  EXPECT_EQ(a.original.reject, b.original.reject);
  EXPECT_DOUBLE_EQ(a.after.statistic, b.after.statistic);
  EXPECT_EQ(a.after.reject, b.after.reject);
}

TEST(PreparedReferenceTest, PrepareValidatesInputs) {
  Moche engine;
  EXPECT_TRUE(engine.Prepare({}, 0.05).status().IsInvalidArgument());
  EXPECT_TRUE(engine.Prepare({1.0, 2.0}, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(engine.Prepare({1.0, 2.0}, 2.5).status().IsInvalidArgument());

  auto prepared = engine.Prepare({3.0, 1.0, 2.0}, 0.05);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->sorted_reference(),
            (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_DOUBLE_EQ(prepared->alpha(), 0.05);
}

TEST(PreparedReferenceTest, MatchesExplainOnPaperExample) {
  const std::vector<double> r{14, 14, 14, 14, 20, 20, 20, 20};
  const std::vector<double> t{13, 13, 12, 20};
  Moche engine;
  auto direct = engine.Explain(r, t, 0.3, {3, 2, 1, 0});
  ASSERT_TRUE(direct.ok());

  auto prepared = engine.Prepare(r, 0.3);
  ASSERT_TRUE(prepared.ok());
  auto via_prepared = engine.ExplainPrepared(*prepared, t, {3, 2, 1, 0});
  ASSERT_TRUE(via_prepared.ok());
  ExpectSameReport(*direct, *via_prepared);
  EXPECT_EQ(via_prepared->explanation.indices, (std::vector<size_t>{2, 1}));
}

TEST(PreparedReferenceTest, OneReferenceManyWindowsMatchesExplain) {
  // The motivating workload: one reference sample, many test windows sliced
  // from the same stream. Every window's report must equal the one-shot
  // Explain.
  Rng rng(71);
  std::vector<double> reference;
  for (int i = 0; i < 200; ++i) reference.push_back(rng.Normal(0, 1));

  Moche engine;
  auto prepared = engine.Prepare(reference, 0.05);
  ASSERT_TRUE(prepared.ok());

  int explained = 0;
  for (int window = 0; window < 12; ++window) {
    std::vector<double> test;
    const double shift = 0.5 + 0.1 * window;
    for (int i = 0; i < 80; ++i) test.push_back(rng.Normal(shift, 1.1));
    PreferenceList pref = RandomPreference(test.size(), &rng);

    auto direct = engine.Explain(reference, test, 0.05, pref);
    auto via_prepared = engine.ExplainPrepared(*prepared, test, pref);
    ASSERT_EQ(direct.ok(), via_prepared.ok()) << "window " << window;
    if (!direct.ok()) {
      EXPECT_EQ(direct.status().code(), via_prepared.status().code());
      continue;
    }
    ++explained;
    ExpectSameReport(*direct, *via_prepared);
  }
  EXPECT_GE(explained, 8);
}

TEST(WindowBatchTest, BatchOutcomesMatchRunSortedPerWindow) {
  // EvaluateBatchPrepared's contract: each outcome is bit-identical to
  // running ks::RunSorted on that window alone.
  Rng rng(2026);
  std::vector<double> reference;
  for (int i = 0; i < 150; ++i) reference.push_back(rng.Normal(0, 1));
  Moche engine;
  auto prepared = engine.Prepare(reference, 0.05);
  ASSERT_TRUE(prepared.ok());

  constexpr size_t kCount = 9;
  constexpr size_t kWidth = 40;
  std::vector<double> soa(kCount * kWidth);
  for (size_t w = 0; w < kCount; ++w) {
    const double shift = 0.15 * static_cast<double>(w);  // pass -> reject mix
    for (size_t i = 0; i < kWidth; ++i) {
      soa[w * kWidth + i] = rng.Normal(shift, 1.0);
    }
  }

  ExplainWorkspace workspace;
  std::vector<KsOutcome> outcomes;
  WindowBatch batch{soa.data(), kCount, kWidth};
  ASSERT_TRUE(engine.EvaluateBatchPrepared(*prepared, batch, &workspace,
                                           &outcomes)
                  .ok());
  ASSERT_EQ(outcomes.size(), kCount);

  size_t rejects = 0;
  for (size_t w = 0; w < kCount; ++w) {
    std::vector<double> window(soa.begin() + w * kWidth,
                               soa.begin() + (w + 1) * kWidth);
    std::sort(window.begin(), window.end());
    auto solo = ks::RunSorted(prepared->sorted_reference(), window, 0.05);
    ASSERT_TRUE(solo.ok()) << "window " << w;
    EXPECT_EQ(outcomes[w].statistic, solo->statistic) << "window " << w;
    EXPECT_EQ(outcomes[w].threshold, solo->threshold) << "window " << w;
    EXPECT_EQ(outcomes[w].location, solo->location) << "window " << w;
    EXPECT_EQ(outcomes[w].reject, solo->reject) << "window " << w;
    EXPECT_EQ(outcomes[w].n, solo->n) << "window " << w;
    EXPECT_EQ(outcomes[w].m, solo->m) << "window " << w;
    rejects += outcomes[w].reject ? 1 : 0;
  }
  // The shift ramp must produce both outcomes or the test is vacuous.
  EXPECT_GT(rejects, 0u);
  EXPECT_LT(rejects, kCount);
}

TEST(WindowBatchTest, ValidatesBatchShapeAndContents) {
  Moche engine;
  auto prepared = engine.Prepare({1.0, 2.0, 3.0, 4.0}, 0.05);
  ASSERT_TRUE(prepared.ok());
  ExplainWorkspace workspace;
  std::vector<KsOutcome> outcomes{{}, {}};

  // Empty batch: OK, outcomes cleared.
  EXPECT_TRUE(engine.EvaluateBatchPrepared(*prepared, WindowBatch{},
                                           &workspace, &outcomes)
                  .ok());
  EXPECT_TRUE(outcomes.empty());

  const double data[4] = {1.0, 2.0, 3.0, 4.0};
  // count > 0 with width == 0 is malformed.
  EXPECT_TRUE(engine
                  .EvaluateBatchPrepared(*prepared, WindowBatch{data, 2, 0},
                                         &workspace, &outcomes)
                  .IsInvalidArgument());
  // count > 0 with null data is malformed.
  EXPECT_TRUE(engine
                  .EvaluateBatchPrepared(*prepared,
                                         WindowBatch{nullptr, 2, 2},
                                         &workspace, &outcomes)
                  .IsInvalidArgument());
  // A non-finite value anywhere in the batch poisons the whole call (one
  // SIMD validation pass over the flat buffer).
  const double bad[4] = {1.0, 2.0,
                         std::numeric_limits<double>::quiet_NaN(), 4.0};
  EXPECT_TRUE(engine
                  .EvaluateBatchPrepared(*prepared, WindowBatch{bad, 2, 2},
                                         &workspace, &outcomes)
                  .IsInvalidArgument());
}

TEST(PreparedReferenceTest, AlreadyPassingAndValidationErrors) {
  Moche engine;
  auto prepared = engine.Prepare({1, 2, 3, 4}, 0.05);
  ASSERT_TRUE(prepared.ok());
  EXPECT_TRUE(engine.ExplainPrepared(*prepared, {1, 2, 3, 4}, {0, 1, 2, 3})
                  .status()
                  .IsAlreadyPasses());
  // bad preference (not a permutation of [0, m))
  EXPECT_TRUE(engine.ExplainPrepared(*prepared, {9, 9, 9}, {0, 1})
                  .status()
                  .IsInvalidArgument());
  // empty test window
  EXPECT_TRUE(engine.ExplainPrepared(*prepared, {}, {})
                  .status()
                  .IsInvalidArgument());
}

TEST(CumulativeFrameTest, BuildRejectsNonFiniteBeforeSorting) {
  // Regression: Build must validate before sorting — std::sort on a range
  // containing NaN is undefined behavior, so validation cannot be deferred
  // to BuildFromSorted.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(CumulativeFrame::Build({1.0, nan, 0.5}, {1.0})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(CumulativeFrame::Build({1.0}, {2.0, nan})
                  .status()
                  .IsInvalidArgument());
}

TEST(CumulativeFrameTest, BuildFromSortedRejectsUnsortedInput) {
  EXPECT_TRUE(CumulativeFrame::BuildFromSorted({2.0, 1.0}, {1.0})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(CumulativeFrame::BuildFromSorted({1.0}, {2.0, 1.0})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(CumulativeFrame::BuildFromSorted({1.0, 2.0}, {1.0, 3.0}).ok());
}

}  // namespace
}  // namespace moche
