#include "core/cumulative.h"

#include <gtest/gtest.h>

namespace moche {
namespace {

// Example 3 of the paper.
const std::vector<double> kRefExample{14, 14, 14, 14, 20, 20, 20, 20};
const std::vector<double> kTestExample{13, 13, 12, 20};

TEST(CumulativeFrameTest, PaperExampleThreeBaseVector) {
  auto frame = CumulativeFrame::Build(kRefExample, kTestExample);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->q(), 4u);
  EXPECT_DOUBLE_EQ(frame->Value(1), 12.0);
  EXPECT_DOUBLE_EQ(frame->Value(2), 13.0);
  EXPECT_DOUBLE_EQ(frame->Value(3), 14.0);
  EXPECT_DOUBLE_EQ(frame->Value(4), 20.0);
  EXPECT_EQ(frame->n(), 8u);
  EXPECT_EQ(frame->m(), 4u);
}

TEST(CumulativeFrameTest, PaperExampleThreeCumulativeVectors) {
  auto frame = CumulativeFrame::Build(kRefExample, kTestExample);
  ASSERT_TRUE(frame.ok());
  // C_R = <0, 0, 0, 4, 8>; C_T = <0, 1, 3, 3, 4>.
  EXPECT_EQ(frame->CR(0), 0);
  EXPECT_EQ(frame->CR(1), 0);
  EXPECT_EQ(frame->CR(2), 0);
  EXPECT_EQ(frame->CR(3), 4);
  EXPECT_EQ(frame->CR(4), 8);
  EXPECT_EQ(frame->CT(0), 0);
  EXPECT_EQ(frame->CT(1), 1);
  EXPECT_EQ(frame->CT(2), 3);
  EXPECT_EQ(frame->CT(3), 3);
  EXPECT_EQ(frame->CT(4), 4);
}

TEST(CumulativeFrameTest, PaperExampleThreeSubsetVector) {
  auto frame = CumulativeFrame::Build(kRefExample, kTestExample);
  ASSERT_TRUE(frame.ok());
  // C_S for S = {13, 13} is <0, 0, 2, 2, 2>.
  auto cs = frame->CumulativeOf({13, 13});
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(*cs, (std::vector<int64_t>{0, 0, 2, 2, 2}));
}

TEST(CumulativeFrameTest, CountT) {
  auto frame = CumulativeFrame::Build(kRefExample, kTestExample);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->CountT(1), 1);  // one 12 in T
  EXPECT_EQ(frame->CountT(2), 2);  // two 13s
  EXPECT_EQ(frame->CountT(3), 0);  // no 14s
  EXPECT_EQ(frame->CountT(4), 1);  // one 20
}

TEST(CumulativeFrameTest, IndexOfValue) {
  auto frame = CumulativeFrame::Build(kRefExample, kTestExample);
  ASSERT_TRUE(frame.ok());
  auto idx = frame->IndexOfValue(14.0);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 3u);
  EXPECT_TRUE(frame->IndexOfValue(15.0).status().IsNotFound());
}

TEST(CumulativeFrameTest, CumulativeOfUnknownValueFails) {
  auto frame = CumulativeFrame::Build(kRefExample, kTestExample);
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(frame->CumulativeOf({99.0}).status().IsNotFound());
}

TEST(CumulativeFrameTest, EmptyInputsRejected) {
  EXPECT_TRUE(CumulativeFrame::Build({}, {1.0}).status().IsInvalidArgument());
  EXPECT_TRUE(CumulativeFrame::Build({1.0}, {}).status().IsInvalidArgument());
}

TEST(CumulativeFrameTest, DuplicatesAcrossSetsCollapse) {
  auto frame = CumulativeFrame::Build({1, 1, 2}, {2, 2, 3});
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->q(), 3u);  // values 1, 2, 3
  EXPECT_EQ(frame->CR(3), 3);
  EXPECT_EQ(frame->CT(3), 3);
  EXPECT_EQ(frame->CT(1), 0);
  EXPECT_EQ(frame->CR(1), 2);
}

TEST(CumulativeFrameTest, SingletonSets) {
  auto frame = CumulativeFrame::Build({5.0}, {5.0});
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->q(), 1u);
  EXPECT_EQ(frame->CR(1), 1);
  EXPECT_EQ(frame->CT(1), 1);
}

TEST(CumulativeFrameTest, LastEntriesEqualSetSizes) {
  auto frame = CumulativeFrame::Build({1, 5, 5, 9}, {2, 2, 2});
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->CR(frame->q()), 4);
  EXPECT_EQ(frame->CT(frame->q()), 3);
}

}  // namespace
}  // namespace moche
