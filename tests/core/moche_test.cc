#include "core/moche.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace moche {
namespace {

TEST(MocheTest, ExplainsPaperExample) {
  const std::vector<double> r{14, 14, 14, 14, 20, 20, 20, 20};
  const std::vector<double> t{13, 13, 12, 20};
  Moche engine;
  auto report = engine.Explain(r, t, 0.3, {3, 2, 1, 0});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->k, 2u);
  EXPECT_EQ(report->k_hat, 2u);
  EXPECT_EQ(report->explanation.indices, (std::vector<size_t>{2, 1}));
  EXPECT_TRUE(report->original.reject);
  EXPECT_FALSE(report->after.reject);
}

TEST(MocheTest, AlreadyPassingTestIsReported) {
  Moche engine;
  auto report =
      engine.Explain({1, 2, 3, 4}, {1, 2, 3, 4}, 0.05, {0, 1, 2, 3});
  EXPECT_TRUE(report.status().IsAlreadyPasses());
}

TEST(MocheTest, InvalidPreferenceRejected) {
  Moche engine;
  auto report = engine.Explain({1, 2, 3}, {9, 9, 9}, 0.05, {0, 1});
  EXPECT_TRUE(report.status().IsInvalidArgument());
}

TEST(MocheTest, EmptyInputsRejected) {
  Moche engine;
  EXPECT_FALSE(engine.Explain({}, {1.0}, 0.05, {0}).ok());
  EXPECT_FALSE(engine.Explain({1.0}, {}, 0.05, {}).ok());
}

TEST(MocheTest, RemovalAlwaysReversesTheTest) {
  Rng rng(43);
  Moche engine;
  int explained = 0;
  for (int rep = 0; rep < 40 && explained < 15; ++rep) {
    std::vector<double> r;
    std::vector<double> t;
    for (int i = 0; i < 200; ++i) r.push_back(rng.Normal(0, 1));
    for (int i = 0; i < 100; ++i) t.push_back(rng.Normal(0.8, 1.3));
    PreferenceList pref = RandomPreference(t.size(), &rng);
    auto report = engine.Explain(r, t, 0.05, pref);
    if (report.status().IsAlreadyPasses()) continue;
    ASSERT_TRUE(report.ok());
    ++explained;

    KsInstance inst{r, t, 0.05};
    EXPECT_TRUE(ValidateExplanation(inst, report->explanation).ok());
    EXPECT_EQ(report->explanation.size(), report->k);
    EXPECT_LE(report->k_hat, report->k);
  }
  EXPECT_GE(explained, 10);
}

TEST(MocheTest, OptionsAblationsAgreeOnOutput) {
  Rng rng(47);
  std::vector<double> r;
  std::vector<double> t;
  for (int i = 0; i < 150; ++i) r.push_back(rng.Normal(0, 1));
  for (int i = 0; i < 80; ++i) t.push_back(rng.Normal(1.0, 1));
  PreferenceList pref = RandomPreference(t.size(), &rng);

  MocheOptions full;
  MocheOptions no_lb;
  no_lb.use_lower_bound = false;
  MocheOptions no_inc;
  no_inc.incremental_partial_check = false;

  auto a = Moche(full).Explain(r, t, 0.05, pref);
  auto b = Moche(no_lb).Explain(r, t, 0.05, pref);
  auto c = Moche(no_inc).Explain(r, t, 0.05, pref);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->explanation.indices, b->explanation.indices);
  EXPECT_EQ(a->explanation.indices, c->explanation.indices);
  EXPECT_EQ(a->k, b->k);
  EXPECT_EQ(b->k_hat, 1u);  // ablation starts the scan at h = 1
}

TEST(MocheTest, FindExplanationSizeOnly) {
  const std::vector<double> r{14, 14, 14, 14, 20, 20, 20, 20};
  const std::vector<double> t{13, 13, 12, 20};
  Moche engine;
  auto size = engine.FindExplanationSize(r, t, 0.3);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size->k, 2u);
}

TEST(MocheTest, ExplanationIsDeterministic) {
  Rng rng(53);
  std::vector<double> r;
  std::vector<double> t;
  for (int i = 0; i < 120; ++i) r.push_back(rng.Integer(0, 30));
  for (int i = 0; i < 60; ++i) t.push_back(rng.Integer(10, 40));
  const PreferenceList pref = RandomPreference(t.size(), &rng);
  Moche engine;
  auto a = engine.Explain(r, t, 0.05, pref);
  auto b = engine.Explain(r, t, 0.05, pref);
  if (a.status().IsAlreadyPasses()) {
    EXPECT_TRUE(b.status().IsAlreadyPasses());
    return;
  }
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->explanation.indices, b->explanation.indices);
}

TEST(MocheTest, TimingsArePopulated) {
  const std::vector<double> r{14, 14, 14, 14, 20, 20, 20, 20};
  const std::vector<double> t{13, 13, 12, 20};
  auto report = Moche().Explain(r, t, 0.3, {0, 1, 2, 3});
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->seconds_size_search, 0.0);
  EXPECT_GE(report->seconds_construction, 0.0);
  EXPECT_GE(report->size_stats.theorem2_checks, 1u);
}


// A larger alpha means a smaller passing threshold, so qualified subsets
// are rarer and the explanation can only get bigger: k is non-decreasing
// in alpha over the alphas where the test fails.
TEST(MocheTest, ExplanationSizeMonotoneInAlpha) {
  Rng rng(59);
  Moche engine;
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<double> r;
    std::vector<double> t;
    for (int i = 0; i < 150; ++i) r.push_back(rng.Normal(0, 1));
    for (int i = 0; i < 90; ++i) t.push_back(rng.Normal(1.0, 1.2));
    size_t prev_k = 0;
    for (double alpha : {0.01, 0.05, 0.1, 0.2}) {
      auto size = engine.FindExplanationSize(r, t, alpha);
      if (!size.ok()) continue;  // test passes at this (stricter) alpha
      EXPECT_GE(size->k, prev_k) << "alpha=" << alpha;
      prev_k = size->k;
    }
  }
}

}  // namespace
}  // namespace moche
