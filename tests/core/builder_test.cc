#include "core/builder.h"

#include <gtest/gtest.h>

#include "core/size_search.h"
#include "util/rng.h"

namespace moche {
namespace {

class PaperBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto frame = CumulativeFrame::Build(ref_, test_);
    ASSERT_TRUE(frame.ok());
    frame_ = std::make_unique<CumulativeFrame>(std::move(frame).value());
    engine_ = std::make_unique<BoundsEngine>(*frame_, 0.3);
  }

  const std::vector<double> ref_{14, 14, 14, 14, 20, 20, 20, 20};
  const std::vector<double> test_{13, 13, 12, 20};  // t1, t2, t3, t4
  std::unique_ptr<CumulativeFrame> frame_;
  std::unique_ptr<BoundsEngine> engine_;
};

TEST_F(PaperBuilderTest, ExampleSixExplanation) {
  // L = [t4, t3, t2, t1] -> indices [3, 2, 1, 0]. Expected I = {t3, t2},
  // accepted in that order.
  const PreferenceList pref{3, 2, 1, 0};
  auto expl = BuildMostComprehensible(*engine_, 2, test_, pref);
  ASSERT_TRUE(expl.ok());
  EXPECT_EQ(expl->indices, (std::vector<size_t>{2, 1}));
}

TEST_F(PaperBuilderTest, FullCheckModeGivesSameAnswer) {
  const PreferenceList pref{3, 2, 1, 0};
  auto inc = BuildMostComprehensible(*engine_, 2, test_, pref, true);
  auto full = BuildMostComprehensible(*engine_, 2, test_, pref, false);
  ASSERT_TRUE(inc.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(inc->indices, full->indices);
}

TEST_F(PaperBuilderTest, DifferentPreferenceDifferentExplanation) {
  // Preferring t1 first picks {t1, ...} since {13} extends to {13, 12} or
  // {13, 13}.
  const PreferenceList pref{0, 1, 2, 3};
  auto expl = BuildMostComprehensible(*engine_, 2, test_, pref);
  ASSERT_TRUE(expl.ok());
  ASSERT_EQ(expl->indices.size(), 2u);
  EXPECT_EQ(expl->indices[0], 0u);
}

TEST_F(PaperBuilderTest, StatsAreReported) {
  const PreferenceList pref{3, 2, 1, 0};
  BuildStats stats;
  auto expl = BuildMostComprehensible(*engine_, 2, test_, pref, true, &stats);
  ASSERT_TRUE(expl.ok());
  EXPECT_GE(stats.candidates_checked, 3u);  // t4 rejected, t3 + t2 accepted
  EXPECT_GT(stats.recursion_steps, 0u);
}

TEST_F(PaperBuilderTest, RejectsBadPreference) {
  const PreferenceList bad{0, 0, 1, 2};
  auto expl = BuildMostComprehensible(*engine_, 2, test_, bad);
  EXPECT_FALSE(expl.ok());
}

TEST_F(PaperBuilderTest, RejectsMismatchedTest) {
  const std::vector<double> other{13, 13, 12};
  auto expl = BuildMostComprehensible(*engine_, 2, other, {0, 1, 2});
  EXPECT_TRUE(expl.status().IsInvalidArgument());
}

// The explanation is always a prefix-greedy selection: each accepted index
// appears in preference order.
TEST(BuilderPropertyTest, IndicesFollowPreferenceOrder) {
  Rng rng(41);
  int instances = 0;
  for (int rep = 0; rep < 60 && instances < 15; ++rep) {
    std::vector<double> r;
    std::vector<double> t;
    for (int i = 0; i < 30; ++i) r.push_back(rng.Integer(0, 6));
    for (int i = 0; i < 14; ++i) t.push_back(rng.Integer(3, 9));
    auto outcome = ks::Run(r, t, 0.05);
    ASSERT_TRUE(outcome.ok());
    if (!outcome->reject) continue;
    ++instances;

    auto frame = CumulativeFrame::Build(r, t);
    ASSERT_TRUE(frame.ok());
    BoundsEngine engine(*frame, 0.05);
    auto size = SizeSearcher(engine).FindSize();
    ASSERT_TRUE(size.ok());

    PreferenceList pref = RandomPreference(t.size(), &rng);
    auto expl = BuildMostComprehensible(engine, size->k, t, pref);
    ASSERT_TRUE(expl.ok());
    ASSERT_EQ(expl->indices.size(), size->k);

    // position in pref must be strictly increasing along expl->indices
    std::vector<size_t> rank(t.size());
    for (size_t pos = 0; pos < pref.size(); ++pos) rank[pref[pos]] = pos;
    for (size_t i = 1; i < expl->indices.size(); ++i) {
      EXPECT_LT(rank[expl->indices[i - 1]], rank[expl->indices[i]]);
    }
  }
  EXPECT_GE(instances, 6);
}

}  // namespace
}  // namespace moche
