#include "optimize/zeroth_order.h"

#include <cmath>

#include <gtest/gtest.h>

namespace moche {
namespace optimize {
namespace {

TEST(ZerothOrderTest, MinimizesSmoothQuadratic) {
  Rng rng(1);
  auto f = [](const std::vector<double>& x) {
    double s = 0.0;
    for (double v : x) s += (v - 0.3) * (v - 0.3);
    return s;
  };
  ZerothOrderOptions opt;
  opt.max_iterations = 400;
  opt.smoothing = 0.05;
  opt.step_size = 0.2;
  const ZerothOrderResult r = MinimizeRgf(f, std::vector<double>(5, 0.9), opt,
                                          &rng);
  EXPECT_LT(r.value, 0.02);
  for (double v : r.x) EXPECT_NEAR(v, 0.3, 0.15);
}

TEST(ZerothOrderTest, StopsAtTarget) {
  Rng rng(2);
  auto f = [](const std::vector<double>& x) { return x[0] * x[0]; };
  ZerothOrderOptions opt;
  opt.max_iterations = 5000;
  opt.target = 0.25;
  opt.step_size = 0.1;
  const ZerothOrderResult r = MinimizeRgf(f, {0.9}, opt, &rng);
  EXPECT_TRUE(r.reached_target);
  EXPECT_LT(r.value, 0.25);
  EXPECT_LT(r.iterations, 5000u);  // early exit
}

TEST(ZerothOrderTest, TargetMetAtStart) {
  Rng rng(3);
  auto f = [](const std::vector<double>& x) { return x[0]; };
  ZerothOrderOptions opt;
  opt.target = 10.0;
  const ZerothOrderResult r = MinimizeRgf(f, {0.5}, opt, &rng);
  EXPECT_TRUE(r.reached_target);
  EXPECT_EQ(r.iterations, 0u);
  EXPECT_EQ(r.function_evals, 1u);
}

TEST(ZerothOrderTest, RespectsUnitBox) {
  Rng rng(4);
  // minimum outside the box at x = 2; iterate must stay clamped
  auto f = [](const std::vector<double>& x) {
    return (x[0] - 2.0) * (x[0] - 2.0);
  };
  ZerothOrderOptions opt;
  opt.max_iterations = 200;
  const ZerothOrderResult r = MinimizeRgf(f, {0.2}, opt, &rng);
  EXPECT_GE(r.x[0], 0.0);
  EXPECT_LE(r.x[0], 1.0);
  EXPECT_NEAR(r.x[0], 1.0, 0.1);  // pushed to the boundary
}

TEST(ZerothOrderTest, WorksOnPiecewiseConstantObjective) {
  // The GRACE use case: objective depends only on thresholded coordinates.
  Rng rng(5);
  auto f = [](const std::vector<double>& x) {
    int on = 0;
    for (double v : x) on += v < 0.5 ? 1 : 0;
    return 4.0 - static_cast<double>(on);  // best when all coords < 0.5
  };
  ZerothOrderOptions opt;
  opt.max_iterations = 500;
  opt.smoothing = 0.4;
  opt.step_size = 0.3;
  opt.target = 0.5;
  // Start near the 0.5 threshold so finite-difference probes can cross it:
  // a piecewise-constant objective gives zero gradient estimates from deep
  // inside a flat region (the same reason GraceExplainer starts at 0.55).
  const ZerothOrderResult r =
      MinimizeRgf(f, std::vector<double>(4, 0.6), opt, &rng);
  EXPECT_TRUE(r.reached_target);
}

TEST(ZerothOrderTest, BestIterateIsTracked) {
  Rng rng(6);
  auto f = [](const std::vector<double>& x) { return std::fabs(x[0] - 0.5); };
  ZerothOrderOptions opt;
  opt.max_iterations = 100;
  const ZerothOrderResult r = MinimizeRgf(f, {0.0}, opt, &rng);
  // reported value must equal f(reported x)
  EXPECT_DOUBLE_EQ(r.value, f(r.x));
  EXPECT_GT(r.function_evals, 100u);
}

}  // namespace
}  // namespace optimize
}  // namespace moche
