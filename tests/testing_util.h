// Shared GoogleTest helpers for the MOCHE suite.
//
// Centralizes the numeric tolerances and element-wise vector comparisons
// that were previously repeated ad hoc across tests/ks/ and tests/core/,
// and fixes the RNG seeds used by randomized fixtures so every run of the
// suite exercises the same draws.

#ifndef MOCHE_TESTS_TESTING_UTIL_H_
#define MOCHE_TESTS_TESTING_UTIL_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace moche {
namespace testing_util {

/// Tolerance for quantities that are exact up to floating-point rounding
/// (ECDF ratios, threshold algebra, incremental-vs-recomputed statistics).
inline constexpr double kTightTol = 1e-12;

/// Tolerance for values checked against hand-computed decimal literals.
inline constexpr double kLooseTol = 1e-6;

/// Seed for randomized test fixtures. Tests that need several independent
/// streams add a small per-stream offset instead of inventing new seeds.
inline constexpr uint64_t kTestSeed = 20210705;  // MOCHE @ VLDB 2021.

/// Cross-platform deterministic draws for tests whose assertions depend on
/// the exact sample sequence. std::mt19937_64 output is pinned by the
/// standard, but the std::*_distribution algorithms are implementation-
/// defined, so Rng::Normal etc. differ between libstdc++/libc++/MSVC.
/// These helpers derive everything from raw engine output instead.
inline double PortableUniform(std::mt19937_64& engine) {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(engine() >> 11) * 0x1.0p-53;
}

/// Box-Muller from two portable uniforms.
inline double PortableNormal(std::mt19937_64& engine, double mean,
                             double stddev) {
  double u1 = PortableUniform(engine);
  while (u1 <= 0.0) u1 = PortableUniform(engine);
  const double u2 = PortableUniform(engine);
  constexpr double kTwoPi = 6.283185307179586476925287;
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  return mean + stddev * z;
}

inline bool PortableBernoulli(std::mt19937_64& engine, double p) {
  return PortableUniform(engine) < p;
}

/// Uniform integer in the closed range [lo, hi].
inline int64_t PortableInteger(std::mt19937_64& engine, int64_t lo,
                               int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(engine() % span);
}

/// Element-wise comparison of two double vectors with an explicit tolerance.
/// Use with EXPECT_TRUE/ASSERT_TRUE; the failure message pinpoints the first
/// offending index, so no per-element EXPECT_NEAR loops are needed.
inline ::testing::AssertionResult VectorsNear(
    const std::vector<double>& actual, const std::vector<double>& expected,
    double tolerance = kTightTol) {
  if (actual.size() != expected.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: actual has " << actual.size()
           << " elements, expected has " << expected.size();
  }
  for (size_t i = 0; i < actual.size(); ++i) {
    const double diff = std::fabs(actual[i] - expected[i]);
    if (!(diff <= tolerance)) {  // negated so NaN also fails
      return ::testing::AssertionFailure()
             << "vectors differ at index " << i << ": actual " << actual[i]
             << " vs expected " << expected[i] << " (|diff| " << diff
             << " > tolerance " << tolerance << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

/// True iff every element of `v` is finite (no NaN/Inf).
inline ::testing::AssertionResult AllFinite(const std::vector<double>& v) {
  for (size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) {
      return ::testing::AssertionFailure()
             << "element " << i << " is not finite: " << v[i];
    }
  }
  return ::testing::AssertionSuccess();
}

/// True iff `v` is sorted ascending (adjacent pairs may be equal).
inline ::testing::AssertionResult SortedAscending(
    const std::vector<double>& v) {
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i - 1] > v[i]) {
      return ::testing::AssertionFailure()
             << "out of order at index " << i << ": " << v[i - 1] << " > "
             << v[i];
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace testing_util
}  // namespace moche

#endif  // MOCHE_TESTS_TESTING_UTIL_H_
