// The corruption matrix: every way a checkpoint's bytes can be wrong must
// fail with a distinct, descriptive Status — never UB, never a crash,
// never a partially restored monitor. The CI asan-ubsan leg runs this file
// under -fsanitize=address,undefined, so any out-of-bounds read or
// overflow a corrupted length could provoke fails the build even when the
// Status paths happen to look correct.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/crc32c.h"
#include "persist/monitor_codec.h"
#include "persist/snapshot.h"
#include "stream/drift_monitor.h"
#include "timeseries/generators.h"

namespace moche {
namespace persist {
namespace {

stream::DriftMonitor BuildLoadedMonitor(
    stream::MonitorOptions options = stream::MonitorOptions{}) {
  auto monitor = stream::DriftMonitor::Create(options);
  EXPECT_TRUE(monitor.ok());
  const std::vector<ts::DriftScenario> scenarios = ts::MakeDriftScenarioSuite(
      4, /*seed=*/20210817, /*reference_size=*/60, /*length=*/200);
  for (const ts::DriftScenario& scenario : scenarios) {
    EXPECT_TRUE(
        monitor->AddStream(scenario.name, scenario.reference, 40).ok());
  }
  std::vector<std::vector<double>> batch(scenarios.size());
  size_t max_len = 0;
  for (const ts::DriftScenario& s : scenarios) {
    max_len = std::max(max_len, s.observations.size());
  }
  for (size_t t0 = 0; t0 < max_len; t0 += 32) {
    for (size_t i = 0; i < scenarios.size(); ++i) {
      const std::vector<double>& obs = scenarios[i].observations;
      const size_t begin = std::min(obs.size(), t0);
      const size_t end = std::min(obs.size(), begin + 32);
      batch[i].assign(obs.begin() + static_cast<long>(begin),
                      obs.begin() + static_cast<long>(end));
    }
    EXPECT_TRUE(monitor->PushBatch(batch).ok());
  }
  return std::move(*monitor);
}

CheckpointBlobs MakeBlobs(
    uint32_t num_shards,
    stream::MonitorOptions monitor_options = stream::MonitorOptions{}) {
  stream::DriftMonitor monitor = BuildLoadedMonitor(monitor_options);
  CheckpointOptions options;
  options.num_shards = num_shards;
  auto blobs = MonitorCodec::Serialize(monitor, options);
  EXPECT_TRUE(blobs.ok()) << blobs.status().ToString();
  return *blobs;
}

stream::MonitorOptions SketchedOptions(size_t sketch_k) {
  stream::MonitorOptions options;
  options.reference_mode = stream::ReferenceMode::kSketched;
  options.sketch_k = sketch_k;
  return options;
}

/// Walks a snapshot's section frames ([id u32][len u64][payload][crc u32]
/// after the 12-byte header) and returns the byte offset of each section's
/// payload (or its frame start when the payload is empty) — the spots a
/// bit flip is guaranteed to be CRC-protected.
std::vector<size_t> SectionPayloadOffsets(const std::string& bytes) {
  std::vector<size_t> offsets;
  size_t pos = kSnapshotMagicSize + 4;
  while (pos + 12 <= bytes.size()) {
    uint64_t length = 0;
    for (int i = 0; i < 8; ++i) {
      length |= static_cast<uint64_t>(
                    static_cast<uint8_t>(bytes[pos + 4 + static_cast<size_t>(i)]))
                << (8 * i);
    }
    offsets.push_back(length > 0 ? pos + 12 : pos);
    pos += 12 + static_cast<size_t>(length) + 4;
  }
  return offsets;
}

TEST(SnapshotCorruptionTest, EmptyAndHeaderlessInputsAreInvalidArgument) {
  auto empty = SnapshotReader::Open("", "empty.snap");
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(empty.status().message().find("0 bytes"), std::string::npos);

  // Shorter than magic + version: truncation, not a format mismatch.
  auto stub = SnapshotReader::Open("MOCHSNA", "stub.snap");
  ASSERT_FALSE(stub.ok());
  EXPECT_EQ(stub.status().code(), StatusCode::kOutOfRange);
}

TEST(SnapshotCorruptionTest, WrongMagicIsInvalidArgument) {
  CheckpointBlobs blobs = MakeBlobs(1);
  blobs.manifest[0] = 'X';
  auto restored = MonitorCodec::Deserialize(blobs, RestoreOptions{});
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(restored.status().message().find("magic"), std::string::npos);
}

TEST(SnapshotCorruptionTest, FutureFormatVersionIsUnimplemented) {
  CheckpointBlobs blobs = MakeBlobs(1);
  // The version u32 sits right after the 8-byte magic; declare version+1.
  blobs.manifest[kSnapshotMagicSize] =
      static_cast<char>(kSnapshotFormatVersion + 1);
  auto restored = MonitorCodec::Deserialize(blobs, RestoreOptions{});
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kUnimplemented);
  EXPECT_NE(restored.status().message().find("newer"), std::string::npos);

  // Same rejection when the future version is in a shard, not the
  // manifest.
  CheckpointBlobs shard_blobs = MakeBlobs(2);
  shard_blobs.shards[1][kSnapshotMagicSize] =
      static_cast<char>(kSnapshotFormatVersion + 1);
  restored = MonitorCodec::Deserialize(shard_blobs, RestoreOptions{});
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kUnimplemented);
}

TEST(SnapshotCorruptionTest, EveryTruncationPointFailsCleanly) {
  const CheckpointBlobs blobs = MakeBlobs(2);
  // Every proper prefix of the manifest must be rejected; sampling every
  // prefix length keeps the loop O(n) states on a small blob.
  for (size_t len = 0; len < blobs.manifest.size();
       len += std::max<size_t>(1, blobs.manifest.size() / 97)) {
    CheckpointBlobs truncated = blobs;
    truncated.manifest.resize(len);
    auto restored = MonitorCodec::Deserialize(truncated, RestoreOptions{});
    EXPECT_FALSE(restored.ok()) << "manifest truncated to " << len;
  }
  for (size_t len = 0; len < blobs.shards[0].size();
       len += std::max<size_t>(1, blobs.shards[0].size() / 97)) {
    CheckpointBlobs truncated = blobs;
    truncated.shards[0].resize(len);
    auto restored = MonitorCodec::Deserialize(truncated, RestoreOptions{});
    EXPECT_FALSE(restored.ok()) << "shard 0 truncated to " << len;
  }
}

TEST(SnapshotCorruptionTest, ZeroLengthShardIsRejected) {
  CheckpointBlobs blobs = MakeBlobs(3);
  blobs.shards[2].clear();
  auto restored = MonitorCodec::Deserialize(blobs, RestoreOptions{});
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(restored.status().message().find("0 bytes"), std::string::npos);
}

TEST(SnapshotCorruptionTest, MissingOrExtraShardsAreRejected) {
  const CheckpointBlobs blobs = MakeBlobs(2);
  CheckpointBlobs missing = blobs;
  missing.shards.pop_back();
  EXPECT_FALSE(MonitorCodec::Deserialize(missing, RestoreOptions{}).ok());
  CheckpointBlobs extra = blobs;
  extra.shards.push_back(blobs.shards[0]);
  EXPECT_FALSE(MonitorCodec::Deserialize(extra, RestoreOptions{}).ok());
  // Swapped shard files: each shard carries its own index, so shard 1's
  // bytes under shard 0's slot must be caught.
  CheckpointBlobs swapped = blobs;
  std::swap(swapped.shards[0], swapped.shards[1]);
  EXPECT_FALSE(MonitorCodec::Deserialize(swapped, RestoreOptions{}).ok());
}

TEST(SnapshotCorruptionTest, BitFlipInEverySectionIsCaughtByItsCrc) {
  const CheckpointBlobs blobs = MakeBlobs(2);
  const std::vector<const std::string*> files = {
      &blobs.manifest, &blobs.shards[0], &blobs.shards[1]};
  for (size_t f = 0; f < files.size(); ++f) {
    const std::vector<size_t> offsets = SectionPayloadOffsets(*files[f]);
    ASSERT_FALSE(offsets.empty()) << "file " << f << " has no sections";
    for (size_t offset : offsets) {
      CheckpointBlobs flipped = blobs;
      std::string& victim =
          f == 0 ? flipped.manifest : flipped.shards[f - 1];
      victim[offset] = static_cast<char>(victim[offset] ^ 0x01);
      auto restored = MonitorCodec::Deserialize(flipped, RestoreOptions{});
      ASSERT_FALSE(restored.ok())
          << "file " << f << ", flip at byte " << offset;
      EXPECT_NE(restored.status().message().find("CRC32C"),
                std::string::npos)
          << "file " << f << ", flip at byte " << offset << ": "
          << restored.status().ToString();
    }
  }
}

TEST(SnapshotCorruptionTest, HostileLengthFieldsCannotAllocate) {
  // A CRC-clean snapshot whose manifest declares absurd counts: the codec
  // must bound every allocation by the actual bytes available, so this
  // returns a Status instead of attempting a 2^60-element reserve. The
  // container is built by hand with a valid CRC per section.
  std::string manifest;
  SnapshotWriter writer(&manifest);
  std::string* payload = writer.BeginSection(1);  // manifest section id
  bin::AppendU32Le(1, payload);                   // num_shards
  bin::AppendU64Le(1ull << 60, payload);          // num_streams: hostile
  bin::AppendU64Le(1ull << 60, payload);          // num_events: hostile
  bin::AppendU64Le(0, payload);                   // explanations_total
  bin::AppendDoubleLe(0.05, payload);             // alpha
  bin::AppendU8(0, payload);                      // rearm
  bin::AppendU64Le(0, payload);                   // explain_every_k
  bin::AppendU8(0, payload);                      // preference
  bin::AppendU8(0, payload);                      // moche bools
  bin::AppendU8(0, payload);
  bin::AppendU8(0, payload);
  bin::AppendU8(0, payload);                      // v2: reference_mode
  bin::AppendU64Le(1024, payload);                // v2: sketch_k
  bin::AppendU64Le(0, payload);                   // v2: cache_capacity
  writer.EndSection();

  CheckpointBlobs hostile;
  hostile.manifest = manifest;
  std::string shard;
  SnapshotWriter shard_writer(&shard);
  shard_writer.BeginSection(2);  // truncated shard: header section only
  shard_writer.EndSection();
  hostile.shards.push_back(shard);
  auto restored = MonitorCodec::Deserialize(hostile, RestoreOptions{});
  EXPECT_FALSE(restored.ok());
}

TEST(SnapshotCorruptionTest, BadReferenceModeByteIsRejected) {
  // A CRC-clean manifest declaring reference mode 7: the enum range check
  // must fire before any shard is touched.
  std::string manifest;
  SnapshotWriter writer(&manifest);
  std::string* payload = writer.BeginSection(1);
  bin::AppendU32Le(1, payload);           // num_shards
  bin::AppendU64Le(0, payload);           // num_streams
  bin::AppendU64Le(0, payload);           // num_events
  bin::AppendU64Le(0, payload);           // explanations_total
  bin::AppendDoubleLe(0.05, payload);     // alpha
  bin::AppendU8(0, payload);              // rearm
  bin::AppendU64Le(0, payload);           // explain_every_k
  bin::AppendU8(0, payload);              // preference
  bin::AppendU8(0, payload);              // moche bools
  bin::AppendU8(0, payload);
  bin::AppendU8(0, payload);
  bin::AppendU8(7, payload);              // v2: not a reference mode
  bin::AppendU64Le(1024, payload);        // v2: sketch_k
  bin::AppendU64Le(0, payload);           // v2: cache_capacity
  writer.EndSection();

  CheckpointBlobs blobs = MakeBlobs(1);
  blobs.manifest = manifest;
  auto restored = MonitorCodec::Deserialize(blobs, RestoreOptions{});
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(restored.status().message().find("not a reference mode"),
            std::string::npos);
}

TEST(SnapshotCorruptionTest, SketchCapacityDisagreeingWithManifestIsCaught) {
  // Two CRC-clean checkpoints of the same workload at different sketch
  // capacities; splicing one's manifest onto the other's shards pairs a
  // manifest sketch_k with KLL summaries of the wrong capacity.
  const CheckpointBlobs k64 = MakeBlobs(2, SketchedOptions(64));
  const CheckpointBlobs k128 = MakeBlobs(2, SketchedOptions(128));
  CheckpointBlobs spliced;
  spliced.manifest = k128.manifest;
  spliced.shards = k64.shards;
  auto restored = MonitorCodec::Deserialize(spliced, RestoreOptions{});
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotCorruptionTest, SketchedManifestOverExactShardsIsRejected) {
  // A sketched manifest spliced onto exact-mode shards: the shard's
  // reference table carries no KLL summaries, so the restore must fail
  // cleanly instead of building streams with neither detector nor sketch.
  const CheckpointBlobs exact = MakeBlobs(1);
  const CheckpointBlobs sketched = MakeBlobs(1, SketchedOptions(128));
  CheckpointBlobs spliced;
  spliced.manifest = sketched.manifest;
  spliced.shards = exact.shards;
  EXPECT_FALSE(MonitorCodec::Deserialize(spliced, RestoreOptions{}).ok());
  // The reverse splice (exact manifest, sketched shards) must also fail:
  // the shard carries sketch summaries the manifest says cannot exist.
  CheckpointBlobs reverse;
  reverse.manifest = exact.manifest;
  reverse.shards = sketched.shards;
  EXPECT_FALSE(MonitorCodec::Deserialize(reverse, RestoreOptions{}).ok());
}

TEST(SnapshotCorruptionTest, EveryTruncationPointOnSketchedShardsFails) {
  // Same sweep as the exact-mode truncation test, over the v2 sketched
  // payloads (KLL summaries, ring windows, triage counters).
  const CheckpointBlobs blobs = MakeBlobs(2, SketchedOptions(64));
  for (size_t len = 0; len < blobs.shards[0].size();
       len += std::max<size_t>(1, blobs.shards[0].size() / 97)) {
    CheckpointBlobs truncated = blobs;
    truncated.shards[0].resize(len);
    auto restored = MonitorCodec::Deserialize(truncated, RestoreOptions{});
    EXPECT_FALSE(restored.ok()) << "sketched shard 0 truncated to " << len;
  }
}

TEST(SnapshotCorruptionTest, Version1ManifestRestoresWithExactDefaults) {
  // Forward compatibility with pre-v2 checkpoints: a version-1 manifest
  // ends right after the moche bools, and the reference-mode fields
  // default to kExact. Rebuild the real manifest as v1 — same payload
  // minus the 17-byte v2 tail, version stamp 1, CRC recomputed — and the
  // restore must succeed against the unmodified (exact-mode) shards.
  const CheckpointBlobs blobs = MakeBlobs(1);

  // Parse the one manifest section out of the v2 container.
  const std::string& v2 = blobs.manifest;
  ASSERT_GE(v2.size(), kSnapshotMagicSize + 4 + 12);
  size_t pos = kSnapshotMagicSize + 4;
  uint64_t length = 0;
  for (int i = 0; i < 8; ++i) {
    length |= static_cast<uint64_t>(
                  static_cast<uint8_t>(v2[pos + 4 + static_cast<size_t>(i)]))
              << (8 * i);
  }
  ASSERT_GE(length, 17u);
  const std::string v2_payload = v2.substr(pos + 12, length);

  std::string v1;
  v1.append(kSnapshotMagic, kSnapshotMagicSize);
  bin::AppendU32Le(1, &v1);  // format version 1
  std::string framed;
  bin::AppendU32Le(1, &framed);  // manifest section id
  bin::AppendU64Le(length - 17, &framed);
  framed.append(v2_payload.substr(0, v2_payload.size() - 17));
  v1.append(framed);
  bin::AppendU32Le(Crc32c(framed), &v1);

  CheckpointBlobs aged = blobs;
  aged.manifest = v1;
  auto restored = MonitorCodec::Deserialize(aged, RestoreOptions{});
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->options().reference_mode,
            stream::ReferenceMode::kExact);
  stream::DriftMonitor monitor = BuildLoadedMonitor();
  EXPECT_TRUE(stream::SameEventLogs(monitor.events(), restored->events()));
}

}  // namespace
}  // namespace persist
}  // namespace moche
