// The corruption matrix: every way a checkpoint's bytes can be wrong must
// fail with a distinct, descriptive Status — never UB, never a crash,
// never a partially restored monitor. The CI asan-ubsan leg runs this file
// under -fsanitize=address,undefined, so any out-of-bounds read or
// overflow a corrupted length could provoke fails the build even when the
// Status paths happen to look correct.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/monitor_codec.h"
#include "persist/snapshot.h"
#include "stream/drift_monitor.h"
#include "timeseries/generators.h"

namespace moche {
namespace persist {
namespace {

stream::DriftMonitor BuildLoadedMonitor() {
  auto monitor = stream::DriftMonitor::Create(stream::MonitorOptions{});
  EXPECT_TRUE(monitor.ok());
  const std::vector<ts::DriftScenario> scenarios = ts::MakeDriftScenarioSuite(
      4, /*seed=*/20210817, /*reference_size=*/60, /*length=*/200);
  for (const ts::DriftScenario& scenario : scenarios) {
    EXPECT_TRUE(
        monitor->AddStream(scenario.name, scenario.reference, 40).ok());
  }
  std::vector<std::vector<double>> batch(scenarios.size());
  size_t max_len = 0;
  for (const ts::DriftScenario& s : scenarios) {
    max_len = std::max(max_len, s.observations.size());
  }
  for (size_t t0 = 0; t0 < max_len; t0 += 32) {
    for (size_t i = 0; i < scenarios.size(); ++i) {
      const std::vector<double>& obs = scenarios[i].observations;
      const size_t begin = std::min(obs.size(), t0);
      const size_t end = std::min(obs.size(), begin + 32);
      batch[i].assign(obs.begin() + static_cast<long>(begin),
                      obs.begin() + static_cast<long>(end));
    }
    EXPECT_TRUE(monitor->PushBatch(batch).ok());
  }
  return std::move(*monitor);
}

CheckpointBlobs MakeBlobs(uint32_t num_shards) {
  stream::DriftMonitor monitor = BuildLoadedMonitor();
  CheckpointOptions options;
  options.num_shards = num_shards;
  auto blobs = MonitorCodec::Serialize(monitor, options);
  EXPECT_TRUE(blobs.ok()) << blobs.status().ToString();
  return *blobs;
}

/// Walks a snapshot's section frames ([id u32][len u64][payload][crc u32]
/// after the 12-byte header) and returns the byte offset of each section's
/// payload (or its frame start when the payload is empty) — the spots a
/// bit flip is guaranteed to be CRC-protected.
std::vector<size_t> SectionPayloadOffsets(const std::string& bytes) {
  std::vector<size_t> offsets;
  size_t pos = kSnapshotMagicSize + 4;
  while (pos + 12 <= bytes.size()) {
    uint64_t length = 0;
    for (int i = 0; i < 8; ++i) {
      length |= static_cast<uint64_t>(
                    static_cast<uint8_t>(bytes[pos + 4 + static_cast<size_t>(i)]))
                << (8 * i);
    }
    offsets.push_back(length > 0 ? pos + 12 : pos);
    pos += 12 + static_cast<size_t>(length) + 4;
  }
  return offsets;
}

TEST(SnapshotCorruptionTest, EmptyAndHeaderlessInputsAreInvalidArgument) {
  auto empty = SnapshotReader::Open("", "empty.snap");
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(empty.status().message().find("0 bytes"), std::string::npos);

  // Shorter than magic + version: truncation, not a format mismatch.
  auto stub = SnapshotReader::Open("MOCHSNA", "stub.snap");
  ASSERT_FALSE(stub.ok());
  EXPECT_EQ(stub.status().code(), StatusCode::kOutOfRange);
}

TEST(SnapshotCorruptionTest, WrongMagicIsInvalidArgument) {
  CheckpointBlobs blobs = MakeBlobs(1);
  blobs.manifest[0] = 'X';
  auto restored = MonitorCodec::Deserialize(blobs, RestoreOptions{});
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(restored.status().message().find("magic"), std::string::npos);
}

TEST(SnapshotCorruptionTest, FutureFormatVersionIsUnimplemented) {
  CheckpointBlobs blobs = MakeBlobs(1);
  // The version u32 sits right after the 8-byte magic; declare version+1.
  blobs.manifest[kSnapshotMagicSize] =
      static_cast<char>(kSnapshotFormatVersion + 1);
  auto restored = MonitorCodec::Deserialize(blobs, RestoreOptions{});
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kUnimplemented);
  EXPECT_NE(restored.status().message().find("newer"), std::string::npos);

  // Same rejection when the future version is in a shard, not the
  // manifest.
  CheckpointBlobs shard_blobs = MakeBlobs(2);
  shard_blobs.shards[1][kSnapshotMagicSize] =
      static_cast<char>(kSnapshotFormatVersion + 1);
  restored = MonitorCodec::Deserialize(shard_blobs, RestoreOptions{});
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kUnimplemented);
}

TEST(SnapshotCorruptionTest, EveryTruncationPointFailsCleanly) {
  const CheckpointBlobs blobs = MakeBlobs(2);
  // Every proper prefix of the manifest must be rejected; sampling every
  // prefix length keeps the loop O(n) states on a small blob.
  for (size_t len = 0; len < blobs.manifest.size();
       len += std::max<size_t>(1, blobs.manifest.size() / 97)) {
    CheckpointBlobs truncated = blobs;
    truncated.manifest.resize(len);
    auto restored = MonitorCodec::Deserialize(truncated, RestoreOptions{});
    EXPECT_FALSE(restored.ok()) << "manifest truncated to " << len;
  }
  for (size_t len = 0; len < blobs.shards[0].size();
       len += std::max<size_t>(1, blobs.shards[0].size() / 97)) {
    CheckpointBlobs truncated = blobs;
    truncated.shards[0].resize(len);
    auto restored = MonitorCodec::Deserialize(truncated, RestoreOptions{});
    EXPECT_FALSE(restored.ok()) << "shard 0 truncated to " << len;
  }
}

TEST(SnapshotCorruptionTest, ZeroLengthShardIsRejected) {
  CheckpointBlobs blobs = MakeBlobs(3);
  blobs.shards[2].clear();
  auto restored = MonitorCodec::Deserialize(blobs, RestoreOptions{});
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(restored.status().message().find("0 bytes"), std::string::npos);
}

TEST(SnapshotCorruptionTest, MissingOrExtraShardsAreRejected) {
  const CheckpointBlobs blobs = MakeBlobs(2);
  CheckpointBlobs missing = blobs;
  missing.shards.pop_back();
  EXPECT_FALSE(MonitorCodec::Deserialize(missing, RestoreOptions{}).ok());
  CheckpointBlobs extra = blobs;
  extra.shards.push_back(blobs.shards[0]);
  EXPECT_FALSE(MonitorCodec::Deserialize(extra, RestoreOptions{}).ok());
  // Swapped shard files: each shard carries its own index, so shard 1's
  // bytes under shard 0's slot must be caught.
  CheckpointBlobs swapped = blobs;
  std::swap(swapped.shards[0], swapped.shards[1]);
  EXPECT_FALSE(MonitorCodec::Deserialize(swapped, RestoreOptions{}).ok());
}

TEST(SnapshotCorruptionTest, BitFlipInEverySectionIsCaughtByItsCrc) {
  const CheckpointBlobs blobs = MakeBlobs(2);
  const std::vector<const std::string*> files = {
      &blobs.manifest, &blobs.shards[0], &blobs.shards[1]};
  for (size_t f = 0; f < files.size(); ++f) {
    const std::vector<size_t> offsets = SectionPayloadOffsets(*files[f]);
    ASSERT_FALSE(offsets.empty()) << "file " << f << " has no sections";
    for (size_t offset : offsets) {
      CheckpointBlobs flipped = blobs;
      std::string& victim =
          f == 0 ? flipped.manifest : flipped.shards[f - 1];
      victim[offset] = static_cast<char>(victim[offset] ^ 0x01);
      auto restored = MonitorCodec::Deserialize(flipped, RestoreOptions{});
      ASSERT_FALSE(restored.ok())
          << "file " << f << ", flip at byte " << offset;
      EXPECT_NE(restored.status().message().find("CRC32C"),
                std::string::npos)
          << "file " << f << ", flip at byte " << offset << ": "
          << restored.status().ToString();
    }
  }
}

TEST(SnapshotCorruptionTest, HostileLengthFieldsCannotAllocate) {
  // A CRC-clean snapshot whose manifest declares absurd counts: the codec
  // must bound every allocation by the actual bytes available, so this
  // returns a Status instead of attempting a 2^60-element reserve. The
  // container is built by hand with a valid CRC per section.
  std::string manifest;
  SnapshotWriter writer(&manifest);
  std::string* payload = writer.BeginSection(1);  // manifest section id
  bin::AppendU32Le(1, payload);                   // num_shards
  bin::AppendU64Le(1ull << 60, payload);          // num_streams: hostile
  bin::AppendU64Le(1ull << 60, payload);          // num_events: hostile
  bin::AppendU64Le(0, payload);                   // explanations_total
  bin::AppendDoubleLe(0.05, payload);             // alpha
  bin::AppendU8(0, payload);                      // rearm
  bin::AppendU64Le(0, payload);                   // explain_every_k
  bin::AppendU8(0, payload);                      // preference
  bin::AppendU8(0, payload);                      // moche bools
  bin::AppendU8(0, payload);
  bin::AppendU8(0, payload);
  writer.EndSection();

  CheckpointBlobs hostile;
  hostile.manifest = manifest;
  std::string shard;
  SnapshotWriter shard_writer(&shard);
  shard_writer.BeginSection(2);  // truncated shard: header section only
  shard_writer.EndSection();
  hostile.shards.push_back(shard);
  auto restored = MonitorCodec::Deserialize(hostile, RestoreOptions{});
  EXPECT_FALSE(restored.ok());
}

}  // namespace
}  // namespace persist
}  // namespace moche
