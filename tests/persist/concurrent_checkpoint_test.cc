// Checkpointing concurrent with a live PushBatch driver: the race the
// monitor's state mutex exists to make safe, and the test the CI TSan leg
// runs to prove it. A checkpoint thread serializes continuously while the
// driver thread pushes batches (with the monitor's own worker pool adding
// more threads underneath); every blob captured must deserialize to a
// consistent batch-boundary state — a prefix of the final event log —
// because Serialize holds the state mutex for its whole read and PushBatch
// holds it for the whole batch, so a checkpoint observes pre- or
// post-batch state, never a torn one.

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "persist/monitor_codec.h"
#include "stream/drift_monitor.h"
#include "timeseries/generators.h"

namespace moche {
namespace persist {
namespace {

TEST(ConcurrentCheckpointTest, SerializeRacesPushBatchSafely) {
  const std::vector<ts::DriftScenario> suite = ts::MakeDriftScenarioSuite(
      4, /*seed=*/20210817, /*reference_size=*/60, /*length=*/380);
  stream::MonitorOptions options;
  options.num_threads = 2;  // the monitor's own pool races too
  auto created = stream::DriftMonitor::Create(options);
  ASSERT_TRUE(created.ok());
  stream::DriftMonitor monitor = std::move(*created);
  for (const ts::DriftScenario& scenario : suite) {
    ASSERT_TRUE(
        monitor.AddStream(scenario.name, scenario.reference, 40).ok());
  }

  constexpr size_t kBatchTicks = 16;
  size_t max_tail = 0;
  for (const ts::DriftScenario& s : suite) {
    max_tail = std::max(max_tail, s.observations.size());
  }

  std::atomic<bool> done{false};
  std::vector<CheckpointBlobs> captured;
  std::thread checkpointer([&] {
    // Loop while the driver pushes, then one final capture after it stops,
    // so the capture list provably reaches the final state.
    bool final_round = false;
    while (!final_round) {
      final_round = done.load(std::memory_order_acquire);
      auto blobs = MonitorCodec::Serialize(monitor, CheckpointOptions{});
      ASSERT_TRUE(blobs.ok()) << blobs.status().ToString();
      captured.push_back(std::move(*blobs));
    }
  });

  std::vector<std::vector<double>> batch(suite.size());
  for (size_t t0 = 0; t0 < max_tail; t0 += kBatchTicks) {
    for (size_t i = 0; i < suite.size(); ++i) {
      const std::vector<double>& obs = suite[i].observations;
      const size_t begin = std::min(obs.size(), t0);
      const size_t end = std::min(obs.size(), begin + kBatchTicks);
      batch[i].assign(obs.begin() + static_cast<long>(begin),
                      obs.begin() + static_cast<long>(end));
    }
    ASSERT_TRUE(monitor.PushBatch(batch).ok());
  }
  done.store(true, std::memory_order_release);
  checkpointer.join();
  ASSERT_FALSE(captured.empty());

  // Every concurrent capture restores to a batch-boundary state whose
  // event log is a prefix of the final log.
  const std::vector<stream::DriftEvent>& final_events = monitor.events();
  for (size_t c = 0; c < captured.size(); ++c) {
    auto restored = MonitorCodec::Deserialize(captured[c], RestoreOptions{});
    ASSERT_TRUE(restored.ok())
        << "capture " << c << ": " << restored.status().ToString();
    const std::vector<stream::DriftEvent>& events = restored->events();
    ASSERT_LE(events.size(), final_events.size()) << "capture " << c;
    const std::vector<stream::DriftEvent> prefix(
        final_events.begin(),
        final_events.begin() + static_cast<long>(events.size()));
    EXPECT_TRUE(stream::SameEventLogs(prefix, events)) << "capture " << c;
    // Batch-boundary states only: a multiple of the batch size, or the
    // exhausted tail (the last batch is partial when the observation
    // length is not a multiple of kBatchTicks).
    EXPECT_TRUE(restored->stream_ticks(0) % kBatchTicks == 0 ||
                restored->stream_ticks(0) == monitor.stream_ticks(0))
        << "capture " << c << " is mid-batch at tick "
        << restored->stream_ticks(0);
  }
  // The captures must include the final state (the checkpointer kept
  // running after the last batch), closing the loop on progress.
  auto last =
      MonitorCodec::Deserialize(captured.back(), RestoreOptions{});
  ASSERT_TRUE(last.ok());
  EXPECT_TRUE(stream::SameEventLogs(final_events, last->events()));
}

}  // namespace
}  // namespace persist
}  // namespace moche
