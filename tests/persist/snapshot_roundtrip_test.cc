// Round-trip identity of the snapshot stack, bottom-up: the CRC32C known
// answer, the sectioned container, the atomic file commit, and the full
// monitor codec — serialize -> deserialize -> serialize must be a byte
// fixed point, and a restored monitor must be observably identical to the
// one that was checkpointed (events, stream state, interned references)
// and continue identically when fed the remaining observations.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/crc32c.h"
#include "persist/monitor_codec.h"
#include "persist/snapshot.h"
#include "stream/drift_monitor.h"
#include "timeseries/generators.h"

namespace moche {
namespace persist {
namespace {

// A monitor mid-deployment: drift-scenario streams fully replayed in
// lockstep batches, so the checkpoint carries filled windows, excursion
// state, and a non-empty event log.
stream::DriftMonitor BuildLoadedMonitor(
    size_t streams, size_t batch_ticks,
    stream::MonitorOptions options = stream::MonitorOptions{}) {
  options.rearm = stream::RearmPolicy::kOncePerExcursion;
  auto monitor = stream::DriftMonitor::Create(options);
  EXPECT_TRUE(monitor.ok()) << monitor.status().ToString();
  const std::vector<ts::DriftScenario> scenarios = ts::MakeDriftScenarioSuite(
      streams, /*seed=*/20210817, /*reference_size=*/60, /*length=*/200);
  for (const ts::DriftScenario& scenario : scenarios) {
    auto index = monitor->AddStream(scenario.name, scenario.reference,
                                    /*window_size=*/40);
    EXPECT_TRUE(index.ok()) << index.status().ToString();
  }
  size_t max_len = 0;
  for (const ts::DriftScenario& s : scenarios) {
    max_len = std::max(max_len, s.observations.size());
  }
  std::vector<std::vector<double>> batch(scenarios.size());
  for (size_t t0 = 0; t0 < max_len; t0 += batch_ticks) {
    for (size_t i = 0; i < scenarios.size(); ++i) {
      const std::vector<double>& obs = scenarios[i].observations;
      const size_t begin = std::min(obs.size(), t0);
      const size_t end = std::min(obs.size(), begin + batch_ticks);
      batch[i].assign(obs.begin() + static_cast<long>(begin),
                      obs.begin() + static_cast<long>(end));
    }
    EXPECT_TRUE(monitor->PushBatch(batch).ok());
  }
  return std::move(*monitor);
}

TEST(Crc32cTest, KnownAnswerAndIncrementalExtension) {
  // The canonical CRC32C check value: "123456789" -> 0xE3069283 (iSCSI,
  // RFC 3720 appendix; every conforming implementation agrees).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // Extension composes: Crc32c(ab) == ExtendCrc32c(Crc32c(a), b).
  EXPECT_EQ(ExtendCrc32c(Crc32c("12345"), "6789", 4), 0xE3069283u);
  // Sensitivity: one flipped bit anywhere changes the sum.
  EXPECT_NE(Crc32c("123456788"), 0xE3069283u);
}

TEST(SnapshotContainerTest, SectionsRoundTripInOrder) {
  std::string bytes;
  SnapshotWriter writer(&bytes);
  std::string* payload = writer.BeginSection(7);
  bin::AppendU64Le(0xDEADBEEFull, payload);
  writer.EndSection();
  payload = writer.BeginSection(9);  // empty payload is legal
  writer.EndSection();

  // Header: magic + version, little-endian.
  ASSERT_GE(bytes.size(), kSnapshotMagicSize + 4);
  EXPECT_EQ(bytes.substr(0, kSnapshotMagicSize), "MOCHSNAP");
  EXPECT_EQ(static_cast<uint8_t>(bytes[kSnapshotMagicSize]),
            kSnapshotFormatVersion);

  auto reader = SnapshotReader::Open(bytes, "test.snap");
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  SnapshotSection section;
  bool done = false;
  ASSERT_TRUE(reader->Next(&section, &done).ok());
  ASSERT_FALSE(done);
  EXPECT_EQ(section.id, 7u);
  ASSERT_EQ(section.payload.size(), 8u);
  bin::Reader payload_reader(section.payload);
  uint64_t value = 0;
  ASSERT_TRUE(payload_reader.ReadU64Le(&value));
  EXPECT_EQ(value, 0xDEADBEEFull);
  ASSERT_TRUE(reader->Next(&section, &done).ok());
  ASSERT_FALSE(done);
  EXPECT_EQ(section.id, 9u);
  EXPECT_TRUE(section.payload.empty());
  ASSERT_TRUE(reader->Next(&section, &done).ok());
  EXPECT_TRUE(done);
}

TEST(SnapshotContainerTest, AtomicWriteFileCommitsAndLeavesNoTemp) {
  const std::string path = ::testing::TempDir() + "atomic_write_test.snap";
  ASSERT_TRUE(AtomicWriteFile(path, "first contents").ok());
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "first contents");
  // Overwrite goes through the same tmp+rename commit.
  ASSERT_TRUE(AtomicWriteFile(path, "second").ok());
  bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "second");
  // The staging file never survives a successful commit.
  EXPECT_FALSE(ReadFileToString(path + ".tmp").ok());
  std::remove(path.c_str());
}

TEST(MonitorCodecTest, SerializeDeserializeSerializeIsAByteFixedPoint) {
  stream::DriftMonitor monitor = BuildLoadedMonitor(/*streams=*/6,
                                                    /*batch_ticks=*/32);
  ASSERT_FALSE(monitor.events().empty())
      << "workload produced no drift events; the round-trip would be "
         "vacuous";

  CheckpointOptions options;
  options.num_shards = 3;
  auto blobs = MonitorCodec::Serialize(monitor, options);
  ASSERT_TRUE(blobs.ok()) << blobs.status().ToString();
  ASSERT_EQ(blobs->shards.size(), 3u);

  auto restored = MonitorCodec::Deserialize(*blobs, RestoreOptions{});
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  auto again = MonitorCodec::Serialize(*restored, options);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->manifest, blobs->manifest);
  for (size_t i = 0; i < blobs->shards.size(); ++i) {
    EXPECT_EQ(again->shards[i], blobs->shards[i]) << "shard " << i;
  }

  // Observable identity: events (and their FormatEventLog rendering),
  // stream metadata, interned reference count.
  EXPECT_TRUE(stream::SameEventLogs(monitor.events(), restored->events()));
  EXPECT_EQ(FormatEventLog(restored->events()),
            FormatEventLog(monitor.events()));
  ASSERT_EQ(restored->num_streams(), monitor.num_streams());
  for (size_t i = 0; i < monitor.num_streams(); ++i) {
    EXPECT_EQ(restored->stream_name(i), monitor.stream_name(i));
    EXPECT_EQ(restored->stream_ticks(i), monitor.stream_ticks(i));
    EXPECT_EQ(restored->stream_in_excursion(i),
              monitor.stream_in_excursion(i));
  }
  EXPECT_EQ(restored->cache_stats().entries, monitor.cache_stats().entries);
  const stream::DriftMonitor::Stats original_stats = monitor.stats();
  const stream::DriftMonitor::Stats restored_stats = restored->stats();
  EXPECT_EQ(restored_stats.observations, original_stats.observations);
  EXPECT_EQ(restored_stats.drift_ticks, original_stats.drift_ticks);
  EXPECT_EQ(restored_stats.explanations, original_stats.explanations);
}

TEST(MonitorCodecTest, ShardCountChangesBytesButNotTheRestoredState) {
  stream::DriftMonitor monitor = BuildLoadedMonitor(/*streams=*/4,
                                                    /*batch_ticks=*/32);
  for (uint32_t shards : {1u, 2u, 5u}) {
    CheckpointOptions options;
    options.num_shards = shards;
    auto blobs = MonitorCodec::Serialize(monitor, options);
    ASSERT_TRUE(blobs.ok()) << "shards=" << shards;
    ASSERT_EQ(blobs->shards.size(), shards);
    auto restored = MonitorCodec::Deserialize(*blobs, RestoreOptions{});
    ASSERT_TRUE(restored.ok())
        << "shards=" << shards << ": " << restored.status().ToString();
    EXPECT_TRUE(stream::SameEventLogs(monitor.events(), restored->events()))
        << "shards=" << shards;
  }
  CheckpointOptions zero;
  zero.num_shards = 0;
  EXPECT_FALSE(MonitorCodec::Serialize(monitor, zero).ok());
}

TEST(MonitorCodecTest, RestoredMonitorContinuesIdentically) {
  stream::DriftMonitor monitor = BuildLoadedMonitor(/*streams=*/4,
                                                    /*batch_ticks=*/32);
  auto blobs = MonitorCodec::Serialize(monitor, CheckpointOptions{});
  ASSERT_TRUE(blobs.ok());
  auto restored = MonitorCodec::Deserialize(*blobs, RestoreOptions{});
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  // Feed both the SAME fresh batches: a shifted regime that forces new
  // excursions. The logs must stay bit-identical push for push — the
  // restored detector treaps, re-arm state, and tick counters all have to
  // agree, not just the recorded history.
  std::vector<std::vector<double>> batch(monitor.num_streams());
  for (int round = 0; round < 6; ++round) {
    for (size_t s = 0; s < monitor.num_streams(); ++s) {
      batch[s].clear();
      for (int t = 0; t < 10; ++t) {
        batch[s].push_back(round < 3 ? 1000.0 + t : 0.5 * t);
      }
    }
    ASSERT_TRUE(monitor.PushBatch(batch).ok());
    ASSERT_TRUE(restored->PushBatch(batch).ok());
    ASSERT_TRUE(stream::SameEventLogs(monitor.events(), restored->events()))
        << "diverged at round " << round;
  }
}

TEST(MonitorCodecTest, CheckpointDirectoryRoundTripsThroughDisk) {
  stream::DriftMonitor monitor = BuildLoadedMonitor(/*streams=*/4,
                                                    /*batch_ticks=*/32);
  const std::string dir = ::testing::TempDir() + "roundtrip_ckpt";
  CheckpointOptions options;
  options.num_shards = 2;
  ASSERT_TRUE(CheckpointMonitor(monitor, dir, options).ok());

  // The committed layout: manifest + one file per shard, no temp files.
  EXPECT_TRUE(ReadFileToString(dir + "/" + kManifestFileName).ok());
  EXPECT_TRUE(ReadFileToString(dir + "/" + ShardFileName(0)).ok());
  EXPECT_TRUE(ReadFileToString(dir + "/" + ShardFileName(1)).ok());
  EXPECT_FALSE(ReadFileToString(dir + "/" + ShardFileName(2)).ok());

  auto restored = RestoreMonitor(dir);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(stream::SameEventLogs(monitor.events(), restored->events()));

  // A second checkpoint overwrites in place (the steady-state cadence).
  ASSERT_TRUE(CheckpointMonitor(monitor, dir, options).ok());
  restored = RestoreMonitor(dir);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(stream::SameEventLogs(monitor.events(), restored->events()));

  EXPECT_EQ(RestoreMonitor(::testing::TempDir() + "no_such_ckpt")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(MonitorCodecTest, SketchedFleetRoundTripIsAByteFixedPoint) {
  // The v2 payload paths: manifest reference-mode fields, per-reference KLL
  // summaries, ring-buffer stream records, and triage counters must all
  // survive serialize -> deserialize -> serialize bit for bit.
  stream::MonitorOptions options;
  options.reference_mode = stream::ReferenceMode::kSketched;
  options.sketch_k = 128;
  options.cache_capacity = 16;
  stream::DriftMonitor monitor =
      BuildLoadedMonitor(/*streams=*/6, /*batch_ticks=*/32, options);
  ASSERT_FALSE(monitor.events().empty());
  const stream::DriftMonitor::Stats before = monitor.stats();
  ASSERT_GT(before.triage_certified_pass + before.triage_certified_fail +
                before.triage_fallbacks,
            0u);

  CheckpointOptions checkpoint;
  checkpoint.num_shards = 3;
  auto blobs = MonitorCodec::Serialize(monitor, checkpoint);
  ASSERT_TRUE(blobs.ok()) << blobs.status().ToString();
  auto restored = MonitorCodec::Deserialize(*blobs, RestoreOptions{});
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  auto again = MonitorCodec::Serialize(*restored, checkpoint);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->manifest, blobs->manifest);
  for (size_t i = 0; i < blobs->shards.size(); ++i) {
    EXPECT_EQ(again->shards[i], blobs->shards[i]) << "shard " << i;
  }

  // The restored fleet is still sketched (mode is snapshot state) and its
  // triage history survived.
  EXPECT_EQ(restored->options().reference_mode,
            stream::ReferenceMode::kSketched);
  EXPECT_EQ(restored->options().sketch_k, options.sketch_k);
  const stream::DriftMonitor::Stats after = restored->stats();
  EXPECT_EQ(after.triage_certified_pass, before.triage_certified_pass);
  EXPECT_EQ(after.triage_certified_fail, before.triage_certified_fail);
  EXPECT_EQ(after.triage_fallbacks, before.triage_fallbacks);
  EXPECT_TRUE(stream::SameEventLogs(monitor.events(), restored->events()));

  // And it continues identically: same fresh batches, bit-identical logs.
  std::vector<std::vector<double>> batch(monitor.num_streams());
  for (int round = 0; round < 6; ++round) {
    for (size_t s = 0; s < monitor.num_streams(); ++s) {
      batch[s].clear();
      for (int t = 0; t < 10; ++t) {
        batch[s].push_back(round < 3 ? 1000.0 + t : 0.5 * t);
      }
    }
    ASSERT_TRUE(monitor.PushBatch(batch).ok());
    ASSERT_TRUE(restored->PushBatch(batch).ok());
    ASSERT_TRUE(stream::SameEventLogs(monitor.events(), restored->events()))
        << "diverged at round " << round;
  }
}

TEST(MonitorCodecTest, RestoreThreadCountIsAFreeChoice) {
  stream::DriftMonitor monitor = BuildLoadedMonitor(/*streams=*/4,
                                                    /*batch_ticks=*/32);
  auto blobs = MonitorCodec::Serialize(monitor, CheckpointOptions{});
  ASSERT_TRUE(blobs.ok());
  RestoreOptions parallel;
  parallel.num_threads = 4;
  auto restored = MonitorCodec::Deserialize(*blobs, parallel);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(stream::SameEventLogs(monitor.events(), restored->events()));
  // num_threads is restore-time state, not snapshot state: re-serializing
  // the parallel restore still reproduces the original bytes.
  auto again = MonitorCodec::Serialize(*restored, CheckpointOptions{});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->manifest, blobs->manifest);
  EXPECT_EQ(again->shards, blobs->shards);
}

}  // namespace
}  // namespace persist
}  // namespace moche
