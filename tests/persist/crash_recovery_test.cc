// The crash-recovery gate: a monitor checkpointed mid-deployment, its
// process SIGKILLed mid-batch, must restore and resume to an event log
// BYTE-identical (FormatEventLog) to a run that never crashed.
//
// The kill test forks a child that replays a MakeDriftScenarioSuite
// workload, checkpoints after K batches, signals the parent over a pipe,
// and keeps pushing batches until the parent's SIGKILL lands — by design
// mid-PushBatch, with no chance to flush or destructors to run. The
// parent restores from the committed checkpoint, feeds the remaining
// batches, and diffs the rendered event log against an uninterrupted
// reference run. A second (fork-free) test drives the same guarantee
// through the harness layer: ReplayDataset with a checkpoint cadence,
// then ResumeReplayDataset, must reproduce the uninterrupted replay.
//
// fork() is deliberate and safe here: the child never returns into gtest
// (it either loops until killed or _exits), and the test binary is
// excluded from the TSan leg (fork + threads don't mix; the concurrent-
// checkpoint coverage lives in concurrent_checkpoint_test.cc).

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/stream_replay.h"
#include "persist/monitor_codec.h"
#include "stream/drift_monitor.h"
#include "timeseries/generators.h"
#include "timeseries/series.h"

namespace moche {
namespace persist {
namespace {

constexpr size_t kStreams = 5;
constexpr size_t kReferenceSize = 60;
constexpr size_t kLength = 260;
constexpr size_t kWindow = 40;
constexpr size_t kBatchTicks = 25;
constexpr size_t kCheckpointAfterBatches = 4;

std::vector<ts::DriftScenario> Workload() {
  return ts::MakeDriftScenarioSuite(kStreams, /*seed=*/20210817,
                                    kReferenceSize, kLength);
}

stream::DriftMonitor MakeMonitor(
    const std::vector<ts::DriftScenario>& suite,
    stream::MonitorOptions options = stream::MonitorOptions{}) {
  auto monitor = stream::DriftMonitor::Create(options);
  EXPECT_TRUE(monitor.ok());
  for (const ts::DriftScenario& scenario : suite) {
    EXPECT_TRUE(
        monitor->AddStream(scenario.name, scenario.reference, kWindow).ok());
  }
  return std::move(*monitor);
}

/// The lockstep batch at tail offset `t0` — identical slicing in the
/// reference run, the child, and the resumed parent.
std::vector<std::vector<double>> BatchAt(
    const std::vector<ts::DriftScenario>& suite, size_t t0) {
  std::vector<std::vector<double>> batch(suite.size());
  for (size_t i = 0; i < suite.size(); ++i) {
    const std::vector<double>& obs = suite[i].observations;
    const size_t begin = std::min(obs.size(), t0);
    const size_t end = std::min(obs.size(), begin + kBatchTicks);
    batch[i].assign(obs.begin() + static_cast<long>(begin),
                    obs.begin() + static_cast<long>(end));
  }
  return batch;
}

size_t MaxTail(const std::vector<ts::DriftScenario>& suite) {
  size_t max_tail = 0;
  for (const ts::DriftScenario& s : suite) {
    max_tail = std::max(max_tail, s.observations.size());
  }
  return max_tail;
}

/// The child's half of the kill test. Never returns: loops feeding batches
/// until SIGKILL arrives (or _exits non-zero on any internal failure,
/// which the parent's waitpid check converts into a test failure).
[[noreturn]] void RunChildUntilKilled(const std::string& dir, int ready_fd,
                                      const stream::MonitorOptions& options) {
  const std::vector<ts::DriftScenario> suite = Workload();
  stream::DriftMonitor monitor = MakeMonitor(suite, options);
  size_t t0 = 0;
  for (size_t batch = 0; batch < kCheckpointAfterBatches;
       ++batch, t0 += kBatchTicks) {
    if (!monitor.PushBatch(BatchAt(suite, t0)).ok()) _exit(2);
  }
  if (!CheckpointMonitor(monitor, dir).ok()) _exit(3);
  // Tell the parent the checkpoint is committed, then keep working so the
  // SIGKILL lands mid-batch: once the real observations run out, recycle
  // the last window of data forever (the state past the checkpoint is
  // about to be destroyed anyway — that is the point).
  const char byte = '!';
  if (write(ready_fd, &byte, 1) != 1) _exit(4);
  const size_t max_tail = MaxTail(suite);
  for (;;) {
    if (!monitor.PushBatch(BatchAt(suite, t0)).ok()) _exit(5);
    if (t0 + kBatchTicks < max_tail) t0 += kBatchTicks;
  }
}

/// The full kill-recover-diff cycle for one monitor configuration. Both
/// reference modes must honor the same guarantee: what the committed
/// checkpoint captured, plus the remaining batches, reproduces the
/// uninterrupted event log byte for byte.
void RunSigkillRecoveryScenario(const stream::MonitorOptions& options,
                                const std::string& dir) {
  const std::vector<ts::DriftScenario> suite = Workload();
  const size_t max_tail = MaxTail(suite);

  // The uninterrupted reference run.
  stream::DriftMonitor reference = MakeMonitor(suite, options);
  for (size_t t0 = 0; t0 < max_tail; t0 += kBatchTicks) {
    ASSERT_TRUE(reference.PushBatch(BatchAt(suite, t0)).ok());
  }
  const std::string reference_log = FormatEventLog(reference.events());
  ASSERT_FALSE(reference.events().empty())
      << "workload produced no events; the recovery check would be vacuous";

  int pipe_fds[2];
  ASSERT_EQ(pipe(pipe_fds), 0);
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    close(pipe_fds[0]);
    RunChildUntilKilled(dir, pipe_fds[1], options);  // never returns
  }
  close(pipe_fds[1]);

  // Wait for "checkpoint committed", then kill without warning: SIGKILL
  // cannot be caught, so no destructor, flush, or atexit runs in the
  // child — the checkpoint directory is all that survives.
  char byte = 0;
  ASSERT_EQ(read(pipe_fds[0], &byte, 1), 1) << "child died before committing";
  close(pipe_fds[0]);
  ASSERT_EQ(kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child exited with status " << status << " instead of dying by "
      << "SIGKILL — its setup failed before the kill landed";

  // Restore and resume from the batch boundary the checkpoint captured.
  auto restored = RestoreMonitor(dir);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->options().reference_mode, options.reference_mode);
  ASSERT_EQ(restored->stream_ticks(0),
            kCheckpointAfterBatches * kBatchTicks);
  for (size_t t0 = kCheckpointAfterBatches * kBatchTicks; t0 < max_tail;
       t0 += kBatchTicks) {
    ASSERT_TRUE(restored->PushBatch(BatchAt(suite, t0)).ok());
  }
  EXPECT_EQ(FormatEventLog(restored->events()), reference_log);
  EXPECT_TRUE(stream::SameEventLogs(reference.events(), restored->events()));
}

TEST(CrashRecoveryTest, SigkilledRunResumesToAByteIdenticalEventLog) {
  RunSigkillRecoveryScenario(stream::MonitorOptions{},
                             ::testing::TempDir() + "crash_recovery_ckpt");
}

TEST(CrashRecoveryTest, SigkilledSketchedFleetResumesIdentically) {
  // The sketched fleet persists ring windows + KLL summaries instead of
  // detector treaps; the recovery guarantee is the same.
  stream::MonitorOptions options;
  options.reference_mode = stream::ReferenceMode::kSketched;
  options.sketch_k = 128;
  RunSigkillRecoveryScenario(
      options, ::testing::TempDir() + "crash_recovery_sketched_ckpt");
}

// The same guarantee through the harness layer, without a crash: a replay
// that checkpointed partway resumes to the uninterrupted result. The
// truncated first phase stops at a batch boundary (its series simply end
// there), exactly where a crash after the final checkpoint would leave a
// durable replay.
TEST(CrashRecoveryTest, HarnessResumeReproducesUninterruptedReplay) {
  const std::vector<ts::DriftScenario> suite = Workload();
  ts::Dataset full;
  full.name = "crash-recovery-suite";
  ts::Dataset half;
  half.name = full.name;
  const size_t half_tail =
      ((kLength - kReferenceSize) / (2 * kBatchTicks)) * kBatchTicks;
  for (const ts::DriftScenario& scenario : suite) {
    ts::TimeSeries series;
    series.name = scenario.name;
    series.values = scenario.reference;
    series.values.insert(series.values.end(), scenario.observations.begin(),
                         scenario.observations.end());
    full.series.push_back(series);
    series.values.resize(kReferenceSize + half_tail);
    half.series.push_back(std::move(series));
  }

  harness::ReplayOptions options;
  options.reference_size = kReferenceSize;
  options.window_size = kWindow;
  options.ticks_per_batch = kBatchTicks;

  auto uninterrupted = harness::ReplayDataset(full, options);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status().ToString();
  ASSERT_FALSE(uninterrupted->events.empty());

  // Phase 1: replay the truncated dataset, checkpointing every batch.
  options.checkpoint_dir = ::testing::TempDir() + "harness_resume_ckpt";
  auto first = harness::ReplayDataset(half, options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // Phase 2: resume against the full dataset.
  auto resumed = harness::ResumeReplayDataset(full, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(
      stream::SameEventLogs(uninterrupted->events, resumed->events));
  EXPECT_EQ(FormatEventLog(resumed->events),
            FormatEventLog(uninterrupted->events));
  EXPECT_EQ(resumed->observations, uninterrupted->observations);
  EXPECT_EQ(resumed->drift_ticks, uninterrupted->drift_ticks);
  EXPECT_EQ(resumed->stream_names, uninterrupted->stream_names);

  // Resuming without a checkpoint directory is an error, as is resuming
  // against a dataset whose streams don't match the checkpoint.
  harness::ReplayOptions no_dir = options;
  no_dir.checkpoint_dir.clear();
  EXPECT_FALSE(harness::ResumeReplayDataset(full, no_dir).ok());
  ts::Dataset renamed = full;
  renamed.series[0].name = "imposter";
  EXPECT_FALSE(harness::ResumeReplayDataset(renamed, options).ok());
}

}  // namespace
}  // namespace persist
}  // namespace moche
