// Certified-triage properties (src/sketch/sketched_reference.h and the
// Moche::*Sketched entry points).
//
// The contract under test: a kCertainPass / kCertainFail verdict is
// CERTIFIED — the exact ks::Run decision on the same (reference, window)
// is guaranteed to agree. A disagreement is a hard bug, never flaky test
// noise, because the bracket is derived from the sketch's exact integer
// rank bound and the margin only ever widens the uncertain band. The
// randomized sweep below therefore asserts agreement on every certified
// verdict, across regimes chosen to produce all three verdicts.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/moche.h"
#include "ks/ks_test.h"
#include "sketch/sketched_reference.h"
#include "util/binary_io.h"
#include "util/rng.h"

namespace moche {
namespace {

using sketch::KllOptions;
using sketch::SketchedReference;
using sketch::SketchTriage;
using sketch::TriageVerdict;

SketchedReference MakeSketched(const std::vector<double>& reference,
                               double alpha, size_t k) {
  KllOptions options;
  options.capacity = k;
  auto sketched = SketchedReference::FromSample(reference, alpha, options);
  EXPECT_TRUE(sketched.ok()) << sketched.status().message();
  return std::move(*sketched);
}

TEST(SketchTriageTest, CertifiedVerdictsAgreeWithExactKs) {
  Rng rng(101);
  const double alpha = 0.05;
  const size_t n = 4000;
  std::vector<double> reference;
  reference.reserve(n);
  for (size_t i = 0; i < n; ++i) reference.push_back(rng.Normal(0.0, 1.0));

  const Moche engine{MocheOptions{}};
  // A deliberately coarse sketch (k = 128, epsilon ~ 0.04) keeps the
  // uncertain band wide but narrower than the KS threshold itself, so the
  // shift ladder below exercises all three verdicts. (At k = 32 epsilon
  // exceeds the m = 40 threshold and a certified pass cannot exist.)
  const SketchedReference sketched = MakeSketched(reference, alpha, 128);
  ASSERT_GT(sketched.epsilon(), 0.0);

  size_t certified = 0;
  size_t uncertain = 0;
  bool saw_pass = false;
  bool saw_fail = false;
  for (int trial = 0; trial < 200; ++trial) {
    // Shifts from 0 (clear pass) to 3 sigma (clear fail), dense in the
    // middle where the bracket straddles the threshold.
    const double shift = 3.0 * static_cast<double>(trial % 25) / 24.0;
    const size_t m = 40 + static_cast<size_t>(trial % 3) * 40;
    std::vector<double> window;
    window.reserve(m);
    for (size_t j = 0; j < m; ++j) {
      window.push_back(rng.Normal(shift, 1.0));
    }

    auto triage = engine.TriageSketched(sketched, window);
    ASSERT_TRUE(triage.ok()) << triage.status().message();
    auto exact = ks::Run(reference, window, alpha);
    ASSERT_TRUE(exact.ok()) << exact.status().message();

    // The bracket must contain the true statistic, always.
    ASSERT_LE(triage->lower, exact->statistic + 1e-12);
    ASSERT_GE(triage->upper, exact->statistic - 1e-12);
    ASSERT_EQ(triage->n, n);
    ASSERT_EQ(triage->m, m);

    switch (triage->verdict) {
      case TriageVerdict::kCertainPass:
        ASSERT_FALSE(exact->reject)
            << "certified pass but exact KS rejects (shift " << shift
            << ", m " << m << ") — hard bug";
        ++certified;
        saw_pass = true;
        break;
      case TriageVerdict::kCertainFail:
        ASSERT_TRUE(exact->reject)
            << "certified fail but exact KS passes (shift " << shift
            << ", m " << m << ") — hard bug";
        ++certified;
        saw_fail = true;
        break;
      case TriageVerdict::kUncertain:
        ++uncertain;
        break;
    }
  }
  // The regimes must actually exercise the triage: both certified verdicts
  // and a non-trivial uncertain band.
  EXPECT_TRUE(saw_pass);
  EXPECT_TRUE(saw_fail);
  EXPECT_GT(certified, 0u);
  EXPECT_GT(uncertain, 0u);
}

TEST(SketchTriageTest, BatchedTriageMatchesPerWindowTriage) {
  Rng rng(103);
  const double alpha = 0.05;
  std::vector<double> reference;
  for (int i = 0; i < 2000; ++i) reference.push_back(rng.Uniform(0.0, 1.0));
  const Moche engine{MocheOptions{}};
  const SketchedReference sketched = MakeSketched(reference, alpha, 64);

  const size_t count = 9;
  const size_t width = 50;
  std::vector<double> flat;
  for (size_t w = 0; w < count; ++w) {
    const double shift = 0.15 * static_cast<double>(w % 3);
    for (size_t j = 0; j < width; ++j) {
      flat.push_back(rng.Uniform(shift, 1.0 + shift));
    }
  }
  WindowBatch batch;
  batch.data = flat.data();
  batch.count = count;
  batch.width = width;

  ExplainWorkspace workspace;
  std::vector<SketchTriage> triages;
  ASSERT_TRUE(
      engine.EvaluateBatchSketched(sketched, batch, &workspace, &triages)
          .ok());
  ASSERT_EQ(triages.size(), count);
  for (size_t w = 0; w < count; ++w) {
    const std::vector<double> window(flat.begin() + w * width,
                                     flat.begin() + (w + 1) * width);
    auto single = engine.TriageSketched(sketched, window);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(triages[w].verdict, single->verdict);
    EXPECT_EQ(triages[w].statistic, single->statistic);  // bit-identical
    EXPECT_EQ(triages[w].lower, single->lower);
    EXPECT_EQ(triages[w].upper, single->upper);
  }

  // Batch validation mirrors EvaluateBatchPrepared.
  flat[3] = std::nan("");
  EXPECT_FALSE(
      engine.EvaluateBatchSketched(sketched, batch, &workspace, &triages)
          .ok());
}

TEST(SketchTriageTest, ExplainSketchedShortCircuitsCertifiedPasses) {
  Rng rng(107);
  const double alpha = 0.05;
  std::vector<double> reference;
  for (int i = 0; i < 3000; ++i) reference.push_back(rng.Normal(0.0, 1.0));
  const Moche engine{MocheOptions{}};
  const SketchedReference sketched = MakeSketched(reference, alpha, 256);
  auto prepared = engine.Prepare(reference, alpha);
  ASSERT_TRUE(prepared.ok());

  // An aligned window: certified pass short-circuits to AlreadyPasses.
  std::vector<double> healthy;
  for (int i = 0; i < 120; ++i) healthy.push_back(rng.Normal(0.0, 1.0));
  PreferenceList pref;
  IdentityPreferenceInto(healthy.size(), &pref);
  SketchTriage triage;
  auto report =
      engine.ExplainSketched(sketched, *prepared, healthy, pref, &triage);
  ASSERT_EQ(triage.verdict, TriageVerdict::kCertainPass);
  EXPECT_TRUE(report.status().IsAlreadyPasses());

  // A far-drifted window falls through to the exact path and the report is
  // bit-identical to calling ExplainPrepared directly.
  std::vector<double> drifted;
  for (int i = 0; i < 120; ++i) drifted.push_back(rng.Normal(4.0, 1.0));
  IdentityPreferenceInto(drifted.size(), &pref);
  auto via_sketch =
      engine.ExplainSketched(sketched, *prepared, drifted, pref, &triage);
  ASSERT_TRUE(via_sketch.ok()) << via_sketch.status().message();
  EXPECT_EQ(triage.verdict, TriageVerdict::kCertainFail);
  auto via_exact = engine.ExplainPrepared(*prepared, drifted, pref);
  ASSERT_TRUE(via_exact.ok());
  EXPECT_EQ(via_sketch->k, via_exact->k);
  EXPECT_EQ(via_sketch->explanation.indices, via_exact->explanation.indices);
  EXPECT_EQ(via_sketch->original.statistic, via_exact->original.statistic);

  // A sketch/exact pair summarizing different references is rejected.
  std::vector<double> other = reference;
  other.push_back(0.0);
  auto other_prepared = engine.Prepare(other, alpha);
  ASSERT_TRUE(other_prepared.ok());
  EXPECT_FALSE(
      engine.ExplainSketched(sketched, *other_prepared, drifted, pref)
          .ok());
}

TEST(SketchTriageTest, SerializeRoundTripPreservesTriage) {
  Rng rng(109);
  const double alpha = 0.02;
  std::vector<double> reference;
  for (int i = 0; i < 1500; ++i) reference.push_back(rng.Exponential(1.0));
  const SketchedReference sketched = MakeSketched(reference, alpha, 32);

  std::string bytes;
  sketched.SerializeTo(&bytes);
  bin::Reader reader(bytes);
  auto restored = SketchedReference::DeserializeFrom(&reader);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_TRUE(reader.AtEnd());
  std::string again;
  restored->SerializeTo(&again);
  EXPECT_EQ(bytes, again);

  std::vector<double> window;
  for (int i = 0; i < 60; ++i) window.push_back(rng.Exponential(0.7));
  std::sort(window.begin(), window.end());
  EXPECT_EQ(restored->StatisticAgainstSorted(window),
            sketched.StatisticAgainstSorted(window));
  const SketchTriage a = sketched.Classify(0.3, window.size());
  const SketchTriage b = restored->Classify(0.3, window.size());
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.threshold, b.threshold);
  EXPECT_EQ(a.epsilon, b.epsilon);
}

// More capacity can only shrink the uncertain band: a window certified at
// coarse k must stay certified (same direction) at finer k.
TEST(SketchTriageTest, FinerSketchesNeverLoseCertifications) {
  Rng rng(113);
  const double alpha = 0.05;
  std::vector<double> reference;
  for (int i = 0; i < 4000; ++i) reference.push_back(rng.Uniform(0.0, 1.0));
  const Moche engine{MocheOptions{}};
  const SketchedReference coarse = MakeSketched(reference, alpha, 16);
  const SketchedReference fine = MakeSketched(reference, alpha, 512);
  ASSERT_LT(fine.epsilon(), coarse.epsilon());

  for (int trial = 0; trial < 60; ++trial) {
    const double shift = 0.8 * static_cast<double>(trial) / 59.0;
    std::vector<double> window;
    for (int j = 0; j < 80; ++j) {
      window.push_back(rng.Uniform(shift, 1.0 + shift));
    }
    auto coarse_triage = engine.TriageSketched(coarse, window);
    auto fine_triage = engine.TriageSketched(fine, window);
    ASSERT_TRUE(coarse_triage.ok() && fine_triage.ok());
    auto exact = ks::Run(reference, window, alpha);
    ASSERT_TRUE(exact.ok());
    // Certified verdicts at ANY capacity agree with the exact decision, so
    // certifications can change only by leaving the uncertain band.
    for (const SketchTriage* t : {&*coarse_triage, &*fine_triage}) {
      if (t->verdict == TriageVerdict::kCertainPass) {
        ASSERT_FALSE(exact->reject);
      } else if (t->verdict == TriageVerdict::kCertainFail) {
        ASSERT_TRUE(exact->reject);
      }
    }
  }
}

}  // namespace
}  // namespace moche
