// Property tests for the certified KLL sketch (src/sketch/kll_sketch.h).
//
// The load-bearing property is the *certified* rank bound: for every query
// point x, |EstimateRank(x) - TrueRank(x)| <= rank_error_bound(), as an
// exact integer invariant. Everything the triage path certifies
// (tests/sketch/triage_test.cc) reduces to this, so the oracle here is an
// exact sorted copy of the inserted sample, probed at every sample value,
// at midpoints between neighbors, and beyond both extremes.

#include "sketch/kll_sketch.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/binary_io.h"
#include "util/rng.h"

namespace moche {
namespace sketch {
namespace {

KllSketch MakeSketch(size_t capacity, uint64_t seed = KllOptions{}.seed) {
  KllOptions options;
  options.capacity = capacity;
  options.seed = seed;
  auto sketch = KllSketch::Create(options);
  EXPECT_TRUE(sketch.ok()) << sketch.status().message();
  return std::move(*sketch);
}

uint64_t TrueRank(const std::vector<double>& sorted, double x) {
  return static_cast<uint64_t>(
      std::upper_bound(sorted.begin(), sorted.end(), x) - sorted.begin());
}

// Probe points that exercise every step of both ECDFs: each sample value,
// midpoints between distinct neighbors, and points beyond both extremes.
std::vector<double> ProbePoints(const std::vector<double>& sorted) {
  std::vector<double> probes;
  probes.reserve(2 * sorted.size() + 2);
  probes.push_back(sorted.front() - 1.0);
  for (size_t i = 0; i < sorted.size(); ++i) {
    probes.push_back(sorted[i]);
    if (i + 1 < sorted.size() && sorted[i] < sorted[i + 1]) {
      probes.push_back(sorted[i] + (sorted[i + 1] - sorted[i]) / 2.0);
    }
  }
  probes.push_back(sorted.back() + 1.0);
  return probes;
}

void ExpectCertifiedBoundHolds(const KllSketch& sketch,
                               std::vector<double> sample) {
  ASSERT_EQ(sketch.count(), sample.size());
  std::sort(sample.begin(), sample.end());
  for (double x : ProbePoints(sample)) {
    const uint64_t estimated = sketch.EstimateRank(x);
    const uint64_t truth = TrueRank(sample, x);
    const uint64_t gap =
        estimated > truth ? estimated - truth : truth - estimated;
    ASSERT_LE(gap, sketch.rank_error_bound())
        << "rank bound violated at x=" << x << " (estimated " << estimated
        << ", true " << truth << ")";
  }
}

TEST(KllSketchTest, BelowCapacityIsExact) {
  KllSketch sketch = MakeSketch(64);
  std::vector<double> sample;
  Rng rng(7);
  for (int i = 0; i < 63; ++i) sample.push_back(rng.Uniform(-5.0, 5.0));
  for (double v : sample) sketch.Update(v);
  EXPECT_EQ(sketch.rank_error_bound(), 0u);
  EXPECT_EQ(sketch.epsilon(), 0.0);
  ExpectCertifiedBoundHolds(sketch, sample);
}

TEST(KllSketchTest, CertifiedRankBoundHoldsAcrossDistributions) {
  Rng rng(11);
  const size_t n = 6000;
  const size_t k = 32;  // small capacity: many compactions, tight test
  for (int dist = 0; dist < 3; ++dist) {
    KllSketch sketch = MakeSketch(k);
    std::vector<double> sample;
    sample.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      double v = 0.0;
      switch (dist) {
        case 0:
          v = rng.Uniform(0.0, 1.0);
          break;
        case 1:
          v = rng.Normal(0.0, 3.0);
          break;
        default:
          // Heavy ties: discrete alphabet of 8 values.
          v = static_cast<double>(rng.Integer(0, 7));
          break;
      }
      sample.push_back(v);
      sketch.Update(v);
    }
    EXPECT_GT(sketch.rank_error_bound(), 0u);
    ExpectCertifiedBoundHolds(sketch, std::move(sample));
  }
}

// The compaction count — and hence the certified bound — is a pure
// function of (count, capacity): values and coin seeds decide WHICH items
// survive, never HOW MANY compactions happen. This is what makes the
// epsilon-monotonicity test below exact rather than statistical.
TEST(KllSketchTest, ErrorBoundDependsOnlyOnCountAndCapacity) {
  Rng rng(13);
  KllSketch a = MakeSketch(16, /*seed=*/1);
  KllSketch b = MakeSketch(16, /*seed=*/99);
  for (int i = 0; i < 5000; ++i) {
    a.Update(rng.Uniform(0.0, 1.0));
    b.Update(rng.Normal(10.0, 2.0));
  }
  EXPECT_EQ(a.rank_error_bound(), b.rank_error_bound());
  EXPECT_EQ(a.epsilon(), b.epsilon());
}

TEST(KllSketchTest, EpsilonIsMonotoneNonIncreasingInCapacity) {
  Rng rng(17);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(rng.Normal(0.0, 1.0));
  double previous = 2.0;  // epsilon is always < 2
  for (size_t k = KllSketch::kMinCapacity; k <= 512; k *= 2) {
    KllSketch sketch = MakeSketch(k);
    for (double v : sample) sketch.Update(v);
    EXPECT_LE(sketch.epsilon(), previous) << "capacity " << k;
    previous = sketch.epsilon();
  }
  // And with enough capacity the sketch is exact again.
  KllSketch big = MakeSketch(32768);
  for (double v : sample) big.Update(v);
  EXPECT_EQ(big.epsilon(), 0.0);
}

TEST(KllSketchTest, MergeAddsCountsAndCertifiesTheUnion) {
  Rng rng(19);
  std::vector<double> all;
  std::vector<KllSketch> parts;
  for (int p = 0; p < 3; ++p) {
    KllSketch part = MakeSketch(32, /*seed=*/100 + static_cast<uint64_t>(p));
    const size_t n = 1000 + static_cast<size_t>(p) * 700;
    for (size_t i = 0; i < n; ++i) {
      const double v = rng.Normal(static_cast<double>(p), 1.5);
      all.push_back(v);
      part.Update(v);
    }
    parts.push_back(std::move(part));
  }

  // Left-to-right association.
  KllSketch left = MakeSketch(32);
  for (const KllSketch& part : parts) {
    ASSERT_TRUE(left.Merge(part).ok());
  }
  EXPECT_EQ(left.count(), all.size());
  ExpectCertifiedBoundHolds(left, all);

  // Right-to-left association: byte-level equality is NOT claimed (the
  // coin streams interleave differently), but the certified bound must
  // hold under every association order.
  KllSketch right = MakeSketch(32);
  for (size_t p = parts.size(); p > 0; --p) {
    ASSERT_TRUE(right.Merge(parts[p - 1]).ok());
  }
  EXPECT_EQ(right.count(), all.size());
  ExpectCertifiedBoundHolds(right, all);

  // Self-merge doubles the sketch (the documented copy-first semantics).
  KllSketch self = MakeSketch(32);
  for (int i = 0; i < 100; ++i) self.Update(static_cast<double>(i));
  ASSERT_TRUE(self.Merge(self).ok());
  EXPECT_EQ(self.count(), 200u);

  // Capacity mismatch is a contract violation, not a silent widening.
  KllSketch other = MakeSketch(64);
  EXPECT_FALSE(left.Merge(other).ok());
}

TEST(KllSketchTest, SerializeRoundTripIsAByteFixedPoint) {
  Rng rng(23);
  KllSketch sketch = MakeSketch(16);
  for (int i = 0; i < 3000; ++i) sketch.Update(rng.Uniform(-1.0, 1.0));

  std::string bytes;
  sketch.SerializeTo(&bytes);
  bin::Reader reader(bytes);
  auto restored = KllSketch::DeserializeFrom(&reader);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_TRUE(reader.AtEnd());

  std::string again;
  restored->SerializeTo(&again);
  EXPECT_EQ(bytes, again);

  EXPECT_EQ(restored->count(), sketch.count());
  EXPECT_EQ(restored->rank_error_bound(), sketch.rank_error_bound());
  for (double x : {-2.0, -0.5, 0.0, 0.25, 0.9, 2.0}) {
    EXPECT_EQ(restored->EstimateRank(x), sketch.EstimateRank(x));
  }

  // A restored sketch keeps updating from the serialized coin state: the
  // same further updates must give the same bytes as never serializing.
  KllSketch continued = std::move(*restored);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.Uniform(-1.0, 1.0);
    sketch.Update(v);
    continued.Update(v);
  }
  std::string a;
  std::string b;
  sketch.SerializeTo(&a);
  continued.SerializeTo(&b);
  EXPECT_EQ(a, b);
}

TEST(KllSketchTest, DeserializeRejectsStructurallyBrokenBytes) {
  KllSketch sketch = MakeSketch(16);
  for (int i = 0; i < 300; ++i) sketch.Update(static_cast<double>(i % 7));
  std::string bytes;
  sketch.SerializeTo(&bytes);

  {  // Truncation at every prefix either fails or consumes a valid prefix
     // of the exact original length (it must never read past the buffer).
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      bin::Reader r(std::string_view(bytes).substr(0, cut));
      auto broken = KllSketch::DeserializeFrom(&r);
      EXPECT_FALSE(broken.ok()) << "prefix length " << cut;
    }
  }
  {  // Capacity outside the domain.
    std::string mutated = bytes;
    mutated[0] = 0;  // capacity u64le -> 0
    bin::Reader r(mutated);
    EXPECT_FALSE(KllSketch::DeserializeFrom(&r).ok());
  }
  {  // Weight-conservation violation: bump the recorded count.
    std::string mutated = bytes;
    // Layout: capacity, seed, coin_state, count (docs/SKETCH.md).
    mutated[24] = static_cast<char>(mutated[24] ^ 1);
    bin::Reader r(mutated);
    EXPECT_FALSE(KllSketch::DeserializeFrom(&r).ok());
  }
}

TEST(KllSketchTest, QuantilesTrackTheCertifiedRank) {
  Rng rng(29);
  KllSketch sketch = MakeSketch(64);
  std::vector<double> sample;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(0.0, 100.0);
    sample.push_back(v);
    sketch.Update(v);
  }
  std::sort(sample.begin(), sample.end());
  for (double phi : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    auto q = sketch.EstimateQuantile(phi);
    ASSERT_TRUE(q.ok()) << q.status().message();
    // The returned value's true rank is within the certified bound of the
    // requested mass (both ranks are counts; compare in observations).
    const double target = phi * static_cast<double>(sketch.count());
    const double true_rank =
        static_cast<double>(TrueRank(sample, *q));
    EXPECT_LE(std::abs(true_rank - target),
              static_cast<double>(sketch.rank_error_bound()) + 1.0)
        << "phi=" << phi;
  }
  EXPECT_FALSE(sketch.EstimateQuantile(-0.1).ok());
  EXPECT_FALSE(sketch.EstimateQuantile(1.5).ok());
  KllSketch empty = MakeSketch(16);
  EXPECT_FALSE(empty.EstimateQuantile(0.5).ok());
}

TEST(KllSketchTest, FlattenConservesWeightAndOrders) {
  Rng rng(31);
  KllSketch sketch = MakeSketch(16);
  for (int i = 0; i < 4000; ++i) {
    sketch.Update(static_cast<double>(rng.Integer(0, 20)));  // many ties
  }
  std::vector<double> values;
  std::vector<double> weights;
  sketch.FlattenTo(&values, &weights);
  ASSERT_FALSE(values.empty());
  ASSERT_EQ(values.size(), weights.size());
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_LT(values[i - 1], values[i]);  // strictly ascending, ties merged
    EXPECT_LE(weights[i - 1], weights[i]);
  }
  EXPECT_EQ(weights.back(), static_cast<double>(sketch.count()));
}

TEST(KllSketchTest, CreateValidatesCapacity) {
  KllOptions options;
  options.capacity = KllSketch::kMinCapacity - 1;
  EXPECT_FALSE(KllSketch::Create(options).ok());
  options.capacity = KllSketch::kMaxCapacity + 1;
  EXPECT_FALSE(KllSketch::Create(options).ok());
  options.capacity = KllSketch::kMinCapacity;
  EXPECT_TRUE(KllSketch::Create(options).ok());
}

}  // namespace
}  // namespace sketch
}  // namespace moche
