#include "stream/prepared_cache.h"

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace moche {
namespace stream {
namespace {

TEST(ReferenceFingerprintTest, SensitiveToValuesOrderAndAlpha) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{3.0, 2.0, 1.0};
  EXPECT_EQ(ReferenceFingerprint(a, 0.05), ReferenceFingerprint(a, 0.05));
  EXPECT_NE(ReferenceFingerprint(a, 0.05), ReferenceFingerprint(b, 0.05));
  EXPECT_NE(ReferenceFingerprint(a, 0.05), ReferenceFingerprint(a, 0.01));
  EXPECT_NE(ReferenceFingerprint(a, 0.05),
            ReferenceFingerprint({1.0, 2.0}, 0.05));
}

// The signed-zero regression: the fingerprint used raw double bits, so a
// reference containing -0.0 hashed differently from its +0.0 twin even
// though the exact-compare guard treats them as equal (-0.0 == +0.0).
// The equal-by-operator== sequences then interned as two entries — a
// silent cache split that doubled Prepare work. The fingerprint must
// canonicalize -0.0 before hashing; the bucket's exact compare then makes
// the second lookup a hit.
TEST(ReferenceFingerprintTest, CanonicalizesSignedZero) {
  const std::vector<double> plus{0.0, 1.0, 2.0};
  const std::vector<double> minus{-0.0, 1.0, 2.0};
  EXPECT_EQ(ReferenceFingerprint(plus, 0.05),
            ReferenceFingerprint(minus, 0.05));
  // alpha is hashed through the same canonicalization; values that are
  // actually different must still split.
  EXPECT_NE(ReferenceFingerprint(plus, 0.05),
            ReferenceFingerprint({0.0, 1.0, 2.5}, 0.05));
}

// Golden-sequence regression: the fingerprint is a cross-platform wire
// contract — snapshot shard assignment (src/persist/monitor_codec.cc) keys
// on `fingerprint % num_shards`, so the hash of a fixed sequence must
// never drift across builds, hosts, or byte orders. The constants pin the
// documented derivation: FNV-1a (offset 14695981039346656037, prime
// 1099511628211) over count:u64le, canonical alpha:f64le, values:f64le
// with -0.0 canonicalized to +0.0. If this test fails, the change broke
// every existing checkpoint's shard layout — that needs a snapshot format
// version bump, not a test update.
TEST(ReferenceFingerprintTest, GoldenSequencesPinTheWireHash) {
  const std::vector<double> golden{1.0, 2.5, -3.0, -0.0, 1e300, 0.125};
  EXPECT_EQ(ReferenceFingerprint(golden, 0.05), 0x14114b19bbb53b30ull);
  EXPECT_EQ(ReferenceFingerprint({}, 0.05), 0xe72227bb1035cd54ull);
  EXPECT_EQ(ReferenceFingerprint({42.0}, 1.9999), 0xf546d57958226be7ull);
}

TEST(PreparedReferenceCacheTest, SignedZeroReferencesShareOneEntry) {
  Moche engine;
  PreparedReferenceCache cache;
  const std::vector<double> plus{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> minus{-0.0, 1.0, 2.0, 3.0};

  auto first = cache.GetOrPrepare(engine, plus, 0.05);
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrPrepare(engine, minus, 0.05);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(PreparedReferenceCacheTest, InternsIdenticalReferences) {
  Moche engine;
  PreparedReferenceCache cache;
  const std::vector<double> ref{5.0, 1.0, 3.0, 2.0, 4.0};

  auto first = cache.GetOrPrepare(engine, ref, 0.05);
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrPrepare(engine, ref, 0.05);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // same interned object

  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);

  // The interned reference is prepared (sorted) once.
  EXPECT_EQ((*first)->sorted_reference(),
            (std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}));
}

TEST(PreparedReferenceCacheTest, DistinctAlphaOrValuesGetDistinctEntries) {
  Moche engine;
  PreparedReferenceCache cache;
  const std::vector<double> ref{1.0, 2.0, 3.0};

  auto a = cache.GetOrPrepare(engine, ref, 0.05);
  auto b = cache.GetOrPrepare(engine, ref, 0.01);
  auto c = cache.GetOrPrepare(engine, {3.0, 2.0, 1.0}, 0.05);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->get(), b->get());
  EXPECT_NE(a->get(), c->get());  // keyed by the raw sequence, not the set

  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(PreparedReferenceCacheTest, PropagatesPrepareErrors) {
  Moche engine;
  PreparedReferenceCache cache;
  EXPECT_FALSE(cache.GetOrPrepare(engine, {}, 0.05).ok());
  EXPECT_FALSE(cache.GetOrPrepare(engine, {1.0, NAN}, 0.05).ok());
  EXPECT_FALSE(cache.GetOrPrepare(engine, {1.0, 2.0}, 0.0).ok());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(PreparedReferenceCacheTest, InternRestoredConvergesOnOneEntry) {
  Moche engine;
  const std::vector<double> ref{5.0, 1.0, 3.0, 2.0, 4.0};
  auto prepared = engine.Prepare(ref, 0.05);
  ASSERT_TRUE(prepared.ok());

  // Fresh cache (a restore into an empty monitor): the restored entry is
  // interned as-is, without touching the hit/miss counters.
  PreparedReferenceCache cache;
  auto restored = cache.InternRestored(ref, 0.05, *prepared);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->sorted_reference(),
            (std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}));
  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);

  // A second shard restoring the same (original, alpha) converges on the
  // already-interned object.
  auto prepared2 = engine.Prepare(ref, 0.05);
  ASSERT_TRUE(prepared2.ok());
  auto again = cache.InternRestored(ref, 0.05, *prepared2);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->get(), restored->get());
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(PreparedReferenceCacheTest, InternRestoredRejectsInconsistentSplices) {
  Moche engine;
  PreparedReferenceCache cache;
  const std::vector<double> ref{1.0, 2.0, 3.0};
  auto prepared = engine.Prepare(ref, 0.05);
  ASSERT_TRUE(prepared.ok());

  // A CRC-clean snapshot could still pair a prepared sample with the wrong
  // original (a cross-section splice); the consistency checks catch it.
  auto wrong_alpha = cache.InternRestored(ref, 0.01, *prepared);
  EXPECT_FALSE(wrong_alpha.ok());
  auto wrong_size = cache.InternRestored({1.0, 2.0}, 0.05, *prepared);
  EXPECT_FALSE(wrong_size.ok());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(PreparedReferenceCacheTest, FindOriginalRecoversTheUnsortedKey) {
  Moche engine;
  PreparedReferenceCache cache;
  const std::vector<double> ref_a{5.0, 1.0, 3.0};  // deliberately unsorted
  const std::vector<double> ref_b{9.0, 8.0, 7.0};
  auto a = cache.GetOrPrepare(engine, ref_a, 0.05);
  auto b = cache.GetOrPrepare(engine, ref_b, 0.01);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  std::vector<double> original;
  double alpha = 0.0;
  ASSERT_TRUE(cache.FindOriginal(a->get(), &original, &alpha));
  EXPECT_EQ(original, ref_a);  // the raw sequence, not the sorted one
  EXPECT_EQ(alpha, 0.05);
  ASSERT_TRUE(cache.FindOriginal(b->get(), &original, &alpha));
  EXPECT_EQ(original, ref_b);
  EXPECT_EQ(alpha, 0.01);

  // Pointer identity, not value equality: an equal reference prepared
  // outside the cache is not interned here.
  auto foreign = engine.Prepare(ref_a, 0.05);
  ASSERT_TRUE(foreign.ok());
  EXPECT_FALSE(cache.FindOriginal(&*foreign, &original, &alpha));
}

TEST(PreparedReferenceCacheTest, BoundedCacheEvictsLeastRecentlyUsed) {
  Moche engine;
  PreparedReferenceCache cache{PreparedReferenceCache::Options{2}};
  const std::vector<double> ref_a{1.0, 2.0, 3.0};
  const std::vector<double> ref_b{4.0, 5.0, 6.0};
  const std::vector<double> ref_c{7.0, 8.0, 9.0};

  // Intern A and B, dropping the returned shared_ptrs so both entries are
  // unpinned (the cache holds the last reference).
  ASSERT_TRUE(cache.GetOrPrepare(engine, ref_a, 0.05).ok());
  ASSERT_TRUE(cache.GetOrPrepare(engine, ref_b, 0.05).ok());
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // Touch A so B becomes the least recently used entry...
  ASSERT_TRUE(cache.GetOrPrepare(engine, ref_a, 0.05).ok());
  // ...then a third intern must evict B, not A.
  ASSERT_TRUE(cache.GetOrPrepare(engine, ref_c, 0.05).ok());
  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);

  // A survived (hit); B was dropped (miss + re-prepare).
  const size_t hits_before = stats.hits;
  const size_t misses_before = stats.misses;
  ASSERT_TRUE(cache.GetOrPrepare(engine, ref_a, 0.05).ok());
  EXPECT_EQ(cache.stats().hits, hits_before + 1);
  ASSERT_TRUE(cache.GetOrPrepare(engine, ref_b, 0.05).ok());
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST(PreparedReferenceCacheTest, PinnedEntriesAreNeverEvicted) {
  Moche engine;
  PreparedReferenceCache cache{PreparedReferenceCache::Options{1}};
  const std::vector<double> ref_a{1.0, 2.0, 3.0};
  const std::vector<double> ref_b{4.0, 5.0, 6.0};

  // Hold the shared_ptr: the entry is live state outside the cache.
  auto pinned = cache.GetOrPrepare(engine, ref_a, 0.05);
  ASSERT_TRUE(pinned.ok());
  // Interning B cannot evict the pinned A: the table goes over capacity
  // instead of stranding a live reference.
  ASSERT_TRUE(cache.GetOrPrepare(engine, ref_b, 0.05).ok());
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // The pinned entry still resolves to the same object.
  auto again = cache.GetOrPrepare(engine, ref_a, 0.05);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->get(), pinned->get());

  // Once released, the LRU bound applies again on the next intern.
  *pinned = nullptr;
  *again = nullptr;
  ASSERT_TRUE(cache.GetOrPrepare(engine, {7.0, 8.0, 9.0}, 0.05).ok());
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(PreparedReferenceCacheTest, SketchSharesTheEntryOfTheExactForm) {
  Moche engine;
  PreparedReferenceCache cache;
  const std::vector<double> ref{5.0, 1.0, 3.0, 2.0, 4.0};
  sketch::KllOptions kll;
  kll.capacity = 64;

  auto prepared = cache.GetOrPrepare(engine, ref, 0.05);
  ASSERT_TRUE(prepared.ok());
  auto sketched = cache.GetOrSketch(ref, 0.05, kll);
  ASSERT_TRUE(sketched.ok()) << sketched.status().message();
  // One entry carries both representations.
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ((*sketched)->count(), ref.size());

  // The summary is interned: a second ask is a hit on the same object.
  auto again = cache.GetOrSketch(ref, 0.05, kll);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->get(), sketched->get());

  // One summary per entry: a different capacity for the same key is a
  // configuration error, not a second summary.
  kll.capacity = 128;
  EXPECT_FALSE(cache.GetOrSketch(ref, 0.05, kll).ok());

  // resident_bytes accounts for the key sequence, the sorted sample, and
  // the sketch summary.
  EXPECT_GT(cache.stats().resident_bytes,
            2 * ref.size() * sizeof(double));
}

TEST(PreparedReferenceCacheTest, InternRestoredSketchedChecksConsistency) {
  PreparedReferenceCache cache;
  std::vector<double> ref{5.0, 1.0, 3.0, 2.0, 4.0};
  sketch::KllOptions kll;
  kll.capacity = 32;
  auto built = sketch::SketchedReference::FromSample(ref, 0.05, kll);
  ASSERT_TRUE(built.ok());

  // Splice guards: a summary whose alpha or count disagrees with its cache
  // key is rejected before it can shadow the real reference.
  auto wrong_alpha = cache.InternRestoredSketched(ref, 0.01, *built);
  EXPECT_FALSE(wrong_alpha.ok());
  auto wrong_size =
      cache.InternRestoredSketched({1.0, 2.0}, 0.05, *built);
  EXPECT_FALSE(wrong_size.ok());
  EXPECT_EQ(cache.stats().entries, 0u);

  auto interned = cache.InternRestoredSketched(ref, 0.05, *built);
  ASSERT_TRUE(interned.ok()) << interned.status().message();
  EXPECT_EQ(cache.stats().entries, 1u);

  // A second shard restoring the same key converges on the interned object.
  auto converged = cache.InternRestoredSketched(ref, 0.05, *built);
  ASSERT_TRUE(converged.ok());
  EXPECT_EQ(converged->get(), interned->get());
  EXPECT_EQ(cache.stats().entries, 1u);

  // ...unless its capacity disagrees with what is already interned.
  kll.capacity = 64;
  auto other = sketch::SketchedReference::FromSample(ref, 0.05, kll);
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(cache.InternRestoredSketched(ref, 0.05, *other).ok());
}

TEST(PreparedReferenceCacheTest, ConcurrentGetOrPrepareIsSafe) {
  Moche engine;
  PreparedReferenceCache cache;
  const std::vector<double> ref_a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ref_b{9.0, 8.0, 7.0};

  constexpr int kThreads = 8;
  std::vector<const PreparedReference*> seen(kThreads, nullptr);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const std::vector<double>& ref = (t % 2 == 0) ? ref_a : ref_b;
      for (int iter = 0; iter < 50; ++iter) {
        auto prepared = cache.GetOrPrepare(engine, ref, 0.05);
        ASSERT_TRUE(prepared.ok());
        seen[t] = prepared->get();
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // Every thread of a key group saw the same interned object.
  for (int t = 2; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[t % 2]) << "thread " << t;
  }
  EXPECT_EQ(cache.stats().entries, 2u);
}

}  // namespace
}  // namespace stream
}  // namespace moche
