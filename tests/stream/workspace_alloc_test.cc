// The zero-allocation contract of the explain pipeline (ISSUE 5):
//  * a warmed-up Moche::ExplainPreparedInto call performs no heap
//    allocation when the caller recycles its workspace and report;
//  * a warmed-up sequential DriftMonitor::PushBatch that fires no drift
//    event performs no heap allocation at all.
//
// testing_alloc.h defines the counting global operator new, so this file
// must be this binary's only TU including it.

#include <vector>

#include <gtest/gtest.h>

#include "core/moche.h"
#include "stream/drift_monitor.h"
#include "testing_alloc.h"
#include "util/rng.h"

namespace moche {
namespace {

using testing_alloc::AllocationProbe;

std::vector<double> NormalSample(Rng* rng, size_t count, double mean,
                                 double sd) {
  std::vector<double> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(rng->Normal(mean, sd));
  return out;
}

TEST(WorkspaceAllocTest, WarmExplainPreparedIntoAllocatesNothing) {
  Rng rng(20260729);
  const std::vector<double> reference = NormalSample(&rng, 400, 0.0, 1.0);
  const Moche engine;
  auto prepared = engine.Prepare(reference, 0.05);
  ASSERT_TRUE(prepared.ok());

  // Failing windows (shifted distribution), all materialized before the
  // probed region so only the explain pipeline itself is measured.
  constexpr size_t kWindows = 6;
  constexpr size_t kWindowSize = 150;
  std::vector<std::vector<double>> windows;
  std::vector<PreferenceList> prefs;
  for (size_t w = 0; w < kWindows; ++w) {
    windows.push_back(NormalSample(&rng, kWindowSize, 1.2, 1.1));
    prefs.push_back(RandomPreference(kWindowSize, &rng));
  }

  ExplainWorkspace workspace;
  MocheReport report;
  size_t warm_failures = 0;
  for (size_t w = 0; w < kWindows; ++w) {
    const Status status = engine.ExplainPreparedInto(
        *prepared, windows[w], prefs[w], &workspace, &report);
    warm_failures += !status.ok();
  }
  ASSERT_EQ(warm_failures, 0u) << "warm-up pass must explain every window";

  // The workspace, report, and all internal buffers are warm: re-running
  // the same windows must not touch the heap.
  size_t failures = 0;
  AllocationProbe probe;
  for (size_t round = 0; round < 3; ++round) {
    for (size_t w = 0; w < kWindows; ++w) {
      const Status status = engine.ExplainPreparedInto(
          *prepared, windows[w], prefs[w], &workspace, &report);
      failures += !status.ok();
    }
  }
  const size_t allocations = probe.Delta();
  EXPECT_EQ(failures, 0u);
  EXPECT_EQ(allocations, 0u)
      << "warmed-up ExplainPreparedInto must be allocation-free";
}

TEST(WorkspaceAllocTest, WarmFindExplanationSizeIntoAllocatesNothing) {
  Rng rng(987);
  const std::vector<double> reference = NormalSample(&rng, 300, 0.0, 1.0);
  const std::vector<double> test = NormalSample(&rng, 120, 1.5, 1.0);
  const Moche engine;
  auto prepared = engine.Prepare(reference, 0.05);
  ASSERT_TRUE(prepared.ok());

  ExplainWorkspace workspace;
  auto warm = engine.FindExplanationSizeInto(*prepared, test, &workspace);
  ASSERT_TRUE(warm.ok());

  size_t failures = 0;
  AllocationProbe probe;
  for (int i = 0; i < 5; ++i) {
    auto result = engine.FindExplanationSizeInto(*prepared, test, &workspace);
    failures += !result.ok() || result->k != warm->k;
  }
  const size_t allocations = probe.Delta();
  EXPECT_EQ(failures, 0u);
  EXPECT_EQ(allocations, 0u)
      << "warmed-up FindExplanationSizeInto must be allocation-free";
}

TEST(WorkspaceAllocTest, SteadyStatePushBatchAllocatesNothing) {
  Rng rng(4242);
  const size_t kStreams = 4;
  const size_t kWindow = 64;
  const std::vector<double> reference = NormalSample(&rng, 256, 0.0, 1.0);

  stream::MonitorOptions options;
  options.alpha = 0.01;  // quiet: in-distribution windows never reject
  options.num_threads = 1;
  auto monitor = stream::DriftMonitor::Create(options);
  ASSERT_TRUE(monitor.ok());
  for (size_t i = 0; i < kStreams; ++i) {
    ASSERT_TRUE(
        monitor->AddStream("s" + std::to_string(i), reference, kWindow).ok());
  }

  // In-distribution observation batches, all materialized up front.
  const size_t kWarmBatches = 24;   // fills every window, then some
  const size_t kSteadyBatches = 16;
  const size_t kBatchTicks = 8;
  std::vector<std::vector<std::vector<double>>> batches;
  for (size_t b = 0; b < kWarmBatches + kSteadyBatches; ++b) {
    std::vector<std::vector<double>> batch(kStreams);
    for (size_t s = 0; s < kStreams; ++s) {
      batch[s] = NormalSample(&rng, kBatchTicks, 0.0, 1.0);
    }
    batches.push_back(std::move(batch));
  }

  size_t warm_failures = 0;
  for (size_t b = 0; b < kWarmBatches; ++b) {
    warm_failures += !monitor->PushBatch(batches[b]).ok();
  }
  ASSERT_EQ(warm_failures, 0u);
  ASSERT_TRUE(monitor->events().empty())
      << "config must stay quiet for the steady-state claim to make sense";

  size_t failures = 0;
  AllocationProbe probe;
  for (size_t b = kWarmBatches; b < kWarmBatches + kSteadyBatches; ++b) {
    failures += !monitor->PushBatch(batches[b]).ok();
  }
  const size_t allocations = probe.Delta();
  EXPECT_EQ(failures, 0u);
  EXPECT_EQ(allocations, 0u)
      << "warmed-up no-event PushBatch must be allocation-free";
  EXPECT_TRUE(monitor->events().empty());
}

TEST(WorkspaceAllocTest, WorkspacePoolStatsReportCreationAndFootprint) {
  Rng rng(77);
  const size_t kWindow = 48;
  const std::vector<double> reference = NormalSample(&rng, 200, 0.0, 1.0);

  stream::MonitorOptions options;
  options.num_threads = 1;
  auto monitor = stream::DriftMonitor::Create(options);
  ASSERT_TRUE(monitor.ok());
  ASSERT_TRUE(monitor->AddStream("drifter", reference, kWindow).ok());

  // No explanation fired yet: the pool is empty.
  EXPECT_EQ(monitor->stats().workspaces_created, 0u);
  EXPECT_EQ(monitor->stats().workspace_bytes, 0u);

  // Drive the stream into obvious drift so an explanation fires.
  std::vector<std::vector<double>> batch(1);
  batch[0] = NormalSample(&rng, 4 * kWindow, 4.0, 0.5);
  ASSERT_TRUE(monitor->PushBatch(batch).ok());
  ASSERT_FALSE(monitor->events().empty());

  const stream::DriftMonitor::Stats stats = monitor->stats();
  EXPECT_EQ(stats.workspaces_created, 1u);  // one sequential worker
  EXPECT_GT(stats.workspace_bytes, 0u);
}

}  // namespace
}  // namespace moche
