#include "stream/drift_monitor.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ks/ks_test.h"
#include "timeseries/generators.h"
#include "util/rng.h"

namespace moche {
namespace stream {
namespace {

constexpr uint64_t kSeed = 20210416;

// A monitor with `count` scenario streams already registered and the
// scenarios to replay through it.
struct Fixture {
  DriftMonitor monitor;
  std::vector<ts::DriftScenario> scenarios;
};

Fixture MakeFixture(const MonitorOptions& options, size_t count,
                    size_t window = 60, size_t reference = 300,
                    size_t length = 400) {
  auto monitor = DriftMonitor::Create(options);
  EXPECT_TRUE(monitor.ok());
  Fixture f{std::move(monitor).value(),
            ts::MakeDriftScenarioSuite(count, kSeed, reference, length)};
  for (const ts::DriftScenario& sc : f.scenarios) {
    auto index = f.monitor.AddStream(sc.name, sc.reference, window);
    EXPECT_TRUE(index.ok());
  }
  return f;
}

// Replays all scenario observations in lockstep batches of `chunk` ticks.
void Replay(Fixture* f, size_t chunk) {
  size_t longest = 0;
  for (const auto& sc : f->scenarios) {
    longest = std::max(longest, sc.observations.size());
  }
  for (size_t t0 = 0; t0 < longest; t0 += chunk) {
    std::vector<std::vector<double>> batch(f->scenarios.size());
    for (size_t i = 0; i < f->scenarios.size(); ++i) {
      const auto& obs = f->scenarios[i].observations;
      const size_t begin = std::min(obs.size(), t0);
      const size_t end = std::min(obs.size(), t0 + chunk);
      batch[i].assign(obs.begin() + static_cast<long>(begin),
                      obs.begin() + static_cast<long>(end));
    }
    ASSERT_TRUE(f->monitor.PushBatch(batch).ok());
  }
}

TEST(DriftMonitorTest, CreateValidatesOptions) {
  MonitorOptions bad_alpha;
  bad_alpha.alpha = 0.0;
  EXPECT_FALSE(DriftMonitor::Create(bad_alpha).ok());

  MonitorOptions missing_k;
  missing_k.rearm = RearmPolicy::kEveryKPushes;
  EXPECT_FALSE(DriftMonitor::Create(missing_k).ok());

  missing_k.explain_every_k = 10;
  EXPECT_TRUE(DriftMonitor::Create(missing_k).ok());
}

TEST(DriftMonitorTest, AddStreamValidatesInputs) {
  auto monitor = DriftMonitor::Create(MonitorOptions{});
  ASSERT_TRUE(monitor.ok());
  EXPECT_FALSE(monitor->AddStream("empty", {}, 10).ok());
  EXPECT_FALSE(monitor->AddStream("nan", {1.0, NAN}, 10).ok());
  EXPECT_FALSE(monitor->AddStream("zero-window", {1.0, 2.0}, 0).ok());
  EXPECT_EQ(monitor->num_streams(), 0u);

  auto index = monitor->AddStream("ok", {1.0, 2.0, 3.0}, 2);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(*index, 0u);
  EXPECT_EQ(monitor->stream_name(0), "ok");
}

TEST(DriftMonitorTest, PushBatchValidatesShapeAndValues) {
  auto monitor = DriftMonitor::Create(MonitorOptions{});
  ASSERT_TRUE(monitor.ok());
  ASSERT_TRUE(monitor->AddStream("s0", {1.0, 2.0, 3.0}, 2).ok());

  EXPECT_FALSE(monitor->PushBatch({}).ok());          // 0 slots, 1 stream
  EXPECT_FALSE(monitor->PushBatch({{1.0}, {2.0}}).ok());
  EXPECT_FALSE(monitor->PushBatch({{1.0, NAN}}).ok());
  // The rejected batch advanced nothing.
  EXPECT_EQ(monitor->stream_ticks(0), 0u);
  EXPECT_TRUE(monitor->PushBatch({{1.0, 2.0}}).ok());
  EXPECT_EQ(monitor->stream_ticks(0), 2u);
}

TEST(DriftMonitorTest, DetectsAndExplainsInjectedDrift) {
  const size_t window = 60;
  // alpha = 0.01 keeps the deterministic pre-drift stretch free of false
  // alarms, so the first event is the injected drift itself.
  MonitorOptions options;
  options.alpha = 0.01;
  Fixture f = MakeFixture(options, 1, window);
  const ts::DriftScenario& sc = f.scenarios.front();
  ASSERT_EQ(sc.kind, ts::DriftKind::kMeanShift);
  Replay(&f, 32);

  ASSERT_FALSE(f.monitor.events().empty());
  const DriftEvent& event = f.monitor.events().front();
  EXPECT_EQ(event.stream, 0u);
  // The alarm needs drifted observations in the window, and must fire
  // before the window is entirely post-drift for a shift this large.
  EXPECT_GT(event.tick, sc.drift_begin);
  EXPECT_LE(event.tick, sc.drift_begin + window);
  EXPECT_TRUE(event.outcome.reject);

  ASSERT_TRUE(event.explain_status.ok());
  EXPECT_GT(event.report.k, 0u);
  EXPECT_EQ(event.report.explanation.indices.size(), event.report.k);
  for (size_t idx : event.report.explanation.indices) {
    EXPECT_LT(idx, window);
  }
  // The counterfactual holds: removing the explanation passes the test.
  EXPECT_FALSE(event.report.after.reject);
}

TEST(DriftMonitorTest, OncePerExcursionEmitsOneEventForPersistentDrift) {
  // Mean shift never reverts: one excursion, hence exactly one event even
  // though hundreds of pushes reject (alpha = 0.01 keeps the deterministic
  // pre-drift stretch alarm-free).
  MonitorOptions options;
  options.alpha = 0.01;
  Fixture f = MakeFixture(options, 1);
  Replay(&f, 50);

  EXPECT_EQ(f.monitor.events().size(), 1u);
  const auto stats = f.monitor.stats();
  EXPECT_GT(stats.drift_ticks, f.monitor.events().size());
  EXPECT_EQ(stats.explanations, 1u);
  EXPECT_TRUE(f.monitor.stream_in_excursion(0));
}

TEST(DriftMonitorTest, TransientDriftReArmsAfterRecovery) {
  // The spike reverts; once the window flushes the detector passes again
  // and the stream re-arms.
  const size_t window = 60;
  MonitorOptions options;
  Fixture f = MakeFixture(options, 3, window);
  ASSERT_EQ(f.scenarios[2].kind, ts::DriftKind::kTransientSpike);
  Replay(&f, 32);

  bool spike_fired = false;
  for (const DriftEvent& event : f.monitor.events()) {
    if (event.stream == 2) spike_fired = true;
  }
  EXPECT_TRUE(spike_fired);
  EXPECT_FALSE(f.monitor.stream_in_excursion(2));  // recovered and re-armed
  EXPECT_TRUE(f.monitor.stream_in_excursion(0));   // mean shift persists
}

TEST(DriftMonitorTest, EveryKPushesRefreshesDuringExcursion) {
  MonitorOptions every_k;
  every_k.rearm = RearmPolicy::kEveryKPushes;
  every_k.explain_every_k = 20;
  Fixture f = MakeFixture(every_k, 1);
  Replay(&f, 50);

  const auto& events = f.monitor.events();
  ASSERT_GT(events.size(), 1u);  // refreshed at least once
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].tick - events[i - 1].tick,
              every_k.explain_every_k);
  }
}

TEST(DriftMonitorTest, StreamsSharingAReferencePrepareOnce) {
  auto monitor = DriftMonitor::Create(MonitorOptions{});
  ASSERT_TRUE(monitor.ok());
  const ts::DriftScenario sc = ts::MakeDriftScenario(
      ts::DriftKind::kMeanShift, kSeed, /*reference_size=*/300,
      /*length=*/10);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(monitor->AddStream("s", sc.reference, 30).ok());
  }
  const auto cache = monitor->cache_stats();
  EXPECT_EQ(cache.entries, 1u);
  EXPECT_EQ(cache.misses, 1u);
  EXPECT_EQ(cache.hits, 63u);
}

TEST(DriftMonitorTest, ParallelEventLogBitIdenticalToSequential) {
  MonitorOptions sequential;
  sequential.rearm = RearmPolicy::kEveryKPushes;
  sequential.explain_every_k = 15;
  sequential.num_threads = 1;
  MonitorOptions parallel = sequential;
  parallel.num_threads = 4;

  Fixture a = MakeFixture(sequential, 9);
  Fixture b = MakeFixture(parallel, 9);
  Replay(&a, 40);
  Replay(&b, 40);

  ASSERT_FALSE(a.monitor.events().empty());
  EXPECT_TRUE(SameEventLogs(a.monitor.events(), b.monitor.events()));

  // Batch granularity must not matter either.
  Fixture c = MakeFixture(parallel, 9);
  Replay(&c, 7);
  EXPECT_TRUE(SameEventLogs(a.monitor.events(), c.monitor.events()));
}

TEST(DriftMonitorTest, PushTickFeedsOneObservationPerStream) {
  auto monitor = DriftMonitor::Create(MonitorOptions{});
  ASSERT_TRUE(monitor.ok());
  ASSERT_TRUE(monitor->AddStream("a", {1.0, 2.0, 3.0}, 2).ok());
  ASSERT_TRUE(monitor->AddStream("b", {4.0, 5.0, 6.0}, 2).ok());
  ASSERT_TRUE(monitor->PushTick({1.5, 4.5}).ok());
  EXPECT_EQ(monitor->stream_ticks(0), 1u);
  EXPECT_EQ(monitor->stream_ticks(1), 1u);
  EXPECT_EQ(monitor->stats().observations, 2u);
}

TEST(DriftMonitorTest, RecheckWindowsMatchesRunSortedPerStream) {
  // Heterogeneous fleet: streams 0/1 share a reference AND a window size
  // (one batched group), stream 2 shares the reference at a different
  // window size, stream 3 has its own reference. RecheckWindows must give
  // each full stream exactly ks::RunSorted on its window, regardless of
  // how the streams were grouped into batched SIMD calls.
  auto monitor = DriftMonitor::Create(MonitorOptions{});
  ASSERT_TRUE(monitor.ok());
  Rng rng(kSeed);
  std::vector<double> ref_a;
  std::vector<double> ref_b;
  for (int i = 0; i < 200; ++i) ref_a.push_back(rng.Normal(0, 1));
  for (int i = 0; i < 150; ++i) ref_b.push_back(rng.Normal(1, 2));
  ASSERT_TRUE(monitor->AddStream("a0", ref_a, 40).ok());
  ASSERT_TRUE(monitor->AddStream("a1", ref_a, 40).ok());
  ASSERT_TRUE(monitor->AddStream("a2", ref_a, 25).ok());
  ASSERT_TRUE(monitor->AddStream("b0", ref_b, 40).ok());
  ASSERT_TRUE(monitor->AddStream("late", ref_a, 40).ok());  // never fills

  // 60 ticks: every stream but "late" (fed only 10) has a full window.
  std::vector<std::vector<double>> batch(5);
  std::vector<std::vector<double>> pushed(5);
  for (int t = 0; t < 60; ++t) {
    for (size_t i = 0; i < 4; ++i) {
      batch[i] = {rng.Normal(0.4 * static_cast<double>(i), 1.0)};
      pushed[i].push_back(batch[i][0]);
    }
    batch[4].clear();
    if (t < 10) {
      batch[4] = {rng.Normal(0, 1)};
      pushed[4].push_back(batch[4][0]);
    }
    ASSERT_TRUE(monitor->PushBatch(batch).ok());
  }

  const auto events_before = monitor->events().size();
  const auto ticks_before = monitor->stream_ticks(0);
  std::vector<KsOutcome> outcomes;
  ASSERT_TRUE(monitor->RecheckWindows(&outcomes).ok());
  ASSERT_EQ(outcomes.size(), 5u);

  const size_t windows[] = {40, 40, 25, 40, 40};
  for (size_t i = 0; i < 4; ++i) {
    std::vector<double> ref = (i == 3) ? ref_b : ref_a;
    std::sort(ref.begin(), ref.end());
    std::vector<double> window(pushed[i].end() -
                                   static_cast<long>(windows[i]),
                               pushed[i].end());
    std::sort(window.begin(), window.end());
    auto solo = ks::RunSorted(ref, window, monitor->options().alpha);
    ASSERT_TRUE(solo.ok()) << "stream " << i;
    EXPECT_EQ(outcomes[i].statistic, solo->statistic) << "stream " << i;
    EXPECT_EQ(outcomes[i].threshold, solo->threshold) << "stream " << i;
    EXPECT_EQ(outcomes[i].location, solo->location) << "stream " << i;
    EXPECT_EQ(outcomes[i].reject, solo->reject) << "stream " << i;
    EXPECT_EQ(outcomes[i].n, solo->n) << "stream " << i;
    EXPECT_EQ(outcomes[i].m, windows[i]) << "stream " << i;
  }
  // The non-full stream is skipped, recognizable by the impossible n == 0.
  EXPECT_EQ(outcomes[4].n, 0u);
  EXPECT_EQ(outcomes[4].m, 0u);

  // Read-only triage: no events appended, no detector advanced, and a
  // second call reproduces the same outcomes from the same windows.
  EXPECT_EQ(monitor->events().size(), events_before);
  EXPECT_EQ(monitor->stream_ticks(0), ticks_before);
  std::vector<KsOutcome> again;
  ASSERT_TRUE(monitor->RecheckWindows(&again).ok());
  ASSERT_EQ(again.size(), outcomes.size());
  for (size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again[i].statistic, outcomes[i].statistic);
    EXPECT_EQ(again[i].reject, outcomes[i].reject);
  }
}

TEST(DriftMonitorTest, RecheckWindowsOnEmptyMonitorIsOk) {
  auto monitor = DriftMonitor::Create(MonitorOptions{});
  ASSERT_TRUE(monitor.ok());
  std::vector<KsOutcome> outcomes{{}, {}};
  ASSERT_TRUE(monitor->RecheckWindows(&outcomes).ok());
  EXPECT_TRUE(outcomes.empty());
}

TEST(SketchedMonitorTest, CreateValidatesSketchK) {
  MonitorOptions options;
  options.reference_mode = ReferenceMode::kSketched;
  options.sketch_k = 4;  // below sketch::KllSketch::kMinCapacity
  EXPECT_FALSE(DriftMonitor::Create(options).ok());
  options.sketch_k = (size_t{1} << 21);  // above kMaxCapacity
  EXPECT_FALSE(DriftMonitor::Create(options).ok());
  options.sketch_k = 128;
  EXPECT_TRUE(DriftMonitor::Create(options).ok());
  // An exact-mode monitor never reads sketch_k; a nonsense value is inert.
  options.reference_mode = ReferenceMode::kExact;
  options.sketch_k = 4;
  EXPECT_TRUE(DriftMonitor::Create(options).ok());
}

TEST(SketchedMonitorTest, DetectsAndExplainsInjectedDrift) {
  const size_t window = 60;
  MonitorOptions options;
  options.alpha = 0.01;
  options.reference_mode = ReferenceMode::kSketched;
  options.sketch_k = 128;
  Fixture f = MakeFixture(options, 1, window);
  const ts::DriftScenario& sc = f.scenarios.front();
  ASSERT_EQ(sc.kind, ts::DriftKind::kMeanShift);
  Replay(&f, 32);

  // Same scenario-level contract as the exact-mode monitor: the injected
  // mean shift fires one event inside the transition window, and the
  // counterfactual explanation holds.
  ASSERT_FALSE(f.monitor.events().empty());
  const DriftEvent& event = f.monitor.events().front();
  EXPECT_EQ(event.stream, 0u);
  EXPECT_GT(event.tick, sc.drift_begin);
  EXPECT_LE(event.tick, sc.drift_begin + window);
  EXPECT_TRUE(event.outcome.reject);
  ASSERT_TRUE(event.explain_status.ok());
  EXPECT_GT(event.report.k, 0u);
  EXPECT_FALSE(event.report.after.reject);

  // Every full window went through the triage exactly once, and the
  // healthy pre-drift stretch produced certified passes (the cheap path).
  const auto stats = f.monitor.stats();
  const uint64_t full_windows =
      f.monitor.stream_ticks(0) - window + 1;
  EXPECT_EQ(stats.triage_certified_pass + stats.triage_certified_fail +
                stats.triage_fallbacks,
            full_windows);
  EXPECT_GT(stats.triage_certified_pass, 0u);
  EXPECT_GT(stats.triage_certified_fail, 0u);
}

TEST(SketchedMonitorTest, RecheckWindowsMatchesRunSorted) {
  // Detection in sketched mode is defined by recompute semantics, so the
  // read-only RecheckWindows oracle must still be exactly ks::RunSorted on
  // each full ring — the sketch only triages which windows pay for it.
  MonitorOptions options;
  options.reference_mode = ReferenceMode::kSketched;
  options.sketch_k = 64;
  auto monitor = DriftMonitor::Create(options);
  ASSERT_TRUE(monitor.ok());
  Rng rng(kSeed);
  std::vector<double> ref;
  for (int i = 0; i < 200; ++i) ref.push_back(rng.Normal(0, 1));
  ASSERT_TRUE(monitor->AddStream("full", ref, 40).ok());
  ASSERT_TRUE(monitor->AddStream("late", ref, 40).ok());  // never fills

  std::vector<double> pushed;
  for (int t = 0; t < 55; ++t) {
    std::vector<std::vector<double>> batch(2);
    batch[0] = {rng.Normal(0.5, 1.0)};
    pushed.push_back(batch[0][0]);
    if (t < 10) batch[1] = {rng.Normal(0, 1)};
    ASSERT_TRUE(monitor->PushBatch(batch).ok());
  }

  std::vector<KsOutcome> outcomes;
  ASSERT_TRUE(monitor->RecheckWindows(&outcomes).ok());
  ASSERT_EQ(outcomes.size(), 2u);
  std::vector<double> sorted_ref = ref;
  std::sort(sorted_ref.begin(), sorted_ref.end());
  std::vector<double> window(pushed.end() - 40, pushed.end());
  std::sort(window.begin(), window.end());
  auto solo = ks::RunSorted(sorted_ref, window, monitor->options().alpha);
  ASSERT_TRUE(solo.ok());
  EXPECT_EQ(outcomes[0].statistic, solo->statistic);
  EXPECT_EQ(outcomes[0].reject, solo->reject);
  EXPECT_EQ(outcomes[0].n, solo->n);
  // The non-full stream is skipped (impossible n == 0), as in exact mode.
  EXPECT_EQ(outcomes[1].n, 0u);
}

TEST(SketchedMonitorTest, PinnedReferencesIgnoreTheCacheBound) {
  // Live streams pin their cache entries, so a bound tighter than the
  // number of distinct references must not strand a stream: the table goes
  // over capacity instead of evicting.
  MonitorOptions options;
  options.reference_mode = ReferenceMode::kSketched;
  options.sketch_k = 64;
  options.cache_capacity = 1;
  auto monitor = DriftMonitor::Create(options);
  ASSERT_TRUE(monitor.ok());
  Rng rng(kSeed);
  for (int s = 0; s < 3; ++s) {
    std::vector<double> ref;
    for (int i = 0; i < 100; ++i) {
      ref.push_back(rng.Normal(static_cast<double>(s), 1.0));
    }
    ASSERT_TRUE(
        monitor->AddStream("s" + std::to_string(s), ref, 20).ok());
  }
  const auto cache = monitor->cache_stats();
  EXPECT_EQ(cache.entries, 3u);
  EXPECT_EQ(cache.evictions, 0u);
  EXPECT_GT(cache.resident_bytes, 0u);
}

TEST(SameEventLogsTest, DiscriminatesFields) {
  DriftEvent a;
  a.stream = 1;
  a.tick = 5;
  a.outcome.statistic = 0.5;
  DriftEvent b = a;
  EXPECT_TRUE(SameEventLogs({a}, {b}));
  EXPECT_FALSE(SameEventLogs({a}, {}));
  b.tick = 6;
  EXPECT_FALSE(SameEventLogs({a}, {b}));
  b = a;
  b.report.explanation.indices.push_back(3);
  EXPECT_FALSE(SameEventLogs({a}, {b}));
  b = a;
  b.explain_status = Status::NotFound("no explanation");
  EXPECT_FALSE(SameEventLogs({a}, {b}));
}

}  // namespace
}  // namespace stream
}  // namespace moche
