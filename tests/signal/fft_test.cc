#include "signal/fft.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace moche {
namespace signal {
namespace {

constexpr double kPi = 3.14159265358979323846;

// O(n^2) reference DFT.
std::vector<Complex> NaiveDft(const std::vector<Complex>& x) {
  const size_t n = x.size();
  std::vector<Complex> out(n);
  for (size_t k = 0; k < n; ++k) {
    Complex sum(0, 0);
    for (size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * kPi * static_cast<double>(j * k) /
                           static_cast<double>(n);
      sum += x[j] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = sum;
  }
  return out;
}

void ExpectSpectraNear(const std::vector<Complex>& a,
                       const std::vector<Complex>& b, double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), tol) << "index " << i;
    EXPECT_NEAR(a[i].imag(), b[i].imag(), tol) << "index " << i;
  }
}

TEST(FftHelpersTest, PowerOfTwoDetection) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(1000));
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(5), 8u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1025), 2048u);
}

TEST(FftTest, ImpulseHasFlatSpectrum) {
  std::vector<Complex> x(8, Complex(0, 0));
  x[0] = Complex(1, 0);
  Fft(&x);
  for (const Complex& c : x) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, ConstantHasDcOnly) {
  std::vector<Complex> x(16, Complex(2.0, 0));
  Fft(&x);
  EXPECT_NEAR(x[0].real(), 32.0, 1e-10);
  for (size_t i = 1; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(x[i]), 0.0, 1e-10);
  }
}

class FftSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FftSizeTest, MatchesNaiveDft) {
  const size_t n = GetParam();
  Rng rng(n);
  std::vector<Complex> x(n);
  for (Complex& c : x) c = Complex(rng.Uniform(-1, 1), rng.Uniform(-1, 1));
  std::vector<Complex> fast = x;
  Fft(&fast);
  const std::vector<Complex> slow = NaiveDft(x);
  ExpectSpectraNear(fast, slow, 1e-8 * static_cast<double>(n));
}

TEST_P(FftSizeTest, RoundTripIsIdentity) {
  const size_t n = GetParam();
  Rng rng(n + 1);
  std::vector<Complex> x(n);
  for (Complex& c : x) c = Complex(rng.Uniform(-1, 1), rng.Uniform(-1, 1));
  std::vector<Complex> y = x;
  Fft(&y);
  Ifft(&y);
  ExpectSpectraNear(y, x, 1e-9 * static_cast<double>(n + 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 31,
                                           32, 63, 100, 128, 243, 256));

TEST(FftTest, LinearityHolds) {
  Rng rng(9);
  const size_t n = 64;
  std::vector<Complex> a(n);
  std::vector<Complex> b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = Complex(rng.Uniform(-1, 1), 0);
    b[i] = Complex(rng.Uniform(-1, 1), 0);
  }
  std::vector<Complex> sum(n);
  for (size_t i = 0; i < n; ++i) sum[i] = a[i] + 2.0 * b[i];
  std::vector<Complex> fa = a;
  std::vector<Complex> fb = b;
  std::vector<Complex> fsum = sum;
  Fft(&fa);
  Fft(&fb);
  Fft(&fsum);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(fsum[i] - (fa[i] + 2.0 * fb[i])), 0.0, 1e-9);
  }
}

TEST(RealFftTest, SpectrumIsConjugateSymmetric) {
  Rng rng(11);
  std::vector<double> x(50);
  for (double& v : x) v = rng.Uniform(-1, 1);
  const std::vector<Complex> spectrum = RealFft(x);
  const size_t n = spectrum.size();
  for (size_t k = 1; k < n / 2; ++k) {
    EXPECT_NEAR(spectrum[k].real(), spectrum[n - k].real(), 1e-9);
    EXPECT_NEAR(spectrum[k].imag(), -spectrum[n - k].imag(), 1e-9);
  }
}

TEST(CircularConvolveTest, MatchesNaiveConvolution) {
  Rng rng(13);
  const size_t n = 20;
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (double& v : a) v = rng.Uniform(-1, 1);
  for (double& v : b) v = rng.Uniform(-1, 1);
  const std::vector<double> fast = CircularConvolve(a, b);
  for (size_t k = 0; k < n; ++k) {
    double expected = 0.0;
    for (size_t j = 0; j < n; ++j) {
      expected += a[j] * b[(k + n - j) % n];
    }
    EXPECT_NEAR(fast[k], expected, 1e-9);
  }
}

TEST(CircularConvolveTest, EmptyInput) {
  EXPECT_TRUE(CircularConvolve({}, {}).empty());
}

}  // namespace
}  // namespace signal
}  // namespace moche
