#include "signal/spectral_residual.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace moche {
namespace signal {
namespace {

TEST(SpectralResidualTest, ScoresHaveInputLength) {
  std::vector<double> series(100, 1.0);
  auto scores = SpectralResidualScores(series);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), series.size());
}

TEST(SpectralResidualTest, RejectsTinySeries) {
  EXPECT_FALSE(SpectralResidualScores({1.0, 2.0}).ok());
  EXPECT_TRUE(SpectralResidualScores({1.0, 2.0, 3.0}).ok());
}

TEST(SpectralResidualTest, ImpulseGetsTopScore) {
  Rng rng(3);
  std::vector<double> series(200);
  for (double& v : series) v = rng.Normal(0.0, 0.1);
  series[120] += 8.0;  // injected point anomaly
  auto scores = SpectralResidualScores(series);
  ASSERT_TRUE(scores.ok());
  const size_t argmax = static_cast<size_t>(
      std::max_element(scores->begin(), scores->end()) - scores->begin());
  EXPECT_NEAR(static_cast<double>(argmax), 120.0, 2.0);
}

TEST(SpectralResidualTest, ImpulseOnSinusoidStandsOut) {
  std::vector<double> series(256);
  for (size_t t = 0; t < series.size(); ++t) {
    series[t] = std::sin(2.0 * 3.14159265 * static_cast<double>(t) / 32.0);
  }
  series[97] += 5.0;
  auto scores = SpectralResidualScores(series);
  ASSERT_TRUE(scores.ok());
  // The anomaly's score must be in the top 1% of all scores.
  std::vector<double> sorted = *scores;
  std::sort(sorted.begin(), sorted.end());
  const double p99 = sorted[static_cast<size_t>(0.99 * sorted.size())];
  EXPECT_GE((*scores)[97], p99);
}

TEST(SpectralResidualTest, LevelShiftBoundaryScoresHigh) {
  Rng rng(5);
  std::vector<double> series(300);
  for (size_t t = 0; t < series.size(); ++t) {
    series[t] = rng.Normal(t < 150 ? 0.0 : 4.0, 0.2);
  }
  auto scores = SpectralResidualScores(series);
  ASSERT_TRUE(scores.ok());
  // The shift region must score in the top decile. (The series endpoints
  // also score high — the FFT sees the wrap-around of a step as a jump —
  // so we assert on the boundary region rather than the global argmax.)
  std::vector<double> sorted = *scores;
  std::sort(sorted.begin(), sorted.end());
  const double p90 = sorted[static_cast<size_t>(0.90 * sorted.size())];
  const double boundary_max =
      *std::max_element(scores->begin() + 145, scores->begin() + 156);
  EXPECT_GE(boundary_max, p90);
}

TEST(SpectralResidualTest, DeterministicForSameInput) {
  Rng rng(7);
  std::vector<double> series(128);
  for (double& v : series) v = rng.Normal();
  auto a = SpectralResidualScores(series);
  auto b = SpectralResidualScores(series);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(SpectralResidualTest, OptionsChangeScores) {
  Rng rng(9);
  std::vector<double> series(128);
  for (double& v : series) v = rng.Normal();
  series[60] += 6.0;
  SpectralResidualOptions narrow;
  narrow.score_window = 5;
  SpectralResidualOptions wide;
  wide.score_window = 51;
  auto a = SpectralResidualScores(series, narrow);
  auto b = SpectralResidualScores(series, wide);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
}


TEST(SpectralResidualTest, ConstantSeriesScoresAreFinite) {
  std::vector<double> series(128, 5.0);
  auto scores = SpectralResidualScores(series);
  ASSERT_TRUE(scores.ok());
  for (double s : *scores) {
    EXPECT_TRUE(std::isfinite(s));
  }
}

TEST(SpectralResidualTest, NegativeValuesHandled) {
  Rng rng(21);
  std::vector<double> series(100);
  for (double& v : series) v = rng.Normal(-50.0, 3.0);
  series[40] = 10.0;  // big positive excursion in a negative series
  auto scores = SpectralResidualScores(series);
  ASSERT_TRUE(scores.ok());
  const size_t argmax = static_cast<size_t>(
      std::max_element(scores->begin(), scores->end()) - scores->begin());
  EXPECT_NEAR(static_cast<double>(argmax), 40.0, 2.0);
}

}  // namespace
}  // namespace signal
}  // namespace moche
