// The parallel batch engine's core guarantee: for every thread count, both
// CollectFailedInstances and RunMethods produce output identical to the
// sequential run — same instances, same order, same aggregates.

#include <vector>

#include <gtest/gtest.h>

#include "baselines/d3.h"
#include "baselines/greedy.h"
#include "baselines/moche_explainer.h"
#include "harness/runner.h"
#include "timeseries/generators.h"

namespace moche {
namespace harness {
namespace {

CollectOptions BaseCollect() {
  CollectOptions opt;
  opt.window_sizes = {100, 150};
  opt.sample_per_combination = 3;
  return opt;
}

void ExpectSameInstances(const std::vector<ExperimentInstance>& a,
                         const std::vector<ExperimentInstance>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dataset, b[i].dataset) << i;
    EXPECT_EQ(a[i].series, b[i].series) << i;
    EXPECT_EQ(a[i].window, b[i].window) << i;
    EXPECT_EQ(a[i].test_begin, b[i].test_begin) << i;
    EXPECT_EQ(a[i].instance.reference, b[i].instance.reference) << i;
    EXPECT_EQ(a[i].instance.test, b[i].instance.test) << i;
    EXPECT_EQ(a[i].preference, b[i].preference) << i;
  }
}

TEST(ParallelCollectTest, EveryThreadCountCollectsTheSameInstances) {
  const ts::Dataset ds = ts::MakeArtDataset(4, 0.25);
  CollectOptions sequential = BaseCollect();
  auto base = CollectFailedInstances(ds, sequential);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_FALSE(base->empty());

  for (size_t threads : {size_t{0}, size_t{2}, size_t{4}, size_t{8}}) {
    CollectOptions parallel = BaseCollect();
    parallel.num_threads = threads;
    auto got = CollectFailedInstances(ds, parallel);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSameInstances(*base, *got);
  }
}

TEST(ParallelCollectTest, SeedStillSelectsTheSample) {
  const ts::Dataset ds = ts::MakeArtDataset(3, 0.25);
  CollectOptions a = BaseCollect();
  a.sample_per_combination = 1;  // make the sampler actually choose
  auto with_a = CollectFailedInstances(ds, a);
  ASSERT_TRUE(with_a.ok());
  ASSERT_FALSE(with_a->empty());

  // The per-combination streams derive from the seed: some nearby seed
  // must draw a different sample (each combination has many candidates).
  bool any_difference = false;
  for (uint64_t seed = a.seed + 1; seed < a.seed + 6 && !any_difference;
       ++seed) {
    CollectOptions b = a;
    b.seed = seed;
    auto with_b = CollectFailedInstances(ds, b);
    ASSERT_TRUE(with_b.ok());
    any_difference = with_a->size() != with_b->size();
    for (size_t i = 0; !any_difference && i < with_a->size(); ++i) {
      any_difference = (*with_a)[i].test_begin != (*with_b)[i].test_begin;
    }
  }
  EXPECT_TRUE(any_difference);
}

class ParallelRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = ts::MakeArtDataset(3, 0.25);
    CollectOptions opt = BaseCollect();
    auto instances = CollectFailedInstances(dataset_, opt);
    ASSERT_TRUE(instances.ok()) << instances.status().ToString();
    instances_ = std::move(instances).value();
    ASSERT_FALSE(instances_.empty());
  }

  std::vector<baselines::Explainer*> Methods() {
    return {&moche_, &greedy_, &d3_};
  }

  ts::Dataset dataset_;
  std::vector<ExperimentInstance> instances_;
  baselines::MocheExplainer moche_;
  baselines::GreedyExplainer greedy_;
  baselines::D3Explainer d3_;
};

TEST_F(ParallelRunTest, ParallelAggregatesAreIdenticalToSequential) {
  const std::vector<InstanceResults> sequential =
      RunMethods(instances_, Methods());
  auto base = Aggregate(sequential);
  ASSERT_TRUE(base.ok());

  for (size_t threads : {size_t{0}, size_t{2}, size_t{8}}) {
    RunOptions opt;
    opt.num_threads = threads;
    const std::vector<InstanceResults> parallel =
        RunMethods(instances_, Methods(), opt);
    ASSERT_EQ(parallel.size(), sequential.size());

    auto agg = Aggregate(parallel);
    ASSERT_TRUE(agg.ok());
    ASSERT_EQ(agg->size(), base->size());
    for (size_t j = 0; j < base->size(); ++j) {
      const MethodAggregate& want = (*base)[j];
      const MethodAggregate& got = (*agg)[j];
      EXPECT_EQ(got.method, want.method);
      // Everything except wall time is deterministic, so aggregate
      // equality is exact, not approximate.
      EXPECT_DOUBLE_EQ(got.avg_ise, want.avg_ise);
      EXPECT_DOUBLE_EQ(got.avg_rmse, want.avg_rmse);
      EXPECT_DOUBLE_EQ(got.reverse_factor, want.reverse_factor);
      EXPECT_EQ(got.attempted, want.attempted);
      EXPECT_EQ(got.produced, want.produced);
      EXPECT_EQ(got.ise_counted, want.ise_counted);
    }
  }
}

TEST_F(ParallelRunTest, ResultsStayInInputOrderWithPerTaskTimers) {
  RunOptions opt;
  opt.num_threads = 4;
  const std::vector<InstanceResults> results =
      RunMethods(instances_, Methods(), opt);
  ASSERT_EQ(results.size(), instances_.size());
  for (size_t i = 0; i < results.size(); ++i) {
    // record i describes instance i, whatever thread ran it
    EXPECT_EQ(results[i].instance, &instances_[i]);
    EXPECT_GE(results[i].seconds, 0.0);
    double methods_total = 0.0;
    for (const MethodOutcome& o : results[i].outcomes) {
      EXPECT_GE(o.seconds, 0.0);
      methods_total += o.seconds;
    }
    // the task timer wraps all the per-method timers
    EXPECT_GE(results[i].seconds + 1e-6, methods_total);
  }
}

}  // namespace
}  // namespace harness
}  // namespace moche
