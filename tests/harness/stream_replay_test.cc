#include "harness/stream_replay.h"

#include <gtest/gtest.h>

#include "timeseries/generators.h"

namespace moche {
namespace harness {
namespace {

constexpr uint64_t kSeed = 20210416;

// A small multi-series dataset from the drift scenario generator: each
// scenario's reference + observations concatenated back into one series.
ts::Dataset ScenarioDataset(size_t count, size_t reference, size_t length) {
  ts::Dataset ds;
  ds.name = "DRIFT-SYN";
  for (ts::DriftScenario& sc :
       ts::MakeDriftScenarioSuite(count, kSeed, reference, length)) {
    ts::TimeSeries series;
    series.name = sc.name;
    series.values = std::move(sc.reference);
    series.values.insert(series.values.end(), sc.observations.begin(),
                         sc.observations.end());
    ds.series.push_back(std::move(series));
  }
  return ds;
}

ReplayOptions SmallReplay() {
  ReplayOptions opt;
  opt.reference_size = 300;
  opt.window_size = 60;
  opt.ticks_per_batch = 32;
  return opt;
}

TEST(StreamReplayTest, ValidatesOptions) {
  const ts::Dataset ds = ScenarioDataset(2, 300, 400);
  ReplayOptions opt = SmallReplay();
  opt.reference_size = 0;
  EXPECT_FALSE(ReplayDataset(ds, opt).ok());
  opt = SmallReplay();
  opt.ticks_per_batch = 0;
  EXPECT_FALSE(ReplayDataset(ds, opt).ok());
}

TEST(StreamReplayTest, ReplaysEverySeriesAndExplainsDrifts) {
  const ts::Dataset ds = ScenarioDataset(6, 300, 400);
  auto result = ReplayDataset(ds, SmallReplay());
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(result->stream_names.size(), 6u);
  EXPECT_EQ(result->series_skipped, 0u);
  // Every series streams its post-reference tail.
  EXPECT_EQ(result->observations, 6u * 400u);
  // Every scenario drifts, so every stream produces at least one event.
  std::vector<bool> fired(6, false);
  for (const stream::DriftEvent& event : result->events) {
    fired[event.stream] = true;
    EXPECT_TRUE(event.outcome.reject);
  }
  for (size_t i = 0; i < fired.size(); ++i) {
    EXPECT_TRUE(fired[i]) << "stream " << i << " never fired";
  }
  EXPECT_GE(result->drift_ticks, result->events.size());
}

TEST(StreamReplayTest, SkipsSeriesTooShortForReferencePlusWindow) {
  ts::Dataset ds = ScenarioDataset(2, 300, 400);
  ts::TimeSeries runt;
  runt.name = "runt";
  runt.values.assign(100, 1.0);  // < reference_size + window_size
  ds.series.push_back(std::move(runt));

  auto result = ReplayDataset(ds, SmallReplay());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stream_names.size(), 2u);
  EXPECT_EQ(result->series_skipped, 1u);

  // A dataset with only runts is an error, not an empty result.
  ts::Dataset empty;
  empty.name = "RUNTS";
  ts::TimeSeries only;
  only.name = "only";
  only.values.assign(10, 1.0);
  empty.series.push_back(std::move(only));
  EXPECT_FALSE(ReplayDataset(empty, SmallReplay()).ok());
}

TEST(StreamReplayTest, DeterministicAcrossThreadCounts) {
  const ts::Dataset ds = ScenarioDataset(5, 300, 400);
  ReplayOptions sequential = SmallReplay();
  sequential.monitor.rearm = stream::RearmPolicy::kEveryKPushes;
  sequential.monitor.explain_every_k = 25;
  sequential.monitor.num_threads = 1;
  ReplayOptions parallel = sequential;
  parallel.monitor.num_threads = 4;
  // Different batching must not change the log either.
  parallel.ticks_per_batch = 13;

  auto a = ReplayDataset(ds, sequential);
  auto b = ReplayDataset(ds, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_FALSE(a->events.empty());
  EXPECT_TRUE(stream::SameEventLogs(a->events, b->events));
  EXPECT_EQ(a->observations, b->observations);
  EXPECT_EQ(a->drift_ticks, b->drift_ticks);
}

}  // namespace
}  // namespace harness
}  // namespace moche
