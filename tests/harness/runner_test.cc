#include "harness/runner.h"

#include <map>

#include <gtest/gtest.h>

#include "baselines/d3.h"
#include "baselines/greedy.h"
#include "baselines/moche_explainer.h"
#include "timeseries/generators.h"

namespace moche {
namespace harness {
namespace {

class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = ts::MakeArtDataset(3, 0.25);
    CollectOptions opt;
    opt.window_sizes = {100};
    opt.sample_per_combination = 3;
    auto instances = CollectFailedInstances(dataset_, opt);
    ASSERT_TRUE(instances.ok()) << instances.status().ToString();
    instances_ = std::move(instances).value();
  }

  ts::Dataset dataset_;
  std::vector<ExperimentInstance> instances_;
};

TEST_F(RunnerTest, CollectsSampledFailedInstances) {
  ASSERT_FALSE(instances_.empty());
  for (const ExperimentInstance& inst : instances_) {
    EXPECT_EQ(inst.dataset, "ART");
    EXPECT_EQ(inst.window, 100u);
    EXPECT_EQ(inst.instance.reference.size(), 100u);
    EXPECT_EQ(inst.instance.test.size(), 100u);
    EXPECT_TRUE(ValidatePreference(inst.preference, 100).ok());
    // collected tests must actually fail
    auto outcome = RunInstance(inst.instance);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->reject);
  }
}

TEST_F(RunnerTest, SamplingCapRespected) {
  // at most sample_per_combination per (series, window)
  std::map<std::string, size_t> per_series;
  for (const ExperimentInstance& inst : instances_) {
    ++per_series[inst.series];
  }
  for (const auto& [name, count] : per_series) {
    EXPECT_LE(count, 3u) << name;
  }
}

TEST_F(RunnerTest, RunMethodsAndAggregate) {
  baselines::MocheExplainer moche_method;
  baselines::GreedyExplainer grd;
  baselines::D3Explainer d3;
  std::vector<baselines::Explainer*> methods{&moche_method, &grd, &d3};

  const std::vector<InstanceResults> results =
      RunMethods(instances_, methods);
  ASSERT_EQ(results.size(), instances_.size());

  auto agg_or = Aggregate(results);
  ASSERT_TRUE(agg_or.ok()) << agg_or.status().ToString();
  const std::vector<MethodAggregate>& agg = *agg_or;
  ASSERT_EQ(agg.size(), 3u);
  EXPECT_EQ(agg[0].method, "M");
  // MOCHE always produces and always has the smallest explanation
  EXPECT_DOUBLE_EQ(agg[0].reverse_factor, 1.0);
  EXPECT_DOUBLE_EQ(agg[0].avg_ise, 1.0);
  // greedy/D3 are valid too (RF 1) but rarely smallest on all instances
  EXPECT_DOUBLE_EQ(agg[1].reverse_factor, 1.0);
  EXPECT_LE(agg[1].avg_ise, 1.0);
  // RMSE is non-negative and typically smallest for MOCHE
  EXPECT_GE(agg[1].avg_rmse, 0.0);
  EXPECT_LE(agg[0].avg_rmse, agg[1].avg_rmse + 1e-9);
}

TEST_F(RunnerTest, AggregateOnEmptyResults) {
  auto agg = Aggregate({});
  ASSERT_TRUE(agg.ok());
  EXPECT_TRUE(agg->empty());
}

TEST_F(RunnerTest, AggregateRejectsRaggedResults) {
  baselines::GreedyExplainer grd;
  baselines::D3Explainer d3;
  std::vector<baselines::Explainer*> methods{&grd, &d3};
  std::vector<InstanceResults> results = RunMethods(instances_, methods);
  ASSERT_GE(results.size(), 2u);

  // Regression: Aggregate used to index every record by the first record's
  // outcome count — out-of-bounds on ragged input. Now InvalidArgument.
  std::vector<InstanceResults> ragged = results;
  ragged[1].outcomes.pop_back();
  EXPECT_TRUE(Aggregate(ragged).status().IsInvalidArgument());

  std::vector<InstanceResults> longer = results;
  longer[0].outcomes.pop_back();  // first record shorter than the rest
  EXPECT_TRUE(Aggregate(longer).status().IsInvalidArgument());

  // Same count but misaligned method names is just as unaggregatable.
  std::vector<InstanceResults> renamed = results;
  std::swap(renamed[1].outcomes[0], renamed[1].outcomes[1]);
  EXPECT_TRUE(Aggregate(renamed).status().IsInvalidArgument());
}

TEST(RunnerOptionsTest, LabelFilterCanBeDisabled) {
  const ts::Dataset ds = ts::MakeArtDataset(5, 0.25);
  CollectOptions strict;
  strict.window_sizes = {100};
  strict.sample_per_combination = 100;  // no cap in practice
  CollectOptions lax = strict;
  lax.require_labeled_anomaly = false;
  auto with_filter = CollectFailedInstances(ds, strict);
  auto without_filter = CollectFailedInstances(ds, lax);
  ASSERT_TRUE(with_filter.ok());
  ASSERT_TRUE(without_filter.ok());
  EXPECT_GE(without_filter->size(), with_filter->size());
}

}  // namespace
}  // namespace harness
}  // namespace moche
