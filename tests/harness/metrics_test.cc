#include "harness/metrics.h"

#include <gtest/gtest.h>

#include "ks/ecdf.h"

namespace moche {
namespace harness {
namespace {

TEST(IseTest, SingleSmallest) {
  EXPECT_EQ(IsSmallestExplanation({5, 3, 9}), (std::vector<int>{0, 1, 0}));
}

TEST(IseTest, TiesAllGetOne) {
  EXPECT_EQ(IsSmallestExplanation({4, 4, 7}), (std::vector<int>{1, 1, 0}));
}

TEST(IseTest, EmptyInput) {
  EXPECT_TRUE(IsSmallestExplanation({}).empty());
}

TEST(ExplanationRmseTest, PerfectExplanationGivesSmallRmse) {
  // R = {1,2,3,4}, T = {1,2,3,4,99,99}: removing the two 99s leaves
  // identical distributions -> RMSE 0.
  KsInstance inst{{1, 2, 3, 4}, {1, 2, 3, 4, 99, 99}, 0.05};
  Explanation expl;
  expl.indices = {4, 5};
  EXPECT_DOUBLE_EQ(ExplanationRmse(inst, expl), 0.0);
}

TEST(ExplanationRmseTest, MatchesDirectComputation) {
  KsInstance inst{{1, 2, 3}, {2, 3, 9}, 0.05};
  Explanation expl;
  expl.indices = {2};  // remove the 9
  EXPECT_DOUBLE_EQ(ExplanationRmse(inst, expl),
                   EcdfRmse({1, 2, 3}, {2, 3}));
}

TEST(ExplanationRmseTest, EmptyExplanationEqualsRawRmse) {
  KsInstance inst{{1, 2}, {5, 6}, 0.05};
  Explanation expl;
  EXPECT_DOUBLE_EQ(ExplanationRmse(inst, expl), EcdfRmse({1, 2}, {5, 6}));
}

}  // namespace
}  // namespace harness
}  // namespace moche
