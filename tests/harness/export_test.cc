#include "harness/export.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "baselines/greedy.h"
#include "baselines/moche_explainer.h"
#include "timeseries/generators.h"

namespace moche {
namespace harness {
namespace {

std::vector<InstanceResults> SmallRun(
    std::vector<ExperimentInstance>* storage) {
  const ts::Dataset art = ts::MakeArtDataset(11, 0.25);
  CollectOptions opt;
  opt.window_sizes = {100};
  opt.sample_per_combination = 2;
  auto instances = CollectFailedInstances(art, opt);
  EXPECT_TRUE(instances.ok());
  *storage = std::move(instances).value();
  static baselines::MocheExplainer moche_method;
  static baselines::GreedyExplainer grd;
  return RunMethods(*storage, {&moche_method, &grd});
}

TEST(ExportTest, ResultsCsvShape) {
  std::vector<ExperimentInstance> storage;
  const auto results = SmallRun(&storage);
  ASSERT_FALSE(results.empty());
  const CsvTable table = ResultsToCsv(results);
  // header + one row per (instance, method)
  ASSERT_EQ(table.rows.size(), 1 + results.size() * 2);
  EXPECT_EQ(table.rows[0][0], "dataset");
  EXPECT_EQ(table.rows[1][0], "ART");
  EXPECT_EQ(table.rows[1][4], "M");
  EXPECT_EQ(table.rows[2][4], "GRD");
  EXPECT_EQ(table.rows[1][5], "1");  // MOCHE always produces
}

TEST(ExportTest, AggregatesCsvShape) {
  std::vector<ExperimentInstance> storage;
  const auto results = SmallRun(&storage);
  auto aggregates = Aggregate(results);
  ASSERT_TRUE(aggregates.ok());
  const CsvTable table = AggregatesToCsv(*aggregates);
  ASSERT_EQ(table.rows.size(), 3u);  // header + 2 methods
  EXPECT_EQ(table.rows[0][0], "method");
  EXPECT_EQ(table.rows[1][0], "M");
  // MOCHE's RF is 1
  EXPECT_EQ(table.rows[1][3], "1.000000");
}

TEST(ExportTest, WriteAndReadBack) {
  std::vector<ExperimentInstance> storage;
  const auto results = SmallRun(&storage);
  const std::string path = testing::TempDir() + "/moche_results.csv";
  ASSERT_TRUE(WriteResultsCsv(path, results).ok());
  auto read_back = ReadCsvFile(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back->rows.size(), ResultsToCsv(results).rows.size());
  std::remove(path.c_str());
}

TEST(ExportTest, EmptyResults) {
  const CsvTable table = ResultsToCsv({});
  EXPECT_EQ(table.rows.size(), 1u);  // header only
}

}  // namespace
}  // namespace harness
}  // namespace moche
