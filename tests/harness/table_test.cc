#include "harness/table.h"

#include <gtest/gtest.h>

namespace moche {
namespace harness {
namespace {

TEST(AsciiTableTest, AlignsColumns) {
  AsciiTable table({"Method", "ISE"});
  table.AddRow({"MOCHE", "1.00"});
  table.AddRow({"GRD", "0.25"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("Method  ISE"), std::string::npos);
  EXPECT_NE(out.find("MOCHE   1.00"), std::string::npos);
  EXPECT_NE(out.find("GRD     0.25"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(AsciiTableTest, WideCellsStretchColumns) {
  AsciiTable table({"A", "B"});
  table.AddRow({"verylongcell", "x"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("verylongcell  x"), std::string::npos);
}

TEST(AsciiTableTest, ShortRowsTolerated) {
  AsciiTable table({"A", "B", "C"});
  table.AddRow({"1"});
  EXPECT_FALSE(table.ToString().empty());
}

TEST(RenderBoxPlotTest, ContainsFiveNumbers) {
  FiveNumberSummary s;
  s.min = 0;
  s.q1 = 1;
  s.median = 2;
  s.q3 = 3;
  s.max = 6;
  s.mean = 2.4;
  const std::string out = RenderBoxPlot(s);
  EXPECT_NE(out.find("0.00"), std::string::npos);
  EXPECT_NE(out.find("2.00"), std::string::npos);
  EXPECT_NE(out.find("6.00"), std::string::npos);
  EXPECT_NE(out.find("mean 2.4"), std::string::npos);
}

}  // namespace
}  // namespace harness
}  // namespace moche
