#include "util/rng.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace moche {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int diff = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Uniform() != b.Uniform()) ++diff;
  }
  EXPECT_GT(diff, 0);
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, IntegerRespectsClosedRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Integer(-1, 3);
    EXPECT_GE(v, -1);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit in 1000 draws
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, NormalRoughMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(5.0, 2.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinctInRange) {
  Rng rng(17);
  const auto sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 20u);
  for (size_t idx : sample) EXPECT_LT(idx, 50u);
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(19);
  const auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(RngTest, WeightedIndexSkipsZeroWeights) {
  Rng rng(23);
  const std::vector<double> w{0.0, 1.0, 0.0, 2.0};
  for (int i = 0; i < 500; ++i) {
    const size_t idx = rng.WeightedIndex(w);
    EXPECT_TRUE(idx == 1 || idx == 3);
  }
}

TEST(RngTest, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(29);
  const std::vector<double> w{0.0, 0.0, 0.0};
  std::set<size_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(rng.WeightedIndex(w));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, WeightedIndexRoughlyProportional) {
  Rng rng(31);
  const std::vector<double> w{1.0, 3.0};
  int count1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.WeightedIndex(w) == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.02);
}

}  // namespace
}  // namespace moche
