#include "util/string_util.h"

#include <gtest/gtest.h>

namespace moche {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f s=%s", 3, 1.5, "hi"), "x=3 y=1.50 s=hi");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StrFormatTest, LongOutput) {
  const std::string big(500, 'a');
  EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 500u);
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(SplitTest, SplitsAndKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(TrimTest, StripsWhitespace) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("nochange"), "nochange");
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("-1e-3", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
  EXPECT_TRUE(ParseDouble("  42 ", &v));
  EXPECT_DOUBLE_EQ(v, 42.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("1.5 2.5", &v));
}

TEST(ParseInt64Test, ParsesAndRejects) {
  long long v = 0;
  EXPECT_TRUE(ParseInt64("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("1.5", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12a", &v));
}

}  // namespace
}  // namespace moche
