#include "util/string_util.h"

#include <clocale>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace moche {
namespace {

/// Installs a comma-decimal LC_NUMERIC for the test's lifetime, or skips
/// the locale-dependent assertions when no such locale is installed (CI
/// images often ship C.utf8 only). The locale-independent code paths are
/// still covered either way by the direct FormatG17/ParseDouble tests.
class CommaLocaleGuard {
 public:
  CommaLocaleGuard() {
    previous_ = std::setlocale(LC_NUMERIC, nullptr);
    for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8",
                             "fr_FR.utf8", "de_DE", "fr_FR"}) {
      if (std::setlocale(LC_NUMERIC, name) != nullptr) {
        active_ = true;
        return;
      }
    }
  }
  ~CommaLocaleGuard() {
    std::setlocale(LC_NUMERIC, previous_.c_str());
  }
  bool active() const { return active_; }

 private:
  std::string previous_;
  bool active_ = false;
};

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f s=%s", 3, 1.5, "hi"), "x=3 y=1.50 s=hi");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StrFormatTest, LongOutput) {
  const std::string big(500, 'a');
  EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 500u);
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(SplitTest, SplitsAndKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(TrimTest, StripsWhitespace) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("nochange"), "nochange");
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("-1e-3", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
  EXPECT_TRUE(ParseDouble("  42 ", &v));
  EXPECT_DOUBLE_EQ(v, 42.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("1.5 2.5", &v));
}

TEST(FormatG17Test, RoundTripsAtFullPrecision) {
  const double values[] = {0.0,      -0.0,   1.0 / 3.0, 0.1,
                           -2.5e-17, 1e300,  6.022e23,  0.27000563489881933,
                           42.0,     -1e-3};
  for (double v : values) {
    double back = 12345.0;
    ASSERT_TRUE(ParseDouble(FormatG17(v), &back)) << FormatG17(v);
    EXPECT_EQ(back, v) << FormatG17(v);
  }
  EXPECT_EQ(FormatG17(0.5), "0.5");
  // The dump format never contains a comma, whatever the locale.
  EXPECT_EQ(FormatG17(1.5).find(','), std::string::npos);
}

TEST(FormatG17Test, AppendG17AppendsInPlace) {
  std::string out = "x=";
  AppendG17(2.5, &out);
  EXPECT_EQ(out, "x=2.5");
}

// The regression behind FormatG17/ParseDouble: %.17g under a comma-decimal
// LC_NUMERIC printed "0,5" and strtod parsed "0.5" as 0 — every BENCH and
// corpus-dump number was locale-dependent. Both functions must ignore the
// C locale entirely.
TEST(FormatG17Test, UnaffectedByCommaDecimalLocale) {
  CommaLocaleGuard guard;
  if (!guard.active()) {
    GTEST_SKIP() << "no comma-decimal locale installed on this host";
  }
  // Prove the guard took effect: printf-family formatting now uses commas.
  char printf_buf[64];
  std::snprintf(printf_buf, sizeof(printf_buf), "%.2f", 0.5);
  ASSERT_STREQ(printf_buf, "0,50");

  EXPECT_EQ(FormatG17(0.5), "0.5");
  EXPECT_EQ(FormatG17(1.0 / 3.0), "0.33333333333333331");
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("0.5", &v));
  EXPECT_EQ(v, 0.5);
  EXPECT_TRUE(ParseDouble("-2.5e-17", &v));
  EXPECT_EQ(v, -2.5e-17);
  // The locale's comma spelling must NOT parse.
  EXPECT_FALSE(ParseDouble("0,5", &v));
  double back = 0.0;
  EXPECT_TRUE(ParseDouble(FormatG17(1e300), &back));
  EXPECT_EQ(back, 1e300);
}

TEST(ParseInt64Test, ParsesAndRejects) {
  long long v = 0;
  EXPECT_TRUE(ParseInt64("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("1.5", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12a", &v));
}

}  // namespace
}  // namespace moche
