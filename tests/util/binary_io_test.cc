// The canonical little-endian codec under src/util/binary_io.h: exact
// byte layouts (the snapshot format's wire contract), bit-exact double
// round-trips including the adversarial corners, and the Reader's
// untrusted-input discipline — every bounds violation returns false with
// the cursor unmoved and the output untouched.

#include "util/binary_io.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "gtest/gtest.h"

namespace moche {
namespace bin {
namespace {

TEST(BinaryIoTest, IntegerLayoutsAreLittleEndian) {
  std::string out;
  AppendU8(0xAB, &out);
  AppendU32Le(0x01020304u, &out);
  AppendU64Le(0x1122334455667788ull, &out);
  const std::string expected{
      '\xAB',                                            // u8
      '\x04', '\x03', '\x02', '\x01',                    // u32, LSB first
      '\x88', '\x77', '\x66', '\x55',                    // u64, LSB first
      '\x44', '\x33', '\x22', '\x11'};
  EXPECT_EQ(out, expected);

  Reader reader(out);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  ASSERT_TRUE(reader.ReadU8(&u8));
  ASSERT_TRUE(reader.ReadU32Le(&u32));
  ASSERT_TRUE(reader.ReadU64Le(&u64));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0x01020304u);
  EXPECT_EQ(u64, 0x1122334455667788ull);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BinaryIoTest, DoublesRoundTripBitExactly) {
  const std::vector<double> corners = {
      0.0,
      -0.0,
      1.0,
      -1.0,
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      0.1,  // not representable exactly: the decimal-text trap
  };
  std::string out;
  for (double v : corners) AppendDoubleLe(v, &out);
  Reader reader(out);
  for (double v : corners) {
    double got = 12345.0;
    ASSERT_TRUE(reader.ReadDoubleLe(&got));
    EXPECT_EQ(DoubleBits(got), DoubleBits(v))
        << "bit pattern changed for " << v;
  }
  // -0.0 and +0.0 compare equal but must stay distinct on the wire.
  EXPECT_NE(DoubleBits(0.0), DoubleBits(-0.0));
}

TEST(BinaryIoTest, DoubleWireFormatIsTheLittleEndianBitPattern) {
  std::string out;
  AppendDoubleLe(1.0, &out);  // bits 0x3FF0000000000000
  const std::string expected{'\x00', '\x00', '\x00', '\x00',
                             '\x00', '\x00', '\xF0', '\x3F'};
  EXPECT_EQ(out, expected);
}

TEST(BinaryIoTest, StringsAndArraysRoundTrip) {
  std::string out;
  AppendString("", &out);
  AppendString(std::string_view("nul\0byte", 8), &out);
  AppendDoubleArray({}, &out);
  AppendDoubleArray({-0.0, 3.5, -2.25}, &out);

  Reader reader(out);
  std::string s;
  ASSERT_TRUE(reader.ReadString(&s));
  EXPECT_TRUE(s.empty());
  ASSERT_TRUE(reader.ReadString(&s));
  EXPECT_EQ(s, std::string_view("nul\0byte", 8));
  std::vector<double> values{1.0};
  ASSERT_TRUE(reader.ReadDoubleArray(&values));
  EXPECT_TRUE(values.empty());
  ASSERT_TRUE(reader.ReadDoubleArray(&values));
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(DoubleBits(values[0]), DoubleBits(-0.0));
  EXPECT_EQ(values[1], 3.5);
  EXPECT_EQ(values[2], -2.25);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BinaryIoTest, ReaderRejectsShortBuffersWithoutMovingTheCursor) {
  const std::string three{'\x01', '\x02', '\x03'};
  Reader reader(three);
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  double d = 0.0;
  EXPECT_FALSE(reader.ReadU32Le(&u32));
  EXPECT_FALSE(reader.ReadU64Le(&u64));
  EXPECT_FALSE(reader.ReadDoubleLe(&d));
  EXPECT_EQ(reader.pos(), 0u);
  EXPECT_EQ(reader.remaining(), 3u);
  uint8_t u8 = 0;
  ASSERT_TRUE(reader.ReadU8(&u8));
  EXPECT_EQ(u8, 0x01);
  EXPECT_EQ(reader.pos(), 1u);
}

TEST(BinaryIoTest, CorruptedLengthPrefixesRejectBeforeAllocating) {
  // A string claiming 2^60 bytes in a 12-byte buffer: must fail cleanly
  // with the cursor reset, not attempt the allocation.
  std::string out;
  AppendU64Le(1ull << 60, &out);
  out.append("abcd");
  {
    Reader reader(out);
    std::string s = "sentinel";
    EXPECT_FALSE(reader.ReadString(&s));
    EXPECT_EQ(s, "sentinel");
    EXPECT_EQ(reader.pos(), 0u);
  }
  {
    // Same hostile count as a double-array prefix.
    Reader reader(out);
    std::vector<double> values{7.0};
    EXPECT_FALSE(reader.ReadDoubleArray(&values));
    EXPECT_EQ(values.size(), 1u);
    EXPECT_EQ(reader.pos(), 0u);
  }
}

TEST(BinaryIoTest, ReadBytesAndSkipBoundsCheck) {
  const std::string buf = "abcdef";
  Reader reader(buf);
  std::string_view view;
  EXPECT_FALSE(reader.ReadBytes(7, &view));
  ASSERT_TRUE(reader.ReadBytes(3, &view));
  EXPECT_EQ(view, "abc");
  EXPECT_FALSE(reader.Skip(4));
  ASSERT_TRUE(reader.Skip(3));
  EXPECT_TRUE(reader.AtEnd());
}

}  // namespace
}  // namespace bin
}  // namespace moche
