#include "util/status.h"

#include <gtest/gtest.h>

namespace moche {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::AlreadyPasses("x").IsAlreadyPasses());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_EQ(Status::NotFound("missing").message(), "missing");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad alpha").ToString(),
            "InvalidArgument: bad alpha");
  EXPECT_EQ(Status::Internal("").ToString(), "Internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyPasses),
               "AlreadyPasses");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "gone");
}

TEST(ResultTest, OkStatusIsNormalizedToInternal) {
  Result<int> r{Status::OK()};
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, ValueOr) {
  Result<int> ok(7);
  Result<int> err(Status::Internal("boom"));
  EXPECT_EQ(ok.value_or(9), 7);
  EXPECT_EQ(err.value_or(9), 9);
}

TEST(ResultTest, ArrowOperator) {
  struct Pair {
    int a;
    int b;
  };
  Result<Pair> r(Pair{1, 2});
  EXPECT_EQ(r->a, 1);
  EXPECT_EQ(r->b, 2);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  MOCHE_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_TRUE(UsesReturnIfError(-1).IsInvalidArgument());
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> UsesAssignOrReturn(int x) {
  MOCHE_ASSIGN_OR_RETURN(const int half, HalveEven(x));
  return half + 1;
}

TEST(StatusMacroTest, AssignOrReturnBindsOrPropagates) {
  Result<int> ok = UsesAssignOrReturn(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  EXPECT_TRUE(UsesAssignOrReturn(3).status().IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace moche
