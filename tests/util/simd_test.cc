// Scalar-vs-SIMD parity suite for util/simd.h: every vector kernel table
// available in this build must be bit-identical to the scalar reference on
// randomized, tie-heavy, and adversarial (denormal, ±0.0, monotone)
// inputs — same return indices, same result bits, same untouched-output
// conventions. The suite compares tables directly through KernelsFor, so
// it exercises the vector paths even when MOCHE_SIMD=scalar pins dispatch
// (and degenerates to scalar-vs-scalar on hardware without any vector
// table, which keeps it green everywhere). The kernels are also required
// to be allocation-free: they run under the counting operator new.

#include "util/simd.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "testing_alloc.h"
#include "util/rng.h"

namespace moche {
namespace simd {
namespace {

using testing_alloc::AllocationProbe;

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kDenormal = std::numeric_limits<double>::denorm_min();

/// The vector tables this build can run, paired with the scalar reference.
std::vector<Isa> VectorIsas() {
  std::vector<Isa> isas;
  if (IsaAvailable(Isa::kAvx2)) isas.push_back(Isa::kAvx2);
  if (IsaAvailable(Isa::kNeon)) isas.push_back(Isa::kNeon);
  // Always compare at least one pair so the suite never silently tests
  // nothing (scalar-vs-scalar on plain hardware).
  if (isas.empty()) isas.push_back(Isa::kScalar);
  return isas;
}

/// One synthetic bounds-coefficient instance in the engine's SoA layout.
struct BoundsArrays {
  std::vector<double> ct_d;     // non-decreasing counts in [0, m]
  std::vector<double> cr_d;     // non-decreasing counts in [0, n]
  std::vector<double> rigid_d;  // ct_d - m
  double n = 0.0;
  double m = 0.0;
};

enum class Shape { kRandom, kTieHeavy, kMonotone };

BoundsArrays MakeBounds(size_t q, Shape shape, Rng* rng) {
  BoundsArrays b;
  b.ct_d.resize(q + 1);
  b.cr_d.resize(q + 1);
  b.rigid_d.resize(q + 1);
  int64_t ct = 0;
  int64_t cr = 0;
  for (size_t i = 1; i <= q; ++i) {
    switch (shape) {
      case Shape::kRandom:
        ct += rng->Integer(0, 3);
        cr += rng->Integer(0, 5);
        break;
      case Shape::kTieHeavy:
        // Long flat runs: most gammas equal, so every prefix-max/argmax
        // tie-break path fires.
        ct += rng->Bernoulli(0.1) ? rng->Integer(1, 2) : 0;
        cr += rng->Bernoulli(0.1) ? 1 : 0;
        break;
      case Shape::kMonotone:
        ct += 1;
        cr += 2;
        break;
    }
    b.ct_d[i] = static_cast<double>(ct);
    b.cr_d[i] = static_cast<double>(cr);
  }
  b.m = static_cast<double>(ct > 0 ? ct : 1);
  b.n = static_cast<double>(cr > 0 ? cr : 1);
  for (size_t i = 0; i <= q; ++i) b.rigid_d[i] = b.ct_d[i] - b.m;
  return b;
}

/// Compares one theorem-scan call between `table` and the scalar reference
/// for a grid of begin offsets and running-max seeds (offsets exercise the
/// unaligned heads and scalar tails of the vector paths).
void CheckTheoremScans(const Kernels& table, const BoundsArrays& b,
                       double scale, double omega, double hh_d,
                       const std::string& label) {
  const Kernels& scalar = KernelsFor(Isa::kScalar);
  const size_t end = b.ct_d.size();
  const double seeds[] = {-kInf, 0.0, 1.5};
  for (size_t begin = 1; begin < end && begin <= 9; ++begin) {
    for (double seed : seeds) {
      double run_s = seed;
      double run_v = seed;
      const size_t stop_s =
          scalar.theorem1_filter_scan(b.ct_d.data(), b.cr_d.data(),
                                      b.rigid_d.data(), begin, end, scale,
                                      omega, hh_d, &run_s);
      const size_t stop_v =
          table.theorem1_filter_scan(b.ct_d.data(), b.cr_d.data(),
                                     b.rigid_d.data(), begin, end, scale,
                                     omega, hh_d, &run_v);
      ASSERT_EQ(stop_s, stop_v) << label << " t1 begin=" << begin;
      ASSERT_EQ(Bits(run_s), Bits(run_v)) << label << " t1 begin=" << begin;

      run_s = seed;
      run_v = seed;
      const size_t stop2_s =
          scalar.theorem2_filter_scan(b.ct_d.data(), b.cr_d.data(), begin,
                                      end, scale, omega, hh_d, &run_s);
      const size_t stop2_v =
          table.theorem2_filter_scan(b.ct_d.data(), b.cr_d.data(), begin,
                                     end, scale, omega, hh_d, &run_v);
      ASSERT_EQ(stop2_s, stop2_v) << label << " t2 begin=" << begin;
      ASSERT_EQ(Bits(run_s), Bits(run_v)) << label << " t2 begin=" << begin;
    }
  }
}

TEST(SimdDispatch, ActiveIsaIsStableAndNamed) {
  const std::string name = ActiveIsaName();
  EXPECT_TRUE(name == "scalar" || name == "avx2" || name == "neon") << name;
  EXPECT_EQ(ActiveIsa(), ActiveIsa());  // latched once
  EXPECT_EQ(name, IsaName(ActiveIsa()));
  EXPECT_TRUE(IsaAvailable(Isa::kScalar));
}

TEST(SimdDispatch, UnavailableIsaFallsBackToScalarTable) {
  const Kernels& scalar = KernelsFor(Isa::kScalar);
  for (Isa isa : {Isa::kAvx2, Isa::kNeon}) {
    if (IsaAvailable(isa)) continue;
    const Kernels& table = KernelsFor(isa);
    EXPECT_EQ(table.theorem1_filter_scan, scalar.theorem1_filter_scan);
    EXPECT_EQ(table.ecdf_sweep_cum, scalar.ecdf_sweep_cum);
  }
  // At most one vector ISA exists per build, never both.
  EXPECT_FALSE(IsaAvailable(Isa::kAvx2) && IsaAvailable(Isa::kNeon));
}

TEST(SimdDispatch, EveryTablePointerIsNonNull) {
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kNeon}) {
    const Kernels& k = KernelsFor(isa);
    EXPECT_NE(k.theorem1_filter_scan, nullptr);
    EXPECT_NE(k.theorem2_filter_scan, nullptr);
    EXPECT_NE(k.ecdf_sweep_cum, nullptr);
    EXPECT_NE(k.ecdf_sweep_counts, nullptr);
    EXPECT_NE(k.all_finite, nullptr);
  }
}

TEST(SimdParity, TheoremScansOnFuzzedInstances) {
  Rng rng(20260808);
  for (Isa isa : VectorIsas()) {
    const Kernels& table = KernelsFor(isa);
    for (Shape shape :
         {Shape::kRandom, Shape::kTieHeavy, Shape::kMonotone}) {
      for (size_t q : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 16u, 33u, 100u, 257u}) {
        for (int rep = 0; rep < 8; ++rep) {
          const BoundsArrays b = MakeBounds(q, shape, &rng);
          const double h = std::floor(rng.Uniform(0.0, b.m));
          const double scale = (b.m - h) / b.n;
          const double omega = rng.Uniform(0.0, 4.0);
          CheckTheoremScans(table, b, scale, omega, h,
                            std::string(IsaName(isa)) + " q=" +
                                std::to_string(q));
        }
      }
    }
  }
}

TEST(SimdParity, TheoremScansOnAdversarialValues) {
  // Denormals, ±0.0, and exact boundary hits (omega = 0, b - a == 1).
  BoundsArrays b;
  b.ct_d = {0.0, kDenormal, -0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0};
  b.cr_d = {0.0, 0.0, kDenormal, -0.0, 0.0, 2.0, 2.0, 4.0, 6.0};
  b.n = 6.0;
  b.m = 3.0;
  b.rigid_d.resize(b.ct_d.size());
  for (size_t i = 0; i < b.ct_d.size(); ++i) {
    b.rigid_d[i] = b.ct_d[i] - b.m;
  }
  for (Isa isa : VectorIsas()) {
    for (double omega : {0.0, 0.5, 1.0}) {
      for (double h : {0.0, 1.0, 2.0}) {
        CheckTheoremScans(KernelsFor(isa), b, (b.m - h) / b.n, omega, h,
                          IsaName(isa));
      }
    }
  }
}

TEST(SimdParity, EcdfSweepCumOnFuzzedInstances) {
  Rng rng(777);
  const Kernels& scalar = KernelsFor(Isa::kScalar);
  for (Isa isa : VectorIsas()) {
    const Kernels& table = KernelsFor(isa);
    for (size_t q : {0u, 1u, 2u, 3u, 4u, 5u, 8u, 9u, 64u, 129u}) {
      for (int rep = 0; rep < 16; ++rep) {
        std::vector<double> cum_r(q);
        std::vector<double> cum_t(q);
        double r = 0.0;
        double t = 0.0;
        for (size_t i = 0; i < q; ++i) {
          // Tie-heavy by construction: increments are often zero.
          r += static_cast<double>(rng.Integer(0, 2));
          t += static_cast<double>(rng.Integer(0, 2));
          cum_r[i] = r;
          cum_t[i] = t;
        }
        const double n = r > 0.0 ? r : 1.0;
        const double m = t > 0.0 ? t : 1.0;
        size_t bi_s = SIZE_MAX;
        size_t bi_v = SIZE_MAX;
        const double best_s =
            scalar.ecdf_sweep_cum(cum_r.data(), cum_t.data(), q, n, m, &bi_s);
        const double best_v =
            table.ecdf_sweep_cum(cum_r.data(), cum_t.data(), q, n, m, &bi_v);
        ASSERT_EQ(Bits(best_s), Bits(best_v)) << IsaName(isa) << " q=" << q;
        ASSERT_EQ(bi_s, bi_v) << IsaName(isa) << " q=" << q;
      }
    }
  }
}

TEST(SimdParity, EcdfSweepLeavesBestIndexUntouchedOnZeroMax) {
  // cum_r == cum_t with n == m makes every d exactly 0.0: the contract
  // says best_index must not be written (callers keep their front-value
  // sentinel). ±0.0 differences must also yield d == 0.0, not a spurious
  // update.
  const std::vector<double> cum_r = {0.0, -0.0, 1.0, 2.0, 2.0, 3.0};
  const std::vector<double> cum_t = {-0.0, 0.0, 1.0, 2.0, 2.0, 3.0};
  for (Isa isa : VectorIsas()) {
    size_t bi = 123456;
    const double best = KernelsFor(isa).ecdf_sweep_cum(
        cum_r.data(), cum_t.data(), cum_r.size(), 3.0, 3.0, &bi);
    EXPECT_EQ(best, 0.0) << IsaName(isa);
    EXPECT_FALSE(std::signbit(best)) << IsaName(isa);
    EXPECT_EQ(bi, 123456u) << IsaName(isa);
  }
}

TEST(SimdParity, EcdfSweepCountsOnFuzzedInstances) {
  Rng rng(424242);
  const Kernels& scalar = KernelsFor(Isa::kScalar);
  for (Isa isa : VectorIsas()) {
    const Kernels& table = KernelsFor(isa);
    for (size_t q : {0u, 1u, 2u, 3u, 4u, 5u, 8u, 31u, 64u, 200u}) {
      for (int rep = 0; rep < 16; ++rep) {
        std::vector<double> cum_r_d(q);
        std::vector<int64_t> count_t(q);
        std::vector<int64_t> removed(q);
        double r = 0.0;
        int64_t m = 0;
        int64_t rem = 0;
        for (size_t i = 0; i < q; ++i) {
          r += static_cast<double>(rng.Integer(0, 3));
          cum_r_d[i] = r;
          count_t[i] = rng.Integer(0, 4);
          removed[i] = rng.Integer(0, count_t[i]);
          m += count_t[i];
          rem += removed[i];
        }
        const double n = r > 0.0 ? r : 1.0;
        const double m_rem = static_cast<double>(m - rem > 0 ? m - rem : 1);
        size_t bi_s = SIZE_MAX;
        size_t bi_v = SIZE_MAX;
        const double best_s = scalar.ecdf_sweep_counts(
            cum_r_d.data(), count_t.data(), removed.data(), q, n, m_rem,
            &bi_s);
        const double best_v = table.ecdf_sweep_counts(
            cum_r_d.data(), count_t.data(), removed.data(), q, n, m_rem,
            &bi_v);
        ASSERT_EQ(Bits(best_s), Bits(best_v)) << IsaName(isa) << " q=" << q;
        ASSERT_EQ(bi_s, bi_v) << IsaName(isa) << " q=" << q;
      }
    }
  }
}

TEST(SimdParity, AllFiniteAgreesAtEveryPoisonPosition) {
  const double poisons[] = {std::numeric_limits<double>::quiet_NaN(), kInf,
                            -kInf};
  for (Isa isa : VectorIsas()) {
    const Kernels& table = KernelsFor(isa);
    for (size_t len : {0u, 1u, 2u, 3u, 4u, 5u, 8u, 9u, 17u}) {
      std::vector<double> v(len, 1.0);
      if (len > 0) {
        v[0] = -0.0;
        v[len / 2] = kDenormal;
      }
      EXPECT_TRUE(table.all_finite(v.data(), v.size()))
          << IsaName(isa) << " len=" << len;
      for (size_t pos = 0; pos < len; ++pos) {
        for (double poison : poisons) {
          std::vector<double> bad = v;
          bad[pos] = poison;
          EXPECT_FALSE(table.all_finite(bad.data(), bad.size()))
              << IsaName(isa) << " len=" << len << " pos=" << pos;
        }
      }
    }
  }
}

TEST(SimdAllocation, KernelsAllocateNothing) {
  // The kernels are leaf functions over caller-owned arrays; pin that with
  // the counting operator new (the zero-allocation explain pipeline sits
  // on top of them).
  Rng rng(5);
  const BoundsArrays b = MakeBounds(64, Shape::kRandom, &rng);
  std::vector<int64_t> count_t(64, 2);
  std::vector<int64_t> removed(64, 1);
  const std::vector<Isa> isas = VectorIsas();
  size_t sink_index = 0;
  double sink = 0.0;
  bool finite = true;
  AllocationProbe probe;
  for (Isa isa : isas) {
    const Kernels& table = KernelsFor(isa);
    double run = -kInf;
    sink_index += table.theorem1_filter_scan(b.ct_d.data(), b.cr_d.data(),
                                             b.rigid_d.data(), 1,
                                             b.ct_d.size(), 0.5, 1.0, 3.0,
                                             &run);
    run = -kInf;
    sink_index += table.theorem2_filter_scan(b.ct_d.data(), b.cr_d.data(), 1,
                                             b.ct_d.size(), 0.5, 1.0, 3.0,
                                             &run);
    sink += table.ecdf_sweep_cum(b.ct_d.data(), b.cr_d.data(), b.ct_d.size(),
                                 b.n, b.m, &sink_index);
    sink += table.ecdf_sweep_counts(b.ct_d.data(), count_t.data(),
                                    removed.data(), count_t.size(), b.n,
                                    64.0, &sink_index);
    finite = finite && table.all_finite(b.ct_d.data(), b.ct_d.size());
  }
  const size_t delta = probe.Delta();
  EXPECT_EQ(delta, 0u);
  EXPECT_TRUE(finite);
  EXPECT_GE(sink + static_cast<double>(sink_index), 0.0);  // keep it live
}

}  // namespace
}  // namespace simd
}  // namespace moche
