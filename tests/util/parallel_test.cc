#include "util/parallel.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace moche {
namespace {

TEST(ResolveThreadCountTest, ZeroMeansHardware) {
  EXPECT_EQ(ResolveThreadCount(0), HardwareConcurrency());
  EXPECT_GE(HardwareConcurrency(), 1u);
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(7), 7u);
}

TEST(ParallelForTest, EveryIndexRunsExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const size_t count = 1000;
    std::vector<std::atomic<int>> hits(count);
    for (auto& h : hits) h.store(0);
    ParallelFor(threads, count,
                [&hits](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                   << " threads";
    }
  }
}

TEST(ParallelForTest, ZeroAndOneTaskCounts) {
  int calls = 0;
  ParallelFor(4, 0, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(4, 1, [&calls](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, SlotWritesMergeInInputOrder) {
  // The deterministic task->index mapping: each task writes its own slot,
  // so the merged output is identical to the sequential loop.
  const size_t count = 257;
  std::vector<size_t> out(count, 0);
  ParallelFor(8, count, [&out](size_t i) { out[i] = i * i; });
  for (size_t i = 0; i < count; ++i) {
    ASSERT_EQ(out[i], i * i);
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(100, [&total](size_t i) {
      total.fetch_add(static_cast<int64_t>(i));
    });
  }
  EXPECT_EQ(total.load(), 50 * (99 * 100 / 2));
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<size_t> order;
  // With one thread the loop runs on the caller in index order.
  pool.ParallelFor(10, [&order](size_t i) { order.push_back(i); });
  std::vector<size_t> expected(10);
  std::iota(expected.begin(), expected.end(), size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, MoreThreadsThanTasks) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(3, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForWorkerTest, WorkerIndicesAreInRangeAndExclusive) {
  ThreadPool pool(4);
  const size_t count = 512;
  // Per-worker counters written WITHOUT synchronization: the contract says
  // two tasks with the same worker index never run concurrently, so plain
  // increments must survive (TSan covers the claim in the sanitizer job).
  std::vector<size_t> per_worker(pool.num_threads(), 0);
  std::vector<std::atomic<int>> hits(count);
  for (auto& h : hits) h.store(0);
  pool.ParallelForWorker(count, [&](size_t worker, size_t i) {
    ASSERT_LT(worker, pool.num_threads());
    ++per_worker[worker];
    hits[i].fetch_add(1);
  });
  size_t total = 0;
  for (size_t c : per_worker) total += c;
  EXPECT_EQ(total, count);
  for (size_t i = 0; i < count; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParallelForWorkerTest, InlinePathsUseWorkerZero) {
  // Single-thread pool: everything runs on the caller as worker 0.
  ThreadPool pool(1);
  std::vector<size_t> workers;
  pool.ParallelForWorker(5, [&workers](size_t worker, size_t i) {
    (void)i;
    workers.push_back(worker);
  });
  EXPECT_EQ(workers, std::vector<size_t>(5, 0));

  // count == 1 short-circuits inline even on a multi-thread pool.
  ThreadPool wide(4);
  size_t seen_worker = 99;
  wide.ParallelForWorker(1, [&](size_t worker, size_t i) {
    (void)i;
    seen_worker = worker;
  });
  EXPECT_EQ(seen_worker, 0u);
}

TEST(ParallelForWorkerTest, FreeFunctionMatchesWorkerCountHelper) {
  const size_t count = 40;
  EXPECT_EQ(ParallelWorkerCount(1, count), 1u);
  EXPECT_EQ(ParallelWorkerCount(4, count), 4u);
  EXPECT_EQ(ParallelWorkerCount(64, count), count);
  std::vector<std::atomic<size_t>> worker_of(count);
  ParallelForWorker(4, count, [&](size_t worker, size_t i) {
    worker_of[i].store(worker);
  });
  for (size_t i = 0; i < count; ++i) {
    ASSERT_LT(worker_of[i].load(), ParallelWorkerCount(4, count));
  }
}

TEST(ThreadPoolTest, UnevenTaskDurationsStillCoverAllIndices) {
  ThreadPool pool(4);
  const size_t count = 64;
  std::vector<std::atomic<int>> hits(count);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(count, [&hits](size_t i) {
    // Busy-work proportional to the index: stresses the work-stealing
    // counter with heavily skewed task costs.
    volatile double sink = 0.0;
    for (size_t k = 0; k < i * 1000; ++k) sink = sink + 1.0;
    hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < count; ++i) ASSERT_EQ(hits[i].load(), 1);
}

}  // namespace
}  // namespace moche
