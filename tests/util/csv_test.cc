#include "util/csv.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace moche {
namespace {

TEST(CsvWriteTest, PlainFields) {
  CsvTable t;
  t.rows = {{"a", "b"}, {"1", "2"}};
  EXPECT_EQ(WriteCsvString(t), "a,b\n1,2\n");
}

TEST(CsvWriteTest, QuotesSpecialCharacters) {
  CsvTable t;
  t.rows = {{"x,y", "he said \"hi\"", "line\nbreak"}};
  EXPECT_EQ(WriteCsvString(t), "\"x,y\",\"he said \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvParseTest, BasicRows) {
  auto r = ParseCsvString("a,b\n1,2\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(r->rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvParseTest, HandlesCrLfAndNoTrailingNewline) {
  auto r = ParseCsvString("a,b\r\nc,d");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvParseTest, QuotedFieldsRoundTrip) {
  CsvTable t;
  t.rows = {{"x,y", "\"q\"", "plain"}, {"", "a\nb", "3"}};
  auto r = ParseCsvString(WriteCsvString(t));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows, t.rows);
}

TEST(CsvParseTest, UnterminatedQuoteIsError) {
  auto r = ParseCsvString("\"abc");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(CsvParseTest, EmptyStringIsEmptyTable) {
  auto r = ParseCsvString("");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST(CsvFileTest, WriteThenReadRoundTrip) {
  CsvTable t;
  t.rows = {{"h1", "h2"}, {"1.5", "x"}};
  const std::string path = testing::TempDir() + "/moche_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(path, t).ok());
  auto r = ReadCsvFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows, t.rows);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsNotFound) {
  auto r = ReadCsvFile("/nonexistent/dir/f.csv");
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(NumericColumnTest, ExtractsWithHeaderSkip) {
  auto t = ParseCsvString("time,value\n0,1.5\n1,2.5\n");
  ASSERT_TRUE(t.ok());
  auto col = NumericColumn(*t, 1, /*skip_rows=*/1);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(*col, (std::vector<double>{1.5, 2.5}));
}

TEST(NumericColumnTest, NonNumericCellIsError) {
  auto t = ParseCsvString("1,a\n");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(NumericColumn(*t, 1).status().IsInvalidArgument());
}

TEST(NumericColumnTest, MissingColumnIsOutOfRange) {
  auto t = ParseCsvString("1\n");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(NumericColumn(*t, 3).status().IsOutOfRange());
}

}  // namespace
}  // namespace moche
