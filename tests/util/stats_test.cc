#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace moche {
namespace {

TEST(MeanTest, BasicAndEmpty) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({-5}), -5.0);
}

TEST(VarianceTest, SampleVariance) {
  // var of {2,4,4,4,5,5,7,9} with n-1 denominator = 32/7
  EXPECT_NEAR(Variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(Variance({42}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
}

TEST(StdDevTest, SquareRootOfVariance) {
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(QuantileTest, InterpolatesLikeNumpy) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 1.75);
}

TEST(QuantileTest, UnsortedInputAndClamping) {
  const std::vector<double> v{9, 1, 5};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, -0.5), 1.0);  // clamped to p=0
  EXPECT_DOUBLE_EQ(Quantile(v, 1.5), 9.0);   // clamped to p=1
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(MedianTest, OddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
}

TEST(SummarizeTest, FiveNumbersPlusMean) {
  const FiveNumberSummary s = Summarize({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(SummarizeTest, EmptyIsAllZero) {
  const FiveNumberSummary s = Summarize({});
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

// A NaN input must propagate as NaN, never reach std::sort (whose strict
// weak ordering a NaN breaks — UB, the CumulativeFrame::Build bug class).
TEST(QuantileTest, NanInputPropagatesNan) {
  EXPECT_TRUE(std::isnan(Quantile({1.0, NAN, 2.0}, 0.5)));
  EXPECT_TRUE(std::isnan(Quantile({NAN}, 0.0)));
  EXPECT_TRUE(std::isnan(Median({3.0, NAN, 1.0})));
}

TEST(QuantileTest, InfinitiesStillOrder) {
  // Infinities are fine for std::sort; only NaN is rejected.
  EXPECT_DOUBLE_EQ(Quantile({INFINITY, 1.0, -INFINITY}, 0.5), 1.0);
  // Interpolating between equal infinite neighbors must not do inf - inf.
  EXPECT_DOUBLE_EQ(Quantile({1.0, 2.0, INFINITY, INFINITY}, 0.75), INFINITY);
  EXPECT_DOUBLE_EQ(Quantile({-INFINITY, -INFINITY, 5.0}, 0.25), -INFINITY);
}

TEST(SummarizeTest, NanInputYieldsAllNanSummary) {
  const FiveNumberSummary s = Summarize({1.0, NAN, 2.0});
  EXPECT_TRUE(std::isnan(s.min));
  EXPECT_TRUE(std::isnan(s.q1));
  EXPECT_TRUE(std::isnan(s.median));
  EXPECT_TRUE(std::isnan(s.q3));
  EXPECT_TRUE(std::isnan(s.max));
  EXPECT_TRUE(std::isnan(s.mean));
}

TEST(MeanTest, NanPropagatesArithmetically) {
  EXPECT_TRUE(std::isnan(Mean({1.0, NAN})));
  EXPECT_TRUE(std::isnan(Variance({1.0, NAN, 2.0})));
  EXPECT_TRUE(std::isnan(StdDev({1.0, NAN, 2.0})));
}

TEST(ZNormalizeTest, ZeroMeanUnitVariance) {
  std::vector<double> v{1, 2, 3, 4, 5, 6};
  ZNormalize(&v);
  EXPECT_NEAR(Mean(v), 0.0, 1e-12);
  EXPECT_NEAR(StdDev(v), 1.0, 1e-12);
}

TEST(ZNormalizeTest, ConstantBecomesZeros) {
  std::vector<double> v{7, 7, 7};
  ZNormalize(&v);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.0);
}

}  // namespace
}  // namespace moche
