#include "datasets/synthetic.h"

#include <cmath>

#include <gtest/gtest.h>

namespace moche {
namespace datasets {
namespace {

TEST(KiferDriftTest, ProducesFailingInstance) {
  DriftOptions opt;
  opt.size = 2000;
  opt.contamination = 0.05;
  auto inst = MakeKiferDriftInstance(opt);
  ASSERT_TRUE(inst.ok());
  EXPECT_EQ(inst->reference.size(), 2000u);
  EXPECT_EQ(inst->test.size(), 2000u);
  auto outcome = RunInstance(*inst);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->reject);
}

TEST(KiferDriftTest, ContaminationBoundsRespected) {
  DriftOptions opt;
  opt.size = 3000;
  opt.contamination = 0.03;
  auto inst = MakeKiferDriftInstance(opt);
  ASSERT_TRUE(inst.ok());
  // values outside ~N(0,1) tails must be rare; contaminated points lie in
  // [-7, 7] but typically outside [-4, 4]
  size_t extreme = 0;
  for (double v : inst->test) {
    if (std::fabs(v) > 4.0) ++extreme;
  }
  EXPECT_LE(extreme, static_cast<size_t>(0.03 * 3000) + 5);
  EXPECT_GE(extreme, 1u);
}

TEST(KiferDriftTest, ValidatesOptions) {
  DriftOptions bad;
  bad.size = 2;
  EXPECT_FALSE(MakeKiferDriftInstance(bad).ok());
  bad.size = 100;
  bad.contamination = 1.5;
  EXPECT_FALSE(MakeKiferDriftInstance(bad).ok());
}

TEST(KiferDriftTest, DeterministicForFixedSeed) {
  DriftOptions opt;
  opt.size = 500;
  opt.contamination = 0.1;
  auto a = MakeKiferDriftInstance(opt);
  auto b = MakeKiferDriftInstance(opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->test, b->test);
  opt.seed = 2;
  auto c = MakeKiferDriftInstance(opt);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->test, c->test);
}

TEST(KiferDriftTest, ZeroContaminationUsuallyExhaustsAttempts) {
  DriftOptions opt;
  opt.size = 5000;
  opt.contamination = 0.0;
  opt.max_attempts = 3;
  auto inst = MakeKiferDriftInstance(opt);
  // same-distribution draws at alpha=0.05 pass ~95% of the time, so 3
  // attempts nearly always exhaust; accept either outcome but require the
  // failure mode to be ResourceExhausted when it happens.
  if (!inst.ok()) {
    EXPECT_TRUE(inst.status().IsResourceExhausted());
  }
}

}  // namespace
}  // namespace datasets
}  // namespace moche
