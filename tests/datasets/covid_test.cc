#include "datasets/covid.h"

#include <gtest/gtest.h>

#include "core/moche.h"

namespace moche {
namespace datasets {
namespace {

class CovidDataTest : public ::testing::Test {
 protected:
  void SetUp() override { data_ = MakeCovidData(); }
  CovidData data_;
};

TEST_F(CovidDataTest, PaperSetSizes) {
  EXPECT_EQ(data_.august_age.size(), 2175u);
  EXPECT_EQ(data_.september_age.size(), 3375u);
  EXPECT_EQ(data_.august_ha.size(), 2175u);
  EXPECT_EQ(data_.september_ha.size(), 3375u);
}

TEST_F(CovidDataTest, AgeGroupsInRange) {
  for (int a : data_.august_age) {
    ASSERT_GE(a, 1);
    ASSERT_LE(a, 10);
  }
  for (int a : data_.september_age) {
    ASSERT_GE(a, 1);
    ASSERT_LE(a, 10);
  }
}

TEST_F(CovidDataTest, FailsKsTestAtPointZeroFive) {
  const KsInstance inst = data_.MakeInstance(0.05);
  auto outcome = RunInstance(inst);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->reject);
}

TEST_F(CovidDataTest, ExplanationSizeNearPaperValue) {
  // The paper's instance yields k = 291 (8.6% of |T|). Our synthetic
  // calibration reproduces the same order: k within [150, 450], i.e. a
  // small single-digit percentage of the 3375 test points.
  Moche engine;
  const KsInstance inst = data_.MakeInstance(0.05);
  auto size = engine.FindExplanationSize(inst.reference, inst.test, 0.05);
  ASSERT_TRUE(size.ok());
  EXPECT_GE(size->k, 150u);
  EXPECT_LE(size->k, 450u);
}

TEST_F(CovidDataTest, HaPreferencePutsFhaFirst) {
  const PreferenceList pref = data_.PreferenceByHaPopulationDesc();
  ASSERT_EQ(pref.size(), data_.september_age.size());
  // count FHA cases; the first that-many entries must all be FHA
  size_t fha_count = 0;
  for (HealthAuthority ha : data_.september_ha) {
    if (ha == HealthAuthority::kFHA) ++fha_count;
  }
  ASSERT_GT(fha_count, 0u);
  for (size_t pos = 0; pos < fha_count; ++pos) {
    EXPECT_EQ(data_.september_ha[pref[pos]], HealthAuthority::kFHA);
  }
}

TEST_F(CovidDataTest, AgePreferenceIsDescending) {
  const PreferenceList pref = data_.PreferenceByAgeGroupDesc();
  for (size_t pos = 1; pos < pref.size(); ++pos) {
    EXPECT_GE(data_.september_age[pref[pos - 1]],
              data_.september_age[pref[pos]]);
  }
}

TEST_F(CovidDataTest, MocheWithHaPreferenceSelectsOnlyFha) {
  // Figure 1b: all points of I_p come from FHA, the most populous HA.
  Moche engine;
  const KsInstance inst = data_.MakeInstance(0.05);
  auto report = engine.Explain(inst, data_.PreferenceByHaPopulationDesc());
  ASSERT_TRUE(report.ok());
  const std::vector<size_t> ha_counts =
      data_.HaCounts(report->explanation.indices);
  for (size_t h = 1; h < ha_counts.size(); ++h) {
    EXPECT_EQ(ha_counts[h], 0u) << "non-FHA cases in I_p";
  }
  EXPECT_EQ(ha_counts[0], report->explanation.size());
}

TEST_F(CovidDataTest, BothPreferencesGiveSameSizeExplanations) {
  // All explanations on the same failed test share the size k (Def. 1).
  Moche engine;
  const KsInstance inst = data_.MakeInstance(0.05);
  auto ia = engine.Explain(inst, data_.PreferenceByAgeGroupDesc());
  auto ip = engine.Explain(inst, data_.PreferenceByHaPopulationDesc());
  ASSERT_TRUE(ia.ok());
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ia->k, ip->k);
  EXPECT_EQ(ia->explanation.size(), ip->explanation.size());
}

TEST_F(CovidDataTest, AgeHistogramSumsToOne) {
  const std::vector<double> hist = CovidData::AgeHistogram(data_.august_age);
  ASSERT_EQ(hist.size(), 10u);
  double sum = 0.0;
  for (double h : hist) sum += h;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(CovidDataTest, DeterministicForFixedSeed) {
  const CovidData again = MakeCovidData();
  EXPECT_EQ(again.september_age, data_.september_age);
  CovidOptions other;
  other.seed = 12345;
  const CovidData different = MakeCovidData(other);
  EXPECT_NE(different.september_age, data_.september_age);
}

TEST(HealthAuthorityTest, Names) {
  EXPECT_STREQ(HealthAuthorityName(HealthAuthority::kFHA), "FHA");
  EXPECT_STREQ(HealthAuthorityName(HealthAuthority::kVIHA), "VIHA");
}

}  // namespace
}  // namespace datasets
}  // namespace moche
