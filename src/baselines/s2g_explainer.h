// Extended-Series2Graph (S2G): like Extended-STOMP but with Series2Graph's
// graph-based subsequence anomaly scores (Section 6.1.2). The graph is
// learned on the reference window and scores the test window's
// q-subsequences; q defaults to 5% of |T| per the paper's tuning.
//
// Ownership & thread-safety: S2gExplainer owns only its options, fixed at
// construction. Explain is const — the graph is learned into stack-local
// state per call — and safe to call concurrently on one shared instance
// (see baselines/explainer.h).

#ifndef MOCHE_BASELINES_S2G_EXPLAINER_H_
#define MOCHE_BASELINES_S2G_EXPLAINER_H_

#include "baselines/explainer.h"

namespace moche {
namespace baselines {

struct S2gOptions {
  double subsequence_fraction = 0.05;
  size_t min_subsequence = 6;
  size_t num_sectors = 36;
};

class S2gExplainer : public Explainer {
 public:
  explicit S2gExplainer(S2gOptions options = {}) : options_(options) {}

  std::string name() const override { return "S2G"; }
  bool uses_preference() const override { return false; }

  Result<Explanation> Explain(const KsInstance& instance,
                              const PreferenceList& preference) const override;

 private:
  S2gOptions options_;
};

}  // namespace baselines
}  // namespace moche

#endif  // MOCHE_BASELINES_S2G_EXPLAINER_H_
