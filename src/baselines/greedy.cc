#include "baselines/greedy.h"

namespace moche {
namespace baselines {

Result<Explanation> GreedyExplainer::Explain(
    const KsInstance& instance, const PreferenceList& preference) const {
  MOCHE_RETURN_IF_ERROR(
      ValidatePreference(preference, instance.test.size()));
  return GreedyPrefixExplanation(instance, preference);
}

}  // namespace baselines
}  // namespace moche
