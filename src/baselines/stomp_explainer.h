// Extended-STOMP (STMP): score the q-subsequences of the test window with
// the STOMP matrix profile against the reference window, then greedily
// remove the points of the most anomalous subsequences until the KS test
// passes (Section 6.1.2). q defaults to 5% of |T| — the setting the paper
// selects after trying {5, 10, 20, 40}%. STMP cannot consume a preference
// list; it needs the temporal order of the windows, which KsInstance
// preserves.
//
// Ownership & thread-safety: StompExplainer owns only its options, fixed at
// construction. Explain is const with the matrix profile computed into
// stack-local state per call; safe to call concurrently on one shared
// instance (see baselines/explainer.h).

#ifndef MOCHE_BASELINES_STOMP_EXPLAINER_H_
#define MOCHE_BASELINES_STOMP_EXPLAINER_H_

#include "baselines/explainer.h"

namespace moche {
namespace baselines {

struct StompOptions {
  /// Subsequence length as a fraction of |T|.
  double subsequence_fraction = 0.05;
  /// Hard floor so tiny windows still get a meaningful profile.
  size_t min_subsequence = 4;
};

class StompExplainer : public Explainer {
 public:
  explicit StompExplainer(StompOptions options = {}) : options_(options) {}

  std::string name() const override { return "STMP"; }
  bool uses_preference() const override { return false; }

  Result<Explanation> Explain(const KsInstance& instance,
                              const PreferenceList& preference) const override;

 private:
  StompOptions options_;
};

}  // namespace baselines
}  // namespace moche

#endif  // MOCHE_BASELINES_STOMP_EXPLAINER_H_
