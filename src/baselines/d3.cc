#include "baselines/d3.h"

#include <cmath>

#include "density/empirical_pmf.h"

namespace moche {
namespace baselines {

namespace {

bool AllIntegral(const std::vector<double>& v) {
  for (double x : v) {
    if (x != std::floor(x)) return false;
  }
  return true;
}

}  // namespace

Result<Explanation> D3Explainer::Explain(
    const KsInstance& instance, const PreferenceList& preference) const {
  (void)preference;  // D3 cannot take user preferences (Section 6.1.2)

  bool use_pmf = options_.mode == D3Options::DensityMode::kPmf;
  if (options_.mode == D3Options::DensityMode::kAuto) {
    use_pmf = AllIntegral(instance.reference) && AllIntegral(instance.test);
  }

  // density ratio f_T / f_R per test point (descending = most anomalous
  // w.r.t. the reference distribution while typical for the test set)
  std::vector<double> ratio(instance.test.size());
  constexpr double kEps = 1e-9;
  if (use_pmf) {
    MOCHE_ASSIGN_OR_RETURN(const density::EmpiricalPmf f_r,
                           density::EmpiricalPmf::Fit(instance.reference));
    MOCHE_ASSIGN_OR_RETURN(const density::EmpiricalPmf f_t,
                           density::EmpiricalPmf::Fit(instance.test));
    for (size_t i = 0; i < instance.test.size(); ++i) {
      ratio[i] = f_t.Evaluate(instance.test[i]) /
                 (f_r.Evaluate(instance.test[i]) + kEps);
    }
  } else {
    MOCHE_ASSIGN_OR_RETURN(const density::Kde f_r,
                           density::Kde::Fit(instance.reference, options_.kde));
    MOCHE_ASSIGN_OR_RETURN(const density::Kde f_t,
                           density::Kde::Fit(instance.test, options_.kde));
    for (size_t i = 0; i < instance.test.size(); ++i) {
      ratio[i] = f_t.Evaluate(instance.test[i]) /
                 (f_r.Evaluate(instance.test[i]) + kEps);
    }
  }
  return GreedyPrefixExplanation(instance, PreferenceByScoreDesc(ratio));
}

}  // namespace baselines
}  // namespace moche
