#include "baselines/grace.h"

#include <algorithm>
#include <cmath>

#include "ks/ks_test.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace moche {
namespace baselines {

Result<Explanation> GraceExplainer::Explain(
    const KsInstance& instance, const PreferenceList& preference) const {
  MOCHE_RETURN_IF_ERROR(ValidatePreference(preference, instance.test.size()));
  MOCHE_RETURN_IF_ERROR(
      ks::ValidateSample(instance.reference, "reference set"));
  MOCHE_RETURN_IF_ERROR(ks::ValidateSample(instance.test, "test set"));
  MOCHE_RETURN_IF_ERROR(ks::ValidateAlpha(instance.alpha));
  const size_t m = instance.test.size();
  const double n = static_cast<double>(instance.reference.size());
  RemovalKs removal(instance.reference, instance.test, instance.alpha);
  if (removal.Passes()) {
    return Status::AlreadyPasses("the KS test already passes");
  }

  const size_t k = std::min(options_.top_k, m - 1);
  std::vector<size_t> candidates(preference.begin(),
                                 preference.begin() + static_cast<long>(k));

  // x in [0,1]^k; rounding to the nearest 0-1 vector, x_i < 0.5 puts the
  // i-th candidate into the removal set S.
  auto select = [&](const std::vector<double>& x) {
    std::vector<size_t> s;
    for (size_t i = 0; i < x.size(); ++i) {
      if (x[i] < 0.5) s.push_back(candidates[i]);
    }
    return s;
  };

  auto objective = [&](const std::vector<double>& x) {
    const std::vector<size_t> s = select(x);
    if (s.size() >= m) return 1e9;  // cannot empty the test set
    removal.Reset();
    for (size_t idx : s) {
      const Status st = removal.RemoveValue(instance.test[idx]);
      MOCHE_CHECK(st.ok());
    }
    const double m_rem = static_cast<double>(m - s.size());
    const double scale = std::sqrt(n * m_rem / (n + m_rem));
    return scale * removal.CurrentOutcome().statistic;
  };

  const double c_alpha = ks::internal::CriticalValueUnchecked(instance.alpha);
  optimize::ZerothOrderOptions opt = options_.optimizer;
  opt.target = c_alpha;
  opt.project_unit_box = true;

  Rng rng(options_.seed);
  // Start just above the 0.5 rounding threshold ("remove nothing", but
  // within probe reach of the boundary): g is piecewise constant in x, so
  // starting deep inside a flat region (e.g. all ones) would give zero
  // gradient estimates and no progress.
  std::vector<double> x0(k, 0.55);
  const optimize::ZerothOrderResult result =
      optimize::MinimizeRgf(objective, std::move(x0), opt, &rng);

  if (!result.reached_target) {
    return Status::ResourceExhausted(
        StrFormat("g(x)=%.4f did not drop below c_alpha=%.4f within %zu "
                  "iterations",
                  result.value, c_alpha, opt.max_iterations));
  }
  Explanation expl;
  expl.indices = select(result.x);
  return expl;
}

}  // namespace baselines
}  // namespace moche
