#include "baselines/s2g_explainer.h"

#include <algorithm>
#include <cmath>

#include "timeseries/series2graph.h"

namespace moche {
namespace baselines {

Result<Explanation> S2gExplainer::Explain(
    const KsInstance& instance, const PreferenceList& preference) const {
  (void)preference;  // shape-based detector; no user preference input
  const size_t m = instance.test.size();
  size_t sub_len = static_cast<size_t>(
      std::llround(options_.subsequence_fraction * static_cast<double>(m)));
  sub_len = std::max(sub_len, options_.min_subsequence);
  sub_len = std::min(sub_len, m);

  ts::Series2GraphOptions s2g_opt;
  s2g_opt.pattern_length = sub_len;
  s2g_opt.num_sectors = options_.num_sectors;
  MOCHE_ASSIGN_OR_RETURN(const ts::Series2Graph graph,
                         ts::Series2Graph::Fit(instance.reference, s2g_opt));
  MOCHE_ASSIGN_OR_RETURN(const std::vector<double> scores,
                         graph.AnomalyScores(instance.test));

  // Most anomalous subsequences first; list their points in temporal order.
  std::vector<size_t> sub_order(scores.size());
  for (size_t i = 0; i < sub_order.size(); ++i) sub_order[i] = i;
  // moche-lint: allow(sort-doubles): Series2Graph scores are bounded in (0, 1] for validated-finite input
  std::stable_sort(sub_order.begin(), sub_order.end(),
                   [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  std::vector<size_t> order;
  order.reserve(m);
  std::vector<bool> listed(m, false);
  for (size_t s : sub_order) {
    for (size_t t = s; t < std::min(m, s + sub_len); ++t) {
      if (!listed[t]) {
        listed[t] = true;
        order.push_back(t);
      }
    }
  }
  for (size_t t = 0; t < m; ++t) {
    if (!listed[t]) order.push_back(t);
  }
  return GreedyPrefixExplanation(instance, order);
}

}  // namespace baselines
}  // namespace moche
