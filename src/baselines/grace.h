// Extended-GRACE (GRC), after Le et al., "GRACE" (KDD 2020), extended as in
// Section 6.1.2: relax the subset choice to a 0-1 vector x over the top-K
// preference-ranked test points (x_i = 0 means "t_i removed"), and minimize
//   g(x) = sqrt( n (m - |S|) / (n + m - |S|) ) * D(R, T \ S)
// with the zeroth-order RGF optimizer (the objective is not
// differentiable). S explains the failed test as soon as g(x) < c_alpha.
// Aborts with ResourceExhausted when the iteration budget runs out.
//
// Ownership & thread-safety: GraceExplainer owns only its options, fixed at
// construction. Explain is const, re-seeds a local Rng from the options on
// every call (per-call optimizer state on the stack), and is safe to call
// concurrently on one shared instance (see baselines/explainer.h).

#ifndef MOCHE_BASELINES_GRACE_H_
#define MOCHE_BASELINES_GRACE_H_

#include <cstdint>

#include "baselines/explainer.h"
#include "optimize/zeroth_order.h"

namespace moche {
namespace baselines {

struct GraceOptions {
  /// Only the top-K preference-ranked points may be perturbed (the paper
  /// constrains GRC to the top 100 to bound its runtime).
  size_t top_k = 100;
  optimize::ZerothOrderOptions optimizer{
      .max_iterations = 300,
      .num_directions = 10,
      .smoothing = 0.3,
      .step_size = 0.25,
  };
  uint64_t seed = 7;
};

class GraceExplainer : public Explainer {
 public:
  explicit GraceExplainer(GraceOptions options = {}) : options_(options) {}

  std::string name() const override { return "GRC"; }
  bool uses_preference() const override { return true; }

  Result<Explanation> Explain(const KsInstance& instance,
                              const PreferenceList& preference) const override;

 private:
  GraceOptions options_;
};

}  // namespace baselines
}  // namespace moche

#endif  // MOCHE_BASELINES_GRACE_H_
