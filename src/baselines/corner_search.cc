#include "baselines/corner_search.h"

#include <algorithm>

#include "ks/ks_test.h"
#include "util/string_util.h"

namespace moche {
namespace baselines {

Result<Explanation> CornerSearchExplainer::Explain(
    const KsInstance& instance, const PreferenceList& preference) const {
  MOCHE_RETURN_IF_ERROR(ValidatePreference(preference, instance.test.size()));
  MOCHE_RETURN_IF_ERROR(
      ks::ValidateSample(instance.reference, "reference set"));
  MOCHE_RETURN_IF_ERROR(ks::ValidateSample(instance.test, "test set"));
  MOCHE_RETURN_IF_ERROR(ks::ValidateAlpha(instance.alpha));
  const size_t m = instance.test.size();
  RemovalKs removal(instance.reference, instance.test, instance.alpha);
  if (removal.Passes()) {
    return Status::AlreadyPasses("the KS test already passes");
  }
  Rng rng(options_.seed);

  // Candidate pool: top-K of the preference list, optionally re-ranked by
  // single-removal effect (CornerSearch's one-pixel importance scores).
  std::vector<size_t> pool(
      preference.begin(),
      preference.begin() +
          static_cast<long>(std::min(options_.top_k, preference.size())));
  if (options_.rank_by_effect) {
    const double base = removal.CurrentOutcome().statistic;
    std::vector<double> effect(pool.size());
    for (size_t c = 0; c < pool.size(); ++c) {
      MOCHE_RETURN_IF_ERROR(removal.RemoveValue(instance.test[pool[c]]));
      effect[c] = base - removal.CurrentOutcome().statistic;
      MOCHE_RETURN_IF_ERROR(removal.UnremoveValue(instance.test[pool[c]]));
    }
    std::vector<size_t> order(pool.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    // moche-lint: allow(sort-doubles): effect[] is a difference of KS statistics over validated-finite samples
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return effect[a] > effect[b];
    });
    std::vector<size_t> ranked;
    ranked.reserve(pool.size());
    for (size_t i : order) ranked.push_back(pool[i]);
    pool = std::move(ranked);
  }

  // Rank-biased sampling weights (top candidates are sampled most often),
  // following CornerSearch's preference for top-ranked coordinates.
  std::vector<double> weights(pool.size());
  for (size_t c = 0; c < pool.size(); ++c) {
    weights[c] = 1.0 / static_cast<double>(c + 1);
  }

  size_t budget = options_.max_samples;
  const size_t max_size = std::min(pool.size(), m - 1);
  for (size_t size = 1; size <= max_size; ++size) {
    const size_t tries = std::min(options_.samples_per_size, budget);
    for (size_t trial = 0; trial < tries; ++trial) {
      // Draw `size` distinct pool positions with rank bias.
      std::vector<size_t> picked;
      std::vector<bool> used(pool.size(), false);
      while (picked.size() < size) {
        const size_t c = rng.WeightedIndex(weights);
        if (used[c]) continue;
        used[c] = true;
        picked.push_back(pool[c]);
      }
      removal.Reset();
      for (size_t idx : picked) {
        MOCHE_RETURN_IF_ERROR(removal.RemoveValue(instance.test[idx]));
      }
      if (removal.Passes()) {
        Explanation expl;
        expl.indices = std::move(picked);
        return expl;
      }
    }
    budget -= tries;
    if (budget == 0) break;
  }
  return Status::ResourceExhausted(
      StrFormat("no explanation within %zu samples over the top-%zu pool",
                options_.max_samples, options_.top_k));
}

}  // namespace baselines
}  // namespace moche
