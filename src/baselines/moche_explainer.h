// Adapter exposing MOCHE (and its MOCHE_ns ablation) through the baseline
// Explainer interface so the experiment harness treats all methods
// uniformly.
//
// Ownership & thread-safety: the adapter owns its Moche engine and options,
// both immutable after construction. Explain/ExplainReusing are const and
// safe to call concurrently on one shared instance; a workspace passed to
// ExplainReusing is caller-owned scratch and must stay thread-local (see
// baselines/explainer.h and core/workspace.h).

#ifndef MOCHE_BASELINES_MOCHE_EXPLAINER_H_
#define MOCHE_BASELINES_MOCHE_EXPLAINER_H_

#include "baselines/explainer.h"
#include "core/moche.h"

namespace moche {
namespace baselines {

class MocheExplainer : public Explainer {
 public:
  explicit MocheExplainer(MocheOptions options = {}, std::string name = "M")
      : engine_(options), name_(std::move(name)) {}

  /// The paper's lower-bound ablation (Figure 5's "Mns").
  static MocheExplainer WithoutLowerBound() {
    MocheOptions opt;
    opt.use_lower_bound = false;
    return MocheExplainer(opt, "Mns");
  }

  std::string name() const override { return name_; }
  bool uses_preference() const override { return true; }

  Result<Explanation> Explain(const KsInstance& instance,
                              const PreferenceList& preference) const override {
    auto report = engine_.Explain(instance, preference);
    MOCHE_RETURN_IF_ERROR(report.status());
    return std::move(report).value().explanation;
  }

  /// MOCHE's scratch (sorted copies, cumulative frame, bounds/builder
  /// buffers) all lives in the workspace, so the batch harness's per-worker
  /// reuse eliminates the per-instance allocation churn. Reports are
  /// bit-identical to Explain (Moche::ExplainInto's contract); the returned
  /// explanation still owns its indices.
  Result<Explanation> ExplainReusing(
      const KsInstance& instance, const PreferenceList& preference,
      ExplainWorkspace* workspace) const override {
    MocheReport report;
    MOCHE_RETURN_IF_ERROR(engine_.ExplainInto(instance.reference,
                                              instance.test, instance.alpha,
                                              preference, workspace, &report));
    return std::move(report.explanation);
  }

 private:
  Moche engine_;
  std::string name_;
};

}  // namespace baselines
}  // namespace moche

#endif  // MOCHE_BASELINES_MOCHE_EXPLAINER_H_
