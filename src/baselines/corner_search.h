// Extended-CornerSearch (CS), after Croce & Hein, "Sparse and imperceivable
// adversarial attacks" (ICCV 2019), as extended in Section 6.1.2: rank test
// points by their single-removal effect on the KS statistic, then randomly
// sample subsets of increasing size from the top-K candidates (biased
// towards the top ranks) until one reverses the test. Aborts with
// ResourceExhausted when the sampling budget runs out — the behaviour the
// paper's reverse-factor experiment (Table 2) measures.
//
// Ownership & thread-safety: CornerSearchExplainer owns only its options,
// fixed at construction. Explain is const, re-seeds a local Rng from the
// options on every call (per-call state lives on the stack), and is safe to
// call concurrently on one shared instance (see baselines/explainer.h).

#ifndef MOCHE_BASELINES_CORNER_SEARCH_H_
#define MOCHE_BASELINES_CORNER_SEARCH_H_

#include <cstdint>

#include "baselines/explainer.h"
#include "util/rng.h"

namespace moche {
namespace baselines {

struct CornerSearchOptions {
  /// Candidate pool: only the top-K single-effect points are sampled
  /// (the paper constrains CS to the top 100 preference-ranked points).
  size_t top_k = 100;
  /// Total random subsets tried across all sizes (the paper's setting
  /// allows 150,000; benches shrink this, see docs/BENCHMARKS.md).
  size_t max_samples = 20000;
  /// Samples tried per subset size before moving to a larger size.
  size_t samples_per_size = 500;
  uint64_t seed = 99;
  /// When true, candidates are ranked by single-removal effect on the KS
  /// statistic; when false the given preference order is used directly.
  bool rank_by_effect = true;
};

class CornerSearchExplainer : public Explainer {
 public:
  explicit CornerSearchExplainer(CornerSearchOptions options = {})
      : options_(options) {}

  std::string name() const override { return "CS"; }
  bool uses_preference() const override { return true; }

  Result<Explanation> Explain(const KsInstance& instance,
                              const PreferenceList& preference) const override;

 private:
  CornerSearchOptions options_;
};

}  // namespace baselines
}  // namespace moche

#endif  // MOCHE_BASELINES_CORNER_SEARCH_H_
