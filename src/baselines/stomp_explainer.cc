#include "baselines/stomp_explainer.h"

#include <algorithm>
#include <cmath>

#include "timeseries/matrix_profile.h"

namespace moche {
namespace baselines {

namespace {

// Turns per-subsequence anomaly scores into a point removal order: walk
// subsequences from most to least anomalous, appending their not-yet-listed
// point indices in temporal order.
std::vector<size_t> SubsequenceScoreOrder(const std::vector<double>& scores,
                                          size_t sub_len, size_t m) {
  std::vector<size_t> sub_order(scores.size());
  for (size_t i = 0; i < sub_order.size(); ++i) sub_order[i] = i;
  // moche-lint: allow(sort-doubles): matrix-profile distances are finite-or-inf (ZNormDistance clamps), never NaN
  std::stable_sort(sub_order.begin(), sub_order.end(),
                   [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  std::vector<size_t> order;
  order.reserve(m);
  std::vector<bool> listed(m, false);
  for (size_t s : sub_order) {
    for (size_t t = s; t < std::min(m, s + sub_len); ++t) {
      if (!listed[t]) {
        listed[t] = true;
        order.push_back(t);
      }
    }
  }
  for (size_t t = 0; t < m; ++t) {  // points not covered by any subsequence
    if (!listed[t]) order.push_back(t);
  }
  return order;
}

}  // namespace

Result<Explanation> StompExplainer::Explain(
    const KsInstance& instance, const PreferenceList& preference) const {
  (void)preference;  // shape-based detector; no user preference input
  const size_t m = instance.test.size();
  size_t sub_len = static_cast<size_t>(
      std::llround(options_.subsequence_fraction * static_cast<double>(m)));
  sub_len = std::max(sub_len, options_.min_subsequence);
  sub_len = std::min(sub_len, m);
  if (sub_len < 2 || instance.reference.size() < sub_len) {
    return Status::InvalidArgument(
        "windows too short for the configured subsequence length");
  }

  MOCHE_ASSIGN_OR_RETURN(
      const ts::MatrixProfile profile,
      ts::StompAbJoin(instance.test, instance.reference, sub_len));
  const std::vector<size_t> order =
      SubsequenceScoreOrder(profile.distances, sub_len, m);
  return GreedyPrefixExplanation(instance, order);
}

}  // namespace baselines
}  // namespace moche
