// Greedy (GRD): take the preference list's top points until the failed test
// reverses (Section 6.1.2). With an outlier-score preference list this is
// "an extension of the outlier detection method to interpret failed KS
// tests".
//
// Ownership & thread-safety: GreedyExplainer owns no state at all. Explain
// is const and pure; safe to call concurrently on one shared instance (see
// baselines/explainer.h).

#ifndef MOCHE_BASELINES_GREEDY_H_
#define MOCHE_BASELINES_GREEDY_H_

#include "baselines/explainer.h"

namespace moche {
namespace baselines {

class GreedyExplainer : public Explainer {
 public:
  std::string name() const override { return "GRD"; }
  bool uses_preference() const override { return true; }

  Result<Explanation> Explain(const KsInstance& instance,
                              const PreferenceList& preference) const override;
};

}  // namespace baselines
}  // namespace moche

#endif  // MOCHE_BASELINES_GREEDY_H_
