#include "baselines/explainer.h"

#include "ks/ks_test.h"

namespace moche {
namespace baselines {

Result<Explanation> GreedyPrefixExplanation(const KsInstance& instance,
                                            const std::vector<size_t>& order) {
  MOCHE_RETURN_IF_ERROR(
      ks::ValidateSample(instance.reference, "reference set"));
  MOCHE_RETURN_IF_ERROR(ks::ValidateSample(instance.test, "test set"));
  MOCHE_RETURN_IF_ERROR(ks::ValidateAlpha(instance.alpha));
  RemovalKs removal(instance.reference, instance.test, instance.alpha);
  if (removal.Passes()) {
    return Status::AlreadyPasses("the KS test already passes");
  }
  Explanation expl;
  for (size_t idx : order) {
    if (removal.num_removed() + 1 >= instance.test.size()) break;
    MOCHE_RETURN_IF_ERROR(removal.RemoveValue(instance.test[idx]));
    expl.indices.push_back(idx);
    if (removal.Passes()) return expl;
  }
  return Status::Internal(
      "greedy prefix exhausted the test set without passing");
}

}  // namespace baselines
}  // namespace moche
