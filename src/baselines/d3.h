// Extended-D3 (Section 6.1.2), built on Subramaniam et al.'s density
// estimation: rank test points by the estimated density ratio
// f_T(t) / f_R(t) (descending) and greedily remove until the test passes.
// Continuous data uses KDE; discrete data (all values integral) uses
// empirical PMFs, exactly as the paper does for the COVID dataset.
// D3 cannot consume a preference list.
//
// Ownership & thread-safety: D3Explainer owns only its options, fixed at
// construction. Explain is const with all per-call state (density fits,
// rankings) on the stack, safe to call concurrently on one shared instance
// (see baselines/explainer.h).

#ifndef MOCHE_BASELINES_D3_H_
#define MOCHE_BASELINES_D3_H_

#include "baselines/explainer.h"
#include "density/kde.h"

namespace moche {
namespace baselines {

struct D3Options {
  enum class DensityMode { kAuto, kKde, kPmf };
  DensityMode mode = DensityMode::kAuto;
  density::KdeOptions kde;
};

class D3Explainer : public Explainer {
 public:
  explicit D3Explainer(D3Options options = {}) : options_(options) {}

  std::string name() const override { return "D3"; }
  bool uses_preference() const override { return false; }

  Result<Explanation> Explain(const KsInstance& instance,
                              const PreferenceList& preference) const override;

 private:
  D3Options options_;
};

}  // namespace baselines
}  // namespace moche

#endif  // MOCHE_BASELINES_D3_H_
