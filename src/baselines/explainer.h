// The common interface all explainers implement (MOCHE, the brute force and
// the six baselines of Section 6.1.2), plus the greedy-prefix helper most
// baselines share.
//
// Ownership & thread-safety: an Explainer owns nothing but construction-time
// configuration; the full concurrent-Explain contract every implementation
// must honor is documented on the class below.

#ifndef MOCHE_BASELINES_EXPLAINER_H_
#define MOCHE_BASELINES_EXPLAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/explanation.h"
#include "core/instance.h"
#include "core/preference.h"
#include "core/workspace.h"
#include "util/status.h"

namespace moche {
namespace baselines {

/// A method that produces a counterfactual explanation for a failed KS test.
///
/// Implementations may ignore `preference` (the paper notes D3, STMP and
/// S2G cannot take user preferences and hence cannot produce comprehensible
/// explanations). Implementations with sampling/optimization budgets return
/// ResourceExhausted when they abort, mirroring the paper's RF experiment.
///
/// Thread-safety contract: Explain is const and MUST be safe to call
/// concurrently on the same object — the parallel experiment runner
/// (harness::RunMethods) shares one instance of each method across all its
/// worker threads. Concretely, an implementation keeps all per-call state
/// on the stack; configuration members set at construction are read-only
/// afterwards. Stochastic methods (CS, GRC) re-seed a local Rng from their
/// options on every call, which also makes every call deterministic
/// regardless of scheduling. Mutable caches require their own
/// synchronization; none of the shipped explainers has one.
class Explainer {
 public:
  virtual ~Explainer() = default;

  /// Short display name used in the result tables ("M", "GRD", "CS", ...).
  virtual std::string name() const = 0;

  /// Whether the method consumes the preference list (Table: only MOCHE,
  /// GRD, CS and GRC are preference-aware).
  virtual bool uses_preference() const = 0;

  virtual Result<Explanation> Explain(
      const KsInstance& instance, const PreferenceList& preference) const = 0;

  /// As Explain, but may run inside the caller-owned workspace so a hot
  /// loop (harness::RunMethods hands each worker thread one workspace and
  /// calls this per instance) avoids per-call scratch allocation. Results
  /// MUST be identical to Explain on the same inputs; the base
  /// implementation simply ignores the workspace, and only methods with
  /// reusable scratch (MOCHE) override. The same thread-safety contract as
  /// Explain applies to the method object; the workspace itself is
  /// per-caller mutable state and must not be shared across threads.
  virtual Result<Explanation> ExplainReusing(
      const KsInstance& instance, const PreferenceList& preference,
      ExplainWorkspace* workspace) const {
    (void)workspace;
    return Explain(instance, preference);
  }
};

/// Shared helper: walk test-point indices in `order` and keep removing until
/// R and T \ I pass the KS test. Returns the removed prefix as an
/// explanation, or Internal if even removing all but one point fails.
Result<Explanation> GreedyPrefixExplanation(const KsInstance& instance,
                                            const std::vector<size_t>& order);

}  // namespace baselines
}  // namespace moche

#endif  // MOCHE_BASELINES_EXPLAINER_H_
