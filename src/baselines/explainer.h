// The common interface all explainers implement (MOCHE, the brute force and
// the six baselines of Section 6.1.2), plus the greedy-prefix helper most
// baselines share.

#ifndef MOCHE_BASELINES_EXPLAINER_H_
#define MOCHE_BASELINES_EXPLAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/explanation.h"
#include "core/instance.h"
#include "core/preference.h"
#include "util/status.h"

namespace moche {
namespace baselines {

/// A method that produces a counterfactual explanation for a failed KS test.
///
/// Implementations may ignore `preference` (the paper notes D3, STMP and
/// S2G cannot take user preferences and hence cannot produce comprehensible
/// explanations). Implementations with sampling/optimization budgets return
/// ResourceExhausted when they abort, mirroring the paper's RF experiment.
class Explainer {
 public:
  virtual ~Explainer() = default;

  /// Short display name used in the result tables ("M", "GRD", "CS", ...).
  virtual std::string name() const = 0;

  /// Whether the method consumes the preference list (Table: only MOCHE,
  /// GRD, CS and GRC are preference-aware).
  virtual bool uses_preference() const = 0;

  virtual Result<Explanation> Explain(const KsInstance& instance,
                                      const PreferenceList& preference) = 0;
};

/// Shared helper: walk test-point indices in `order` and keep removing until
/// R and T \ I pass the KS test. Returns the removed prefix as an
/// explanation, or Internal if even removing all but one point fails.
Result<Explanation> GreedyPrefixExplanation(const KsInstance& instance,
                                            const std::vector<size_t>& order);

}  // namespace baselines
}  // namespace moche

#endif  // MOCHE_BASELINES_EXPLAINER_H_
