#include "persist/snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "persist/crc32c.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace moche {
namespace persist {

SnapshotWriter::SnapshotWriter(std::string* out) : out_(out) {
  out_->append(kSnapshotMagic, kSnapshotMagicSize);
  bin::AppendU32Le(kSnapshotFormatVersion, out_);
}

std::string* SnapshotWriter::BeginSection(uint32_t id) {
  MOCHE_CHECK(!section_open_);
  section_open_ = true;
  section_id_ = id;
  payload_.clear();
  return &payload_;
}

void SnapshotWriter::EndSection() {
  MOCHE_CHECK(section_open_);
  section_open_ = false;
  // The CRC covers the framed bytes (id + length + payload), so a flipped
  // bit anywhere in the record — framing included — is detected by the
  // section it lands in.
  std::string framed;
  framed.reserve(12 + payload_.size());
  bin::AppendU32Le(section_id_, &framed);
  bin::AppendU64Le(static_cast<uint64_t>(payload_.size()), &framed);
  framed.append(payload_);
  out_->append(framed);
  bin::AppendU32Le(Crc32c(framed), out_);
}

Result<SnapshotReader> SnapshotReader::Open(std::string_view bytes,
                                            std::string what) {
  if (bytes.empty()) {
    return Status::InvalidArgument(
        StrFormat("%s: snapshot is empty (0 bytes)", what.c_str()));
  }
  if (bytes.size() < kSnapshotMagicSize + 4) {
    return Status::OutOfRange(StrFormat(
        "%s: snapshot truncated inside the header (%zu bytes)", what.c_str(),
        bytes.size()));
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, kSnapshotMagicSize) != 0) {
    return Status::InvalidArgument(
        StrFormat("%s: bad snapshot magic", what.c_str()));
  }
  SnapshotReader reader(bytes, std::move(what));
  reader.reader_.Skip(kSnapshotMagicSize);
  uint32_t version = 0;
  reader.reader_.ReadU32Le(&version);  // size checked above
  if (version > kSnapshotFormatVersion) {
    return Status::Unimplemented(StrFormat(
        "%s: snapshot format version %u is newer than this build reads "
        "(%u)",
        reader.what_.c_str(), version, kSnapshotFormatVersion));
  }
  reader.version_ = version;
  return reader;
}

Status SnapshotReader::Next(SnapshotSection* section, bool* done) {
  if (reader_.AtEnd()) {
    *done = true;
    return Status::OK();
  }
  *done = false;
  const size_t record_begin = reader_.pos();
  uint32_t id = 0;
  uint64_t length = 0;
  if (!reader_.ReadU32Le(&id) || !reader_.ReadU64Le(&length)) {
    return Status::OutOfRange(StrFormat(
        "%s: snapshot truncated inside a section frame at byte %zu",
        what_.c_str(), record_begin));
  }
  std::string_view payload;
  if (!reader_.ReadBytes(static_cast<size_t>(length), &payload)) {
    return Status::OutOfRange(StrFormat(
        "%s: snapshot truncated inside section %u (%llu payload bytes "
        "declared, %zu available)",
        what_.c_str(), id, static_cast<unsigned long long>(length),
        reader_.remaining()));
  }
  uint32_t stored_crc = 0;
  if (!reader_.ReadU32Le(&stored_crc)) {
    return Status::OutOfRange(StrFormat(
        "%s: snapshot truncated before the CRC of section %u",
        what_.c_str(), id));
  }
  // Recompute over the framed bytes exactly as the writer hashed them.
  std::string framed;
  framed.reserve(12 + payload.size());
  bin::AppendU32Le(id, &framed);
  bin::AppendU64Le(length, &framed);
  framed.append(payload);
  const uint32_t computed = Crc32c(framed);
  if (computed != stored_crc) {
    return Status::InvalidArgument(StrFormat(
        "%s: section %u CRC32C mismatch (stored %08x, computed %08x)",
        what_.c_str(), id, stored_crc, computed));
  }
  section->id = id;
  section->payload = payload;
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(StrFormat("open(%s) failed: %s", tmp.c_str(),
                                      std::strerror(errno)));
  }
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Internal(StrFormat("write(%s) failed: %s", tmp.c_str(),
                                        std::strerror(err)));
    }
    written += static_cast<size_t>(n);
  }
  // fsync before rename: the commit point is the rename, and the data must
  // be durable before the name points at it (a crash between rename and a
  // later flush could otherwise commit a hole).
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal(StrFormat("fsync(%s) failed: %s", tmp.c_str(),
                                      std::strerror(err)));
  }
  if (::close(fd) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return Status::Internal(StrFormat("close(%s) failed: %s", tmp.c_str(),
                                      std::strerror(err)));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return Status::Internal(StrFormat("rename(%s -> %s) failed: %s",
                                      tmp.c_str(), path.c_str(),
                                      std::strerror(err)));
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(
        StrFormat("cannot open %s for reading", path.c_str()));
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::Internal(StrFormat("read of %s failed", path.c_str()));
  }
  return bytes;
}

}  // namespace persist
}  // namespace moche
