// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// per-section integrity checksum of the snapshot format (docs/SNAPSHOT.md).
// Castagnoli rather than the zlib polynomial because it is the storage-
// format convention (iSCSI, ext4, LevelDB/RocksDB record framing) and
// hardware-accelerated everywhere — this software implementation is the
// portable reference; the snapshot sections it guards are small relative
// to the doubles they carry, so table lookup speed is ample.
//
// Ownership & thread-safety: pure functions over caller-owned buffers; the
// internal lookup table is immutable after static initialization. Safe
// from any thread.

#ifndef MOCHE_PERSIST_CRC32C_H_
#define MOCHE_PERSIST_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace moche {
namespace persist {

/// CRC32C of `size` bytes starting at `data`, seeded with `crc` (pass 0
/// for a fresh checksum; feed a previous result to extend incrementally —
/// Crc32c(Crc32c(0, a), b) == Crc32c(0, ab)).
uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t size);

inline uint32_t Crc32c(std::string_view bytes) {
  return ExtendCrc32c(0, bytes.data(), bytes.size());
}

}  // namespace persist
}  // namespace moche

#endif  // MOCHE_PERSIST_CRC32C_H_
