#include "persist/crc32c.h"

#include <array>

namespace moche {
namespace persist {

namespace {

// Byte-at-a-time table for the reflected Castagnoli polynomial. Built once
// at first use; the build is deterministic, so a racing double-build under
// C++11 static-local semantics is impossible (the standard guarantees a
// single initialization).
const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = [] {
    constexpr uint32_t kPolyReflected = 0x82F63B78u;
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPolyReflected : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t size) {
  const std::array<uint32_t, 256>& table = Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace persist
}  // namespace moche
