#include "persist/monitor_codec.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <optional>
#include <utility>

#include "persist/snapshot.h"
#include "sketch/sketched_reference.h"
#include "util/binary_io.h"
#include "util/mutex.h"
#include "util/simd.h"
#include "util/string_util.h"

namespace moche {
namespace persist {

namespace {

using stream::DriftEvent;
using stream::DriftMonitor;
using stream::MonitorOptions;
using stream::RearmPolicy;
using stream::ReferenceMode;
using stream::WindowPreference;

// Section ids (docs/SNAPSHOT.md). Values are part of the on-disk format:
// never renumber, only append.
constexpr uint32_t kSectionManifest = 1;
constexpr uint32_t kSectionShardHeader = 2;
constexpr uint32_t kSectionReferences = 3;
constexpr uint32_t kSectionStreams = 4;
constexpr uint32_t kSectionEvents = 5;

void AppendOutcome(const KsOutcome& o, std::string* out) {
  bin::AppendDoubleLe(o.statistic, out);
  bin::AppendDoubleLe(o.threshold, out);
  bin::AppendU8(o.reject ? 1 : 0, out);
  bin::AppendDoubleLe(o.location, out);
  bin::AppendU64Le(static_cast<uint64_t>(o.n), out);
  bin::AppendU64Le(static_cast<uint64_t>(o.m), out);
}

bool ReadOutcome(bin::Reader* r, KsOutcome* o) {
  uint8_t reject = 0;
  uint64_t n = 0;
  uint64_t m = 0;
  if (!r->ReadDoubleLe(&o->statistic) || !r->ReadDoubleLe(&o->threshold) ||
      !r->ReadU8(&reject) || !r->ReadDoubleLe(&o->location) ||
      !r->ReadU64Le(&n) || !r->ReadU64Le(&m)) {
    return false;
  }
  o->reject = reject != 0;
  o->n = static_cast<size_t>(n);
  o->m = static_cast<size_t>(m);
  return true;
}

void AppendStatus(const Status& status, std::string* out) {
  bin::AppendU32Le(static_cast<uint32_t>(status.code()), out);
  bin::AppendString(status.message(), out);
}

Status ReadStatus(bin::Reader* r, const std::string& what, Status* out) {
  uint32_t code = 0;
  std::string message;
  if (!r->ReadU32Le(&code) || !r->ReadString(&message)) {
    return Status::OutOfRange(
        StrFormat("%s: event log truncated inside a status", what.c_str()));
  }
  if (code > static_cast<uint32_t>(StatusCode::kUnimplemented)) {
    return Status::InvalidArgument(
        StrFormat("%s: %u is not a status code", what.c_str(), code));
  }
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

// The deterministic MocheReport fields. The wall-time seconds_* members
// are measurements, not state: they are dropped here and restore as 0.0,
// which is what makes re-serializing a restored monitor a byte fixed
// point.
void AppendReport(const MocheReport& report, std::string* out) {
  bin::AppendU64Le(static_cast<uint64_t>(report.k), out);
  bin::AppendU64Le(static_cast<uint64_t>(report.k_hat), out);
  bin::AppendU64Le(static_cast<uint64_t>(report.explanation.indices.size()),
                   out);
  for (size_t idx : report.explanation.indices) {
    bin::AppendU64Le(static_cast<uint64_t>(idx), out);
  }
  AppendOutcome(report.original, out);
  AppendOutcome(report.after, out);
  bin::AppendU64Le(static_cast<uint64_t>(report.size_stats.k), out);
  bin::AppendU64Le(static_cast<uint64_t>(report.size_stats.k_hat), out);
  bin::AppendU64Le(static_cast<uint64_t>(report.size_stats.theorem1_checks),
                   out);
  bin::AppendU64Le(static_cast<uint64_t>(report.size_stats.theorem2_checks),
                   out);
  bin::AppendU64Le(static_cast<uint64_t>(report.size_stats.probe_refutations),
                   out);
  bin::AppendU64Le(static_cast<uint64_t>(report.size_stats.full_scans), out);
  bin::AppendU64Le(static_cast<uint64_t>(report.build_stats.candidates_checked),
                   out);
  bin::AppendU64Le(static_cast<uint64_t>(report.build_stats.recursion_steps),
                   out);
}

Status ReadReport(bin::Reader* r, const std::string& what,
                  MocheReport* report) {
  const Status truncated = Status::OutOfRange(
      StrFormat("%s: event log truncated inside a report", what.c_str()));
  uint64_t k = 0;
  uint64_t k_hat = 0;
  uint64_t index_count = 0;
  if (!r->ReadU64Le(&k) || !r->ReadU64Le(&k_hat) ||
      !r->ReadU64Le(&index_count)) {
    return truncated;
  }
  // Each index takes 8 payload bytes; a count the remaining bytes cannot
  // hold is a corrupted length field, rejected before any allocation.
  if (index_count > r->remaining() / 8) return truncated;
  report->k = static_cast<size_t>(k);
  report->k_hat = static_cast<size_t>(k_hat);
  report->explanation.indices.clear();
  report->explanation.indices.reserve(static_cast<size_t>(index_count));
  for (uint64_t i = 0; i < index_count; ++i) {
    uint64_t idx = 0;
    r->ReadU64Le(&idx);  // cannot fail: count * 8 <= remaining was checked
    report->explanation.indices.push_back(static_cast<size_t>(idx));
  }
  if (!ReadOutcome(r, &report->original) || !ReadOutcome(r, &report->after)) {
    return truncated;
  }
  uint64_t words[8] = {};
  for (uint64_t& w : words) {
    if (!r->ReadU64Le(&w)) return truncated;
  }
  report->size_stats.k = static_cast<size_t>(words[0]);
  report->size_stats.k_hat = static_cast<size_t>(words[1]);
  report->size_stats.theorem1_checks = static_cast<size_t>(words[2]);
  report->size_stats.theorem2_checks = static_cast<size_t>(words[3]);
  report->size_stats.probe_refutations = static_cast<size_t>(words[4]);
  report->size_stats.full_scans = static_cast<size_t>(words[5]);
  report->build_stats.candidates_checked = static_cast<size_t>(words[6]);
  report->build_stats.recursion_steps = static_cast<size_t>(words[7]);
  report->seconds_size_search = 0.0;
  report->seconds_construction = 0.0;
  return Status::OK();
}

struct Manifest {
  uint32_t num_shards = 0;
  uint64_t num_streams = 0;
  uint64_t num_events = 0;
  uint64_t explanations_total = 0;
  MonitorOptions options;  // num_threads is a restore-time choice, not state
};

void AppendManifest(const Manifest& manifest, std::string* out) {
  bin::AppendU32Le(manifest.num_shards, out);
  bin::AppendU64Le(manifest.num_streams, out);
  bin::AppendU64Le(manifest.num_events, out);
  bin::AppendU64Le(manifest.explanations_total, out);
  const MonitorOptions& o = manifest.options;
  bin::AppendDoubleLe(o.alpha, out);
  bin::AppendU8(static_cast<uint8_t>(o.rearm), out);
  bin::AppendU64Le(static_cast<uint64_t>(o.explain_every_k), out);
  bin::AppendU8(static_cast<uint8_t>(o.preference), out);
  bin::AppendU8(o.moche.use_lower_bound ? 1 : 0, out);
  bin::AppendU8(o.moche.incremental_partial_check ? 1 : 0, out);
  bin::AppendU8(o.moche.validate_result ? 1 : 0, out);
  // Format v2 fields (docs/SNAPSHOT.md); version-1 manifests end above.
  bin::AppendU8(static_cast<uint8_t>(o.reference_mode), out);
  bin::AppendU64Le(static_cast<uint64_t>(o.sketch_k), out);
  bin::AppendU64Le(static_cast<uint64_t>(o.cache_capacity), out);
}

Status ParseManifest(std::string_view bytes, Manifest* out) {
  const std::string what = kManifestFileName;
  MOCHE_ASSIGN_OR_RETURN(SnapshotReader reader,
                         SnapshotReader::Open(bytes, what));
  SnapshotSection section;
  bool done = false;
  MOCHE_RETURN_IF_ERROR(reader.Next(&section, &done));
  if (done || section.id != kSectionManifest) {
    return Status::InvalidArgument(
        StrFormat("%s: missing manifest section", what.c_str()));
  }
  bin::Reader r(section.payload);
  uint8_t rearm = 0;
  uint64_t explain_every_k = 0;
  uint8_t preference = 0;
  uint8_t bools[3] = {};
  if (!r.ReadU32Le(&out->num_shards) || !r.ReadU64Le(&out->num_streams) ||
      !r.ReadU64Le(&out->num_events) ||
      !r.ReadU64Le(&out->explanations_total) ||
      !r.ReadDoubleLe(&out->options.alpha) || !r.ReadU8(&rearm) ||
      !r.ReadU64Le(&explain_every_k) || !r.ReadU8(&preference) ||
      !r.ReadU8(&bools[0]) || !r.ReadU8(&bools[1]) || !r.ReadU8(&bools[2])) {
    return Status::OutOfRange(
        StrFormat("%s: manifest section truncated", what.c_str()));
  }
  if (reader.version() >= 2) {
    uint8_t mode = 0;
    uint64_t sketch_k = 0;
    uint64_t cache_capacity = 0;
    if (!r.ReadU8(&mode) || !r.ReadU64Le(&sketch_k) ||
        !r.ReadU64Le(&cache_capacity)) {
      return Status::OutOfRange(
          StrFormat("%s: manifest section truncated", what.c_str()));
    }
    if (mode > static_cast<uint8_t>(ReferenceMode::kSketched)) {
      return Status::InvalidArgument(
          StrFormat("%s: %u is not a reference mode", what.c_str(), mode));
    }
    out->options.reference_mode = static_cast<ReferenceMode>(mode);
    out->options.sketch_k = static_cast<size_t>(sketch_k);
    out->options.cache_capacity = static_cast<size_t>(cache_capacity);
  }
  // A version-1 manifest simply ends here; the defaults (kExact) stand.
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        StrFormat("%s: manifest section has trailing bytes", what.c_str()));
  }
  if (out->num_shards == 0) {
    return Status::InvalidArgument(
        StrFormat("%s: checkpoint claims 0 shards", what.c_str()));
  }
  if (rearm > static_cast<uint8_t>(RearmPolicy::kEveryKPushes)) {
    return Status::InvalidArgument(
        StrFormat("%s: %u is not a re-arm policy", what.c_str(), rearm));
  }
  if (preference > static_cast<uint8_t>(WindowPreference::kNewestFirst)) {
    return Status::InvalidArgument(
        StrFormat("%s: %u is not a window preference", what.c_str(),
                  preference));
  }
  out->options.rearm = static_cast<RearmPolicy>(rearm);
  out->options.explain_every_k = static_cast<size_t>(explain_every_k);
  out->options.preference = static_cast<WindowPreference>(preference);
  out->options.moche.use_lower_bound = bools[0] != 0;
  out->options.moche.incremental_partial_check = bools[1] != 0;
  out->options.moche.validate_result = bools[2] != 0;
  MOCHE_RETURN_IF_ERROR(reader.Next(&section, &done));
  if (!done) {
    return Status::InvalidArgument(
        StrFormat("%s: unexpected section after the manifest", what.c_str()));
  }
  return Status::OK();
}

// A stream parsed out of a shard, waiting for its global slot.
struct RestoredStream {
  std::string name;
  std::optional<StreamingKs> detector;  // engaged exactly in kExact mode
  std::shared_ptr<const PreparedReference> prepared;
  std::shared_ptr<const sketch::SketchedReference> sketched;  // kSketched
  std::vector<double> ring;  // kSketched window contents, oldest first
  uint64_t window = 0;       // kSketched ring capacity
  uint64_t ticks = 0;
  bool in_excursion = false;
  uint64_t pushes_since_explained = 0;
  uint64_t drift_ticks = 0;
  uint64_t triage_certified_pass = 0;
  uint64_t triage_certified_fail = 0;
  uint64_t triage_fallbacks = 0;
};

// One interned reference of a shard's reference table.
struct RestoredReference {
  std::vector<double> original;
  std::shared_ptr<const PreparedReference> prepared;
  std::shared_ptr<const sketch::SketchedReference> sketched;  // kSketched
};

Status ExpectSection(SnapshotReader* reader, uint32_t id, const char* name,
                     SnapshotSection* section) {
  bool done = false;
  MOCHE_RETURN_IF_ERROR(reader->Next(section, &done));
  if (done || section->id != id) {
    return Status::InvalidArgument(StrFormat("%s: missing %s section",
                                             reader->what().c_str(), name));
  }
  return Status::OK();
}

Status ParseShard(const std::string& bytes, uint32_t shard_index,
                  const Manifest& manifest, double monitor_alpha,
                  stream::PreparedReferenceCache* cache,
                  std::vector<std::unique_ptr<RestoredStream>>* stream_slots,
                  std::vector<DriftEvent>* events,
                  std::vector<unsigned char>* event_seen) {
  const std::string what = ShardFileName(shard_index);
  MOCHE_ASSIGN_OR_RETURN(SnapshotReader reader,
                         SnapshotReader::Open(bytes, what));
  SnapshotSection section;

  MOCHE_RETURN_IF_ERROR(
      ExpectSection(&reader, kSectionShardHeader, "shard header", &section));
  {
    bin::Reader r(section.payload);
    uint32_t index = 0;
    uint32_t num_shards = 0;
    if (!r.ReadU32Le(&index) || !r.ReadU32Le(&num_shards) || !r.AtEnd()) {
      return Status::OutOfRange(
          StrFormat("%s: shard header truncated", what.c_str()));
    }
    if (index != shard_index || num_shards != manifest.num_shards) {
      return Status::InvalidArgument(StrFormat(
          "%s: shard header claims shard %u of %u, expected %u of %u",
          what.c_str(), index, num_shards, shard_index, manifest.num_shards));
    }
  }

  MOCHE_RETURN_IF_ERROR(
      ExpectSection(&reader, kSectionReferences, "reference table", &section));
  std::vector<RestoredReference> refs;
  {
    bin::Reader r(section.payload);
    uint64_t count = 0;
    if (!r.ReadU64Le(&count)) {
      return Status::OutOfRange(
          StrFormat("%s: reference table truncated", what.c_str()));
    }
    for (uint64_t i = 0; i < count; ++i) {
      RestoredReference ref;
      double alpha = 0.0;
      if (!r.ReadDoubleArray(&ref.original) || !r.ReadDoubleLe(&alpha)) {
        return Status::OutOfRange(StrFormat(
            "%s: reference table truncated in entry %llu", what.c_str(),
            static_cast<unsigned long long>(i)));
      }
      if (alpha != monitor_alpha) {
        return Status::InvalidArgument(StrFormat(
            "%s: reference %llu alpha does not match the monitor's",
            what.c_str(), static_cast<unsigned long long>(i)));
      }
      MOCHE_ASSIGN_OR_RETURN(PreparedReference prepared,
                             PreparedReference::DeserializeFrom(&r));
      MOCHE_ASSIGN_OR_RETURN(
          ref.prepared,
          cache->InternRestored(ref.original, alpha, std::move(prepared)));
      if (reader.version() >= 2 &&
          manifest.options.reference_mode == ReferenceMode::kSketched) {
        MOCHE_ASSIGN_OR_RETURN(sketch::SketchedReference sketched,
                               sketch::SketchedReference::DeserializeFrom(&r));
        if (sketched.sketch_capacity() != manifest.options.sketch_k) {
          return Status::InvalidArgument(StrFormat(
              "%s: reference %llu sketch capacity %zu does not match the "
              "manifest's sketch_k %zu",
              what.c_str(), static_cast<unsigned long long>(i),
              sketched.sketch_capacity(), manifest.options.sketch_k));
        }
        MOCHE_ASSIGN_OR_RETURN(
            ref.sketched,
            cache->InternRestoredSketched(ref.original, alpha,
                                          std::move(sketched)));
      }
      refs.push_back(std::move(ref));
    }
    if (!r.AtEnd()) {
      return Status::InvalidArgument(StrFormat(
          "%s: reference table has trailing bytes", what.c_str()));
    }
  }

  MOCHE_RETURN_IF_ERROR(
      ExpectSection(&reader, kSectionStreams, "stream table", &section));
  {
    bin::Reader r(section.payload);
    uint64_t count = 0;
    if (!r.ReadU64Le(&count)) {
      return Status::OutOfRange(
          StrFormat("%s: stream table truncated", what.c_str()));
    }
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t index = 0;
      std::string name;
      uint64_t ref_index = 0;
      uint64_t ticks = 0;
      uint8_t in_excursion = 0;
      uint64_t pushes = 0;
      uint64_t drift_ticks = 0;
      if (!r.ReadU64Le(&index) || !r.ReadString(&name) ||
          !r.ReadU64Le(&ref_index) || !r.ReadU64Le(&ticks) ||
          !r.ReadU8(&in_excursion) || !r.ReadU64Le(&pushes) ||
          !r.ReadU64Le(&drift_ticks)) {
        return Status::OutOfRange(StrFormat(
            "%s: stream table truncated in entry %llu", what.c_str(),
            static_cast<unsigned long long>(i)));
      }
      if (index >= manifest.num_streams) {
        return Status::InvalidArgument(StrFormat(
            "%s: stream index %llu out of range (checkpoint has %llu)",
            what.c_str(), static_cast<unsigned long long>(index),
            static_cast<unsigned long long>(manifest.num_streams)));
      }
      if ((*stream_slots)[static_cast<size_t>(index)] != nullptr) {
        return Status::InvalidArgument(StrFormat(
            "%s: duplicate stream index %llu", what.c_str(),
            static_cast<unsigned long long>(index)));
      }
      if (ref_index >= refs.size()) {
        return Status::InvalidArgument(StrFormat(
            "%s: stream %llu points at reference %llu of %zu", what.c_str(),
            static_cast<unsigned long long>(index),
            static_cast<unsigned long long>(ref_index), refs.size()));
      }
      const RestoredReference& ref = refs[static_cast<size_t>(ref_index)];
      auto restored = std::make_unique<RestoredStream>();
      restored->name = std::move(name);
      restored->prepared = ref.prepared;
      restored->ticks = ticks;
      restored->in_excursion = in_excursion != 0;
      restored->pushes_since_explained = pushes;
      restored->drift_ticks = drift_ticks;
      if (reader.version() >= 2) {
        if (!r.ReadU64Le(&restored->triage_certified_pass) ||
            !r.ReadU64Le(&restored->triage_certified_fail) ||
            !r.ReadU64Le(&restored->triage_fallbacks)) {
          return Status::OutOfRange(StrFormat(
              "%s: stream table truncated in entry %llu", what.c_str(),
              static_cast<unsigned long long>(i)));
        }
      }
      if (manifest.options.reference_mode == ReferenceMode::kSketched) {
        // A v1 *shard* carries no summaries; pairing one with a v2
        // kSketched manifest is a cross-file splice, not a valid restore.
        if (ref.sketched == nullptr) {
          return Status::InvalidArgument(StrFormat(
              "%s: version-%u shard has no sketch summaries for a sketched "
              "manifest",
              what.c_str(), reader.version()));
        }
        if (!r.ReadU64Le(&restored->window) ||
            !r.ReadDoubleArray(&restored->ring)) {
          return Status::OutOfRange(StrFormat(
              "%s: stream table truncated in entry %llu", what.c_str(),
              static_cast<unsigned long long>(i)));
        }
        if (restored->window == 0 ||
            restored->ring.size() > restored->window) {
          return Status::InvalidArgument(StrFormat(
              "%s: stream %llu window ring holds %zu of capacity %llu",
              what.c_str(), static_cast<unsigned long long>(index),
              restored->ring.size(),
              static_cast<unsigned long long>(restored->window)));
        }
        if (!simd::ActiveKernels().all_finite(restored->ring.data(),
                                              restored->ring.size())) {
          return Status::InvalidArgument(StrFormat(
              "%s: stream %llu window ring has non-finite values",
              what.c_str(), static_cast<unsigned long long>(index)));
        }
        restored->sketched = ref.sketched;
      } else {
        MOCHE_ASSIGN_OR_RETURN(
            StreamingKs detector,
            StreamingKs::DeserializeState(ref.original, &r));
        restored->detector.emplace(std::move(detector));
      }
      (*stream_slots)[static_cast<size_t>(index)] = std::move(restored);
    }
    if (!r.AtEnd()) {
      return Status::InvalidArgument(
          StrFormat("%s: stream table has trailing bytes", what.c_str()));
    }
  }

  MOCHE_RETURN_IF_ERROR(
      ExpectSection(&reader, kSectionEvents, "event log", &section));
  {
    bin::Reader r(section.payload);
    uint64_t count = 0;
    if (!r.ReadU64Le(&count)) {
      return Status::OutOfRange(
          StrFormat("%s: event log truncated", what.c_str()));
    }
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t position = 0;
      uint64_t stream_index = 0;
      DriftEvent event;
      uint64_t tick = 0;
      if (!r.ReadU64Le(&position) || !r.ReadU64Le(&stream_index) ||
          !r.ReadU64Le(&tick) || !ReadOutcome(&r, &event.outcome)) {
        return Status::OutOfRange(StrFormat(
            "%s: event log truncated in entry %llu", what.c_str(),
            static_cast<unsigned long long>(i)));
      }
      if (position >= manifest.num_events ||
          (*event_seen)[static_cast<size_t>(position)]) {
        return Status::InvalidArgument(StrFormat(
            "%s: bad event log position %llu", what.c_str(),
            static_cast<unsigned long long>(position)));
      }
      if (stream_index >= manifest.num_streams) {
        return Status::InvalidArgument(StrFormat(
            "%s: event names stream %llu of %llu", what.c_str(),
            static_cast<unsigned long long>(stream_index),
            static_cast<unsigned long long>(manifest.num_streams)));
      }
      event.stream = static_cast<size_t>(stream_index);
      event.tick = tick;
      MOCHE_RETURN_IF_ERROR(ReadStatus(&r, what, &event.explain_status));
      MOCHE_RETURN_IF_ERROR(ReadReport(&r, what, &event.report));
      (*event_seen)[static_cast<size_t>(position)] = 1;
      (*events)[static_cast<size_t>(position)] = std::move(event);
    }
    if (!r.AtEnd()) {
      return Status::InvalidArgument(
          StrFormat("%s: event log has trailing bytes", what.c_str()));
    }
  }

  bool done = false;
  MOCHE_RETURN_IF_ERROR(reader.Next(&section, &done));
  if (!done) {
    return Status::InvalidArgument(StrFormat(
        "%s: unexpected section %u after the event log", what.c_str(),
        section.id));
  }
  return Status::OK();
}

}  // namespace

std::string ShardFileName(uint32_t shard_index) {
  return StrFormat("shard-%02u.snap", shard_index);
}

Result<CheckpointBlobs> MonitorCodec::Serialize(
    const DriftMonitor& monitor, const CheckpointOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("checkpoint needs num_shards >= 1");
  }
  // Hold the monitor's state mutex across the whole pass: a concurrent
  // PushBatch waits, so the blobs capture one consistent state.
  MutexLock lock(monitor.state_mutex_.get());

  const size_t num_streams = monitor.streams_.size();
  std::vector<std::vector<double>> originals(num_streams);
  std::vector<double> alphas(num_streams, 0.0);
  std::vector<uint32_t> shard_of(num_streams, 0);
  for (size_t i = 0; i < num_streams; ++i) {
    if (!monitor.cache_->FindOriginal(monitor.streams_[i].prepared.get(),
                                      &originals[i], &alphas[i])) {
      return Status::Internal(StrFormat(
          "stream %zu's prepared reference is not in the intern cache", i));
    }
    shard_of[i] = static_cast<uint32_t>(
        stream::ReferenceFingerprint(originals[i], alphas[i]) %
        options.num_shards);
  }

  CheckpointBlobs blobs;
  blobs.shards.resize(options.num_shards);
  for (uint32_t s = 0; s < options.num_shards; ++s) {
    SnapshotWriter writer(&blobs.shards[s]);

    std::string* payload = writer.BeginSection(kSectionShardHeader);
    bin::AppendU32Le(s, payload);
    bin::AppendU32Le(options.num_shards, payload);
    writer.EndSection();

    // This shard's members and its reference table in first-use order —
    // both derived from the stream indices, so the bytes are deterministic
    // (an unordered_map walk here would break the fixed point).
    std::vector<size_t> members;
    std::vector<size_t> ref_exemplar;          // stream that first used ref
    std::vector<size_t> ref_of(num_streams, 0);  // member -> ref index
    for (size_t i = 0; i < num_streams; ++i) {
      if (shard_of[i] != s) continue;
      members.push_back(i);
      const PreparedReference* prepared = monitor.streams_[i].prepared.get();
      size_t r = 0;
      while (r < ref_exemplar.size() &&
             monitor.streams_[ref_exemplar[r]].prepared.get() != prepared) {
        ++r;
      }
      if (r == ref_exemplar.size()) ref_exemplar.push_back(i);
      ref_of[i] = r;
    }

    const bool sketched_mode =
        monitor.options_.reference_mode == ReferenceMode::kSketched;

    payload = writer.BeginSection(kSectionReferences);
    bin::AppendU64Le(static_cast<uint64_t>(ref_exemplar.size()), payload);
    for (size_t exemplar : ref_exemplar) {
      bin::AppendDoubleArray(originals[exemplar], payload);
      bin::AppendDoubleLe(alphas[exemplar], payload);
      monitor.streams_[exemplar].prepared->SerializeTo(payload);
      if (sketched_mode) {
        monitor.streams_[exemplar].sketched->SerializeTo(payload);
      }
    }
    writer.EndSection();

    payload = writer.BeginSection(kSectionStreams);
    bin::AppendU64Le(static_cast<uint64_t>(members.size()), payload);
    std::vector<double> window_scratch;
    for (size_t i : members) {
      const auto& st = monitor.streams_[i];
      bin::AppendU64Le(static_cast<uint64_t>(i), payload);
      bin::AppendString(st.name, payload);
      bin::AppendU64Le(static_cast<uint64_t>(ref_of[i]), payload);
      bin::AppendU64Le(st.ticks, payload);
      bin::AppendU8(st.in_excursion ? 1 : 0, payload);
      bin::AppendU64Le(st.pushes_since_explained, payload);
      bin::AppendU64Le(st.drift_ticks, payload);
      bin::AppendU64Le(st.triage_certified_pass, payload);
      bin::AppendU64Le(st.triage_certified_fail, payload);
      bin::AppendU64Le(st.triage_fallbacks, payload);
      if (sketched_mode) {
        // Oldest-first window contents: the restore rebuilds the ring with
        // head 0, which re-serializes to exactly these bytes (fixed point).
        st.WindowContentsInto(&window_scratch);
        bin::AppendU64Le(static_cast<uint64_t>(st.window), payload);
        bin::AppendDoubleArray(window_scratch, payload);
      } else {
        st.detector->SerializeStateTo(payload);
      }
    }
    writer.EndSection();

    // Events follow their stream's shard; each records its global log
    // position, so the restored log is rebuilt in the original order no
    // matter how the positions interleave across shards.
    payload = writer.BeginSection(kSectionEvents);
    uint64_t event_count = 0;
    for (const DriftEvent& event : monitor.events_) {
      if (shard_of[event.stream] == s) ++event_count;
    }
    bin::AppendU64Le(event_count, payload);
    for (size_t pos = 0; pos < monitor.events_.size(); ++pos) {
      const DriftEvent& event = monitor.events_[pos];
      if (shard_of[event.stream] != s) continue;
      bin::AppendU64Le(static_cast<uint64_t>(pos), payload);
      bin::AppendU64Le(static_cast<uint64_t>(event.stream), payload);
      bin::AppendU64Le(event.tick, payload);
      AppendOutcome(event.outcome, payload);
      AppendStatus(event.explain_status, payload);
      AppendReport(event.report, payload);
    }
    writer.EndSection();
  }

  Manifest manifest;
  manifest.num_shards = options.num_shards;
  manifest.num_streams = static_cast<uint64_t>(num_streams);
  manifest.num_events = static_cast<uint64_t>(monitor.events_.size());
  manifest.explanations_total = monitor.explanations_total_;
  manifest.options = monitor.options_;
  SnapshotWriter writer(&blobs.manifest);
  AppendManifest(manifest, writer.BeginSection(kSectionManifest));
  writer.EndSection();
  return blobs;
}

Result<DriftMonitor> MonitorCodec::Deserialize(const CheckpointBlobs& blobs,
                                               const RestoreOptions& options) {
  Manifest manifest;
  MOCHE_RETURN_IF_ERROR(ParseManifest(blobs.manifest, &manifest));
  if (blobs.shards.size() != manifest.num_shards) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint has %zu shard blobs but the manifest claims %u",
        blobs.shards.size(), manifest.num_shards));
  }
  // The manifest's counts size the slot tables below; cap them by what the
  // shard bytes could possibly encode (>= 8 bytes per stream or event), so
  // a corrupted-but-CRC-clean count cannot OOM.
  size_t total_shard_bytes = 0;
  for (const std::string& shard : blobs.shards) {
    total_shard_bytes += shard.size();
  }
  if (manifest.num_streams > total_shard_bytes / 8 ||
      manifest.num_events > total_shard_bytes / 8) {
    return Status::InvalidArgument(StrFormat(
        "manifest claims %llu streams / %llu events, more than %zu shard "
        "bytes can hold",
        static_cast<unsigned long long>(manifest.num_streams),
        static_cast<unsigned long long>(manifest.num_events),
        total_shard_bytes));
  }

  MonitorOptions monitor_options = manifest.options;
  monitor_options.num_threads = options.num_threads;
  MOCHE_ASSIGN_OR_RETURN(DriftMonitor monitor,
                         DriftMonitor::Create(monitor_options));

  std::vector<std::unique_ptr<RestoredStream>> stream_slots(
      static_cast<size_t>(manifest.num_streams));
  std::vector<DriftEvent> events(static_cast<size_t>(manifest.num_events));
  std::vector<unsigned char> event_seen(
      static_cast<size_t>(manifest.num_events), 0);
  for (uint32_t s = 0; s < manifest.num_shards; ++s) {
    MOCHE_RETURN_IF_ERROR(ParseShard(blobs.shards[s], s, manifest,
                                     monitor_options.alpha,
                                     monitor.cache_.get(), &stream_slots,
                                     &events, &event_seen));
  }
  for (size_t i = 0; i < stream_slots.size(); ++i) {
    if (stream_slots[i] == nullptr) {
      return Status::InvalidArgument(
          StrFormat("stream %zu is missing from every shard", i));
    }
  }
  for (size_t pos = 0; pos < event_seen.size(); ++pos) {
    if (!event_seen[pos]) {
      return Status::InvalidArgument(
          StrFormat("event %zu is missing from every shard", pos));
    }
  }

  monitor.streams_.reserve(stream_slots.size());
  for (std::unique_ptr<RestoredStream>& slot : stream_slots) {
    DriftMonitor::Stream st;
    st.name = std::move(slot->name);
    st.detector = std::move(slot->detector);
    st.prepared = std::move(slot->prepared);
    st.sketched = std::move(slot->sketched);
    st.window = static_cast<size_t>(slot->window);
    if (st.window != 0) {
      // Rebuild the ring at head 0 (oldest first). reserve() restores the
      // full-capacity invariant AddStream establishes, so a not-yet-full
      // ring keeps filling without reallocating.
      st.ring = std::move(slot->ring);
      st.ring.reserve(st.window);
      st.ring_head = 0;
    }
    st.ticks = slot->ticks;
    st.in_excursion = slot->in_excursion;
    st.pushes_since_explained = slot->pushes_since_explained;
    st.drift_ticks = slot->drift_ticks;
    st.triage_certified_pass = slot->triage_certified_pass;
    st.triage_certified_fail = slot->triage_certified_fail;
    st.triage_fallbacks = slot->triage_fallbacks;
    monitor.streams_.push_back(std::move(st));
  }
  monitor.events_ = std::move(events);
  monitor.explanations_total_ = manifest.explanations_total;
  return monitor;
}

Status CheckpointMonitor(const DriftMonitor& monitor, const std::string& dir,
                         const CheckpointOptions& options) {
  MOCHE_ASSIGN_OR_RETURN(CheckpointBlobs blobs,
                         MonitorCodec::Serialize(monitor, options));
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal(StrFormat("mkdir(%s) failed: %s", dir.c_str(),
                                      std::strerror(errno)));
  }
  // Shards first, manifest last: the manifest is the commit point, so a
  // crash between writes leaves a checkpoint that is either fully old or
  // fully new (each individual file is already atomic via rename).
  for (uint32_t s = 0; s < options.num_shards; ++s) {
    MOCHE_RETURN_IF_ERROR(
        AtomicWriteFile(dir + "/" + ShardFileName(s), blobs.shards[s]));
  }
  return AtomicWriteFile(dir + "/" + kManifestFileName, blobs.manifest);
}

Result<DriftMonitor> RestoreMonitor(const std::string& dir,
                                    const RestoreOptions& options) {
  CheckpointBlobs blobs;
  MOCHE_ASSIGN_OR_RETURN(blobs.manifest,
                         ReadFileToString(dir + "/" + kManifestFileName));
  Manifest manifest;
  MOCHE_RETURN_IF_ERROR(ParseManifest(blobs.manifest, &manifest));
  blobs.shards.resize(manifest.num_shards);
  for (uint32_t s = 0; s < manifest.num_shards; ++s) {
    MOCHE_ASSIGN_OR_RETURN(blobs.shards[s],
                           ReadFileToString(dir + "/" + ShardFileName(s)));
  }
  return MonitorCodec::Deserialize(blobs, options);
}

std::string FormatEventLog(const std::vector<DriftEvent>& events) {
  std::string out;
  for (size_t i = 0; i < events.size(); ++i) {
    const DriftEvent& e = events[i];
    out += StrFormat("event=%zu stream=%zu tick=%llu statistic=", i, e.stream,
                     static_cast<unsigned long long>(e.tick));
    AppendG17(e.outcome.statistic, &out);
    out += " threshold=";
    AppendG17(e.outcome.threshold, &out);
    out += StrFormat(" status=%s",
                     StatusCodeToString(e.explain_status.code()));
    if (e.explain_status.ok()) {
      out += StrFormat(" k=%zu k_hat=%zu indices=", e.report.k,
                       e.report.k_hat);
      for (size_t j = 0; j < e.report.explanation.indices.size(); ++j) {
        if (j > 0) out += ',';
        out += StrFormat("%zu", e.report.explanation.indices[j]);
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace persist
}  // namespace moche
