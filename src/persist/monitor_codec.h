// Checkpoint/restore for stream::DriftMonitor: the snapshot subsystem's
// top layer (docs/SNAPSHOT.md).
//
// A checkpoint is a manifest plus `num_shards` shard files. Each stream is
// assigned to shard ReferenceFingerprint(reference, alpha) % num_shards —
// a pure function of the stream's reference, so the assignment is stable
// across checkpoints, platforms, and restarts, and all streams sharing a
// reference land in one shard (the shard stores that reference once).
// Every file is a sectioned, CRC-checksummed snapshot (persist/snapshot.h)
// committed via AtomicWriteFile; shards are written before the manifest,
// so a crash mid-checkpoint leaves either the previous complete
// checkpoint or the new one, never a torn mixture.
//
// Restore rebuilds a monitor that is observably identical to the one that
// was checkpointed: the same streams (indices, names, tick counts, re-arm
// state, detector windows — treaps are rebuilt deterministically from the
// serialized window rings), the same interned references, and the same
// event log in the same order. Feeding the restored monitor the remaining
// observations produces an event log bit-identical (SameEventLogs, and
// byte-identical under FormatEventLog) to a monitor that never stopped —
// the crash-recovery test gate. Wall-time fields (MocheReport::seconds_*)
// are NOT serialized and restore as 0.0: they are nondeterministic
// measurements, and dropping them is what makes
// serialize -> restore -> serialize a byte fixed point (the snapshot_fuzz
// oracle).
//
// Ownership & thread-safety: the free functions and MonitorCodec are
// stateless; every call owns its scratch. CheckpointMonitor takes the
// monitor's internal state mutex while it reads, so it may run
// concurrently with the driver thread's PushBatch (it observes either the
// pre-batch or post-batch state, never a torn one). RestoreMonitor builds
// a fresh monitor owned by the caller.

#ifndef MOCHE_PERSIST_MONITOR_CODEC_H_
#define MOCHE_PERSIST_MONITOR_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stream/drift_monitor.h"
#include "util/status.h"

namespace moche {
namespace persist {

/// File names inside a checkpoint directory.
inline constexpr char kManifestFileName[] = "manifest.snap";
/// "shard-00.snap", "shard-01.snap", ...
std::string ShardFileName(uint32_t shard_index);

struct CheckpointOptions {
  /// Number of shard files (>= 1). More shards bound the size of each file
  /// and let a future incremental writer skip unchanged shards; streams
  /// sharing a reference always share a shard.
  uint32_t num_shards = 4;
};

struct RestoreOptions {
  /// MonitorOptions::num_threads for the restored monitor. Deliberately a
  /// restore-time choice, not snapshot state: the event log is identical
  /// at any thread count, so a snapshot from an 8-core box restores on a
  /// 1-core one unchanged.
  size_t num_threads = 1;
};

/// A whole checkpoint in memory: what CheckpointMonitor writes to disk and
/// RestoreMonitor reads back. The in-memory form is the fuzzing surface —
/// round-tripping needs no filesystem.
struct CheckpointBlobs {
  std::string manifest;
  std::vector<std::string> shards;  ///< shards[i] is shard i's bytes
};

/// The (de)serializer behind the free functions. A class (not free
/// functions) only so DriftMonitor can befriend it: persistence reads the
/// monitor's private stream state without the monitor learning the file
/// format.
class MonitorCodec {
 public:
  /// Serializes the monitor's full restorable state. Takes the monitor's
  /// state mutex for the duration (safe concurrently with PushBatch).
  /// InvalidArgument when options.num_shards == 0.
  static Result<CheckpointBlobs> Serialize(const stream::DriftMonitor& monitor,
                                           const CheckpointOptions& options);

  /// Rebuilds a monitor from checkpoint bytes. Every field is re-validated
  /// on the way in (section framing and CRCs by SnapshotReader, value
  /// domains here), so corrupted or hand-spliced bytes fail with a Status
  /// — never UB, never a partially restored monitor.
  static Result<stream::DriftMonitor> Deserialize(
      const CheckpointBlobs& blobs, const RestoreOptions& options);
};

/// Serializes `monitor` into `dir` (created if absent): shard files first,
/// manifest last, each through the atomic write-fsync-rename commit.
Status CheckpointMonitor(const stream::DriftMonitor& monitor,
                         const std::string& dir,
                         const CheckpointOptions& options = {});

/// Restores the checkpoint in `dir`. NotFound when no manifest exists.
Result<stream::DriftMonitor> RestoreMonitor(const std::string& dir,
                                            const RestoreOptions& options = {});

/// Renders an event log's deterministic fields (stream, tick, statistics
/// via FormatG17, status, explanation indices) as one line per event.
/// Equal logs format identically on every platform; wall times are
/// excluded. The crash-recovery test diffs these dumps byte-for-byte.
std::string FormatEventLog(const std::vector<stream::DriftEvent>& events);

}  // namespace persist
}  // namespace moche

#endif  // MOCHE_PERSIST_MONITOR_CODEC_H_
