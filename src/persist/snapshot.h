// The versioned, checksummed container format of every snapshot file
// (docs/SNAPSHOT.md has the byte-level layout table).
//
// A snapshot file is:
//
//   magic "MOCHSNAP" (8 bytes)
//   format version   (u32 LE)
//   section*         (id u32 LE | payload length u64 LE | payload |
//                     CRC32C u32 LE over id+length+payload)
//
// All integers are fixed-width little-endian and all doubles inside
// payloads are bit-exact IEEE-754 byte copies (util/binary_io.h), so the
// same state serializes to the same bytes on every platform and
// serialize -> deserialize -> serialize is a byte fixed point (the
// snapshot_fuzz oracle). Readers reject — with a Status, never UB — the
// corruption matrix: empty input, wrong magic, a format version newer
// than this build, truncated framing, and any section whose CRC32C does
// not match (each error message names what failed, so a truncated file, a
// flipped bit, and a future version are distinguishable to operators and
// tests alike).
//
// Writing to disk goes through AtomicWriteFile: the bytes land in
// "<path>.tmp", are fsync'd, and are renamed onto the final path — a
// crash (kill -9 included) leaves either the complete previous file or
// the complete new one, never a torn mixture. Readers ignore "*.tmp"
// leftovers by construction (they only open the committed names).
//
// Ownership & thread-safety: a SnapshotWriter borrows the caller's output
// string and is single-consumer mutable state, as is a SnapshotReader
// over its borrowed input buffer — one (de)serialization pass owns one of
// each; no shared state. The file helpers are pure calls into the OS.

#ifndef MOCHE_PERSIST_SNAPSHOT_H_
#define MOCHE_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/binary_io.h"
#include "util/status.h"

namespace moche {
namespace persist {

/// First 8 bytes of every snapshot file.
inline constexpr char kSnapshotMagic[] = "MOCHSNAP";  // 8 chars + NUL
inline constexpr size_t kSnapshotMagicSize = 8;

/// The format version this build writes and the newest it can read.
/// Bump on any layout change; readers refuse newer versions with
/// Unimplemented (forward compatibility is out of scope — an operator
/// restores with the build that wrote the snapshot, or newer).
///
/// History:
///   1  initial layout (manifest, shard header, references, streams,
///      events).
///   2  sketched reference mode: the manifest gains reference_mode /
///      sketch_k / cache_capacity, stream records gain the triage
///      counters plus a mode-dependent window payload, and sketched
///      reference-table entries append the KLL summary (docs/SKETCH.md).
///      Version-1 snapshots still restore (as kExact monitors).
inline constexpr uint32_t kSnapshotFormatVersion = 2;

/// Appends the magic + format version, then frames caller-built section
/// payloads. Typical use:
///
///   SnapshotWriter writer(&bytes);
///   std::string* payload = writer.BeginSection(kSectionStreams);
///   bin::AppendU64Le(..., payload);
///   writer.EndSection();
class SnapshotWriter {
 public:
  /// Appends the file header to `*out` immediately.
  explicit SnapshotWriter(std::string* out);

  /// Starts a section; append the payload bytes to the returned string,
  /// then call EndSection. Only one section may be open at a time.
  std::string* BeginSection(uint32_t id);

  /// Frames the open section (id, length, payload, CRC32C) onto the
  /// output.
  void EndSection();

 private:
  std::string* out_;
  std::string payload_;
  uint32_t section_id_ = 0;
  bool section_open_ = false;
};

/// One decoded section: the id plus a view into the snapshot buffer (valid
/// while the buffer outlives it).
struct SnapshotSection {
  uint32_t id = 0;
  std::string_view payload;
};

/// Validates the header on Open, then yields CRC-verified sections in file
/// order.
class SnapshotReader {
 public:
  /// Checks magic and version. `what` names the input in error messages
  /// (e.g. "shard-03.snap").
  static Result<SnapshotReader> Open(std::string_view bytes,
                                     std::string what);

  /// Reads the next section into `*section`. Sets `*done` = true (and
  /// leaves `*section` untouched) at a clean end of input. Truncated
  /// framing and CRC mismatches return non-OK.
  Status Next(SnapshotSection* section, bool* done);

  const std::string& what() const { return what_; }

  /// The format version declared by the file header (validated <=
  /// kSnapshotFormatVersion by Open). Parsers gate version-dependent
  /// payload layouts on this.
  uint32_t version() const { return version_; }

 private:
  SnapshotReader(std::string_view bytes, std::string what)
      : reader_(bytes), what_(std::move(what)) {}

  bin::Reader reader_;
  std::string what_;
  uint32_t version_ = 0;
};

/// Writes `bytes` to "<path>.tmp", fsyncs, and renames onto `path` (the
/// atomic-commit protocol above). Any OS failure is reported with the
/// failing step in the message; the target file is never left torn.
Status AtomicWriteFile(const std::string& path, std::string_view bytes);

/// Reads a whole file. NotFound when the file does not exist; the zero-
/// length case is reported by SnapshotReader::Open (an empty snapshot is a
/// corruption, but an empty *file* read is not an I/O error).
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace persist
}  // namespace moche

#endif  // MOCHE_PERSIST_SNAPSHOT_H_
