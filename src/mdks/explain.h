// Counterfactual explanations for failed TWO-dimensional KS tests — a
// prototype of the paper's future-work direction.
//
// MOCHE's exact machinery is inherently one-dimensional (cumulative
// vectors order the union of values); no polynomial exact algorithm is
// known for the 2-D case. This module therefore provides the natural
// heuristic: a preference-ordered greedy that removes test points until
// the Fasano-Franceschini test passes, optionally re-ranking candidates by
// their single-removal effect on the statistic (a 2-D analogue of the GRD
// and CS baselines). Explanations are validated but NOT guaranteed minimal.
//
// Ownership & thread-safety: free functions; all search state is local to
// the call and results are returned by value, so concurrent calls over
// shared (read-only) inputs are safe.

#ifndef MOCHE_MDKS_EXPLAIN_H_
#define MOCHE_MDKS_EXPLAIN_H_

#include <vector>

#include "core/explanation.h"
#include "core/preference.h"
#include "mdks/ff_test.h"
#include "util/status.h"

namespace moche {
namespace mdks {

struct Explain2dOptions {
  /// When true, candidates are ordered by preference but points whose
  /// individual removal does not reduce the statistic are skipped on the
  /// first pass (second pass takes anything). Usually yields much smaller
  /// explanations for a modest extra cost.
  bool skip_ineffective_points = true;
};

/// Removes test points in preference order until R and T \ I pass the 2-D
/// KS test at `alpha`. AlreadyPasses / budget semantics mirror the 1-D
/// explainers. O(l * (n+m)^2) for an explanation of size l.
Result<Explanation> ExplainGreedy2D(const std::vector<Point2>& r,
                                    const std::vector<Point2>& t,
                                    double alpha,
                                    const PreferenceList& preference,
                                    const Explain2dOptions& options = {});

}  // namespace mdks
}  // namespace moche

#endif  // MOCHE_MDKS_EXPLAIN_H_
