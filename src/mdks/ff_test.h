// Two-sample two-dimensional Kolmogorov-Smirnov test after Fasano &
// Franceschini (MNRAS 1987) — the extension the paper names as future work
// ("we plan to extend MOCHE to interpret failed KS tests conducted on
// multidimensional data points [18, 44]").
//
// The 2-D statistic replaces the CDF with quadrant probabilities: for every
// sample point, compare the fractions of R and T falling in each of the
// four quadrants anchored at that point; D is the average of the two
// per-sample maxima. Significance uses the asymptotic formula of Press et
// al. (Numerical Recipes 3rd ed., §14.8): with N_e = n m/(n+m) and r the
// rms of the two per-sample Pearson correlations,
//   lambda = sqrt(N_e) * D / (1 + sqrt(1 - r^2) (0.25 - 0.75/sqrt(N_e)))
// and the p-value is the Kolmogorov tail Q_KS(lambda).
//
// Ownership & thread-safety: pure free functions over caller-owned point
// sets — no shared or retained state, safe from any thread.

#ifndef MOCHE_MDKS_FF_TEST_H_
#define MOCHE_MDKS_FF_TEST_H_

#include <vector>

#include "util/status.h"

namespace moche {
namespace mdks {

struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

/// The outcome of one 2-D KS test run.
struct FfOutcome {
  double statistic = 0.0;  ///< D (quadrant-based)
  double p_value = 1.0;    ///< asymptotic Press et al. approximation
  bool reject = false;     ///< p_value < alpha
  size_t n = 0;
  size_t m = 0;
};

/// Kolmogorov tail probability Q_KS(lambda) = 2 sum (-1)^{j-1} e^{-2j^2l^2}.
double KolmogorovQ(double lambda);

/// The Fasano-Franceschini statistic; O((n+m)^2). Both samples must be
/// non-empty.
double Statistic2D(const std::vector<Point2>& r,
                   const std::vector<Point2>& t);

/// Runs the full test at significance level alpha. Fails on empty samples,
/// non-finite coordinates or alpha outside (0, 1).
Result<FfOutcome> Test2D(const std::vector<Point2>& r,
                         const std::vector<Point2>& t, double alpha);

}  // namespace mdks
}  // namespace moche

#endif  // MOCHE_MDKS_FF_TEST_H_
