#include "mdks/ff_test.h"

#include <algorithm>
#include <cmath>

#include "ks/ks_test.h"
#include "util/string_util.h"

namespace moche {
namespace mdks {

namespace {

Status ValidatePoints(const std::vector<Point2>& pts, const char* name) {
  if (pts.empty()) {
    return Status::InvalidArgument(StrFormat("%s is empty", name));
  }
  for (const Point2& p : pts) {
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
      return Status::InvalidArgument(
          StrFormat("%s contains a non-finite coordinate", name));
    }
  }
  return Status::OK();
}

// Fractions of `pts` in the four open quadrants anchored at (x, y); points
// on the dividing lines are excluded, as in the original formulation.
struct QuadrantFractions {
  double ne = 0.0, nw = 0.0, sw = 0.0, se = 0.0;
};

QuadrantFractions Quadrants(const std::vector<Point2>& pts, double x,
                            double y) {
  QuadrantFractions q;
  for (const Point2& p : pts) {
    if (p.x > x && p.y > y) {
      q.ne += 1.0;
    } else if (p.x < x && p.y > y) {
      q.nw += 1.0;
    } else if (p.x < x && p.y < y) {
      q.sw += 1.0;
    } else if (p.x > x && p.y < y) {
      q.se += 1.0;
    }
  }
  const double total = static_cast<double>(pts.size());
  q.ne /= total;
  q.nw /= total;
  q.sw /= total;
  q.se /= total;
  return q;
}

// max quadrant discrepancy over the anchor points of `anchors`
double MaxDiscrepancy(const std::vector<Point2>& anchors,
                      const std::vector<Point2>& r,
                      const std::vector<Point2>& t) {
  double best = 0.0;
  for (const Point2& a : anchors) {
    const QuadrantFractions qr = Quadrants(r, a.x, a.y);
    const QuadrantFractions qt = Quadrants(t, a.x, a.y);
    best = std::max({best, std::fabs(qr.ne - qt.ne), std::fabs(qr.nw - qt.nw),
                     std::fabs(qr.sw - qt.sw), std::fabs(qr.se - qt.se)});
  }
  return best;
}

double PearsonCorrelation(const std::vector<Point2>& pts) {
  const double n = static_cast<double>(pts.size());
  double mx = 0.0;
  double my = 0.0;
  for (const Point2& p : pts) {
    mx += p.x;
    my += p.y;
  }
  mx /= n;
  my /= n;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (const Point2& p : pts) {
    sxy += (p.x - mx) * (p.y - my);
    sxx += (p.x - mx) * (p.x - mx);
    syy += (p.y - my) * (p.y - my);
  }
  const double denom = std::sqrt(sxx * syy);
  if (denom < 1e-12) return 0.0;
  return sxy / denom;
}

}  // namespace

double KolmogorovQ(double lambda) { return ks::KolmogorovQ(lambda); }

double Statistic2D(const std::vector<Point2>& r,
                   const std::vector<Point2>& t) {
  // Fasano-Franceschini: average of the two one-sided maxima.
  const double d1 = MaxDiscrepancy(r, r, t);
  const double d2 = MaxDiscrepancy(t, r, t);
  return 0.5 * (d1 + d2);
}

Result<FfOutcome> Test2D(const std::vector<Point2>& r,
                         const std::vector<Point2>& t, double alpha) {
  MOCHE_RETURN_IF_ERROR(ValidatePoints(r, "reference set"));
  MOCHE_RETURN_IF_ERROR(ValidatePoints(t, "test set"));
  if (!(alpha > 0.0 && alpha < 1.0)) {
    return Status::InvalidArgument(
        StrFormat("alpha must be in (0, 1), got %g", alpha));
  }
  FfOutcome out;
  out.n = r.size();
  out.m = t.size();
  out.statistic = Statistic2D(r, t);

  const double n = static_cast<double>(r.size());
  const double m = static_cast<double>(t.size());
  const double n_e = n * m / (n + m);
  const double r1 = PearsonCorrelation(r);
  const double r2 = PearsonCorrelation(t);
  const double rr = std::sqrt(1.0 - 0.5 * (r1 * r1 + r2 * r2));
  const double lambda = std::sqrt(n_e) * out.statistic /
                        (1.0 + rr * (0.25 - 0.75 / std::sqrt(n_e)));
  out.p_value = KolmogorovQ(lambda);
  out.reject = out.p_value < alpha;
  return out;
}

}  // namespace mdks
}  // namespace moche
