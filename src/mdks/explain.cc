#include "mdks/explain.h"

#include <algorithm>

namespace moche {
namespace mdks {

namespace {

std::vector<Point2> RemoveIndices(const std::vector<Point2>& t,
                                  const std::vector<bool>& removed) {
  std::vector<Point2> out;
  out.reserve(t.size());
  for (size_t i = 0; i < t.size(); ++i) {
    if (!removed[i]) out.push_back(t[i]);
  }
  return out;
}

}  // namespace

Result<Explanation> ExplainGreedy2D(const std::vector<Point2>& r,
                                    const std::vector<Point2>& t,
                                    double alpha,
                                    const PreferenceList& preference,
                                    const Explain2dOptions& options) {
  MOCHE_RETURN_IF_ERROR(ValidatePreference(preference, t.size()));
  MOCHE_ASSIGN_OR_RETURN(FfOutcome outcome, Test2D(r, t, alpha));
  if (!outcome.reject) {
    return Status::AlreadyPasses("the 2-D KS test already passes");
  }

  std::vector<bool> removed(t.size(), false);
  Explanation expl;
  double current_stat = outcome.statistic;

  // Pass 1 (optional): preference order, skipping points whose removal
  // does not reduce D. Pass 2: preference order, taking anything left.
  const int passes = options.skip_ineffective_points ? 2 : 1;
  for (int pass = 0; pass < passes; ++pass) {
    for (size_t pos = 0; pos < preference.size(); ++pos) {
      const size_t idx = preference[pos];
      if (removed[idx]) continue;
      if (expl.indices.size() + 1 >= t.size()) break;

      removed[idx] = true;
      const std::vector<Point2> remaining = RemoveIndices(t, removed);
      MOCHE_ASSIGN_OR_RETURN(const FfOutcome after,
                             Test2D(r, remaining, alpha));
      const bool effective = after.statistic < current_stat - 1e-12;
      if (pass == 0 && options.skip_ineffective_points && !effective &&
          after.reject) {
        removed[idx] = false;  // skip for now; pass 2 may still take it
        continue;
      }
      expl.indices.push_back(idx);
      current_stat = after.statistic;
      if (!after.reject) return expl;
    }
  }
  // Unlike the 1-D case (Proposition 1 guarantees an explanation exists
  // for alpha <= 2/e^2), the asymptotic 2-D p-value can reject even a
  // near-empty remainder, so greedy exhaustion is a legitimate outcome.
  return Status::NotFound(
      "greedy 2-D scan exhausted the test set without passing; "
      "try a preference order that ranks the drifted points earlier");
}

}  // namespace mdks
}  // namespace moche
