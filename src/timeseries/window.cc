#include "timeseries/window.h"

#include <algorithm>

#include "util/string_util.h"

namespace moche {
namespace ts {

Result<std::vector<WindowTest>> SweepWindows(const TimeSeries& series,
                                             const WindowSweepOptions& opts) {
  const size_t w = opts.window;
  if (w == 0) return Status::InvalidArgument("window must be positive");
  if (series.length() < 2 * w) {
    return Status::InvalidArgument(
        StrFormat("series '%s' has %zu points; needs at least 2*w = %zu",
                  series.name.c_str(), series.length(), 2 * w));
  }
  const size_t step = opts.step == 0 ? w : opts.step;

  std::vector<WindowTest> out;
  for (size_t begin = 0; begin + 2 * w <= series.length(); begin += step) {
    WindowTest wt;
    wt.ref_begin = begin;
    wt.test_begin = begin + w;
    wt.window = w;
    std::vector<double> ref(series.values.begin() + static_cast<long>(begin),
                            series.values.begin() + static_cast<long>(begin + w));
    std::vector<double> test(
        series.values.begin() + static_cast<long>(begin + w),
        series.values.begin() + static_cast<long>(begin + 2 * w));
    MOCHE_ASSIGN_OR_RETURN(wt.outcome, ks::Run(ref, test, opts.alpha));
    out.push_back(wt);
  }
  return out;
}

Result<std::vector<WindowTest>> FailedWindowTests(
    const TimeSeries& series, const WindowSweepOptions& opts) {
  MOCHE_ASSIGN_OR_RETURN(std::vector<WindowTest> all,
                         SweepWindows(series, opts));
  std::vector<WindowTest> failed;
  for (const WindowTest& wt : all) {
    if (wt.outcome.reject) failed.push_back(wt);
  }
  return failed;
}

KsInstance MakeInstance(const TimeSeries& series, const WindowTest& wt,
                        double alpha) {
  KsInstance inst;
  inst.alpha = alpha;
  inst.reference.assign(
      series.values.begin() + static_cast<long>(wt.ref_begin),
      series.values.begin() + static_cast<long>(wt.ref_begin + wt.window));
  inst.test.assign(
      series.values.begin() + static_cast<long>(wt.test_begin),
      series.values.begin() + static_cast<long>(wt.test_begin + wt.window));
  return inst;
}

bool TestWindowHasLabeledAnomaly(const TimeSeries& series,
                                 const WindowTest& wt) {
  if (!series.has_labels()) return false;
  const size_t end = std::min(series.length(), wt.test_begin + wt.window);
  for (size_t i = wt.test_begin; i < end; ++i) {
    if (series.anomaly_labels[i]) return true;
  }
  return false;
}

}  // namespace ts
}  // namespace moche
