// Core time-series containers shared by generators, detectors and the
// experiment harness.
//
// Ownership & thread-safety: plain value types owning their vectors; after
// construction the harness treats them as read-only, so one Dataset may be
// shared across worker threads without synchronization.

#ifndef MOCHE_TIMESERIES_SERIES_H_
#define MOCHE_TIMESERIES_SERIES_H_

#include <string>
#include <vector>

namespace moche {
namespace ts {

/// A univariate series with optional ground-truth anomaly labels
/// (the NAB datasets the paper evaluates on ship such labels).
struct TimeSeries {
  std::string name;
  std::vector<double> values;
  std::vector<bool> anomaly_labels;  ///< same length as values, or empty

  size_t length() const { return values.size(); }
  bool has_labels() const { return anomaly_labels.size() == values.size(); }
};

/// A named family of series (one row of the paper's Table 1).
struct Dataset {
  std::string name;
  std::vector<TimeSeries> series;

  size_t min_length() const;
  size_t max_length() const;
};

}  // namespace ts
}  // namespace moche

#endif  // MOCHE_TIMESERIES_SERIES_H_
