// Series2Graph (Boniol & Palpanas, VLDB 2020), simplified — the second
// shape-based anomalous-subsequence detector the paper extends into a
// baseline (Extended-S2G).
//
// Faithful skeleton of the original pipeline:
//   1. Embed every position of the training series as a small vector of
//      overlapping moving averages (the original's local convolution).
//   2. Project the embeddings to 2-D with exact PCA (power iteration).
//   3. Discretize the 2-D plane into angular sectors around the centroid;
//      each sector is a graph node.
//   4. Add an edge for every transition between consecutive positions;
//      edge weights count transitions.
//   5. Normality of a query subsequence = mean over its transition path of
//      w(e) * (deg(source) - 1); anomaly score = 1 / (1 + normality).
//
// Simplifications vs. the original: nodes are
// angular sectors rather than per-sector density maxima, and the embedding
// uses fixed moving-average offsets rather than the full rotated convolution
// set. What the baseline contributes to the paper's experiments — a
// shape-based anomaly *ranking* that ignores the raw value distribution —
// is preserved.
//
// Ownership & thread-safety: a Series2Graph owns its projection and edge
// tables and is immutable after Fit; AnomalyScores is const with call-local
// scratch, so one fitted graph may score from several threads at once.

#ifndef MOCHE_TIMESERIES_SERIES2GRAPH_H_
#define MOCHE_TIMESERIES_SERIES2GRAPH_H_

#include <vector>

#include "util/status.h"

namespace moche {
namespace ts {

struct Series2GraphOptions {
  size_t pattern_length = 50;  ///< query subsequence length q
  /// Moving-average window of the embedding; 0 = pattern_length / 3.
  size_t conv_window = 0;
  size_t num_sectors = 36;     ///< angular resolution of node extraction
};

class Series2Graph {
 public:
  /// Learns the graph from a training series (the KS reference segment).
  /// Fails when the series is too short for the configured windows.
  static Result<Series2Graph> Fit(const std::vector<double>& train,
                                  const Series2GraphOptions& options);

  /// Anomaly score of every `pattern_length`-subsequence of `query`
  /// (length query.size() - pattern_length + 1; higher = more anomalous).
  Result<std::vector<double>> AnomalyScores(
      const std::vector<double>& query) const;

  size_t num_nodes() const { return options_.num_sectors; }
  size_t num_edges() const { return nonzero_edges_; }

 private:
  Series2Graph() = default;

  // Maps a series to its per-position sector ids (empty when too short).
  std::vector<size_t> SectorPath(const std::vector<double>& x) const;

  Series2GraphOptions options_;
  size_t embed_dim_ = 3;
  std::vector<double> pc1_;            // first principal axis
  std::vector<double> pc2_;            // second principal axis
  std::vector<double> embed_mean_;     // embedding centroid
  std::vector<double> edge_weight_;    // num_sectors^2, row-major
  std::vector<double> out_degree_;     // distinct out-neighbours per node
  size_t nonzero_edges_ = 0;
};

}  // namespace ts
}  // namespace moche

#endif  // MOCHE_TIMESERIES_SERIES2GRAPH_H_
