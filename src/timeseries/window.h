// Sliding-window KS testing over a time series (paper Section 6.1.1):
// a reference window W of size w and the immediately following,
// non-overlapping test window of the same size; the pair slides through the
// series and each failed KS test becomes an explanation instance.
//
// Ownership & thread-safety: pure free functions slicing a caller-owned,
// read-only series into fresh value results; safe from any thread.

#ifndef MOCHE_TIMESERIES_WINDOW_H_
#define MOCHE_TIMESERIES_WINDOW_H_

#include <vector>

#include "core/instance.h"
#include "timeseries/series.h"
#include "util/status.h"

namespace moche {
namespace ts {

/// One window pair and its KS outcome.
struct WindowTest {
  size_t ref_begin = 0;   ///< reference window is [ref_begin, ref_begin + w)
  size_t test_begin = 0;  ///< test window is [test_begin, test_begin + w)
  size_t window = 0;      ///< w
  KsOutcome outcome;
};

struct WindowSweepOptions {
  size_t window = 100;  ///< w
  double alpha = 0.05;
  /// Slide of the window pair; 0 means tumbling (step = w, no overlap
  /// between successive pairs).
  size_t step = 0;
};

/// Runs the KS test on every window pair of `series`. Fails when the series
/// is shorter than two windows.
Result<std::vector<WindowTest>> SweepWindows(const TimeSeries& series,
                                             const WindowSweepOptions& opts);

/// Only the failed tests of SweepWindows.
Result<std::vector<WindowTest>> FailedWindowTests(
    const TimeSeries& series, const WindowSweepOptions& opts);

/// Materializes the KsInstance of one window test (copies the two windows;
/// the test window keeps its original temporal order so preference lists
/// line up with time indices).
KsInstance MakeInstance(const TimeSeries& series, const WindowTest& wt,
                        double alpha);

/// True iff the test window of `wt` overlaps a labelled anomaly
/// (the paper samples failed tests "where the test sets contain the
/// corresponding ground truth of abnormal observations").
bool TestWindowHasLabeledAnomaly(const TimeSeries& series,
                                 const WindowTest& wt);

}  // namespace ts
}  // namespace moche

#endif  // MOCHE_TIMESERIES_WINDOW_H_
