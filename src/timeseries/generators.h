// Synthetic stand-ins for the six NAB dataset families of the paper's
// Table 1 (the NAB corpus itself is not redistributable here, so each
// family is synthesized to match). Each generator produces the same number of
// series and the same length ranges as Table 1, with injected anomalies and
// distribution drifts (spikes, level shifts, variance changes, bursts) and
// ground-truth labels, so sliding-window KS tests fail in the same way they
// do on the real corpus.
//
// `length_scale` < 1 shrinks every series proportionally (with a floor) so
// the full experiment pipeline can run quickly in tests and benches; the
// Table 1 bench uses scale 1.0 to report the paper's shapes.
//
// Ownership & thread-safety: pure generator functions; every call derives a
// private deterministic Rng from the seed in its options and returns a
// freshly owned Dataset/TimeSeries value, so concurrent generation is safe.

#ifndef MOCHE_TIMESERIES_GENERATORS_H_
#define MOCHE_TIMESERIES_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "timeseries/series.h"

namespace moche {
namespace ts {

/// AWS server metrics: CPU utilization, network bytes in, disk read bytes.
/// 17 series, lengths 1243-4700.
Dataset MakeAwsDataset(uint64_t seed, double length_scale = 1.0);

/// Online advertisement clicks: click-through rates and cost per thousand
/// impressions. 6 series, lengths 1538-1624.
Dataset MakeAdDataset(uint64_t seed, double length_scale = 1.0);

/// Freeway traffic: occupancy, speed, travel time. 7 series, 1127-2500.
Dataset MakeTrfDataset(uint64_t seed, double length_scale = 1.0);

/// Tweet mention counts of publicly traded companies. 10 series,
/// lengths 15831-15902.
Dataset MakeTwtDataset(uint64_t seed, double length_scale = 1.0);

/// Miscellaneous known causes: machine temperature, NYC taxi passengers,
/// CPU usage. 7 series, lengths 1882-22695.
Dataset MakeKcDataset(uint64_t seed, double length_scale = 1.0);

/// Artificially generated series with varying types of distribution drift
/// (Kifer et al. style). 6 series, length 4032.
Dataset MakeArtDataset(uint64_t seed, double length_scale = 1.0);

/// All six families in the paper's Table 1 order.
std::vector<Dataset> MakeAllNabLikeDatasets(uint64_t seed,
                                            double length_scale = 1.0);

/// The drift shapes injected into DriftScenario streams.
enum class DriftKind {
  kMeanShift,          ///< N(0,1) -> N(1.5,1) from drift_begin to the end
  kVarianceInflation,  ///< N(0,1) -> N(0,3) from drift_begin to the end
  kTransientSpike,     ///< +8 offset on [drift_begin, drift_end), then back
};

/// One synthetic monitoring stream with known ground-truth drift ticks,
/// for exercising streaming drift detectors (src/stream): a stationary
/// N(0,1) reference sample plus an observation stream that is
/// in-distribution outside [drift_begin, drift_end).
struct DriftScenario {
  std::string name;
  DriftKind kind = DriftKind::kMeanShift;
  std::vector<double> reference;
  std::vector<double> observations;
  size_t drift_begin = 0;  ///< observation index where the drift starts
  size_t drift_end = 0;    ///< one past the last drifted observation
};

/// Builds one scenario. The drift starts at length/2; kTransientSpike
/// reverts after length/8 observations, the persistent kinds run to the
/// end. Deterministic in (kind, seed, sizes).
DriftScenario MakeDriftScenario(DriftKind kind, uint64_t seed,
                                size_t reference_size = 500,
                                size_t length = 1000);

/// `count` scenarios cycling through the three kinds, seeds derived from
/// `seed` so every scenario draws an independent stream.
std::vector<DriftScenario> MakeDriftScenarioSuite(size_t count, uint64_t seed,
                                                  size_t reference_size = 500,
                                                  size_t length = 1000);

}  // namespace ts
}  // namespace moche

#endif  // MOCHE_TIMESERIES_GENERATORS_H_
