#include "timeseries/generators.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"
#include "util/string_util.h"

namespace moche {
namespace ts {

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr size_t kMinLength = 280;  // keeps 2 windows of 100 + slack viable

size_t Scaled(size_t length, double scale) {
  const auto scaled = static_cast<size_t>(static_cast<double>(length) * scale);
  return std::max(scaled, kMinLength);
}

// Incremental series assembly: a base signal plus injected events, with
// ground-truth labels marking the injected regions.
class SeriesBuilder {
 public:
  SeriesBuilder(std::string name, size_t length, Rng* rng)
      : rng_(rng) {
    series_.name = std::move(name);
    series_.values.assign(length, 0.0);
    series_.anomaly_labels.assign(length, false);
  }

  size_t length() const { return series_.values.size(); }

  void AddConstant(double c) {
    for (double& v : series_.values) v += c;
  }

  void AddSine(double period, double amplitude, double phase = 0.0) {
    for (size_t t = 0; t < length(); ++t) {
      series_.values[t] +=
          amplitude * std::sin(2.0 * kPi * static_cast<double>(t) / period +
                               phase);
    }
  }

  void AddLinearTrend(double total_rise) {
    const double denom = std::max<double>(1.0, static_cast<double>(length() - 1));
    for (size_t t = 0; t < length(); ++t) {
      series_.values[t] += total_rise * static_cast<double>(t) / denom;
    }
  }

  void AddGaussianNoise(double stddev) {
    for (double& v : series_.values) v += rng_->Normal(0.0, stddev);
  }

  void AddAr1Noise(double rho, double stddev) {
    double state = 0.0;
    for (double& v : series_.values) {
      state = rho * state + rng_->Normal(0.0, stddev);
      v += state;
    }
  }

  /// Step change of `delta` from `at` to the end; labels the onset window.
  void AddLevelShift(size_t at, double delta, size_t label_width = 10) {
    for (size_t t = at; t < length(); ++t) series_.values[t] += delta;
    Label(at, label_width);
  }

  /// Multiplies the noise-free signal by extra Gaussian noise in a region.
  void AddVarianceBurst(size_t at, size_t width, double stddev) {
    for (size_t t = at; t < std::min(length(), at + width); ++t) {
      series_.values[t] += rng_->Normal(0.0, stddev);
    }
    Label(at, width);
  }

  /// One-point (or few-point) spike.
  void AddSpike(size_t at, double magnitude, size_t width = 1) {
    for (size_t t = at; t < std::min(length(), at + width); ++t) {
      series_.values[t] += magnitude;
    }
    Label(at, width);
  }

  /// Replaces a region with samples from a different distribution
  /// (uniform in [lo, hi]) — the Kifer-style drift the ART family uses.
  void ReplaceWithUniform(size_t at, size_t width, double lo, double hi) {
    for (size_t t = at; t < std::min(length(), at + width); ++t) {
      series_.values[t] = rng_->Uniform(lo, hi);
    }
    Label(at, width);
  }

  void ClampMin(double lo) {
    for (double& v : series_.values) v = std::max(v, lo);
  }

  /// Marks [at, at + width) as anomalous ground truth.
  void Label(size_t at, size_t width) {
    for (size_t t = at; t < std::min(length(), at + width); ++t) {
      series_.anomaly_labels[t] = true;
    }
  }

  TimeSeries Build() { return std::move(series_); }

 private:
  Rng* rng_;
  TimeSeries series_;
};

// Picks 2-4 event positions spread over the middle of the series.
std::vector<size_t> EventPositions(size_t length, size_t count, Rng* rng) {
  std::vector<size_t> out;
  for (size_t e = 0; e < count; ++e) {
    const double lo = 0.2 + 0.6 * static_cast<double>(e) /
                                static_cast<double>(count);
    const double hi = lo + 0.6 / static_cast<double>(count);
    out.push_back(static_cast<size_t>(
        rng->Uniform(lo, hi) * static_cast<double>(length)));
  }
  return out;
}

}  // namespace

Dataset MakeAwsDataset(uint64_t seed, double scale) {
  Rng rng(seed);
  Dataset ds;
  ds.name = "AWS";
  // Table 1: 17 series, lengths 1243-4700.
  const size_t lengths[17] = {1243, 1499, 1781, 2034, 2150, 2305, 2490,
                              2688, 2900, 3105, 3333, 3512, 3704, 3998,
                              4221, 4483, 4700};
  for (int i = 0; i < 17; ++i) {
    const size_t len = Scaled(lengths[i], scale);
    const int kind = i % 3;
    if (kind == 0) {
      // CPU utilization: diurnal load + AR noise + CPU pegging events.
      SeriesBuilder b(StrFormat("aws_cpu_%d", i / 3), len, &rng);
      b.AddConstant(35.0 + rng.Uniform(-5, 5));
      b.AddSine(static_cast<double>(len) / 6.0, 8.0, rng.Uniform(0, kPi));
      b.AddAr1Noise(0.6, 2.0);
      for (size_t at : EventPositions(len, 3, &rng)) {
        b.AddSpike(at, rng.Uniform(30, 50), 5 + static_cast<size_t>(rng.Integer(0, 10)));
      }
      b.AddLevelShift(len * 2 / 3, rng.Uniform(10, 18), 12);
      b.ClampMin(0.0);
      ds.series.push_back(b.Build());
    } else if (kind == 1) {
      // Network bytes in: bursty heavy-tailed traffic + sustained surge.
      SeriesBuilder b(StrFormat("aws_network_in_%d", i / 3), len, &rng);
      b.AddConstant(1000.0);
      b.AddSine(static_cast<double>(len) / 8.0, 150.0, rng.Uniform(0, kPi));
      b.AddAr1Noise(0.4, 90.0);
      for (size_t at : EventPositions(len, 2, &rng)) {
        b.AddVarianceBurst(at, 30, 600.0);
      }
      b.AddLevelShift(len / 2, rng.Uniform(300, 500), 15);
      b.ClampMin(0.0);
      ds.series.push_back(b.Build());
    } else {
      // Disk read bytes: near-idle baseline with backup-job plateaus.
      SeriesBuilder b(StrFormat("aws_disk_read_%d", i / 3), len, &rng);
      b.AddConstant(50.0);
      b.AddGaussianNoise(8.0);
      for (size_t at : EventPositions(len, 3, &rng)) {
        b.AddSpike(at, rng.Uniform(200, 600),
                   20 + static_cast<size_t>(rng.Integer(0, 20)));
      }
      b.ClampMin(0.0);
      ds.series.push_back(b.Build());
    }
  }
  return ds;
}

Dataset MakeAdDataset(uint64_t seed, double scale) {
  Rng rng(seed + 1);
  Dataset ds;
  ds.name = "AD";
  // Table 1: 6 series, lengths 1538-1624.
  const size_t lengths[6] = {1538, 1554, 1571, 1589, 1607, 1624};
  for (int i = 0; i < 6; ++i) {
    const size_t len = Scaled(lengths[i], scale);
    if (i % 2 == 0) {
      // Click-through rate: small positive rate with campaign drift.
      SeriesBuilder b(StrFormat("ad_ctr_%d", i / 2), len, &rng);
      b.AddConstant(0.12);
      b.AddSine(static_cast<double>(len) / 5.0, 0.015, rng.Uniform(0, kPi));
      b.AddGaussianNoise(0.01);
      b.AddLevelShift(len / 2, -0.03, 12);  // campaign change drops CTR
      b.AddVarianceBurst(len * 3 / 4, 25, 0.03);
      b.ClampMin(0.0);
      ds.series.push_back(b.Build());
    } else {
      // Cost per thousand impressions: auction price with demand shocks.
      SeriesBuilder b(StrFormat("ad_cpm_%d", i / 2), len, &rng);
      b.AddConstant(2.5);
      b.AddAr1Noise(0.7, 0.12);
      b.AddLinearTrend(0.4);
      for (size_t at : EventPositions(len, 2, &rng)) {
        b.AddSpike(at, rng.Uniform(1.0, 2.0),
                   5 + static_cast<size_t>(rng.Integer(0, 5)));
      }
      b.AddLevelShift(len * 3 / 5, 0.8, 12);
      b.ClampMin(0.0);
      ds.series.push_back(b.Build());
    }
  }
  return ds;
}

Dataset MakeTrfDataset(uint64_t seed, double scale) {
  Rng rng(seed + 2);
  Dataset ds;
  ds.name = "TRF";
  // Table 1: 7 series, lengths 1127-2500.
  const size_t lengths[7] = {1127, 1354, 1581, 1808, 2035, 2262, 2500};
  for (int i = 0; i < 7; ++i) {
    const size_t len = Scaled(lengths[i], scale);
    const double day = static_cast<double>(len) / 7.0;  // ~7 "days"
    const int kind = i % 3;
    if (kind == 0) {
      // Occupancy %: twin rush-hour humps + incident saturation.
      SeriesBuilder b(StrFormat("trf_occupancy_%d", i / 3), len, &rng);
      b.AddConstant(18.0);
      b.AddSine(day, 8.0, 0.0);
      b.AddSine(day / 2.0, 5.0, kPi / 3.0);  // morning + evening peaks
      b.AddAr1Noise(0.5, 1.5);
      for (size_t at : EventPositions(len, 2, &rng)) {
        b.AddSpike(at, rng.Uniform(25, 40),
                   10 + static_cast<size_t>(rng.Integer(0, 15)));
      }
      b.ClampMin(0.0);
      ds.series.push_back(b.Build());
    } else if (kind == 1) {
      // Speed mph: free-flow baseline minus congestion + incident drops.
      SeriesBuilder b(StrFormat("trf_speed_%d", i / 3), len, &rng);
      b.AddConstant(62.0);
      b.AddSine(day, -6.0, 0.0);
      b.AddAr1Noise(0.5, 2.0);
      for (size_t at : EventPositions(len, 2, &rng)) {
        b.AddSpike(at, -rng.Uniform(25, 40),
                   8 + static_cast<size_t>(rng.Integer(0, 12)));
      }
      b.AddLevelShift(len * 4 / 5, -8.0, 10);  // lane closure
      b.ClampMin(0.0);
      ds.series.push_back(b.Build());
    } else {
      // Travel time (s): reciprocal-of-speed shape with jams.
      SeriesBuilder b(StrFormat("trf_travel_time_%d", i / 3), len, &rng);
      b.AddConstant(210.0);
      b.AddSine(day, 25.0, kPi / 5.0);
      b.AddAr1Noise(0.6, 8.0);
      for (size_t at : EventPositions(len, 3, &rng)) {
        b.AddSpike(at, rng.Uniform(90, 200),
                   6 + static_cast<size_t>(rng.Integer(0, 10)));
      }
      b.ClampMin(30.0);
      ds.series.push_back(b.Build());
    }
  }
  return ds;
}

Dataset MakeTwtDataset(uint64_t seed, double scale) {
  Rng rng(seed + 3);
  Dataset ds;
  ds.name = "TWT";
  // Table 1: 10 series, lengths 15831-15902.
  const char* companies[10] = {"GOOG", "IBM", "AAPL", "AMZN", "CRM",
                               "CVS",  "FB",  "KO",   "PFE",  "UPS"};
  for (int i = 0; i < 10; ++i) {
    const size_t len = Scaled(15831 + static_cast<size_t>(i) * 7, scale);
    SeriesBuilder b(StrFormat("twt_mentions_%s", companies[i]), len, &rng);
    // Mention counts: diurnal chatter + AR noise, news bursts, one
    // sustained attention shift (e.g. product launch).
    const double base = 20.0 + 6.0 * static_cast<double>(i % 5);
    b.AddConstant(base);
    b.AddSine(static_cast<double>(len) / 11.0, base * 0.25,
              rng.Uniform(0, kPi));
    b.AddAr1Noise(0.55, base * 0.15);
    for (size_t at : EventPositions(len, 4, &rng)) {
      b.AddSpike(at, rng.Uniform(3.0, 8.0) * base,
                 10 + static_cast<size_t>(rng.Integer(0, 30)));
    }
    b.AddLevelShift(len * 7 / 10, base * rng.Uniform(0.4, 0.8), 20);
    b.ClampMin(0.0);
    TimeSeries s = b.Build();
    // counts are integers
    for (double& v : s.values) v = std::round(v);
    ds.series.push_back(std::move(s));
  }
  return ds;
}

Dataset MakeKcDataset(uint64_t seed, double scale) {
  Rng rng(seed + 4);
  Dataset ds;
  ds.name = "KC";
  // Table 1: 7 series, lengths 1882-22695.
  const size_t lengths[7] = {1882, 4032, 7268, 10320, 14030, 18050, 22695};
  for (int i = 0; i < 7; ++i) {
    const size_t len = Scaled(lengths[i], scale);
    const int kind = i % 3;
    if (kind == 0) {
      // Machine temperature: slow thermal cycle, bearing failure = drift
      // down then catastrophic drop.
      SeriesBuilder b(StrFormat("kc_machine_temp_%d", i / 3), len, &rng);
      b.AddConstant(85.0);
      b.AddSine(static_cast<double>(len) / 4.0, 4.0, rng.Uniform(0, kPi));
      b.AddAr1Noise(0.8, 1.2);
      b.AddLevelShift(len * 3 / 4, -9.0, 25);
      b.AddVarianceBurst(len * 3 / 4, 60, 4.0);
      ds.series.push_back(b.Build());
    } else if (kind == 1) {
      // NYC taxi passengers: strong daily + weekly pattern, holiday dips.
      SeriesBuilder b(StrFormat("kc_nyc_taxi_%d", i / 3), len, &rng);
      const double day = std::max(48.0, static_cast<double>(len) / 30.0);
      b.AddConstant(15000.0);
      b.AddSine(day, 6000.0, 0.0);
      b.AddSine(day * 7.0, 2000.0, kPi / 7.0);
      b.AddAr1Noise(0.5, 800.0);
      for (size_t at : EventPositions(len, 3, &rng)) {
        b.AddSpike(at, -rng.Uniform(6000, 10000),
                   static_cast<size_t>(day / 2.0));  // holiday
      }
      b.ClampMin(0.0);
      ds.series.push_back(b.Build());
    } else {
      // AWS-style CPU usage with a deployment regression.
      SeriesBuilder b(StrFormat("kc_cpu_%d", i / 3), len, &rng);
      b.AddConstant(42.0);
      b.AddSine(static_cast<double>(len) / 9.0, 6.0, rng.Uniform(0, kPi));
      b.AddAr1Noise(0.6, 2.5);
      b.AddLevelShift(len / 2, 14.0, 15);
      for (size_t at : EventPositions(len, 2, &rng)) {
        b.AddSpike(at, rng.Uniform(20, 35),
                   4 + static_cast<size_t>(rng.Integer(0, 8)));
      }
      b.ClampMin(0.0);
      ds.series.push_back(b.Build());
    }
  }
  return ds;
}

Dataset MakeArtDataset(uint64_t seed, double scale) {
  Rng rng(seed + 5);
  Dataset ds;
  ds.name = "ART";
  // Table 1: 6 series, all of length 4032, with varying distribution
  // drifts in the style of Kifer et al. [24].
  const size_t len = Scaled(4032, scale);

  {
    // flat noise, no drift (the "no anomaly" control of the NAB art set)
    SeriesBuilder b("art_daily_no_noise", len, &rng);
    b.AddConstant(40.0);
    b.AddSine(static_cast<double>(len) / 14.0, 10.0, 0.0);
    b.AddGaussianNoise(0.5);
    ds.series.push_back(b.Build());
  }
  {
    // jumping mean: N(0,1) -> N(1.5,1) at the midpoint
    SeriesBuilder b("art_jumping_mean", len, &rng);
    b.AddGaussianNoise(1.0);
    b.AddLevelShift(len / 2, 1.5, 20);
    ds.series.push_back(b.Build());
  }
  {
    // increasing variance: N(0,1) -> N(0,3)
    SeriesBuilder b("art_increase_variance", len, &rng);
    b.AddGaussianNoise(1.0);
    b.AddVarianceBurst(len / 2, len / 2, 3.0);
    ds.series.push_back(b.Build());
  }
  {
    // up-then-down jump
    SeriesBuilder b("art_updown_jump", len, &rng);
    b.AddGaussianNoise(1.0);
    b.AddLevelShift(len / 3, 2.0, 20);
    b.AddLevelShift(2 * len / 3, -3.0, 20);
    ds.series.push_back(b.Build());
  }
  {
    // uniform contamination: the exact pattern of the paper's synthetic
    // scalability study (Sec 6.4) — a slice replaced by U[-7, 7]
    SeriesBuilder b("art_uniform_replace", len, &rng);
    b.AddGaussianNoise(1.0);
    b.ReplaceWithUniform(len / 2, len / 6, -7.0, 7.0);
    ds.series.push_back(b.Build());
  }
  {
    // daily pattern whose amplitude drifts (shape change)
    SeriesBuilder b("art_amplitude_change", len, &rng);
    b.AddSine(static_cast<double>(len) / 14.0, 8.0, 0.0);
    b.AddGaussianNoise(1.0);
    // amplitude modulation from the midpoint on
    TimeSeries s = b.Build();
    for (size_t t = len / 2; t < s.values.size(); ++t) {
      s.values[t] *= 1.8;
    }
    for (size_t t = len / 2; t < len / 2 + 20 && t < s.values.size(); ++t) {
      s.anomaly_labels[t] = true;
    }
    ds.series.push_back(std::move(s));
  }
  return ds;
}

std::vector<Dataset> MakeAllNabLikeDatasets(uint64_t seed, double scale) {
  return {MakeAwsDataset(seed, scale), MakeAdDataset(seed, scale),
          MakeTrfDataset(seed, scale), MakeTwtDataset(seed, scale),
          MakeKcDataset(seed, scale),  MakeArtDataset(seed, scale)};
}

DriftScenario MakeDriftScenario(DriftKind kind, uint64_t seed,
                                size_t reference_size, size_t length) {
  Rng rng(seed);
  DriftScenario sc;
  sc.kind = kind;
  switch (kind) {
    case DriftKind::kMeanShift:
      sc.name = "mean_shift";
      break;
    case DriftKind::kVarianceInflation:
      sc.name = "variance_inflation";
      break;
    case DriftKind::kTransientSpike:
      sc.name = "transient_spike";
      break;
  }
  sc.name += StrFormat("_%llu", static_cast<unsigned long long>(seed));
  sc.reference.reserve(reference_size);
  for (size_t i = 0; i < reference_size; ++i) {
    sc.reference.push_back(rng.Normal(0.0, 1.0));
  }
  sc.drift_begin = length / 2;
  sc.drift_end =
      kind == DriftKind::kTransientSpike
          ? std::min(length, sc.drift_begin + std::max<size_t>(1, length / 8))
          : length;
  sc.observations.reserve(length);
  for (size_t t = 0; t < length; ++t) {
    const bool drifted = t >= sc.drift_begin && t < sc.drift_end;
    switch (kind) {
      case DriftKind::kMeanShift:
        sc.observations.push_back(rng.Normal(drifted ? 1.5 : 0.0, 1.0));
        break;
      case DriftKind::kVarianceInflation:
        sc.observations.push_back(rng.Normal(0.0, drifted ? 3.0 : 1.0));
        break;
      case DriftKind::kTransientSpike:
        sc.observations.push_back(rng.Normal(0.0, 1.0) +
                                  (drifted ? 8.0 : 0.0));
        break;
    }
  }
  return sc;
}

std::vector<DriftScenario> MakeDriftScenarioSuite(size_t count, uint64_t seed,
                                                  size_t reference_size,
                                                  size_t length) {
  constexpr DriftKind kKinds[] = {DriftKind::kMeanShift,
                                  DriftKind::kVarianceInflation,
                                  DriftKind::kTransientSpike};
  std::vector<DriftScenario> suite;
  suite.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    suite.push_back(MakeDriftScenario(kKinds[i % 3], seed + i, reference_size,
                                      length));
  }
  return suite;
}

}  // namespace ts
}  // namespace moche
