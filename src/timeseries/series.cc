#include "timeseries/series.h"

#include <algorithm>

namespace moche {
namespace ts {

size_t Dataset::min_length() const {
  size_t out = series.empty() ? 0 : series.front().length();
  for (const TimeSeries& s : series) out = std::min(out, s.length());
  return out;
}

size_t Dataset::max_length() const {
  size_t out = 0;
  for (const TimeSeries& s : series) out = std::max(out, s.length());
  return out;
}

}  // namespace ts
}  // namespace moche
