// STOMP matrix profile (Yeh et al. / Zhu et al., ICDM 2016) — the anomalous
// subsequence detector behind the paper's Extended-STOMP baseline.
//
// For a query series Q, a reference series N and a subsequence length q,
// the AB-join matrix profile assigns each q-subsequence of Q the z-normalized
// Euclidean distance to its nearest neighbour among the q-subsequences of N.
// Large profile values = anomalous shapes (discords). STOMP computes the
// full profile in O(|Q| |N|) using incrementally-maintained dot products.
//
// Ownership & thread-safety: MatrixProfile is a plain value type owned by
// the caller; the join functions are pure (all scratch is call-local), so
// concurrent joins over shared read-only series are safe.

#ifndef MOCHE_TIMESERIES_MATRIX_PROFILE_H_
#define MOCHE_TIMESERIES_MATRIX_PROFILE_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace moche {
namespace ts {

struct MatrixProfile {
  std::vector<double> distances;      ///< per query subsequence
  std::vector<size_t> nearest_index;  ///< argmin position in the reference
};

/// AB-join: profile of `query` against `reference` with subsequence length
/// `sub_len`. Fails when either series is shorter than sub_len or
/// sub_len < 2. Constant (zero-variance) subsequences are handled by the
/// usual convention: distance 0 between two constants, sqrt(sub_len)
/// between a constant and a non-constant subsequence.
Result<MatrixProfile> StompAbJoin(const std::vector<double>& query,
                                  const std::vector<double>& reference,
                                  size_t sub_len);

/// Brute-force O(|Q| |N| q) reference implementation (tests only).
Result<MatrixProfile> BruteForceAbJoin(const std::vector<double>& query,
                                       const std::vector<double>& reference,
                                       size_t sub_len);

}  // namespace ts
}  // namespace moche

#endif  // MOCHE_TIMESERIES_MATRIX_PROFILE_H_
