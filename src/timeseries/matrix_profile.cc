#include "timeseries/matrix_profile.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/string_util.h"

namespace moche {
namespace ts {

namespace {

// Per-window mean and standard deviation from prefix sums.
struct WindowStats {
  std::vector<double> mean;
  std::vector<double> stddev;  // population stddev of each window
};

WindowStats ComputeWindowStats(const std::vector<double>& x, size_t w) {
  const size_t count = x.size() - w + 1;
  WindowStats stats;
  stats.mean.resize(count);
  stats.stddev.resize(count);
  std::vector<double> sum(x.size() + 1, 0.0);
  std::vector<double> sumsq(x.size() + 1, 0.0);
  for (size_t i = 0; i < x.size(); ++i) {
    sum[i + 1] = sum[i] + x[i];
    sumsq[i + 1] = sumsq[i] + x[i] * x[i];
  }
  const double dw = static_cast<double>(w);
  for (size_t i = 0; i < count; ++i) {
    const double mu = (sum[i + w] - sum[i]) / dw;
    const double var = (sumsq[i + w] - sumsq[i]) / dw - mu * mu;
    stats.mean[i] = mu;
    stats.stddev[i] = std::sqrt(std::max(var, 0.0));
  }
  return stats;
}

constexpr double kSigmaFloor = 1e-9;

// z-normalized distance from the dot product and window stats.
double ZNormDistance(double dot, double mu_q, double sd_q, double mu_n,
                     double sd_n, size_t w) {
  const double dw = static_cast<double>(w);
  const bool q_const = sd_q < kSigmaFloor;
  const bool n_const = sd_n < kSigmaFloor;
  if (q_const && n_const) return 0.0;
  if (q_const || n_const) return std::sqrt(dw);
  double corr = (dot - dw * mu_q * mu_n) / (dw * sd_q * sd_n);
  corr = std::clamp(corr, -1.0, 1.0);
  return std::sqrt(std::max(2.0 * dw * (1.0 - corr), 0.0));
}

Status ValidateJoin(const std::vector<double>& query,
                    const std::vector<double>& reference, size_t sub_len) {
  if (sub_len < 2) {
    return Status::InvalidArgument("subsequence length must be at least 2");
  }
  if (query.size() < sub_len || reference.size() < sub_len) {
    return Status::InvalidArgument(
        StrFormat("series too short for subsequence length %zu", sub_len));
  }
  return Status::OK();
}

}  // namespace

Result<MatrixProfile> StompAbJoin(const std::vector<double>& query,
                                  const std::vector<double>& reference,
                                  size_t sub_len) {
  MOCHE_RETURN_IF_ERROR(ValidateJoin(query, reference, sub_len));
  const size_t nq = query.size() - sub_len + 1;
  const size_t nn = reference.size() - sub_len + 1;
  const WindowStats qs = ComputeWindowStats(query, sub_len);
  const WindowStats ns = ComputeWindowStats(reference, sub_len);

  MatrixProfile profile;
  profile.distances.assign(nq, std::numeric_limits<double>::infinity());
  profile.nearest_index.assign(nq, 0);

  // First row of dot products: QT[j] = <Q[0..w), N[j..j+w)>.
  std::vector<double> qt(nn, 0.0);
  for (size_t j = 0; j < nn; ++j) {
    double dot = 0.0;
    for (size_t k = 0; k < sub_len; ++k) dot += query[k] * reference[j + k];
    qt[j] = dot;
  }
  // First column seeds for the diagonal updates: <Q[i..i+w), N[0..w)>.
  std::vector<double> first_col(nq, 0.0);
  for (size_t i = 0; i < nq; ++i) {
    double dot = 0.0;
    for (size_t k = 0; k < sub_len; ++k) dot += query[i + k] * reference[k];
    first_col[i] = dot;
  }

  for (size_t i = 0; i < nq; ++i) {
    if (i > 0) {
      // STOMP update, right to left so qt[j-1] is still from row i-1:
      // QT_i[j] = QT_{i-1}[j-1] - Q[i-1] N[j-1] + Q[i+w-1] N[j+w-1].
      for (size_t j = nn - 1; j >= 1; --j) {
        qt[j] = qt[j - 1] - query[i - 1] * reference[j - 1] +
                query[i + sub_len - 1] * reference[j + sub_len - 1];
      }
      qt[0] = first_col[i];
    }
    double best = std::numeric_limits<double>::infinity();
    size_t best_j = 0;
    for (size_t j = 0; j < nn; ++j) {
      const double d = ZNormDistance(qt[j], qs.mean[i], qs.stddev[i],
                                     ns.mean[j], ns.stddev[j], sub_len);
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    profile.distances[i] = best;
    profile.nearest_index[i] = best_j;
  }
  return profile;
}

Result<MatrixProfile> BruteForceAbJoin(const std::vector<double>& query,
                                       const std::vector<double>& reference,
                                       size_t sub_len) {
  MOCHE_RETURN_IF_ERROR(ValidateJoin(query, reference, sub_len));
  const size_t nq = query.size() - sub_len + 1;
  const size_t nn = reference.size() - sub_len + 1;
  const WindowStats qs = ComputeWindowStats(query, sub_len);
  const WindowStats ns = ComputeWindowStats(reference, sub_len);

  MatrixProfile profile;
  profile.distances.assign(nq, std::numeric_limits<double>::infinity());
  profile.nearest_index.assign(nq, 0);
  for (size_t i = 0; i < nq; ++i) {
    for (size_t j = 0; j < nn; ++j) {
      double dot = 0.0;
      for (size_t k = 0; k < sub_len; ++k) {
        dot += query[i + k] * reference[j + k];
      }
      const double d = ZNormDistance(dot, qs.mean[i], qs.stddev[i],
                                     ns.mean[j], ns.stddev[j], sub_len);
      if (d < profile.distances[i]) {
        profile.distances[i] = d;
        profile.nearest_index[i] = j;
      }
    }
  }
  return profile;
}

}  // namespace ts
}  // namespace moche
