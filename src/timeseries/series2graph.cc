#include "timeseries/series2graph.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace moche {
namespace ts {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Embedding: at position t, the vector of `dim` overlapping moving averages
// of width `conv`, spaced conv/2 apart. Covers conv + (dim-1)*conv/2 points.
size_t EmbeddingSpan(size_t conv, size_t dim) {
  return conv + (dim - 1) * (conv / 2 + 1);
}

std::vector<std::vector<double>> EmbedSeries(const std::vector<double>& x,
                                             size_t conv, size_t dim) {
  const size_t span = EmbeddingSpan(conv, dim);
  if (x.size() < span) return {};
  const size_t count = x.size() - span + 1;
  const size_t offset = conv / 2 + 1;

  std::vector<double> prefix(x.size() + 1, 0.0);
  for (size_t i = 0; i < x.size(); ++i) prefix[i + 1] = prefix[i] + x[i];
  auto window_mean = [&](size_t begin) {
    return (prefix[begin + conv] - prefix[begin]) / static_cast<double>(conv);
  };

  std::vector<std::vector<double>> out(count, std::vector<double>(dim));
  for (size_t t = 0; t < count; ++t) {
    for (size_t d = 0; d < dim; ++d) {
      out[t][d] = window_mean(t + d * offset);
    }
  }
  return out;
}

// Power iteration for the leading eigenvector of a small symmetric matrix.
std::vector<double> LeadingEigenvector(const std::vector<double>& matrix,
                                       size_t dim) {
  std::vector<double> v(dim, 1.0 / std::sqrt(static_cast<double>(dim)));
  std::vector<double> next(dim);
  for (int iter = 0; iter < 200; ++iter) {
    for (size_t i = 0; i < dim; ++i) {
      double s = 0.0;
      for (size_t j = 0; j < dim; ++j) s += matrix[i * dim + j] * v[j];
      next[i] = s;
    }
    double norm = 0.0;
    for (double c : next) norm += c * c;
    norm = std::sqrt(norm);
    if (norm < 1e-15) break;  // degenerate matrix; keep the previous vector
    for (size_t i = 0; i < dim; ++i) next[i] /= norm;
    v = next;
  }
  return v;
}

}  // namespace

Result<Series2Graph> Series2Graph::Fit(const std::vector<double>& train,
                                       const Series2GraphOptions& options) {
  Series2GraphOptions opt = options;
  if (opt.pattern_length < 3) {
    return Status::InvalidArgument("pattern length must be at least 3");
  }
  if (opt.conv_window == 0) {
    opt.conv_window = std::max<size_t>(2, opt.pattern_length / 3);
  }
  if (opt.num_sectors < 4) {
    return Status::InvalidArgument("need at least 4 angular sectors");
  }

  Series2Graph graph;
  graph.options_ = opt;
  const size_t dim = graph.embed_dim_;
  const auto embeddings = EmbedSeries(train, opt.conv_window, dim);
  if (embeddings.size() < 2) {
    return Status::InvalidArgument(
        StrFormat("training series too short (%zu points) for conv window "
                  "%zu", train.size(), opt.conv_window));
  }

  // Centroid and covariance of the embeddings.
  graph.embed_mean_.assign(dim, 0.0);
  for (const auto& e : embeddings) {
    for (size_t d = 0; d < dim; ++d) graph.embed_mean_[d] += e[d];
  }
  for (size_t d = 0; d < dim; ++d) {
    graph.embed_mean_[d] /= static_cast<double>(embeddings.size());
  }
  std::vector<double> cov(dim * dim, 0.0);
  for (const auto& e : embeddings) {
    for (size_t a = 0; a < dim; ++a) {
      for (size_t b = 0; b < dim; ++b) {
        cov[a * dim + b] += (e[a] - graph.embed_mean_[a]) *
                            (e[b] - graph.embed_mean_[b]);
      }
    }
  }
  for (double& c : cov) c /= static_cast<double>(embeddings.size());

  // First two principal axes (deflate the first before the second).
  graph.pc1_ = LeadingEigenvector(cov, dim);
  double lambda1 = 0.0;
  for (size_t a = 0; a < dim; ++a) {
    double s = 0.0;
    for (size_t b = 0; b < dim; ++b) s += cov[a * dim + b] * graph.pc1_[b];
    lambda1 += graph.pc1_[a] * s;
  }
  std::vector<double> deflated = cov;
  for (size_t a = 0; a < dim; ++a) {
    for (size_t b = 0; b < dim; ++b) {
      deflated[a * dim + b] -= lambda1 * graph.pc1_[a] * graph.pc1_[b];
    }
  }
  graph.pc2_ = LeadingEigenvector(deflated, dim);

  // Node path of the training series and transition edge weights.
  const std::vector<size_t> path = graph.SectorPath(train);
  const size_t s = opt.num_sectors;
  graph.edge_weight_.assign(s * s, 0.0);
  for (size_t t = 0; t + 1 < path.size(); ++t) {
    graph.edge_weight_[path[t] * s + path[t + 1]] += 1.0;
  }
  graph.out_degree_.assign(s, 0.0);
  for (size_t a = 0; a < s; ++a) {
    for (size_t b = 0; b < s; ++b) {
      if (graph.edge_weight_[a * s + b] > 0.0) {
        graph.out_degree_[a] += 1.0;
        ++graph.nonzero_edges_;
      }
    }
  }
  return graph;
}

std::vector<size_t> Series2Graph::SectorPath(
    const std::vector<double>& x) const {
  const auto embeddings =
      EmbedSeries(x, options_.conv_window, embed_dim_);
  std::vector<size_t> path;
  path.reserve(embeddings.size());
  for (const auto& e : embeddings) {
    double px = 0.0;
    double py = 0.0;
    for (size_t d = 0; d < embed_dim_; ++d) {
      const double centered = e[d] - embed_mean_[d];
      px += centered * pc1_[d];
      py += centered * pc2_[d];
    }
    double angle = std::atan2(py, px);  // [-pi, pi]
    if (angle < 0) angle += 2.0 * kPi;
    size_t sector = static_cast<size_t>(
        angle / (2.0 * kPi) * static_cast<double>(options_.num_sectors));
    if (sector >= options_.num_sectors) sector = options_.num_sectors - 1;
    path.push_back(sector);
  }
  return path;
}

Result<std::vector<double>> Series2Graph::AnomalyScores(
    const std::vector<double>& query) const {
  const size_t q = options_.pattern_length;
  if (query.size() < q) {
    return Status::InvalidArgument("query shorter than the pattern length");
  }
  const std::vector<size_t> path = SectorPath(query);
  if (path.size() < 2) {
    return Status::InvalidArgument(
        "query too short for the embedding windows");
  }
  const size_t s = options_.num_sectors;
  // Per-transition normality along the query's node path.
  std::vector<double> edge_norm(path.size() - 1);
  for (size_t t = 0; t + 1 < path.size(); ++t) {
    const double w = edge_weight_[path[t] * s + path[t + 1]];
    const double deg = out_degree_[path[t]];
    edge_norm[t] = w * std::max(deg - 1.0, 0.0);
  }

  // A q-subsequence starting at i covers embedding positions
  // [i, i + q - span]; average its transitions (clamped to available range).
  const size_t num_sub = query.size() - q + 1;
  std::vector<double> scores(num_sub);
  std::vector<double> prefix(edge_norm.size() + 1, 0.0);
  for (size_t t = 0; t < edge_norm.size(); ++t) {
    prefix[t + 1] = prefix[t] + edge_norm[t];
  }
  for (size_t i = 0; i < num_sub; ++i) {
    const size_t lo = std::min(i, edge_norm.size() - 1);
    const size_t hi = std::min(i + q - 1, edge_norm.size());
    const size_t count = hi > lo ? hi - lo : 1;
    const double normality =
        (prefix[std::max(hi, lo + 1)] - prefix[lo]) /
        static_cast<double>(count);
    scores[i] = 1.0 / (1.0 + normality);
  }
  return scores;
}

}  // namespace ts
}  // namespace moche
