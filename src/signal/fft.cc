#include "signal/fft.h"

#include <cmath>

#include "util/logging.h"

namespace moche {
namespace signal {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Iterative radix-2 Cooley-Tukey; data.size() must be a power of two.
void FftRadix2(std::vector<Complex>* data, bool inverse) {
  const size_t n = data->size();
  if (n <= 1) return;
  std::vector<Complex>& a = *data;

  // bit-reversal permutation
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (size_t j = 0; j < len / 2; ++j) {
        const Complex u = a[i + j];
        const Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// Bluestein's chirp-z transform for arbitrary n, built on a padded radix-2
// convolution: X[k] = b*_k sum_j (a_j b_j) c_{k-j} with b_j = exp(-i pi j^2/n).
void FftBluestein(std::vector<Complex>* data, bool inverse) {
  const size_t n = data->size();
  const double sign = inverse ? 1.0 : -1.0;

  std::vector<Complex> chirp(n);
  for (size_t j = 0; j < n; ++j) {
    // j^2 mod 2n keeps the argument small for large n.
    const double jj = static_cast<double>((j * j) % (2 * n));
    const double angle = sign * kPi * jj / static_cast<double>(n);
    chirp[j] = Complex(std::cos(angle), std::sin(angle));
  }

  const size_t padded = NextPowerOfTwo(2 * n - 1);
  std::vector<Complex> a(padded, Complex(0, 0));
  std::vector<Complex> b(padded, Complex(0, 0));
  for (size_t j = 0; j < n; ++j) a[j] = (*data)[j] * chirp[j];
  b[0] = std::conj(chirp[0]);
  for (size_t j = 1; j < n; ++j) {
    b[j] = std::conj(chirp[j]);
    b[padded - j] = std::conj(chirp[j]);
  }

  FftRadix2(&a, false);
  FftRadix2(&b, false);
  for (size_t j = 0; j < padded; ++j) a[j] *= b[j];
  FftRadix2(&a, true);
  const double scale = 1.0 / static_cast<double>(padded);
  for (size_t k = 0; k < n; ++k) {
    (*data)[k] = a[k] * scale * chirp[k];
  }
}

}  // namespace

bool IsPowerOfTwo(size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Fft(std::vector<Complex>* data) {
  if (data->size() <= 1) return;
  if (IsPowerOfTwo(data->size())) {
    FftRadix2(data, false);
  } else {
    FftBluestein(data, false);
  }
}

void Ifft(std::vector<Complex>* data) {
  const size_t n = data->size();
  if (n <= 1) return;
  if (IsPowerOfTwo(n)) {
    FftRadix2(data, true);
    for (Complex& c : *data) c /= static_cast<double>(n);
  } else {
    FftBluestein(data, true);
    for (Complex& c : *data) c /= static_cast<double>(n);
  }
}

std::vector<Complex> RealFft(const std::vector<double>& x) {
  std::vector<Complex> data(x.size());
  for (size_t i = 0; i < x.size(); ++i) data[i] = Complex(x[i], 0.0);
  Fft(&data);
  return data;
}

std::vector<double> CircularConvolve(const std::vector<double>& a,
                                     const std::vector<double>& b) {
  MOCHE_CHECK(a.size() == b.size());
  const size_t n = a.size();
  if (n == 0) return {};
  std::vector<Complex> fa(n);
  std::vector<Complex> fb(n);
  for (size_t i = 0; i < n; ++i) {
    fa[i] = Complex(a[i], 0.0);
    fb[i] = Complex(b[i], 0.0);
  }
  Fft(&fa);
  Fft(&fb);
  for (size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  Ifft(&fa);
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = fa[i].real();
  return out;
}

}  // namespace signal
}  // namespace moche
