// Fast Fourier transform over std::complex<double>.
//
// Power-of-two lengths use iterative radix-2 Cooley-Tukey; other lengths use
// Bluestein's chirp-z algorithm (which itself runs on a padded radix-2
// transform), so any length is O(n log n). This is the backbone of the
// Spectral Residual preference-list generator and of the FFT-accelerated
// sliding-dot-product in the matrix-profile substrate.
//
// Ownership & thread-safety: pure free functions transforming caller-owned
// buffers; no global tables or retained state, safe from any thread.

#ifndef MOCHE_SIGNAL_FFT_H_
#define MOCHE_SIGNAL_FFT_H_

#include <complex>
#include <vector>

namespace moche {
namespace signal {

using Complex = std::complex<double>;

/// In-place forward DFT: X[k] = sum_j x[j] exp(-2 pi i j k / n).
void Fft(std::vector<Complex>* data);

/// In-place inverse DFT (includes the 1/n normalization).
void Ifft(std::vector<Complex>* data);

/// Forward DFT of a real sequence (returns the full complex spectrum).
std::vector<Complex> RealFft(const std::vector<double>& x);

/// True iff n is a power of two (n >= 1).
bool IsPowerOfTwo(size_t n);

/// Smallest power of two >= n.
size_t NextPowerOfTwo(size_t n);

/// Circular convolution via FFT; a and b must have the same length.
std::vector<double> CircularConvolve(const std::vector<double>& a,
                                     const std::vector<double>& b);

}  // namespace signal
}  // namespace moche

#endif  // MOCHE_SIGNAL_FFT_H_
