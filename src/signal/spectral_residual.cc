#include "signal/spectral_residual.h"

#include <algorithm>
#include <cmath>

#include "signal/fft.h"

namespace moche {
namespace signal {

namespace {

// Centered moving average with edge clamping; window forced to odd.
std::vector<double> MovingAverage(const std::vector<double>& x,
                                  size_t window) {
  if (window < 1) window = 1;
  if (window % 2 == 0) ++window;
  const size_t half = window / 2;
  const size_t n = x.size();
  std::vector<double> out(n);
  // prefix sums for O(n)
  std::vector<double> prefix(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + x[i];
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i >= half ? i - half : 0;
    const size_t hi = std::min(n - 1, i + half);
    out[i] = (prefix[hi + 1] - prefix[lo]) /
             static_cast<double>(hi - lo + 1);
  }
  return out;
}

}  // namespace

Result<std::vector<double>> SpectralResidualScores(
    const std::vector<double>& series, const SpectralResidualOptions& opt) {
  const size_t n = series.size();
  if (n < 3) {
    return Status::InvalidArgument(
        "spectral residual needs at least 3 points");
  }

  // Extend the series by extrapolated points so the last real observations
  // are not treated as a boundary artifact (Ren et al. Sec. 3.1).
  std::vector<double> x = series;
  const size_t g = std::min(opt.gradient_points, n - 1);
  if (opt.extension_points > 0 && g > 0) {
    double grad_sum = 0.0;
    for (size_t i = 0; i < g; ++i) {
      const size_t j = n - 1 - i;
      grad_sum += (series[n - 1] - series[j - 1]) / static_cast<double>(i + 1);
    }
    const double grad = grad_sum / static_cast<double>(g);
    const double anchor = series[n - 1 - std::min<size_t>(1, n - 1)];
    for (size_t e = 0; e < opt.extension_points; ++e) {
      x.push_back(anchor + grad * static_cast<double>(g));
    }
  }

  // FFT -> log amplitude -> residual -> saliency.
  std::vector<Complex> spectrum = RealFft(x);
  const size_t total = spectrum.size();
  std::vector<double> amplitude(total);
  std::vector<double> log_amp(total);
  for (size_t i = 0; i < total; ++i) {
    amplitude[i] = std::abs(spectrum[i]);
    log_amp[i] = std::log(amplitude[i] + 1e-12);
  }
  const std::vector<double> avg_log = MovingAverage(log_amp, opt.avg_filter_size);
  for (size_t i = 0; i < total; ++i) {
    const double residual = log_amp[i] - avg_log[i];
    // exp(residual + i*phase) = exp(residual) * spectrum / |spectrum|
    const double scale = std::exp(residual) / (amplitude[i] + 1e-12);
    spectrum[i] *= scale;
  }
  Ifft(&spectrum);

  std::vector<double> saliency(n);
  for (size_t i = 0; i < n; ++i) saliency[i] = std::abs(spectrum[i]);

  // Relative saliency scores: (S - mavg(S)) / mavg(S).
  const std::vector<double> local_avg = MovingAverage(saliency, opt.score_window);
  std::vector<double> scores(n);
  for (size_t i = 0; i < n; ++i) {
    scores[i] = (saliency[i] - local_avg[i]) / (local_avg[i] + 1e-12);
  }
  return scores;
}

}  // namespace signal
}  // namespace moche
