// Spectral Residual saliency (Ren et al., "Time-Series Anomaly Detection
// Service at Microsoft", KDD 2019) — the outlier scorer the paper uses to
// generate preference lists for the time-series experiments (Section 6.1.1).
//
// Pipeline: FFT -> log amplitude -> subtract a moving-average of the log
// amplitude (the "spectral residual") -> inverse FFT with original phase ->
// saliency map. Points with salient spectral residual stand out from the
// periodic/trend structure of the series. Scores are the relative saliency
// (S - mavg(S)) / mavg(S) of the paper, so larger = more anomalous.
//
// Ownership & thread-safety: pure free functions — each call owns its
// transform buffers and returns scores by value; safe from any thread.

#ifndef MOCHE_SIGNAL_SPECTRAL_RESIDUAL_H_
#define MOCHE_SIGNAL_SPECTRAL_RESIDUAL_H_

#include <vector>

#include "util/status.h"

namespace moche {
namespace signal {

struct SpectralResidualOptions {
  /// Window of the moving average applied to the log spectrum (q in the
  /// paper; 3 is the published default).
  size_t avg_filter_size = 3;

  /// Window of the moving average used to normalize the saliency map into
  /// scores (z in the paper; 21 is the published default).
  size_t score_window = 21;

  /// Number of estimated points appended before the FFT so the tail of the
  /// series is not penalized by the boundary (kappa extension).
  size_t extension_points = 5;

  /// How many trailing gradients are averaged to extrapolate the extension.
  size_t gradient_points = 5;
};

/// Computes per-point anomaly scores for `series` (same length as input).
/// Fails on series shorter than 3 points.
Result<std::vector<double>> SpectralResidualScores(
    const std::vector<double>& series,
    const SpectralResidualOptions& options = {});

}  // namespace signal
}  // namespace moche

#endif  // MOCHE_SIGNAL_SPECTRAL_RESIDUAL_H_
