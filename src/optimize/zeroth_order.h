// Random-gradient-free (RGF) zeroth-order minimization, after Cheng et al.,
// "Query-Efficient Hard-label Black-box Attack: An Optimization-based
// Approach" (ICLR 2019). The paper's Extended-GRACE baseline uses exactly
// this to minimize its non-differentiable KS objective (Section 6.1.2).
//
// Each iteration estimates a gradient from `num_directions` random Gaussian
// directions u via (f(x + beta u) - f(x)) / beta * u, then takes a descent
// step; iterates are optionally clamped to the unit box.
//
// Ownership & thread-safety: Minimize is a free function whose iterate,
// direction buffers, and Rng all live in the call; the objective callback
// is borrowed for the call only. Concurrent minimizations are independent
// (thread-safety of the callback itself is the caller's business).

#ifndef MOCHE_OPTIMIZE_ZEROTH_ORDER_H_
#define MOCHE_OPTIMIZE_ZEROTH_ORDER_H_

#include <functional>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace moche {
namespace optimize {

struct ZerothOrderOptions {
  size_t max_iterations = 1000;
  size_t num_directions = 10;   ///< random directions per gradient estimate
  double smoothing = 0.05;      ///< beta: finite-difference probe length
  double step_size = 0.1;       ///< eta: descent step
  /// Stop as soon as f(x) drops below this value.
  double target = -std::numeric_limits<double>::infinity();
  bool project_unit_box = true; ///< clamp iterates to [0, 1]^d
};

struct ZerothOrderResult {
  std::vector<double> x;        ///< best iterate found
  double value = 0.0;           ///< f(best iterate)
  size_t iterations = 0;
  size_t function_evals = 0;
  bool reached_target = false;
};

/// Minimizes f starting from x0. f must be callable on any point of the
/// (optionally clamped) search space; it is treated as a black box.
ZerothOrderResult MinimizeRgf(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, const ZerothOrderOptions& options, Rng* rng);

}  // namespace optimize
}  // namespace moche

#endif  // MOCHE_OPTIMIZE_ZEROTH_ORDER_H_
