#include "optimize/zeroth_order.h"

#include <algorithm>
#include <cmath>

namespace moche {
namespace optimize {

namespace {

void ProjectUnitBox(std::vector<double>* x) {
  for (double& v : *x) v = std::clamp(v, 0.0, 1.0);
}

}  // namespace

ZerothOrderResult MinimizeRgf(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, const ZerothOrderOptions& opt, Rng* rng) {
  ZerothOrderResult result;
  const size_t d = x0.size();
  if (opt.project_unit_box) ProjectUnitBox(&x0);

  std::vector<double> x = std::move(x0);
  double fx = f(x);
  ++result.function_evals;
  result.x = x;
  result.value = fx;
  if (fx < opt.target) {
    result.reached_target = true;
    return result;
  }

  std::vector<double> grad(d);
  std::vector<double> probe(d);
  for (size_t iter = 0; iter < opt.max_iterations; ++iter) {
    ++result.iterations;
    std::fill(grad.begin(), grad.end(), 0.0);

    for (size_t dir = 0; dir < opt.num_directions; ++dir) {
      // Gaussian direction, normalized.
      double norm_sq = 0.0;
      for (size_t i = 0; i < d; ++i) {
        probe[i] = rng->Normal();
        norm_sq += probe[i] * probe[i];
      }
      const double norm = std::sqrt(std::max(norm_sq, 1e-24));
      for (size_t i = 0; i < d; ++i) probe[i] /= norm;

      std::vector<double> x_probe = x;
      for (size_t i = 0; i < d; ++i) x_probe[i] += opt.smoothing * probe[i];
      if (opt.project_unit_box) ProjectUnitBox(&x_probe);
      const double f_probe = f(x_probe);
      ++result.function_evals;

      const double slope = (f_probe - fx) / opt.smoothing;
      for (size_t i = 0; i < d; ++i) grad[i] += slope * probe[i];
    }
    const double inv_q = 1.0 / static_cast<double>(opt.num_directions);
    for (size_t i = 0; i < d; ++i) grad[i] *= inv_q;

    for (size_t i = 0; i < d; ++i) x[i] -= opt.step_size * grad[i];
    if (opt.project_unit_box) ProjectUnitBox(&x);
    fx = f(x);
    ++result.function_evals;

    if (fx < result.value) {
      result.value = fx;
      result.x = x;
    }
    if (result.value < opt.target) {
      result.reached_target = true;
      return result;
    }
  }
  return result;
}

}  // namespace optimize
}  // namespace moche
