#include "sketch/kll_sketch.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/simd.h"
#include "util/string_util.h"

namespace moche {
namespace sketch {

namespace {

// SplitMix64 step (Steele/Lea/Flood): a tiny full-period generator whose
// whole state is one u64, so the coin stream serializes in 8 bytes. The
// project's mt19937_64 (util/rng.h) would add ~2.5 KB of state to a
// structure whose entire point is being small.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Result<KllSketch> KllSketch::Create(const KllOptions& options) {
  if (options.capacity < kMinCapacity || options.capacity > kMaxCapacity) {
    return Status::InvalidArgument(
        StrFormat("KLL capacity %zu outside [%zu, %zu]", options.capacity,
                  kMinCapacity, kMaxCapacity));
  }
  KllSketch sketch;
  sketch.capacity_ = options.capacity;
  sketch.seed_ = options.seed;
  sketch.coin_state_ = options.seed;
  sketch.levels_.emplace_back();
  sketch.levels_[0].reserve(options.capacity);
  return sketch;
}

bool KllSketch::NextCoin() { return (SplitMix64(&coin_state_) >> 63) != 0; }

void KllSketch::CompactLevel(size_t i) {
  // Grow the ladder BEFORE taking references: emplace_back can reallocate
  // levels_ and would dangle them.
  if (i + 1 == levels_.size()) levels_.emplace_back();
  std::vector<double>& level = levels_[i];
  // Update requires finite values and DeserializeFrom re-validates, so no
  // NaN can reach this sort (see the file header of kll_sketch.h).
  // moche-lint: allow(sort-doubles): finite by Update's precondition
  std::sort(level.begin(), level.end());
  // An odd size keeps the minimum behind at the same level and weight — a
  // retained item introduces no rank error, so only the even slice that is
  // actually halved charges the bound.
  const size_t start = level.size() % 2;
  const size_t offset = NextCoin() ? 1 : 0;
  std::vector<double>& up = levels_[i + 1];
  for (size_t j = start + offset; j < level.size(); j += 2) {
    up.push_back(level[j]);
  }
  error_bound_ += uint64_t{1} << i;
  level.resize(start);
}

void KllSketch::CompactFrom(size_t i) {
  // CompactLevel(i) leaves level i holding at most one item and can only
  // push level i + 1 over capacity, so one upward sweep restores the
  // size < capacity invariant everywhere.
  while (i < levels_.size() && levels_[i].size() >= capacity_) {
    CompactLevel(i);
    ++i;
  }
}

void KllSketch::Update(double value) {
  levels_[0].push_back(value);
  ++count_;
  CompactFrom(0);
}

Status KllSketch::Merge(const KllSketch& other) {
  if (other.capacity_ != capacity_) {
    return Status::InvalidArgument(
        StrFormat("cannot merge KLL sketches of capacity %zu and %zu",
                  capacity_, other.capacity_));
  }
  if (&other == this) {
    const KllSketch copy = *this;
    return Merge(copy);
  }
  count_ += other.count_;
  error_bound_ += other.error_bound_;
  if (other.levels_.size() > levels_.size()) {
    levels_.resize(other.levels_.size());
  }
  for (size_t i = 0; i < other.levels_.size(); ++i) {
    levels_[i].insert(levels_[i].end(), other.levels_[i].begin(),
                      other.levels_[i].end());
  }
  // A concatenated level can exceed capacity by more than one, but a single
  // compaction still drains it to <= 1 item (the whole even slice is
  // halved at once), so one bottom-up pass suffices.
  for (size_t i = 0; i < levels_.size(); ++i) CompactFrom(i);
  return Status::OK();
}

uint64_t KllSketch::EstimateRank(double x) const {
  uint64_t rank = 0;
  for (size_t i = 0; i < levels_.size(); ++i) {
    const uint64_t weight = uint64_t{1} << i;
    for (double v : levels_[i]) {
      if (v <= x) rank += weight;
    }
  }
  return rank;
}

Result<double> KllSketch::EstimateQuantile(double phi) const {
  if (!(phi >= 0.0 && phi <= 1.0)) {
    return Status::InvalidArgument(
        "quantile rank phi must lie in [0, 1]");
  }
  if (count_ == 0) {
    return Status::InvalidArgument("empty sketch has no quantiles");
  }
  std::vector<double> values;
  std::vector<double> cum_weights;
  FlattenTo(&values, &cum_weights);
  const double target = phi * static_cast<double>(count_);
  for (size_t i = 0; i < values.size(); ++i) {
    if (cum_weights[i] >= target) return values[i];
  }
  return values.back();
}

size_t KllSketch::RetainedItems() const {
  size_t items = 0;
  for (const std::vector<double>& level : levels_) items += level.size();
  return items;
}

size_t KllSketch::FootprintBytes() const {
  size_t bytes = levels_.capacity() * sizeof(std::vector<double>);
  for (const std::vector<double>& level : levels_) {
    bytes += level.capacity() * sizeof(double);
  }
  return bytes;
}

void KllSketch::FlattenTo(std::vector<double>* values,
                          std::vector<double>* cumulative_weights) const {
  std::vector<std::pair<double, uint64_t>> items;
  items.reserve(RetainedItems());
  for (size_t i = 0; i < levels_.size(); ++i) {
    const uint64_t weight = uint64_t{1} << i;
    for (double v : levels_[i]) items.emplace_back(v, weight);
  }
  // moche-lint: allow(sort-doubles): finite by Update's precondition
  std::sort(items.begin(), items.end(),
            [](const std::pair<double, uint64_t>& a,
               const std::pair<double, uint64_t>& b) {
              return a.first < b.first;
            });
  values->clear();
  cumulative_weights->clear();
  values->reserve(items.size());
  cumulative_weights->reserve(items.size());
  uint64_t cumulative = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    cumulative += items[i].second;
    // Merge ties (including -0.0 vs +0.0, which compare equal) into one
    // grid point carrying the combined weight.
    if (!values->empty() && values->back() == items[i].first) {
      cumulative_weights->back() = static_cast<double>(cumulative);
    } else {
      values->push_back(items[i].first);
      cumulative_weights->push_back(static_cast<double>(cumulative));
    }
  }
}

void KllSketch::SerializeTo(std::string* out) const {
  bin::AppendU64Le(static_cast<uint64_t>(capacity_), out);
  bin::AppendU64Le(seed_, out);
  bin::AppendU64Le(coin_state_, out);
  bin::AppendU64Le(count_, out);
  bin::AppendU64Le(error_bound_, out);
  bin::AppendU64Le(static_cast<uint64_t>(levels_.size()), out);
  for (const std::vector<double>& level : levels_) {
    bin::AppendDoubleArray(level, out);
  }
}

Result<KllSketch> KllSketch::DeserializeFrom(bin::Reader* reader) {
  uint64_t capacity = 0;
  uint64_t seed = 0;
  uint64_t coin_state = 0;
  uint64_t count = 0;
  uint64_t error_bound = 0;
  uint64_t num_levels = 0;
  if (!reader->ReadU64Le(&capacity) || !reader->ReadU64Le(&seed) ||
      !reader->ReadU64Le(&coin_state) || !reader->ReadU64Le(&count) ||
      !reader->ReadU64Le(&error_bound) || !reader->ReadU64Le(&num_levels)) {
    return Status::OutOfRange("KLL sketch: snapshot truncated");
  }
  if (capacity < kMinCapacity || capacity > kMaxCapacity) {
    return Status::InvalidArgument(StrFormat(
        "KLL sketch: capacity %llu outside [%zu, %zu]",
        static_cast<unsigned long long>(capacity), kMinCapacity,
        kMaxCapacity));
  }
  if (num_levels == 0 || num_levels > kMaxLevels) {
    return Status::InvalidArgument(StrFormat(
        "KLL sketch: %llu levels outside [1, %zu]",
        static_cast<unsigned long long>(num_levels), kMaxLevels));
  }
  KllSketch sketch;
  sketch.capacity_ = static_cast<size_t>(capacity);
  sketch.seed_ = seed;
  sketch.coin_state_ = coin_state;
  sketch.count_ = count;
  sketch.error_bound_ = error_bound;
  sketch.levels_.resize(static_cast<size_t>(num_levels));
  uint64_t weight_sum = 0;
  for (size_t i = 0; i < sketch.levels_.size(); ++i) {
    if (!reader->ReadDoubleArray(&sketch.levels_[i])) {
      return Status::OutOfRange(
          StrFormat("KLL sketch: level %zu truncated", i));
    }
    // Every writer state keeps levels strictly below capacity (CompactFrom
    // runs before any serialization can happen); anything larger is
    // corrupted or hand-spliced.
    if (sketch.levels_[i].size() >= sketch.capacity_) {
      return Status::InvalidArgument(StrFormat(
          "KLL sketch: level %zu holds %zu items, capacity is %zu", i,
          sketch.levels_[i].size(), sketch.capacity_));
    }
    if (!simd::ActiveKernels().all_finite(sketch.levels_[i].data(),
                                          sketch.levels_[i].size())) {
      return Status::InvalidArgument(
          StrFormat("KLL sketch: level %zu holds a non-finite value", i));
    }
    const uint64_t size = static_cast<uint64_t>(sketch.levels_[i].size());
    if (size > 0 && i >= 64) {
      return Status::InvalidArgument("KLL sketch: level weight overflows");
    }
    const uint64_t term = size << i;
    if (size > 0 && term / size != (uint64_t{1} << i)) {
      return Status::InvalidArgument("KLL sketch: level weight overflows");
    }
    weight_sum += term;
    if (weight_sum < term) {
      return Status::InvalidArgument("KLL sketch: retained weight overflows");
    }
  }
  // Compaction conserves weight, so the retained weight must reproduce the
  // recorded count exactly — the cheapest whole-structure consistency
  // check a CRC-clean splice can be caught by.
  if (weight_sum != count) {
    return Status::InvalidArgument(StrFormat(
        "KLL sketch: retained weight %llu does not match count %llu",
        static_cast<unsigned long long>(weight_sum),
        static_cast<unsigned long long>(count)));
  }
  return sketch;
}

}  // namespace sketch
}  // namespace moche
