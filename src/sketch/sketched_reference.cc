#include "sketch/sketched_reference.h"

#include <utility>

#include "ks/ks_test.h"

namespace moche {
namespace sketch {

Result<SketchedReference> SketchedReference::Build(KllSketch sketch,
                                                   double alpha) {
  MOCHE_RETURN_IF_ERROR(ks::ValidateAlpha(alpha));
  if (sketch.count() == 0) {
    return Status::InvalidArgument(
        "cannot build a sketched reference from an empty sketch");
  }
  SketchedReference reference;
  reference.sketch_ = std::move(sketch);
  reference.alpha_ = alpha;
  reference.sketch_.FlattenTo(&reference.values_,
                              &reference.cumulative_weights_);
  return reference;
}

Result<SketchedReference> SketchedReference::FromSample(
    const std::vector<double>& sample, double alpha,
    const KllOptions& options) {
  MOCHE_RETURN_IF_ERROR(ks::ValidateSample(sample, "reference set"));
  MOCHE_ASSIGN_OR_RETURN(KllSketch sketch, KllSketch::Create(options));
  for (double v : sample) sketch.Update(v);
  return Build(std::move(sketch), alpha);
}

double SketchedReference::StatisticAgainstSorted(
    const std::vector<double>& test_sorted) const {
  // Merged sweep over the union grid, mirroring ks::StatisticSorted: both
  // step functions are constant between grid points, so the sup is
  // attained immediately after some grid point's jump. values_ is
  // strictly ascending (ties merged at flatten time); the test side may
  // repeat.
  const double n = static_cast<double>(count());
  const double m = static_cast<double>(test_sorted.size());
  size_t i = 0;
  size_t j = 0;
  double d = 0.0;
  while (i < values_.size() || j < test_sorted.size()) {
    double x;
    if (i < values_.size() &&
        (j >= test_sorted.size() || values_[i] <= test_sorted[j])) {
      x = values_[i];
    } else {
      x = test_sorted[j];
    }
    if (i < values_.size() && values_[i] == x) ++i;
    while (j < test_sorted.size() && test_sorted[j] == x) ++j;
    const double g = (i > 0 ? cumulative_weights_[i - 1] : 0.0) / n;
    const double ft = static_cast<double>(j) / m;
    const double diff = g > ft ? g - ft : ft - g;
    if (diff > d) d = diff;
  }
  return d;
}

SketchTriage SketchedReference::Classify(double statistic, size_t m) const {
  SketchTriage triage;
  triage.statistic = statistic;
  triage.epsilon = epsilon();
  triage.n = static_cast<size_t>(count());
  triage.m = m;
  triage.threshold =
      ks::internal::ThresholdUnchecked(alpha_, triage.n, triage.m);
  const double lower = statistic - triage.epsilon;
  const double upper = statistic + triage.epsilon;
  triage.lower = lower > 0.0 ? lower : 0.0;
  triage.upper = upper < 1.0 ? upper : 1.0;
  // The exact decision is reject iff D > p. Certifying needs the whole
  // bracket on one side of p with kTriageMargin to spare; the margin only
  // widens the kUncertain band (see sketched_reference.h).
  if (triage.lower > triage.threshold + kTriageMargin) {
    triage.verdict = TriageVerdict::kCertainFail;
  } else if (triage.upper + kTriageMargin <= triage.threshold) {
    triage.verdict = TriageVerdict::kCertainPass;
  } else {
    triage.verdict = TriageVerdict::kUncertain;
  }
  return triage;
}

size_t SketchedReference::FootprintBytes() const {
  return sketch_.FootprintBytes() +
         (values_.capacity() + cumulative_weights_.capacity()) *
             sizeof(double);
}

void SketchedReference::SerializeTo(std::string* out) const {
  bin::AppendDoubleLe(alpha_, out);
  sketch_.SerializeTo(out);
}

Result<SketchedReference> SketchedReference::DeserializeFrom(
    bin::Reader* reader) {
  double alpha = 0.0;
  if (!reader->ReadDoubleLe(&alpha)) {
    return Status::OutOfRange("sketched reference: snapshot truncated");
  }
  MOCHE_ASSIGN_OR_RETURN(KllSketch sketch,
                         KllSketch::DeserializeFrom(reader));
  return Build(std::move(sketch), alpha);
}

}  // namespace sketch
}  // namespace moche
