// KllSketch: a dependency-free KLL-style mergeable quantile sketch with a
// deterministic, per-instance *certified* rank-error bound.
//
// The sketch keeps a stack of levels; an item retained at level i stands
// for 2^i original observations (its weight). Updates land in level 0;
// when a level reaches the compaction capacity k its items are sorted and
// every other one — even or odd positions, chosen by a seeded coin — is
// promoted to the next level with doubled weight. The estimated rank of x,
// EstimateRank(x) = sum of the weights of retained items <= x, therefore
// answers ECDF queries from O(k log(n/k)) memory instead of the O(n) an
// exact sorted sample costs.
//
// Certified bound. One compaction of an even slice at weight w changes the
// weighted count of items <= x by at most w, for EVERY query point x
// simultaneously: the slice contributes w*r before (r of its items are
// <= x, they are contiguous after the sort) and 2w*floor(r/2) or
// 2w*ceil(r/2) after. rank_error_bound() accumulates exactly one w per
// compaction, so
//
//   | EstimateRank(x) - TrueRank(x) | <= rank_error_bound()   for all x,
//
// an exact integer invariant, not a probabilistic tail bound. This is why
// the levels use a UNIFORM capacity k rather than classic KLL's
// geometrically shrinking low-level capacities: tiny low levels would make
// the deterministic bound useless (~n/8) even though the high-probability
// bound stays fine. With uniform k the bound is ~ n * log2(n/k) / k; the
// derivation, parameter guidance, and the triage bracket built on top live
// in docs/SKETCH.md.
//
// Determinism (the project's seeded-rng rule): the compaction coins come
// from a SplitMix64 stream seeded by KllOptions::seed, so the sketch state
// — and every byte SerializeTo emits — is a pure function of the insertion
// sequence, the merge order, and the options. The compaction *count* (and
// hence rank_error_bound) depends only on (n, k), never on values or
// coins, which is what makes the epsilon-monotonicity-in-k tests exact.
//
// Input convention: Update requires a finite value — callers validate
// (ks::ValidateSample up front, per the NaN conventions in
// docs/ARCHITECTURE.md) so compaction never sorts a NaN. DeserializeFrom
// re-validates everything, including finiteness, against hostile bytes.
//
// Ownership & thread-safety: a KllSketch is mutable single-writer state —
// build or merge it from one thread, then share it freely once no more
// updates happen (all query entry points are const). SketchedReference
// (sketched_reference.h) is the immutable shared form the rest of the
// stack uses.

#ifndef MOCHE_SKETCH_KLL_SKETCH_H_
#define MOCHE_SKETCH_KLL_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/binary_io.h"
#include "util/status.h"

namespace moche {
namespace sketch {

struct KllOptions {
  /// Per-level compaction buffer capacity k. Larger k = more memory, a
  /// tighter certified bound (epsilon ~ log2(n/k)/k). Must lie in
  /// [kMinCapacity, kMaxCapacity].
  size_t capacity = 1024;

  /// Seed of the SplitMix64 compaction-coin stream. Any value is valid;
  /// the default reproduces the committed benchmarks and golden tests.
  uint64_t seed = 0x6d6f636865736b31ull;  // "mochesk1"
};

class KllSketch {
 public:
  static constexpr size_t kMinCapacity = 8;
  static constexpr size_t kMaxCapacity = size_t{1} << 20;
  /// Hard ceiling on the level stack: weights are 2^i, so 64 levels cover
  /// every representable count. DeserializeFrom rejects anything deeper.
  static constexpr size_t kMaxLevels = 64;

  /// Validates the options. The empty sketch (count() == 0) is valid;
  /// SketchedReference::Build is where non-emptiness is required.
  static Result<KllSketch> Create(const KllOptions& options = {});

  /// Inserts one observation. Precondition: std::isfinite(value) — callers
  /// validate (see the file header); a NaN here would poison the
  /// compaction sort.
  void Update(double value);

  /// Folds `other` into this sketch. Requires equal capacities (the
  /// certified-bound bookkeeping is per-capacity); the seeds may differ —
  /// the surviving coin stream is this sketch's. count() adds exactly and
  /// rank_error_bound() adds plus any merge-triggered compactions, so the
  /// merged bound certifies the union. Self-merge doubles the sketch.
  Status Merge(const KllSketch& other);

  /// Exact number of observations folded in (weight is conserved by
  /// compaction, so this equals the total retained weight).
  uint64_t count() const { return count_; }

  /// The certified uniform rank-error bound (see the file header).
  uint64_t rank_error_bound() const { return error_bound_; }

  /// rank_error_bound() / count() — the certified uniform ECDF error.
  /// 0 for an empty sketch.
  double epsilon() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(error_bound_) /
                             static_cast<double>(count_);
  }

  size_t capacity() const { return capacity_; }
  uint64_t seed() const { return seed_; }

  /// Estimated number of observations <= x; within rank_error_bound() of
  /// the true count for every finite x.
  uint64_t EstimateRank(double x) const;

  /// Smallest retained value whose cumulative weight reaches phi * count().
  /// InvalidArgument outside phi in [0, 1] or on an empty sketch.
  Result<double> EstimateQuantile(double phi) const;

  /// Retained items across all levels (the memory the sketch actually
  /// holds, <= capacity * levels).
  size_t RetainedItems() const;

  /// Heap bytes retained by the level buffers (capacities, not sizes).
  size_t FootprintBytes() const;

  /// The sorted flattened summary: strictly ascending unique retained
  /// values in *values, with (*cumulative_weights)[i] = total weight of
  /// retained items <= (*values)[i] (so it ends at count()). This is the
  /// form the weighted KS sweep consumes (sketched_reference.h).
  void FlattenTo(std::vector<double>* values,
                 std::vector<double>* cumulative_weights) const;

  /// Appends the canonical little-endian encoding (docs/SKETCH.md has the
  /// layout table). Deterministic: equal sketches serialize to equal
  /// bytes, and serialize -> deserialize -> serialize is a byte fixed
  /// point (the sketch_fuzz oracle).
  void SerializeTo(std::string* out) const;

  /// Inverse of SerializeTo over an untrusted buffer. Re-validates every
  /// invariant — capacity domain, level depth, per-level sizes below
  /// capacity, all-finite items, and that the retained weight sums exactly
  /// to the recorded count — so corrupted bytes yield a Status, never a
  /// sketch that breaks the certified-bound contract structurally.
  static Result<KllSketch> DeserializeFrom(bin::Reader* reader);

 private:
  // SketchedReference holds a KllSketch member behind its own
  // validate-on-construction entry points.
  friend class SketchedReference;

  KllSketch() = default;

  /// Sorts level `i`, keeps the minimum as a same-weight leftover when the
  /// size is odd, promotes every other remaining item to level i + 1, and
  /// charges 2^i to the error bound.
  void CompactLevel(size_t i);
  /// Cascades compactions upward from `i` until every level is below
  /// capacity again.
  void CompactFrom(size_t i);
  bool NextCoin();

  size_t capacity_ = 0;
  uint64_t seed_ = 0;
  uint64_t coin_state_ = 0;
  uint64_t count_ = 0;
  uint64_t error_bound_ = 0;
  // levels_[i] holds items of weight 2^i, unsorted (compaction sorts in
  // place; queries scan).
  std::vector<std::vector<double>> levels_;
};

}  // namespace sketch
}  // namespace moche

#endif  // MOCHE_SKETCH_KLL_SKETCH_H_
