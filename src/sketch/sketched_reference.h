// SketchedReference: the immutable, query-ready form of a KLL-sketched
// reference sample, plus the certified KS triage bracket built on it.
//
// Flattening the sketch once gives a weighted step function G with
// G(x) = EstimateRank(x) / n; the sketch's certified bound says
// sup_x |G(x) - F_R(x)| <= epsilon, with epsilon = rank_error_bound / n a
// deterministic per-instance quantity (kll_sketch.h). For a test window T
// the weighted sweep computes D_sketch = sup_x |G(x) - F_T(x)| exactly,
// and the sup-norm triangle inequality brackets the true two-sample KS
// statistic:
//
//   D_sketch - epsilon  <=  D_true  <=  D_sketch + epsilon.
//
// Comparing the bracket against the KS threshold p yields a three-way
// verdict: the whole bracket above p is a *certified* reject
// (kCertainFail), the whole bracket at or below p a *certified* accept
// (kCertainPass), and only the band straddling p needs the exact O(n)
// path (kUncertain). A small fixed margin (kTriageMargin) is subtracted
// from both certify regions to absorb floating-point rounding — the
// margin can only push a verdict into kUncertain (more fallbacks), never
// mint a wrong certification, so a certified verdict that disagrees with
// the exact ks::Run decision is a hard bug (the tests/sketch property
// suite and sketch_fuzz both enforce exactly that).
//
// Ownership & thread-safety: a SketchedReference is immutable after Build
// — one instance may be shared (shared_ptr-to-const via
// stream::PreparedReferenceCache) by any number of concurrent triage
// calls, exactly like PreparedReference. Build/Deserialize are the only
// writers and they hand out values.

#ifndef MOCHE_SKETCH_SKETCHED_REFERENCE_H_
#define MOCHE_SKETCH_SKETCHED_REFERENCE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sketch/kll_sketch.h"
#include "util/binary_io.h"
#include "util/status.h"

namespace moche {
namespace sketch {

/// Absolute slack subtracted from both certify regions (see the file
/// header). Orders of magnitude above accumulated ECDF rounding (~1e-15
/// on statistics in [0, 1]) and below any useful epsilon (~1e-2), so it
/// never costs a measurable fallback.
inline constexpr double kTriageMargin = 1e-9;

/// The three-way outcome of a certified KS triage.
enum class TriageVerdict {
  /// The whole bracket clears the threshold: the exact test would reject.
  kCertainFail,
  /// The whole bracket stays at or below the threshold: the exact test
  /// would pass (nothing to explain).
  kCertainPass,
  /// The bracket straddles the threshold; only an exact evaluation can
  /// decide. The caller falls back to the O(n) path.
  kUncertain,
};

/// One triage answer: the sketch statistic, its certified bracket, and
/// the verdict against the KS threshold.
struct SketchTriage {
  TriageVerdict verdict = TriageVerdict::kUncertain;
  double statistic = 0.0;  ///< D_sketch = sup |G - F_T| (computed exactly)
  double lower = 0.0;      ///< certified lower bracket on the true D
  double upper = 0.0;      ///< certified upper bracket on the true D
  double threshold = 0.0;  ///< KS threshold p for (n, m, alpha)
  double epsilon = 0.0;    ///< the sketch's certified ECDF error
  size_t n = 0;            ///< exact reference count (sketch-tracked)
  size_t m = 0;            ///< test window size
};

class SketchedReference {
 public:
  /// Flattens `sketch` into the query form. InvalidArgument on an empty
  /// sketch or an out-of-domain alpha. The sketch is kept (moved in): it
  /// is the mergeable/serializable identity of this reference.
  static Result<SketchedReference> Build(KllSketch sketch, double alpha);

  /// Validates `sample` (non-empty, finite — ks::ValidateSample) and
  /// `alpha`, feeds every value through a fresh KllSketch(options), and
  /// Builds. The one-stop constructor the intern cache uses.
  static Result<SketchedReference> FromSample(
      const std::vector<double>& sample, double alpha,
      const KllOptions& options = {});

  /// sup_x |G(x) - F_T(x)| over the union grid of the summary values and
  /// the (ascending, finite, non-empty) test window — computed exactly,
  /// allocation-free, in O(summary + m). The caller sorts and validates
  /// the window (Moche::TriageSketchedInto does both).
  double StatisticAgainstSorted(const std::vector<double>& test_sorted) const;

  /// Classifies a precomputed sweep result against the KS threshold for
  /// (count(), m, alpha()) — the bracket logic of the file header.
  SketchTriage Classify(double statistic, size_t m) const;

  const KllSketch& sketch() const { return sketch_; }
  const std::vector<double>& values() const { return values_; }
  const std::vector<double>& cumulative_weights() const {
    return cumulative_weights_;
  }
  /// Exact number of reference observations the sketch summarizes.
  uint64_t count() const { return sketch_.count(); }
  double alpha() const { return alpha_; }
  double epsilon() const { return sketch_.epsilon(); }
  uint64_t rank_error_bound() const { return sketch_.rank_error_bound(); }
  size_t sketch_capacity() const { return sketch_.capacity(); }

  /// Heap bytes retained: the sketch plus the flattened arrays. The
  /// `ref.bytes` metric of bench_sketch and the cache's resident_bytes
  /// both report this.
  size_t FootprintBytes() const;

  /// Appends alpha then the sketch encoding (kll_sketch.h) — the snapshot
  /// hook of src/persist. Deterministic, and serialize -> deserialize ->
  /// serialize is a byte fixed point.
  void SerializeTo(std::string* out) const;

  /// Inverse of SerializeTo over an untrusted buffer; re-validates alpha
  /// and every sketch invariant, then rebuilds the flattened form
  /// deterministically.
  static Result<SketchedReference> DeserializeFrom(bin::Reader* reader);

 private:
  SketchedReference() = default;

  KllSketch sketch_;
  double alpha_ = 0.05;
  // Flattened summary (kll_sketch.h FlattenTo): strictly ascending unique
  // values; cumulative_weights_[i] = estimated #observations <= values_[i].
  std::vector<double> values_;
  std::vector<double> cumulative_weights_;
};

}  // namespace sketch
}  // namespace moche

#endif  // MOCHE_SKETCH_SKETCHED_REFERENCE_H_
