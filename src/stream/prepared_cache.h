// Interning cache for Moche prepared references.
//
// A fleet of drift detectors typically shares a handful of reference
// samples (one per metric, per model version, ...). Moche::Prepare
// validates and sorts the reference — O(n log n) — so a monitor that owns
// thousands of streams over one reference should pay that cost once. The
// cache keys entries by a fingerprint of the raw observation sequence plus
// alpha and hands out shared_ptrs to one immutable PreparedReference per
// distinct (reference, alpha).
//
// Keying is by the byte-identical value sequence: two permutations of the
// same sample intern separately (fingerprinting must not sort — that is
// the cost being amortized). A fingerprint collision is resolved by an
// exact comparison against the stored sequence, never by trusting the hash.
//
// Ownership & thread-safety: the cache owns its entries and shares the
// prepared references out via shared_ptr-to-const; all internal state is
// guarded by one Mutex, so GetOrPrepare/stats are safe from any thread
// (see the class comment).

#ifndef MOCHE_STREAM_PREPARED_CACHE_H_
#define MOCHE_STREAM_PREPARED_CACHE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/moche.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace moche {
namespace stream {

/// 64-bit fingerprint of (values, alpha); FNV-1a over the double bits with
/// -0.0 canonicalized to +0.0 first, so the fingerprint respects the
/// operator== equality the cache's exact-match guard uses (-0.0 == +0.0).
uint64_t ReferenceFingerprint(const std::vector<double>& values, double alpha);

/// Thread-safe intern table of PreparedReferences.
///
/// GetOrPrepare may be called concurrently; the PreparedReferences it
/// returns are immutable and safe to share across threads (see
/// Moche::ExplainPrepared). The cache never evicts — monitors hold a few
/// distinct references for their whole lifetime.
class PreparedReferenceCache {
 public:
  struct Stats {
    size_t entries = 0;
    size_t hits = 0;
    size_t misses = 0;
  };

  /// Returns the interned PreparedReference for (reference, alpha),
  /// preparing (validate + sort) only on the first sight of the sequence.
  /// InvalidArgument on an empty/non-finite sample or out-of-domain alpha.
  Result<std::shared_ptr<const PreparedReference>> GetOrPrepare(
      const Moche& engine, const std::vector<double>& reference, double alpha);

  Stats stats() const;

 private:
  struct Entry {
    std::vector<double> original;  // the unsorted key sequence
    double alpha = 0.0;
    std::shared_ptr<const PreparedReference> prepared;
  };

  mutable Mutex mutex_;
  // Keyed by fingerprint; each bucket holds the exact-compare candidates.
  std::unordered_map<uint64_t, std::vector<Entry>> entries_
      MOCHE_GUARDED_BY(mutex_);
  size_t hits_ MOCHE_GUARDED_BY(mutex_) = 0;
  size_t misses_ MOCHE_GUARDED_BY(mutex_) = 0;
};

}  // namespace stream
}  // namespace moche

#endif  // MOCHE_STREAM_PREPARED_CACHE_H_
