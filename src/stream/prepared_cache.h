// Interning cache for Moche prepared references.
//
// A fleet of drift detectors typically shares a handful of reference
// samples (one per metric, per model version, ...). Moche::Prepare
// validates and sorts the reference — O(n log n) — so a monitor that owns
// thousands of streams over one reference should pay that cost once. The
// cache keys entries by a fingerprint of the raw observation sequence plus
// alpha and hands out shared_ptrs to one immutable PreparedReference per
// distinct (reference, alpha).
//
// Keying is by the byte-identical value sequence: two permutations of the
// same sample intern separately (fingerprinting must not sort — that is
// the cost being amortized). A fingerprint collision is resolved by an
// exact comparison against the stored sequence, never by trusting the hash.
//
// Ownership & thread-safety: the cache owns its entries and shares the
// prepared references out via shared_ptr-to-const; all internal state is
// guarded by one Mutex, so GetOrPrepare/stats are safe from any thread
// (see the class comment).

#ifndef MOCHE_STREAM_PREPARED_CACHE_H_
#define MOCHE_STREAM_PREPARED_CACHE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/moche.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace moche {
namespace stream {

/// 64-bit fingerprint of (values, alpha): FNV-1a over an explicit
/// canonical byte string — the element count as a little-endian u64, then
/// alpha, then every value as the little-endian bytes of its IEEE-754 bit
/// pattern (util/binary_io.h), each with -0.0 canonicalized to +0.0 first
/// so the fingerprint respects the operator== equality the cache's
/// exact-match guard uses (-0.0 == +0.0). The byte order is pinned, never
/// host memory order: snapshot shard assignment (src/persist) keys on this
/// value, so an x86-64 and an aarch64 build must agree bit-for-bit (a
/// golden-sequence regression test locks the hash down).
uint64_t ReferenceFingerprint(const std::vector<double>& values, double alpha);

/// Thread-safe intern table of PreparedReferences.
///
/// GetOrPrepare may be called concurrently; the PreparedReferences it
/// returns are immutable and safe to share across threads (see
/// Moche::ExplainPrepared). The cache never evicts — monitors hold a few
/// distinct references for their whole lifetime.
class PreparedReferenceCache {
 public:
  struct Stats {
    size_t entries = 0;
    size_t hits = 0;
    size_t misses = 0;
  };

  /// Returns the interned PreparedReference for (reference, alpha),
  /// preparing (validate + sort) only on the first sight of the sequence.
  /// InvalidArgument on an empty/non-finite sample or out-of-domain alpha.
  Result<std::shared_ptr<const PreparedReference>> GetOrPrepare(
      const Moche& engine, const std::vector<double>& reference, double alpha);

  /// Interns an entry rebuilt from a snapshot (src/persist): `prepared`
  /// was deserialized (already validated and sorted), so no engine and no
  /// re-sort are involved. If (original, alpha) is already interned the
  /// existing shared entry is returned and `prepared` is dropped — streams
  /// restored from different shards still converge on one PreparedReference
  /// per distinct reference, exactly as live interning would. Restores
  /// count toward neither hits nor misses. InvalidArgument when `prepared`
  /// is inconsistent with (original, alpha) — wrong alpha, or a sample that
  /// is not a permutation-by-size of `original` (a cross-section splice in
  /// an otherwise CRC-clean snapshot).
  Result<std::shared_ptr<const PreparedReference>> InternRestored(
      std::vector<double> original, double alpha, PreparedReference prepared);

  /// Reverse lookup for checkpointing: finds the interned entry whose
  /// shared PreparedReference is exactly `prepared` (pointer identity) and
  /// copies out the original unsorted key sequence and alpha. Returns false
  /// when `prepared` was not interned here. O(entries) — checkpointing is
  /// off the hot path.
  bool FindOriginal(const PreparedReference* prepared,
                    std::vector<double>* original, double* alpha) const;

  Stats stats() const;

 private:
  struct Entry {
    std::vector<double> original;  // the unsorted key sequence
    double alpha = 0.0;
    std::shared_ptr<const PreparedReference> prepared;
  };

  mutable Mutex mutex_;
  // Keyed by fingerprint; each bucket holds the exact-compare candidates.
  std::unordered_map<uint64_t, std::vector<Entry>> entries_
      MOCHE_GUARDED_BY(mutex_);
  size_t hits_ MOCHE_GUARDED_BY(mutex_) = 0;
  size_t misses_ MOCHE_GUARDED_BY(mutex_) = 0;
};

}  // namespace stream
}  // namespace moche

#endif  // MOCHE_STREAM_PREPARED_CACHE_H_
