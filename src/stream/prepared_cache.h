// Interning cache for Moche reference representations (exact + sketched).
//
// A fleet of drift detectors typically shares a handful of reference
// samples (one per metric, per model version, ...). Moche::Prepare
// validates and sorts the reference — O(n log n) — so a monitor that owns
// thousands of streams over one reference should pay that cost once. The
// cache keys entries by a fingerprint of the raw observation sequence plus
// alpha and hands out shared_ptrs to one immutable PreparedReference per
// distinct (reference, alpha). The same entry can additionally intern the
// reference's KLL summary (sketch::SketchedReference) for the monitor's
// sketched mode — built lazily by GetOrSketch, one summary per entry.
//
// Keying is by the byte-identical value sequence: two permutations of the
// same sample intern separately (fingerprinting must not sort — that is
// the cost being amortized). A fingerprint collision is resolved by an
// exact comparison against the stored sequence, never by trusting the hash.
//
// Capacity: by default the intern table grows without bound (monitors hold
// a few distinct references for their whole lifetime). Multi-tenant churn
// is different — references come and go with tenants — so Options::
// capacity bounds the entry count with LRU eviction of *unpinned* entries
// only: an entry whose prepared or sketched reference is still shared
// outside the cache is live state and is never evicted (the table may
// exceed capacity while everything is pinned). stats() reports evictions
// and the resident heap bytes.
//
// Ownership & thread-safety: the cache owns its entries and shares the
// references out via shared_ptr-to-const; all internal state is guarded by
// one Mutex, so every entry point is safe from any thread (see the class
// comment).

#ifndef MOCHE_STREAM_PREPARED_CACHE_H_
#define MOCHE_STREAM_PREPARED_CACHE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/moche.h"
#include "sketch/sketched_reference.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace moche {
namespace stream {

/// 64-bit fingerprint of (values, alpha): FNV-1a over an explicit
/// canonical byte string — the element count as a little-endian u64, then
/// alpha, then every value as the little-endian bytes of its IEEE-754 bit
/// pattern (util/binary_io.h), each with -0.0 canonicalized to +0.0 first
/// so the fingerprint respects the operator== equality the cache's
/// exact-match guard uses (-0.0 == +0.0). The byte order is pinned, never
/// host memory order: snapshot shard assignment (src/persist) keys on this
/// value, so an x86-64 and an aarch64 build must agree bit-for-bit (a
/// golden-sequence regression test locks the hash down).
uint64_t ReferenceFingerprint(const std::vector<double>& values, double alpha);

/// Thread-safe intern table of reference representations.
///
/// GetOrPrepare/GetOrSketch may be called concurrently; the references
/// they return are immutable and safe to share across threads (see
/// Moche::ExplainPrepared / TriageSketched).
class PreparedReferenceCache {
 public:
  struct Options {
    /// Maximum interned entries; 0 = unbounded (the historical behavior).
    /// When an insert pushes the table past the bound, least-recently-used
    /// entries that are unpinned (no shared_ptr alive outside the cache)
    /// are evicted until the bound holds or only pinned entries remain.
    size_t capacity = 0;
  };

  struct Stats {
    size_t entries = 0;
    size_t hits = 0;
    size_t misses = 0;
    /// Entries dropped by the LRU bound so far.
    size_t evictions = 0;
    /// Heap bytes retained by the interned entries (key sequences, sorted
    /// samples, sketch summaries).
    size_t resident_bytes = 0;
  };

  PreparedReferenceCache() = default;
  explicit PreparedReferenceCache(Options options) : options_(options) {}

  /// Returns the interned PreparedReference for (reference, alpha),
  /// preparing (validate + sort) only on the first sight of the sequence.
  /// InvalidArgument on an empty/non-finite sample or out-of-domain alpha.
  Result<std::shared_ptr<const PreparedReference>> GetOrPrepare(
      const Moche& engine, const std::vector<double>& reference, double alpha);

  /// Returns the interned KLL summary for (reference, alpha), building it
  /// (validate + sketch + flatten) only on the first sight. The summary
  /// shares the entry of GetOrPrepare's exact form, so a monitor holding
  /// both pays one key sequence. One summary is kept per entry: asking
  /// with a different sketch capacity than the interned one is an
  /// InvalidArgument (a monitor has one sketch_k; mixed-k fleets should
  /// use separate caches).
  Result<std::shared_ptr<const sketch::SketchedReference>> GetOrSketch(
      const std::vector<double>& reference, double alpha,
      const sketch::KllOptions& options);

  /// Interns an entry rebuilt from a snapshot (src/persist): `prepared`
  /// was deserialized (already validated and sorted), so no engine and no
  /// re-sort are involved. If (original, alpha) is already interned the
  /// existing shared entry is returned and `prepared` is dropped — streams
  /// restored from different shards still converge on one PreparedReference
  /// per distinct reference, exactly as live interning would. Restores
  /// count toward neither hits nor misses. InvalidArgument when `prepared`
  /// is inconsistent with (original, alpha) — wrong alpha, or a sample that
  /// is not a permutation-by-size of `original` (a cross-section splice in
  /// an otherwise CRC-clean snapshot).
  Result<std::shared_ptr<const PreparedReference>> InternRestored(
      std::vector<double> original, double alpha, PreparedReference prepared);

  /// Sketched counterpart of InternRestored: interns a deserialized KLL
  /// summary under (original, alpha). InvalidArgument when the summary is
  /// inconsistent with its key — wrong alpha, a count that does not match
  /// the key sequence's size, or a capacity disagreeing with an already
  /// interned summary for the same key.
  Result<std::shared_ptr<const sketch::SketchedReference>>
  InternRestoredSketched(std::vector<double> original, double alpha,
                         sketch::SketchedReference sketched);

  /// Reverse lookup for checkpointing: finds the interned entry whose
  /// shared PreparedReference is exactly `prepared` (pointer identity) and
  /// copies out the original unsorted key sequence and alpha. Returns false
  /// when `prepared` was not interned here. O(entries) — checkpointing is
  /// off the hot path.
  bool FindOriginal(const PreparedReference* prepared,
                    std::vector<double>* original, double* alpha) const;

  Stats stats() const;

 private:
  struct Entry {
    std::vector<double> original;  // the unsorted key sequence
    double alpha = 0.0;
    std::shared_ptr<const PreparedReference> prepared;          // may be null
    std::shared_ptr<const sketch::SketchedReference> sketched;  // may be null
    uint64_t last_used = 0;  // LRU stamp (monotone use counter)
  };

  /// Finds the bucket entry matching (alpha, reference) exactly, stamping
  /// it as used. Null when absent.
  Entry* FindEntryLocked(uint64_t fingerprint,
                         const std::vector<double>& reference, double alpha)
      MOCHE_REQUIRES(mutex_);

  /// Inserts a fresh entry for (reference, alpha) and applies the LRU
  /// bound. Returns the inserted entry (valid until the next mutation).
  Entry* InsertEntryLocked(uint64_t fingerprint,
                           std::vector<double> reference, double alpha)
      MOCHE_REQUIRES(mutex_);

  void EvictIfOverCapacityLocked() MOCHE_REQUIRES(mutex_);
  size_t CountEntriesLocked() const MOCHE_REQUIRES(mutex_);

  Options options_;
  mutable Mutex mutex_;
  // Keyed by fingerprint; each bucket holds the exact-compare candidates.
  std::unordered_map<uint64_t, std::vector<Entry>> entries_
      MOCHE_GUARDED_BY(mutex_);
  size_t hits_ MOCHE_GUARDED_BY(mutex_) = 0;
  size_t misses_ MOCHE_GUARDED_BY(mutex_) = 0;
  size_t evictions_ MOCHE_GUARDED_BY(mutex_) = 0;
  uint64_t use_clock_ MOCHE_GUARDED_BY(mutex_) = 0;
};

}  // namespace stream
}  // namespace moche

#endif  // MOCHE_STREAM_PREPARED_CACHE_H_
