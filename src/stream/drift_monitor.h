// A multi-stream drift-explanation monitor: the paper's Section 6
// deployment loop as a subsystem.
//
// The monitor owns N named streams. Each stream binds an incremental KS
// detector (StreamingKs, O(log(n+m)) per observation) to an interned
// PreparedReference; observation batches fan out across a util/parallel
// ThreadPool, one task per stream. When a stream's window drifts, the
// monitor runs Moche::ExplainPrepared on the window snapshot and records a
// DriftEvent. A re-arm policy throttles explanation: one excursion above
// the threshold yields one event (kOncePerExcursion) or one every k pushes
// (kEveryKPushes) instead of thousands of duplicates.
//
// Reference modes (MonitorOptions::reference_mode): in the default kExact
// mode every stream owns a StreamingKs detector, which copies the full
// reference into a per-stream order-statistic treap — O(n) memory per
// stream, O(log(n+m)) per push. kSketched replaces the per-stream copy
// with one shared KLL summary of the reference (sketch::SketchedReference,
// O(sketch_k * log(n/sketch_k)) memory per *fleet*): each stream keeps
// only its window ring, and every full-window push is triaged through
// Moche::TriageSketchedInto. Certified verdicts settle the push on the
// summary alone; only the uncertain band (and windows that actually fire
// an explanation) fall back to the interned exact reference, which the
// fleet still shares once for fallback and for ExplainPrepared. The
// trade: a sketched push re-sorts its window (O(w log w) against the
// summary) instead of the detector's incremental O(log), so kSketched is
// the memory knob for fleets of thousands of streams over giant
// references, not a latency upgrade. Detection semantics are recompute
// semantics — each full window is judged like ks::RunSorted on its
// snapshot, matching RecheckWindows; a treap detector in kExact mode can
// disagree within ~1e-9 of the decision boundary (see
// fuzz/streaming_ks_fuzz.cc), so cross-mode event logs are equal on
// well-separated data but not bit-contractual.
//
// Determinism contract: stream i's events are produced by stream i's task
// alone and merged in stream order after every batch, so the event log is
// bit-identical to the sequential (num_threads = 1) run at any thread
// count. Everything per-stream is deterministic — the detector's treap
// priorities depend only on that stream's insertion sequence, and
// ExplainPrepared is a pure function of (reference, window, preference).
//
// Threading contract: the monitor is driven from one thread (AddStream /
// PushBatch / events must not race each other); internally PushBatch
// parallelizes across streams. The Moche engine and the interned
// PreparedReferences are immutable and shared by all workers. One
// exception is carved out for persistence: the mutating entry points take
// an internal state mutex, and persist::CheckpointMonitor takes the same
// mutex while it reads, so a checkpoint may run concurrently with the
// driver thread's PushBatch (it serializes either the pre-batch or the
// post-batch state, never a torn one).
//
// Ownership: the monitor owns its streams, the event log, the
// prepared-reference cache, a pool of per-worker ExplainWorkspaces, and
// (when num_threads resolves > 1) the thread pool; AddStream copies the
// reference it is given. Observations must be finite — PushBatch validates
// up front and rejects NaN/Inf with InvalidArgument before touching any
// stream, so a bad batch never half-applies (the NaN/empty-sample
// conventions are collected in docs/ARCHITECTURE.md).
//
// Allocation contract: each worker thread drains streams against its own
// lazily created workspace (created once, reused forever; stats() reports
// the pool's footprint), the detectors recycle their treap nodes, and the
// per-batch fan-out buffers are monitor members reused across batches. A
// warmed-up sequential (num_threads = 1) monitor therefore performs ZERO
// heap allocations on a PushBatch that fires no drift event — the steady
// state of a healthy fleet — and a firing batch allocates only the
// DriftEvent storage that outlives the call in the event log. The
// parallel path adds a small O(1) per-batch cost for the pool's job
// control block.

#ifndef MOCHE_STREAM_DRIFT_MONITOR_H_
#define MOCHE_STREAM_DRIFT_MONITOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/moche.h"
#include "ks/streaming.h"
#include "sketch/sketched_reference.h"
#include "stream/prepared_cache.h"
#include "util/mutex.h"
#include "util/parallel.h"
#include "util/status.h"

namespace moche {

namespace persist {
class MonitorCodec;  // snapshot serializer (src/persist/monitor_codec.h)
}  // namespace persist

namespace stream {

/// When to re-fire the explainer while a stream stays above threshold.
enum class RearmPolicy {
  /// One event per excursion: explain at the first rejecting push, then
  /// stay silent until the window passes again (which re-arms the stream).
  kOncePerExcursion,
  /// As kOncePerExcursion, plus a refreshed explanation every
  /// `explain_every_k` pushes while the excursion persists (long drifts
  /// keep reporting on current window contents).
  kEveryKPushes,
};

/// Ordering of the preference list handed to ExplainPrepared: which window
/// points the explanation should prefer to remove on ties.
enum class WindowPreference {
  kOldestFirst,  ///< identity order — prefer the oldest observations
  kNewestFirst,  ///< reversed — prefer the most recent observations
};

/// How streams hold their reference for detection (see the file header).
enum class ReferenceMode {
  /// Per-stream StreamingKs detector over a private copy of the reference:
  /// O(n) memory per stream, O(log(n+m)) per push. The default.
  kExact,
  /// One shared KLL summary per distinct reference: O(sketch_k log(n/k))
  /// per fleet. Certified triage on the summary; exact fallback (via the
  /// still-interned PreparedReference) only for uncertain windows and for
  /// the windows that fire an explanation.
  kSketched,
};

struct MonitorOptions {
  double alpha = 0.05;
  RearmPolicy rearm = RearmPolicy::kOncePerExcursion;
  /// Pushes between refreshed explanations under kEveryKPushes (>= 1).
  size_t explain_every_k = 0;
  /// Worker threads for PushBatch: 1 = sequential (default), 0 = one per
  /// hardware core. The event log is identical for every value.
  size_t num_threads = 1;
  WindowPreference preference = WindowPreference::kOldestFirst;
  /// Per-stream reference memory knob (see ReferenceMode).
  ReferenceMode reference_mode = ReferenceMode::kExact;
  /// KLL compactor capacity under kSketched: the memory/uncertainty dial.
  /// Rank error eps ~ log2(n/k)/k, so larger k means fewer exact
  /// fallbacks and more bytes (sketch::KllOptions::capacity domain).
  size_t sketch_k = 1024;
  /// PreparedReferenceCache entry bound: 0 = unbounded (default); nonzero
  /// enables LRU eviction of unpinned entries (multi-tenant churn).
  size_t cache_capacity = 0;
  /// Engine knobs for the per-event explanations.
  MocheOptions moche;
};

/// One drift alarm plus its counterfactual explanation.
struct DriftEvent {
  size_t stream = 0;        ///< index of the firing stream
  uint64_t tick = 0;        ///< per-stream observation count at the alarm
  KsOutcome outcome;        ///< the failing test (from the detector)
  /// ExplainPrepared on the window snapshot. Explanation indices are window
  /// positions in arrival order (0 = oldest surviving observation at tick).
  /// Only meaningful when explain_status.ok().
  MocheReport report;
  Status explain_status;
};

/// Bit-identity over the deterministic DriftEvent fields (stream, tick,
/// detector statistic, explanation size/indices, status code); wall times
/// inside the reports are ignored. The parallel/sequential comparison of
/// bench_stream_monitor and the determinism tests both use this.
bool SameEventLogs(const std::vector<DriftEvent>& a,
                   const std::vector<DriftEvent>& b);

class DriftMonitor {
 public:
  struct Stats {
    size_t streams = 0;
    uint64_t observations = 0;   ///< total pushes across streams
    uint64_t drift_ticks = 0;    ///< pushes whose window rejected
    uint64_t explanations = 0;   ///< DriftEvents emitted
    /// Explain workspaces created so far (at most one per worker thread;
    /// a monitor that never fires an explanation creates none).
    size_t workspaces_created = 0;
    /// Total heap bytes retained by the workspace pool. Workspace buffers
    /// never shrink, so this is also the pool's high-water mark.
    size_t workspace_bytes = 0;
    /// kSketched triage tallies (all zero in kExact mode): full-window
    /// pushes settled by a certified verdict on the summary alone, and
    /// pushes whose uncertain bracket forced an exact recompute.
    uint64_t triage_certified_pass = 0;
    uint64_t triage_certified_fail = 0;
    uint64_t triage_fallbacks = 0;
  };

  /// Validates options (alpha domain, explain_every_k under kEveryKPushes).
  static Result<DriftMonitor> Create(const MonitorOptions& options);

  DriftMonitor(DriftMonitor&&) noexcept = default;
  DriftMonitor& operator=(DriftMonitor&&) noexcept = default;

  /// Registers a stream with the given window capacity, bound to the
  /// interned PreparedReference for (reference, options.alpha). In kExact
  /// mode the stream also builds a StreamingKs over its own reference
  /// copy; in kSketched mode it instead shares the interned KLL summary
  /// (built once per distinct reference at capacity sketch_k) and holds
  /// only a window ring. Returns the stream index. Streams sharing a
  /// reference sort/validate/sketch it once (see PreparedReferenceCache).
  Result<size_t> AddStream(std::string name,
                           const std::vector<double>& reference,
                           size_t window_size);

  /// Feeds one batch: observations[i] (possibly empty) goes to stream i,
  /// in order. Requires observations.size() == num_streams() and finite
  /// values. Streams are processed concurrently per MonitorOptions::
  /// num_threads; each batch's events land in the log in (tick, stream)
  /// order regardless of thread count (and hence regardless of batch
  /// granularity when streams are fed in lockstep).
  Status PushBatch(const std::vector<std::vector<double>>& observations);

  /// Convenience: one observation per stream.
  Status PushTick(const std::vector<double>& values);

  /// Re-runs the KS test on every stream's current window snapshot in
  /// batched SIMD passes: streams sharing an interned PreparedReference and
  /// window size are packed into one contiguous buffer and evaluated
  /// through Moche::EvaluateBatchPrepared, so the vector lanes stay full
  /// across windows instead of draining at every window boundary. A fleet
  /// whose streams share one reference (the common deployment) is one
  /// group, hence one batched call. (*outcomes)[i] is stream i's result;
  /// streams whose window is not yet full are skipped and left
  /// default-constructed (recognizable by n == 0, impossible for a real
  /// outcome). Each outcome matches ks::RunSorted(reference, window) on the
  /// same data. Read-only triage: no detector advances, no event is
  /// appended, and the re-arm state is untouched — callers decide what to
  /// do with the rejecting streams (e.g. feed them to the explainer on
  /// their own schedule).
  Status RecheckWindows(std::vector<KsOutcome>* outcomes);

  /// The drift-event log, oldest first.
  const std::vector<DriftEvent>& events() const { return events_; }
  /// Drops accumulated events (long-running monitors drain the log
  /// periodically); Stats::explanations keeps counting across clears.
  void ClearEvents() { events_.clear(); }

  size_t num_streams() const { return streams_.size(); }
  const std::string& stream_name(size_t i) const { return streams_[i].name; }
  /// Observations pushed into stream i so far.
  uint64_t stream_ticks(size_t i) const { return streams_[i].ticks; }
  /// True while stream i's latest full window rejects.
  bool stream_in_excursion(size_t i) const {
    return streams_[i].in_excursion;
  }

  Stats stats() const;
  PreparedReferenceCache::Stats cache_stats() const {
    return cache_->stats();
  }
  const MonitorOptions& options() const { return options_; }

 private:
  // The snapshot codec reads (and, on restore, writes) the private stream
  // state; persistence lives in src/persist so the monitor itself stays
  // free of file-format knowledge (docs/SNAPSHOT.md).
  friend class persist::MonitorCodec;

  struct Stream {
    std::string name;
    /// Engaged exactly in kExact mode; sketched streams keep the ring
    /// below instead of a per-stream reference copy.
    std::optional<StreamingKs> detector;
    std::shared_ptr<const PreparedReference> prepared;
    /// Engaged exactly in kSketched mode (shared per distinct reference).
    std::shared_ptr<const sketch::SketchedReference> sketched;
    /// kSketched window ring: capacity `window` doubles, filled by
    /// push_back until full, then overwritten in place with `ring_head`
    /// marking the oldest slot (= the next overwrite target).
    std::vector<double> ring;
    size_t ring_head = 0;
    size_t window = 0;              // ring capacity (0 in kExact mode)
    uint64_t ticks = 0;             // observations pushed so far
    bool in_excursion = false;      // window currently above threshold
    uint64_t pushes_since_explained = 0;
    uint64_t drift_ticks = 0;
    // kSketched triage tallies; mutated only by the owning stream's task.
    uint64_t triage_certified_pass = 0;
    uint64_t triage_certified_fail = 0;
    uint64_t triage_fallbacks = 0;

    size_t window_size() const {
      return detector.has_value() ? detector->window_size() : window;
    }
    bool WindowFull() const {
      return detector.has_value() ? detector->WindowFull()
                                  : ring.size() == window;
    }
    /// Copies the current window, oldest observation first, into *out
    /// (allocation-free once out's capacity is warm). Both modes.
    void WindowContentsInto(std::vector<double>* out) const;
    /// kSketched only: admits one observation into the ring.
    void PushRing(double v);
  };

  /// One worker thread's reusable explanation scratch: the MOCHE workspace
  /// plus the window-snapshot and preference-list buffers feeding it.
  /// Indexed by ParallelForWorker's worker id, so it is never shared
  /// between threads; created lazily on the worker's first explanation.
  struct WorkerScratch {
    ExplainWorkspace workspace;
    std::vector<double> window;
    PreferenceList pref;
    /// One-slot landing pad for the sketched path's exact fallback
    /// (EvaluateBatchPrepared writes its outcomes here).
    std::vector<KsOutcome> outcomes;

    size_t FootprintBytes() const {
      return workspace.FootprintBytes() +
             window.capacity() * sizeof(double) +
             pref.capacity() * sizeof(size_t) +
             outcomes.capacity() * sizeof(KsOutcome);
    }
  };

  explicit DriftMonitor(const MonitorOptions& options);

  /// Feeds `values` to stream i sequentially, appending events to `out`,
  /// explaining through `worker`'s scratch. Returns the first push failure
  /// (impossible after PushBatch's up-front validation short of an
  /// internal bug). Dispatches per the stream's mode.
  Status DrainStream(size_t worker, size_t i,
                     const std::vector<double>& values,
                     std::vector<DriftEvent>* out);

  /// kSketched drain: ring push, certified triage on the shared summary,
  /// exact fallback only for uncertain windows and firing events.
  Status DrainStreamSketched(size_t worker, size_t i,
                             const std::vector<double>& values,
                             std::vector<DriftEvent>* out);

  /// Lazily creates (then returns) worker `worker`'s scratch slot.
  WorkerScratch& ScratchFor(size_t worker);

  /// Exact KS outcome for the window currently held in scratch.window,
  /// against stream `s`'s interned PreparedReference (one-window
  /// EvaluateBatchPrepared; allocation-free once warm).
  Status ExactWindowOutcome(const Stream& s, WorkerScratch* scratch,
                            KsOutcome* outcome);

  /// Runs ExplainPreparedInto on stream i's current window, inside
  /// `worker`'s scratch.
  DriftEvent Explain(size_t worker, size_t i, const KsOutcome& outcome);

  MonitorOptions options_;
  Moche engine_;
  // Serializes the mutating entry points against a concurrent
  // persist::CheckpointMonitor. Deliberately NOT annotated with
  // MOCHE_GUARDED_BY: the read accessors (events, stream_ticks, ...) are
  // single-driver by the threading contract and stay lock-free; only the
  // checkpoint path reads cross-thread, and it takes this mutex.
  // unique_ptr (like cache_) keeps the monitor movable.
  mutable std::unique_ptr<Mutex> state_mutex_;
  // unique_ptr: the cache owns a mutex, which would pin the monitor in
  // place; the monitor must stay movable for Result<DriftMonitor>.
  std::unique_ptr<PreparedReferenceCache> cache_;
  std::vector<Stream> streams_;
  std::vector<DriftEvent> events_;
  uint64_t explanations_total_ = 0;  // survives ClearEvents
  std::unique_ptr<ThreadPool> pool_;  // only when num_threads resolves > 1
  // One slot per worker thread (slot 0 = the PushBatch caller), filled on
  // first use. unique_ptr keeps the monitor movable and slot addresses
  // stable across the vector's lifetime.
  std::vector<std::unique_ptr<WorkerScratch>> worker_scratch_;
  // Per-batch fan-out state, hoisted into members so steady-state batches
  // reuse capacity instead of reallocating (see the allocation contract in
  // the file header).
  std::vector<std::vector<DriftEvent>> batch_buffers_;
  std::vector<Status> batch_statuses_;
  std::vector<DriftEvent> batch_merged_;
  // RecheckWindows scratch (same reuse rationale as the batch buffers).
  std::vector<double> recheck_buffer_;        // packed window batch
  std::vector<size_t> recheck_members_;       // stream index per batch slot
  std::vector<KsOutcome> recheck_outcomes_;   // per-group kernel results
  std::vector<unsigned char> recheck_done_;   // streams already grouped
};

}  // namespace stream
}  // namespace moche

#endif  // MOCHE_STREAM_DRIFT_MONITOR_H_
