#include "stream/drift_monitor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/simd.h"
#include "util/string_util.h"

namespace moche {
namespace stream {

bool SameEventLogs(const std::vector<DriftEvent>& a,
                   const std::vector<DriftEvent>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const DriftEvent& x = a[i];
    const DriftEvent& y = b[i];
    if (x.stream != y.stream || x.tick != y.tick ||
        x.outcome.statistic != y.outcome.statistic ||
        x.outcome.threshold != y.outcome.threshold ||
        x.explain_status.code() != y.explain_status.code()) {
      return false;
    }
    if (x.explain_status.ok() &&
        (x.report.k != y.report.k || x.report.k_hat != y.report.k_hat ||
         x.report.explanation.indices != y.report.explanation.indices)) {
      return false;
    }
  }
  return true;
}

void DriftMonitor::Stream::WindowContentsInto(
    std::vector<double>* out) const {
  if (detector.has_value()) {
    detector->WindowContentsInto(out);
    return;
  }
  out->clear();
  out->reserve(window);
  if (ring.size() < window) {
    out->insert(out->end(), ring.begin(), ring.end());
    return;
  }
  // Full ring: oldest lives at ring_head.
  out->insert(out->end(),
              ring.begin() + static_cast<ptrdiff_t>(ring_head), ring.end());
  out->insert(out->end(), ring.begin(),
              ring.begin() + static_cast<ptrdiff_t>(ring_head));
}

void DriftMonitor::Stream::PushRing(double v) {
  if (ring.size() < window) {
    // Filling phase; AddStream reserved full capacity, so no reallocation.
    ring.push_back(v);
    return;
  }
  ring[ring_head] = v;
  ring_head = (ring_head + 1) % window;
}

DriftMonitor::DriftMonitor(const MonitorOptions& options)
    : options_(options),
      engine_(options.moche),
      state_mutex_(std::make_unique<Mutex>()),
      cache_(std::make_unique<PreparedReferenceCache>(
          PreparedReferenceCache::Options{options.cache_capacity})) {
  const size_t threads = ResolveThreadCount(options.num_threads);
  if (threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options.num_threads);
  }
  // One scratch slot per worker (slot 0 is the PushBatch caller); the
  // workspaces themselves are created on first use.
  worker_scratch_.resize(pool_ != nullptr ? pool_->num_threads() : 1);
}

Result<DriftMonitor> DriftMonitor::Create(const MonitorOptions& options) {
  MOCHE_RETURN_IF_ERROR(ks::ValidateAlpha(options.alpha));
  if (options.rearm == RearmPolicy::kEveryKPushes &&
      options.explain_every_k == 0) {
    return Status::InvalidArgument(
        "kEveryKPushes needs explain_every_k >= 1");
  }
  if (options.reference_mode == ReferenceMode::kSketched &&
      (options.sketch_k < sketch::KllSketch::kMinCapacity ||
       options.sketch_k > sketch::KllSketch::kMaxCapacity)) {
    return Status::InvalidArgument(
        StrFormat("sketch_k %zu outside [%zu, %zu]", options.sketch_k,
                  sketch::KllSketch::kMinCapacity,
                  sketch::KllSketch::kMaxCapacity));
  }
  return DriftMonitor(options);
}

Result<size_t> DriftMonitor::AddStream(std::string name,
                                       const std::vector<double>& reference,
                                       size_t window_size) {
  // Prepare first (validates the sample and interns the sorted reference).
  // Both modes keep the exact interned form: sketched streams fall back to
  // it for uncertain windows and every explanation runs against it.
  MOCHE_ASSIGN_OR_RETURN(
      std::shared_ptr<const PreparedReference> prepared,
      cache_->GetOrPrepare(engine_, reference, options_.alpha));
  Stream stream;
  stream.name = std::move(name);
  stream.prepared = std::move(prepared);
  if (options_.reference_mode == ReferenceMode::kSketched) {
    if (window_size == 0) {
      return Status::InvalidArgument("window_size must be >= 1");
    }
    sketch::KllOptions kll;
    kll.capacity = options_.sketch_k;
    MOCHE_ASSIGN_OR_RETURN(
        stream.sketched,
        cache_->GetOrSketch(reference, options_.alpha, kll));
    stream.window = window_size;
    stream.ring.reserve(window_size);
  } else {
    MOCHE_ASSIGN_OR_RETURN(
        StreamingKs detector,
        StreamingKs::Create(reference, window_size, options_.alpha));
    stream.detector.emplace(std::move(detector));
  }
  MutexLock lock(state_mutex_.get());
  streams_.push_back(std::move(stream));
  return streams_.size() - 1;
}

DriftMonitor::WorkerScratch& DriftMonitor::ScratchFor(size_t worker) {
  if (worker_scratch_[worker] == nullptr) {
    worker_scratch_[worker] = std::make_unique<WorkerScratch>();
  }
  return *worker_scratch_[worker];
}

DriftEvent DriftMonitor::Explain(size_t worker, size_t i,
                                 const KsOutcome& outcome) {
  WorkerScratch& scratch = ScratchFor(worker);
  Stream& s = streams_[i];
  DriftEvent event;
  event.stream = i;
  event.tick = s.ticks;
  event.outcome = outcome;
  s.WindowContentsInto(&scratch.window);
  IdentityPreferenceInto(scratch.window.size(), &scratch.pref);
  if (options_.preference == WindowPreference::kNewestFirst) {
    std::reverse(scratch.pref.begin(), scratch.pref.end());
  }
  // The report is written straight into the event (which outlives the call
  // in the log); all transient scratch lives in the worker's workspace.
  const Status status = engine_.ExplainPreparedInto(
      *s.prepared, scratch.window, scratch.pref, &scratch.workspace,
      &event.report);
  if (!status.ok()) event.explain_status = status;
  return event;
}

Status DriftMonitor::ExactWindowOutcome(const Stream& s,
                                        WorkerScratch* scratch,
                                        KsOutcome* outcome) {
  WindowBatch batch;
  batch.data = scratch->window.data();
  batch.count = 1;
  batch.width = scratch->window.size();
  MOCHE_RETURN_IF_ERROR(engine_.EvaluateBatchPrepared(
      *s.prepared, batch, &scratch->workspace, &scratch->outcomes));
  *outcome = scratch->outcomes[0];
  return Status::OK();
}

Status DriftMonitor::DrainStreamSketched(size_t worker, size_t i,
                                         const std::vector<double>& values,
                                         std::vector<DriftEvent>* out) {
  Stream& s = streams_[i];
  WorkerScratch& scratch = ScratchFor(worker);
  for (double v : values) {
    s.PushRing(v);
    ++s.ticks;
    if (!s.WindowFull()) continue;
    s.WindowContentsInto(&scratch.window);
    sketch::SketchTriage triage;
    MOCHE_RETURN_IF_ERROR(engine_.TriageSketchedInto(
        *s.sketched, scratch.window, &scratch.workspace, &triage));
    bool reject = false;
    bool have_outcome = false;
    KsOutcome outcome;
    switch (triage.verdict) {
      case sketch::TriageVerdict::kCertainPass:
        ++s.triage_certified_pass;
        break;
      case sketch::TriageVerdict::kCertainFail:
        ++s.triage_certified_fail;
        reject = true;
        // The exact outcome is computed lazily below, only if this push
        // actually fires an explanation.
        break;
      case sketch::TriageVerdict::kUncertain:
        ++s.triage_fallbacks;
        MOCHE_RETURN_IF_ERROR(ExactWindowOutcome(s, &scratch, &outcome));
        have_outcome = true;
        reject = outcome.reject;
        break;
    }
    if (!reject) {
      s.in_excursion = false;
      continue;
    }
    ++s.drift_ticks;
    bool fire = false;
    if (!s.in_excursion) {
      s.in_excursion = true;
      fire = true;
    } else if (options_.rearm == RearmPolicy::kEveryKPushes) {
      fire = s.pushes_since_explained + 1 >= options_.explain_every_k;
    }
    if (fire) {
      if (!have_outcome) {
        MOCHE_RETURN_IF_ERROR(ExactWindowOutcome(s, &scratch, &outcome));
      }
      out->push_back(Explain(worker, i, outcome));
      s.pushes_since_explained = 0;
    } else {
      ++s.pushes_since_explained;
    }
  }
  return Status::OK();
}

Status DriftMonitor::DrainStream(size_t worker, size_t i,
                                 const std::vector<double>& values,
                                 std::vector<DriftEvent>* out) {
  Stream& s = streams_[i];
  if (s.sketched != nullptr) {
    return DrainStreamSketched(worker, i, values, out);
  }
  for (double v : values) {
    MOCHE_RETURN_IF_ERROR(s.detector->Push(v));
    ++s.ticks;
    if (!s.detector->WindowFull()) continue;
    // Validated at construction; the window is full — CurrentOutcome
    // cannot fail.
    auto outcome = s.detector->CurrentOutcome();
    if (!outcome.ok()) return outcome.status();
    if (!outcome->reject) {
      s.in_excursion = false;
      continue;
    }
    ++s.drift_ticks;
    bool fire = false;
    if (!s.in_excursion) {
      s.in_excursion = true;
      fire = true;
    } else if (options_.rearm == RearmPolicy::kEveryKPushes) {
      fire = s.pushes_since_explained + 1 >= options_.explain_every_k;
    }
    if (fire) {
      out->push_back(Explain(worker, i, *outcome));
      s.pushes_since_explained = 0;
    } else {
      ++s.pushes_since_explained;
    }
  }
  return Status::OK();
}

Status DriftMonitor::PushBatch(
    const std::vector<std::vector<double>>& observations) {
  if (observations.size() != streams_.size()) {
    return Status::InvalidArgument(
        StrFormat("batch has %zu slots for %zu streams",
                  observations.size(), streams_.size()));
  }
  // Validate before fanning out: workers must not fail mid-stream (a
  // partial drain would leave detector windows half-advanced). One SIMD
  // finiteness pass per stream slot (util/simd.h).
  const simd::Kernels& kernels = simd::ActiveKernels();
  for (size_t i = 0; i < observations.size(); ++i) {
    if (!kernels.all_finite(observations[i].data(), observations[i].size())) {
      return Status::InvalidArgument(
          StrFormat("non-finite observation for stream %zu ('%s')", i,
                    streams_[i].name.c_str()));
    }
  }

  // Everything past validation mutates monitor state, so it runs under the
  // state mutex: a concurrent persist::CheckpointMonitor serializes either
  // the pre-batch or the post-batch state, never a torn one.
  MutexLock lock(state_mutex_.get());

  // Stream i's task writes only slot i; the merge below is therefore
  // independent of which worker ran which stream. The buffers are monitor
  // members: clear() keeps their capacity, so a warmed-up batch that fires
  // no event allocates nothing here.
  batch_buffers_.resize(streams_.size());
  for (std::vector<DriftEvent>& buffer : batch_buffers_) buffer.clear();
  batch_statuses_.assign(streams_.size(), Status::OK());
  const auto task = [&](size_t worker, size_t i) {
    batch_statuses_[i] =
        DrainStream(worker, i, observations[i], &batch_buffers_[i]);
  };
  if (pool_ != nullptr) {
    pool_->ParallelForWorker(streams_.size(), task);
  } else {
    for (size_t i = 0; i < streams_.size(); ++i) task(/*worker=*/0, i);
  }

  size_t fired = 0;
  for (size_t i = 0; i < streams_.size(); ++i) {
    MOCHE_RETURN_IF_ERROR(batch_statuses_[i]);
    fired += batch_buffers_[i].size();
  }
  if (fired == 0) return Status::OK();

  // Merge in (tick, stream) order: deterministic for any thread count, and
  // — when streams are fed in lockstep, as the replay harness does — also
  // independent of how the caller batches the ticks.
  std::vector<DriftEvent>& merged = batch_merged_;
  merged.clear();
  merged.reserve(fired);
  for (std::vector<DriftEvent>& buffer : batch_buffers_) {
    for (DriftEvent& event : buffer) {
      merged.push_back(std::move(event));
    }
  }
  // moche-lint: allow(sort-doubles): keyed on integer (tick, stream) only
  std::stable_sort(merged.begin(), merged.end(),
                   [](const DriftEvent& a, const DriftEvent& b) {
                     return a.tick != b.tick ? a.tick < b.tick
                                             : a.stream < b.stream;
                   });
  for (DriftEvent& event : merged) {
    events_.push_back(std::move(event));
    ++explanations_total_;
  }
  merged.clear();
  return Status::OK();
}

Status DriftMonitor::RecheckWindows(std::vector<KsOutcome>* outcomes) {
  // Read-only on the streams, but the packing scratch is member state.
  MutexLock lock(state_mutex_.get());
  outcomes->assign(streams_.size(), KsOutcome{});
  WorkerScratch& scratch = ScratchFor(0);
  recheck_done_.assign(streams_.size(), 0);
  for (size_t i = 0; i < streams_.size(); ++i) {
    if (recheck_done_[i] || !streams_[i].WindowFull()) continue;
    // Group every not-yet-handled stream sharing this stream's interned
    // reference and window width, packing their windows contiguously so
    // the whole group goes through one batched call.
    const PreparedReference* prepared = streams_[i].prepared.get();
    const size_t width = streams_[i].window_size();
    recheck_members_.clear();
    recheck_buffer_.clear();
    for (size_t j = i; j < streams_.size(); ++j) {
      Stream& s = streams_[j];
      if (recheck_done_[j] || s.prepared.get() != prepared ||
          !s.WindowFull() || s.window_size() != width) {
        continue;
      }
      recheck_done_[j] = 1;
      s.WindowContentsInto(&scratch.window);
      recheck_buffer_.insert(recheck_buffer_.end(), scratch.window.begin(),
                             scratch.window.end());
      recheck_members_.push_back(j);
    }
    WindowBatch batch;
    batch.data = recheck_buffer_.data();
    batch.count = recheck_members_.size();
    batch.width = width;
    MOCHE_RETURN_IF_ERROR(engine_.EvaluateBatchPrepared(
        *prepared, batch, &scratch.workspace, &recheck_outcomes_));
    for (size_t k = 0; k < recheck_members_.size(); ++k) {
      (*outcomes)[recheck_members_[k]] = recheck_outcomes_[k];
    }
  }
  return Status::OK();
}

Status DriftMonitor::PushTick(const std::vector<double>& values) {
  std::vector<std::vector<double>> batch(values.size());
  for (size_t i = 0; i < values.size(); ++i) batch[i] = {values[i]};
  return PushBatch(batch);
}

DriftMonitor::Stats DriftMonitor::stats() const {
  Stats s;
  s.streams = streams_.size();
  for (const Stream& stream : streams_) {
    s.observations += stream.ticks;
    s.drift_ticks += stream.drift_ticks;
    s.triage_certified_pass += stream.triage_certified_pass;
    s.triage_certified_fail += stream.triage_certified_fail;
    s.triage_fallbacks += stream.triage_fallbacks;
  }
  s.explanations = explanations_total_;
  for (const std::unique_ptr<WorkerScratch>& scratch : worker_scratch_) {
    if (scratch == nullptr) continue;
    ++s.workspaces_created;
    s.workspace_bytes += scratch->FootprintBytes();
  }
  return s;
}

}  // namespace stream
}  // namespace moche
