#include "stream/drift_monitor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/string_util.h"

namespace moche {
namespace stream {

bool SameEventLogs(const std::vector<DriftEvent>& a,
                   const std::vector<DriftEvent>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const DriftEvent& x = a[i];
    const DriftEvent& y = b[i];
    if (x.stream != y.stream || x.tick != y.tick ||
        x.outcome.statistic != y.outcome.statistic ||
        x.outcome.threshold != y.outcome.threshold ||
        x.explain_status.code() != y.explain_status.code()) {
      return false;
    }
    if (x.explain_status.ok() &&
        (x.report.k != y.report.k || x.report.k_hat != y.report.k_hat ||
         x.report.explanation.indices != y.report.explanation.indices)) {
      return false;
    }
  }
  return true;
}

DriftMonitor::DriftMonitor(const MonitorOptions& options)
    : options_(options),
      engine_(options.moche),
      cache_(std::make_unique<PreparedReferenceCache>()) {
  const size_t threads = ResolveThreadCount(options.num_threads);
  if (threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options.num_threads);
  }
}

Result<DriftMonitor> DriftMonitor::Create(const MonitorOptions& options) {
  MOCHE_RETURN_IF_ERROR(ks::ValidateAlpha(options.alpha));
  if (options.rearm == RearmPolicy::kEveryKPushes &&
      options.explain_every_k == 0) {
    return Status::InvalidArgument(
        "kEveryKPushes needs explain_every_k >= 1");
  }
  return DriftMonitor(options);
}

Result<size_t> DriftMonitor::AddStream(std::string name,
                                       const std::vector<double>& reference,
                                       size_t window_size) {
  // Prepare first (validates the sample and interns the sorted reference),
  // then build the detector over the same sample.
  MOCHE_ASSIGN_OR_RETURN(
      std::shared_ptr<const PreparedReference> prepared,
      cache_->GetOrPrepare(engine_, reference, options_.alpha));
  MOCHE_ASSIGN_OR_RETURN(
      StreamingKs detector,
      StreamingKs::Create(reference, window_size, options_.alpha));
  streams_.emplace_back(std::move(name), std::move(detector),
                        std::move(prepared));
  return streams_.size() - 1;
}

DriftEvent DriftMonitor::Explain(size_t i, const KsOutcome& outcome) {
  Stream& s = streams_[i];
  DriftEvent event;
  event.stream = i;
  event.tick = s.ticks;
  event.outcome = outcome;
  const std::vector<double> window = s.detector.WindowContents();
  PreferenceList pref = IdentityPreference(window.size());
  if (options_.preference == WindowPreference::kNewestFirst) {
    std::reverse(pref.begin(), pref.end());
  }
  auto report = engine_.ExplainPrepared(*s.prepared, window, pref);
  if (report.ok()) {
    event.report = std::move(report).value();
  } else {
    event.explain_status = report.status();
  }
  return event;
}

Status DriftMonitor::DrainStream(size_t i, const std::vector<double>& values,
                                 std::vector<DriftEvent>* out) {
  Stream& s = streams_[i];
  for (double v : values) {
    MOCHE_RETURN_IF_ERROR(s.detector.Push(v));
    ++s.ticks;
    if (!s.detector.WindowFull()) continue;
    // Validated at construction; the window is full — CurrentOutcome
    // cannot fail.
    auto outcome = s.detector.CurrentOutcome();
    if (!outcome.ok()) return outcome.status();
    if (!outcome->reject) {
      s.in_excursion = false;
      continue;
    }
    ++s.drift_ticks;
    bool fire = false;
    if (!s.in_excursion) {
      s.in_excursion = true;
      fire = true;
    } else if (options_.rearm == RearmPolicy::kEveryKPushes) {
      fire = s.pushes_since_explained + 1 >= options_.explain_every_k;
    }
    if (fire) {
      out->push_back(Explain(i, *outcome));
      s.pushes_since_explained = 0;
    } else {
      ++s.pushes_since_explained;
    }
  }
  return Status::OK();
}

Status DriftMonitor::PushBatch(
    const std::vector<std::vector<double>>& observations) {
  if (observations.size() != streams_.size()) {
    return Status::InvalidArgument(
        StrFormat("batch has %zu slots for %zu streams",
                  observations.size(), streams_.size()));
  }
  // Validate before fanning out: workers must not fail mid-stream (a
  // partial drain would leave detector windows half-advanced).
  for (size_t i = 0; i < observations.size(); ++i) {
    for (double v : observations[i]) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(StrFormat(
            "non-finite observation for stream %zu ('%s')", i,
            streams_[i].name.c_str()));
      }
    }
  }

  // Stream i's task writes only slot i; the merge below is therefore
  // independent of which worker ran which stream.
  std::vector<std::vector<DriftEvent>> buffers(streams_.size());
  std::vector<Status> statuses(streams_.size());
  const auto task = [&](size_t i) {
    statuses[i] = DrainStream(i, observations[i], &buffers[i]);
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(streams_.size(), task);
  } else {
    for (size_t i = 0; i < streams_.size(); ++i) task(i);
  }

  for (size_t i = 0; i < streams_.size(); ++i) {
    MOCHE_RETURN_IF_ERROR(statuses[i]);
  }
  // Merge in (tick, stream) order: deterministic for any thread count, and
  // — when streams are fed in lockstep, as the replay harness does — also
  // independent of how the caller batches the ticks.
  std::vector<DriftEvent> merged;
  for (std::vector<DriftEvent>& buffer : buffers) {
    for (DriftEvent& event : buffer) {
      merged.push_back(std::move(event));
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const DriftEvent& a, const DriftEvent& b) {
                     return a.tick != b.tick ? a.tick < b.tick
                                             : a.stream < b.stream;
                   });
  for (DriftEvent& event : merged) {
    events_.push_back(std::move(event));
    ++explanations_total_;
  }
  return Status::OK();
}

Status DriftMonitor::PushTick(const std::vector<double>& values) {
  std::vector<std::vector<double>> batch(values.size());
  for (size_t i = 0; i < values.size(); ++i) batch[i] = {values[i]};
  return PushBatch(batch);
}

DriftMonitor::Stats DriftMonitor::stats() const {
  Stats s;
  s.streams = streams_.size();
  for (const Stream& stream : streams_) {
    s.observations += stream.ticks;
    s.drift_ticks += stream.drift_ticks;
  }
  s.explanations = explanations_total_;
  return s;
}

}  // namespace stream
}  // namespace moche
