#include "stream/prepared_cache.h"

#include "util/binary_io.h"

namespace moche {
namespace stream {

namespace {

// 64-bit FNV-1a over the eight little-endian bytes of `word`, LSB first.
// The bytes come from shift-and-mask on the integer VALUE, never from
// reinterpreting host memory, so the digest is identical on big- and
// little-endian machines: this is FNV-1a over exactly the byte string
// bin::AppendU64Le would emit for `word`.
inline uint64_t Fnv1aU64Le(uint64_t hash, uint64_t word) {
  constexpr uint64_t kPrime = 1099511628211ull;
  for (int i = 0; i < 8; ++i) {
    hash ^= (word >> (8 * i)) & 0xFFu;
    hash *= kPrime;
  }
  return hash;
}

// -0.0 == +0.0, and the cache's exact-match guard compares with
// operator==, so two references differing only in a zero's sign are the
// same cache key. Hash the canonical +0.0 for both: hashing raw bits would
// send them to different buckets and silently duplicate the entry (a miss
// and a second sort where the guard would have hit).
inline uint64_t CanonicalDoubleBits(double v) {
  return bin::DoubleBits(v == 0.0 ? 0.0 : v);
}

}  // namespace

uint64_t ReferenceFingerprint(const std::vector<double>& values,
                              double alpha) {
  // FNV-1a over the canonical byte string
  //   AppendU64Le(count) AppendDoubleLe(alpha') AppendDoubleLe(v'_0) ...
  // with ' marking zero-canonicalization — the same encoding the snapshot
  // layer writes, hashed without materializing the buffer. The
  // golden-sequence test in tests/stream/prepared_cache_test.cc pins the
  // digest; persisted shard assignment depends on it never drifting.
  uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  hash = Fnv1aU64Le(hash, static_cast<uint64_t>(values.size()));
  hash = Fnv1aU64Le(hash, CanonicalDoubleBits(alpha));
  for (double v : values) hash = Fnv1aU64Le(hash, CanonicalDoubleBits(v));
  return hash;
}

Result<std::shared_ptr<const PreparedReference>>
PreparedReferenceCache::GetOrPrepare(const Moche& engine,
                                     const std::vector<double>& reference,
                                     double alpha) {
  const uint64_t fingerprint = ReferenceFingerprint(reference, alpha);
  {
    MutexLock lock(&mutex_);
    auto it = entries_.find(fingerprint);
    if (it != entries_.end()) {
      for (const Entry& entry : it->second) {
        if (entry.alpha == alpha && entry.original == reference) {
          ++hits_;
          return entry.prepared;
        }
      }
    }
  }

  // Prepare outside the lock: sorting a large reference must not serialize
  // unrelated lookups. A racing same-key Prepare is benign — the second
  // insert sees the first entry and adopts it.
  auto prepared = engine.Prepare(reference, alpha);
  if (!prepared.ok()) return prepared.status();
  auto shared = std::make_shared<const PreparedReference>(
      std::move(prepared).value());

  MutexLock lock(&mutex_);
  std::vector<Entry>& bucket = entries_[fingerprint];
  for (const Entry& entry : bucket) {
    if (entry.alpha == alpha && entry.original == reference) {
      ++hits_;
      return entry.prepared;
    }
  }
  ++misses_;
  bucket.push_back(Entry{reference, alpha, shared});
  return shared;
}

Result<std::shared_ptr<const PreparedReference>>
PreparedReferenceCache::InternRestored(std::vector<double> original,
                                       double alpha,
                                       PreparedReference prepared) {
  // A CRC-clean snapshot can still pair sections wrongly (a hand-spliced
  // file); cheap consistency checks keep such a splice from planting an
  // entry whose prepared reference disagrees with its key.
  if (prepared.alpha() != alpha) {
    return Status::InvalidArgument(
        "restored prepared reference alpha does not match its cache key");
  }
  if (prepared.sorted_reference().size() != original.size()) {
    return Status::InvalidArgument(
        "restored prepared reference size does not match its cache key");
  }
  const uint64_t fingerprint = ReferenceFingerprint(original, alpha);
  MutexLock lock(&mutex_);
  std::vector<Entry>& bucket = entries_[fingerprint];
  for (const Entry& entry : bucket) {
    if (entry.alpha == alpha && entry.original == original) {
      return entry.prepared;
    }
  }
  auto shared =
      std::make_shared<const PreparedReference>(std::move(prepared));
  bucket.push_back(Entry{std::move(original), alpha, shared});
  return shared;
}

bool PreparedReferenceCache::FindOriginal(const PreparedReference* prepared,
                                          std::vector<double>* original,
                                          double* alpha) const {
  MutexLock lock(&mutex_);
  for (const auto& [fingerprint, bucket] : entries_) {
    (void)fingerprint;
    for (const Entry& entry : bucket) {
      if (entry.prepared.get() == prepared) {
        *original = entry.original;
        *alpha = entry.alpha;
        return true;
      }
    }
  }
  return false;
}

PreparedReferenceCache::Stats PreparedReferenceCache::stats() const {
  MutexLock lock(&mutex_);
  Stats s;
  for (const auto& [fingerprint, bucket] : entries_) {
    (void)fingerprint;
    s.entries += bucket.size();
  }
  s.hits = hits_;
  s.misses = misses_;
  return s;
}

}  // namespace stream
}  // namespace moche
