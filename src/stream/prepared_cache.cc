#include "stream/prepared_cache.h"

#include <cstring>

namespace moche {
namespace stream {

namespace {

inline uint64_t Fnv1a(uint64_t hash, uint64_t word) {
  // 64-bit FNV-1a, one byte at a time over the word.
  constexpr uint64_t kPrime = 1099511628211ull;
  for (int i = 0; i < 8; ++i) {
    hash ^= (word >> (8 * i)) & 0xFFu;
    hash *= kPrime;
  }
  return hash;
}

inline uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// -0.0 == +0.0, and the cache's exact-match guard compares with
// operator==, so two references differing only in a zero's sign are the
// same cache key. Hash the canonical +0.0 for both: hashing raw bits would
// send them to different buckets and silently duplicate the entry (a miss
// and a second sort where the guard would have hit).
inline uint64_t CanonicalDoubleBits(double v) {
  return DoubleBits(v == 0.0 ? 0.0 : v);
}

}  // namespace

uint64_t ReferenceFingerprint(const std::vector<double>& values,
                              double alpha) {
  uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  hash = Fnv1a(hash, values.size());
  hash = Fnv1a(hash, CanonicalDoubleBits(alpha));
  for (double v : values) hash = Fnv1a(hash, CanonicalDoubleBits(v));
  return hash;
}

Result<std::shared_ptr<const PreparedReference>>
PreparedReferenceCache::GetOrPrepare(const Moche& engine,
                                     const std::vector<double>& reference,
                                     double alpha) {
  const uint64_t fingerprint = ReferenceFingerprint(reference, alpha);
  {
    MutexLock lock(&mutex_);
    auto it = entries_.find(fingerprint);
    if (it != entries_.end()) {
      for (const Entry& entry : it->second) {
        if (entry.alpha == alpha && entry.original == reference) {
          ++hits_;
          return entry.prepared;
        }
      }
    }
  }

  // Prepare outside the lock: sorting a large reference must not serialize
  // unrelated lookups. A racing same-key Prepare is benign — the second
  // insert sees the first entry and adopts it.
  auto prepared = engine.Prepare(reference, alpha);
  if (!prepared.ok()) return prepared.status();
  auto shared = std::make_shared<const PreparedReference>(
      std::move(prepared).value());

  MutexLock lock(&mutex_);
  std::vector<Entry>& bucket = entries_[fingerprint];
  for (const Entry& entry : bucket) {
    if (entry.alpha == alpha && entry.original == reference) {
      ++hits_;
      return entry.prepared;
    }
  }
  ++misses_;
  bucket.push_back(Entry{reference, alpha, shared});
  return shared;
}

PreparedReferenceCache::Stats PreparedReferenceCache::stats() const {
  MutexLock lock(&mutex_);
  Stats s;
  for (const auto& [fingerprint, bucket] : entries_) {
    (void)fingerprint;
    s.entries += bucket.size();
  }
  s.hits = hits_;
  s.misses = misses_;
  return s;
}

}  // namespace stream
}  // namespace moche
