#include "stream/prepared_cache.h"

#include <utility>

#include "util/binary_io.h"
#include "util/string_util.h"

namespace moche {
namespace stream {

namespace {

// 64-bit FNV-1a over the eight little-endian bytes of `word`, LSB first.
// The bytes come from shift-and-mask on the integer VALUE, never from
// reinterpreting host memory, so the digest is identical on big- and
// little-endian machines: this is FNV-1a over exactly the byte string
// bin::AppendU64Le would emit for `word`.
inline uint64_t Fnv1aU64Le(uint64_t hash, uint64_t word) {
  constexpr uint64_t kPrime = 1099511628211ull;
  for (int i = 0; i < 8; ++i) {
    hash ^= (word >> (8 * i)) & 0xFFu;
    hash *= kPrime;
  }
  return hash;
}

// -0.0 == +0.0, and the cache's exact-match guard compares with
// operator==, so two references differing only in a zero's sign are the
// same cache key. Hash the canonical +0.0 for both: hashing raw bits would
// send them to different buckets and silently duplicate the entry (a miss
// and a second sort where the guard would have hit).
inline uint64_t CanonicalDoubleBits(double v) {
  return bin::DoubleBits(v == 0.0 ? 0.0 : v);
}

}  // namespace

uint64_t ReferenceFingerprint(const std::vector<double>& values,
                              double alpha) {
  // FNV-1a over the canonical byte string
  //   AppendU64Le(count) AppendDoubleLe(alpha') AppendDoubleLe(v'_0) ...
  // with ' marking zero-canonicalization — the same encoding the snapshot
  // layer writes, hashed without materializing the buffer. The
  // golden-sequence test in tests/stream/prepared_cache_test.cc pins the
  // digest; persisted shard assignment depends on it never drifting.
  uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  hash = Fnv1aU64Le(hash, static_cast<uint64_t>(values.size()));
  hash = Fnv1aU64Le(hash, CanonicalDoubleBits(alpha));
  for (double v : values) hash = Fnv1aU64Le(hash, CanonicalDoubleBits(v));
  return hash;
}

PreparedReferenceCache::Entry* PreparedReferenceCache::FindEntryLocked(
    uint64_t fingerprint, const std::vector<double>& reference,
    double alpha) {
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return nullptr;
  for (Entry& entry : it->second) {
    if (entry.alpha == alpha && entry.original == reference) {
      entry.last_used = ++use_clock_;
      return &entry;
    }
  }
  return nullptr;
}

PreparedReferenceCache::Entry* PreparedReferenceCache::InsertEntryLocked(
    uint64_t fingerprint, std::vector<double> reference, double alpha) {
  EvictIfOverCapacityLocked();
  std::vector<Entry>& bucket = entries_[fingerprint];
  bucket.push_back(Entry{});
  Entry& entry = bucket.back();
  entry.original = std::move(reference);
  entry.alpha = alpha;
  entry.last_used = ++use_clock_;
  return &entry;
}

size_t PreparedReferenceCache::CountEntriesLocked() const {
  size_t count = 0;
  for (const auto& [fingerprint, bucket] : entries_) {
    (void)fingerprint;
    count += bucket.size();
  }
  return count;
}

void PreparedReferenceCache::EvictIfOverCapacityLocked() {
  if (options_.capacity == 0) return;
  // Called before an insert: evict until the newcomer fits. Unpinned means
  // the cache's shared_ptrs are the last owners — dropping the entry frees
  // the reference, it cannot strand a live stream. O(entries) per scan is
  // fine: eviction only runs on interning, never on the push hot path.
  while (CountEntriesLocked() >= options_.capacity) {
    std::unordered_map<uint64_t, std::vector<Entry>>::iterator victim_bucket =
        entries_.end();
    size_t victim_index = 0;
    uint64_t victim_stamp = 0;
    bool found = false;
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      for (size_t i = 0; i < it->second.size(); ++i) {
        const Entry& entry = it->second[i];
        const bool pinned =
            (entry.prepared != nullptr && entry.prepared.use_count() > 1) ||
            (entry.sketched != nullptr && entry.sketched.use_count() > 1);
        if (pinned) continue;
        if (!found || entry.last_used < victim_stamp) {
          victim_bucket = it;
          victim_index = i;
          victim_stamp = entry.last_used;
          found = true;
        }
      }
    }
    if (!found) return;  // everything pinned: allow over-capacity
    victim_bucket->second.erase(victim_bucket->second.begin() +
                                static_cast<ptrdiff_t>(victim_index));
    if (victim_bucket->second.empty()) entries_.erase(victim_bucket);
    ++evictions_;
  }
}

Result<std::shared_ptr<const PreparedReference>>
PreparedReferenceCache::GetOrPrepare(const Moche& engine,
                                     const std::vector<double>& reference,
                                     double alpha) {
  const uint64_t fingerprint = ReferenceFingerprint(reference, alpha);
  {
    MutexLock lock(&mutex_);
    Entry* entry = FindEntryLocked(fingerprint, reference, alpha);
    if (entry != nullptr && entry->prepared != nullptr) {
      ++hits_;
      return entry->prepared;
    }
  }

  // Prepare outside the lock: sorting a large reference must not serialize
  // unrelated lookups. A racing same-key Prepare is benign — the second
  // insert sees the first entry and adopts it.
  auto prepared = engine.Prepare(reference, alpha);
  if (!prepared.ok()) return prepared.status();
  auto shared = std::make_shared<const PreparedReference>(
      std::move(prepared).value());

  MutexLock lock(&mutex_);
  Entry* entry = FindEntryLocked(fingerprint, reference, alpha);
  if (entry != nullptr) {
    if (entry->prepared != nullptr) {
      ++hits_;
      return entry->prepared;
    }
    // The entry exists with only a sketch (GetOrSketch came first): attach
    // the exact form to the same entry.
    ++misses_;
    entry->prepared = shared;
    return shared;
  }
  ++misses_;
  InsertEntryLocked(fingerprint, reference, alpha)->prepared = shared;
  return shared;
}

Result<std::shared_ptr<const sketch::SketchedReference>>
PreparedReferenceCache::GetOrSketch(const std::vector<double>& reference,
                                    double alpha,
                                    const sketch::KllOptions& options) {
  const uint64_t fingerprint = ReferenceFingerprint(reference, alpha);
  {
    MutexLock lock(&mutex_);
    Entry* entry = FindEntryLocked(fingerprint, reference, alpha);
    if (entry != nullptr && entry->sketched != nullptr) {
      if (entry->sketched->sketch_capacity() != options.capacity) {
        return Status::InvalidArgument(StrFormat(
            "reference already interned with sketch capacity %zu, not %zu",
            entry->sketched->sketch_capacity(), options.capacity));
      }
      ++hits_;
      return entry->sketched;
    }
  }

  // Build outside the lock (one O(n) pass over the sample), same rationale
  // and same benign race as GetOrPrepare.
  auto built = sketch::SketchedReference::FromSample(reference, alpha,
                                                     options);
  if (!built.ok()) return built.status();
  auto shared = std::make_shared<const sketch::SketchedReference>(
      std::move(built).value());

  MutexLock lock(&mutex_);
  Entry* entry = FindEntryLocked(fingerprint, reference, alpha);
  if (entry != nullptr) {
    if (entry->sketched != nullptr) {
      if (entry->sketched->sketch_capacity() != options.capacity) {
        return Status::InvalidArgument(StrFormat(
            "reference already interned with sketch capacity %zu, not %zu",
            entry->sketched->sketch_capacity(), options.capacity));
      }
      ++hits_;
      return entry->sketched;
    }
    ++misses_;
    entry->sketched = shared;
    return shared;
  }
  ++misses_;
  InsertEntryLocked(fingerprint, reference, alpha)->sketched = shared;
  return shared;
}

Result<std::shared_ptr<const PreparedReference>>
PreparedReferenceCache::InternRestored(std::vector<double> original,
                                       double alpha,
                                       PreparedReference prepared) {
  // A CRC-clean snapshot can still pair sections wrongly (a hand-spliced
  // file); cheap consistency checks keep such a splice from planting an
  // entry whose prepared reference disagrees with its key.
  if (prepared.alpha() != alpha) {
    return Status::InvalidArgument(
        "restored prepared reference alpha does not match its cache key");
  }
  if (prepared.sorted_reference().size() != original.size()) {
    return Status::InvalidArgument(
        "restored prepared reference size does not match its cache key");
  }
  const uint64_t fingerprint = ReferenceFingerprint(original, alpha);
  MutexLock lock(&mutex_);
  Entry* entry = FindEntryLocked(fingerprint, original, alpha);
  if (entry != nullptr) {
    if (entry->prepared != nullptr) return entry->prepared;
    entry->prepared =
        std::make_shared<const PreparedReference>(std::move(prepared));
    return entry->prepared;
  }
  entry = InsertEntryLocked(fingerprint, std::move(original), alpha);
  entry->prepared =
      std::make_shared<const PreparedReference>(std::move(prepared));
  return entry->prepared;
}

Result<std::shared_ptr<const sketch::SketchedReference>>
PreparedReferenceCache::InternRestoredSketched(
    std::vector<double> original, double alpha,
    sketch::SketchedReference sketched) {
  if (sketched.alpha() != alpha) {
    return Status::InvalidArgument(
        "restored sketched reference alpha does not match its cache key");
  }
  if (sketched.count() != original.size()) {
    return Status::InvalidArgument(
        "restored sketched reference count does not match its cache key");
  }
  const uint64_t fingerprint = ReferenceFingerprint(original, alpha);
  MutexLock lock(&mutex_);
  Entry* entry = FindEntryLocked(fingerprint, original, alpha);
  if (entry != nullptr) {
    if (entry->sketched != nullptr) {
      if (entry->sketched->sketch_capacity() != sketched.sketch_capacity()) {
        return Status::InvalidArgument(
            "restored sketched reference capacity disagrees with the "
            "interned summary for the same key");
      }
      return entry->sketched;
    }
    entry->sketched = std::make_shared<const sketch::SketchedReference>(
        std::move(sketched));
    return entry->sketched;
  }
  entry = InsertEntryLocked(fingerprint, std::move(original), alpha);
  entry->sketched = std::make_shared<const sketch::SketchedReference>(
      std::move(sketched));
  return entry->sketched;
}

bool PreparedReferenceCache::FindOriginal(const PreparedReference* prepared,
                                          std::vector<double>* original,
                                          double* alpha) const {
  MutexLock lock(&mutex_);
  for (const auto& [fingerprint, bucket] : entries_) {
    (void)fingerprint;
    for (const Entry& entry : bucket) {
      if (entry.prepared.get() == prepared) {
        *original = entry.original;
        *alpha = entry.alpha;
        return true;
      }
    }
  }
  return false;
}

PreparedReferenceCache::Stats PreparedReferenceCache::stats() const {
  MutexLock lock(&mutex_);
  Stats s;
  for (const auto& [fingerprint, bucket] : entries_) {
    (void)fingerprint;
    s.entries += bucket.size();
    for (const Entry& entry : bucket) {
      s.resident_bytes += entry.original.capacity() * sizeof(double);
      if (entry.prepared != nullptr) {
        s.resident_bytes += sizeof(PreparedReference) +
                            entry.prepared->sorted_reference().capacity() *
                                sizeof(double);
      }
      if (entry.sketched != nullptr) {
        s.resident_bytes += sizeof(sketch::SketchedReference) +
                            entry.sketched->FootprintBytes();
      }
    }
  }
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  return s;
}

}  // namespace stream
}  // namespace moche
