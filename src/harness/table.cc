#include "harness/table.h"

#include <algorithm>

#include "util/string_util.h"

namespace moche {
namespace harness {

std::string AsciiTable::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += cell;
      line.append(widths[c] - cell.size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string RenderBoxPlot(const FiveNumberSummary& s) {
  return StrFormat("%6.2f [%6.2f |%6.2f |%6.2f ]%7.2f  (mean %.2f)", s.min,
                   s.q1, s.median, s.q3, s.max, s.mean);
}

}  // namespace harness
}  // namespace moche
