// The experiment driver behind Figures 2, 3, 5 and Table 2: collect failed
// sliding-window KS tests from a dataset (with Spectral-Residual preference
// lists, as in Section 6.1.1), sample them, run every explainer, and
// aggregate ISE / RF / RMSE / runtime per method.
//
// Ownership & thread-safety: the result/option structs are plain values
// owned by the caller. CollectFailedInstances is pure. RunMethods shares
// each (const) method object across its internal util/parallel workers —
// the Explainer contract (baselines/explainer.h) makes that safe — and
// every worker owns a private workspace; the returned vectors are fresh
// caller-owned values.

#ifndef MOCHE_HARNESS_RUNNER_H_
#define MOCHE_HARNESS_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/explainer.h"
#include "core/instance.h"
#include "core/preference.h"
#include "timeseries/series.h"
#include "util/rng.h"
#include "util/status.h"

namespace moche {
namespace harness {

/// One sampled failed KS test ready to be explained.
struct ExperimentInstance {
  std::string dataset;
  std::string series;
  size_t window = 0;
  size_t test_begin = 0;   ///< offset of the test window in the series
  KsInstance instance;
  PreferenceList preference;  ///< Spectral Residual outlier ranking
};

struct CollectOptions {
  std::vector<size_t> window_sizes{100, 200, 300};
  double alpha = 0.05;
  /// Failed tests sampled per (series, window) combination (the paper
  /// uniformly samples 10).
  size_t sample_per_combination = 10;
  /// Keep only failed tests whose test window overlaps a labelled anomaly
  /// (the paper's sampling rule). Series without labels keep everything.
  bool require_labeled_anomaly = true;
  uint64_t seed = 17;
  /// Threads scanning series concurrently: 1 = sequential (default),
  /// 0 = one per hardware core. Every (series, window) combination draws
  /// its sample from an Rng seeded by (seed, series index, window index),
  /// so the collected instances are identical for every thread count.
  size_t num_threads = 1;
};

/// Collects and samples failed window tests across all series of `dataset`,
/// attaching Spectral-Residual preference lists. Window sizes that do not
/// fit a series are skipped silently. Series are scanned in parallel when
/// options.num_threads != 1; the output order (and content) is that of the
/// sequential scan regardless.
Result<std::vector<ExperimentInstance>> CollectFailedInstances(
    const ts::Dataset& dataset, const CollectOptions& options);

/// The outcome of one method on one instance.
struct MethodOutcome {
  std::string method;
  bool produced = false;   ///< false when the method aborted (RF accounting)
  StatusCode code = StatusCode::kOk;
  size_t size = 0;         ///< explanation size when produced
  double rmse = 0.0;       ///< ECDF RMSE when produced
  double seconds = 0.0;    ///< wall time of the Explain call
};

/// All methods' outcomes on one instance.
struct InstanceResults {
  const ExperimentInstance* instance = nullptr;
  std::vector<MethodOutcome> outcomes;
  /// Wall time of the whole task (all methods on this instance), measured
  /// inside the worker that ran it.
  double seconds = 0.0;
};

struct RunOptions {
  /// Worker threads explaining instances concurrently: 1 = sequential
  /// (default), 0 = one per hardware core. Each task is one instance run
  /// through every method and writes only its own results slot, so the
  /// result vector (and hence Aggregate) is identical for every thread
  /// count. Methods are shared across workers — the Explainer contract
  /// requires const, concurrency-safe Explain.
  size_t num_threads = 1;
};

/// Runs every explainer on every instance. Explainers whose Explain returns
/// a non-OK status count as "not produced" with that status code. Each
/// worker thread owns one ExplainWorkspace, handed to the methods through
/// Explainer::ExplainReusing, so workspace-aware methods (MOCHE) run the
/// whole sweep without steady-state scratch allocation; results are
/// identical to calling Explain directly.
std::vector<InstanceResults> RunMethods(
    const std::vector<ExperimentInstance>& instances,
    const std::vector<baselines::Explainer*>& methods,
    const RunOptions& options);

/// Sequential convenience overload (RunOptions{}).
std::vector<InstanceResults> RunMethods(
    const std::vector<ExperimentInstance>& instances,
    const std::vector<baselines::Explainer*>& methods);

/// Per-method aggregate over a set of instance results (one paper bar/cell).
struct MethodAggregate {
  std::string method;
  double avg_ise = 0.0;        ///< over instances where ALL methods produced
  double avg_rmse = 0.0;       ///< over instances where this method produced
  double reverse_factor = 0.0; ///< produced / attempted
  double avg_seconds = 0.0;    ///< over attempted instances
  size_t attempted = 0;
  size_t produced = 0;
  size_t ise_counted = 0;      ///< instances entering the ISE average
};

/// Aggregates results per method. ISE follows the paper's rule: only
/// instances where every method produced an explanation contribute.
/// InvalidArgument when the records are ragged — every record must list
/// the same methods (same count, same names, same order).
Result<std::vector<MethodAggregate>> Aggregate(
    const std::vector<InstanceResults>& results);

}  // namespace harness
}  // namespace moche

#endif  // MOCHE_HARNESS_RUNNER_H_
