// Streaming scenario runner: replays a dataset's series through a
// stream::DriftMonitor, the online counterpart of the batch runner.h
// pipeline. Each series becomes one monitored stream — its prefix is the
// fixed reference sample, the remainder arrives in batched ticks — and
// every drift the monitor detects is explained on the spot.
//
// Ownership & thread-safety: ReplayDataset drives a function-local
// DriftMonitor (which owns the worker threads for the run) and returns a
// caller-owned ReplayResult; the borrowed dataset is read-only. Concurrent
// replays of different datasets are independent.

#ifndef MOCHE_HARNESS_STREAM_REPLAY_H_
#define MOCHE_HARNESS_STREAM_REPLAY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "stream/drift_monitor.h"
#include "timeseries/series.h"
#include "util/status.h"

namespace moche {
namespace harness {

struct ReplayOptions {
  /// Leading observations of each series frozen as its reference sample.
  size_t reference_size = 200;
  /// Sliding test-window capacity of each detector.
  size_t window_size = 100;
  /// Observations fed to every stream per monitor batch. Batching only
  /// changes fan-out granularity, never the event log.
  size_t ticks_per_batch = 64;
  /// When non-empty, the monitor is checkpointed into this directory
  /// (persist::CheckpointMonitor) every `checkpoint_every_batches` batches
  /// — the durable-replay deployment shape: a crashed run resumes from the
  /// last checkpoint via ResumeReplayDataset instead of replaying from
  /// tick zero.
  std::string checkpoint_dir;
  size_t checkpoint_every_batches = 0;  ///< 0 = only with checkpoint_dir: 1
  stream::MonitorOptions monitor;
};

struct ReplayResult {
  std::vector<stream::DriftEvent> events;
  /// stream_names[i] names monitor stream i; look an event's name up as
  /// stream_names[event.stream].
  std::vector<std::string> stream_names;
  size_t series_skipped = 0;   ///< too short for reference + window
  uint64_t observations = 0;   ///< total pushed across streams
  uint64_t drift_ticks = 0;    ///< pushes whose window rejected
  stream::PreparedReferenceCache::Stats cache;
};

/// Replays every long-enough series of `dataset` through one DriftMonitor.
/// A series needs reference_size + window_size observations to produce at
/// least one full window; shorter series are counted in series_skipped.
/// Deterministic: the result is identical for every
/// options.monitor.num_threads.
Result<ReplayResult> ReplayDataset(const ts::Dataset& dataset,
                                   const ReplayOptions& options);

/// Resumes a replay from the checkpoint in options.checkpoint_dir: the
/// monitor (streams, detector windows, re-arm state, event log) is
/// restored and fed the dataset observations it had not yet consumed, in
/// the same lockstep batches ReplayDataset would have produced. The
/// returned result — including the events recorded before the checkpoint —
/// is bit-identical (stream::SameEventLogs) to an uninterrupted
/// ReplayDataset over the same dataset and options. InvalidArgument when
/// the checkpoint's streams do not match the dataset's eligible series
/// (a checkpoint restores against the data that produced it).
Result<ReplayResult> ResumeReplayDataset(const ts::Dataset& dataset,
                                         const ReplayOptions& options);

}  // namespace harness
}  // namespace moche

#endif  // MOCHE_HARNESS_STREAM_REPLAY_H_
