#include "harness/stream_replay.h"

#include <algorithm>
#include <utility>

#include "persist/monitor_codec.h"
#include "util/string_util.h"

namespace moche {
namespace harness {

namespace {

Status ValidateReplayOptions(const ReplayOptions& options) {
  if (options.reference_size == 0 || options.window_size == 0) {
    return Status::InvalidArgument(
        "reference_size and window_size must be positive");
  }
  if (options.ticks_per_batch == 0) {
    return Status::InvalidArgument("ticks_per_batch must be positive");
  }
  return Status::OK();
}

/// The dataset's series that are long enough to monitor, in dataset order
/// (the stream order of both the fresh and the resumed replay).
std::vector<const ts::TimeSeries*> EligibleSeries(const ts::Dataset& dataset,
                                                  const ReplayOptions& options,
                                                  size_t* skipped) {
  std::vector<const ts::TimeSeries*> streams;
  for (const ts::TimeSeries& series : dataset.series) {
    if (series.length() < options.reference_size + options.window_size) {
      ++*skipped;
      continue;
    }
    streams.push_back(&series);
  }
  return streams;
}

/// Feeds lockstep batches starting at tail offset `t0_start`, writing a
/// checkpoint every `checkpoint_every` batches when a directory is set.
/// The batch boundaries depend only on (t0, ticks_per_batch), so a resumed
/// run slices the identical batches an uninterrupted run would have.
Status RunReplayLoop(stream::DriftMonitor* monitor,
                     const std::vector<const ts::TimeSeries*>& streams,
                     const ReplayOptions& options, size_t t0_start,
                     size_t max_tail) {
  const size_t checkpoint_every = options.checkpoint_dir.empty()
                                      ? 0
                                      : std::max<size_t>(
                                            1, options.checkpoint_every_batches);
  std::vector<std::vector<double>> batch(streams.size());
  size_t batches_done = 0;
  for (size_t t0 = t0_start; t0 < max_tail; t0 += options.ticks_per_batch) {
    for (size_t i = 0; i < streams.size(); ++i) {
      const std::vector<double>& values = streams[i]->values;
      const size_t begin =
          std::min(values.size(), options.reference_size + t0);
      const size_t end =
          std::min(values.size(), begin + options.ticks_per_batch);
      batch[i].assign(values.begin() + static_cast<long>(begin),
                      values.begin() + static_cast<long>(end));
    }
    MOCHE_RETURN_IF_ERROR(monitor->PushBatch(batch));
    ++batches_done;
    if (checkpoint_every != 0 && batches_done % checkpoint_every == 0) {
      MOCHE_RETURN_IF_ERROR(
          persist::CheckpointMonitor(*monitor, options.checkpoint_dir));
    }
  }
  return Status::OK();
}

ReplayResult FinishResult(const stream::DriftMonitor& monitor,
                          const std::vector<const ts::TimeSeries*>& streams,
                          size_t skipped) {
  ReplayResult result;
  result.series_skipped = skipped;
  for (const ts::TimeSeries* series : streams) {
    result.stream_names.push_back(series->name);
  }
  const stream::DriftMonitor::Stats stats = monitor.stats();
  result.observations = stats.observations;
  result.drift_ticks = stats.drift_ticks;
  result.cache = monitor.cache_stats();
  result.events = monitor.events();
  return result;
}

size_t MaxTail(const std::vector<const ts::TimeSeries*>& streams,
               const ReplayOptions& options) {
  size_t max_tail = 0;
  for (const ts::TimeSeries* series : streams) {
    max_tail = std::max(max_tail, series->length() - options.reference_size);
  }
  return max_tail;
}

}  // namespace

Result<ReplayResult> ReplayDataset(const ts::Dataset& dataset,
                                   const ReplayOptions& options) {
  MOCHE_RETURN_IF_ERROR(ValidateReplayOptions(options));

  MOCHE_ASSIGN_OR_RETURN(stream::DriftMonitor monitor,
                         stream::DriftMonitor::Create(options.monitor));

  size_t skipped = 0;
  const std::vector<const ts::TimeSeries*> streams =
      EligibleSeries(dataset, options, &skipped);
  if (streams.empty()) {
    return Status::InvalidArgument(StrFormat(
        "no series of '%s' is long enough for reference %zu + window %zu",
        dataset.name.c_str(), options.reference_size, options.window_size));
  }
  for (const ts::TimeSeries* series : streams) {
    const std::vector<double> reference(
        series->values.begin(),
        series->values.begin() + static_cast<long>(options.reference_size));
    MOCHE_ASSIGN_OR_RETURN(
        size_t index,
        monitor.AddStream(series->name, reference, options.window_size));
    (void)index;
  }

  MOCHE_RETURN_IF_ERROR(RunReplayLoop(&monitor, streams, options,
                                      /*t0_start=*/0,
                                      MaxTail(streams, options)));
  return FinishResult(monitor, streams, skipped);
}

Result<ReplayResult> ResumeReplayDataset(const ts::Dataset& dataset,
                                         const ReplayOptions& options) {
  MOCHE_RETURN_IF_ERROR(ValidateReplayOptions(options));
  if (options.checkpoint_dir.empty()) {
    return Status::InvalidArgument("resume needs a checkpoint_dir");
  }
  persist::RestoreOptions restore;
  restore.num_threads = options.monitor.num_threads;
  MOCHE_ASSIGN_OR_RETURN(stream::DriftMonitor monitor,
                         persist::RestoreMonitor(options.checkpoint_dir,
                                                 restore));

  size_t skipped = 0;
  const std::vector<const ts::TimeSeries*> streams =
      EligibleSeries(dataset, options, &skipped);
  if (monitor.num_streams() != streams.size()) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint has %zu streams but dataset '%s' yields %zu",
        monitor.num_streams(), dataset.name.c_str(), streams.size()));
  }
  for (size_t i = 0; i < streams.size(); ++i) {
    if (monitor.stream_name(i) != streams[i]->name) {
      return Status::InvalidArgument(StrFormat(
          "checkpoint stream %zu is '%s' but dataset series %zu is '%s'", i,
          monitor.stream_name(i).c_str(), i, streams[i]->name.c_str()));
    }
  }

  // The checkpoint landed on a lockstep batch boundary, so every stream
  // that had observations left sits at the same tail offset; exhausted
  // streams sit lower (their clamped slices were already empty). Resuming
  // from the maximum reproduces the uninterrupted batch sequence.
  size_t t0_start = 0;
  for (size_t i = 0; i < monitor.num_streams(); ++i) {
    t0_start = std::max(t0_start,
                        static_cast<size_t>(monitor.stream_ticks(i)));
  }
  MOCHE_RETURN_IF_ERROR(RunReplayLoop(&monitor, streams, options, t0_start,
                                      MaxTail(streams, options)));
  return FinishResult(monitor, streams, skipped);
}

}  // namespace harness
}  // namespace moche
