#include "harness/stream_replay.h"

#include <algorithm>
#include <utility>

#include "util/string_util.h"

namespace moche {
namespace harness {

Result<ReplayResult> ReplayDataset(const ts::Dataset& dataset,
                                   const ReplayOptions& options) {
  if (options.reference_size == 0 || options.window_size == 0) {
    return Status::InvalidArgument(
        "reference_size and window_size must be positive");
  }
  if (options.ticks_per_batch == 0) {
    return Status::InvalidArgument("ticks_per_batch must be positive");
  }

  MOCHE_ASSIGN_OR_RETURN(stream::DriftMonitor monitor,
                         stream::DriftMonitor::Create(options.monitor));

  ReplayResult result;
  // streams[i] = the tail of the series backing monitor stream i.
  std::vector<const ts::TimeSeries*> streams;
  size_t max_tail = 0;
  for (const ts::TimeSeries& series : dataset.series) {
    if (series.length() < options.reference_size + options.window_size) {
      ++result.series_skipped;
      continue;
    }
    const std::vector<double> reference(
        series.values.begin(),
        series.values.begin() + static_cast<long>(options.reference_size));
    MOCHE_ASSIGN_OR_RETURN(
        size_t index,
        monitor.AddStream(series.name, reference, options.window_size));
    (void)index;
    streams.push_back(&series);
    max_tail = std::max(max_tail, series.length() - options.reference_size);
    result.stream_names.push_back(series.name);
  }
  if (streams.empty()) {
    return Status::InvalidArgument(StrFormat(
        "no series of '%s' is long enough for reference %zu + window %zu",
        dataset.name.c_str(), options.reference_size, options.window_size));
  }

  // Replay in lockstep batches: tick t delivers series value
  // reference_size + t to its stream; exhausted streams get empty slots.
  std::vector<std::vector<double>> batch(streams.size());
  for (size_t t0 = 0; t0 < max_tail; t0 += options.ticks_per_batch) {
    for (size_t i = 0; i < streams.size(); ++i) {
      const std::vector<double>& values = streams[i]->values;
      const size_t begin =
          std::min(values.size(), options.reference_size + t0);
      const size_t end =
          std::min(values.size(), begin + options.ticks_per_batch);
      batch[i].assign(values.begin() + static_cast<long>(begin),
                      values.begin() + static_cast<long>(end));
    }
    MOCHE_RETURN_IF_ERROR(monitor.PushBatch(batch));
  }

  const stream::DriftMonitor::Stats stats = monitor.stats();
  result.observations = stats.observations;
  result.drift_ticks = stats.drift_ticks;
  result.cache = monitor.cache_stats();
  result.events = monitor.events();
  return result;
}

}  // namespace harness
}  // namespace moche
