#include "harness/export.h"

#include "util/string_util.h"

namespace moche {
namespace harness {

CsvTable ResultsToCsv(const std::vector<InstanceResults>& results) {
  CsvTable table;
  table.rows.push_back({"dataset", "series", "window", "test_begin", "method",
                        "produced", "status", "size", "rmse", "seconds"});
  for (const InstanceResults& record : results) {
    const ExperimentInstance* inst = record.instance;
    for (const MethodOutcome& o : record.outcomes) {
      table.rows.push_back(
          {inst != nullptr ? inst->dataset : "",
           inst != nullptr ? inst->series : "",
           StrFormat("%zu", inst != nullptr ? inst->window : 0),
           StrFormat("%zu", inst != nullptr ? inst->test_begin : 0),
           o.method, o.produced ? "1" : "0", StatusCodeToString(o.code),
           StrFormat("%zu", o.size), FormatFixed(o.rmse, 6),
           FormatFixed(o.seconds, 6)});
    }
  }
  return table;
}

CsvTable AggregatesToCsv(const std::vector<MethodAggregate>& aggregates) {
  CsvTable table;
  table.rows.push_back({"method", "avg_ise", "avg_rmse", "reverse_factor",
                        "avg_seconds", "attempted", "produced",
                        "ise_counted"});
  for (const MethodAggregate& a : aggregates) {
    table.rows.push_back({a.method, FormatFixed(a.avg_ise, 6),
                          FormatFixed(a.avg_rmse, 6),
                          FormatFixed(a.reverse_factor, 6),
                          FormatFixed(a.avg_seconds, 6),
                          StrFormat("%zu", a.attempted),
                          StrFormat("%zu", a.produced),
                          StrFormat("%zu", a.ise_counted)});
  }
  return table;
}

Status WriteResultsCsv(const std::string& path,
                       const std::vector<InstanceResults>& results) {
  return WriteCsvFile(path, ResultsToCsv(results));
}

}  // namespace harness
}  // namespace moche
