#include "harness/metrics.h"

#include <algorithm>

#include "ks/ecdf.h"

namespace moche {
namespace harness {

double ExplanationRmse(const KsInstance& instance, const Explanation& expl) {
  return EcdfRmse(instance.reference, RemoveExplanation(instance, expl));
}

std::vector<int> IsSmallestExplanation(const std::vector<size_t>& sizes) {
  std::vector<int> flags(sizes.size(), 0);
  if (sizes.empty()) return flags;
  const size_t smallest = *std::min_element(sizes.begin(), sizes.end());
  for (size_t i = 0; i < sizes.size(); ++i) {
    flags[i] = sizes[i] == smallest ? 1 : 0;
  }
  return flags;
}

}  // namespace harness
}  // namespace moche
