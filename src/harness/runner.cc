#include "harness/runner.h"

#include <algorithm>

#include "harness/metrics.h"
#include "signal/spectral_residual.h"
#include "timeseries/window.h"
#include "util/parallel.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace moche {
namespace harness {

namespace {

// SplitMix64-style mix deriving one independent sampling stream per
// (series, window) combination. Decoupling the streams from each other is
// what makes the parallel scan's output identical to the sequential one:
// no task's draws depend on how many draws another task made.
uint64_t CombinationSeed(uint64_t seed, uint64_t series_index,
                         uint64_t window_index) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ull * (series_index + 1) +
               0xBF58476D1CE4E5B9ull * (window_index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Scans one series: every window size, every failed test, sampled per the
// paper's rule. Appends to `out` in (window index, test offset) order.
Status CollectFromSeries(const std::string& dataset_name,
                         const ts::TimeSeries& series, size_t series_index,
                         const CollectOptions& options,
                         std::vector<ExperimentInstance>* out) {
  // Spectral Residual scores once per series; window preferences are
  // slices of the global score vector.
  auto sr = signal::SpectralResidualScores(series.values);
  MOCHE_RETURN_IF_ERROR(sr.status());

  for (size_t wi = 0; wi < options.window_sizes.size(); ++wi) {
    const size_t w = options.window_sizes[wi];
    if (series.length() < 2 * w) continue;
    ts::WindowSweepOptions sweep;
    sweep.window = w;
    sweep.alpha = options.alpha;
    auto failed = ts::FailedWindowTests(series, sweep);
    MOCHE_RETURN_IF_ERROR(failed.status());

    std::vector<ts::WindowTest> eligible;
    for (const ts::WindowTest& wt : *failed) {
      if (options.require_labeled_anomaly && series.has_labels() &&
          !ts::TestWindowHasLabeledAnomaly(series, wt)) {
        continue;
      }
      eligible.push_back(wt);
    }
    // Uniform sample per (series, window) combination, as in the paper,
    // from this combination's own deterministic stream.
    Rng rng(CombinationSeed(options.seed, series_index, wi));
    std::vector<size_t> pick;
    if (eligible.size() > options.sample_per_combination) {
      pick = rng.SampleWithoutReplacement(eligible.size(),
                                          options.sample_per_combination);
      // moche-lint: allow(sort-doubles): index vector of size_t, no doubles involved
      std::sort(pick.begin(), pick.end());
    } else {
      for (size_t i = 0; i < eligible.size(); ++i) pick.push_back(i);
    }

    for (size_t i : pick) {
      const ts::WindowTest& wt = eligible[i];
      ExperimentInstance inst;
      inst.dataset = dataset_name;
      inst.series = series.name;
      inst.window = w;
      inst.test_begin = wt.test_begin;
      inst.instance = ts::MakeInstance(series, wt, options.alpha);
      // preference = SR scores of the test window, descending
      std::vector<double> window_scores(
          sr->begin() + static_cast<long>(wt.test_begin),
          sr->begin() + static_cast<long>(wt.test_begin + w));
      inst.preference = PreferenceByScoreDesc(window_scores);
      out->push_back(std::move(inst));
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<ExperimentInstance>> CollectFailedInstances(
    const ts::Dataset& dataset, const CollectOptions& options) {
  const size_t num_series = dataset.series.size();
  std::vector<std::vector<ExperimentInstance>> per_series(num_series);
  std::vector<Status> statuses(num_series);

  ParallelFor(options.num_threads, num_series, [&](size_t s) {
    statuses[s] = CollectFromSeries(dataset.name, dataset.series[s], s,
                                    options, &per_series[s]);
  });

  // Merge in input (series) order; report the first error in that order so
  // failures are as deterministic as successes.
  std::vector<ExperimentInstance> out;
  size_t total = 0;
  for (size_t s = 0; s < num_series; ++s) {
    MOCHE_RETURN_IF_ERROR(statuses[s]);
    total += per_series[s].size();
  }
  out.reserve(total);
  for (std::vector<ExperimentInstance>& chunk : per_series) {
    for (ExperimentInstance& inst : chunk) out.push_back(std::move(inst));
  }
  return out;
}

std::vector<InstanceResults> RunMethods(
    const std::vector<ExperimentInstance>& instances,
    const std::vector<baselines::Explainer*>& methods,
    const RunOptions& options) {
  std::vector<InstanceResults> results(instances.size());
  // One reusable explain workspace per worker thread: workers run
  // instances back to back, so the scratch arenas (sorted copies, frames,
  // bounds/builder buffers) stop allocating once warm. Scratch only —
  // results are written per instance slot, so the output is independent of
  // which worker ran which instance.
  std::vector<ExplainWorkspace> workspaces(
      ParallelWorkerCount(options.num_threads, instances.size()));
  // One task per instance; each task writes only results[i], so the merged
  // vector is in input order and identical to the sequential run.
  ParallelForWorker(options.num_threads, instances.size(),
                    [&](size_t worker, size_t i) {
    const ExperimentInstance& inst = instances[i];
    WallTimer task_timer;
    InstanceResults record;
    record.instance = &inst;
    record.outcomes.reserve(methods.size());
    for (baselines::Explainer* method : methods) {
      MethodOutcome outcome;
      outcome.method = method->name();
      WallTimer timer;
      auto expl = method->ExplainReusing(inst.instance, inst.preference,
                                         &workspaces[worker]);
      outcome.seconds = timer.Seconds();
      if (expl.ok()) {
        outcome.produced = true;
        outcome.size = expl->size();
        outcome.rmse = ExplanationRmse(inst.instance, *expl);
      } else {
        outcome.code = expl.status().code();
      }
      record.outcomes.push_back(std::move(outcome));
    }
    record.seconds = task_timer.Seconds();
    results[i] = std::move(record);
  });
  return results;
}

std::vector<InstanceResults> RunMethods(
    const std::vector<ExperimentInstance>& instances,
    const std::vector<baselines::Explainer*>& methods) {
  return RunMethods(instances, methods, RunOptions{});
}

Result<std::vector<MethodAggregate>> Aggregate(
    const std::vector<InstanceResults>& results) {
  std::vector<MethodAggregate> agg;
  if (results.empty()) return agg;
  const size_t num_methods = results.front().outcomes.size();
  agg.resize(num_methods);
  for (size_t j = 0; j < num_methods; ++j) {
    agg[j].method = results.front().outcomes[j].method;
  }

  // Shape validation: indexing by the first record's method count is only
  // sound when every record lists the same methods in the same order.
  for (size_t rec = 0; rec < results.size(); ++rec) {
    const InstanceResults& record = results[rec];
    if (record.outcomes.size() != num_methods) {
      return Status::InvalidArgument(StrFormat(
          "ragged results: record %zu has %zu outcomes, record 0 has %zu",
          rec, record.outcomes.size(), num_methods));
    }
    for (size_t j = 0; j < num_methods; ++j) {
      if (record.outcomes[j].method != agg[j].method) {
        return Status::InvalidArgument(StrFormat(
            "method mismatch: record %zu outcome %zu is '%s', expected '%s'",
            rec, j, record.outcomes[j].method.c_str(),
            agg[j].method.c_str()));
      }
    }
  }

  for (const InstanceResults& record : results) {
    const bool all_produced =
        std::all_of(record.outcomes.begin(), record.outcomes.end(),
                    [](const MethodOutcome& o) { return o.produced; });
    // ISE over the instances where every method produced (paper rule).
    std::vector<int> ise;
    if (all_produced) {
      std::vector<size_t> sizes;
      for (const MethodOutcome& o : record.outcomes) sizes.push_back(o.size);
      ise = IsSmallestExplanation(sizes);
    }
    for (size_t j = 0; j < num_methods; ++j) {
      const MethodOutcome& o = record.outcomes[j];
      ++agg[j].attempted;
      agg[j].avg_seconds += o.seconds;
      if (o.produced) {
        ++agg[j].produced;
        agg[j].avg_rmse += o.rmse;
      }
      if (all_produced) {
        ++agg[j].ise_counted;
        agg[j].avg_ise += static_cast<double>(ise[j]);
      }
    }
  }

  for (MethodAggregate& a : agg) {
    if (a.ise_counted > 0) a.avg_ise /= static_cast<double>(a.ise_counted);
    if (a.produced > 0) a.avg_rmse /= static_cast<double>(a.produced);
    if (a.attempted > 0) {
      a.reverse_factor =
          static_cast<double>(a.produced) / static_cast<double>(a.attempted);
      a.avg_seconds /= static_cast<double>(a.attempted);
    }
  }
  return agg;
}

}  // namespace harness
}  // namespace moche
