#include "harness/runner.h"

#include <algorithm>

#include "harness/metrics.h"
#include "signal/spectral_residual.h"
#include "timeseries/window.h"
#include "util/timer.h"

namespace moche {
namespace harness {

Result<std::vector<ExperimentInstance>> CollectFailedInstances(
    const ts::Dataset& dataset, const CollectOptions& options) {
  Rng rng(options.seed);
  std::vector<ExperimentInstance> out;

  for (const ts::TimeSeries& series : dataset.series) {
    // Spectral Residual scores once per series; window preferences are
    // slices of the global score vector.
    auto sr = signal::SpectralResidualScores(series.values);
    MOCHE_RETURN_IF_ERROR(sr.status());

    for (size_t w : options.window_sizes) {
      if (series.length() < 2 * w) continue;
      ts::WindowSweepOptions sweep;
      sweep.window = w;
      sweep.alpha = options.alpha;
      auto failed = ts::FailedWindowTests(series, sweep);
      MOCHE_RETURN_IF_ERROR(failed.status());

      std::vector<ts::WindowTest> eligible;
      for (const ts::WindowTest& wt : *failed) {
        if (options.require_labeled_anomaly && series.has_labels() &&
            !ts::TestWindowHasLabeledAnomaly(series, wt)) {
          continue;
        }
        eligible.push_back(wt);
      }
      // Uniform sample per (series, window) combination, as in the paper.
      std::vector<size_t> pick;
      if (eligible.size() > options.sample_per_combination) {
        pick = rng.SampleWithoutReplacement(eligible.size(),
                                            options.sample_per_combination);
        std::sort(pick.begin(), pick.end());
      } else {
        for (size_t i = 0; i < eligible.size(); ++i) pick.push_back(i);
      }

      for (size_t i : pick) {
        const ts::WindowTest& wt = eligible[i];
        ExperimentInstance inst;
        inst.dataset = dataset.name;
        inst.series = series.name;
        inst.window = w;
        inst.test_begin = wt.test_begin;
        inst.instance = ts::MakeInstance(series, wt, options.alpha);
        // preference = SR scores of the test window, descending
        std::vector<double> window_scores(
            sr->begin() + static_cast<long>(wt.test_begin),
            sr->begin() + static_cast<long>(wt.test_begin + w));
        inst.preference = PreferenceByScoreDesc(window_scores);
        out.push_back(std::move(inst));
      }
    }
  }
  return out;
}

std::vector<InstanceResults> RunMethods(
    const std::vector<ExperimentInstance>& instances,
    const std::vector<baselines::Explainer*>& methods) {
  std::vector<InstanceResults> results;
  results.reserve(instances.size());
  for (const ExperimentInstance& inst : instances) {
    InstanceResults record;
    record.instance = &inst;
    for (baselines::Explainer* method : methods) {
      MethodOutcome outcome;
      outcome.method = method->name();
      WallTimer timer;
      auto expl = method->Explain(inst.instance, inst.preference);
      outcome.seconds = timer.Seconds();
      if (expl.ok()) {
        outcome.produced = true;
        outcome.size = expl->size();
        outcome.rmse = ExplanationRmse(inst.instance, *expl);
      } else {
        outcome.code = expl.status().code();
      }
      record.outcomes.push_back(std::move(outcome));
    }
    results.push_back(std::move(record));
  }
  return results;
}

std::vector<MethodAggregate> Aggregate(
    const std::vector<InstanceResults>& results) {
  std::vector<MethodAggregate> agg;
  if (results.empty()) return agg;
  const size_t num_methods = results.front().outcomes.size();
  agg.resize(num_methods);
  for (size_t j = 0; j < num_methods; ++j) {
    agg[j].method = results.front().outcomes[j].method;
  }

  for (const InstanceResults& record : results) {
    const bool all_produced =
        std::all_of(record.outcomes.begin(), record.outcomes.end(),
                    [](const MethodOutcome& o) { return o.produced; });
    // ISE over the instances where every method produced (paper rule).
    std::vector<int> ise;
    if (all_produced) {
      std::vector<size_t> sizes;
      for (const MethodOutcome& o : record.outcomes) sizes.push_back(o.size);
      ise = IsSmallestExplanation(sizes);
    }
    for (size_t j = 0; j < num_methods; ++j) {
      const MethodOutcome& o = record.outcomes[j];
      ++agg[j].attempted;
      agg[j].avg_seconds += o.seconds;
      if (o.produced) {
        ++agg[j].produced;
        agg[j].avg_rmse += o.rmse;
      }
      if (all_produced) {
        ++agg[j].ise_counted;
        agg[j].avg_ise += static_cast<double>(ise[j]);
      }
    }
  }

  for (MethodAggregate& a : agg) {
    if (a.ise_counted > 0) a.avg_ise /= static_cast<double>(a.ise_counted);
    if (a.produced > 0) a.avg_rmse /= static_cast<double>(a.produced);
    if (a.attempted > 0) {
      a.reverse_factor =
          static_cast<double>(a.produced) / static_cast<double>(a.attempted);
      a.avg_seconds /= static_cast<double>(a.attempted);
    }
  }
  return agg;
}

}  // namespace harness
}  // namespace moche
