// The paper's evaluation metrics:
//  * ISE  (Is-Smallest-Explanation, Section 6.2)   — conciseness,
//  * RF   (reverse factor, Section 6.2.1)          — contrastivity,
//  * RMSE (between ECDFs, Section 6.3)             — effectiveness,
//  * EE   (estimation error k - k_hat, Section 6.4) — lower-bound tightness.
//
// Ownership & thread-safety: pure functions of caller-owned arguments —
// no shared state, safe from any thread.

#ifndef MOCHE_HARNESS_METRICS_H_
#define MOCHE_HARNESS_METRICS_H_

#include <cstddef>
#include <vector>

#include "core/explanation.h"
#include "core/instance.h"

namespace moche {
namespace harness {

/// RMSE between the ECDFs of R and T \ I (smaller = better explanation).
/// NaN when the explanation removes all of T (EcdfRmse convention: no ECDF
/// exists on an empty side). No method that *passes* the KS test can reach
/// that case — an empty test set never passes — so aggregated RMSE over
/// produced explanations stays finite.
double ExplanationRmse(const KsInstance& instance, const Explanation& expl);

/// ISE flags for one failed test: sizes[i] is method i's explanation size;
/// the smallest size(s) get 1, the rest 0. Methods that produced no
/// explanation must not be included.
std::vector<int> IsSmallestExplanation(const std::vector<size_t>& sizes);

}  // namespace harness
}  // namespace moche

#endif  // MOCHE_HARNESS_METRICS_H_
