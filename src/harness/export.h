// CSV export of experiment results, for plotting the paper's figures with
// external tools (matplotlib/gnuplot/R).
//
// Ownership & thread-safety: pure conversion/IO functions over caller-owned
// results; they borrow their inputs for the call only. Doubles are
// formatted with FormatFixed, so the CSV bytes are identical under any
// process locale (each thread may export its own file concurrently).

#ifndef MOCHE_HARNESS_EXPORT_H_
#define MOCHE_HARNESS_EXPORT_H_

#include <string>
#include <vector>

#include "harness/runner.h"
#include "util/csv.h"

namespace moche {
namespace harness {

/// One row per (instance, method): dataset, series, window, method,
/// produced, status, size, rmse, seconds.
CsvTable ResultsToCsv(const std::vector<InstanceResults>& results);

/// One row per method: method, avg_ise, avg_rmse, reverse_factor,
/// avg_seconds, attempted, produced, ise_counted.
CsvTable AggregatesToCsv(const std::vector<MethodAggregate>& aggregates);

/// Convenience: ResultsToCsv straight to a file.
Status WriteResultsCsv(const std::string& path,
                       const std::vector<InstanceResults>& results);

}  // namespace harness
}  // namespace moche

#endif  // MOCHE_HARNESS_EXPORT_H_
