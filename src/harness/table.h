// ASCII rendering of the result tables and box plots the benches print.
//
// Ownership & thread-safety: AsciiTable is a caller-owned value accumulator
// (single-thread use, like any string builder); RenderBoxPlot is pure.

#ifndef MOCHE_HARNESS_TABLE_H_
#define MOCHE_HARNESS_TABLE_H_

#include <string>
#include <vector>

#include "util/stats.h"

namespace moche {
namespace harness {

/// A fixed-width text table: header + rows, columns padded to content.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders with a separator line under the header.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// One box-plot row as text: "min [q1 | median | q3] max (mean)".
std::string RenderBoxPlot(const FiveNumberSummary& summary);

}  // namespace harness
}  // namespace moche

#endif  // MOCHE_HARNESS_TABLE_H_
