// Cumulative vectors (paper Definition 3).
//
// The base vector V = <x_1, ..., x_q> holds the unique values of R u T in
// ascending order. The cumulative vector of a multiset S <= T is the
// (q+1)-vector C_S with C_S[0] = 0 and C_S[i] = |{x in S : x <= x_i}|.
// A CumulativeFrame precomputes C_R and C_T once per instance; every MOCHE
// phase works on top of it.
//
// Indexing convention: this class mirrors the paper's 1-based indices —
// CR(i)/CT(i) accept i in [0, q] with CR(0) = CT(0) = 0, and base value x_i
// is Value(i) for i in [1, q].
//
// Ownership & thread-safety: a CumulativeFrame owns its vectors and is
// immutable after Build, so concurrent readers need no synchronization;
// builders hand ownership to the caller by value.

#ifndef MOCHE_CORE_CUMULATIVE_H_
#define MOCHE_CORE_CUMULATIVE_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace moche {

class CumulativeFrame {
 public:
  /// An empty frame (q = n = m = 0), the state a reusable frame starts in;
  /// fill it with BuildFromSortedUncheckedInto. Every accessor requires a
  /// built frame.
  CumulativeFrame() = default;

  /// Builds the base vector and the cumulative vectors of R and T.
  /// Fails when either multiset is empty.
  static Result<CumulativeFrame> Build(const std::vector<double>& r,
                                       const std::vector<double>& t);

  /// As Build, for inputs already sorted ascending: skips the two sorts and
  /// the copies. Fails when a multiset is empty or not sorted.
  static Result<CumulativeFrame> BuildFromSorted(
      const std::vector<double>& r_sorted,
      const std::vector<double>& t_sorted);

  /// As BuildFromSorted but with preconditions (non-empty, finite, sorted)
  /// checked by MOCHE_DCHECK only. The prepared-instance hot path (one
  /// reference sample validated and sorted once by Moche::Prepare, tested
  /// against many windows) calls this per window so the per-call cost has
  /// no redundant O(n) re-validation of the reference.
  static Result<CumulativeFrame> BuildFromSortedUnchecked(
      const std::vector<double>& r_sorted,
      const std::vector<double>& t_sorted);

  /// As BuildFromSortedUnchecked, but rebuilds `out` in place, reusing its
  /// existing array capacity: a frame cycled through many same-sized
  /// instances stops allocating once warm. This is the ExplainWorkspace hot
  /// path; results are identical to BuildFromSortedUnchecked.
  static void BuildFromSortedUncheckedInto(
      const std::vector<double>& r_sorted,
      const std::vector<double>& t_sorted, CumulativeFrame* out);

  /// Heap bytes retained by the frame's arrays (capacity, not size) — the
  /// workspace-footprint accounting the stream monitor reports.
  size_t FootprintBytes() const {
    return values_.capacity() * sizeof(double) +
           (cum_r_.capacity() + cum_t_.capacity()) * sizeof(int64_t);
  }

  size_t q() const { return values_.size(); }
  size_t n() const { return n_; }
  size_t m() const { return m_; }

  /// x_i for i in [1, q].
  double Value(size_t i) const { return values_[i - 1]; }

  /// C_R[i] for i in [0, q].
  int64_t CR(size_t i) const { return cum_r_[i]; }

  /// C_T[i] for i in [0, q].
  int64_t CT(size_t i) const { return cum_t_[i]; }

  /// Multiplicity of x_i in T: C_T[i] - C_T[i-1], i in [1, q].
  int64_t CountT(size_t i) const { return cum_t_[i] - cum_t_[i - 1]; }

  /// 1-based index of `value` in the base vector, or NotFound.
  Result<size_t> IndexOfValue(double value) const;

  /// The cumulative vector C_S (length q+1) of a multiset S (values must all
  /// occur in the base vector; multiplicities are NOT checked against T).
  Result<std::vector<int64_t>> CumulativeOf(
      const std::vector<double>& subset) const;

 private:
  size_t n_ = 0;
  size_t m_ = 0;
  std::vector<double> values_;   // x_1..x_q, ascending
  std::vector<int64_t> cum_r_;   // length q+1, cum_r_[0] = 0
  std::vector<int64_t> cum_t_;   // length q+1, cum_t_[0] = 0
};

}  // namespace moche

#endif  // MOCHE_CORE_CUMULATIVE_H_
