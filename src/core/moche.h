// The public facade of the library: MOCHE end to end.
//
//   moche::Moche engine;
//   auto report = engine.Explain(reference, test, /*alpha=*/0.05, preference);
//   if (report.ok()) { /* report->explanation.indices ... */ }
//
// Explain returns:
//  * AlreadyPasses when R and T pass the KS test (nothing to explain),
//  * NotFound when no explanation exists (possible only for alpha > 2/e^2,
//    cf. Proposition 1),
//  * otherwise the unique most comprehensible counterfactual explanation.
//
// Ownership & thread-safety: Moche and PreparedReference are immutable
// after construction — one engine and one prepared reference may be shared
// by any number of concurrent Explain/ExplainPrepared calls (the batch
// harness and the stream monitor both do). Each call owns all of its
// mutable state on the stack; no call mutates its inputs. The *Into entry
// points move that state into a caller-owned ExplainWorkspace instead: a
// hot-loop caller recycles one workspace (and one MocheReport) per thread
// and the warmed-up steady state allocates nothing (core/workspace.h).
//
// Input conventions: samples must be non-empty and finite —
// ks::ValidateSample rejects NaN/Inf up front with InvalidArgument, so the
// numeric core never sorts or compares a NaN (which would be UB). alpha
// must lie in (0, 2), the domain of the critical value c_alpha. The
// determinism, data-flow, and NaN/empty-sample contracts are collected in
// docs/ARCHITECTURE.md.

#ifndef MOCHE_CORE_MOCHE_H_
#define MOCHE_CORE_MOCHE_H_

#include <vector>

#include "core/builder.h"
#include "core/explanation.h"
#include "core/instance.h"
#include "core/preference.h"
#include "core/size_search.h"
#include "core/workspace.h"
#include "sketch/sketched_reference.h"
#include "util/binary_io.h"
#include "util/status.h"

namespace moche {

/// Tuning knobs; the defaults reproduce the full MOCHE algorithm.
struct MocheOptions {
  /// Phase 1 lower bound via Theorem 2 binary search. Disabling reproduces
  /// the paper's MOCHE_ns ablation (Figure 5).
  bool use_lower_bound = true;

  /// Incremental Theorem 3 checks in phase 2 (our optimization). Disabling
  /// uses the paper-faithful O(q)-per-candidate recursion. Both modes return
  /// identical explanations.
  bool incremental_partial_check = true;

  /// Re-run the KS test on R vs T \ I before returning (cheap insurance;
  /// an Internal error here would indicate a bug in the bounds algebra).
  bool validate_result = true;
};

/// Everything one Explain call produces.
struct MocheReport {
  Explanation explanation;     ///< indices into the test set, in L order
  size_t k = 0;                ///< explanation size
  size_t k_hat = 0;            ///< Theorem 2 lower bound (== k start of scan)
  KsOutcome original;          ///< the failed test being explained
  KsOutcome after;             ///< outcome on R vs T \ I (passes)
  double seconds_size_search = 0.0;
  double seconds_construction = 0.0;
  SizeSearchResult size_stats;
  BuildStats build_stats;
};

/// A reference sample validated and sorted once, for explaining many test
/// windows against the same R (e.g. the sliding-window sweeps of Section 6:
/// hundreds of test windows are sliced from one series and compared against
/// one reference). Construct with Moche::Prepare; immutable afterwards, so
/// one PreparedReference may be shared by concurrent ExplainPrepared calls.
class PreparedReference {
 public:
  const std::vector<double>& sorted_reference() const {
    return sorted_reference_;
  }
  double alpha() const { return alpha_; }

  /// Appends the canonical little-endian encoding (alpha, then the sorted
  /// sample bit-exact; util/binary_io.h) — the snapshot hook of
  /// src/persist. Deterministic: equal prepared references serialize to
  /// equal bytes.
  void SerializeTo(std::string* out) const;

  /// Inverse of SerializeTo over an untrusted buffer. Re-validates
  /// everything Prepare guarantees — alpha domain, non-empty, all-finite,
  /// ascending order — so a corrupted snapshot can never mint a
  /// PreparedReference that breaks the Unchecked hot-path invariants;
  /// restoring skips only the O(n log n) sort, not the checks.
  static Result<PreparedReference> DeserializeFrom(bin::Reader* reader);

 private:
  friend class Moche;
  // Only Moche::Prepare and DeserializeFrom may construct one:
  // ExplainPrepared's unchecked hot path relies on the validate-and-sort
  // invariant both establish.
  PreparedReference() = default;

  std::vector<double> sorted_reference_;
  double alpha_ = 0.05;
};

/// A structure-of-arrays batch of equally sized test windows: window w
/// occupies data[w * width, (w + 1) * width). Borrowed, not owned — the
/// buffer must outlive the call. Contiguity is the point: batch validation
/// (the all-finite scan) runs as a single SIMD pass over count * width
/// doubles instead of `count` short per-window passes with ramp-up/tail
/// overhead each, so the vector lanes stay full.
struct WindowBatch {
  const double* data = nullptr;
  size_t count = 0;  ///< number of windows
  size_t width = 0;  ///< observations per window (> 0 when count > 0)
};

class Moche {
 public:
  explicit Moche(MocheOptions options = {}) : options_(options) {}

  /// Explains why (reference, test) fail the KS test at `alpha`, returning
  /// the most comprehensible explanation under `preference`.
  Result<MocheReport> Explain(const std::vector<double>& reference,
                              const std::vector<double>& test, double alpha,
                              const PreferenceList& preference) const;

  /// Convenience overload for a packaged instance.
  Result<MocheReport> Explain(const KsInstance& instance,
                              const PreferenceList& preference) const {
    return Explain(instance.reference, instance.test, instance.alpha,
                   preference);
  }

  /// Validates and sorts `reference` once for many ExplainPrepared calls.
  /// InvalidArgument on an empty/non-finite sample or out-of-domain alpha.
  Result<PreparedReference> Prepare(std::vector<double> reference,
                                    double alpha) const;

  /// As Explain, but reuses the prepared (already sorted) reference: only
  /// the test window is sorted per call. Produces bit-identical reports to
  /// Explain on the same inputs. Thread-safe: Moche and PreparedReference
  /// are both immutable, so concurrent calls may share them.
  Result<MocheReport> ExplainPrepared(const PreparedReference& prepared,
                                      const std::vector<double>& test,
                                      const PreferenceList& preference) const;

  /// The zero-allocation hot path: as ExplainPrepared, but every scratch
  /// buffer lives in the caller-owned `workspace` and the result is written
  /// into the caller-owned `*report` (whose explanation vector's capacity is
  /// reused). A caller that recycles the same workspace and report performs
  /// no heap allocation once warm — the steady state of the Section 6
  /// sweeps, harness::RunMethods, and DriftMonitor. Reports are
  /// bit-identical to ExplainPrepared on the same inputs; `*report` is
  /// meaningful only when the returned Status is OK. The workspace and
  /// report are mutable per-caller state: share the engine and the prepared
  /// reference across threads, never a workspace (docs/ARCHITECTURE.md).
  Status ExplainPreparedInto(const PreparedReference& prepared,
                             const std::vector<double>& test,
                             const PreferenceList& preference,
                             ExplainWorkspace* workspace,
                             MocheReport* report) const;

  /// One-shot workspace variant: validates and sorts `reference` into the
  /// workspace per call (no PreparedReference needed). Reports are
  /// bit-identical to Explain; used by the batch harness, whose instances
  /// each carry their own reference.
  Status ExplainInto(const std::vector<double>& reference,
                     const std::vector<double>& test, double alpha,
                     const PreferenceList& preference,
                     ExplainWorkspace* workspace, MocheReport* report) const;

  /// Phase 1 only: the explanation size (and lower bound) without building
  /// the explanation. Useful when only conciseness is needed.
  Result<SizeSearchResult> FindExplanationSize(
      const std::vector<double>& reference, const std::vector<double>& test,
      double alpha) const;

  /// As FindExplanationSize, but reuses the prepared (already sorted)
  /// reference — only the test window is sorted and validated per call,
  /// mirroring the Explain/ExplainPrepared pair. Same results as
  /// FindExplanationSize on the same inputs.
  Result<SizeSearchResult> FindExplanationSizePrepared(
      const PreparedReference& prepared,
      const std::vector<double>& test) const;

  /// Zero-allocation-once-warm variant of FindExplanationSizePrepared,
  /// running entirely inside `workspace` (SizeSearchResult itself is a
  /// plain value and never allocates).
  Result<SizeSearchResult> FindExplanationSizeInto(
      const PreparedReference& prepared, const std::vector<double>& test,
      ExplainWorkspace* workspace) const;

  /// Runs the KS test (no explanation) for every window of an SoA batch
  /// against one prepared reference, writing outcome w for window w into
  /// (*outcomes)[w]. Each outcome is bit-identical to
  /// ks::RunSorted(sorted_reference, sort(window), alpha) on the same data.
  /// The whole batch is finiteness-checked in one SIMD pass before any
  /// window is evaluated; InvalidArgument (and *outcomes untouched) if any
  /// window holds a non-finite value, if count > 0 with width == 0, or if
  /// data is null with count * width > 0. Zero-allocation once `workspace`
  /// and `outcomes` are warm (outcomes keeps its capacity). This is the
  /// triage half of the stream pipeline: DriftMonitor re-checks a batch of
  /// recent windows in one call, then explains only the rejecting ones.
  Status EvaluateBatchPrepared(const PreparedReference& prepared,
                               const WindowBatch& batch,
                               ExplainWorkspace* workspace,
                               std::vector<KsOutcome>* outcomes) const;

  /// Certified three-way KS triage of one test window against a sketched
  /// reference (sketch/sketched_reference.h): computes the exact weighted
  /// sweep statistic D_sketch against the sketch summary, brackets the
  /// true two-sample D in [D_sketch - eps, D_sketch + eps], and compares
  /// the bracket to the KS threshold. kCertainPass / kCertainFail verdicts
  /// are *certified*: the exact ks::Run decision on (R, T) is guaranteed
  /// to agree; kUncertain means only the exact path can decide. Costs
  /// O(m log m + summary) — independent of the reference size n.
  Result<sketch::SketchTriage> TriageSketched(
      const sketch::SketchedReference& sketched,
      const std::vector<double>& test) const;

  /// Zero-allocation-once-warm variant of TriageSketched: the test window
  /// is sorted into `workspace` and the verdict written to `*triage`
  /// (meaningful only when the returned Status is OK). The stream
  /// monitor's sketched mode runs this per push.
  Status TriageSketchedInto(const sketch::SketchedReference& sketched,
                            const std::vector<double>& test,
                            ExplainWorkspace* workspace,
                            sketch::SketchTriage* triage) const;

  /// Batched triage: as EvaluateBatchPrepared but against the sketch,
  /// writing (*triages)[w] for window w. One flat SIMD finiteness pass,
  /// one hoisted threshold, zero allocation once `workspace` and
  /// `triages` are warm.
  Status EvaluateBatchSketched(const sketch::SketchedReference& sketched,
                               const WindowBatch& batch,
                               ExplainWorkspace* workspace,
                               std::vector<sketch::SketchTriage>* triages)
      const;

  /// Sketch-gated explanation: triages first and short-circuits a
  /// certified pass to AlreadyPasses WITHOUT touching the exact reference
  /// — the common healthy-window case never pays O(n). Certified fails
  /// and uncertain verdicts fall through to the exact ExplainPrepared
  /// path on `exact`, which must be prepared over the same reference
  /// sample and alpha the sketch summarizes (checked by count and alpha;
  /// InvalidArgument on mismatch). When `triage` is non-null the verdict
  /// is copied out either way. Reports on the fallthrough path are
  /// bit-identical to ExplainPrepared.
  Result<MocheReport> ExplainSketched(
      const sketch::SketchedReference& sketched,
      const PreparedReference& exact, const std::vector<double>& test,
      const PreferenceList& preference,
      sketch::SketchTriage* triage = nullptr) const;

  const MocheOptions& options() const { return options_; }

 private:
  /// The shared pipeline behind the *Into entry points: `sorted_reference`
  /// must be validated and sorted, `alpha` validated.
  Status ExplainSortedInto(const std::vector<double>& sorted_reference,
                           double alpha, const std::vector<double>& test,
                           const PreferenceList& preference,
                           ExplainWorkspace* workspace,
                           MocheReport* report) const;

  MocheOptions options_;
};

}  // namespace moche

#endif  // MOCHE_CORE_MOCHE_H_
