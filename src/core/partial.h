// Phase 2 primitive: deciding whether S u {x_v} is a partial explanation
// (Lemma 2 + Theorem 3).
//
// Fix the explanation size k and the Equation-4 bounds l^k, u^k. For a
// candidate multiset S, define the tightened upper bounds
//   ubar_q = u^k_q,   ubar_{i-1} = min(u^k_{i-1}, ubar_i - (C_S[i]-C_S[i-1]))
// and keep lbar_i = l^k_i. Theorem 3: S extends to some (size-k) explanation
// iff lbar_i <= ubar_i for every i in [0, q].
//
// Two check modes are provided:
//  * Full      — the paper's O(q) backward recursion per candidate.
//  * Incremental — adding one occurrence of x_v only changes ubar at indices
//    below v, and the recursion is monotone, so the walk can stop as soon as
//    the recomputed value matches the cached one. Same answers, usually far
//    fewer steps; benched as an ablation in bench_micro_core.
//
// Ownership & thread-safety: a PartialExplanationChecker borrows the
// caller's BoundsEngine state and owns its tightened-bound scratch, which
// mutates on every check — per-thread ownership only, like every workspace
// type (core/workspace.h); concurrent use of one checker is a data race.

#ifndef MOCHE_CORE_PARTIAL_H_
#define MOCHE_CORE_PARTIAL_H_

#include <cstdint>
#include <vector>

#include "core/bounds.h"
#include "core/cumulative.h"
#include "util/status.h"

namespace moche {

class PartialExplanationChecker {
 public:
  /// An unbound checker: call Reset before any query. Exists so a reusable
  /// workspace can carry one checker — and its five arrays' capacity —
  /// across many instances.
  PartialExplanationChecker() = default;

  /// Requires that a qualified k-subset exists (i.e. k came from phase 1);
  /// returns Internal otherwise. The frame and engine must outlive the
  /// checker.
  static Result<PartialExplanationChecker> Create(const BoundsEngine& engine,
                                                  size_t k);

  /// Rebinds the checker to (engine, k) and clears the accepted set,
  /// rebuilding all cached state in place (assign-style, so a warm checker
  /// allocates nothing). Same validation and result as Create.
  Status Reset(const BoundsEngine& engine, size_t k);

  /// Heap bytes retained by the checker's arrays (capacity-based; see
  /// CumulativeFrame::FootprintBytes).
  size_t FootprintBytes() const {
    return (lk_.capacity() + uk_.capacity() + counts_.capacity() +
            ubar_.capacity() + scratch_.capacity()) *
           sizeof(int64_t);
  }

  /// True iff (accepted multiset) u {x_v} is a partial explanation.
  /// v is the 1-based base-vector index of the candidate value.
  /// Incremental mode; does not modify the accepted set.
  bool CandidateFeasible(size_t v);

  /// Paper-faithful full O(q) recomputation; same answer as
  /// CandidateFeasible. Does not modify the accepted set.
  bool CandidateFeasibleFull(size_t v);

  /// Commits x_v into the accepted multiset. The candidate must be feasible
  /// (checked in debug builds).
  void Accept(size_t v);

  /// Number of accepted points so far.
  size_t accepted_count() const { return accepted_count_; }

  size_t k() const { return k_; }

  /// Total recursion steps performed across all checks (for the ablation
  /// bench: full mode pays ~q per candidate, incremental far less).
  size_t steps() const { return steps_; }

 private:
  // Walks the recursion downward for candidate v, recording changed ubar
  // entries in scratch_[scratch_lo_ .. v-1]. Returns feasibility.
  bool WalkCandidate(size_t v);

  // A pointer, not a reference, so Reset can rebind a reused checker. Null
  // only in the unbound default-constructed state.
  const CumulativeFrame* frame_ = nullptr;
  size_t k_ = 0;
  std::vector<int64_t> lk_;      // l^k, length q+1
  std::vector<int64_t> uk_;      // u^k, length q+1
  std::vector<int64_t> counts_;  // accepted multiplicity per value index, 1..q
  std::vector<int64_t> ubar_;    // cached ubar of the accepted set
  std::vector<int64_t> scratch_;
  size_t scratch_lo_ = 0;        // lowest index written into scratch_
  size_t scratch_v_ = 0;         // candidate the scratch corresponds to
  bool scratch_valid_ = false;
  size_t accepted_count_ = 0;
  size_t steps_ = 0;
};

}  // namespace moche

#endif  // MOCHE_CORE_PARTIAL_H_
