#include "core/partial.h"

#include <algorithm>

#include "util/logging.h"

namespace moche {

Status PartialExplanationChecker::Reset(const BoundsEngine& engine,
                                        size_t k) {
  if (k == 0 || k >= engine.frame().m()) {
    return Status::InvalidArgument("explanation size out of range");
  }
  frame_ = &engine.frame();
  k_ = k;
  accepted_count_ = 0;
  steps_ = 0;
  scratch_valid_ = false;
  scratch_lo_ = 0;
  scratch_v_ = 0;
  engine.ComputeBoundsInto(k, &lk_, &uk_);
  const size_t q = frame_->q();
  counts_.assign(q + 1, 0);
  scratch_.assign(q + 1, 0);
  // ubar of the empty accepted set: the recursion with all s_i = 0.
  ubar_.assign(q + 1, 0);
  ubar_[q] = uk_[q];
  for (size_t i = q; i >= 1; --i) {
    ubar_[i - 1] = std::min(uk_[i - 1], ubar_[i]);
  }
  // The empty set is a partial explanation iff an explanation of size k
  // exists; verify so later Accepts can rely on a feasible cached state.
  for (size_t i = 0; i <= q; ++i) {
    if (lk_[i] > ubar_[i]) {
      return Status::Internal(
          "no qualified k-cumulative vector; was k computed by phase 1?");
    }
  }
  return Status::OK();
}

Result<PartialExplanationChecker> PartialExplanationChecker::Create(
    const BoundsEngine& engine, size_t k) {
  PartialExplanationChecker checker;
  MOCHE_RETURN_IF_ERROR(checker.Reset(engine, k));
  return checker;
}

bool PartialExplanationChecker::WalkCandidate(size_t v) {
  MOCHE_DCHECK(v >= 1 && v <= frame_->q());
  scratch_valid_ = false;
  if (counts_[v] + 1 > frame_->CountT(v)) {
    return false;  // would exceed the multiplicity available in T
  }
  // Recursion ubar_{i-1} = min(u^k_{i-1}, ubar_i - s_i), starting at i = v
  // with s_v incremented by the candidate. Indices >= v are unchanged.
  scratch_lo_ = v;  // nothing written yet
  int64_t upper = ubar_[v];
  int64_t s = counts_[v] + 1;
  for (size_t i = v; i >= 1; --i) {
    ++steps_;
    const int64_t nu = std::min(uk_[i - 1], upper - s);
    if (nu < lk_[i - 1]) return false;
    if (nu == ubar_[i - 1]) {
      // Converged: all lower entries are unchanged and were feasible for
      // the accepted state (class invariant).
      scratch_valid_ = true;
      scratch_v_ = v;
      return true;
    }
    scratch_[i - 1] = nu;
    scratch_lo_ = i - 1;
    if (i == 1) break;
    upper = nu;
    s = counts_[i - 1];
  }
  scratch_valid_ = true;
  scratch_v_ = v;
  return true;
}

bool PartialExplanationChecker::CandidateFeasible(size_t v) {
  return WalkCandidate(v);
}

bool PartialExplanationChecker::CandidateFeasibleFull(size_t v) {
  MOCHE_DCHECK(v >= 1 && v <= frame_->q());
  scratch_valid_ = false;
  if (counts_[v] + 1 > frame_->CountT(v)) return false;
  const size_t q = frame_->q();
  int64_t upper = uk_[q];
  ++steps_;
  if (upper < lk_[q]) return false;
  for (size_t i = q; i >= 1; --i) {
    ++steps_;
    const int64_t s = counts_[i] + (i == v ? 1 : 0);
    const int64_t nu = std::min(uk_[i - 1], upper - s);
    if (nu < lk_[i - 1]) return false;
    upper = nu;
  }
  return true;
}

void PartialExplanationChecker::Accept(size_t v) {
  if (!scratch_valid_ || scratch_v_ != v) {
    const bool feasible = WalkCandidate(v);
    MOCHE_CHECK(feasible);
  }
  for (size_t i = scratch_lo_; i + 1 <= v; ++i) {
    ubar_[i] = scratch_[i];
  }
  ++counts_[v];
  ++accepted_count_;
  scratch_valid_ = false;
}

}  // namespace moche
