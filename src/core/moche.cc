#include "core/moche.h"

#include "core/bounds.h"
#include "core/cumulative.h"
#include "util/timer.h"

namespace moche {

Result<MocheReport> Moche::Explain(const std::vector<double>& reference,
                                   const std::vector<double>& test,
                                   double alpha,
                                   const PreferenceList& preference) const {
  MOCHE_RETURN_IF_ERROR(ValidatePreference(preference, test.size()));
  MOCHE_ASSIGN_OR_RETURN(const KsOutcome original,
                         ks::Run(reference, test, alpha));
  if (!original.reject) {
    return Status::AlreadyPasses(
        "R and T pass the KS test; there is nothing to explain");
  }

  MocheReport report;
  report.original = original;

  MOCHE_ASSIGN_OR_RETURN(const CumulativeFrame frame,
                         CumulativeFrame::Build(reference, test));
  const BoundsEngine engine(frame, alpha);

  WallTimer timer;
  const SizeSearcher searcher(engine);
  MOCHE_ASSIGN_OR_RETURN(report.size_stats,
                         searcher.FindSize(options_.use_lower_bound));
  report.k = report.size_stats.k;
  report.k_hat = report.size_stats.k_hat;
  report.seconds_size_search = timer.Seconds();

  timer.Restart();
  MOCHE_ASSIGN_OR_RETURN(
      report.explanation,
      BuildMostComprehensible(engine, report.k, test, preference,
                              options_.incremental_partial_check,
                              &report.build_stats));
  report.seconds_construction = timer.Seconds();

  KsInstance inst{reference, test, alpha};
  MOCHE_ASSIGN_OR_RETURN(
      report.after,
      ks::Run(reference, RemoveExplanation(inst, report.explanation), alpha));
  if (options_.validate_result && report.after.reject) {
    return Status::Internal(
        "constructed explanation does not reverse the KS test");
  }
  return report;
}

Result<SizeSearchResult> Moche::FindExplanationSize(
    const std::vector<double>& reference, const std::vector<double>& test,
    double alpha) const {
  MOCHE_ASSIGN_OR_RETURN(const KsOutcome original,
                         ks::Run(reference, test, alpha));
  if (!original.reject) {
    return Status::AlreadyPasses(
        "R and T pass the KS test; there is nothing to explain");
  }
  MOCHE_ASSIGN_OR_RETURN(const CumulativeFrame frame,
                         CumulativeFrame::Build(reference, test));
  const BoundsEngine engine(frame, alpha);
  return SizeSearcher(engine).FindSize(options_.use_lower_bound);
}

}  // namespace moche
