#include "core/moche.h"

#include <algorithm>

#include "core/bounds.h"
#include "core/cumulative.h"
#include "util/timer.h"

namespace moche {

Result<MocheReport> Moche::Explain(const std::vector<double>& reference,
                                   const std::vector<double>& test,
                                   double alpha,
                                   const PreferenceList& preference) const {
  MOCHE_ASSIGN_OR_RETURN(const PreparedReference prepared,
                         Prepare(reference, alpha));
  return ExplainPrepared(prepared, test, preference);
}

Result<PreparedReference> Moche::Prepare(std::vector<double> reference,
                                         double alpha) const {
  MOCHE_RETURN_IF_ERROR(ks::ValidateSample(reference, "reference set"));
  MOCHE_RETURN_IF_ERROR(ks::ValidateAlpha(alpha));
  PreparedReference prepared;
  std::sort(reference.begin(), reference.end());
  prepared.sorted_reference_ = std::move(reference);
  prepared.alpha_ = alpha;
  return prepared;
}

Result<MocheReport> Moche::ExplainPrepared(
    const PreparedReference& prepared, const std::vector<double>& test,
    const PreferenceList& preference) const {
  MOCHE_RETURN_IF_ERROR(ValidatePreference(preference, test.size()));
  const std::vector<double>& reference = prepared.sorted_reference_;
  const double alpha = prepared.alpha_;

  // Per-call validation covers only the test window; the reference and
  // alpha were validated (and R sorted) once by Prepare, so the per-window
  // cost carries no redundant O(n) re-scans of the reference.
  MOCHE_RETURN_IF_ERROR(ks::ValidateSample(test, "test set"));
  std::vector<double> test_sorted = test;
  std::sort(test_sorted.begin(), test_sorted.end());

  KsOutcome original;
  original.n = reference.size();
  original.m = test_sorted.size();
  original.statistic =
      ks::StatisticSorted(reference, test_sorted, &original.location);
  original.threshold =
      ks::internal::ThresholdUnchecked(alpha, original.n, original.m);
  original.reject = original.statistic > original.threshold;
  if (!original.reject) {
    return Status::AlreadyPasses(
        "R and T pass the KS test; there is nothing to explain");
  }

  MocheReport report;
  report.original = original;

  MOCHE_ASSIGN_OR_RETURN(
      const CumulativeFrame frame,
      CumulativeFrame::BuildFromSortedUnchecked(reference, test_sorted));
  const BoundsEngine engine(frame, alpha);

  WallTimer timer;
  const SizeSearcher searcher(engine);
  MOCHE_ASSIGN_OR_RETURN(report.size_stats,
                         searcher.FindSize(options_.use_lower_bound));
  report.k = report.size_stats.k;
  report.k_hat = report.size_stats.k_hat;
  report.seconds_size_search = timer.Seconds();

  timer.Restart();
  MOCHE_ASSIGN_OR_RETURN(
      report.explanation,
      BuildMostComprehensible(engine, report.k, test, preference,
                              options_.incremental_partial_check,
                              &report.build_stats));
  report.seconds_construction = timer.Seconds();

  // T \ I, built from the index mask directly (copying the reference into a
  // KsInstance just for RemoveExplanation would cost O(n) per window).
  std::vector<bool> removed(test.size(), false);
  for (size_t idx : report.explanation.indices) removed[idx] = true;
  std::vector<double> remaining;
  remaining.reserve(test.size() - report.explanation.size());
  for (size_t i = 0; i < test.size(); ++i) {
    if (!removed[i]) remaining.push_back(test[i]);
  }
  if (remaining.empty()) {
    return Status::Internal("explanation removed the whole test set");
  }
  std::sort(remaining.begin(), remaining.end());
  report.after.n = reference.size();
  report.after.m = remaining.size();
  report.after.statistic =
      ks::StatisticSorted(reference, remaining, &report.after.location);
  report.after.threshold = ks::internal::ThresholdUnchecked(
      alpha, report.after.n, report.after.m);
  report.after.reject = report.after.statistic > report.after.threshold;
  if (options_.validate_result && report.after.reject) {
    return Status::Internal(
        "constructed explanation does not reverse the KS test");
  }
  return report;
}

Result<SizeSearchResult> Moche::FindExplanationSize(
    const std::vector<double>& reference, const std::vector<double>& test,
    double alpha) const {
  MOCHE_ASSIGN_OR_RETURN(const KsOutcome original,
                         ks::Run(reference, test, alpha));
  if (!original.reject) {
    return Status::AlreadyPasses(
        "R and T pass the KS test; there is nothing to explain");
  }
  MOCHE_ASSIGN_OR_RETURN(const CumulativeFrame frame,
                         CumulativeFrame::Build(reference, test));
  const BoundsEngine engine(frame, alpha);
  return SizeSearcher(engine).FindSize(options_.use_lower_bound);
}

}  // namespace moche
