#include "core/moche.h"

#include <algorithm>

#include "core/bounds.h"
#include "core/cumulative.h"
#include "util/simd.h"
#include "util/timer.h"

namespace moche {

Result<MocheReport> Moche::Explain(const std::vector<double>& reference,
                                   const std::vector<double>& test,
                                   double alpha,
                                   const PreferenceList& preference) const {
  ExplainWorkspace workspace;
  MocheReport report;
  MOCHE_RETURN_IF_ERROR(
      ExplainInto(reference, test, alpha, preference, &workspace, &report));
  return report;
}

Result<PreparedReference> Moche::Prepare(std::vector<double> reference,
                                         double alpha) const {
  MOCHE_RETURN_IF_ERROR(ks::ValidateSample(reference, "reference set"));
  MOCHE_RETURN_IF_ERROR(ks::ValidateAlpha(alpha));
  PreparedReference prepared;
  std::sort(reference.begin(), reference.end());
  prepared.sorted_reference_ = std::move(reference);
  prepared.alpha_ = alpha;
  return prepared;
}

void PreparedReference::SerializeTo(std::string* out) const {
  bin::AppendDoubleLe(alpha_, out);
  bin::AppendDoubleArray(sorted_reference_, out);
}

Result<PreparedReference> PreparedReference::DeserializeFrom(
    bin::Reader* reader) {
  double alpha = 0.0;
  PreparedReference prepared;
  if (!reader->ReadDoubleLe(&alpha) ||
      !reader->ReadDoubleArray(&prepared.sorted_reference_)) {
    return Status::OutOfRange("prepared reference: snapshot truncated");
  }
  MOCHE_RETURN_IF_ERROR(ks::ValidateAlpha(alpha));
  MOCHE_RETURN_IF_ERROR(
      ks::ValidateSample(prepared.sorted_reference_, "prepared reference"));
  if (!std::is_sorted(prepared.sorted_reference_.begin(),
                      prepared.sorted_reference_.end())) {
    return Status::InvalidArgument(
        "prepared reference: snapshot sample is not sorted");
  }
  prepared.alpha_ = alpha;
  return prepared;
}

Result<MocheReport> Moche::ExplainPrepared(
    const PreparedReference& prepared, const std::vector<double>& test,
    const PreferenceList& preference) const {
  ExplainWorkspace workspace;
  MocheReport report;
  MOCHE_RETURN_IF_ERROR(
      ExplainPreparedInto(prepared, test, preference, &workspace, &report));
  return report;
}

Status Moche::ExplainPreparedInto(const PreparedReference& prepared,
                                  const std::vector<double>& test,
                                  const PreferenceList& preference,
                                  ExplainWorkspace* workspace,
                                  MocheReport* report) const {
  return ExplainSortedInto(prepared.sorted_reference_, prepared.alpha_, test,
                           preference, workspace, report);
}

Status Moche::ExplainInto(const std::vector<double>& reference,
                          const std::vector<double>& test, double alpha,
                          const PreferenceList& preference,
                          ExplainWorkspace* workspace,
                          MocheReport* report) const {
  MOCHE_RETURN_IF_ERROR(ks::ValidateSample(reference, "reference set"));
  MOCHE_RETURN_IF_ERROR(ks::ValidateAlpha(alpha));
  std::vector<double>& sorted = workspace->reference_sorted_;
  sorted.assign(reference.begin(), reference.end());
  std::sort(sorted.begin(), sorted.end());
  return ExplainSortedInto(sorted, alpha, test, preference, workspace,
                           report);
}

Status Moche::ExplainSortedInto(const std::vector<double>& sorted_reference,
                                double alpha, const std::vector<double>& test,
                                const PreferenceList& preference,
                                ExplainWorkspace* workspace,
                                MocheReport* report) const {
  ExplainWorkspace& ws = *workspace;
  MOCHE_RETURN_IF_ERROR(
      ValidatePreference(preference, test.size(), &ws.build_.pref_seen));
  const std::vector<double>& reference = sorted_reference;

  // Per-call validation covers only the test window; the reference and
  // alpha were validated (and R sorted) by the caller, so the per-window
  // cost carries no redundant O(n) re-scans of the reference.
  MOCHE_RETURN_IF_ERROR(ks::ValidateSample(test, "test set"));
  std::vector<double>& test_sorted = ws.test_sorted_;
  test_sorted.assign(test.begin(), test.end());
  std::sort(test_sorted.begin(), test_sorted.end());

  KsOutcome original;
  original.n = reference.size();
  original.m = test_sorted.size();
  original.statistic = ks::StatisticSortedScratch(
      reference, test_sorted, &ws.ks_sweep_, &original.location);
  original.threshold =
      ks::internal::ThresholdUnchecked(alpha, original.n, original.m);
  original.reject = original.statistic > original.threshold;
  if (!original.reject) {
    return Status::AlreadyPasses(
        "R and T pass the KS test; there is nothing to explain");
  }

  report->original = original;

  CumulativeFrame::BuildFromSortedUncheckedInto(reference, test_sorted,
                                                &ws.frame_);
  ws.engine_.Reset(ws.frame_, alpha);
  const BoundsEngine& engine = ws.engine_;

  WallTimer timer;
  const SizeSearcher searcher(engine);
  MOCHE_ASSIGN_OR_RETURN(report->size_stats,
                         searcher.FindSize(options_.use_lower_bound));
  report->k = report->size_stats.k;
  report->k_hat = report->size_stats.k_hat;
  report->seconds_size_search = timer.Seconds();

  timer.Restart();
  // Prevalidated variant: the preference permutation check already ran at
  // this function's entry; no need to re-pay it per call.
  MOCHE_RETURN_IF_ERROR(internal::BuildMostComprehensiblePrevalidated(
      engine, report->k, test, preference, options_.incremental_partial_check,
      &report->build_stats, &ws.build_, &report->explanation));
  report->seconds_construction = timer.Seconds();

  // T \ I, built from the index mask directly (copying the reference into a
  // KsInstance just for RemoveExplanation would cost O(n) per window).
  ws.removed_.assign(test.size(), 0);
  for (size_t idx : report->explanation.indices) ws.removed_[idx] = 1;
  std::vector<double>& remaining = ws.remaining_;
  remaining.clear();
  remaining.reserve(test.size() - report->explanation.size());
  for (size_t i = 0; i < test.size(); ++i) {
    if (!ws.removed_[i]) remaining.push_back(test[i]);
  }
  if (remaining.empty()) {
    return Status::Internal("explanation removed the whole test set");
  }
  std::sort(remaining.begin(), remaining.end());
  report->after.n = reference.size();
  report->after.m = remaining.size();
  report->after.statistic = ks::StatisticSortedScratch(
      reference, remaining, &ws.ks_sweep_, &report->after.location);
  report->after.threshold = ks::internal::ThresholdUnchecked(
      alpha, report->after.n, report->after.m);
  report->after.reject = report->after.statistic > report->after.threshold;
  if (options_.validate_result && report->after.reject) {
    return Status::Internal(
        "constructed explanation does not reverse the KS test");
  }
  return Status::OK();
}

Status Moche::EvaluateBatchPrepared(const PreparedReference& prepared,
                                    const WindowBatch& batch,
                                    ExplainWorkspace* workspace,
                                    std::vector<KsOutcome>* outcomes) const {
  if (batch.count == 0) {
    outcomes->clear();
    return Status::OK();
  }
  if (batch.width == 0) {
    return Status::InvalidArgument("batch windows must be non-empty");
  }
  if (batch.data == nullptr) {
    return Status::InvalidArgument("batch data is null");
  }
  // One flat finiteness scan over the whole batch: count * width doubles in
  // a single kernel call, so the SIMD lanes stay full instead of paying
  // per-window ramp-up and tail handling count times.
  if (!simd::ActiveKernels().all_finite(batch.data,
                                        batch.count * batch.width)) {
    return Status::InvalidArgument("test window contains a non-finite value");
  }
  const std::vector<double>& reference = prepared.sorted_reference_;
  const double threshold = ks::internal::ThresholdUnchecked(
      prepared.alpha_, reference.size(), batch.width);
  outcomes->resize(batch.count);
  ExplainWorkspace& ws = *workspace;
  for (size_t w = 0; w < batch.count; ++w) {
    const double* window = batch.data + w * batch.width;
    std::vector<double>& test_sorted = ws.test_sorted_;
    test_sorted.assign(window, window + batch.width);
    std::sort(test_sorted.begin(), test_sorted.end());
    KsOutcome& out = (*outcomes)[w];
    out.n = reference.size();
    out.m = batch.width;
    out.statistic = ks::StatisticSortedScratch(reference, test_sorted,
                                               &ws.ks_sweep_, &out.location);
    out.threshold = threshold;  // same n, m, alpha for every window
    out.reject = out.statistic > out.threshold;
  }
  return Status::OK();
}

Result<sketch::SketchTriage> Moche::TriageSketched(
    const sketch::SketchedReference& sketched,
    const std::vector<double>& test) const {
  ExplainWorkspace workspace;
  sketch::SketchTriage triage;
  MOCHE_RETURN_IF_ERROR(
      TriageSketchedInto(sketched, test, &workspace, &triage));
  return triage;
}

Status Moche::TriageSketchedInto(const sketch::SketchedReference& sketched,
                                 const std::vector<double>& test,
                                 ExplainWorkspace* workspace,
                                 sketch::SketchTriage* triage) const {
  MOCHE_RETURN_IF_ERROR(ks::ValidateSample(test, "test set"));
  std::vector<double>& test_sorted = workspace->test_sorted_;
  test_sorted.assign(test.begin(), test.end());
  std::sort(test_sorted.begin(), test_sorted.end());
  *triage = sketched.Classify(sketched.StatisticAgainstSorted(test_sorted),
                              test_sorted.size());
  return Status::OK();
}

Status Moche::EvaluateBatchSketched(
    const sketch::SketchedReference& sketched, const WindowBatch& batch,
    ExplainWorkspace* workspace,
    std::vector<sketch::SketchTriage>* triages) const {
  if (batch.count == 0) {
    triages->clear();
    return Status::OK();
  }
  if (batch.width == 0) {
    return Status::InvalidArgument("batch windows must be non-empty");
  }
  if (batch.data == nullptr) {
    return Status::InvalidArgument("batch data is null");
  }
  // Same flat finiteness scan as EvaluateBatchPrepared: one kernel call
  // over count * width doubles keeps the SIMD lanes full.
  if (!simd::ActiveKernels().all_finite(batch.data,
                                        batch.count * batch.width)) {
    return Status::InvalidArgument("test window contains a non-finite value");
  }
  triages->resize(batch.count);
  ExplainWorkspace& ws = *workspace;
  for (size_t w = 0; w < batch.count; ++w) {
    const double* window = batch.data + w * batch.width;
    std::vector<double>& test_sorted = ws.test_sorted_;
    test_sorted.assign(window, window + batch.width);
    std::sort(test_sorted.begin(), test_sorted.end());
    // Classify recomputes the threshold per window, but from cheap scalar
    // arithmetic on identical (n, m, alpha) — bit-identical across the
    // batch, so no behavior depends on hoisting it.
    (*triages)[w] = sketched.Classify(
        sketched.StatisticAgainstSorted(test_sorted), batch.width);
  }
  return Status::OK();
}

Result<MocheReport> Moche::ExplainSketched(
    const sketch::SketchedReference& sketched,
    const PreparedReference& exact, const std::vector<double>& test,
    const PreferenceList& preference, sketch::SketchTriage* triage) const {
  if (exact.sorted_reference().size() != sketched.count() ||
      exact.alpha() != sketched.alpha()) {
    return Status::InvalidArgument(
        "sketched and exact references disagree on sample size or alpha; "
        "ExplainSketched needs both built over the same reference");
  }
  ExplainWorkspace workspace;
  sketch::SketchTriage local;
  MOCHE_RETURN_IF_ERROR(
      TriageSketchedInto(sketched, test, &workspace, &local));
  if (triage != nullptr) *triage = local;
  if (local.verdict == sketch::TriageVerdict::kCertainPass) {
    return Status::AlreadyPasses(
        "certified by the sketched reference: R and T pass the KS test");
  }
  MocheReport report;
  MOCHE_RETURN_IF_ERROR(
      ExplainPreparedInto(exact, test, preference, &workspace, &report));
  return report;
}

Result<SizeSearchResult> Moche::FindExplanationSize(
    const std::vector<double>& reference, const std::vector<double>& test,
    double alpha) const {
  MOCHE_ASSIGN_OR_RETURN(const KsOutcome original,
                         ks::Run(reference, test, alpha));
  if (!original.reject) {
    return Status::AlreadyPasses(
        "R and T pass the KS test; there is nothing to explain");
  }
  MOCHE_ASSIGN_OR_RETURN(const CumulativeFrame frame,
                         CumulativeFrame::Build(reference, test));
  const BoundsEngine engine(frame, alpha);
  return SizeSearcher(engine).FindSize(options_.use_lower_bound);
}

Result<SizeSearchResult> Moche::FindExplanationSizePrepared(
    const PreparedReference& prepared, const std::vector<double>& test) const {
  ExplainWorkspace workspace;
  return FindExplanationSizeInto(prepared, test, &workspace);
}

Result<SizeSearchResult> Moche::FindExplanationSizeInto(
    const PreparedReference& prepared, const std::vector<double>& test,
    ExplainWorkspace* workspace) const {
  ExplainWorkspace& ws = *workspace;
  const std::vector<double>& reference = prepared.sorted_reference_;
  const double alpha = prepared.alpha_;

  MOCHE_RETURN_IF_ERROR(ks::ValidateSample(test, "test set"));
  std::vector<double>& test_sorted = ws.test_sorted_;
  test_sorted.assign(test.begin(), test.end());
  std::sort(test_sorted.begin(), test_sorted.end());

  const double statistic =
      ks::StatisticSortedScratch(reference, test_sorted, &ws.ks_sweep_);
  const double threshold = ks::internal::ThresholdUnchecked(
      alpha, reference.size(), test_sorted.size());
  if (!(statistic > threshold)) {
    return Status::AlreadyPasses(
        "R and T pass the KS test; there is nothing to explain");
  }

  CumulativeFrame::BuildFromSortedUncheckedInto(reference, test_sorted,
                                                &ws.frame_);
  ws.engine_.Reset(ws.frame_, alpha);
  return SizeSearcher(ws.engine_).FindSize(options_.use_lower_bound);
}

}  // namespace moche
