// Phase 1 of MOCHE: finding the explanation size k (paper Section 4).
//
// Theorem 2's necessary condition is monotone in h, so the smallest h
// satisfying it — a lower bound k_hat <= k — is found by binary search in
// O((n+m) log m). A walk with the exact Theorem 1 check from k_hat upward
// then yields k; the walk runs through SizeScan (core/bounds.h), which
// carries failure state across adjacent sizes and refutes most failing
// sizes in O(1) with answers bit-identical to the stateless check.
// Disabling the lower bound (scanning from h = 1) reproduces the paper's
// MOCHE_ns ablation.
//
// Ownership & thread-safety: a SizeSearcher owns nothing — it borrows the
// caller's BoundsEngine (which must outlive it) and both entry points are
// const and pure, so one searcher may serve concurrent callers.

#ifndef MOCHE_CORE_SIZE_SEARCH_H_
#define MOCHE_CORE_SIZE_SEARCH_H_

#include <cstddef>

#include "core/bounds.h"
#include "util/status.h"

namespace moche {

/// Outcome of the size search, including the counters the paper's
/// efficiency study reports (Figure 6's EE = k - k_hat; Figure 5's
/// MOCHE vs MOCHE_ns gap is driven by theorem1_checks).
struct SizeSearchResult {
  size_t k = 0;               ///< the explanation size
  size_t k_hat = 0;           ///< lower bound from Theorem 2 (== scan start)
  size_t theorem1_checks = 0; ///< number of candidate sizes Theorem 1 tested
  size_t theorem2_checks = 0; ///< number of O(n+m) Theorem 2 evaluations
  /// Of the theorem1_checks, how many SizeScan refuted with its O(1) probe
  /// instead of a full O(n+m) pass (so full_scans + probe_refutations ==
  /// theorem1_checks).
  size_t probe_refutations = 0;
  size_t full_scans = 0;
};

class SizeSearcher {
 public:
  explicit SizeSearcher(const BoundsEngine& engine) : engine_(engine) {}

  /// Binary-searches the smallest h in [1, m-1] satisfying Theorem 2.
  /// NotFound when even h = m-1 fails (possible only when alpha > 2/e^2).
  /// `checks` (optional) accumulates the number of condition evaluations.
  Result<size_t> LowerBound(size_t* checks = nullptr) const;

  /// Full phase 1. With `use_lower_bound` false the Theorem 1 scan starts
  /// at h = 1 (the MOCHE_ns ablation).
  Result<SizeSearchResult> FindSize(bool use_lower_bound = true) const;

 private:
  const BoundsEngine& engine_;
};

}  // namespace moche

#endif  // MOCHE_CORE_SIZE_SEARCH_H_
