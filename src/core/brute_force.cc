#include "core/brute_force.h"

#include <numeric>

#include "ks/ks_test.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace moche {

namespace {

// Calls `visit` on every h-combination of [0, m) in lexicographic order
// until it returns true; returns whether any visit succeeded.
// Combinations are emitted as increasing index sequences, which is exactly
// the (size-fixed) lexicographic order of Definition 2 when the indices are
// positions in the preference list.
template <typename Visitor>
bool ForEachCombination(size_t m, size_t h, Visitor&& visit) {
  std::vector<size_t> c(h);
  std::iota(c.begin(), c.end(), size_t{0});
  while (true) {
    if (visit(c)) return true;
    // advance to the next combination
    size_t i = h;
    bool advanced = false;
    while (i-- > 0) {
      if (c[i] != i + m - h) {
        ++c[i];
        for (size_t j = i + 1; j < h; ++j) c[j] = c[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced) return false;
  }
}

}  // namespace

Result<Explanation> BruteForceExplainer::Explain(
    const KsInstance& instance, const PreferenceList& preference) const {
  const size_t m = instance.test.size();
  if (m > options_.max_m) {
    return Status::InvalidArgument(
        StrFormat("test set too large for brute force (m=%zu > %zu)", m,
                  options_.max_m));
  }
  MOCHE_RETURN_IF_ERROR(ValidatePreference(preference, m));
  MOCHE_ASSIGN_OR_RETURN(const KsOutcome original, RunInstance(instance));
  if (!original.reject) {
    return Status::AlreadyPasses(
        "R and T pass the KS test; there is nothing to explain");
  }

  RemovalKs removal(instance.reference, instance.test, instance.alpha);
  for (size_t h = 1; h <= m - 1; ++h) {
    Explanation found;
    const bool any = ForEachCombination(
        m, h, [&](const std::vector<size_t>& combo) {
          removal.Reset();
          for (size_t pos : combo) {
            const Status st =
                removal.RemoveValue(instance.test[preference[pos]]);
            MOCHE_CHECK(st.ok());
          }
          if (!removal.Passes()) return false;
          found.indices.clear();
          for (size_t pos : combo) found.indices.push_back(preference[pos]);
          return true;
        });
    if (any) return found;
  }
  return Status::NotFound("no subset reverses the failed KS test");
}

Result<size_t> BruteForceExplainer::MinimalSize(
    const KsInstance& instance) const {
  const size_t m = instance.test.size();
  if (m > options_.max_m) {
    return Status::InvalidArgument(
        StrFormat("test set too large for brute force (m=%zu > %zu)", m,
                  options_.max_m));
  }
  MOCHE_ASSIGN_OR_RETURN(const KsOutcome original, RunInstance(instance));
  if (!original.reject) {
    return Status::AlreadyPasses("R and T pass the KS test");
  }
  for (size_t h = 1; h <= m - 1; ++h) {
    MOCHE_ASSIGN_OR_RETURN(const bool exists,
                           ExistsQualifiedSubset(instance, h));
    if (exists) return h;
  }
  return Status::NotFound("no subset reverses the failed KS test");
}

Result<bool> BruteForceExplainer::ExistsQualifiedSubset(
    const KsInstance& instance, size_t h) const {
  const size_t m = instance.test.size();
  if (m > options_.max_m) {
    return Status::InvalidArgument(
        StrFormat("test set too large for brute force (m=%zu > %zu)", m,
                  options_.max_m));
  }
  if (h == 0 || h >= m) {
    return Status::InvalidArgument("subset size out of range");
  }
  RemovalKs removal(instance.reference, instance.test, instance.alpha);
  return ForEachCombination(m, h, [&](const std::vector<size_t>& combo) {
    removal.Reset();
    for (size_t idx : combo) {
      const Status st = removal.RemoveValue(instance.test[idx]);
      MOCHE_CHECK(st.ok());
    }
    return removal.Passes();
  });
}

}  // namespace moche
