// The bounds engine: Lemma 1, Equation 4, Theorem 1 and Theorem 2.
//
// For a subset size h, Omega(h) = c_alpha * sqrt(m-h + (m-h)^2/n) and
// Gamma(i,h) = C_T[i] - ((m-h)/n) * C_R[i] define per-coordinate lower and
// upper bounds on any qualified h-cumulative vector (Equation 4):
//   l_i^h = max(ceil(M(i,h) - Omega(h)), h - m + C_T[i], 0)
//   u_i^h = min(floor(Gamma(i,h) + Omega(h)), C_T[i], h)
// with M(i,h) = max_{j<=i} Gamma(j,h). Theorem 1: a qualified h-subset exists
// iff l_i^h <= u_i^h for every i. Theorem 2 relaxes this to a condition
// monotone in h, enabling the binary-searched lower bound of Section 4.4.

#ifndef MOCHE_CORE_BOUNDS_H_
#define MOCHE_CORE_BOUNDS_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/cumulative.h"
#include "util/status.h"

namespace moche {

/// Floating-point guard for the ceilings/floors of Lemma 1: values within a
/// tiny tolerance of an integer round to that integer, so that boundary-exact
/// instances agree with the direct KS comparison (see DESIGN.md §7).
int64_t CeilTol(double x);
int64_t FloorTol(double x);

/// Per-coordinate bounds of Equation 4 for one subset size h.
/// Entry 0 is the constant C[0] = 0 (l[0] = u[0] = 0).
struct BoundsVectors {
  std::vector<int64_t> lower;  // length q+1
  std::vector<int64_t> upper;  // length q+1
};

class BoundsEngine {
 public:
  /// The frame must outlive the engine. alpha must satisfy
  /// ks::ValidateAlpha (a precondition — Moche validates before building an
  /// engine; checked by MOCHE_DCHECK in debug builds).
  BoundsEngine(const CumulativeFrame& frame, double alpha);

  /// Omega(h) = c_alpha * sqrt(m-h + (m-h)^2/n), h in [0, m-1].
  double Omega(size_t h) const;

  /// Gamma(i,h) = C_T[i] - ((m-h)/n) * C_R[i], i in [1, q].
  double Gamma(size_t i, size_t h) const;

  /// The closed-form bounds of Equation 4 for subset size h.
  BoundsVectors ComputeBounds(size_t h) const;

  /// Theorem 1: true iff a qualified h-cumulative vector (equivalently a
  /// qualified h-subset) exists. O(n + m) with early exit.
  bool ExistsQualified(size_t h) const;

  /// Theorem 2's necessary condition (Equation 5); monotone in h.
  bool NecessaryCondition(size_t h) const;

  /// Constructs an actual qualified h-cumulative vector via the Theorem 1
  /// sufficiency argument, or NotFound when none exists. Used by tests and
  /// by callers that want a witness subset rather than just the size.
  Result<std::vector<int64_t>> ConstructQualifiedVector(size_t h) const;

  /// Expands a cumulative vector into the multiset of values it denotes
  /// (x_i repeated C[i]-C[i-1] times).
  std::vector<double> VectorToSubset(const std::vector<int64_t>& cum) const;

  const CumulativeFrame& frame() const { return frame_; }
  double alpha() const { return alpha_; }
  double critical_value() const { return c_alpha_; }

 private:
  const CumulativeFrame& frame_;
  double alpha_;
  double c_alpha_;
};

}  // namespace moche

#endif  // MOCHE_CORE_BOUNDS_H_
