// The bounds engine: Lemma 1, Equation 4, Theorem 1 and Theorem 2.
//
// For a subset size h, Omega(h) = c_alpha * sqrt(m-h + (m-h)^2/n) and
// Gamma(i,h) = C_T[i] - ((m-h)/n) * C_R[i] define per-coordinate lower and
// upper bounds on any qualified h-cumulative vector (Equation 4):
//   l_i^h = max(ceil(M(i,h) - Omega(h)), h - m + C_T[i], 0)
//   u_i^h = min(floor(Gamma(i,h) + Omega(h)), C_T[i], h)
// with M(i,h) = max_{j<=i} Gamma(j,h). Theorem 1: a qualified h-subset exists
// iff l_i^h <= u_i^h for every i. Theorem 2 relaxes this to a condition
// monotone in h, enabling the binary-searched lower bound of Section 4.4.
//
// Hot-path layout: the constructor flattens the cumulative frame into
// structure-of-arrays coefficient vectors (C_T and C_R pre-converted to
// double, the rigid integer bounds pre-offset), so each Theorem 1/2 check
// streams contiguous double arrays with the (m-h)/n division hoisted out of
// the loop — the layout the runtime-dispatched SIMD fast-filter kernels
// (util/simd.h) consume four (AVX2) or two (NEON) coordinates at a time.
// The kernels evaluate only the real-valued fast filter; every coordinate
// the filter cannot certify takes the exact CeilTol/FloorTol integer path
// here, so decisions are bit-identical to the scalar loop (the corpus-dump
// identity gate pins this). SizeScan carries failure state across adjacent
// candidate sizes so a size walk usually refutes a size in O(1) instead of
// O(q); decisions are provably identical to the stateless checks (see the
// class comment).
//
// Ownership & thread-safety: a BoundsEngine borrows its CumulativeFrame
// (the frame must outlive it) and is immutable after construction, so one
// engine may serve concurrent readers. SizeScan instances are mutable
// per-caller scratch — share the engine, not the scan.

#ifndef MOCHE_CORE_BOUNDS_H_
#define MOCHE_CORE_BOUNDS_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/cumulative.h"
#include "util/status.h"

namespace moche {

/// Floating-point guard for the ceilings/floors of Lemma 1: values within a
/// tiny tolerance of an integer round to that integer, so that boundary-exact
/// instances agree with the direct KS comparison (see docs/ARCHITECTURE.md).
int64_t CeilTol(double x);
int64_t FloorTol(double x);

/// Per-coordinate bounds of Equation 4 for one subset size h.
/// Entry 0 is the constant C[0] = 0 (l[0] = u[0] = 0).
struct BoundsVectors {
  std::vector<int64_t> lower;  // length q+1
  std::vector<int64_t> upper;  // length q+1
};

class BoundsEngine {
 public:
  /// An unbound engine: every query requires a Reset (or the binding
  /// constructor) first. Exists so a reusable workspace can carry one
  /// engine — and its coefficient array's capacity — across many instances.
  BoundsEngine() = default;

  /// The frame must outlive the engine. alpha must satisfy
  /// ks::ValidateAlpha (a precondition — Moche validates before building an
  /// engine; checked by MOCHE_DCHECK in debug builds).
  BoundsEngine(const CumulativeFrame& frame, double alpha);

  /// Rebinds the engine to a (frame, alpha) pair, rebuilding the flattened
  /// coefficient array in place: a warm engine recycled across same-sized
  /// instances allocates nothing. Same preconditions as the constructor.
  void Reset(const CumulativeFrame& frame, double alpha);

  /// Omega(h) = c_alpha * sqrt(m-h + (m-h)^2/n), h in [0, m-1].
  double Omega(size_t h) const;

  /// Gamma(i,h) = C_T[i] - ((m-h)/n) * C_R[i], i in [1, q].
  double Gamma(size_t i, size_t h) const;

  /// The closed-form bounds of Equation 4 for subset size h.
  BoundsVectors ComputeBounds(size_t h) const;

  /// As ComputeBounds, writing into caller-owned vectors (assign-style, so
  /// reused vectors keep their capacity). `lower` and `upper` end up with
  /// length q+1.
  void ComputeBoundsInto(size_t h, std::vector<int64_t>* lower,
                         std::vector<int64_t>* upper) const;

  /// Theorem 1: true iff a qualified h-cumulative vector (equivalently a
  /// qualified h-subset) exists. O(n + m) with early exit.
  bool ExistsQualified(size_t h) const;

  /// On a false ExistsQualifiedWithFailure result: the first coordinate
  /// whose bounds crossed and the prefix-argmax of Gamma there, both
  /// 1-based. SizeScan re-tests these coordinates first at the next size.
  struct ScanFailure {
    size_t fail = 0;    ///< first i with l_i > u_i
    size_t argmax = 0;  ///< argmax_{j<=fail} Gamma(j, h)
  };

  /// As ExistsQualified; on failure additionally reports where (when
  /// `failure` is non-null).
  bool ExistsQualifiedWithFailure(size_t h, ScanFailure* failure) const;

  /// Theorem 2's necessary condition (Equation 5); monotone in h.
  bool NecessaryCondition(size_t h) const;

  /// Constructs an actual qualified h-cumulative vector via the Theorem 1
  /// sufficiency argument, or NotFound when none exists. Used by tests and
  /// by callers that want a witness subset rather than just the size.
  Result<std::vector<int64_t>> ConstructQualifiedVector(size_t h) const;

  /// Expands a cumulative vector into the multiset of values it denotes
  /// (x_i repeated C[i]-C[i-1] times).
  std::vector<double> VectorToSubset(const std::vector<int64_t>& cum) const;

  const CumulativeFrame& frame() const { return *frame_; }
  double alpha() const { return alpha_; }
  double critical_value() const { return c_alpha_; }

  /// Heap bytes retained by the coefficient arrays (capacity-based; see
  /// CumulativeFrame::FootprintBytes).
  size_t FootprintBytes() const {
    return (ct_d_.capacity() + cr_d_.capacity() + rigid_d_.capacity()) *
               sizeof(double) +
           (ct_.capacity() + rigid_.capacity()) * sizeof(int64_t);
  }

 private:
  friend class SizeScan;

  // Structure-of-arrays coefficient view of the frame, one entry per
  // base-vector coordinate (index 0 is the constant C[0] = 0 entry). The
  // three double arrays feed the SIMD fast-filter kernels; the two int64
  // arrays carry the exact integer path's operands. The int64 -> double
  // conversions happen once, in Reset (both exact — counts are far below
  // 2^53).
  //
  // frame_ is a pointer, not a reference, so Reset can rebind a reused
  // engine. Null only in the unbound default-constructed state.
  const CumulativeFrame* frame_ = nullptr;
  double alpha_ = 0.0;
  double c_alpha_ = 0.0;
  std::vector<double> ct_d_;     // C_T[i]
  std::vector<double> cr_d_;     // C_R[i]
  std::vector<double> rigid_d_;  // C_T[i] - m, so l's rigid term is h + this
  std::vector<int64_t> ct_;      // C_T[i]
  std::vector<int64_t> rigid_;   // C_T[i] - m
};

/// A Theorem 1 size walk that maintains bounds state incrementally across
/// adjacent candidate removal-set sizes instead of re-evaluating the full
/// cumulative frame per candidate.
///
/// When the check at size h fails, the engine reports the first failing
/// coordinate i* and the prefix-argmax j* of Gamma there. At the next size,
/// Gamma(j*, h') lower-bounds the prefix maximum M(i*, h') (j* <= i*), so
///   CeilTol(Gamma(j*,h') - Omega(h')) > u_{i*}^{h'}
/// already proves l_{i*} > u_{i*} — an O(1) refutation. The bounds-conflict
/// region moves slowly with h, so consecutive sizes usually fail at the
/// same coordinates and the walk degenerates to O(1) per size; whenever the
/// O(1) probe cannot refute, the full O(n+m) check runs and re-seeds the
/// state. Every answer is bit-identical to BoundsEngine::ExistsQualified —
/// the probe only short-circuits sizes whose failure it proves outright.
///
/// Mutable per-caller scratch: not thread-safe; share the engine instead.
class SizeScan {
 public:
  explicit SizeScan(const BoundsEngine& engine) : engine_(engine) {}

  /// Bit-identical to engine.ExistsQualified(h), in any call order.
  bool ExistsQualified(size_t h);

  /// Sizes refuted by the O(1) probe vs full O(n+m) scans, for tests and
  /// the efficiency counters.
  size_t probe_refutations() const { return probe_refutations_; }
  size_t full_scans() const { return full_scans_; }

 private:
  const BoundsEngine& engine_;
  BoundsEngine::ScanFailure last_failure_;
  bool have_failure_ = false;
  size_t probe_refutations_ = 0;
  size_t full_scans_ = 0;
};

}  // namespace moche

#endif  // MOCHE_CORE_BOUNDS_H_
