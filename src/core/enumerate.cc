#include "core/enumerate.h"

#include <algorithm>

#include "core/partial.h"
#include "util/string_util.h"

namespace moche {

namespace {

// Lexicographic DFS over include/exclude decisions in preference order.
class Enumerator {
 public:
  Enumerator(const BoundsEngine& engine, size_t k,
             const std::vector<size_t>& value_index,
             const PreferenceList& pref, const EnumerateOptions& options)
      : engine_(engine),
        k_(k),
        value_index_(value_index),
        pref_(pref),
        options_(options) {}

  Result<std::vector<Explanation>> Run() {
    MOCHE_ASSIGN_OR_RETURN(PartialExplanationChecker checker,
                           PartialExplanationChecker::Create(engine_, k_));
    // Reserve hint only — count is caller-controlled and may be "all of
    // them" (huge), so clamp instead of trusting it with an allocation.
    results_.reserve(std::min(options_.count, pref_.size()));
    std::vector<size_t> chosen;
    chosen.reserve(k_);
    MOCHE_RETURN_IF_ERROR(Dfs(0, &checker, &chosen));
    return std::move(results_);
  }

 private:
  // Explores decisions from preference position `pos` given the checker's
  // accepted state; returns non-OK only on budget exhaustion (with fewer
  // than `count` results).
  Status Dfs(size_t pos, PartialExplanationChecker* checker,
             std::vector<size_t>* chosen) {
    if (results_.size() >= options_.count) return Status::OK();
    if (checker->accepted_count() == k_) {
      Explanation expl;
      expl.indices = *chosen;
      results_.push_back(std::move(expl));
      return Status::OK();
    }
    // Not enough positions left to fill the explanation.
    if (pref_.size() - pos < k_ - checker->accepted_count()) {
      return Status::OK();
    }

    const size_t t_idx = pref_[pos];
    const size_t v = value_index_[t_idx];

    if (++checks_used_ > options_.max_checks) {
      return Status::ResourceExhausted(
          StrFormat("enumeration budget of %zu checks exhausted with %zu of "
                    "%zu explanations found",
                    options_.max_checks, results_.size(), options_.count));
    }
    // Include branch first: lexicographically smaller completions.
    if (checker->CandidateFeasible(v)) {
      PartialExplanationChecker branch = *checker;  // O(q) state copy
      branch.Accept(v);
      chosen->push_back(t_idx);
      MOCHE_RETURN_IF_ERROR(Dfs(pos + 1, &branch, chosen));
      chosen->pop_back();
      if (results_.size() >= options_.count) return Status::OK();
    }
    // Exclude branch.
    return Dfs(pos + 1, checker, chosen);
  }

  const BoundsEngine& engine_;
  const size_t k_;
  const std::vector<size_t>& value_index_;
  const PreferenceList& pref_;
  const EnumerateOptions& options_;
  std::vector<Explanation> results_;
  size_t checks_used_ = 0;
};

}  // namespace

Result<std::vector<Explanation>> EnumerateTopExplanations(
    const BoundsEngine& engine, size_t k, const std::vector<double>& test,
    const PreferenceList& preference, const EnumerateOptions& options) {
  const CumulativeFrame& frame = engine.frame();
  if (test.size() != frame.m()) {
    return Status::InvalidArgument("test set does not match the frame");
  }
  MOCHE_RETURN_IF_ERROR(ValidatePreference(preference, test.size()));
  if (options.count == 0) {
    return Status::InvalidArgument("count must be positive");
  }

  std::vector<size_t> value_index(test.size());
  for (size_t i = 0; i < test.size(); ++i) {
    MOCHE_ASSIGN_OR_RETURN(value_index[i], frame.IndexOfValue(test[i]));
  }
  Enumerator enumerator(engine, k, value_index, preference, options);
  return enumerator.Run();
}

}  // namespace moche
