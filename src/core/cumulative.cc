#include "core/cumulative.h"

#include <algorithm>

#include "ks/ks_test.h"
#include "util/string_util.h"

namespace moche {

Result<CumulativeFrame> CumulativeFrame::Build(const std::vector<double>& r,
                                               const std::vector<double>& t) {
  MOCHE_RETURN_IF_ERROR(ks::ValidateSample(r, "reference set"));
  MOCHE_RETURN_IF_ERROR(ks::ValidateSample(t, "test set"));

  std::vector<double> rs = r;
  std::vector<double> ts = t;
  std::sort(rs.begin(), rs.end());
  std::sort(ts.begin(), ts.end());

  CumulativeFrame frame;
  frame.n_ = r.size();
  frame.m_ = t.size();
  frame.cum_r_.push_back(0);
  frame.cum_t_.push_back(0);

  size_t i = 0;
  size_t j = 0;
  while (i < rs.size() || j < ts.size()) {
    double x;
    if (j >= ts.size() || (i < rs.size() && rs[i] <= ts[j])) {
      x = rs[i];
    } else {
      x = ts[j];
    }
    while (i < rs.size() && rs[i] == x) ++i;
    while (j < ts.size() && ts[j] == x) ++j;
    frame.values_.push_back(x);
    frame.cum_r_.push_back(static_cast<int64_t>(i));
    frame.cum_t_.push_back(static_cast<int64_t>(j));
  }
  return frame;
}

Result<size_t> CumulativeFrame::IndexOfValue(double value) const {
  const auto it = std::lower_bound(values_.begin(), values_.end(), value);
  if (it == values_.end() || *it != value) {
    return Status::NotFound(
        StrFormat("value %g not in the base vector", value));
  }
  return static_cast<size_t>(it - values_.begin()) + 1;  // 1-based
}

Result<std::vector<int64_t>> CumulativeFrame::CumulativeOf(
    const std::vector<double>& subset) const {
  std::vector<int64_t> counts(q() + 1, 0);
  for (double v : subset) {
    MOCHE_ASSIGN_OR_RETURN(const size_t idx, IndexOfValue(v));
    ++counts[idx];
  }
  // prefix-sum the per-value multiplicities into a cumulative vector
  for (size_t i = 1; i <= q(); ++i) counts[i] += counts[i - 1];
  return counts;
}

}  // namespace moche
